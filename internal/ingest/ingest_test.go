package ingest

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"shredder/internal/chunker"
	"shredder/internal/dedup"
	"shredder/internal/workload"
)

// testConfig shrinks the per-session pipeline for fast tests.
func testConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.Shredder.BufferSize = 1 << 20
	cfg.BatchSize = 32
	return cfg
}

// startSession wires a client to the server over an in-memory pipe.
func startSession(t testing.TB, srv *Server) *Client {
	t.Helper()
	cend, send := net.Pipe()
	go func() {
		defer send.Close()
		_ = srv.ServeConn(send)
	}()
	t.Cleanup(func() { cend.Close() })
	return NewClient(cend)
}

// inProcessStats replays the same streams through the sequential
// chunker + dedup.Store path — the pre-service ground truth.
func inProcessStats(t *testing.T, cfg Config, streams [][]byte) dedup.Stats {
	t.Helper()
	chk, err := chunker.New(cfg.Shredder.Chunking.RabinParams())
	if err != nil {
		t.Fatal(err)
	}
	store, err := dedup.NewStore(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range streams {
		for _, c := range chk.Split(data) {
			store.Put(data[c.Offset:c.End()])
		}
	}
	return store.Stats()
}

// TestRoundTrip backs up a master image and a similar snapshot through
// the service path, restores both byte-exactly, and checks the dedup
// statistics match the in-process path exactly.
func TestRoundTrip(t *testing.T) {
	cfg := testConfig(8)
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	im := workload.NewImage(1, 4<<20, 64<<10, 0.1)
	snap := im.Snapshot(2)

	mst, err := c.BackupBytes("master", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	if mst.Bytes != int64(len(im.Master)) {
		t.Fatalf("master stream bytes %d, want %d", mst.Bytes, len(im.Master))
	}
	if mst.DupChunks != 0 && mst.UniqueBytes == mst.Bytes {
		t.Fatalf("master stats inconsistent: %+v", mst)
	}
	sst, err := c.BackupBytes("snap", snap)
	if err != nil {
		t.Fatal(err)
	}
	if sst.DupChunks == 0 {
		t.Fatal("snapshot shares no chunks with master: dedup broken")
	}
	if sst.DedupRatio() < 2 {
		t.Fatalf("snapshot dedup ratio %.2f, want > 2 for a 10%%-churn snapshot", sst.DedupRatio())
	}

	// Byte-exact reconstruction over the wire.
	if err := c.Verify("master", im.Master); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify("snap", snap); err != nil {
		t.Fatal(err)
	}

	// Identical dedup accounting to the in-process path.
	want := inProcessStats(t, cfg, [][]byte{im.Master, snap})
	if got := srv.Store().Stats(); got != want {
		t.Fatalf("service stats %+v, in-process path %+v", got, want)
	}
	if sst.Store != srv.Store().Stats() {
		t.Fatalf("final stream carried store stats %+v, store has %+v", sst.Store, srv.Store().Stats())
	}
}

// TestConcurrentSessions multiplexes several client sessions onto one
// server: every client backs up its own VM derived from a shared golden
// image, concurrently. Cross-session dedup must work and every stream
// must restore byte-exactly. Run under -race this exercises the full
// service stack.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 4
	cfg := testConfig(16)
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := workload.NewImage(7, 2<<20, 64<<10, 0.05)
	images := make([][]byte, sessions)
	for i := range images {
		images[i] = golden.Snapshot(int64(i + 1))
	}
	stats := make([]*StreamStats, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := startSession(t, srv)
			name := fmt.Sprintf("vm-%d", i)
			st, err := c.BackupBytes(name, images[i])
			if err != nil {
				errs[i] = err
				return
			}
			stats[i] = st
			errs[i] = c.Verify(name, images[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	st := srv.Store().Stats()
	var logical int64
	for _, img := range images {
		logical += int64(len(img))
	}
	if st.LogicalBytes != logical {
		t.Fatalf("store saw %d logical bytes, clients sent %d", st.LogicalBytes, logical)
	}
	// VMs share ~95% of a golden image: the store must hold far less
	// than the sum of the streams.
	if st.Ratio() < 2 {
		t.Fatalf("cross-session dedup ratio %.2f, want > 2", st.Ratio())
	}
}

// TestSequentialEqualsConcurrentTotals asserts the aggregate accounting
// is independent of session interleaving: the same images pushed
// concurrently and sequentially produce identical LogicalBytes/Chunks
// and identical StoredBytes.
func TestSequentialEqualsConcurrentTotals(t *testing.T) {
	images := make([][]byte, 3)
	golden := workload.NewImage(21, 1<<20, 32<<10, 0.1)
	for i := range images {
		images[i] = golden.Snapshot(int64(i))
	}

	run := func(concurrent bool) dedup.Stats {
		srv, err := NewServer(testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		if concurrent {
			var wg sync.WaitGroup
			for i, img := range images {
				wg.Add(1)
				go func(i int, img []byte) {
					defer wg.Done()
					c := startSession(t, srv)
					if _, err := c.BackupBytes(fmt.Sprintf("s-%d", i), img); err != nil {
						t.Error(err)
					}
				}(i, img)
			}
			wg.Wait()
		} else {
			c := startSession(t, srv)
			for i, img := range images {
				if _, err := c.BackupBytes(fmt.Sprintf("s-%d", i), img); err != nil {
					t.Fatal(err)
				}
			}
		}
		return srv.Store().Stats()
	}

	seq := run(false)
	con := run(true)
	// Interleaving can only change *which* stream pays for a chunk's
	// first store, never the totals.
	if seq.LogicalBytes != con.LogicalBytes || seq.Chunks != con.Chunks {
		t.Fatalf("logical accounting differs: seq %+v con %+v", seq, con)
	}
	if seq.StoredBytes != con.StoredBytes || seq.UniqueChunks != con.UniqueChunks {
		t.Fatalf("stored accounting differs: seq %+v con %+v", seq, con)
	}
}

// TestRestoreUnknownName checks the error path keeps the session
// usable.
func TestRestoreUnknownName(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	if _, err := c.RestoreBytes("nope"); err == nil {
		t.Fatal("restore of unknown name succeeded")
	}
	// The session survives an application-level error.
	data := workload.Random(3, 256<<10)
	if _, err := c.BackupBytes("after-error", data); err != nil {
		t.Fatalf("session dead after restore error: %v", err)
	}
	if err := c.Verify("after-error", data); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyStream: zero-byte backups are legal and restore to zero
// bytes.
func TestEmptyStream(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	st, err := c.BackupBytes("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 0 || st.Chunks != 0 {
		t.Fatalf("empty stream produced %+v", st)
	}
	got, err := c.RestoreBytes("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream restored %d bytes", len(got))
	}
}

// TestRestoreOversizedChunk: a pipeline with no MaxSize can cut chunks
// larger than one frame; restore must split them rather than fail.
func TestRestoreOversizedChunk(t *testing.T) {
	cfg := testConfig(4)
	cfg.Shredder.BufferSize = 4 << 20
	// A 30-bit mask over random data effectively never matches: the
	// whole stream becomes one chunk at finish time.
	cfg.Shredder.Chunking.MaskBits = 30
	cfg.Shredder.Chunking.Marker = 1<<30 - 1
	cfg.Shredder.Chunking.MinSize = 0
	cfg.Shredder.Chunking.MaxSize = 0
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	data := workload.Random(8, 3<<20) // 3 MiB > DefaultFrameSize
	st, err := c.BackupBytes("big", data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 1 {
		t.Fatalf("expected one oversized chunk, got %d", st.Chunks)
	}
	if err := c.Verify("big", data); err != nil {
		t.Fatal(err)
	}
}

// TestStatsEncodeDecode round-trips the wire encoding in both layouts:
// the legacy 72-byte payload (which must stay byte-identical and drops
// the Wire block) and the version-3 payload that carries it.
func TestStatsEncodeDecode(t *testing.T) {
	in := StreamStats{
		Bytes: 1, Chunks: 2, DupChunks: 3, UniqueBytes: 4,
		Wire:  WireStats{LogicalBytes: 10, WireBytes: 11, ChunksSent: 12, ChunksSkipped: 13},
		Store: dedup.Stats{LogicalBytes: 5, StoredBytes: 6, Chunks: 7, UniqueChunks: 8, IndexHits: 9},
	}
	legacy := in.encode(2)
	if len(legacy) != statsWireSize {
		t.Fatalf("legacy payload is %d bytes, want %d", len(legacy), statsWireSize)
	}
	out, err := decodeStreamStats(legacy)
	if err != nil {
		t.Fatal(err)
	}
	wantLegacy := in
	wantLegacy.Wire = WireStats{}
	if out != wantLegacy {
		t.Fatalf("legacy round trip: %+v != %+v", out, wantLegacy)
	}
	v3 := in.encode(ProtocolVersion)
	if len(v3) != statsWireSizeV3 {
		t.Fatalf("v3 payload is %d bytes, want %d", len(v3), statsWireSizeV3)
	}
	out, err = decodeStreamStats(v3)
	if err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("v3 round trip: %+v != %+v", out, in)
	}
	if _, err := decodeStreamStats(make([]byte, 10)); err == nil {
		t.Fatal("short payload accepted")
	}
}

// TestFrameLimit: oversized frames are rejected, not allocated.
func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgData, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the length field to claim > MaxFrame.
	b := buf.Bytes()
	b[1], b[2], b[3], b[4] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := readFrame(bytes.NewReader(b), nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
