package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"shredder/internal/chunker"
	"shredder/internal/dedup"
	"shredder/internal/shardstore"
	"shredder/internal/workload"
)

// corpus cuts a deterministic snapshot series into content-defined
// chunks, the same workload the shardstore tests use.
func corpus(t testing.TB, seed int64, size, snapshots int) [][]byte {
	t.Helper()
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	im := workload.NewImage(seed, size, 16<<10, 0.2)
	var out [][]byte
	add := func(img []byte) {
		for _, c := range chk.Split(img) {
			out = append(out, img[c.Offset:c.End()])
		}
	}
	add(im.Master)
	for i := 0; i < snapshots; i++ {
		add(im.Snapshot(seed + int64(i)))
	}
	return out
}

func openStore(t testing.TB, dir string, opts Options) *shardstore.Store {
	t.Helper()
	st, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReopenEmpty opens, closes and reopens an empty data dir.
func TestReopenEmpty(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Shards: 4})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = openStore(t, dir, Options{})
	defer st.Close()
	if st.NumShards() != 4 {
		t.Fatalf("reopen adopted %d shards, want 4 from manifest", st.NumShards())
	}
	if s := st.Stats(); s != (dedup.Stats{}) {
		t.Fatalf("empty reopen has stats %+v", s)
	}
}

// TestRoundTrip is the core durability property at the store level:
// everything — refs, refcounts, duplicate classification, recipes,
// stats, container layout — survives close + reopen, and the recovered
// index keeps deduplicating.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 4, ContainerSize: 1 << 20, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)

	chunks := corpus(t, 21, 1<<20, 2)
	recipe, _, err := st.WriteStream(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe("stream-a", recipe); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put([]byte("one more chunk")); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe("stream-b", shardstore.Recipe{dedup.Sum([]byte("one more chunk"))}); err != nil {
		t.Fatal(err)
	}
	want, err := st.Reconstruct(recipe)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := st.Stats()
	wantContainers := st.Containers()
	wantRC := st.Refcount(dedup.Sum(chunks[0]))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st = openStore(t, dir, opts)
	defer st.Close()
	if got := st.Stats(); got != wantStats {
		t.Fatalf("recovered stats %+v, want %+v", got, wantStats)
	}
	if got := st.Containers(); got != wantContainers {
		t.Fatalf("recovered %d containers, want %d", got, wantContainers)
	}
	if got := st.Refcount(dedup.Sum(chunks[0])); got != wantRC {
		t.Fatalf("recovered refcount %d, want %d", got, wantRC)
	}
	names := st.RecipeNames()
	if len(names) != 2 || names[0] != "stream-a" || names[1] != "stream-b" {
		t.Fatalf("recovered recipe names %v", names)
	}
	got, ok := st.Recipe("stream-a")
	if !ok {
		t.Fatal("stream-a recipe lost")
	}
	data, err := st.Reconstruct(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("reconstruction differs after reopen")
	}

	// The recovered index must classify the same chunks as duplicates.
	_, dup, err := st.PutBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dup {
		if !d {
			t.Fatalf("chunk %d not recognized as duplicate after reopen", i)
		}
	}
}

// TestDifferentialAgainstMemory drives a durable store and the
// in-memory reference with the same chunk sequence and asserts
// identical classification, stats and packing — the persistence layer
// must not change semantics.
func TestDifferentialAgainstMemory(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 8, ContainerSize: 1 << 20}
	disk := openStore(t, dir, opts)
	defer disk.Close()
	mem, err := shardstore.New(8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	chunks := corpus(t, 33, 1<<20, 1)
	for i, c := range chunks {
		dr, ddup, derr := disk.Put(c)
		mr, mdup, merr := mem.Put(c)
		if derr != nil || merr != nil {
			t.Fatal(derr, merr)
		}
		if dr != mr || ddup != mdup {
			t.Fatalf("chunk %d: disk (%+v, %v) vs mem (%+v, %v)", i, dr, ddup, mr, mdup)
		}
	}
	if ds, ms := disk.Stats(), mem.Stats(); ds != ms {
		t.Fatalf("stats diverge: disk %+v, mem %+v", ds, ms)
	}
	for i, c := range chunks[:64] {
		ref, ok := disk.Has(dedup.Sum(c))
		if !ok {
			t.Fatalf("chunk %d missing", i)
		}
		data, err := disk.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, c) {
			t.Fatalf("chunk %d reads back differently", i)
		}
	}
}

// TestFsyncPolicies smoke-tests every policy end to end.
func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []string{"always", "never", "interval=10ms"} {
		t.Run(pol, func(t *testing.T) {
			policy, err := ParseFsyncPolicy(pol)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			st := openStore(t, dir, Options{Shards: 2, Fsync: policy})
			chunks := corpus(t, 5, 256<<10, 0)
			if _, _, err := st.PutBatch(chunks); err != nil {
				t.Fatal(err)
			}
			stats := st.Stats()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st = openStore(t, dir, Options{Fsync: policy})
			defer st.Close()
			if got := st.Stats(); got != stats {
				t.Fatalf("policy %s: recovered %+v, want %+v", pol, got, stats)
			}
		})
	}
}

// TestParseFsyncPolicy covers the flag syntax.
func TestParseFsyncPolicy(t *testing.T) {
	good := map[string]string{
		"always":         "always",
		"never":          "never",
		"interval":       "interval=1s",
		"interval=250ms": "interval=250ms",
		"2s":             "interval=2s",
	}
	for in, want := range good {
		p, err := ParseFsyncPolicy(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
		} else if p.String() != want {
			t.Errorf("%q parsed to %q, want %q", in, p, want)
		}
	}
	for _, bad := range []string{"", "sometimes", "interval=", "interval=-1s", "-5ms", "interval=x"} {
		if _, err := ParseFsyncPolicy(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestManifestMismatch pins the layout options to the data directory.
func TestManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Shards: 4, ContainerSize: 1 << 20})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, Options{Shards: 8}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if _, err := OpenStore(dir, Options{ContainerSize: 2 << 20}); err == nil {
		t.Fatal("container-size mismatch accepted")
	}
	if _, err := Open(dir+"2", Options{Shards: 3}); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
}

// TestTornContainerTail simulates the crash where container bytes were
// lost but their WAL records survived (possible under relaxed fsync):
// recovery must fall back to the longest prefix consistent with the
// bytes on disk.
func TestTornContainerTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 20}
	st := openStore(t, dir, opts)
	var chunks [][]byte
	for i := 0; i < 8; i++ {
		chunks = append(chunks, bytes.Repeat([]byte{byte('a' + i)}, 100))
	}
	refs, _, err := st.PutBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the last chunk's bytes (and half of the one before) out of
	// the container file.
	cpath := filepath.Join(dir, "shard-0000", fmt.Sprintf(containerFormat, 0))
	if err := os.Truncate(cpath, refs[6].Offset+50); err != nil {
		t.Fatal(err)
	}

	st = openStore(t, dir, opts)
	defer st.Close()
	stats := st.Stats()
	if stats.UniqueChunks != 6 {
		t.Fatalf("recovered %d chunks, want the 6 whose bytes survived", stats.UniqueChunks)
	}
	for i, c := range chunks {
		_, ok := st.Has(dedup.Sum(c))
		if want := i < 6; ok != want {
			t.Fatalf("chunk %d: present=%v, want %v", i, ok, want)
		}
	}
	// The container must be cut back to the last fully-journaled byte
	// so new appends land consistently.
	fi, err := os.Stat(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if want := refs[5].Offset + refs[5].Length; fi.Size() != want {
		t.Fatalf("container truncated to %d, want %d", fi.Size(), want)
	}
	if _, _, err := st.Put([]byte("new chunk after repair")); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyOnRecover flips one byte inside a committed chunk — the
// file-size check cannot see that — and asserts scrub recovery falls
// back to the clean prefix while plain recovery (documented as
// size-based) keeps the entry.
func TestVerifyOnRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 20}
	st := openStore(t, dir, opts)
	chunks := [][]byte{
		bytes.Repeat([]byte{'a'}, 100),
		bytes.Repeat([]byte{'b'}, 100),
		bytes.Repeat([]byte{'c'}, 100),
	}
	refs, _, err := st.PutBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte in the middle of chunk 1's on-disk bytes.
	cpath := filepath.Join(dir, "shard-0000", fmt.Sprintf(containerFormat, 0))
	f, err := os.OpenFile(cpath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, refs[1].Offset+50); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Without scrub: size check passes, the corruption is invisible.
	plain := openStore(t, dir, opts)
	if got := plain.Stats().UniqueChunks; got != 3 {
		t.Fatalf("plain recovery kept %d chunks, want 3", got)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	// With scrub: replay stops at the first fingerprint mismatch and
	// cuts history back to the clean prefix.
	opts.VerifyOnRecover = true
	scrubbed := openStore(t, dir, opts)
	defer scrubbed.Close()
	if got := scrubbed.Stats().UniqueChunks; got != 1 {
		t.Fatalf("scrub recovery kept %d chunks, want 1", got)
	}
	if _, ok := scrubbed.Has(dedup.Sum(chunks[0])); !ok {
		t.Fatal("scrub recovery lost the intact chunk")
	}
	if _, ok := scrubbed.Has(dedup.Sum(chunks[1])); ok {
		t.Fatal("scrub recovery kept the corrupted chunk")
	}
}

// TestOversizedRecipeRejected asserts a recipe too large to frame is
// refused at commit time instead of being journaled and then silently
// read back as a torn tail.
func TestOversizedRecipeRejected(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Shards: 1})
	if _, _, err := st.Put([]byte("chunk")); err != nil {
		t.Fatal(err)
	}
	// Each recipe entry is one 32-byte fingerprint; enough of them push
	// the record body past maxRecordSize.
	huge := make(shardstore.Recipe, maxRecordSize/32+2)
	for i := range huge {
		huge[i] = testHash(byte(i))
	}
	if err := st.CommitRecipe("huge", huge); err == nil {
		t.Fatal("oversized recipe accepted")
	}
	// The store must still work and the journal must still be clean.
	if err := st.CommitRecipe("ok", shardstore.Recipe{dedup.Sum([]byte("chunk"))}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = openStore(t, dir, Options{})
	defer st.Close()
	if names := st.RecipeNames(); len(names) != 1 || names[0] != "ok" {
		t.Fatalf("recovered recipes %v, want [ok]", names)
	}
}

// TestRecipeReplace asserts the journal's last commit for a name wins
// after reopen.
func TestRecipeReplace(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Shards: 1})
	if _, _, err := st.Put([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe("vm", shardstore.Recipe{dedup.Sum([]byte("v1"))}); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe("vm", shardstore.Recipe{dedup.Sum([]byte("v2"))}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = openStore(t, dir, Options{})
	defer st.Close()
	r, ok := st.Recipe("vm")
	if !ok || len(r) != 1 || r[0] != dedup.Sum([]byte("v2")) {
		t.Fatalf("recovered recipe %+v", r)
	}
	data, err := st.Reconstruct(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("reconstructed %q", data)
	}
}
