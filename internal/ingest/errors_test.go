package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"shredder/internal/workload"
)

// TestReadFrameTyped exercises readFrame's error taxonomy directly.
func TestReadFrameTyped(t *testing.T) {
	// Clean EOF on a frame boundary stays bare io.EOF (the session
	// loop's clean-disconnect signal).
	if _, _, err := readFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty reader: %v, want io.EOF", err)
	}

	// Partial header → TruncatedError.
	_, _, err := readFrame(bytes.NewReader([]byte{MsgData, 0}), nil)
	var te *TruncatedError
	if !errors.As(err, &te) || !strings.Contains(te.Context, "header") {
		t.Fatalf("partial header: %v", err)
	}

	// Oversized announcement → FrameSizeError carrying type and length.
	var hdr [headerSize]byte
	hdr[0] = MsgData
	binary.BigEndian.PutUint32(hdr[1:], MaxFrame+1)
	_, _, err = readFrame(bytes.NewReader(hdr[:]), nil)
	var fe *FrameSizeError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame: %v", err)
	}
	if fe.Type != MsgData || fe.Size != MaxFrame+1 || fe.Limit != MaxFrame {
		t.Fatalf("FrameSizeError fields: %+v", fe)
	}

	// Truncated payload → TruncatedError naming the frame type and the
	// promised length, wrapping io.ErrUnexpectedEOF.
	binary.BigEndian.PutUint32(hdr[1:], 100)
	short := append(hdr[:], []byte("only ten b")...)
	_, _, err = readFrame(bytes.NewReader(short), nil)
	if !errors.As(err, &te) {
		t.Fatalf("truncated payload: %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload does not unwrap to ErrUnexpectedEOF: %v", err)
	}
	if !strings.Contains(te.Context, "frame type 2") || !strings.Contains(te.Context, "100 bytes") {
		t.Fatalf("context %q lacks frame type/length", te.Context)
	}
}

// TestWriteFrameOversized: the writer refuses to announce an illegal
// frame with the same typed error.
func TestWriteFrameOversized(t *testing.T) {
	err := writeFrame(io.Discard, MsgData, make([]byte, MaxFrame+1))
	var fe *FrameSizeError
	if !errors.As(err, &fe) || fe.Size != MaxFrame+1 {
		t.Fatalf("writeFrame: %v", err)
	}
}

// TestUnknownTopLevelFrame: an unknown frame type at session level is
// a typed UnexpectedFrameError on the server and a MsgError reply on
// the wire.
func TestUnknownTopLevelFrame(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, errc := rawSession(t, srv)
	if err := writeFrame(conn, 0xEE, nil); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "frame type 238") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	var ue *UnexpectedFrameError
	serr := <-errc
	if !errors.As(serr, &ue) || ue.Type != 0xEE || ue.Context != "session" {
		t.Fatalf("server error = %v", serr)
	}
}

// TestUnknownFrameInsideStream: a stray frame type inside a backup
// stream aborts the stream with a typed error; the client sees the
// server's MsgError.
func TestUnknownFrameInsideStream(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgBegin, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, MsgData, workload.Random(1, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, MsgStats, nil); err != nil { // client may not send Stats
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "backup stream") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	var ue *UnexpectedFrameError
	serr := <-errc
	if !errors.As(serr, &ue) || ue.Type != MsgStats || ue.Context != "backup stream" {
		t.Fatalf("server error = %v", serr)
	}
}

// TestStreamTruncatedBeforeEnd: a peer that disconnects cleanly
// between Data frames — but before End — must NOT be treated as a
// complete stream. The server fails the backup with a TruncatedError
// and records nothing.
func TestStreamTruncatedBeforeEnd(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, _, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgBegin, []byte("cutoff")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, MsgData, workload.Random(2, 64<<10)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // vanish without MsgEnd

	serr := <-errc
	var te *TruncatedError
	if !errors.As(serr, &te) {
		t.Fatalf("server error = %v, want TruncatedError", serr)
	}
	if !errors.Is(serr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream does not unwrap to ErrUnexpectedEOF: %v", serr)
	}
	if _, ok := srv.Recipe("cutoff"); ok {
		t.Fatal("truncated stream was committed as a recipe")
	}
}

// TestOversizedFrameMidStreamDropsSession: announcing an over-limit
// Data frame inside a stream kills the session with FrameSizeError.
func TestOversizedFrameMidStreamDropsSession(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, _, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgBegin, []byte("hostile")); err != nil {
		t.Fatal(err)
	}
	var hdr [headerSize]byte
	hdr[0] = MsgData
	binary.BigEndian.PutUint32(hdr[1:], MaxFrame+7)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	serr := <-errc
	var fe *FrameSizeError
	if !errors.As(serr, &fe) || fe.Size != MaxFrame+7 {
		t.Fatalf("server error = %v, want FrameSizeError", serr)
	}
}

// TestRemoteErrorSurfacesTyped: a server-side failure reaches the
// client typed — and the unknown-name case specifically as a
// *NotFoundError matching ErrNotFound, not a generic RemoteError the
// caller would have to string-match.
func TestRemoteErrorSurfacesTyped(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	_, err = c.Restore("no-such-stream", io.Discard)
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Name != "no-such-stream" {
		t.Fatalf("restore of missing stream: %v, want *NotFoundError", err)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("restore not-found does not match ErrNotFound: %v", err)
	}
	// The session survives and the error is operation-scoped.
	if _, err := c.BackupBytes("after", []byte("still alive")); err != nil {
		t.Fatalf("session unusable after not-found restore: %v", err)
	}
}
