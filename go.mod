module shredder

go 1.24
