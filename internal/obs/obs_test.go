package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("test_active", "Active things.")
	g.Set(5)
	g.Dec()
	r.CounterFunc("test_func_total", "Scrape-time counter.", func() float64 { return 7 })
	r.GaugeFunc("test_ratio", "A fraction.", func() float64 { return 0.25 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"# TYPE test_active gauge",
		"test_active 4",
		"test_func_total 7",
		"test_ratio 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledChildrenAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_sessions_total", "Sessions.", "protocol", "3")
	b := r.Counter("test_sessions_total", "Sessions.", "protocol", "2")
	again := r.Counter("test_sessions_total", "Sessions.", "protocol", "3")
	if a == b {
		t.Fatal("different label values returned the same child")
	}
	if a != again {
		t.Fatal("same label values returned different children")
	}
	a.Add(4)
	b.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `test_sessions_total{protocol="2"} 1`) ||
		!strings.Contains(out, `test_sessions_total{protocol="3"} 4`) {
		t.Errorf("bad labeled render:\n%s", out)
	}
	if strings.Count(out, "# TYPE test_sessions_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestNilSafety proves the no-instrumentation contract: every operation
// on a nil registry or nil handle is a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y", "y")
	g.Set(1)
	g.Inc()
	g.Dec()
	h := r.Histogram("z_seconds", "z", nil)
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	r.CounterFunc("f_total", "f", func() float64 { return 1 })
	r.GaugeFunc("f2", "f", func() float64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUse hammers one registry from many goroutines —
// registration, mutation and scraping interleaved — and checks the
// final totals. Run under -race in CI.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("cc_total", "c")
			g := r.Gauge("cg", "g")
			h := r.Histogram("ch_seconds", "h", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				if i%100 == 0 {
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("cc_total", "c").Value(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("ch_seconds", "h", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
}

func TestWriteJSONIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "j", "kind", `we"ird`).Add(2)
	r.Histogram("j_seconds", "j", []float64{1}).Observe(0.5)
	r.GaugeFunc("j_nan", "j", func() float64 { return 2.5 })
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if m[`j_total{kind="we\"ird"}`] != 2.0 {
		t.Errorf("labeled counter missing: %v", m)
	}
	if m["j_seconds_count"] != 1.0 {
		t.Errorf("histogram count missing: %v", m)
	}
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	admin := NewAdmin(r, func(w io.Writer) { fmt.Fprintln(w, "chunks: 42") })
	ts := httptest.NewServer(admin)
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "a_total 1") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"a_total": 1`) {
		t.Errorf("/metrics?format=json: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz: %d", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz before drain: %d", code)
	}
	admin.SetDraining(true)
	if code, _ := get("/readyz"); code != 503 {
		t.Errorf("/readyz during drain: want 503")
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz during drain: want 200 (liveness is not readiness)")
	}
	if code, body := get("/statusz"); code != 200 ||
		!strings.Contains(body, "state: draining") || !strings.Contains(body, "chunks: 42") {
		t.Errorf("/statusz: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
}
