// Package experiments regenerates every measured table and figure of
// the paper (Table 1, Table 2, Figures 3, 5, 6, 9, 11, 12, 15, 18).
// Each experiment returns typed rows plus a renderer; cmd/shredbench
// prints them and the repository-level benchmarks wrap them, so the
// whole evaluation is reproducible from one place.
//
// Absolute numbers come from the calibrated simulation models (see
// DESIGN.md §5); the claims preserved are the paper's shapes: who wins,
// by what factor, and where curves saturate or cross.
package experiments

import (
	"fmt"
	"time"

	"shredder/internal/chunker"
	"shredder/internal/core"
	"shredder/internal/gpu"
	"shredder/internal/host"
	"shredder/internal/hostmem"
	"shredder/internal/pcie"
	"shredder/internal/sim"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

// Options sizes the experiments. The paper uses 1 GB streams; the
// defaults here are smaller so the full suite runs in seconds — all
// timing is simulated, so shapes are size-invariant (Figures report
// per-GB-normalized values where the paper does).
type Options struct {
	// DataBytes is the stream size for the chunking-pipeline
	// experiments (Figures 5, 9, 11, 12; Table 2 uses per-buffer sizes).
	DataBytes int64
	// Seed drives all synthetic data.
	Seed int64
	// TextBytes sizes the Figure 15 MapReduce input.
	TextBytes int
	// KMeansPoints sizes the Figure 15 k-means input.
	KMeansPoints int
	// ImageBytes sizes the Figure 18 VM image.
	ImageBytes int
}

// Default returns the standard experiment sizing.
func Default() Options {
	return Options{
		DataBytes:    256 << 20,
		Seed:         42,
		TextBytes:    12 << 20,
		KMeansPoints: 150_000,
		ImageBytes:   64 << 20,
	}
}

// BufferSizes is the sweep the paper uses in Figures 5, 6, 9, 11 and
// Table 2.
var BufferSizes = []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20}

// ---------------------------------------------------------------------
// Table 1 — GPU performance characteristics.
// ---------------------------------------------------------------------

// Table1 renders the device characteristics table.
func Table1() string {
	spec := gpu.C2050()
	io := host.DefaultIO()
	link := pcie.Default()
	t := stats.NewTable("Table 1: Performance characteristics of the GPU ("+spec.Name+")",
		"Parameter", "Value")
	t.AddRow("GPU Processing Capacity", fmt.Sprintf("%.0f GFlops", spec.GFlops))
	t.AddRow("Scalar cores", fmt.Sprintf("%d (%d SMs x %d SPs @ %.2f GHz)",
		spec.Cores(), spec.SMs, spec.SPsPerSM, spec.ClockHz/1e9))
	t.AddRow("Reader (I/O) Bandwidth", stats.GBps(io.ReaderBandwidth))
	t.AddRow("Host-to-Device Bandwidth", stats.GBps(link.H2DBandwidth))
	t.AddRow("Device-to-Host Bandwidth", stats.GBps(link.D2HBandwidth))
	t.AddRow("Device Memory Latency", fmt.Sprintf("%d - %d cycles",
		spec.MemLatencyMinCycles, spec.MemLatencyMaxCycles))
	t.AddRow("Device Memory Bandwidth", stats.GBps(spec.MemBandwidth))
	t.AddRow("Device Memory Size", stats.Bytes(spec.GlobalMemBytes))
	t.AddRow("Shared Memory per SM", stats.Bytes(int64(spec.SharedMemPerSM))+" (L1 latency)")
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 3 — host/device bandwidth vs. buffer size.
// ---------------------------------------------------------------------

// Fig3Row is one buffer size of the bandwidth sweep.
type Fig3Row struct {
	Buffer      int64
	H2DPageable float64
	H2DPinned   float64
	D2HPageable float64
	D2HPinned   float64
}

// Fig3 sweeps transfer bandwidth over buffer sizes 4 KB – 64 MB.
func Fig3() []Fig3Row {
	m := pcie.Default()
	var rows []Fig3Row
	for _, n := range []int64{4 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 32 << 20, 64 << 20} {
		rows = append(rows, Fig3Row{
			Buffer:      n,
			H2DPageable: m.Bandwidth(n, pcie.HostToDevice, pcie.Pageable),
			H2DPinned:   m.Bandwidth(n, pcie.HostToDevice, pcie.Pinned),
			D2HPageable: m.Bandwidth(n, pcie.DeviceToHost, pcie.Pageable),
			D2HPinned:   m.Bandwidth(n, pcie.DeviceToHost, pcie.Pinned),
		})
	}
	return rows
}

// RenderFig3 renders the sweep.
func RenderFig3(rows []Fig3Row) string {
	t := stats.NewTable("Figure 3: Bandwidth test between host and device",
		"Buffer", "H2D-Pageable", "H2D-Pinned", "D2H-Pageable", "D2H-Pinned")
	for _, r := range rows {
		t.AddRow(stats.Bytes(r.Buffer),
			stats.GBps(r.H2DPageable), stats.GBps(r.H2DPinned),
			stats.GBps(r.D2HPageable), stats.GBps(r.D2HPinned))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 5 — concurrent copy and execution.
// ---------------------------------------------------------------------

// Fig5Row compares serialized against double-buffered copy+execute for
// one buffer size, processing Options.DataBytes of data (the paper
// plots 1 GB).
type Fig5Row struct {
	Buffer     int64
	Transfer   time.Duration // total copy time
	Kernel     time.Duration // total kernel time
	Serialized time.Duration
	Concurrent time.Duration
	// OverlapFraction is how much of the copy time was hidden.
	OverlapFraction float64
}

// Fig5 runs the §4.1.1 experiment with the naive kernel (coalescing
// arrives later, in §4.3).
func Fig5(opt Options) ([]Fig5Row, error) {
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		return nil, err
	}
	kern, err := gpu.NewKernel(gpu.DefaultKernelConfig(), chk)
	if err != nil {
		return nil, err
	}
	link := pcie.Default()
	var rows []Fig5Row
	for _, buf := range BufferSizes {
		buffers := int((opt.DataBytes + buf - 1) / buf)
		xferT := link.TransferTime(buf, pcie.HostToDevice, pcie.Pinned)
		kernT := kern.EstimateTime(buf, gpu.NaiveGlobal)

		serialized := time.Duration(buffers) * (xferT + kernT)

		// Double buffering: transfer and kernel are independent
		// resources with two buffers in flight.
		var e sim.Engine
		xfer := sim.NewResource(&e, "transfer")
		kernel := sim.NewResource(&e, "kernel")
		tok := sim.NewTokens(&e, 2)
		for i := 0; i < buffers; i++ {
			tok.Acquire(func() {
				xfer.Submit(xferT, func(_, _ sim.Time) {
					kernel.Submit(kernT, func(_, _ sim.Time) {
						tok.Release()
					})
				})
			})
		}
		concurrent := e.Run().Duration()

		row := Fig5Row{
			Buffer:     buf,
			Transfer:   time.Duration(buffers) * xferT,
			Kernel:     time.Duration(buffers) * kernT,
			Serialized: serialized,
			Concurrent: concurrent,
		}
		if hidden := serialized - concurrent; row.Transfer > 0 {
			row.OverlapFraction = float64(hidden) / float64(row.Transfer)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig5 renders the comparison.
func RenderFig5(rows []Fig5Row, opt Options) string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 5: Overlap of communication with computation (%s of data)",
			stats.Bytes(opt.DataBytes)),
		"Buffer", "Transfer", "Kernel", "Serialized", "Concurrent", "CopyHidden")
	for _, r := range rows {
		t.AddRow(stats.Bytes(r.Buffer), stats.Ms(r.Transfer), stats.Ms(r.Kernel),
			stats.Ms(r.Serialized), stats.Ms(r.Concurrent),
			fmt.Sprintf("%.0f%%", r.OverlapFraction*100))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 6 — pageable vs. pinned allocation overhead.
// ---------------------------------------------------------------------

// Fig6Row compares allocation strategies for one buffer size.
type Fig6Row struct {
	Buffer        int64
	PageableAlloc time.Duration
	PinnedAlloc   time.Duration
	Memcpy        time.Duration // pageable-to-pinned staging copy
	RingAmortized time.Duration // pinned ring cost per use after Reuses uses
	Reuses        int
}

// Fig6 measures the §4.1.2 allocation costs; the ring is amortized over
// 64 uses per region.
func Fig6() []Fig6Row {
	m := hostmem.Default()
	const reuses = 64
	var rows []Fig6Row
	for _, n := range BufferSizes {
		rows = append(rows, Fig6Row{
			Buffer:        n,
			PageableAlloc: m.PageableAllocTime(n),
			PinnedAlloc:   m.PinnedAllocTime(n, 0),
			Memcpy:        m.MemcpyTime(n),
			RingAmortized: m.PinnedAllocTime(n, 0) / reuses,
			Reuses:        reuses,
		})
	}
	return rows
}

// RenderFig6 renders the allocation comparison.
func RenderFig6(rows []Fig6Row) string {
	t := stats.NewTable("Figure 6: Allocation overhead, pageable vs pinned memory",
		"Buffer", "PageableAlloc", "PinnedAlloc", "MemcpyP2P", "Ring/use")
	for _, r := range rows {
		t.AddRow(stats.Bytes(r.Buffer), stats.Ms(r.PageableAlloc),
			stats.Ms(r.PinnedAlloc), stats.Ms(r.Memcpy), stats.Ms(r.RingAmortized))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Table 2 — host spare cycles during asynchronous execution.
// ---------------------------------------------------------------------

// Table2Row reports one buffer size.
type Table2Row struct {
	Buffer     int64
	DeviceExec time.Duration
	HostLaunch time.Duration
	TotalExec  time.Duration
	SpareTicks uint64
}

// Table2 measures how idle the host is while the device works.
func Table2() ([]Table2Row, error) {
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		return nil, err
	}
	kern, err := gpu.NewKernel(gpu.DefaultKernelConfig(), chk)
	if err != nil {
		return nil, err
	}
	cpu := host.X5650()
	var rows []Table2Row
	for _, n := range BufferSizes {
		// Asynchronous copy overlaps the kernel, so device execution is
		// the greater of the two (the kernel, for the naive mode here).
		xfer := pcie.Default().TransferTime(n, pcie.HostToDevice, pcie.Pinned)
		kernT := kern.EstimateTime(n, gpu.NaiveGlobal)
		dev := kernT
		if xfer > dev {
			dev = xfer
		}
		// Kernel launch: driver entry plus argument marshaling, growing
		// slightly with buffer count metadata.
		launch := 25*time.Microsecond + time.Duration(float64(n)/2.5e12*1e9)
		rows = append(rows, Table2Row{
			Buffer:     n,
			DeviceExec: dev,
			HostLaunch: launch,
			TotalExec:  dev + launch,
			SpareTicks: cpu.RDTSCTicks(dev),
		})
	}
	return rows, nil
}

// RenderTable2 renders the spare-cycle table.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Table 2: Host spare cycles per core during asynchronous execution",
		"Buffer", "DeviceExec", "HostLaunch", "TotalExec", "RDTSC@2.67GHz")
	for _, r := range rows {
		t.AddRow(stats.Bytes(r.Buffer), stats.Ms(r.DeviceExec), stats.Ms(r.HostLaunch),
			stats.Ms(r.TotalExec), fmt.Sprintf("%.1e", float64(r.SpareTicks)))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 9 — streaming-pipeline speedup.
// ---------------------------------------------------------------------

// Fig9Row reports pipeline speedup for one buffer size.
type Fig9Row struct {
	Buffer  int64
	Speedup map[int]float64 // stages (2..4) -> speedup vs. serialized
}

// fig9Jitter perturbs a nominal stage time by ±25% using a seeded
// xorshift stream. Host pipeline stages are user-space threads subject
// to scheduling jitter; with deterministic service times a tandem queue
// hits its bottleneck rate as soon as two buffers are in flight, so the
// jitter is what makes deeper pipelines (which absorb the resulting
// bubbles) measurably faster — the effect behind Figure 9's 2-to-4
// stage growth.
func fig9Jitter(nominal time.Duration, state *uint64) time.Duration {
	*state ^= *state << 13
	*state ^= *state >> 7
	*state ^= *state << 17
	// Uniform in [0.75, 1.25).
	f := 0.75 + float64(*state%1000)/2000
	return time.Duration(float64(nominal) * f)
}

// Fig9 replays the four-stage pipeline with 2..4 buffers admitted,
// exactly the §4.2 experiment.
func Fig9(opt Options) ([]Fig9Row, error) {
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		return nil, err
	}
	kern, err := gpu.NewKernel(gpu.DefaultKernelConfig(), chk)
	if err != nil {
		return nil, err
	}
	io := host.DefaultIO()
	link := pcie.Default()
	var rows []Fig9Row
	for _, buf := range BufferSizes {
		buffers := int((opt.DataBytes + buf - 1) / buf)
		readT := io.ReadTime(buf)
		xferT := link.TransferTime(buf, pcie.HostToDevice, pcie.Pinned)
		kernT := kern.EstimateTime(buf, gpu.NaiveGlobal)
		// Store: boundary DMA back plus per-chunk upcalls.
		chunks := buf / 8192
		storeT := link.TransferTime(chunks*8, pcie.DeviceToHost, pcie.Pinned) +
			time.Duration(chunks)*time.Microsecond

		pipeline := func(depth int) time.Duration {
			var e sim.Engine
			rs := []*sim.Resource{
				sim.NewResource(&e, "reader"), sim.NewResource(&e, "transfer"),
				sim.NewResource(&e, "kernel"), sim.NewResource(&e, "store"),
			}
			nominal := []time.Duration{readT, xferT, kernT, storeT}
			tok := sim.NewTokens(&e, depth)
			jitter := uint64(opt.Seed)*2654435761 + uint64(buf)
			for i := 0; i < buffers; i++ {
				times := make([]time.Duration, len(nominal))
				for s := range nominal {
					times[s] = fig9Jitter(nominal[s], &jitter)
				}
				tok.Acquire(func() {
					rs[0].Submit(times[0], func(_, _ sim.Time) {
						rs[1].Submit(times[1], func(_, _ sim.Time) {
							rs[2].Submit(times[2], func(_, _ sim.Time) {
								rs[3].Submit(times[3], func(_, _ sim.Time) {
									tok.Release()
								})
							})
						})
					})
				})
			}
			return e.Run().Duration()
		}
		serial := pipeline(1)
		row := Fig9Row{Buffer: buf, Speedup: make(map[int]float64)}
		for depth := 2; depth <= 4; depth++ {
			row.Speedup[depth] = serial.Seconds() / pipeline(depth).Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig9 renders the speedups.
func RenderFig9(rows []Fig9Row, opt Options) string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 9: Speedup for streaming pipelined execution (%s of data)",
			stats.Bytes(opt.DataBytes)),
		"Buffer", "2-Staged", "3-Staged", "4-Staged")
	for _, r := range rows {
		t.AddRow(stats.Bytes(r.Buffer),
			stats.Speedup(r.Speedup[2]), stats.Speedup(r.Speedup[3]), stats.Speedup(r.Speedup[4]))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 11 — memory coalescing in the chunking kernel.
// ---------------------------------------------------------------------

// Fig11Row compares kernel time with and without coalescing.
type Fig11Row struct {
	Buffer    int64
	Naive     time.Duration
	Coalesced time.Duration
	Speedup   float64
}

// Fig11 measures total kernel time to chunk Options.DataBytes.
func Fig11(opt Options) ([]Fig11Row, error) {
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		return nil, err
	}
	kern, err := gpu.NewKernel(gpu.DefaultKernelConfig(), chk)
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, buf := range BufferSizes {
		buffers := int64((opt.DataBytes + buf - 1) / buf)
		naive := time.Duration(buffers) * kern.EstimateTime(buf, gpu.NaiveGlobal)
		coal := time.Duration(buffers) * kern.EstimateTime(buf, gpu.Coalesced)
		rows = append(rows, Fig11Row{
			Buffer: buf, Naive: naive, Coalesced: coal,
			Speedup: naive.Seconds() / coal.Seconds(),
		})
	}
	return rows, nil
}

// RenderFig11 renders the kernel-time comparison.
func RenderFig11(rows []Fig11Row, opt Options) string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 11: Chunking kernel time (%s of data)", stats.Bytes(opt.DataBytes)),
		"Buffer", "DeviceMemory", "MemoryCoalescing", "Speedup")
	for _, r := range rows {
		t.AddRow(stats.Bytes(r.Buffer), stats.Ms(r.Naive), stats.Ms(r.Coalesced),
			stats.Speedup(r.Speedup))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 12 — end-to-end chunking throughput.
// ---------------------------------------------------------------------

// Fig12Row is one bar of the throughput comparison.
type Fig12Row struct {
	Name              string
	Throughput        float64 // bytes/sec
	SpeedupVsCPUHoard float64
}

// Fig12 compares the two host baselines with the three GPU pipeline
// configurations, chunking a real Options.DataBytes stream.
func Fig12(opt Options) ([]Fig12Row, error) {
	cm := host.DefaultChunkModel()
	rows := []Fig12Row{
		{Name: "CPU w/o Hoard", Throughput: cm.Throughput(host.Malloc)},
		{Name: "CPU w/ Hoard", Throughput: cm.Throughput(host.Hoard)},
	}
	data := workload.Random(opt.Seed, int(opt.DataBytes))
	for _, mode := range []core.Mode{core.Basic, core.Streams, core.StreamsCoalesced} {
		cfg := core.DefaultConfig()
		cfg.Mode = mode
		cfg.BufferSize = 32 << 20
		s, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			return nil, err
		}
		name := "GPU Basic"
		switch mode {
		case core.Streams:
			name = "GPU Streams"
		case core.StreamsCoalesced:
			name = "GPU Streams + Memory"
		}
		rows = append(rows, Fig12Row{Name: name, Throughput: rep.Throughput})
	}
	base := rows[1].Throughput
	for i := range rows {
		rows[i].SpeedupVsCPUHoard = rows[i].Throughput / base
	}
	return rows, nil
}

// RenderFig12 renders the throughput bars.
func RenderFig12(rows []Fig12Row, opt Options) string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 12: Content-based chunking throughput, CPU vs GPU (%s stream)",
			stats.Bytes(opt.DataBytes)),
		"Configuration", "Throughput", "vs CPU w/ Hoard")
	for _, r := range rows {
		t.AddRow(r.Name, stats.GBps(r.Throughput), stats.Speedup(r.SpeedupVsCPUHoard))
	}
	return t.String()
}
