package shredder

import (
	"testing"

	"shredder/internal/experiments"
)

// benchOptions sizes the experiments for benchmarking: large enough
// that every pipeline has several buffers in flight, small enough that
// the full suite finishes in tens of seconds. All reported *figures*
// come from the simulated clock and are size-invariant in shape.
func benchOptions() experiments.Options {
	opt := experiments.Default()
	opt.DataBytes = 128 << 20
	opt.TextBytes = 4 << 20
	opt.KMeansPoints = 50_000
	opt.ImageBytes = 32 << 20
	return opt
}

// BenchmarkTable1Spec regenerates Table 1 (GPU performance
// characteristics).
func BenchmarkTable1Spec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig3Bandwidth regenerates Figure 3 (host/device bandwidth vs
// buffer size, pageable vs pinned, both directions).
func BenchmarkFig3Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig5Overlap regenerates Figure 5 (serialized vs concurrent
// copy+execute).
func BenchmarkFig5Overlap(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Alloc regenerates Figure 6 (pageable vs pinned
// allocation overhead and the ring's amortization).
func BenchmarkFig6Alloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2SpareCycles regenerates Table 2 (host spare cycles
// during asynchronous device execution).
func BenchmarkTable2SpareCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Pipeline regenerates Figure 9 (streaming-pipeline
// speedup at 2–4 stages).
func BenchmarkFig9Pipeline(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Coalescing regenerates Figure 11 (chunking-kernel time,
// naive device memory vs memory coalescing).
func BenchmarkFig11Coalescing(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Throughput regenerates Figure 12 (end-to-end chunking
// throughput: CPU±Hoard, GPU Basic/Streams/Streams+Memory). This one
// chunks real bytes through the whole pipeline.
func BenchmarkFig12Throughput(b *testing.B) {
	opt := benchOptions()
	b.SetBytes(opt.DataBytes * 3) // three GPU configurations per iteration
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("expected five configurations")
		}
	}
}

// BenchmarkFig15Incremental regenerates Figure 15 (incremental
// MapReduce speedups for word count, co-occurrence and k-means).
func BenchmarkFig15Incremental(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(experiments.Fig15ChangePcts) {
			b.Fatal("missing change percentages")
		}
	}
}

// BenchmarkFig18Backup regenerates Figure 18 (cloud-backup bandwidth vs
// image similarity, CPU vs GPU).
func BenchmarkFig18Backup(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig18(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(experiments.Fig18Probs) {
			b.Fatal("missing probabilities")
		}
	}
}
