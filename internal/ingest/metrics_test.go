package ingest

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"shredder/internal/obs"
	"shredder/internal/workload"
)

// metricValue extracts one sample from a Prometheus text exposition.
// metric may carry labels, e.g. `ingest_sessions_total{protocol="3"}`.
func metricValue(t *testing.T, body, metric string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok && name == metric {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q: %v", metric, val, err)
			}
			return f
		}
	}
	t.Fatalf("metric %s not found in scrape:\n%s", metric, body)
	return 0
}

// TestMetricsScrapeUnderConcurrentDedupSessions runs four concurrent
// dedup-wire clients against an instrumented server while /metrics is
// scraped continuously (the -race interleaving this file exists for),
// then asserts the final scrape is internally consistent: the
// logical-bytes counter equals the sum of the per-stream stats the
// clients were acked with, the active-session gauge is back to zero
// after the drain, and the session/frame counters match the traffic.
func TestMetricsScrapeUnderConcurrentDedupSessions(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	// Exercise the per-session logging path under race too.
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	web := httptest.NewServer(obs.NewAdmin(reg, nil))
	defer web.Close()

	stopScrape := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stopScrape:
				scrapeErr <- nil
				return
			default:
			}
			resp, err := http.Get(web.URL + "/metrics")
			if err != nil {
				scrapeErr <- err
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	const sessions = 4
	const streamsPer = 3
	var mu sync.Mutex
	var wantLogical int64
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if _, err := c.NegotiateDedup(DefaultConfig().Shredder.Chunking); err != nil {
				t.Error(err)
				return
			}
			// The same image per client: later streams dedup against
			// earlier ones, exercising pins and skipped bodies.
			data := workload.Random(int64(i), 512<<10)
			for s := 0; s < streamsPer; s++ {
				st, err := c.BackupDedupBytes(fmt.Sprintf("c%d-s%d", i, s), data)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				wantLogical += st.Bytes
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(stopScrape)
	if err := <-scrapeErr; err != nil {
		t.Fatalf("concurrent scrape: %v", err)
	}

	l.Close()
	if err := <-serveErr; err == nil {
		t.Fatal("Serve returned nil after listener close")
	}
	srv.Shutdown(5 * time.Second)

	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := string(raw)

	if got := metricValue(t, body, "ingest_logical_bytes_total"); got != float64(wantLogical) {
		t.Errorf("ingest_logical_bytes_total = %v, want %d (sum of acked per-stream bytes)", got, wantLogical)
	}
	if got := metricValue(t, body, "ingest_sessions_active"); got != 0 {
		t.Errorf("ingest_sessions_active = %v after drain, want 0", got)
	}
	if got := metricValue(t, body, `ingest_sessions_total{protocol="4"}`); got != sessions {
		t.Errorf(`ingest_sessions_total{protocol="4"} = %v, want %d`, got, sessions)
	}
	if got := metricValue(t, body, `ingest_frames_total{type="commit"}`); got != sessions*streamsPer {
		t.Errorf(`ingest_frames_total{type="commit"} = %v, want %d`, got, sessions*streamsPer)
	}
	if got := metricValue(t, body, "ingest_chunks_skipped_total"); got == 0 {
		t.Error("ingest_chunks_skipped_total = 0, want > 0 (repeat streams dedup)")
	}
	sent := metricValue(t, body, "ingest_chunks_sent_total")
	skipped := metricValue(t, body, "ingest_chunks_skipped_total")
	if sent+skipped == 0 {
		t.Error("no chunks accounted at all")
	}
	// The store-layer families must be present on the same registry.
	if got := metricValue(t, body, "shardstore_logical_bytes"); got != float64(wantLogical) {
		t.Errorf("shardstore_logical_bytes = %v, want %d", got, wantLogical)
	}
}

// TestProtocolErrorMetric asserts a session that dies on a protocol
// violation is classified into the typed error-kind counter.
func TestProtocolErrorMetric(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cend, send := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(send) }()
	// A BeginDedup on a never-negotiated (legacy) session is an
	// UnexpectedFrameError.
	if err := writeFrame(cend, MsgBeginDedup, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Drain the server's Error frame so its flush over the pipe can
	// complete and the session can die.
	go func() { _, _ = io.Copy(io.Discard, cend) }()
	if err := <-done; err == nil {
		t.Fatal("session survived BeginDedup without negotiation")
	}
	cend.Close()
	send.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if got := metricValue(t, body, `ingest_protocol_errors_total{kind="unexpected_frame"}`); got != 1 {
		t.Errorf(`ingest_protocol_errors_total{kind="unexpected_frame"} = %v, want 1`, got)
	}
	if got := metricValue(t, body, "ingest_sessions_active"); got != 0 {
		t.Errorf("ingest_sessions_active = %v, want 0", got)
	}
}
