// Package shardstore implements a sharded, lock-striped, concurrency-
// safe content-addressed chunk store: the service-grade successor to
// the single-goroutine dedup.Store. The fingerprint space is split into
// N independent shards keyed by a hash prefix; each shard owns its own
// index, container set and reference counts behind its own lock, so
// concurrent sessions ingesting into disjoint regions of the hash space
// never contend. Aggregate statistics are maintained with atomics and
// are exact whenever the store is quiescent.
//
// Chunk bytes live behind a pluggable Backing: MemoryBacking keeps
// containers in RAM (the default, via New), while internal/persist
// backs them with on-disk container files plus a per-shard write-ahead
// log, so Open rebuilds the exact index, refcounts, recipes and Stats
// after a restart.
//
// The store is fully content-addressed end to end: a Recipe is an
// ordered list of chunk fingerprints, resolved through the index at
// restore time. Physical locations (Refs) are an implementation detail
// the compactor is free to rewrite — DeleteRecipe releases a recipe's
// references (entries reaching zero are dropped from the index), and
// Compact rewrites mostly-dead containers so the reclaimed bytes
// actually return to the operating system.
//
// Ingest semantics are byte-identical to dedup.Store: the same sequence
// of Put calls classifies exactly the same chunks as duplicates,
// produces the same aggregate Stats, and reconstructs streams
// byte-exactly. With a single shard the packing (container/offset/
// length of every ref) is identical to dedup.Store as well; the
// differential test in this package asserts both properties.
package shardstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shredder/internal/dedup"
	"shredder/internal/obs"
)

// Hash is a chunk fingerprint (re-exported so callers need not import
// dedup just for the type).
type Hash = dedup.Hash

// Ref locates a stored chunk: a shard, a container within the shard,
// and a byte range within the container. Refs are valid until the
// compactor moves the chunk; durable identity lives in the fingerprint.
type Ref struct {
	Shard     int
	Container int
	Offset    int64
	Length    int64
}

// Recipe is the ordered list of chunk fingerprints that reconstructs
// one stream. Recipes are content-addressed on purpose: they survive
// compaction (which moves chunk bytes between containers) unchanged,
// and deleting one is exactly a reference-count release per entry.
type Recipe []Hash

// MaxShards bounds the shard count; 1024 shards of independent maps is
// far past the point of diminishing returns for in-memory indexes.
const MaxShards = 1024

// ErrUnknownRecipe reports a DeleteRecipe (or restore) of a stream
// name the store has no recipe for.
var ErrUnknownRecipe = errors.New("shardstore: unknown recipe")

// loc is a physical location within one shard, the reverse-index key
// mapping a container slot back to the fingerprint stored there.
type loc struct {
	container int
	offset    int64
}

// spanSink is implemented by backings that can attribute their I/O
// (WAL appends, fsyncs, recipe-journal writes) to the span of the
// request being served. The store installs the active span before
// calling into the backing and clears it afterwards, always under the
// same lock that serializes the backing's mutations, so the backing
// reads it without further synchronization. MemoryBacking does not
// implement it; persist's shards and recipe journal do.
type spanSink interface {
	SetSpan(*obs.Span)
}

// shard is one stripe of the store. All fields but the immutable idx,
// back and sink handles are guarded by mu.
type shard struct {
	mu       sync.RWMutex
	idx      int // this shard's position in Store.shards
	back     ShardBacking
	sink     spanSink // back as a spanSink, nil when unsupported
	index    map[Hash]Ref
	refcount map[Hash]int64
	// live tracks the live (index-referenced) bytes per container, the
	// signal the compactor picks victims by; byLoc is the reverse index
	// from location to fingerprint, maintained on insert/relocate/drop.
	live  map[int]int64
	byLoc map[loc]Hash
}

// setSpan hands the active span to the backing when it cares. The
// caller holds sh.mu (write) and must clear with setSpan(nil) before
// unlocking so a later uninstrumented request is not misattributed.
func (sh *shard) setSpan(sp *obs.Span) {
	if sh.sink != nil {
		sh.sink.SetSpan(sp)
	}
}

// Store is a sharded deduplicating chunk store. All methods are safe
// for concurrent use by any number of goroutines.
type Store struct {
	backing Backing
	shards  []*shard
	mask    uint32

	// Recipes recorded via CommitRecipe, keyed by stream name.
	rmu     sync.RWMutex
	recipes map[string]Recipe

	// Aggregate statistics, maintained atomically.
	logical atomic.Int64
	stored  atomic.Int64
	chunks  atomic.Int64
	unique  atomic.Int64
	hits    atomic.Int64

	// Observability totals (monotonic, unlike the stats above which
	// deletions wind back) and the optional hot-path histogram.
	// missingSeconds is set once by Instrument, before the store serves
	// traffic; nil costs each query one pointer check.
	releases       atomic.Int64
	compactions    atomic.Int64
	compactedBytes atomic.Int64
	movedBytes     atomic.Int64
	missingSeconds *obs.Histogram

	// recipeSink is the backing as a spanSink for the recipe-journal
	// path (nil when the backing does not implement it).
	recipeSink spanSink

	// barrier is the backing's group-commit wait (nil when the backing
	// fsyncs inline). It is always called OUTSIDE the stripe locks and
	// the recipe mutex: waiting a commit window under a lock would
	// serialize the very sessions group commit exists to batch.
	barrier func() error
}

// New returns an empty in-memory store with the given shard count (a
// power of two in [1, MaxShards]; 0 means 16) and container size (0
// means dedup.DefaultContainerSize).
func New(shards int, containerSize int64) (*Store, error) {
	b, err := NewMemoryBacking(shards, containerSize)
	if err != nil {
		return nil, err
	}
	return Open(b)
}

// Open builds a store on a backing, replaying the backing's recovered
// state (index entries, refcounts, recipes) into memory and deriving
// the aggregate Stats from it. On a fresh backing this is an empty
// store; on a reopened durable backing it is exactly the store that
// was closed: same duplicate classification, same refs, same Stats.
func Open(b Backing) (*Store, error) {
	n := b.NumShards()
	if n < 1 || n > MaxShards || n&(n-1) != 0 {
		return nil, fmt.Errorf("shardstore: backing has invalid shard count %d", n)
	}
	s := &Store{backing: b, shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		sh := &shard{
			idx:      i,
			back:     b.Shard(i),
			index:    make(map[Hash]Ref),
			refcount: make(map[Hash]int64),
			live:     make(map[int]int64),
			byLoc:    make(map[loc]Hash),
		}
		sh.sink, _ = sh.back.(spanSink)
		err := sh.back.Recover(func(h Hash, ref Ref, rc int64) error {
			if rc < 1 {
				return fmt.Errorf("shardstore: shard %d recovered refcount %d for %x", i, rc, h[:8])
			}
			ref.Shard = i
			sh.index[h] = ref
			sh.refcount[h] = rc
			sh.live[ref.Container] += ref.Length
			sh.byLoc[loc{ref.Container, ref.Offset}] = h
			// Every counter is derivable from the recovered entries: one
			// unique insert plus rc-1 duplicate hits of ref.Length bytes.
			s.unique.Add(1)
			s.stored.Add(ref.Length)
			s.chunks.Add(rc)
			s.logical.Add(rc * ref.Length)
			s.hits.Add(rc - 1)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("shardstore: recover shard %d: %w", i, err)
		}
		s.shards[i] = sh
	}
	recipes, err := b.Recipes()
	if err != nil {
		return nil, fmt.Errorf("shardstore: recover recipes: %w", err)
	}
	// The contract hands ownership of the returned map to the caller
	// (nil for a fresh or non-durable backing).
	s.recipes = recipes
	if s.recipes == nil {
		s.recipes = make(map[string]Recipe)
	}
	s.recipeSink, _ = b.(spanSink)
	if bb, ok := b.(BarrierBacking); ok {
		s.barrier = bb.Barrier
	}
	return s, nil
}

// commitBarrier waits out the backing's group-commit round, if it has
// one, so an ack never outruns durability. Call sites sit after every
// lock release on each commit path.
func (s *Store) commitBarrier() error {
	if s.barrier == nil {
		return nil
	}
	return s.barrier()
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardFor maps a fingerprint to its shard by high-order prefix.
func (s *Store) shardFor(h Hash) *shard {
	return s.shards[binary.BigEndian.Uint32(h[:4])&s.mask]
}

// Put stores one chunk, returning its location and whether it was a
// duplicate of existing content. A non-nil error means the backing
// rejected the write (impossible for MemoryBacking).
func (s *Store) Put(data []byte) (Ref, bool, error) {
	return s.PutHashed(dedup.Sum(data), data)
}

// PutHashed stores one chunk whose fingerprint the caller has already
// computed — the entry point for protocols that ship hashes ahead of
// data (client-side matching), and the primitive Put builds on. Like
// PutBatch, a chunk that was applied stays applied (and accounted)
// even when the backing's Commit then fails — the aggregate Stats must
// keep matching the index a restart would recover.
func (s *Store) PutHashed(h Hash, data []byte) (Ref, bool, error) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	ref, dup, err := sh.put(h, data)
	var cerr error
	if err == nil {
		cerr = sh.back.Commit()
	}
	sh.mu.Unlock()
	if err != nil {
		return Ref{}, false, err
	}
	s.account(int64(len(data)), dup)
	if cerr == nil {
		cerr = s.commitBarrier()
	}
	return ref, dup, cerr
}

// account updates the aggregate counters for one stored chunk.
func (s *Store) account(n int64, dup bool) {
	s.chunks.Add(1)
	s.logical.Add(n)
	if dup {
		s.hits.Add(1)
	} else {
		s.unique.Add(1)
		s.stored.Add(n)
	}
}

// put is the single-shard insert; the caller holds sh.mu.
func (sh *shard) put(h Hash, data []byte) (Ref, bool, error) {
	if ref, ok := sh.index[h]; ok {
		if err := sh.back.LogRefDelta(h, 1); err != nil {
			return Ref{}, false, err
		}
		sh.refcount[h]++
		return ref, true, nil
	}
	ci, off, err := sh.back.Append(h, data)
	if err != nil {
		return Ref{}, false, err
	}
	ref := Ref{Shard: sh.idx, Container: ci, Offset: off, Length: int64(len(data))}
	sh.index[h] = ref
	sh.refcount[h] = 1
	sh.live[ci] += ref.Length
	sh.byLoc[loc{ci, off}] = h
	return ref, false, nil
}

// release drops one reference from h; at zero the entry leaves the
// index (its bytes stay in the container until compaction). The caller
// holds sh.mu and has already journaled the decrement.
func (sh *shard) release(h Hash, ref Ref) (freed bool) {
	sh.refcount[h]--
	if sh.refcount[h] > 0 {
		return false
	}
	delete(sh.index, h)
	delete(sh.refcount, h)
	delete(sh.byLoc, loc{ref.Container, ref.Offset})
	sh.live[ref.Container] -= ref.Length
	sh.back.Forget(h)
	return true
}

// Has reports whether a chunk with fingerprint h is already stored —
// the Matching step (§2.1, step 3) — without writing anything.
func (s *Store) Has(h Hash) (Ref, bool) {
	sh := s.shardFor(h)
	sh.mu.RLock()
	ref, ok := sh.index[h]
	sh.mu.RUnlock()
	return ref, ok
}

// HasBatch answers one Matching query per fingerprint, grouping the
// queries by shard so each stripe lock is taken at most once.
func (s *Store) HasBatch(hs []Hash) []bool {
	out := make([]bool, len(hs))
	_ = s.byShard(hs, func(sh *shard, idxs []int) error {
		sh.mu.RLock()
		for _, i := range idxs {
			_, out[i] = sh.index[hs[i]]
		}
		sh.mu.RUnlock()
		return nil
	})
	return out
}

// Missing is the batched negative Matching query: it returns the
// ascending indices into hs of the fingerprints the store has no chunk
// for. It is read-only and racy by nature — a fingerprint reported
// missing may be inserted by a concurrent session a microsecond later
// — so the ingest protocol's missing-set answer uses PinBatch instead.
func (s *Store) Missing(hs []Hash) []int {
	if h := s.missingSeconds; h != nil {
		defer h.ObserveSince(time.Now())
	}
	found := s.HasBatch(hs)
	missing := make([]int, 0, len(hs))
	for i, ok := range found {
		if !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// PinBatch answers a batched Matching query while taking one reference
// on every fingerprint it answers "present" for, under that shard's
// stripe lock and journaled like any duplicate hit. This is the
// primitive behind the ingest protocol's HasBatch: by the time the
// server tells a client to skip a chunk body, the stream's reference
// is already counted, so no concurrent reclaim — DeleteRecipe or the
// compactor — can free the chunk between the answer and the stream's
// recipe commit. Present fingerprints get their Ref in refs and are
// accounted exactly like a duplicate Put; absent ones come back as
// ascending indices in missing with a zero Ref. On a backing error the
// batch stops early: pins already applied stay applied (and accounted).
func (s *Store) PinBatch(hs []Hash) (refs []Ref, missing []int, err error) {
	return s.PinBatchTraced(hs, nil)
}

// PinBatchTraced is PinBatch attributed to a span: the backing's WAL
// appends and fsyncs for the pins become children of sp, and the
// latency observation carries sp's trace as its bucket exemplar. A nil
// sp is exactly PinBatch.
func (s *Store) PinBatchTraced(hs []Hash, sp *obs.Span) (refs []Ref, missing []int, err error) {
	if h := s.missingSeconds; h != nil {
		defer h.ObserveSinceExemplar(time.Now(), sp.Trace())
	}
	refs = make([]Ref, len(hs))
	found := make([]bool, len(hs))
	var logical, chunksN, dups int64
	err = s.byShard(hs, func(sh *shard, idxs []int) error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sp != nil {
			sh.setSpan(sp)
			defer sh.setSpan(nil)
		}
		pinned := false
		for _, i := range idxs {
			ref, ok := sh.index[hs[i]]
			if !ok {
				continue
			}
			if err := sh.back.LogRefDelta(hs[i], 1); err != nil {
				return err
			}
			sh.refcount[hs[i]]++
			refs[i], found[i] = ref, true
			chunksN++
			dups++
			logical += ref.Length
			pinned = true
		}
		if pinned {
			return sh.back.Commit()
		}
		return nil
	})
	if err == nil {
		err = s.commitBarrier()
	}
	s.chunks.Add(chunksN)
	s.logical.Add(logical)
	s.hits.Add(dups)
	missing = make([]int, 0, len(hs))
	for i, ok := range found {
		if !ok {
			missing = append(missing, i)
		}
	}
	return refs, missing, err
}

// PutBatch stores a batch of chunks in order, grouping the inserts by
// shard so each stripe lock is taken at most once per batch. Refs and
// duplicate flags come back in input order. The classification is
// identical to calling Put sequentially: a chunk repeated within the
// batch maps to the same shard and is seen there in input order. On a
// backing error the batch stops early: chunks already applied stay
// applied (and accounted), the rest of the refs are zero.
func (s *Store) PutBatch(chunks [][]byte) ([]Ref, []bool, error) {
	hs := make([]Hash, len(chunks))
	for i, c := range chunks {
		hs[i] = dedup.Sum(c)
	}
	return s.PutHashedBatch(hs, chunks)
}

// PutHashedBatch is PutBatch for callers that already hold the
// fingerprints — the ingest server's body-upload path, which hashed
// every uploaded chunk to verify it against the client's announcement.
// Each hs[i] MUST be dedup.Sum(chunks[i]); storing under any other
// address would corrupt every stream that later dedups against it, so
// callers ingesting untrusted bytes verify first.
func (s *Store) PutHashedBatch(hs []Hash, chunks [][]byte) ([]Ref, []bool, error) {
	return s.PutHashedBatchTraced(hs, chunks, nil)
}

// PutHashedBatchTraced is PutHashedBatch attributed to a span: each
// shard's slice of the batch runs under a shard_put child span, and
// the backing's WAL appends and fsyncs nest under it. A nil sp is
// exactly PutHashedBatch.
func (s *Store) PutHashedBatchTraced(hs []Hash, chunks [][]byte, sp *obs.Span) ([]Ref, []bool, error) {
	if len(hs) != len(chunks) {
		return nil, nil, fmt.Errorf("shardstore: %d fingerprints for %d chunks", len(hs), len(chunks))
	}
	refs := make([]Ref, len(chunks))
	dup := make([]bool, len(chunks))
	var logical, stored int64
	var chunksN, dups, uniques int64
	err := s.byShard(hs, func(sh *shard, idxs []int) error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sp != nil {
			ssp := sp.Child("shard_put",
				obs.Int("shard", int64(sh.idx)), obs.Int("chunks", int64(len(idxs))))
			defer ssp.End()
			sh.setSpan(ssp)
			defer sh.setSpan(nil)
		}
		for _, i := range idxs {
			var perr error
			refs[i], dup[i], perr = sh.put(hs[i], chunks[i])
			if perr != nil {
				return perr
			}
			chunksN++
			logical += int64(len(chunks[i]))
			if dup[i] {
				dups++
			} else {
				uniques++
				stored += int64(len(chunks[i]))
			}
		}
		return sh.back.Commit()
	})
	if err == nil {
		err = s.commitBarrier()
	}
	s.chunks.Add(chunksN)
	s.logical.Add(logical)
	s.hits.Add(dups)
	s.unique.Add(uniques)
	s.stored.Add(stored)
	return refs, dup, err
}

// byShard partitions hash indices by destination shard and invokes fn
// once per non-empty shard, preserving input order within each group.
// It stops at the first error.
func (s *Store) byShard(hs []Hash, fn func(sh *shard, idxs []int) error) error {
	if len(hs) == 0 {
		return nil
	}
	groups := make(map[uint32][]int, len(s.shards))
	for i, h := range hs {
		si := binary.BigEndian.Uint32(h[:4]) & s.mask
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		if err := fn(s.shards[si], idxs); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the bytes of a stored chunk. The returned slice is a
// read-only view (for MemoryBacking, into the shard's container; for a
// durable backing, a fresh read) and stays valid because containers
// are append-only and only dropped once the index no longer references
// them.
func (s *Store) Get(ref Ref) ([]byte, error) {
	if ref.Shard < 0 || ref.Shard >= len(s.shards) {
		return nil, fmt.Errorf("shardstore: shard %d out of range", ref.Shard)
	}
	sh := s.shards[ref.Shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.back.Read(ref.Container, ref.Offset, ref.Length)
}

// GetByHash resolves a fingerprint through the index and returns the
// chunk's bytes — the content-addressed read the restore path uses, so
// recipes stay valid when compaction moves chunks. ok is false when the
// store holds no chunk for h.
func (s *Store) GetByHash(h Hash) (data []byte, ok bool, err error) {
	sh := s.shardFor(h)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ref, ok := sh.index[h]
	if !ok {
		return nil, false, nil
	}
	data, err = sh.back.Read(ref.Container, ref.Offset, ref.Length)
	return data, true, err
}

// Stats returns the aggregate statistics. Each field is maintained
// atomically; when the store is quiescent the snapshot is exact and
// equal to what dedup.Store would report for the same inputs (and,
// after deletions, to what a store that never saw the deleted streams
// would report).
func (s *Store) Stats() dedup.Stats {
	return dedup.Stats{
		LogicalBytes: s.logical.Load(),
		StoredBytes:  s.stored.Load(),
		Chunks:       s.chunks.Load(),
		UniqueChunks: s.unique.Load(),
		IndexHits:    s.hits.Load(),
	}
}

// Containers returns the total number of container slots across all
// shards (slots dropped by compaction still count; refs stay stable).
func (s *Store) Containers() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += sh.back.Containers()
		sh.mu.RUnlock()
	}
	return total
}

// Refcount returns the current reference count for a fingerprint.
func (s *Store) Refcount(h Hash) int64 {
	sh := s.shardFor(h)
	sh.mu.RLock()
	n := sh.refcount[h]
	sh.mu.RUnlock()
	return n
}

// WriteStream stores an already-chunked stream, returning its recipe
// and the number of duplicate chunks.
func (s *Store) WriteStream(chunks [][]byte) (Recipe, int, error) {
	hs := make([]Hash, len(chunks))
	for i, c := range chunks {
		hs[i] = dedup.Sum(c)
	}
	_, dup, err := s.PutHashedBatch(hs, chunks)
	if err != nil {
		return nil, 0, err
	}
	dups := 0
	for _, d := range dup {
		if d {
			dups++
		}
	}
	return Recipe(hs), dups, nil
}

// CommitRecipe records a named stream recipe, durably if the backing
// is. A recommitted name replaces the previous recipe AND releases the
// replaced recipe's references, exactly like deleting it — a client
// re-backing-up under a fixed name must not pin last night's chunks
// forever. The new recipe is journaled (replay is last-wins) before
// the old references are released, so a crash in between leaks
// references but never leaves the surviving recipe dangling.
func (s *Store) CommitRecipe(name string, r Recipe) error {
	return s.CommitRecipeTraced(name, r, nil)
}

// CommitRecipeTraced is CommitRecipe attributed to a span: the recipe
// journal append and its fsync become children of sp, as does the
// release of a replaced recipe's references. A nil sp is exactly
// CommitRecipe.
func (s *Store) CommitRecipeTraced(name string, r Recipe, sp *obs.Span) error {
	s.rmu.Lock()
	if sp != nil && s.recipeSink != nil {
		s.recipeSink.SetSpan(sp)
	}
	old, replaced := s.recipes[name]
	err := s.backing.CommitRecipe(name, r)
	if sp != nil && s.recipeSink != nil {
		s.recipeSink.SetSpan(nil)
	}
	if err != nil {
		s.rmu.Unlock()
		return err
	}
	s.recipes[name] = r
	s.rmu.Unlock()
	// The barrier runs after the recipe mutex is released so concurrent
	// commits share one group round; the new recipe is durable before
	// either the ack or the release of the replaced recipe's refs.
	if err := s.commitBarrier(); err != nil {
		return err
	}
	if !replaced {
		return nil
	}
	_, err = s.releaseRefs(old, sp)
	return err
}

// DeleteStats reports what one DeleteRecipe released.
type DeleteStats struct {
	// ChunksReleased counts the references given back (one per recipe
	// entry that resolved to a live chunk).
	ChunksReleased int64
	// ChunksFreed counts the entries whose reference count reached
	// zero and left the index; BytesFreed is their total size — bytes
	// the next compaction pass can return to the operating system.
	ChunksFreed int64
	BytesFreed  int64
}

// DeleteRecipe removes a named recipe and releases one reference per
// entry, dropping chunks whose count reaches zero from the index (the
// bytes are reclaimed by Compact). The tombstone is journaled before
// any reference is released, so a crash mid-delete can leak reference
// counts (chunks linger) but never leaves a recoverable recipe pointing
// at released chunks. Concurrent ingest is safe: the dedup wire path
// pins every skipped chunk's refcount inside the lookup, so a stream
// told to skip a body holds its reference before this release can run.
func (s *Store) DeleteRecipe(name string) (DeleteStats, error) {
	return s.DeleteRecipeTraced(name, nil)
}

// DeleteRecipeTraced is DeleteRecipe attributed to a span: the
// tombstone append, its fsync, and the per-shard reference release all
// become children of sp. A nil sp is exactly DeleteRecipe.
func (s *Store) DeleteRecipeTraced(name string, sp *obs.Span) (DeleteStats, error) {
	s.rmu.Lock()
	r, ok := s.recipes[name]
	if !ok {
		s.rmu.Unlock()
		return DeleteStats{}, fmt.Errorf("%w: %q", ErrUnknownRecipe, name)
	}
	if sp != nil && s.recipeSink != nil {
		s.recipeSink.SetSpan(sp)
	}
	err := s.backing.DeleteRecipe(name)
	if sp != nil && s.recipeSink != nil {
		s.recipeSink.SetSpan(nil)
	}
	if err != nil {
		s.rmu.Unlock()
		return DeleteStats{}, err
	}
	delete(s.recipes, name)
	s.rmu.Unlock()
	// Tombstone-before-release must hold under group commit too: only
	// after the barrier reports the tombstone durable may the reference
	// decrements be staged.
	if err := s.commitBarrier(); err != nil {
		return DeleteStats{}, err
	}
	return s.releaseRefs(r, sp)
}

// Release gives back references that were counted but will never be
// committed in a recipe — the ingest server's cleanup when a stream
// dies between its pins/puts and its commit. r lists one entry per
// reference actually applied (pins and stored bodies alike); entries
// reaching zero leave the index and their bytes become reclaimable by
// Compact. Without this, every aborted dedup stream would pin its
// chunks forever.
func (s *Store) Release(r Recipe) (DeleteStats, error) {
	return s.releaseRefs(r, nil)
}

// releaseRefs gives back one reference per recipe entry, journaling
// each decrement under its shard's stripe lock; entries reaching zero
// leave the index. Shared by DeleteRecipe and recipe replacement. A
// non-nil sp attributes each shard's journal writes to the span.
func (s *Store) releaseRefs(r Recipe, sp *obs.Span) (DeleteStats, error) {
	var ds DeleteStats
	var logical, chunksN, hitsN, uniques, stored int64
	err := s.byShard([]Hash(r), func(sh *shard, idxs []int) error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sp != nil {
			sh.setSpan(sp)
			defer sh.setSpan(nil)
		}
		touched := false
		for _, i := range idxs {
			h := r[i]
			ref, ok := sh.index[h]
			if !ok {
				// A recipe entry with no live chunk: only possible after a
				// torn-tail recovery already lost the insert. Nothing to
				// release.
				continue
			}
			if err := sh.back.LogRefDelta(h, -1); err != nil {
				return err
			}
			touched = true
			ds.ChunksReleased++
			chunksN++
			logical += ref.Length
			if sh.release(h, ref) {
				ds.ChunksFreed++
				ds.BytesFreed += ref.Length
				uniques++
				stored += ref.Length
			} else {
				hitsN++
			}
		}
		if touched {
			return sh.back.Commit()
		}
		return nil
	})
	if err == nil {
		err = s.commitBarrier()
	}
	// Mirror of the recovery derivation: a released reference undoes one
	// duplicate hit; a dropped entry undoes its unique insert.
	s.releases.Add(chunksN)
	s.chunks.Add(-chunksN)
	s.logical.Add(-logical)
	s.hits.Add(-hitsN)
	s.unique.Add(-uniques)
	s.stored.Add(-stored)
	return ds, err
}

// CompactStats summarizes one compaction pass.
type CompactStats struct {
	// Containers is how many containers were reclaimed (rewritten away
	// or already fully dead); ReclaimedBytes is the dead space that
	// went with them, MovedBytes the live bytes rewritten into fresh
	// containers to get there.
	Containers     int
	ReclaimedBytes int64
	MovedBytes     int64
}

// Compact rewrites mostly-dead containers: for every shard, containers
// whose live fraction is below threshold (plus fully-dead ones at any
// threshold) have their surviving chunks re-packed into the shard's
// open container, the moves journaled, the journal checkpointed, and
// only then are the old containers dropped. The index, all recipes and
// the Stats are unchanged — recipes address chunks by fingerprint, so
// a moved chunk restores identically. Each shard is compacted under
// its stripe lock; other shards keep serving throughout. A crash at
// any byte recovers to a consistent state: the moves are durable
// before the checkpoint, and the checkpoint is durable before any
// container is unlinked.
func (s *Store) Compact(threshold float64) (CompactStats, error) {
	return s.CompactTraced(threshold, nil)
}

// CompactTraced is Compact attributed to a span: each shard pass that
// actually reclaims containers runs under a compact_shard child span
// (victims, reclaimed and moved bytes as attributes), with the
// backing's relocation WAL traffic and checkpoint fsyncs nested under
// it. A nil sp is exactly Compact.
func (s *Store) CompactTraced(threshold float64, sp *obs.Span) (CompactStats, error) {
	var total CompactStats
	for _, sh := range s.shards {
		cs, err := s.compactShard(sh, threshold, sp)
		total.Containers += cs.Containers
		total.ReclaimedBytes += cs.ReclaimedBytes
		total.MovedBytes += cs.MovedBytes
		if err != nil {
			s.accountCompact(total)
			return total, err
		}
	}
	s.accountCompact(total)
	return total, nil
}

// accountCompact folds one pass's results into the observability
// totals (partial passes count what they actually reclaimed).
func (s *Store) accountCompact(cs CompactStats) {
	s.compactions.Add(1)
	s.compactedBytes.Add(cs.ReclaimedBytes)
	s.movedBytes.Add(cs.MovedBytes)
}

// compactShard runs one shard's pass; see Compact.
func (s *Store) compactShard(sh *shard, threshold float64, sp *obs.Span) (CompactStats, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.back.Containers()
	if n == 0 {
		return CompactStats{}, nil
	}
	// The open container (the one Append packs into) is never a victim:
	// it is still filling and relocating into itself is busywork.
	open := n - 1
	var victims []int
	victimSet := make(map[int]bool)
	var cs CompactStats
	for ci := 0; ci < n; ci++ {
		if ci == open {
			continue
		}
		size := sh.back.ContainerLen(ci)
		if size < 0 {
			continue // already dropped
		}
		live := sh.live[ci]
		if live == 0 || float64(live) < threshold*float64(size) {
			victims = append(victims, ci)
			victimSet[ci] = true
			cs.ReclaimedBytes += size - live
		}
	}
	if len(victims) == 0 {
		return CompactStats{}, nil
	}
	if sp != nil {
		csp := sp.Child("compact_shard",
			obs.Int("shard", int64(sh.idx)), obs.Int("victims", int64(len(victims))))
		defer func() {
			csp.Set(obs.Int("reclaimed_bytes", cs.ReclaimedBytes), obs.Int("moved_bytes", cs.MovedBytes))
			csp.End()
		}()
		sh.setSpan(csp)
		defer sh.setSpan(nil)
	}
	// Re-pack every surviving chunk of the victim containers into the
	// open container, updating the index as we go. Relocate journals
	// each move, so a crash before the checkpoint replays them (and a
	// torn move is simply dropped — the old container still exists).
	for h, ref := range sh.index {
		if !victimSet[ref.Container] {
			continue
		}
		data, err := sh.back.Read(ref.Container, ref.Offset, ref.Length)
		if err != nil {
			return cs, err
		}
		ci, off, err := sh.back.Relocate(h, data)
		if err != nil {
			return cs, err
		}
		delete(sh.byLoc, loc{ref.Container, ref.Offset})
		sh.live[ref.Container] -= ref.Length
		newRef := Ref{Shard: sh.idx, Container: ci, Offset: off, Length: ref.Length}
		sh.index[h] = newRef
		sh.byLoc[loc{ci, off}] = h
		sh.live[ci] += ref.Length
		cs.MovedBytes += ref.Length
	}
	live := make([]CheckpointEntry, 0, len(sh.index))
	for h, ref := range sh.index {
		live = append(live, CheckpointEntry{Hash: h, Ref: ref, Refcount: sh.refcount[h]})
	}
	if err := sh.back.Checkpoint(live, victims); err != nil {
		return cs, err
	}
	for _, ci := range victims {
		delete(sh.live, ci)
	}
	cs.Containers = len(victims)
	return cs, nil
}

// Recipe returns the recorded recipe for a stream name.
func (s *Store) Recipe(name string) (Recipe, bool) {
	s.rmu.RLock()
	r, ok := s.recipes[name]
	s.rmu.RUnlock()
	return r, ok
}

// RecipeNames returns every recorded stream name, sorted.
func (s *Store) RecipeNames() []string {
	s.rmu.RLock()
	names := make([]string, 0, len(s.recipes))
	for n := range s.recipes {
		names = append(names, n)
	}
	s.rmu.RUnlock()
	sort.Strings(names)
	return names
}

// Reconstruct concatenates a recipe's chunks back into the original
// stream, resolving each fingerprint through the index. A fingerprint
// with no live chunk (lost to a torn-tail recovery, or released by a
// concurrent delete of every referencing recipe) fails loudly rather
// than returning wrong bytes.
func (s *Store) Reconstruct(r Recipe) ([]byte, error) {
	// Pre-size the output: map lookups are far cheaper than the
	// repeated grow-and-copy of appending a large stream blind.
	var total int64
	for _, h := range r {
		if ref, ok := s.Has(h); ok {
			total += ref.Length
		}
	}
	out := make([]byte, 0, total)
	for i, h := range r {
		data, ok, err := s.GetByHash(h)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("shardstore: recipe entry %d: no chunk for %x", i, h[:8])
		}
		out = append(out, data...)
	}
	return out, nil
}

// ContainerUsage reports the store's physical footprint: live container
// slots, the bytes the index still references, and the total container
// bytes on the backing. total-live is the dead space a compaction pass
// could reclaim — the GC-debt signal the daemon exports.
func (s *Store) ContainerUsage() (containers int, liveBytes, totalBytes int64) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		n := sh.back.Containers()
		for ci := 0; ci < n; ci++ {
			size := sh.back.ContainerLen(ci)
			if size < 0 {
				continue // dropped slot
			}
			containers++
			totalBytes += size
		}
		for _, lb := range sh.live {
			liveBytes += lb
		}
		sh.mu.RUnlock()
	}
	return containers, liveBytes, totalBytes
}

// indexEntries counts live index entries (== refcount map entries)
// across all shards.
func (s *Store) indexEntries() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += int64(len(sh.index))
		sh.mu.RUnlock()
	}
	return n
}

// Instrument registers the store's metric families on reg and arms the
// hot-path Missing/PinBatch latency histogram. Everything except that
// histogram is evaluated at scrape time from state the store maintains
// anyway, so instrumentation costs ingest nothing. Call once, before
// the store serves traffic; a nil registry is a no-op.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("shardstore_chunks_total",
		"Chunk writes accepted (unique inserts plus duplicate hits), net of releases.",
		func() float64 { return float64(s.chunks.Load()) })
	reg.CounterFunc("shardstore_dup_hits_total",
		"Chunk writes resolved as duplicates of stored content, net of releases.",
		func() float64 { return float64(s.hits.Load()) })
	reg.CounterFunc("shardstore_releases_total",
		"Chunk references given back by deletes, recipe replacement and aborted streams.",
		func() float64 { return float64(s.releases.Load()) })
	reg.CounterFunc("shardstore_compactions_total",
		"Compaction passes completed (partial passes included).",
		func() float64 { return float64(s.compactions.Load()) })
	reg.CounterFunc("shardstore_compact_reclaimed_bytes_total",
		"Dead container bytes returned to the backing by compaction.",
		func() float64 { return float64(s.compactedBytes.Load()) })
	reg.CounterFunc("shardstore_compact_moved_bytes_total",
		"Live bytes rewritten into fresh containers by compaction.",
		func() float64 { return float64(s.movedBytes.Load()) })
	reg.GaugeFunc("shardstore_logical_bytes",
		"Logical bytes the live streams represent.",
		func() float64 { return float64(s.logical.Load()) })
	reg.GaugeFunc("shardstore_stored_bytes",
		"Unique bytes the index references.",
		func() float64 { return float64(s.stored.Load()) })
	reg.GaugeFunc("shardstore_index_entries",
		"Live fingerprint index entries (equals refcount-map entries) across all shards.",
		func() float64 { return float64(s.indexEntries()) })
	reg.GaugeFunc("shardstore_recipes",
		"Recorded stream recipes.",
		func() float64 {
			s.rmu.RLock()
			n := len(s.recipes)
			s.rmu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("shardstore_containers",
		"Live container slots across all shards.",
		func() float64 { c, _, _ := s.ContainerUsage(); return float64(c) })
	reg.GaugeFunc("shardstore_container_live_bytes",
		"Container bytes the index still references.",
		func() float64 { _, live, _ := s.ContainerUsage(); return float64(live) })
	reg.GaugeFunc("shardstore_container_dead_bytes",
		"Container bytes no longer referenced (reclaimable by compaction).",
		func() float64 { _, live, total := s.ContainerUsage(); return float64(total - live) })
	s.missingSeconds = reg.Histogram("shardstore_missing_seconds",
		"Latency of batched Matching queries (Missing and PinBatch).", obs.LatencyBuckets)
}

// Sync forces everything written so far onto durable media (a no-op
// for MemoryBacking).
func (s *Store) Sync() error { return s.backing.Sync() }

// Close flushes and releases the backing. The store must not be used
// afterwards.
func (s *Store) Close() error { return s.backing.Close() }
