package cluster

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"shredder/internal/dedup"
)

func testTopology(ids ...string) Topology {
	var t Topology
	for _, id := range ids {
		t.Nodes = append(t.Nodes, Node{ID: id, Addr: "127.0.0.1:" + id})
	}
	return t
}

func randHash(rng *rand.Rand) dedup.Hash {
	var h dedup.Hash
	rng.Read(h[:])
	return h
}

// TestRingDeterminism: placement is a pure function of (topology,
// vnodes) — two independently built rings agree on every key, and the
// node list's order does not matter once IDs are fixed.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(testTopology("alpha", "beta", "gamma"), 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(testTopology("alpha", "beta", "gamma"), 32)
	if err != nil {
		t.Fatal(err)
	}
	// Same IDs, different positions in the node list.
	shuffled, err := NewRing(testTopology("gamma", "alpha", "beta"), 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h := randHash(rng)
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("two identical rings disagree on %x", h[:8])
		}
		if a.Node(a.Owner(h)).ID != shuffled.Node(shuffled.Owner(h)).ID {
			t.Fatalf("node-list order changed placement of %x", h[:8])
		}
	}
}

// TestRingDistribution: virtual nodes keep the split between nodes
// roughly fair for uniform keys (chunk fingerprints are uniform by
// construction).
func TestRingDistribution(t *testing.T) {
	r, err := NewRing(testTopology("a", "b", "c"), 0) // DefaultVnodes
	if err != nil {
		t.Fatal(err)
	}
	const keys = 30000
	counts := make([]int, r.Len())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < keys; i++ {
		counts[r.Owner(randHash(rng))]++
	}
	for i, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.60 {
			t.Fatalf("node %d owns %.1f%% of keys (counts %v)", i, 100*share, counts)
		}
	}
}

// TestRingStability: removing one node only reassigns that node's
// keys — everything owned by a survivor stays put. This is the whole
// point of consistent hashing over modulo placement.
func TestRingStability(t *testing.T) {
	full, err := NewRing(testTopology("a", "b", "c"), 48)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(testTopology("a", "b"), 48)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	moved := 0
	for i := 0; i < 10000; i++ {
		h := randHash(rng)
		before := full.Node(full.Owner(h)).ID
		after := reduced.Node(reduced.Owner(h)).ID
		if before == "c" {
			moved++
			continue // c's keys must land somewhere else
		}
		if before != after {
			t.Fatalf("key %x moved %s → %s though its owner survived", h[:8], before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed node — test is vacuous")
	}
}

// TestRingOwnerKeyWraps: keys above the highest vnode point wrap to
// the ring's first point.
func TestRingOwnerKeyWraps(t *testing.T) {
	r, err := NewRing(testTopology("a", "b"), 4)
	if err != nil {
		t.Fatal(err)
	}
	top := r.points[len(r.points)-1]
	if top.pos == ^uint64(0) {
		t.Skip("highest vnode point is the maximum key")
	}
	wrapped := r.OwnerKey(top.pos + 1)
	first := int(r.points[0].node)
	if wrapped != first {
		t.Fatalf("key above the last point owned by %d, want first point's node %d", wrapped, first)
	}
	var h dedup.Hash
	binary.BigEndian.PutUint64(h[:8], top.pos)
	if r.Owner(h) != int(top.node) {
		t.Fatal("key exactly on a point is not owned by that point's node")
	}
}

func TestParseNodes(t *testing.T) {
	topo, err := ParseNodes("n0=127.0.0.1:9001, n1=127.0.0.1:9002,n2=127.0.0.1:9003")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 3 || topo.Nodes[1].ID != "n1" || topo.Nodes[1].Addr != "127.0.0.1:9002" {
		t.Fatalf("parsed %+v", topo.Nodes)
	}
	// Bare addresses use the address as the ID.
	topo, err = ParseNodes("127.0.0.1:9001,127.0.0.1:9002")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Nodes[0].ID != "127.0.0.1:9001" {
		t.Fatalf("bare-address id %q", topo.Nodes[0].ID)
	}
	for _, bad := range []string{"", "  ,", "a=1,a=2", "x=1,y=1", "=addr"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Fatalf("ParseNodes(%q) accepted", bad)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	body := `{"nodes": [{"id": "a", "addr": "10.0.0.1:9000"}, {"id": "b", "addr": "10.0.0.2:9000"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 2 || topo.Nodes[1].ID != "b" {
		t.Fatalf("loaded %+v", topo.Nodes)
	}
	if _, err := LoadTopology(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"nodes": [], "extra": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopology(path); err == nil {
		t.Fatal("unknown fields accepted")
	}
}

func TestManifestCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var hs []dedup.Hash
	for i := 0; i < 257; i++ {
		hs = append(hs, randHash(rng))
	}
	for _, in := range [][]dedup.Hash{nil, hs[:1], hs} {
		out, err := decodeManifest(encodeManifest(in))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip %d → %d entries", len(in), len(out))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("entry %d corrupted", i)
			}
		}
	}
	enc := encodeManifest(hs)
	for _, bad := range [][]byte{nil, enc[:7], enc[:len(enc)-1], append(append([]byte(nil), enc...), 0)} {
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("malformed manifest of %d bytes accepted", len(bad))
		}
	}
	corrupt := append([]byte(nil), enc...)
	corrupt[0] ^= 0xFF
	if _, err := decodeManifest(corrupt); err == nil {
		t.Fatal("bad magic accepted")
	}
	if !reservedName(ManifestName("x")) {
		t.Fatal("manifest names must be reserved")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Fatal("empty topology accepted")
	}
	bad := Topology{Nodes: []Node{{ID: "a", Addr: ""}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := NewRing(Topology{}, 4); !errorsIsValidation(err) {
		t.Fatalf("NewRing on empty topology: %v", err)
	}
}

func errorsIsValidation(err error) bool {
	return err != nil && !errors.Is(err, os.ErrNotExist)
}
