package persist

import (
	"fmt"
	"strings"
	"time"
)

// FsyncMode selects when the backing forces written data to durable
// media.
type FsyncMode int

const (
	// FsyncAlways fsyncs the WAL (and any dirty container file) at
	// every commit point: each put batch and each recipe commit is
	// durable before the call returns. Crash loses nothing
	// acknowledged, at the cost of one or two fsyncs per batch.
	FsyncAlways FsyncMode = iota
	// FsyncInterval fsyncs dirty files from a background goroutine
	// every Interval. Crash loses at most the last window of
	// acknowledged writes; recovery still lands on a clean record
	// boundary.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache. Process crash
	// (as opposed to machine crash) still loses nothing because every
	// commit writes through to the kernel.
	FsyncNever
)

// DefaultFsyncInterval is the FsyncInterval period when none is given.
const DefaultFsyncInterval = time.Second

// FsyncPolicy is a mode plus its interval (meaningful only for
// FsyncInterval; 0 means DefaultFsyncInterval).
type FsyncPolicy struct {
	Mode     FsyncMode
	Interval time.Duration
}

// ParseFsyncPolicy reads the -fsync flag syntax: "always", "never",
// "interval", "interval=500ms", or a bare duration like "250ms" (which
// implies interval mode).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch {
	case s == "always":
		return FsyncPolicy{Mode: FsyncAlways}, nil
	case s == "never":
		return FsyncPolicy{Mode: FsyncNever}, nil
	case s == "interval":
		return FsyncPolicy{Mode: FsyncInterval, Interval: DefaultFsyncInterval}, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return FsyncPolicy{}, fmt.Errorf("persist: bad fsync interval %q", s)
		}
		return FsyncPolicy{Mode: FsyncInterval, Interval: d}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return FsyncPolicy{}, fmt.Errorf("persist: fsync policy %q is not always, never, interval[=D], or a duration", s)
		}
		return FsyncPolicy{Mode: FsyncInterval, Interval: d}, nil
	}
}

// String renders the policy in the same syntax ParseFsyncPolicy reads.
func (p FsyncPolicy) String() string {
	switch p.Mode {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		d := p.Interval
		if d == 0 {
			d = DefaultFsyncInterval
		}
		return "interval=" + d.String()
	}
}
