// Package mapreduce implements a miniature MapReduce engine plus the
// Incoop-style incremental layer Shredder feeds (§6.1): map-task
// results are memoized keyed by the content hash of their input split,
// and the reduce side is made incremental with a contraction tree of
// associative combiners, so a run whose input changed by p% re-executes
// roughly p% of the map work and a logarithmic sliver of the combine
// work.
package mapreduce

import (
	"crypto/sha256"
	"errors"
	"sort"
	"strings"
	"sync"
)

// Mapper transforms one input split into key/value pairs.
type Mapper interface {
	// Map processes split bytes; emit may be called any number of
	// times. Implementations must be pure functions of the split.
	Map(split []byte, emit func(key, value string))
}

// Combiner merges values associatively: Combine(k, [a,b,c]) must equal
// Combine(k, [Combine(k,[a,b]), c]) for the contraction tree to be
// correct. The package's tests assert this for every shipped app.
type Combiner interface {
	Combine(key string, values []string) string
}

// Reducer folds the final combined value of each key into the job
// output.
type Reducer interface {
	Reduce(key string, values []string) string
}

// Job names a computation. Name must change whenever the computation's
// semantics change (e.g. it should include the iteration's centroids
// for k-means), because it is part of every memoization key.
type Job struct {
	Name     string
	Mapper   Mapper
	Combiner Combiner
	Reducer  Reducer
}

// Validate checks the job is complete.
func (j Job) Validate() error {
	if j.Name == "" {
		return errors.New("mapreduce: job needs a name")
	}
	if j.Mapper == nil || j.Combiner == nil || j.Reducer == nil {
		return errors.New("mapreduce: job needs mapper, combiner and reducer")
	}
	return nil
}

// Metrics counts the work a run performed versus reused — the raw
// material of Figure 15.
type Metrics struct {
	// MapTasks is the total number of splits; MapExecuted of them
	// actually ran (the rest were memo hits).
	MapTasks    int
	MapExecuted int
	// MapBytes / MapBytesExecuted: input volume total vs. actually
	// processed.
	MapBytes         int64
	MapBytesExecuted int64
	// CombineNodes / CombineExecuted: contraction-tree size vs. nodes
	// recomputed.
	CombineNodes    int
	CombineExecuted int
	// Keys in the final output.
	Keys int
}

// Memo is the Incoop memoization server: it persists across runs of
// the same (or different) jobs and is safe for concurrent use.
type Memo struct {
	mu      sync.Mutex
	mapOuts map[string]aggregate // key: job name + split content hash
	nodes   map[string]aggregate // key: job name + child signature
}

// NewMemo returns an empty memoization server.
func NewMemo() *Memo {
	return &Memo{
		mapOuts: make(map[string]aggregate),
		nodes:   make(map[string]aggregate),
	}
}

// Entries returns how many results are memoized (for tests and
// monitoring).
func (m *Memo) Entries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.mapOuts) + len(m.nodes)
}

// aggregate is a per-key combined partial result plus its content
// signature (used as the child key at the next tree level).
type aggregate struct {
	kv  map[string]string
	sig string
}

func newAggregate(kv map[string]string) aggregate {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(kv[k]))
		h.Write([]byte{1})
	}
	return aggregate{kv: kv, sig: string(h.Sum(nil))}
}

// Engine executes jobs. A nil Memo gives vanilla from-scratch execution
// ("Hadoop" in Figure 15); with a Memo it behaves like Incoop.
type Engine struct {
	// Workers bounds map-task parallelism; 0 means 8.
	Workers int
	// FanIn is the contraction-tree arity; 0 means 4.
	FanIn int
	// Memo, when non-nil, enables incremental execution.
	Memo *Memo
}

// Run executes job over the splits and returns the output plus work
// metrics. Splits are identified by content, so unchanged splits hit
// the memo regardless of position.
func (e *Engine) Run(job Job, splits [][]byte) (map[string]string, *Metrics, error) {
	if err := job.Validate(); err != nil {
		return nil, nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = 8
	}
	fanIn := e.FanIn
	if fanIn <= 0 {
		fanIn = 4
	}

	met := &Metrics{MapTasks: len(splits)}
	for _, s := range splits {
		met.MapBytes += int64(len(s))
	}

	// ---- Map phase (parallel, memoized per split content) ----
	leaves := make([]aggregate, len(splits))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var firstErr error
	for i, split := range splits {
		i, split := i, split
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			key := ""
			if e.Memo != nil {
				sum := sha256.Sum256(split)
				key = job.Name + "\x00map\x00" + string(sum[:])
				e.Memo.mu.Lock()
				agg, ok := e.Memo.mapOuts[key]
				e.Memo.mu.Unlock()
				if ok {
					leaves[i] = agg
					return
				}
			}
			agg := runMapTask(job, split)
			leaves[i] = agg
			mu.Lock()
			met.MapExecuted++
			met.MapBytesExecuted += int64(len(split))
			mu.Unlock()
			if e.Memo != nil {
				e.Memo.mu.Lock()
				e.Memo.mapOuts[key] = agg
				e.Memo.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	// ---- Contraction tree (incremental combine) ----
	level := leaves
	for len(level) > 1 {
		next := make([]aggregate, 0, (len(level)+fanIn-1)/fanIn)
		for lo := 0; lo < len(level); lo += fanIn {
			hi := lo + fanIn
			if hi > len(level) {
				hi = len(level)
			}
			group := level[lo:hi]
			met.CombineNodes++
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			var nodeKey string
			if e.Memo != nil {
				var sb strings.Builder
				sb.WriteString(job.Name)
				sb.WriteString("\x00node\x00")
				for _, g := range group {
					sb.WriteString(g.sig)
				}
				nodeKey = sb.String()
				e.Memo.mu.Lock()
				agg, ok := e.Memo.nodes[nodeKey]
				e.Memo.mu.Unlock()
				if ok {
					next = append(next, agg)
					continue
				}
			}
			agg := combineGroup(job, group)
			met.CombineExecuted++
			if e.Memo != nil {
				e.Memo.mu.Lock()
				e.Memo.nodes[nodeKey] = agg
				e.Memo.mu.Unlock()
			}
			next = append(next, agg)
		}
		level = next
	}

	// ---- Final reduce ----
	out := make(map[string]string)
	if len(level) == 1 {
		for k, v := range level[0].kv {
			out[k] = job.Reducer.Reduce(k, []string{v})
		}
	}
	met.Keys = len(out)
	return out, met, nil
}

// runMapTask executes the mapper over one split and pre-aggregates its
// output with the combiner (the standard map-side combine).
func runMapTask(job Job, split []byte) aggregate {
	pending := make(map[string][]string)
	job.Mapper.Map(split, func(k, v string) {
		pending[k] = append(pending[k], v)
	})
	kv := make(map[string]string, len(pending))
	for k, vs := range pending {
		kv[k] = job.Combiner.Combine(k, vs)
	}
	return newAggregate(kv)
}

// combineGroup merges the aggregates of a contraction-tree node.
func combineGroup(job Job, group []aggregate) aggregate {
	pending := make(map[string][]string)
	for _, g := range group {
		for k, v := range g.kv {
			pending[k] = append(pending[k], v)
		}
	}
	kv := make(map[string]string, len(pending))
	for k, vs := range pending {
		if len(vs) == 1 {
			kv[k] = vs[0]
			continue
		}
		kv[k] = job.Combiner.Combine(k, vs)
	}
	return newAggregate(kv)
}
