// Command shredderd is the Shredder ingest daemon: a consolidated
// chunk-and-dedup service (§7's cloud-backup server, made concurrent).
// Clients stream raw data over TCP; the daemon chunks each stream with
// the Shredder pipeline, dedups it in batches against a sharded
// fingerprint index shared by every session, and reports per-stream
// dedup statistics. cmd/backupsim -server is a ready-made client.
//
//	shredderd [-addr :9323] [-shards N] [-batch N] [-buffer MiB] [-quiet]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"shredder/internal/ingest"
	"shredder/internal/stats"
)

func main() {
	addr := flag.String("addr", ":9323", "TCP listen address")
	shards := flag.Int("shards", 16, "store shard count (power of two)")
	batch := flag.Int("batch", 64, "chunks per has/put batch")
	buffer := flag.Int("buffer", 4, "per-session pipeline buffer in MiB")
	quiet := flag.Bool("quiet", false, "suppress per-stream logging")
	flag.Parse()

	cfg := ingest.DefaultConfig()
	cfg.Shards = *shards
	cfg.BatchSize = *batch
	cfg.Shredder.BufferSize = *buffer << 20
	if !*quiet {
		cfg.OnStream = func(name string, st ingest.StreamStats) {
			log.Printf("stream %q: %s in %d chunks, %d dup, ratio %.2fx; store ratio %.2fx",
				name, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks,
				st.DedupRatio(), st.Store.Ratio())
		}
	}

	srv, err := ingest.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shredderd:", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shredderd:", err)
		os.Exit(1)
	}
	log.Printf("shredderd: listening on %s (%d shards, batch %d, %d MiB buffers)",
		l.Addr(), *shards, *batch, *buffer)
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "shredderd:", err)
		os.Exit(1)
	}
}
