// Package stats provides the small formatting and aggregation helpers
// the benchmark harness uses to print paper-style tables.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Table renders rows with aligned columns, in the style of the paper's
// tables.
type Table struct {
	// Title is printed above the table.
	Title string
	cols  []string
	rows  [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// AddRow appends one row; cells beyond the column count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.cols)
	total := len(t.cols)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Bytes formats a byte count with binary units.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// GBps formats a bytes/second rate in GB/s (decimal, as the paper
// does).
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
}

// Gbps formats a bytes/second rate in gigabits/second (Figure 18's
// unit).
func Gbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f Gbps", bytesPerSec*8/1e9)
}

// Ms formats a duration in milliseconds with two decimals.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}

// Speedup formats a ratio.
func Speedup(x float64) string { return fmt.Sprintf("%.2fx", x) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
