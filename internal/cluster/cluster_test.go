package cluster

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/workload"
)

func nodeConfig() ingest.Config {
	cfg := ingest.DefaultConfig()
	cfg.Shredder.BufferSize = 1 << 20
	cfg.BatchSize = 32
	return cfg
}

// testCluster is N real shredderd nodes on loopback TCP.
type testCluster struct {
	topo Topology
	srvs []*ingest.Server
	lns  []net.Listener
}

func startNodes(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		srv, err := ingest.NewServer(nodeConfig())
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		tc.srvs = append(tc.srvs, srv)
		tc.lns = append(tc.lns, ln)
		tc.topo.Nodes = append(tc.topo.Nodes,
			Node{ID: fmt.Sprintf("n%d", i), Addr: ln.Addr().String()})
	}
	t.Cleanup(func() {
		for i := range tc.lns {
			tc.kill(i)
		}
	})
	return tc
}

// kill severs node i: stop accepting, then force-close every live
// session (grace 0), which triggers the server's abort path — applied
// refs of uncommitted streams are released before Shutdown returns the
// session goroutines. Idempotent.
func (tc *testCluster) kill(i int) {
	if tc.lns[i] != nil {
		tc.lns[i].Close()
		tc.lns[i] = nil
		tc.srvs[i].Shutdown(0)
	}
}

func newTestCluster(t *testing.T, tc *testCluster, spec chunk.Spec) *Cluster {
	t.Helper()
	c, err := New(Config{
		Topology: tc.topo,
		Spec:     spec,
		Dial:     ingest.DialOptions{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// chunksOf cuts data exactly as a session with spec would.
func chunksOf(t *testing.T, spec chunk.Spec, data []byte) (hs []dedup.Hash, bodies [][]byte) {
	t.Helper()
	eng, err := chunk.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	sink := eng.Stream(func(c chunk.Chunk, d []byte) error {
		hs = append(hs, dedup.Sum(d))
		bodies = append(bodies, append([]byte(nil), d...))
		return nil
	})
	if _, err := sink.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return hs, bodies
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterDifferentialThreeNodes is the core acceptance test: the
// same workload driven through a 3-node cluster and through one plain
// shredderd must agree on every observable — stream stats, restored
// bytes, per-chunk reference counts, and delete stats — and deleting
// everything must leave every node's store empty (manifests included).
func TestClusterDifferentialThreeNodes(t *testing.T) {
	spec := chunk.FastCDCSpec(8 << 10)
	im := workload.NewImage(41, 2<<20, 64<<10, 0.5)
	snap := im.Snapshot(42)

	// Ground truth: one ordinary node driven by the ordinary client.
	single, err := ingest.NewServer(nodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sln.Close()
	go single.Serve(sln)
	ssess, err := ingest.Dial(sln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ssess.Close()
	if _, err := ssess.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}
	sMaster, err := ssess.BackupDedupBytes("master", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	sSnap, err := ssess.BackupDedupBytes("snap", snap)
	if err != nil {
		t.Fatal(err)
	}

	// Same workload through the cluster.
	tc := startNodes(t, 3)
	c := newTestCluster(t, tc, spec)
	rs := c.NewSession()
	cMaster, err := rs.BackupBytes("master", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	cSnap, err := rs.BackupBytes("snap", snap)
	if err != nil {
		t.Fatal(err)
	}

	diff := func(stream string, s, c *ingest.StreamStats) {
		if c.Bytes != s.Bytes || c.Chunks != s.Chunks ||
			c.DupChunks != s.DupChunks || c.UniqueBytes != s.UniqueBytes {
			t.Fatalf("%s stream stats diverge: single %+v cluster %+v", stream, s, c)
		}
		if c.Wire.ChunksSent != s.Wire.ChunksSent || c.Wire.ChunksSkipped != s.Wire.ChunksSkipped {
			t.Fatalf("%s wire stats diverge: single %+v cluster %+v", stream, s.Wire, c.Wire)
		}
	}
	diff("master", sMaster, cMaster)
	diff("snap", sSnap, cSnap)
	if sSnap.DupChunks == 0 {
		t.Fatal("snapshot shares nothing with master — dedup is not exercised")
	}

	// Byte-identical restores.
	for _, probe := range []struct {
		name string
		data []byte
	}{{"master", im.Master}, {"snap", snap}} {
		if err := rs.Verify(probe.name, probe.data); err != nil {
			t.Fatalf("cluster restore of %s: %v", probe.name, err)
		}
		if err := ssess.Verify(probe.name, probe.data); err != nil {
			t.Fatalf("single restore of %s: %v", probe.name, err)
		}
	}

	// Refcount identity: for every chunk, the single store's count must
	// equal the cluster-wide sum, and only the ring owner may hold it.
	masterHs, _ := chunksOf(t, spec, im.Master)
	snapHs, _ := chunksOf(t, spec, snap)
	all := make(map[dedup.Hash]bool)
	for _, h := range append(append([]dedup.Hash(nil), masterHs...), snapHs...) {
		all[h] = true
	}
	checkRefcounts := func() {
		t.Helper()
		for h := range all {
			want := single.Store().Refcount(h)
			owner := c.Ring().Owner(h)
			var sum int64
			for i, srv := range tc.srvs {
				rc := srv.Store().Refcount(h)
				sum += rc
				if i != owner && rc != 0 {
					t.Fatalf("chunk %x held by node %d, owner is %d", h[:8], i, owner)
				}
			}
			if sum != want {
				t.Fatalf("chunk %x refcount: single %d, cluster sum %d", h[:8], want, sum)
			}
		}
	}
	checkRefcounts()

	// Delete differential: same freed totals, snapshot survives, and the
	// per-chunk identity still holds afterwards.
	sDel, err := ssess.Delete("master")
	if err != nil {
		t.Fatal(err)
	}
	cDel, err := rs.Delete("master")
	if err != nil {
		t.Fatal(err)
	}
	if *cDel != *sDel {
		t.Fatalf("delete stats diverge: single %+v cluster %+v", sDel, cDel)
	}
	if err := rs.Verify("snap", snap); err != nil {
		t.Fatalf("snapshot broken after master delete: %v", err)
	}
	checkRefcounts()

	// Deleting a deleted name is a typed not-found on both sides.
	if _, err := rs.Delete("master"); !errors.Is(err, ingest.ErrNotFound) {
		t.Fatalf("cluster re-delete: %v", err)
	}
	var nf *ingest.NotFoundError
	if _, err := rs.RestoreBytes("master"); !errors.As(err, &nf) || nf.Name != "master" {
		t.Fatalf("cluster restore of deleted name: %v", err)
	}

	// Deleting the last stream must empty every node — recipes,
	// manifests, and refcounts — proving nothing cluster-internal leaks.
	if _, err := rs.Delete("snap"); err != nil {
		t.Fatal(err)
	}
	for i, srv := range tc.srvs {
		if names := srv.Store().RecipeNames(); len(names) != 0 {
			t.Fatalf("node %d still holds recipes %v after deleting everything", i, names)
		}
	}
	for h := range all {
		for i, srv := range tc.srvs {
			if rc := srv.Store().Refcount(h); rc != 0 {
				t.Fatalf("node %d leaks %d refs on %x", i, rc, h[:8])
			}
		}
	}
}

// TestClusterKillNodeMidStream pins chunks on all three nodes through
// a dedup round, kills one owner, and asserts the commit fails with a
// typed *NodeError while the survivors release every pin — the
// cluster-level version of TestAbortedDedupStreamReleasesPins.
func TestClusterKillNodeMidStream(t *testing.T) {
	spec := chunk.FastCDCSpec(4 << 10)
	tc := startNodes(t, 3)
	c := newTestCluster(t, tc, spec)
	rs := c.NewSession()

	// A committed baseline stream (distinct name) that must survive the
	// failed stream's cleanup untouched.
	base := workload.Random(5, 512<<10)
	if _, err := rs.BackupBytes("baseline", base); err != nil {
		t.Fatal(err)
	}
	baseline := make([]map[dedup.Hash]int64, len(tc.srvs))
	baseHs, _ := chunksOf(t, spec, base)

	data := workload.Random(6, 512<<10)
	hs, bodies := chunksOf(t, spec, data)
	for i := range tc.srvs {
		baseline[i] = make(map[dedup.Hash]int64)
		for _, h := range append(append([]dedup.Hash(nil), baseHs...), hs...) {
			baseline[i][h] = tc.srvs[i].Store().Refcount(h)
		}
	}

	st, err := c.NewStream("victim", obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	// RoundHas is synchronous: when it returns, every owner has applied
	// the batch and is pinning the stream's chunks.
	missing, err := st.RoundHas(hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) == 0 {
		t.Fatal("nothing missing — pins are not exercised")
	}
	for _, idx := range missing {
		if err := st.RoundBody(bodies[idx]); err != nil {
			t.Fatal(err)
		}
	}

	// Every node must own part of the stream, or killing one proves
	// nothing about the others.
	owners := make(map[int]bool)
	for _, h := range hs {
		owners[c.Ring().Owner(h)] = true
	}
	if len(owners) != len(tc.srvs) {
		t.Fatalf("stream only spans nodes %v — enlarge the workload", owners)
	}
	victim := c.Ring().Owner(hs[0])
	tc.kill(victim)

	_, err = st.Commit()
	var ne *NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("commit against a dead node returned %v, want *NodeError", err)
	}
	if ne.Node != tc.topo.Nodes[victim].ID {
		t.Fatalf("NodeError names %q, want the killed node %q", ne.Node, tc.topo.Nodes[victim].ID)
	}
	st.Abort() // idempotent after a failed Commit

	// No leaked pins on the survivors: every refcount returns to its
	// pre-stream value once the aborted sessions unwind.
	waitFor(t, "survivors to release pins", func() bool {
		for i, srv := range tc.srvs {
			if i == victim {
				continue
			}
			for h, want := range baseline[i] {
				if srv.Store().Refcount(h) != want {
					return false
				}
			}
		}
		return true
	})
	// And the failed stream must not have become restorable.
	if _, err := rs.RestoreBytes("victim"); err == nil {
		t.Fatal("half-committed stream restored cleanly")
	}
}

// TestClusterOverwriteCleansStaleSubStreams re-backs-up a name whose
// chunks move to a different owner and asserts the old owner's
// sub-stream is swept at commit, not left pinning dead chunks.
func TestClusterOverwriteCleansStaleSubStreams(t *testing.T) {
	tc := startNodes(t, 3)
	c := newTestCluster(t, tc, DefaultSpec())

	// Craft one body owned by each of two different nodes.
	bodyOwnedBy := func(node int) ([]byte, dedup.Hash) {
		for seed := int64(0); ; seed++ {
			b := workload.Random(seed, 8<<10)
			h := dedup.Sum(b)
			if c.Ring().Owner(h) == node {
				return b, h
			}
		}
	}
	b0, h0 := bodyOwnedBy(0)
	b1, h1 := bodyOwnedBy(1)

	commitOne := func(body []byte, h dedup.Hash) {
		t.Helper()
		st, err := c.NewStream("evolving", obs.SpanContext{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(h, body); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commitOne(b0, h0)
	commitOne(b1, h1)

	// Node 0's sub-stream was stale after the overwrite; commit sweeps
	// it, so its pin on b0 must drop to zero.
	waitFor(t, "stale sub-stream sweep", func() bool {
		return tc.srvs[0].Store().Refcount(h0) == 0
	})
	rs := c.NewSession()
	if err := rs.Verify("evolving", b1); err != nil {
		t.Fatalf("overwritten stream restores wrong bytes: %v", err)
	}
	if _, err := rs.Delete("evolving"); err != nil {
		t.Fatal(err)
	}
	for i, srv := range tc.srvs {
		if names := srv.Store().RecipeNames(); len(names) != 0 {
			t.Fatalf("node %d still holds %v", i, names)
		}
	}
}

// TestClusterReservedNames: the manifest namespace is not reachable
// through any client-facing operation.
func TestClusterReservedNames(t *testing.T) {
	c, err := New(Config{Topology: testTopology("a"), Spec: DefaultSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs := c.NewSession()
	name := ManifestName("x")
	if _, err := rs.BackupBytes(name, []byte("hi")); !errors.Is(err, ErrReservedName) {
		t.Fatalf("backup of reserved name: %v", err)
	}
	if _, err := rs.RestoreBytes(name); !errors.Is(err, ErrReservedName) {
		t.Fatalf("restore of reserved name: %v", err)
	}
	if _, err := rs.Delete(name); !errors.Is(err, ErrReservedName) {
		t.Fatalf("delete of reserved name: %v", err)
	}
}

// TestClusterDialFailureTyped: an unreachable node surfaces as a
// *NodeError wrapping the transport error, after the configured number
// of bounded retries.
func TestClusterDialFailureTyped(t *testing.T) {
	// A listener we close immediately: the port is valid but refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c, err := New(Config{
		Topology: Topology{Nodes: []Node{{ID: "gone", Addr: addr}}},
		Spec:     DefaultSpec(),
		Dial: ingest.DialOptions{
			Timeout:  500 * time.Millisecond,
			Attempts: 3,
			Backoff:  time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.NewSession().BackupBytes("s", workload.Random(1, 32<<10))
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != "gone" {
		t.Fatalf("backup against dead topology: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("retries are not bounded")
	}
}

// TestClusterSpecBounds: unbounded or over-frame chunk specs are
// rejected at construction — the restore path depends on every chunk
// fitting one frame.
func TestClusterSpecBounds(t *testing.T) {
	unbounded := chunk.DefaultSpec() // MaxSize 0
	if _, err := New(Config{Topology: testTopology("a"), Spec: unbounded}); err == nil {
		t.Fatal("unbounded spec accepted")
	}
	huge := DefaultSpec()
	huge.MaxSize = ingest.DefaultFrameSize + 1
	if _, err := New(Config{Topology: testTopology("a"), Spec: huge}); err == nil {
		t.Fatal("over-frame spec accepted")
	}
}
