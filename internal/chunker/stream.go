package chunker

import (
	"errors"
	"io"

	"shredder/internal/rabin"
)

// EmitFunc receives each chunk as it is cut from a Stream, together
// with the chunk's bytes. The data slice is only valid for the duration
// of the call; implementations must copy it if they keep it.
type EmitFunc func(c Chunk, data []byte) error

// Stream performs content-defined chunking incrementally over a byte
// stream fed through Write. It implements io.Writer so callers can
// io.Copy into it; Close flushes the final partial chunk.
//
// Stream buffers at most one chunk of data (bounded by MaxSize when a
// maximum is configured, otherwise by the distance between content
// boundaries). It produces exactly the same chunks as Chunker.Split
// over the concatenation of all writes.
type Stream struct {
	c        *Chunker
	emit     EmitFunc
	win      *rabin.Window
	min, max int64
	buf      []byte
	start    int64 // absolute offset of buf[0]
	closed   bool
	err      error
}

// NewStream returns a Stream cutting chunks with c and delivering them
// to emit.
func NewStream(c *Chunker, emit EmitFunc) *Stream {
	min := int64(c.params.MinSize)
	if min == 0 {
		min = 1
	}
	return &Stream{
		c:    c,
		emit: emit,
		win:  rabin.NewWindow(c.table),
		min:  min,
		max:  int64(c.params.MaxSize),
	}
}

// Write feeds p into the chunker, invoking the emit callback for every
// completed chunk. It always consumes all of p unless the callback
// returns an error, which is sticky.
func (s *Stream) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, errors.New("chunker: write after Close")
	}
	for i := 0; i < len(p); i++ {
		b := p[i]
		s.buf = append(s.buf, b)
		fp := s.win.Slide(b)
		n := int64(len(s.buf))
		switch {
		case s.win.Full() && s.c.IsBoundary(fp) && n >= s.min:
			if err := s.flush(Chunk{Offset: s.start, Length: n, Cut: fp}); err != nil {
				return i + 1, err
			}
		case s.max > 0 && n == s.max:
			if err := s.flush(Chunk{Offset: s.start, Length: n, Forced: true}); err != nil {
				return i + 1, err
			}
		}
	}
	return len(p), nil
}

func (s *Stream) flush(c Chunk) error {
	if err := s.emit(c, s.buf[:c.Length]); err != nil {
		s.err = err
		return err
	}
	s.buf = s.buf[:0]
	s.start = c.End()
	return nil
}

// Close emits the final partial chunk, if any. It is idempotent.
func (s *Stream) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.closed = true
	if len(s.buf) > 0 {
		return s.flush(Chunk{Offset: s.start, Length: int64(len(s.buf)), Forced: true})
	}
	return nil
}

// Offset returns the absolute stream offset of the next byte to be
// written.
func (s *Stream) Offset() int64 { return s.start + int64(len(s.buf)) }

// SplitReader chunks everything from r using c, returning the chunks
// and the total number of bytes read. Chunk bytes are delivered through
// emit; pass nil to collect boundaries only.
func SplitReader(c *Chunker, r io.Reader, emit EmitFunc) ([]Chunk, int64, error) {
	var chunks []Chunk
	cb := func(ch Chunk, data []byte) error {
		chunks = append(chunks, ch)
		if emit != nil {
			return emit(ch, data)
		}
		return nil
	}
	s := NewStream(c, cb)
	n, err := io.Copy(s, r)
	if err != nil {
		return chunks, n, err
	}
	if err := s.Close(); err != nil {
		return chunks, n, err
	}
	return chunks, n, nil
}
