package hdfs

import (
	"bytes"
	"testing"

	"shredder/internal/workload"
)

func TestReplicatedClusterValidation(t *testing.T) {
	if _, err := NewReplicatedCluster(3, 0); err == nil {
		t.Fatal("expected error for r=0")
	}
	if _, err := NewReplicatedCluster(3, 4); err == nil {
		t.Fatal("expected error for r>n")
	}
	if _, err := NewReplicatedCluster(3, 3); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	c, err := NewReplicatedCluster(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(c, newTestShredder(t))
	data := workload.Random(80, 2<<20)
	if _, err := client.CopyFromLocalGPU("f", data); err != nil {
		t.Fatal(err)
	}
	// Kill two of the four nodes: every block still has a live replica.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back differs after failures")
	}
	// Splits point only at live nodes.
	splits, err := c.InputSplits("f")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range splits {
		if s.Node == 0 || s.Node == 1 {
			t.Fatalf("split %d assigned to dead node %d", i, s.Node)
		}
		if s.Node < 0 {
			t.Fatalf("split %d has no live replica", i)
		}
	}
}

func TestAllReplicasDownIsAnError(t *testing.T) {
	c, err := NewReplicatedCluster(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(c, nil)
	if _, err := client.CopyFromLocal("f", workload.Random(81, 1<<16), 8<<10); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("f"); err == nil {
		t.Fatal("expected error with every node down")
	}
	// Revival restores service.
	if err := c.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("f"); err != nil {
		t.Fatalf("read after revival: %v", err)
	}
}

func TestKillNodeValidation(t *testing.T) {
	c, _ := NewCluster(2)
	if err := c.KillNode(5); err == nil {
		t.Fatal("expected error for unknown node")
	}
	if err := c.ReviveNode(-1); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestReplicationCountsUploadBytes(t *testing.T) {
	c, _ := NewReplicatedCluster(3, 3)
	client := NewClient(c, nil)
	data := workload.Random(82, 1<<18)
	if _, err := client.CopyFromLocal("f", data, 64<<10); err != nil {
		t.Fatal(err)
	}
	if c.Uploaded != int64(len(data))*3 {
		t.Fatalf("uploaded %d bytes, want 3x data", c.Uploaded)
	}
	// Dedup still applies across replicated blocks.
	if _, err := client.CopyFromLocal("g", data, 64<<10); err != nil {
		t.Fatal(err)
	}
	if c.Deduped != int64(len(data)) {
		t.Fatalf("deduped %d, want %d", c.Deduped, len(data))
	}
}
