package chunker

import "sort"

// Distribution summarizes the chunk-size distribution of a split — the
// quantity that determines index overhead (min size) and RAM buffering
// (max size) in §2.1.
type Distribution struct {
	// Chunks is the number of chunks observed.
	Chunks int
	// TotalBytes is the sum of all chunk lengths.
	TotalBytes int64
	// Min, Max, Mean and Median chunk sizes in bytes.
	Min, Max int64
	Mean     float64
	Median   int64
	// P10 and P90 are the 10th/90th percentile sizes.
	P10, P90 int64
	// Forced counts boundaries forced by max-size or end of stream.
	Forced int
}

// Analyze computes the size distribution of chunks.
func Analyze(chunks []Chunk) Distribution {
	var d Distribution
	if len(chunks) == 0 {
		return d
	}
	sizes := make([]int64, len(chunks))
	for i, c := range chunks {
		sizes[i] = c.Length
		d.TotalBytes += c.Length
		if c.Forced {
			d.Forced++
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	d.Chunks = len(chunks)
	d.Min = sizes[0]
	d.Max = sizes[len(sizes)-1]
	d.Mean = float64(d.TotalBytes) / float64(d.Chunks)
	d.Median = sizes[len(sizes)/2]
	d.P10 = sizes[len(sizes)/10]
	d.P90 = sizes[len(sizes)*9/10]
	return d
}
