package ingest

import (
	"errors"
	"fmt"

	"shredder/internal/obs"
)

// frameName maps a frame type byte to its metric label.
var frameName = map[byte]string{
	MsgBegin:      "begin",
	MsgData:       "data",
	MsgEnd:        "end",
	MsgStats:      "stats",
	MsgRestore:    "restore",
	MsgError:      "error",
	MsgHello:      "hello",
	MsgAccept:     "accept",
	MsgBeginDedup: "begin_dedup",
	MsgHasBatch:   "has_batch",
	MsgNeedBatch:  "need_batch",
	MsgCommit:     "commit",
	MsgDelete:     "delete",
	MsgDeleteOK:   "delete_ok",
}

// errorKinds are the protocol-error taxonomy labels, matching the
// typed errors in errors.go plus a catch-all.
var errorKinds = []string{
	"negotiation", "unexpected_frame", "truncated", "frame_size", "other",
}

// errorKind classifies a session error into its metric label.
func errorKind(err error) string {
	var ne *NegotiationError
	var ue *UnexpectedFrameError
	var te *TruncatedError
	var fe *FrameSizeError
	switch {
	case errors.As(err, &ne):
		return "negotiation"
	case errors.As(err, &ue):
		return "unexpected_frame"
	case errors.As(err, &te):
		return "truncated"
	case errors.As(err, &fe):
		return "frame_size"
	default:
		return "other"
	}
}

// serverMetrics holds the server's pre-resolved metric handles. A nil
// *serverMetrics (no registry configured) makes every method a no-op,
// so the hot path pays one nil check per event and nothing else.
type serverMetrics struct {
	sessionsActive *obs.Gauge
	sessionsTotal  [ProtocolVersion + 1]*obs.Counter // by negotiated version; 0 = legacy raw
	frames         [MsgDeleteOK + 1]*obs.Counter     // by frame type
	protoErrors    map[string]*obs.Counter           // by errorKind
	logicalBytes   *obs.Counter
	wireBytes      *obs.Counter
	chunksSent     *obs.Counter
	chunksSkipped  *obs.Counter
	chunksPinned   *obs.Counter
	commitSeconds  *obs.Histogram
}

// newServerMetrics registers the ingest metric families. Returns nil
// when reg is nil — the uninstrumented server.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		sessionsActive: reg.Gauge("ingest_sessions_active",
			"Client sessions currently being served."),
		protoErrors: make(map[string]*obs.Counter, len(errorKinds)),
		logicalBytes: reg.Counter("ingest_logical_bytes_total",
			"Logical stream bytes committed (every byte of every acknowledged stream)."),
		wireBytes: reg.Counter("ingest_wire_bytes_total",
			"Bytes that actually crossed the wire for committed streams (bodies plus fingerprint batches)."),
		chunksSent: reg.Counter("ingest_chunks_sent_total",
			"Chunk bodies uploaded for committed streams."),
		chunksSkipped: reg.Counter("ingest_chunks_skipped_total",
			"Chunks of committed streams resolved by fingerprint alone (no body on the wire)."),
		chunksPinned: reg.Counter("ingest_chunks_pinned_total",
			"Chunk references pinned while answering HasBatch queries (aborted streams included)."),
		commitSeconds: reg.Histogram("ingest_commit_seconds",
			"Durable recipe-commit latency per stream.", obs.LatencyBuckets),
	}
	for v := byte(0); v <= ProtocolVersion; v++ {
		// Version 0 is a session that never sent a Hello — protocol 1.
		label := fmt.Sprintf("%d", max(v, 1))
		m.sessionsTotal[v] = reg.Counter("ingest_sessions_total",
			"Sessions completed, by negotiated protocol version.", "protocol", label)
	}
	for typ, name := range frameName {
		m.frames[typ] = reg.Counter("ingest_frames_total",
			"Frames received from clients, by message type.", "type", name)
	}
	for _, kind := range errorKinds {
		m.protoErrors[kind] = reg.Counter("ingest_protocol_errors_total",
			"Sessions that died with an error, by protocol-error kind.", "kind", kind)
	}
	return m
}

// frame counts one received frame by type.
func (m *serverMetrics) frame(typ byte) {
	if m == nil {
		return
	}
	if int(typ) < len(m.frames) && m.frames[typ] != nil {
		m.frames[typ].Inc()
	}
}

// sessionStart/sessionEnd bracket one ServeConn call.
func (m *serverMetrics) sessionStart() {
	if m == nil {
		return
	}
	m.sessionsActive.Inc()
}

func (m *serverMetrics) sessionEnd(ver byte, err error) {
	if m == nil {
		return
	}
	m.sessionsActive.Dec()
	if int(ver) < len(m.sessionsTotal) {
		m.sessionsTotal[ver].Inc()
	}
	if err != nil {
		m.protoErrors[errorKind(err)].Inc()
	}
}

// streamCommitted accounts one acknowledged stream.
func (m *serverMetrics) streamCommitted(st StreamStats) {
	if m == nil {
		return
	}
	m.logicalBytes.Add(st.Bytes)
	m.wireBytes.Add(st.Wire.WireBytes)
	m.chunksSent.Add(st.Wire.ChunksSent)
	m.chunksSkipped.Add(st.Wire.ChunksSkipped)
}

// pinned accounts references taken while answering a HasBatch.
func (m *serverMetrics) pinned(n int) {
	if m == nil || n == 0 {
		return
	}
	m.chunksPinned.Add(int64(n))
}

// observeCommit records one durable recipe-commit latency; a non-zero
// trace is pinned as the receiving bucket's exemplar, linking a slow
// commit bucket to the stream that fell into it.
func (m *serverMetrics) observeCommit(seconds float64, trace obs.TraceID) {
	if m == nil {
		return
	}
	m.commitSeconds.ObserveExemplar(seconds, trace)
}
