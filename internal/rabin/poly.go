// Package rabin implements Rabin fingerprinting over GF(2) polynomials
// (Rabin, 1981), the fingerprinting scheme Shredder uses for
// content-based chunking. A w-byte window is interpreted as a polynomial
// over GF(2) and reduced modulo an irreducible polynomial; the remainder
// is the fingerprint. The package provides both the raw polynomial
// arithmetic (including irreducibility testing, so callers can derive
// their own moduli) and a table-driven rolling window that slides one
// byte at a time in O(1).
package rabin

import (
	"errors"
	"math/bits"
)

// Poly is a polynomial over GF(2) with coefficients packed into a
// uint64; bit i holds the coefficient of x^i. The zero value is the
// zero polynomial.
type Poly uint64

// DefaultPolynomial is an irreducible polynomial of degree 53, the same
// degree class used by LBFS-style chunkers. Irreducibility is verified
// by TestDefaultPolynomialIrreducible.
const DefaultPolynomial Poly = 0x3DA3358B4DC173

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	return bits.Len64(uint64(p)) - 1
}

// Add returns p + q over GF(2), which is XOR. Subtraction is identical.
func (p Poly) Add(q Poly) Poly { return p ^ q }

// Mod returns p mod m using polynomial long division over GF(2).
// It panics if m is zero.
func (p Poly) Mod(m Poly) Poly {
	if m == 0 {
		panic("rabin: modulus is the zero polynomial")
	}
	dm := m.Degree()
	for d := p.Degree(); d >= dm; d = p.Degree() {
		p ^= m << uint(d-dm)
	}
	return p
}

// Div returns the quotient of p / m over GF(2). It panics if m is zero.
func (p Poly) Div(m Poly) Poly {
	if m == 0 {
		panic("rabin: division by the zero polynomial")
	}
	var q Poly
	dm := m.Degree()
	for d := p.Degree(); d >= dm; d = p.Degree() {
		shift := uint(d - dm)
		q |= 1 << shift
		p ^= m << shift
	}
	return q
}

// MulMod returns (p * q) mod m without overflowing 64 bits, by reducing
// after every shift. It panics if m is zero or if p is not already
// reduced modulo m.
func MulMod(p, q, m Poly) Poly {
	if m == 0 {
		panic("rabin: modulus is the zero polynomial")
	}
	if p.Degree() >= m.Degree() {
		p = p.Mod(m)
	}
	var r Poly
	dm := m.Degree()
	for q != 0 {
		if q&1 != 0 {
			r ^= p
		}
		q >>= 1
		p <<= 1
		if p.Degree() == dm {
			p ^= m
		}
	}
	return r
}

// GCD returns the greatest common divisor of p and q over GF(2).
func GCD(p, q Poly) Poly {
	for q != 0 {
		p, q = q, p.Mod(q)
	}
	return p
}

// powX2k returns x^(2^k) mod m via repeated squaring of x.
func powX2k(k int, m Poly) Poly {
	r := Poly(2).Mod(m) // the polynomial "x"
	for i := 0; i < k; i++ {
		r = MulMod(r, r, m)
	}
	return r
}

// Irreducible reports whether p is irreducible over GF(2), using
// Rabin's irreducibility test: p of degree n is irreducible iff
// x^(2^n) ≡ x (mod p) and gcd(x^(2^(n/q)) − x, p) = 1 for every prime
// divisor q of n.
func Irreducible(p Poly) bool {
	n := p.Degree()
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	if p&1 == 0 {
		return false // divisible by x
	}
	x := Poly(2)
	if powX2k(n, p) != x.Mod(p) {
		return false
	}
	for _, q := range primeDivisors(n) {
		h := powX2k(n/q, p) ^ x
		if GCD(h.Mod(p), p).Degree() > 0 {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var ps []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			ps = append(ps, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		ps = append(ps, n)
	}
	return ps
}

// ErrNoPolynomial is returned by DerivePolynomial when no irreducible
// polynomial is found within the search budget.
var ErrNoPolynomial = errors.New("rabin: no irreducible polynomial found")

// DerivePolynomial deterministically derives an irreducible polynomial
// of the given degree from a seed, by scanning candidates produced by a
// simple xorshift generator. Degree must be in [8, 62] so the rolling
// window arithmetic cannot overflow.
func DerivePolynomial(seed uint64, degree int) (Poly, error) {
	if degree < 8 || degree > 62 {
		return 0, errors.New("rabin: polynomial degree must be in [8, 62]")
	}
	s := seed | 1
	for i := 0; i < 1<<16; i++ {
		// xorshift64
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		p := Poly(s) & (1<<uint(degree) - 1)
		p |= 1<<uint(degree) | 1 // force exact degree and a constant term
		if Irreducible(p) {
			return p, nil
		}
	}
	return 0, ErrNoPolynomial
}
