package cluster

import (
	"bytes"
	"testing"

	"shredder/internal/dedup"
)

// manifestSeedCorpus seeds the SHRDCLM1 codec fuzzer: empty and
// populated manifests plus corrupted headers, counts, and bodies.
func manifestSeedCorpus() [][]byte {
	a, b := dedup.Sum([]byte("a")), dedup.Sum([]byte("b"))
	good := encodeManifest([]dedup.Hash{a, b, a})
	short := append([]byte(nil), good[:len(good)-1]...)
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	badCount := append([]byte(nil), good...)
	badCount[len(manifestMagic)+7]++
	return [][]byte{
		nil,
		{},
		[]byte(manifestMagic),
		encodeManifest(nil),
		good,
		short,
		badMagic,
		badCount,
	}
}

// FuzzManifestCodec: decodeManifest must never panic, must reject any
// payload whose count disagrees with its body, and must round-trip
// accepted payloads byte-identically — the manifest is the home node's
// durable record of a routed stream, so its framing is canonical.
func FuzzManifestCodec(f *testing.F) {
	for _, seed := range manifestSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		hs, err := decodeManifest(in)
		if err != nil {
			return
		}
		hdr := len(manifestMagic) + 8
		if want := (len(in) - hdr) / len(dedup.Hash{}); len(hs) != want {
			t.Fatalf("decoded %d fingerprints from %d body bytes", len(hs), len(in)-hdr)
		}
		if out := encodeManifest(hs); !bytes.Equal(out, in) {
			t.Fatalf("re-encoding differs:\nin  %x\nout %x", in, out)
		}
	})
}
