package ingest

import (
	"io"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// The exported wire surface: the frame and payload codecs a routing
// layer (internal/cluster) needs to serve the client-facing side of
// the protocol itself — accepting ordinary Session clients, splitting
// their streams by chunk ownership, and fanning the pieces out to
// owner nodes through this package's Session. Keeping the codecs here,
// as thin wrappers over the private implementations the Server and
// Session use, means there is exactly one definition of the wire
// format in the tree.

// WriteFrame emits one frame: a 1-byte type, a 4-byte big-endian
// payload length, then the payload (bounded by MaxFrame).
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	return writeFrame(w, typ, payload)
}

// ReadFrame reads one frame, reusing buf for the payload when it is
// large enough. The returned slice aliases buf (or a fresh allocation)
// and is valid until the next call with the same buf. A clean close on
// a frame boundary returns bare io.EOF; every other failure is typed.
func ReadFrame(r io.Reader, buf []byte) (byte, []byte, error) {
	return readFrame(r, buf)
}

// EncodeHello builds a MsgHello/MsgAccept payload (no trace context).
func EncodeHello(version byte, spec chunk.Spec) []byte {
	return encodeHello(version, spec)
}

// DecodeHello parses a MsgHello/MsgAccept payload: the proposed
// version, the (validated) chunking spec, and the sender's trace
// context on a traced v4 payload (zero otherwise).
func DecodeHello(p []byte) (byte, chunk.Spec, obs.SpanContext, error) {
	return decodeHello(p)
}

// DecodeBeginDedup parses a MsgBeginDedup payload for the session's
// negotiated version: the stream name, plus the client's trace context
// on a traced v4 payload.
func DecodeBeginDedup(version byte, p []byte) (string, obs.SpanContext, error) {
	return decodeBeginDedup(version, p)
}

// DecodeHasBatchPayload parses a MsgHasBatch payload into its
// fingerprints.
func DecodeHasBatchPayload(p []byte) ([]dedup.Hash, error) {
	return decodeHasBatch(p)
}

// EncodeNeedBatch packs ascending missing-set indices into a
// MsgNeedBatch payload.
func EncodeNeedBatch(idxs []int) []byte {
	return encodeNeedBatch(idxs)
}

// EncodeStreamStats serializes a MsgStats payload in the layout the
// session's negotiated version expects (≥ 3 carries WireStats).
func EncodeStreamStats(st StreamStats, version byte) []byte {
	return st.encode(version)
}

// EncodeDeleteStats serializes a MsgDeleteOK payload.
func EncodeDeleteStats(ds shardstore.DeleteStats) []byte {
	return encodeDeleteResult(ds)
}
