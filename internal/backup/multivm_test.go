package backup

import (
	"testing"

	"shredder/internal/workload"
)

// TestCrossVMDedup exercises the §7.2 motivation: images in a
// data-center environment are standardized, so different VMs share
// most of their content and a consolidated backup server dedups across
// them.
func TestCrossVMDedup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shredder.BufferSize = 4 << 20
	cfg.BufferSize = 4 << 20
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A golden base image; each VM differs by ~5% (its own packages,
	// config, logs).
	golden := workload.NewImage(100, 16<<20, 64<<10, 0.05)
	if _, err := srv.Backup("golden", golden.Master, ShredderGPU); err != nil {
		t.Fatal(err)
	}
	var totalUnique, totalBytes int64
	images := make(map[string][]byte)
	for vm := 1; vm <= 4; vm++ {
		name := "vm-" + string(rune('0'+vm))
		img := golden.Snapshot(int64(vm))
		images[name] = img
		rep, err := srv.Backup(name, img, ShredderGPU)
		if err != nil {
			t.Fatal(err)
		}
		totalUnique += rep.UniqueBytes
		totalBytes += rep.Bytes
	}
	// Cross-VM sharing: the four VMs together add far less than one
	// image's worth of unique data.
	if totalUnique > totalBytes/4 {
		t.Fatalf("cross-VM dedup weak: %d unique of %d", totalUnique, totalBytes)
	}
	// Every VM restores byte-exactly.
	for name, img := range images {
		if err := srv.VerifyRestore(name, img); err != nil {
			t.Fatal(err)
		}
	}
	if srv.SiteStats().Ratio() < 3 {
		t.Fatalf("site dedup ratio %.2f, want > 3 for standardized images", srv.SiteStats().Ratio())
	}
}

// TestOptimizedIndexFlattensCurve verifies the paper's closing §7.3
// prediction: with ChunkStash-style index maintenance the backup
// bandwidth stays near the target rate across the whole similarity
// spectrum.
func TestOptimizedIndexFlattensCurve(t *testing.T) {
	bw := func(optimized bool, prob float64) float64 {
		cfg := DefaultConfig()
		cfg.OptimizedIndex = optimized
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		im := workload.NewImage(200+int64(prob*100), 32<<20, 64<<10, prob)
		if _, err := srv.Backup("master", im.Master, ShredderGPU); err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Backup("snap", im.Snapshot(5), ShredderGPU)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Bandwidth
	}
	// Unoptimized: pronounced decline from 5% to 40% churn.
	unoptDrop := bw(false, 0.05) / bw(false, 0.40)
	// Optimized: nearly flat.
	optDrop := bw(true, 0.05) / bw(true, 0.40)
	if unoptDrop < 1.25 {
		t.Fatalf("unoptimized index curve too flat (%.2fx drop)", unoptDrop)
	}
	if optDrop > 1.10 {
		t.Fatalf("optimized index still declines %.2fx across the spectrum", optDrop)
	}
	// And the optimized bandwidth sits near the 10 Gbps source even at
	// high churn (pipeline ramp-in/out over the 4 in-flight buffers
	// costs ~25% at this image size; the steady-state rate is at
	// target).
	if g := bw(true, 0.40) * 8 / 1e9; g < 7.0 {
		t.Fatalf("optimized-index bandwidth %.1f Gbps at 40%% churn, want near target", g)
	}
}
