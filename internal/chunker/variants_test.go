package chunker

import (
	"testing"
	"testing/quick"
)

func TestFixedSplit(t *testing.T) {
	data := testData(40, 100)
	chunks := FixedSplit(data, 32)
	if len(chunks) != 4 {
		t.Fatalf("%d chunks, want 4", len(chunks))
	}
	checkCover(t, chunks, 100)
	if chunks[3].Length != 4 {
		t.Fatalf("tail length %d, want 4", chunks[3].Length)
	}
	if len(FixedSplit(nil, 32)) != 0 {
		t.Fatal("empty input produced chunks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero block size did not panic")
		}
	}()
	FixedSplit(data, 0)
}

func TestFixedSplitShiftFragility(t *testing.T) {
	// The motivating failure: one inserted byte changes every following
	// fixed block, while content-defined chunks downstream of the edit
	// keep their identity.
	data := testData(41, 1<<18)
	shifted := append([]byte{0xAA}, data...)

	fixedA := FixedSplit(data, 4096)
	fixedB := FixedSplit(shifted, 4096)
	sameFixed := 0
	sums := map[[32]byte]bool{}
	for _, c := range fixedA {
		sums[c.Sum(data)] = true
	}
	for _, c := range fixedB {
		if sums[c.Sum(shifted)] {
			sameFixed++
		}
	}

	c := mustNew(t, DefaultParams())
	cdcA := c.Split(data)
	cdcB := c.Split(shifted)
	sums = map[[32]byte]bool{}
	for _, ch := range cdcA {
		sums[ch.Sum(data)] = true
	}
	sameCDC := 0
	for _, ch := range cdcB {
		if sums[ch.Sum(shifted)] {
			sameCDC++
		}
	}
	if sameFixed > len(fixedB)/10 {
		t.Fatalf("fixed-size unexpectedly survived the shift: %d/%d", sameFixed, len(fixedB))
	}
	if sameCDC < len(cdcB)*8/10 {
		t.Fatalf("CDC lost identity after shift: %d/%d chunks shared", sameCDC, len(cdcB))
	}
}

func TestSkipSplitEqualsSplit(t *testing.T) {
	for _, cfg := range []struct{ min, max int }{
		{2048, 0},
		{2048, 16384},
		{4096, 65536},
		{64, 4096},
		{32, 0}, // min < window: falls back to plain Split
	} {
		p := DefaultParams()
		p.MinSize = cfg.min
		p.MaxSize = cfg.max
		c := mustNew(t, p)
		for _, n := range []int{0, 1, 100, 2047, 2048, 2049, 1 << 18} {
			data := testData(int64(42+n), n)
			got := c.SkipSplit(data)
			want := c.Split(data)
			if len(got) != len(want) {
				t.Fatalf("min=%d max=%d n=%d: %d chunks vs %d", cfg.min, cfg.max, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("min=%d max=%d n=%d chunk %d: %+v != %+v",
						cfg.min, cfg.max, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSkipSplitQuick(t *testing.T) {
	p := DefaultParams()
	p.MinSize = 256
	p.MaxSize = 4096
	c := mustNew(t, p)
	f := func(data []byte) bool {
		got := c.SkipSplit(data)
		want := c.Split(data)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleByteValidation(t *testing.T) {
	good := SampleByteParams{MarkedBytes: 8, SkipAfterMatch: 16, Seed: 1}
	if _, err := NewSampleByte(good); err != nil {
		t.Fatal(err)
	}
	bad := []SampleByteParams{
		{MarkedBytes: 0},
		{MarkedBytes: 200},
		{MarkedBytes: 8, SkipAfterMatch: -1},
		{MarkedBytes: 8, SkipAfterMatch: 64, MaxSize: 64},
	}
	for i, p := range bad {
		if _, err := NewSampleByte(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSampleByteSplitInvariants(t *testing.T) {
	s, err := NewSampleByte(SampleByteParams{MarkedBytes: 8, SkipAfterMatch: 16, MaxSize: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(50, 1<<18)
	chunks := s.Split(data)
	checkCover(t, chunks, int64(len(data)))
	for i, c := range chunks {
		if c.Length > 1024 {
			t.Fatalf("chunk %d exceeds max", i)
		}
		if i < len(chunks)-1 && !c.Forced && c.Length < 16 {
			t.Fatalf("chunk %d below skip/min", i)
		}
	}
	// Deterministic.
	again := s.Split(data)
	if len(again) != len(chunks) {
		t.Fatal("non-deterministic")
	}
	// Expected size roughly 256/8 + 16 = 48.
	mean := float64(len(data)) / float64(len(chunks))
	if mean < 30 || mean > 80 {
		t.Fatalf("mean chunk %.0f outside [30, 80]", mean)
	}
}

func TestSampleByteQuickCoverage(t *testing.T) {
	s, _ := NewSampleByte(SampleByteParams{MarkedBytes: 16, SkipAfterMatch: 8, Seed: 3})
	f := func(data []byte) bool {
		chunks := s.Split(data)
		var off int64
		for _, c := range chunks {
			if c.Offset != off || c.Length <= 0 {
				return false
			}
			off = c.End()
		}
		return off == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleByteMissesDedupVsRabin(t *testing.T) {
	// §2.1: sampling approaches are suited only to small chunks, because
	// at large target sizes most bytes fall inside the skip region and a
	// boundary's position depends on where the previous one landed.
	// Under insertions (content shifts) that coupling slows boundary
	// re-synchronization and dedup opportunities are missed, while
	// Rabin windows resynchronize within one chunk. Both chunkers are
	// configured for a ~4 KB average.
	data := testData(51, 1<<20)
	edited := make([]byte, 0, len(data)+8*64)
	prev := 0
	for i := 1; i <= 8; i++ { // eight 64-byte insertions
		pos := i * len(data) / 9
		edited = append(edited, data[prev:pos]...)
		edited = append(edited, testData(int64(60+i), 64)...)
		prev = pos
	}
	edited = append(edited, data[prev:]...)

	pr := DefaultParams()
	pr.MaskBits = 12
	pr.Marker = 1<<12 - 1
	rab := mustNew(t, pr)
	sam, _ := NewSampleByte(SampleByteParams{MarkedBytes: 1, SkipAfterMatch: 3840, Seed: 4})

	recall := func(split func([]byte) []Chunk) float64 {
		sums := map[[32]byte]bool{}
		for _, c := range split(data) {
			sums[c.Sum(data)] = true
		}
		hit, total := 0, 0
		for _, c := range split(edited) {
			total++
			if sums[c.Sum(edited)] {
				hit++
			}
		}
		return float64(hit) / float64(total)
	}
	rr := recall(rab.Split)
	sr := recall(sam.Split)
	if rr < 0.85 {
		t.Fatalf("rabin recall %.2f unexpectedly low", rr)
	}
	if sr >= rr {
		t.Fatalf("samplebyte recall %.2f not below rabin %.2f under insertions", sr, rr)
	}
}

func BenchmarkSkipSplit(b *testing.B) {
	p := DefaultParams()
	p.MinSize = 4096
	p.MaxSize = 65536
	c := mustNew(b, p)
	data := testData(52, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SkipSplit(data)
	}
}

func BenchmarkSplitWithLimits(b *testing.B) {
	p := DefaultParams()
	p.MinSize = 4096
	p.MaxSize = 65536
	c := mustNew(b, p)
	data := testData(52, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Split(data)
	}
}

func BenchmarkSampleByte(b *testing.B) {
	s, _ := NewSampleByte(SampleByteParams{MarkedBytes: 1, SkipAfterMatch: 2048, Seed: 5})
	data := testData(53, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Split(data)
	}
}
