package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("op")
	ctx := sp.Context()
	if !ctx.Valid() {
		t.Fatal("live span context not valid")
	}
	enc := ctx.Encode()
	if len(enc) != SpanContextWireSize {
		t.Fatalf("encoded context %d bytes, want %d", len(enc), SpanContextWireSize)
	}
	got, ok := DecodeSpanContext(enc)
	if !ok || got != ctx {
		t.Fatalf("decode = %+v, %v; want %+v", got, ok, ctx)
	}
	if _, ok := DecodeSpanContext(enc[:23]); ok {
		t.Error("truncated context decoded")
	}
	if _, ok := DecodeSpanContext(make([]byte, SpanContextWireSize)); ok {
		t.Error("all-zero context decoded as valid")
	}
	if (SpanContext{}).Valid() {
		t.Error("zero context claims validity")
	}
	sp.End()
}

func TestSpanTreeSnapshot(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("backup", Str("recipe", "vm-1"))
	child := root.Child("put_batch", Int("chunks", 64))
	grand := child.Child("fsync")
	grand.End()
	child.End()
	root.Set(Int("bytes", 1024), Float("ratio", 1.5))
	root.End()

	tds := tr.Snapshot()
	if len(tds) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(tds))
	}
	td := tds[0]
	if td.Root != "backup" || len(td.Spans) != 3 {
		t.Fatalf("trace root %q, %d spans; want backup, 3", td.Root, len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["put_batch"].ParentID != byName["backup"].SpanID {
		t.Error("child not parented under root")
	}
	if byName["fsync"].ParentID != byName["put_batch"].SpanID {
		t.Error("grandchild not parented under child")
	}
	if byName["backup"].Attrs["bytes"] != int64(1024) || byName["backup"].Attrs["recipe"] != "vm-1" {
		t.Errorf("root attrs = %v", byName["backup"].Attrs)
	}
	if byName["put_batch"].Attrs["chunks"] != int64(64) {
		t.Errorf("child attrs = %v", byName["put_batch"].Attrs)
	}
	tree := td.Tree()
	for _, want := range []string{"backup", "put_batch", "fsync", "recipe=vm-1", "chunks=64"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestRemoteParenting is the wire scenario: a client root's context
// crosses to a "server" tracer; both halves merge into one tree under
// one trace ID.
func TestRemoteParenting(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	client := tr.StartRoot("backup_dedup")
	ctx, ok := DecodeSpanContext(client.Context().Encode())
	if !ok {
		t.Fatal("context did not survive the wire")
	}
	server := tr.StartRemote("backup_dedup", ctx)
	server.Child("commit").End()
	server.End()
	client.End()

	tds := tr.Snapshot()
	if len(tds) != 1 {
		t.Fatalf("snapshot has %d traces, want 1 (client and server merged)", len(tds))
	}
	td := tds[0]
	if td.TraceID != client.Trace().String() {
		t.Errorf("trace id %s, want client's %s", td.TraceID, client.Trace())
	}
	var remote *SpanData
	for i, s := range td.Spans {
		if s.Remote {
			remote = &td.Spans[i]
		}
	}
	if remote == nil {
		t.Fatalf("no remote-parented span in %+v", td.Spans)
	}
	if remote.ParentID != client.Context().Span.String() {
		t.Error("server span not parented under the client span")
	}
	if !strings.Contains(td.Tree(), "[remote-parent]") {
		t.Errorf("tree does not mark the remote join:\n%s", td.Tree())
	}
}

// TestStartRemoteInvalidContext: a zero context degrades to a fresh
// local root (the legacy-client path).
func TestStartRemoteInvalidContext(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRemote("negotiate", SpanContext{})
	if sp == nil || sp.Trace().IsZero() {
		t.Fatal("invalid context did not start a local root")
	}
	sp.End()
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("snapshot has %d traces, want 1", n)
	}
}

func TestSlowRetentionAndCallback(t *testing.T) {
	var slowNames []string
	// The threshold leaves a wide margin so a loaded CI machine cannot
	// push a no-op root span over it.
	tr := NewTracer(TracerConfig{
		Recent:        2, // tiny: fast traces evict each other
		SlowThreshold: 50 * time.Millisecond,
		OnSlow:        func(root *Span) { slowNames = append(slowNames, root.Name()) },
	})
	slow := tr.StartRoot("slow_op")
	time.Sleep(60 * time.Millisecond)
	slow.End()
	for i := 0; i < 8; i++ {
		tr.StartRoot("noop").End() // sub-threshold churn past the recent ring
	}
	if len(slowNames) != 1 || slowNames[0] != "slow_op" {
		t.Fatalf("OnSlow saw %v, want [slow_op]", slowNames)
	}
	found := false
	for _, td := range tr.Snapshot() {
		if td.Root == "slow_op" {
			found = true
			if !td.Slow {
				t.Error("retained slow trace not flagged Slow")
			}
			if !strings.Contains(td.Tree(), "SLOW") {
				t.Error("tree does not flag SLOW")
			}
		}
	}
	if !found {
		t.Fatal("slow trace evicted despite the slow ring")
	}
}

func TestSpanBudget(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpansPerTrace: 3})
	root := tr.StartRoot("op")
	a := root.Child("a")
	b := root.Child("b")
	over := root.Child("over") // budget of 3 spans exhausted
	if over != nil {
		t.Fatal("over-budget child allocated")
	}
	over.Child("nested").End() // all nil, all no-ops
	a.End()
	b.End()
	root.End()
	td := tr.Snapshot()[0]
	if len(td.Spans) != 3 || td.Dropped != 1 {
		t.Fatalf("spans %d dropped %d, want 3 and 1", len(td.Spans), td.Dropped)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Snapshot() != nil {
		t.Error("nil tracer snapshot not nil")
	}
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.Set(Int("k", 1))
	sp.Child("c").End()
	sp.End()
	if sp.Context().Valid() || !sp.Trace().IsZero() || sp.Name() != "" || sp.Duration() != 0 {
		t.Error("nil span leaks state")
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traces": []`) {
		t.Errorf("nil tracer JSON = %q", b.String())
	}
	var h *Histogram
	h.ObserveSince(time.Now())
	h.ObserveExemplar(1, TraceID{})
	h.ObserveSinceExemplar(time.Now(), TraceID{})
}

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTracer(TracerConfig{SlowThreshold: 250 * time.Millisecond})
	root := tr.StartRoot("restore", Str("recipe", `quo"ted`))
	root.Child("lookup").End()
	root.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SlowThresholdSeconds float64     `json:"slow_threshold_seconds"`
		Traces               []TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.SlowThresholdSeconds != 0.25 {
		t.Errorf("slow_threshold_seconds = %v", doc.SlowThresholdSeconds)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].Root != "restore" || len(doc.Traces[0].Spans) != 2 {
		t.Fatalf("traces = %+v", doc.Traces)
	}
	if doc.Traces[0].Spans[0].Attrs["recipe"] != `quo"ted` {
		t.Errorf("attr did not survive JSON: %v", doc.Traces[0].Spans[0].Attrs)
	}
}

// TestHistogramExemplar: an exemplar observation pins its trace to the
// receiving bucket and renders in the JSON snapshot (and only there —
// the text format must stay 0.0.4-clean).
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "op", []float64{1, 10})
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("op")
	h.ObserveExemplar(5, sp.Trace()) // lands in the le=10 bucket
	h.Observe(0.5)                   // no exemplar
	sp.End()

	var txt strings.Builder
	if err := r.WritePrometheus(&txt); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(txt.String(), "exemplar") {
		t.Error("text exposition leaked exemplar tokens")
	}
	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(js.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	key := `op_seconds_exemplar{le="10"}`
	v, ok := m[key].(string)
	if !ok {
		t.Fatalf("no %s in %v", key, m)
	}
	if !strings.Contains(v, "trace_id="+sp.Trace().String()) || !strings.Contains(v, "value=5") {
		t.Errorf("exemplar = %q", v)
	}
	if _, ok := m[`op_seconds_exemplar{le="1"}`]; ok {
		t.Error("bucket without exemplar rendered one")
	}
}

// TestLabelEscaping: quotes, newlines and backslashes in label values
// must render escaped in the text exposition and survive the JSON
// snapshot exactly.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	raw := "a\"b\\c\nd"
	r.Counter("esc_total", "esc", "path", raw).Add(3)

	var txt strings.Builder
	if err := r.WritePrometheus(&txt); err != nil {
		t.Fatal(err)
	}
	wantText := `esc_total{path="a\"b\\c\nd"} 3`
	if !strings.Contains(txt.String(), wantText) {
		t.Errorf("text exposition = %q, want it to contain %q", txt.String(), wantText)
	}
	if strings.Contains(txt.String(), "\nd\"}") {
		t.Error("raw newline leaked into the text exposition")
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(js.String()), &m); err != nil {
		t.Fatalf("JSON snapshot invalid with escaped labels: %v\n%s", err, js.String())
	}
	// The JSON key is the fully qualified series name — the same
	// exposition-escaped label string, then JSON-quoted.
	if m[`esc_total{path="a\"b\\c\nd"}`] != 3.0 {
		t.Errorf("escaped series missing from JSON snapshot: %v", m)
	}
}

// TestDebugTracesConcurrent hammers /debug/traces and /metrics while
// spans are minted and ended on many goroutines — the -race proof for
// the ring and snapshot paths.
func TestDebugTracesConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "c", []float64{1})
	tr := NewTracer(TracerConfig{Recent: 8, Slow: 4, SlowThreshold: time.Nanosecond})
	admin := NewAdmin(r, nil)
	admin.SetTracer(tr)
	ts := httptest.NewServer(admin)
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				root := tr.StartRoot(fmt.Sprintf("op-%d", g), Int("i", int64(i)))
				c := root.Child("stage")
				h.ObserveSinceExemplar(time.Now(), root.Trace())
				c.End()
				root.End()
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		for _, path := range []string{"/debug/traces", "/metrics?format=json", "/statusz"} {
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("%s: %d", path, resp.StatusCode)
			}
			if path == "/debug/traces" {
				var doc map[string]any
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Fatalf("/debug/traces invalid JSON under churn: %v", err)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	bi := RegisterBuildInfo(r)
	if bi.GoVersion == "" {
		t.Error("build info has no Go version")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "shredder_build_info{") || !strings.Contains(out, `go="`+bi.GoVersion+`"`) {
		t.Errorf("build info gauge missing:\n%s", out)
	}
}

// BenchmarkSpanDisabled is the nil-tracer hot path: the cost a fully
// instrumented call tree pays when tracing is off must stay at a few
// nil checks (0 allocs).
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("op")
		c := sp.Child("stage", Int("i", int64(i)))
		c.Set(Int("n", 1))
		c.End()
		sp.End()
	}
}

// BenchmarkSpanEnabled is the same tree with a live tracer.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("op")
		c := sp.Child("stage", Int("i", int64(i)))
		c.Set(Int("n", 1))
		c.End()
		sp.End()
	}
}

// BenchmarkObserveSince is the shared timer helper on a live histogram.
func BenchmarkObserveSince(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(time.Now())
	}
}

// BenchmarkObserveSinceNil is the same call on the uninstrumented path.
func BenchmarkObserveSinceNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(time.Now())
	}
}
