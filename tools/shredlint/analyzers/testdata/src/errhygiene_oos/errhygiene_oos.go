// Out-of-scope suite for the errhygiene analyzer: the same discarded
// errors as the positive suite, but in a package outside
// persist/ingest/cluster, where the rule does not apply.
package web

import (
	"fmt"
	"os"
)

func journal(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close()
	return nil
}

func wrap(name string, err error) error {
	return fmt.Errorf("web: load %s: %v", name, err)
}
