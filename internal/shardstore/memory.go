package shardstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"shredder/internal/dedup"
)

// MemoryBacking is the non-durable Backing: containers live in RAM,
// nothing is journaled, and Recover yields nothing. It is the backing
// behind New and preserves the seed store's semantics exactly
// (including dedup.Store-identical container packing per shard).
type MemoryBacking struct {
	shards []*memShard
}

// memShard is one in-memory stripe: the container slices, append-only.
// present mirrors the fingerprints appended so far behind its own lock
// (the container fields are serialized by the Store's stripe lock, but
// Missing may be called concurrently from outside the Store).
type memShard struct {
	containerSize int64
	containers    [][]byte

	mu      sync.RWMutex
	present map[Hash]struct{}
}

// NewMemoryBacking lays out an in-memory backing with the given shard
// count (a power of two in [1, MaxShards]; 0 means 16) and container
// size (0 means dedup.DefaultContainerSize).
func NewMemoryBacking(shards int, containerSize int64) (*MemoryBacking, error) {
	if shards == 0 {
		shards = 16
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shardstore: shard count %d outside [1, %d]", shards, MaxShards)
	}
	if shards&(shards-1) != 0 {
		return nil, fmt.Errorf("shardstore: shard count %d is not a power of two", shards)
	}
	if containerSize < 0 {
		return nil, errors.New("shardstore: negative container size")
	}
	if containerSize == 0 {
		containerSize = dedup.DefaultContainerSize
	}
	b := &MemoryBacking{shards: make([]*memShard, shards)}
	for i := range b.shards {
		b.shards[i] = &memShard{containerSize: containerSize, present: make(map[Hash]struct{})}
	}
	return b, nil
}

func (b *MemoryBacking) NumShards() int                      { return len(b.shards) }
func (b *MemoryBacking) Shard(i int) ShardBacking            { return b.shards[i] }
func (b *MemoryBacking) CommitRecipe(string, Recipe) error   { return nil }
func (b *MemoryBacking) DeleteRecipe(string) error           { return nil }
func (b *MemoryBacking) Recipes() (map[string]Recipe, error) { return nil, nil }
func (b *MemoryBacking) Sync() error                         { return nil }
func (b *MemoryBacking) Close() error                        { return nil }

// Missing reports which fingerprints no shard has a chunk for, as
// ascending indices into hs.
func (b *MemoryBacking) Missing(hs []Hash) []int {
	mask := uint32(len(b.shards) - 1)
	missing := make([]int, 0, len(hs))
	for i := range hs {
		m := b.shards[binary.BigEndian.Uint32(hs[i][:4])&mask]
		m.mu.RLock()
		_, ok := m.present[hs[i]]
		m.mu.RUnlock()
		if !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// Recover is a no-op: memory starts empty.
func (m *memShard) Recover(func(Hash, Ref, int64) error) error { return nil }

// Append packs data into the open container, identical to
// dedup.Store.append. Containers are append-only: bytes at an occupied
// offset are never rewritten, so refs handed out remain valid views.
func (m *memShard) Append(h Hash, data []byte) (int, int64, error) {
	m.mu.Lock()
	m.present[h] = struct{}{}
	m.mu.Unlock()
	return m.pack(data)
}

// pack places data in the open container, rolling when full. The open
// (last) container is never nil: Checkpoint only drops earlier slots.
func (m *memShard) pack(data []byte) (int, int64, error) {
	if len(m.containers) == 0 || int64(len(m.containers[len(m.containers)-1]))+int64(len(data)) > m.containerSize {
		m.containers = append(m.containers, make([]byte, 0, m.containerSize))
	}
	ci := len(m.containers) - 1
	c := m.containers[ci]
	off := int64(len(c))
	m.containers[ci] = append(c, data...)
	return ci, off, nil
}

// Relocate re-packs a surviving chunk during compaction; h is already
// present, so only the bytes move.
func (m *memShard) Relocate(h Hash, data []byte) (int, int64, error) {
	return m.pack(data)
}

func (m *memShard) LogRefDelta(Hash, int64) error { return nil }
func (m *memShard) Commit() error                 { return nil }

// Forget removes a dropped entry from the presence set.
func (m *memShard) Forget(h Hash) {
	m.mu.Lock()
	delete(m.present, h)
	m.mu.Unlock()
}

// ContainerLen reports container i's byte count, -1 for dropped slots.
func (m *memShard) ContainerLen(i int) int64 {
	if i < 0 || i >= len(m.containers) {
		return -1
	}
	if m.containers[i] == nil {
		return -1
	}
	return int64(len(m.containers[i]))
}

// Checkpoint has no journal to rewrite in memory; it just drops the
// victim containers so their bytes can be garbage-collected. Slots are
// nilled, not removed: later containers keep their numbers. Previously
// returned views into a dropped container stay valid (the Store only
// drops containers its index no longer references).
func (m *memShard) Checkpoint(_ []CheckpointEntry, drop []int) error {
	for _, ci := range drop {
		if ci >= 0 && ci < len(m.containers)-1 {
			m.containers[ci] = nil
		}
	}
	return nil
}

// Read returns a read-only view into the container; it stays valid
// because containers are append-only.
func (m *memShard) Read(container int, offset, length int64) ([]byte, error) {
	if container < 0 || container >= len(m.containers) {
		return nil, fmt.Errorf("shardstore: container %d out of range", container)
	}
	c := m.containers[container]
	if offset < 0 || length < 0 || offset+length > int64(len(c)) {
		return nil, fmt.Errorf("shardstore: range [%d, %d) outside container %d", offset, offset+length, container)
	}
	return c[offset : offset+length : offset+length], nil
}

func (m *memShard) Containers() int { return len(m.containers) }
