// Positive suite for the wiresym analyzer: a frame constant missing
// from frameName, an encoder with no decoder, and a decoder no fuzz
// target exercises.
package ingest

import "errors"

const (
	MsgBegin byte = 0x01
	MsgChunk byte = 0x02 // want `frame constant MsgChunk is not a key of frameName`
)

var frameName = map[byte]string{
	MsgBegin: "begin",
}

var errFrame = errors.New("short frame")

type hello struct{ v byte }

func encodeHello(h hello) []byte { return []byte{h.v} }

func decodeHello(b []byte) (hello, error) {
	v, err := decodeHelloBody(b)
	return hello{v: v}, err
}

// decodeHelloBody is fuzz-covered transitively through decodeHello.
func decodeHelloBody(b []byte) (byte, error) {
	if len(b) == 0 {
		return 0, errFrame
	}
	return b[0], nil
}

func encodeChunk(b []byte) []byte { return b } // want `encoder encodeChunk has no matching decoder`

type Stats struct{ n byte }

func (s Stats) encode() []byte { return []byte{s.n} }

func decodeStats(b []byte) (Stats, error) { // want `decoder decodeStats is not exercised by any Fuzz`
	if len(b) == 0 {
		return Stats{}, errFrame
	}
	return Stats{n: b[0]}, nil
}
