package persist

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"shredder/internal/obs"
)

// pmetrics is the backing's observability state. The plain atomics are
// maintained unconditionally (one uncontended Add per event, cheaper
// than a branch worth caring about) and exported as scrape-time
// CounterFuncs; the fsync latency histogram is the one hot-path handle
// and lives behind an atomic pointer because the FsyncInterval loop may
// already be syncing when Instrument installs it.
type pmetrics struct {
	walRecords    atomic.Int64 // insert/refdelta/relocate records staged
	recipeRecords atomic.Int64 // recipe commits + tombstones journaled
	checkpoints   atomic.Int64 // shard WAL checkpoints completed
	recoverNanos  atomic.Int64 // cumulative Recover wall time, all shards
	fsyncs        atomic.Int64 // fsync syscalls issued
	syncErrors    atomic.Int64 // fsync syscalls that failed
	flushedBytes  atomic.Int64 // WAL + recipe bytes written through (group batch sizing)
	groupRounds   atomic.Int64 // group-commit sync rounds completed
	fsyncSeconds  atomic.Pointer[obs.Histogram]
	groupWaiters  atomic.Pointer[obs.Histogram]
	groupBytes    atomic.Pointer[obs.Histogram]
	// fault latches the first sync failure forever: a disk that failed
	// an fsync holds writes in an unknowable state, so every later
	// commit fails loudly with the original error instead of quietly
	// acking bytes that may never land.
	fault atomic.Pointer[syncFault]
}

// syncFault is the latched first sync failure.
type syncFault struct{ err error }

// latchFault fail-stops the backing with err if no earlier failure is
// already latched.
func (m *pmetrics) latchFault(err error) {
	m.fault.CompareAndSwap(nil, &syncFault{err: err})
}

// syncFailed reports the latched failure, if any, wrapped so callers
// see both the fail-stop and its root cause.
func (m *pmetrics) syncFailed() error {
	if f := m.fault.Load(); f != nil {
		return fmt.Errorf("persist: failing stop after sync failure: %w", f.err)
	}
	return nil
}

// timedSync counts one fsync and, when instrumented, observes its
// latency. A non-nil span gets an fsync child span and the latency
// observation carries the span's trace as its bucket exemplar, so a
// slow fsync bucket links to the stream that paid for it.
func (m *pmetrics) timedSync(f *os.File, sp *obs.Span) error {
	m.fsyncs.Add(1)
	h := m.fsyncSeconds.Load()
	if h == nil && sp == nil {
		return m.checkedSync(f)
	}
	c := sp.Child("fsync")
	t0 := time.Now()
	err := m.checkedSync(f)
	h.ObserveSinceExemplar(t0, sp.Trace())
	c.End()
	return err
}

// checkedSync issues the fsync and, on failure, counts it and latches
// the backing into fail-stop.
func (m *pmetrics) checkedSync(f *os.File) error {
	err := f.Sync()
	if err != nil {
		m.syncErrors.Add(1)
		m.latchFault(err)
	}
	return err
}

// addRecoverSince accumulates Recover wall time. A deferred method
// value — the same shape as obs's Histogram.ObserveSince — so the
// timing point costs no closure allocation.
func (m *pmetrics) addRecoverSince(t0 time.Time) {
	m.recoverNanos.Add(time.Since(t0).Nanoseconds())
}

// presenceEntries sums the per-shard presence sets.
func (b *Backing) presenceEntries() int64 {
	var n int64
	for _, sh := range b.shards {
		sh.mu.Lock()
		n += int64(len(sh.present))
		sh.mu.Unlock()
	}
	return n
}

// Instrument registers the backing's metric families on reg: WAL and
// recipe-journal append counts, fsync count and latency (labeled by the
// configured policy), checkpoint count, recovery duration and presence-
// set size. Everything but the fsync latency histogram is evaluated at
// scrape time. A nil registry is a no-op; call at most once.
func (b *Backing) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	policy := b.opts.Fsync.String()
	reg.CounterFunc("persist_wal_records_total",
		"Index-mutation records (insert, refdelta, relocate) staged to shard WALs.",
		func() float64 { return float64(b.met.walRecords.Load()) })
	reg.CounterFunc("persist_recipe_records_total",
		"Recipe commits and tombstones appended to the recipe journal.",
		func() float64 { return float64(b.met.recipeRecords.Load()) })
	reg.CounterFunc("persist_fsyncs_total",
		"fsync syscalls issued across shard WALs, containers and the recipe journal.",
		func() float64 { return float64(b.met.fsyncs.Load()) },
		"policy", policy)
	reg.CounterFunc("persist_checkpoints_total",
		"Shard WAL checkpoints completed (compaction commit points).",
		func() float64 { return float64(b.met.checkpoints.Load()) })
	reg.CounterFunc("persist_sync_errors_total",
		"Failed fsync syscalls; the first latches the backing into fail-stop.",
		func() float64 { return float64(b.met.syncErrors.Load()) },
		"policy", policy)
	reg.CounterFunc("persist_group_commit_rounds_total",
		"Group-commit sync rounds completed (one shared fsync pass each).",
		func() float64 { return float64(b.met.groupRounds.Load()) })
	reg.GaugeFunc("persist_recovery_seconds",
		"Cumulative wall time the last open spent replaying shard WALs.",
		func() float64 { return float64(b.met.recoverNanos.Load()) / 1e9 })
	reg.GaugeFunc("persist_presence_entries",
		"Fingerprints in the shards' presence sets (the Missing query index).",
		func() float64 { return float64(b.presenceEntries()) })
	reg.GaugeFunc("persist_recipe_log_bytes",
		"Current recipe journal size on disk.",
		func() float64 {
			b.rmu.Lock()
			n := b.recipeSize
			b.rmu.Unlock()
			return float64(n)
		})
	b.met.fsyncSeconds.Store(reg.Histogram("persist_fsync_seconds",
		"fsync syscall latency.", obs.LatencyBuckets, "policy", policy))
	b.met.groupWaiters.Store(reg.Histogram("persist_group_commit_waiters",
		"Sessions sharing one group-commit sync round (window occupancy).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128}))
	b.met.groupBytes.Store(reg.Histogram("persist_group_commit_bytes",
		"WAL and recipe-journal bytes made durable per group-commit round.",
		[]float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}))
}
