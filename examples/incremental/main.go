// Incremental: the Inc-HDFS + Incoop workflow of §6 — upload a corpus
// with content-defined chunking, run word count, change a small slice
// of the input, and watch the incremental engine re-execute only the
// affected map tasks.
package main

import (
	"fmt"
	"log"

	"shredder/internal/core"
	"shredder/internal/hdfs"
	"shredder/internal/mapreduce"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.BufferSize = 8 << 20
	cfg.Chunking.MaskBits = 16 // ~64 KB content-defined splits
	cfg.Chunking.Marker = 1<<16 - 1
	shred, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := hdfs.NewClient(cluster, shred)
	client.RecordDelim = '\n' // semantic chunking: no record straddles blocks

	upload := func(name string, data []byte) [][]byte {
		if _, err := client.CopyFromLocalGPU(name, data); err != nil {
			log.Fatal(err)
		}
		splits, err := cluster.InputSplits(name)
		if err != nil {
			log.Fatal(err)
		}
		payloads := make([][]byte, len(splits))
		for i, s := range splits {
			payloads[i], err = cluster.ReadBlock(s.Block.ID)
			if err != nil {
				log.Fatal(err)
			}
		}
		return payloads
	}

	corpus := workload.Text(11, 8<<20)
	splitsV1 := upload("corpus-v1", corpus)

	memo := mapreduce.NewMemo()
	engine := &mapreduce.Engine{Memo: memo}
	out1, met1, err := engine.Run(mapreduce.WordCountJob(), splitsV1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial run: %d map tasks executed, %d distinct words\n",
		met1.MapExecuted, len(out1))

	// Change 3% of the corpus in two contiguous regions.
	edited := workload.MutateClusteredReplace(corpus, 13, 3, 2)
	splitsV2 := upload("corpus-v2", edited)
	out2, met2, err := engine.Run(mapreduce.WordCountJob(), splitsV2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental run: %d of %d map tasks re-executed (%d reused), %d combine nodes recomputed\n",
		met2.MapExecuted, met2.MapTasks, met2.MapTasks-met2.MapExecuted, met2.CombineExecuted)

	// Verify against a from-scratch run on the edited corpus.
	ref, refMet, err := (&mapreduce.Engine{}).Run(mapreduce.WordCountJob(), splitsV2)
	if err != nil {
		log.Fatal(err)
	}
	if len(ref) != len(out2) {
		log.Fatal("incremental output differs from from-scratch execution")
	}
	for k, v := range ref {
		if out2[k] != v {
			log.Fatalf("mismatch for %q: %s vs %s", k, out2[k], v)
		}
	}
	model := mapreduce.DefaultClusterModel()
	fmt.Printf("results identical; modeled 20-node cluster speedup: %s\n",
		stats.Speedup(model.Speedup(*refMet, *met2)))
}
