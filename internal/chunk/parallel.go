// Parallel single-stream chunking: the paper's core idea — split a
// large stream into fixed regions, chunk every region on its own core,
// and fix up the seams so the output is byte-identical to a sequential
// scan — lifted onto the Engine API so it works for any engine whose
// boundary test depends on a bounded window of preceding bytes.
//
// The trick (Shredder §3.2, previously prototyped in the retired
// pchunk package) is that a rolling-hash boundary at position p is a
// pure function of a fixed number of bytes ending at p: a worker
// assigned region [lo, hi) first warms its rolling state on the bytes
// just before lo, then scans its region emitting candidate boundaries
// whose fingerprints exactly equal a sequential scan's. Candidates
// carry no min/max/normalization policy — that is inherently
// sequential (each cut depends on where the previous cut landed) — so
// a final single-threaded resolve pass replays the engine's policy
// over the merged candidate list. The scan is ~99% of the work; the
// resolve touches only candidate positions (plus, for FastCDC, a
// sub-window of bytes per chunk) and is effectively free.
package chunk

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"shredder/internal/obs"
)

// candidate is one potential boundary found by a region scan: pos is
// the exclusive end offset of the would-be chunk, fp the rolling hash
// that fired there.
type candidate struct {
	pos int64
	fp  uint64
}

// regionScanner is the engine capability Parallel needs: a region scan
// whose candidates match a sequential scan's, plus the sequential
// policy replay over them. Engines without it fall back to sequential.
type regionScanner interface {
	// overlap is how many bytes before a region the scan must feed
	// through its rolling state so candidates at every region position
	// equal the sequential scan's (the window-warmup overlap).
	overlap() int
	// scanRegion emits every candidate boundary in data[lo:hi], warming
	// its rolling state from data[max(0, lo-overlap):lo]. Candidates are
	// a superset of real cuts: the resolve pass applies min/max and any
	// mask tightening.
	scanRegion(data []byte, lo, hi int, emit func(candidate))
	// resolve replays the engine's chunking policy over data[start:]
	// given the ascending candidates (entries at or before start are
	// ignored), returning exactly what a sequential Split of a stream
	// ending at len(data) would, with offsets relative to data[0].
	resolve(data []byte, start int, cands []candidate) []Chunk
}

// parallelMinRegion is the smallest per-worker region worth a
// goroutine: below this the window-warmup overlap and scheduling
// overhead eat the speedup.
const parallelMinRegion = 256 << 10

// Parallel wraps an Engine and chunks large inputs on many cores,
// byte-identical to the wrapped engine (differentially tested for
// every engine, feed size and worker count). Small inputs, a single
// worker, or an engine without region support fall back to the wrapped
// engine unchanged. Like every Engine it is stateless between calls
// and safe for concurrent use.
type Parallel struct {
	inner   Engine
	scanner regionScanner
	workers int

	// Instrumentation handles (nil without Instrument; obs methods are
	// nil-tolerant).
	segments    *obs.Counter
	scanBytes   *obs.Counter
	utilization *obs.Histogram
}

var _ Engine = (*Parallel)(nil)

// NewParallel wraps inner to chunk on up to workers cores (0 or
// negative means GOMAXPROCS).
func NewParallel(inner Engine, workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Parallel{inner: inner, workers: workers}
	p.scanner, _ = inner.(regionScanner)
	return p
}

// Spec returns the wrapped engine's configuration.
func (p *Parallel) Spec() Spec { return p.inner.Spec() }

// Inner returns the wrapped engine.
func (p *Parallel) Inner() Engine { return p.inner }

// Workers returns the configured worker count.
func (p *Parallel) Workers() int { return p.workers }

// Instrument registers the parallel chunker's metric families on reg
// and keeps the handles. Families are shared: many Parallel instances
// (one per session) may instrument the same registry and aggregate
// into the same counters. A nil registry is a no-op.
func (p *Parallel) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.segments = reg.Counter("chunk_parallel_segments_total",
		"Parallel region-scan passes executed.")
	p.scanBytes = reg.Counter("chunk_parallel_bytes_total",
		"Bytes scanned by parallel chunking workers.")
	p.utilization = reg.Histogram("chunk_parallel_worker_utilization",
		"Per-pass worker busy share: sum(worker busy time) / (workers x wall time).",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
}

// Split cuts data into chunks, byte-identical to the wrapped engine's
// Split.
func (p *Parallel) Split(data []byte) []Chunk {
	cands, ok := p.parallelScan(data, 0)
	if !ok {
		return p.inner.Split(data)
	}
	return p.scanner.resolve(data, 0, cands)
}

// parallelScan fans data[lo:] out to the workers in fixed regions and
// returns the merged, ascending candidate list. ok is false when the
// input is too small to benefit or the engine has no region support;
// the caller then scans sequentially.
func (p *Parallel) parallelScan(data []byte, lo int) ([]candidate, bool) {
	n := len(data) - lo
	if p.scanner == nil || p.workers <= 1 || n < 2*parallelMinRegion {
		return nil, false
	}
	workers := p.workers
	if most := n / parallelMinRegion; workers > most {
		workers = most
	}
	region := (n + workers - 1) / workers
	// Per-worker arenas (the paper's Hoard-style allocation ablation:
	// a shared locked arena serializes the scan): each worker appends
	// to its own slice, and the in-order concatenation is already
	// sorted because regions partition the input in order.
	arenas := make([][]candidate, workers)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for wi := 0; wi < workers; wi++ {
		rlo := lo + wi*region
		rhi := rlo + region
		if rhi > len(data) {
			rhi = len(data)
		}
		if rlo >= rhi {
			continue
		}
		wg.Add(1)
		go func(wi, rlo, rhi int) {
			defer wg.Done()
			w0 := time.Now()
			local := arenas[wi]
			p.scanner.scanRegion(data, rlo, rhi, func(c candidate) {
				local = append(local, c)
			})
			arenas[wi] = local
			busy[wi] = time.Since(w0)
		}(wi, rlo, rhi)
	}
	wg.Wait()
	p.observeScan(n, workers, busy, time.Since(t0))
	total := 0
	for _, a := range arenas {
		total += len(a)
	}
	out := make([]candidate, 0, total)
	for _, a := range arenas {
		out = append(out, a...)
	}
	return out, true
}

// observeScan records one parallel pass's size and worker utilization.
func (p *Parallel) observeScan(n, workers int, busy []time.Duration, wall time.Duration) {
	p.segments.Add(1)
	p.scanBytes.Add(int64(n))
	if wall <= 0 {
		return
	}
	var sum time.Duration
	for _, d := range busy {
		sum += d
	}
	p.utilization.Observe(float64(sum) / (float64(workers) * float64(wall)))
}

// segmentSize is how many unscanned bytes a stream buffers before
// running a parallel pass: enough for every worker to get a region
// worth waking for.
func (p *Parallel) segmentSize() int {
	n := p.workers * (512 << 10)
	if n < 1<<20 {
		n = 1 << 20
	}
	return n
}

// Stream returns an incremental feed that chunks buffered segments on
// all cores, emitting exactly the chunks a sequential stream would.
// Without region support (or a single worker) it is the wrapped
// engine's stream.
func (p *Parallel) Stream(emit EmitFunc) Stream {
	if p.scanner == nil || p.workers <= 1 {
		return p.inner.Stream(emit)
	}
	return &parallelStream{p: p, emit: emit}
}

// parallelStream accumulates writes, scans each full segment with the
// worker pool, and resolves + emits every chunk that is final. A chunk
// is final unless it is the last resolved one — only that chunk's end
// sits at the scan horizon rather than at a real cut, so everything
// before it is exactly what the sequential stream would have emitted.
// Emitted bytes are dropped from the buffer, keeping only the
// window-warmup overlap before the current chunk start, so memory
// stays bounded by segment size + max chunk size.
type parallelStream struct {
	p    *Parallel
	emit EmitFunc

	buf     []byte
	base    int64 // absolute stream offset of buf[0]
	start   int   // buf index of the current (unemitted) chunk start
	scanned int   // buf index the candidate list covers
	cands   []candidate
	closed  bool
	err     error
}

func (s *parallelStream) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, errors.New("chunk: write after Close")
	}
	s.buf = append(s.buf, p...)
	if len(s.buf)-s.scanned >= s.p.segmentSize() {
		s.scanTo(len(s.buf))
		if err := s.emitResolved(false); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

// scanTo extends the candidate list to cover buf[:hi], in parallel
// when the unscanned span is large enough.
func (s *parallelStream) scanTo(hi int) {
	lo := s.scanned
	if cands, ok := s.p.parallelScan(s.buf[:hi], lo); ok {
		s.cands = append(s.cands, cands...)
	} else {
		s.p.scanner.scanRegion(s.buf[:hi], lo, hi, func(c candidate) {
			s.cands = append(s.cands, c)
		})
	}
	s.scanned = hi
}

// emitResolved resolves chunks over the scanned prefix and emits the
// final ones (all of them when the stream is closing).
func (s *parallelStream) emitResolved(final bool) error {
	chunks := s.p.scanner.resolve(s.buf[:s.scanned], s.start, s.cands)
	keep := len(chunks)
	if !final && keep > 0 {
		keep-- // the last chunk ends at the scan horizon, not a real cut
	}
	if keep == 0 {
		return nil
	}
	for _, c := range chunks[:keep] {
		data := s.buf[c.Offset : c.Offset+c.Length]
		c.Offset += s.base
		if err := s.emit(c, data); err != nil {
			s.err = err
			return err
		}
	}
	s.start = int(chunks[keep-1].Offset + chunks[keep-1].Length)
	s.trim()
	return nil
}

// trim drops emitted bytes, keeping the warmup overlap before the
// current chunk start so later scans roll the exact sequential state.
func (s *parallelStream) trim() {
	drop := s.start - s.p.scanner.overlap()
	if drop <= 0 {
		return
	}
	kept := s.cands[:0]
	for _, c := range s.cands {
		if c.pos <= int64(s.start) {
			continue // superseded by an emitted cut; resolve would skip it
		}
		c.pos -= int64(drop)
		kept = append(kept, c)
	}
	s.cands = kept
	s.buf = s.buf[:copy(s.buf, s.buf[drop:])]
	s.base += int64(drop)
	s.start -= drop
	s.scanned -= drop
}

// Close scans and emits the buffered tail. It is idempotent.
func (s *parallelStream) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.closed = true
	if s.scanned < len(s.buf) {
		s.scanTo(len(s.buf))
	}
	return s.emitResolved(true)
}

func (s *parallelStream) Offset() int64 { return s.base + int64(len(s.buf)) }
