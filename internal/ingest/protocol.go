// Package ingest implements the Shredder service layer: a streaming
// chunk-and-dedup server (the shredderd daemon) and its client, talking
// a length-prefixed binary protocol over any net.Conn. Clients stream
// raw bytes; the server runs them through the core.Shredder chunking
// pipeline, hashes each chunk, and dedups it in batched put rounds
// against a sharded shardstore.Store shared by all sessions (each
// round answers has-or-put per chunk under one stripe lock per shard),
// returning per-stream dedup statistics. This is the consolidation point of the
// paper's §7 cloud-backup case study — many clients, one fingerprint
// index — made concurrent.
//
// Wire format: every frame is a 1-byte type, a 4-byte big-endian
// payload length, then the payload. A session optionally opens with a
// negotiation exchange selecting the chunking engine,
//
//	C→S  Hello(version, spec)
//	S→C  Accept(version, spec) | Error
//
// after which a backup operation is
//
//	C→S  Begin(name) Data* End
//	S→C  Stats | Error
//
// and a restore operation is
//
//	C→S  Restore(name)
//	S→C  Data* End | Error
//
// Clients that skip the Hello get the server's default engine — the
// Rabin configuration earlier protocol revisions hardwired — so legacy
// sessions are byte-for-byte unchanged. Frames from concurrent clients
// are never interleaved: each session owns its connection.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
)

// Frame types.
const (
	// MsgBegin opens a backup stream; the payload is the stream name.
	MsgBegin byte = iota + 1
	// MsgData carries raw stream bytes (either direction).
	MsgData
	// MsgEnd terminates a sequence of MsgData frames.
	MsgEnd
	// MsgStats is the server's reply to a completed backup stream; the
	// payload is an encoded StreamStats.
	MsgStats
	// MsgRestore asks the server to stream a named recipe back.
	MsgRestore
	// MsgError carries an error message and aborts the operation.
	MsgError
	// MsgHello proposes a session configuration: a 1-byte protocol
	// version followed by a wire-encoded chunk.Spec.
	MsgHello
	// MsgAccept is the server's ack of a MsgHello; the payload echoes
	// the accepted version and spec.
	MsgAccept
)

// ProtocolVersion is the revision of the wire protocol this package
// speaks; it rides in every Hello so mismatched peers fail with a
// typed error instead of a parse failure.
const ProtocolVersion byte = 2

// MaxFrame bounds a single frame payload; a peer announcing more is
// corrupt (or hostile) and the connection is dropped.
const MaxFrame = 16 << 20

// DefaultFrameSize is the data payload size clients cut streams into.
const DefaultFrameSize = 1 << 20

const headerSize = 5

// writeFrame emits one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return &FrameSizeError{Type: typ, Size: int64(len(payload)), Limit: MaxFrame}
	}
	var hdr [headerSize]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Skip the empty write: net.Pipe synchronizes even zero-length
		// writes with a reader, which would block a frame like End.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf for the payload when it is
// large enough. The returned slice aliases buf (or a fresh allocation)
// and is valid until the next call with the same buf. A clean
// connection close on a frame boundary returns bare io.EOF; every
// other failure comes back typed (FrameSizeError, TruncatedError).
func readFrame(r io.Reader, buf []byte) (byte, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, &TruncatedError{Context: "frame header", Cause: err}
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, &FrameSizeError{Type: hdr[0], Size: int64(n), Limit: MaxFrame}
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, &TruncatedError{
			Context: fmt.Sprintf("frame type %d payload (%d bytes)", hdr[0], n),
			Cause:   err,
		}
	}
	return hdr[0], buf, nil
}

// encodeHello builds a MsgHello/MsgAccept payload.
func encodeHello(version byte, spec chunk.Spec) []byte {
	return append([]byte{version}, chunk.EncodeSpec(spec)...)
}

// decodeHello parses a MsgHello/MsgAccept payload. The spec is
// validated, so an unknown algorithm id or inconsistent sizes surface
// here as the decode error.
func decodeHello(p []byte) (byte, chunk.Spec, error) {
	if len(p) < 1 {
		return 0, chunk.Spec{}, errors.New("ingest: empty hello payload")
	}
	spec, err := chunk.DecodeSpec(p[1:])
	if err != nil {
		return p[0], chunk.Spec{}, err
	}
	return p[0], spec, nil
}

// StreamStats summarizes one backed-up stream as seen by the server.
type StreamStats struct {
	// Bytes, Chunks, DupChunks and UniqueBytes describe this stream
	// alone: what arrived, how the pipeline cut it, and how much of it
	// was new to the store.
	Bytes       int64
	Chunks      int64
	DupChunks   int64
	UniqueBytes int64
	// Store is the aggregate statistics of the shared store at the
	// moment the stream completed (all sessions, all streams so far).
	Store dedup.Stats
}

// DedupRatio returns this stream's logical-over-unique factor, 0 when
// the stream stored nothing new (fully duplicate).
func (s StreamStats) DedupRatio() float64 {
	if s.UniqueBytes == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.UniqueBytes)
}

const statsWireSize = 9 * 8

// encode serializes the stats for a MsgStats payload.
func (s StreamStats) encode() []byte {
	out := make([]byte, statsWireSize)
	for i, v := range []int64{
		s.Bytes, s.Chunks, s.DupChunks, s.UniqueBytes,
		s.Store.LogicalBytes, s.Store.StoredBytes,
		s.Store.Chunks, s.Store.UniqueChunks, s.Store.IndexHits,
	} {
		binary.BigEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// decodeStreamStats parses a MsgStats payload.
func decodeStreamStats(p []byte) (StreamStats, error) {
	if len(p) != statsWireSize {
		return StreamStats{}, errors.New("ingest: malformed stats payload")
	}
	f := make([]int64, 9)
	for i := range f {
		f[i] = int64(binary.BigEndian.Uint64(p[i*8:]))
	}
	return StreamStats{
		Bytes: f[0], Chunks: f[1], DupChunks: f[2], UniqueBytes: f[3],
		Store: dedup.Stats{
			LogicalBytes: f[4], StoredBytes: f[5],
			Chunks: f[6], UniqueChunks: f[7], IndexHits: f[8],
		},
	}, nil
}
