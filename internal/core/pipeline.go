package core

import (
	"io"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/pcie"
	"shredder/internal/sim"
)

// limiter applies min/max chunk limits to an incoming ordered sequence
// of raw boundaries, emitting final chunks — the paper's Store-thread
// adjustment (§3.1), implemented incrementally so it works on unbounded
// streams. It produces exactly the same chunks as
// chunker.Chunker.ApplyLimits over the whole stream.
type limiter struct {
	min, max int64
	start    int64
	emit     func(chunk.Chunk) error
}

func newLimiter(p chunk.Spec, emit func(chunk.Chunk) error) *limiter {
	min := int64(p.MinSize)
	if min == 0 {
		min = 1
	}
	return &limiter{min: min, max: int64(p.MaxSize), emit: emit}
}

func (l *limiter) cut(end int64, fp uint64, forced bool) error {
	c := chunk.Chunk{Offset: l.start, Length: end - l.start, Fingerprint: fp, Forced: forced}
	l.start = end
	return l.emit(c)
}

// push consumes one raw boundary (global end-exclusive offset).
func (l *limiter) push(b int64, fp uint64) error {
	if l.max > 0 {
		for b-l.start > l.max {
			if err := l.cut(l.start+l.max, 0, true); err != nil {
				return err
			}
		}
	}
	if b-l.start >= l.min {
		return l.cut(b, fp, false)
	}
	return nil
}

// finish cuts the stream tail at the given total length.
func (l *limiter) finish(total int64) error {
	if l.max > 0 {
		for total-l.start > l.max {
			if err := l.cut(l.start+l.max, 0, true); err != nil {
				return err
			}
		}
	}
	if total > l.start {
		return l.cut(total, 0, true)
	}
	return nil
}

// bufferStats records one device buffer's worth of modeled work.
type bufferStats struct {
	bytes      int64
	boundaries int
	chunks     int
}

// ChunkBytes runs the pipeline over an in-memory stream. See
// ChunkReader.
func (s *Shredder) ChunkBytes(data []byte, emit chunk.EmitFunc) (*Report, error) {
	return s.ChunkReader(&sliceReader{data: data}, emit)
}

// ChunkReader streams r through the Shredder pipeline: the stream is
// cut into BufferSize buffers, each buffer is chunked by the engine —
// on the modeled GPU kernel for Rabin (functionally real, bit-identical
// to the sequential reference), on the host for other engines — limits
// are applied, and each final chunk is upcalled through emit together
// with its bytes (emit may be nil). The returned report carries the
// simulated pipeline timing.
func (s *Shredder) ChunkReader(r io.Reader, emit chunk.EmitFunc) (*Report, error) {
	if s.chk == nil {
		return s.hostChunkReader(r, emit)
	}
	return s.kernelChunkReader(r, emit)
}

// kernelChunkReader is the GPU path: raw boundaries from the kernel,
// min/max applied by the Store-thread limiter.
func (s *Shredder) kernelChunkReader(r io.Reader, emit chunk.EmitFunc) (*Report, error) {
	src := r
	kmode := s.cfg.Mode.KernelMode()
	win := s.cfg.Chunking.Window

	// pending holds stream bytes from the start of the currently open
	// chunk; pendingStart is the global offset of pending[0].
	var pending []byte
	var pendingStart int64
	keepPayload := emit != nil
	chunks := 0
	lim := newLimiter(s.cfg.Chunking, func(c chunk.Chunk) error {
		chunks++
		if !keepPayload {
			return nil
		}
		return emit(c, pending[c.Offset-pendingStart:c.End()-pendingStart])
	})

	// scanBuf layout: [carry (win-1 bytes)][payload (BufferSize)].
	scanBuf := make([]byte, 0, s.cfg.BufferSize+win-1)
	carry := 0 // valid carry bytes at the head of scanBuf

	var stats []bufferStats
	var total int64
	var conflicts uint64

	for {
		// Reader stage (functional): fill the payload region.
		scanBuf = scanBuf[:carry+s.cfg.BufferSize]
		n, err := io.ReadFull(src, scanBuf[carry:])
		scanBuf = scanBuf[:carry+n]
		if n > 0 {
			bufStart := total
			scanBase := bufStart - int64(carry)

			// Kernel stage (functional): raw boundaries over carry+payload.
			res, kerr := s.kernel.Run(scanBuf, kmode)
			if kerr != nil {
				return nil, kerr
			}
			conflicts += res.BankConflicts

			// Store stage (functional): keep payload for upcalls, apply
			// limits, emit chunks.
			if keepPayload {
				pending = append(pending, scanBuf[carry:]...)
			}
			st := bufferStats{bytes: int64(n)}
			before := chunks
			for i, b := range res.Boundaries {
				if b <= int64(carry) {
					continue // belongs to the previous buffer
				}
				st.boundaries++
				if perr := lim.push(scanBase+b, uint64(res.Fingerprints[i])); perr != nil {
					return nil, perr
				}
			}
			total += int64(n)
			st.chunks = chunks - before
			stats = append(stats, st)

			// Trim emitted bytes from pending.
			if keepPayload && lim.start > pendingStart {
				drop := lim.start - pendingStart
				pending = pending[:copy(pending, pending[drop:])]
				pendingStart = lim.start
			}

			// Maintain carry = last win-1 bytes of the stream so far.
			c := win - 1
			if int64(c) > total {
				c = int(total)
			}
			copy(scanBuf, scanBuf[len(scanBuf)-c:])
			carry = c
			scanBuf = scanBuf[:carry]
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := lim.finish(total); err != nil {
		return nil, err
	}
	// Account the tail cut to the final buffer's stats.
	attributeTail(stats, chunks)

	rep := s.simulate(stats)
	rep.Bytes = total
	rep.Chunks = chunks
	rep.BankConflicts = conflicts
	return rep, nil
}

// hostChunkReader is the CPU path for engines the GPU cannot offload:
// the engine's own incremental stream cuts final chunks directly (it
// applies its min/max itself), and the pipeline model charges the
// kernel stage at the host chunking rate.
func (s *Shredder) hostChunkReader(r io.Reader, emit chunk.EmitFunc) (*Report, error) {
	chunks := 0
	stm := s.eng.Stream(func(c chunk.Chunk, data []byte) error {
		chunks++
		if emit != nil {
			return emit(c, data)
		}
		return nil
	})

	buf := make([]byte, s.cfg.BufferSize)
	var stats []bufferStats
	var total int64
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			before := chunks
			if _, werr := stm.Write(buf[:n]); werr != nil {
				return nil, werr
			}
			total += int64(n)
			cut := chunks - before
			stats = append(stats, bufferStats{bytes: int64(n), boundaries: cut, chunks: cut})
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := stm.Close(); err != nil {
		return nil, err
	}
	attributeTail(stats, chunks)

	rep := s.simulate(stats)
	rep.Bytes = total
	rep.Chunks = chunks
	return rep, nil
}

// attributeTail accounts chunks cut after the last buffer was scanned
// (the stream-tail flush) to the final buffer's stats.
func attributeTail(stats []bufferStats, chunks int) {
	if len(stats) == 0 {
		return
	}
	counted := 0
	for _, st := range stats {
		counted += st.chunks
	}
	stats[len(stats)-1].chunks += chunks - counted
}

// sliceReader is a tiny io.Reader over a byte slice (avoids importing
// bytes just for Reader, and keeps ChunkBytes allocation-free).
type sliceReader struct {
	data []byte
	off  int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.off:])
	s.off += n
	return n, nil
}

// simulate replays the per-buffer work through the discrete-event
// pipeline model and returns the timing report.
func (s *Shredder) simulate(stats []bufferStats) *Report {
	rep := &Report{
		Mode:      s.cfg.Mode,
		Buffers:   len(stats),
		SetupTime: s.setup,
	}
	if len(stats) == 0 {
		return rep
	}

	var e sim.Engine
	reader := sim.NewResource(&e, "reader")
	store := sim.NewResource(&e, "store")
	// One PCIe slot and one kernel queue per device (§5.2: one or more
	// GPUs as co-processors); buffers round-robin across devices. The
	// host path keeps the same shape with a single "device" (the CPU
	// chunking stage) and no PCIe transfers.
	transfers := make([]*sim.Resource, s.devices)
	kernels := make([]*sim.Resource, s.devices)
	for d := 0; d < s.devices; d++ {
		transfers[d] = sim.NewResource(&e, "transfer")
		kernels[d] = sim.NewResource(&e, "kernel")
	}

	depth := s.cfg.PipelineDepth
	if s.cfg.Mode == Basic {
		depth = 1
	}
	tokens := sim.NewTokens(&e, depth)

	kind := s.cfg.Mode.BufferKind()
	kmode := s.cfg.Mode.KernelMode()
	hostPath := s.kernel == nil

	for i := range stats {
		st := stats[i]
		dev := i % s.devices
		readT := s.cfg.IO.ReadTime(st.bytes)
		var xferT, kernT time.Duration
		if hostPath {
			kernT = time.Duration(float64(st.bytes) / s.cfg.HostChunkBps * 1e9)
		} else {
			xferT = s.cfg.PCIe.TransferTime(st.bytes, pcie.HostToDevice, kind)
			if s.cfg.GPUDirect {
				// The SAN adapter DMAs straight into device memory; only a
				// doorbell write remains on the transfer path.
				xferT = time.Microsecond
			}
			kernT = s.kernel.EstimateTime(st.bytes, kmode)
		}
		storeT := s.storeTime(st, hostPath)
		tokens.Acquire(func() {
			reader.Submit(readT, func(_, _ sim.Time) {
				transfers[dev].Submit(xferT, func(_, _ sim.Time) {
					kernels[dev].Submit(kernT, func(_, _ sim.Time) {
						store.Submit(storeT, func(_, _ sim.Time) {
							tokens.Release()
						})
					})
				})
			})
		})
	}
	end := e.Run()
	rep.SimTime = end.Duration()
	if rep.SimTime > 0 {
		var bytes int64
		for _, st := range stats {
			bytes += st.bytes
		}
		rep.Throughput = float64(bytes) / rep.SimTime.Seconds()
	}
	rep.Stage = StageTimes{
		Reader: reader.BusyTotal(),
		Store:  store.BusyTotal(),
	}
	for d := 0; d < s.devices; d++ {
		rep.Stage.Transfer += transfers[d].BusyTotal()
		rep.Stage.Kernel += kernels[d].BusyTotal()
	}
	return rep
}

// storeTime models the Store thread's work for one buffer: the
// device-to-host DMA of the boundary array (GPU path only), the
// min/max adjustment and the per-chunk upcalls.
func (s *Shredder) storeTime(st bufferStats, hostPath bool) time.Duration {
	var d time.Duration
	if !hostPath {
		boundsBytes := int64(st.boundaries) * 8
		d = s.cfg.PCIe.TransferTime(boundsBytes, pcie.DeviceToHost, s.cfg.Mode.BufferKind())
	}
	d += time.Duration(float64(st.chunks) * s.cfg.UpcallNsPerChunk)
	return d
}
