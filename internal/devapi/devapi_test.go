package devapi

import (
	"testing"
	"time"

	"shredder/internal/chunker"
	"shredder/internal/gpu"
	"shredder/internal/pcie"
	"shredder/internal/sim"
)

func newCtx(t testing.TB) *Context {
	t.Helper()
	c, err := NewContext(gpu.C2050(), pcie.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewContextValidation(t *testing.T) {
	bad := gpu.C2050()
	bad.SMs = 0
	if _, err := NewContext(bad, pcie.Default()); err == nil {
		t.Fatal("expected error for bad spec")
	}
	link := pcie.Default()
	link.H2DBandwidth = 0
	if _, err := NewContext(gpu.C2050(), link); err == nil {
		t.Fatal("expected error for bad link")
	}
}

func TestStreamIsInOrder(t *testing.T) {
	ctx := newCtx(t)
	s := ctx.NewStream()
	// copy then kernel then copy-back: total = sum of the three.
	n := int64(32 << 20)
	h2d := pcie.Default().TransferTime(n, pcie.HostToDevice, pcie.Pinned)
	kern := 20 * time.Millisecond
	d2h := pcie.Default().TransferTime(1<<20, pcie.DeviceToHost, pcie.Pinned)
	s.MemcpyHostToDevice(n, pcie.Pinned)
	s.Launch(kern)
	s.MemcpyDeviceToHost(1<<20, pcie.Pinned)
	end := ctx.Synchronize()
	want := sim.Time(h2d + 25*time.Microsecond + kern + d2h)
	if end != want {
		t.Fatalf("in-order stream finished at %v, want %v", end, want)
	}
}

func TestTwoStreamsOverlap(t *testing.T) {
	// The §4.1.1 double-buffering pattern: two streams alternate copy
	// and kernel; copies hide behind kernels, so the makespan is about
	// first-copy + N·kernel.
	ctx := newCtx(t)
	s := []*Stream{ctx.NewStream(), ctx.NewStream()}
	n := int64(32 << 20)
	kern := 30 * time.Millisecond
	const buffers = 8
	for i := 0; i < buffers; i++ {
		st := s[i%2]
		st.MemcpyHostToDevice(n, pcie.Pinned)
		st.Launch(kern)
	}
	end := ctx.Synchronize()
	copyT := pcie.Default().TransferTime(n, pcie.HostToDevice, pcie.Pinned)
	lower := sim.Time(buffers * (kern + 25*time.Microsecond))
	upper := lower + sim.Time(2*copyT)
	if end < lower || end > upper {
		t.Fatalf("double-buffered makespan %v outside [%v, %v]", end, lower, upper)
	}
	// And it must beat the single-stream serialized version.
	serial := newCtx(t)
	ss := serial.NewStream()
	for i := 0; i < buffers; i++ {
		ss.MemcpyHostToDevice(n, pcie.Pinned)
		ss.Launch(kern)
	}
	if serialEnd := serial.Synchronize(); serialEnd <= end {
		t.Fatalf("serialized %v not slower than overlapped %v", serialEnd, end)
	}
}

func TestDMAEngineIsShared(t *testing.T) {
	// Two concurrent copies on different streams serialize on the one
	// DMA engine.
	ctx := newCtx(t)
	a, b := ctx.NewStream(), ctx.NewStream()
	n := int64(64 << 20)
	a.MemcpyHostToDevice(n, pcie.Pinned)
	b.MemcpyHostToDevice(n, pcie.Pinned)
	end := ctx.Synchronize()
	one := pcie.Default().TransferTime(n, pcie.HostToDevice, pcie.Pinned)
	if end < sim.Time(2*one) {
		t.Fatalf("two copies finished in %v, below 2x single copy %v", end, one)
	}
}

func TestEventCrossStreamDependency(t *testing.T) {
	ctx := newCtx(t)
	producer := ctx.NewStream()
	consumer := ctx.NewStream()
	producer.Launch(50 * time.Millisecond)
	ev := ctx.NewEvent()
	if err := producer.Record(ev); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Wait(ev); err != nil {
		t.Fatal(err)
	}
	consumer.Launch(10 * time.Millisecond)
	end := ctx.Synchronize()
	at, err := ev.CompletedAt()
	if err != nil {
		t.Fatal(err)
	}
	if at < sim.Time(50*time.Millisecond) {
		t.Fatalf("event completed at %v, before producer kernel", at)
	}
	if end < at+sim.Time(10*time.Millisecond) {
		t.Fatalf("consumer kernel did not wait: end %v, event %v", end, at)
	}
}

func TestEventErrors(t *testing.T) {
	ctx := newCtx(t)
	s := ctx.NewStream()
	ev := ctx.NewEvent()
	if err := s.Wait(ev); err == nil {
		t.Fatal("waiting on unrecorded event must fail")
	}
	if _, err := ev.CompletedAt(); err == nil {
		t.Fatal("CompletedAt on unrecorded event must fail")
	}
	if err := s.Record(ev); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(ev); err == nil {
		t.Fatal("double record must fail")
	}
}

func TestLaunchChunkingUsesKernelModel(t *testing.T) {
	ctx := newCtx(t)
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	k, err := gpu.NewKernel(gpu.DefaultKernelConfig(), chk)
	if err != nil {
		t.Fatal(err)
	}
	s := ctx.NewStream()
	n := int64(64 << 20)
	s.LaunchChunking(k, n, gpu.Coalesced)
	end := ctx.Synchronize()
	want := k.EstimateTime(n, gpu.Coalesced)
	if end < sim.Time(want) || end > sim.Time(want)+sim.Time(time.Millisecond) {
		t.Fatalf("chunking launch took %v, want ~%v", end, want)
	}
}

func TestBusyAccounting(t *testing.T) {
	ctx := newCtx(t)
	s := ctx.NewStream()
	s.MemcpyHostToDevice(32<<20, pcie.Pinned)
	s.Launch(10 * time.Millisecond)
	ctx.Synchronize()
	if ctx.DMABusy() <= 0 || ctx.DeviceBusy() <= 0 {
		t.Fatal("busy accounting empty")
	}
	if ctx.DeviceBusy() < 10*time.Millisecond {
		t.Fatalf("device busy %v below kernel time", ctx.DeviceBusy())
	}
}

func TestNegativeKernelPanics(t *testing.T) {
	ctx := newCtx(t)
	s := ctx.NewStream()
	defer func() {
		if recover() == nil {
			t.Fatal("negative kernel time did not panic")
		}
	}()
	s.Launch(-time.Millisecond)
}
