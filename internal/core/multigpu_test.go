package core

import (
	"testing"

	"shredder/internal/chunk"
)

func TestMultiGPUValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Devices = 9
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for 9 devices")
	}
	cfg = DefaultConfig()
	cfg.Devices = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for negative devices")
	}
	cfg = DefaultConfig()
	cfg.Mode = Basic
	cfg.GPUDirect = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for GPUDirect in basic mode")
	}
}

func TestMultiGPUFunctionalUnchanged(t *testing.T) {
	data := testData(30, 3<<20+7)
	collect := func(devices int) []chunk.Chunk {
		s := newShredder(t, func(c *Config) {
			c.Devices = devices
			c.PipelineDepth = 4 * devices
			c.RingRegions = 4 * devices
		})
		var got []chunk.Chunk
		if _, err := s.ChunkBytes(data, func(c chunk.Chunk, _ []byte) error {
			got = append(got, c)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	one := collect(1)
	two := collect(2)
	if len(one) != len(two) {
		t.Fatalf("device count changed chunking: %d vs %d chunks", len(one), len(two))
	}
	for i := range one {
		if one[i].Offset != two[i].Offset || one[i].Length != two[i].Length {
			t.Fatalf("chunk %d differs across device counts", i)
		}
	}
}

func TestMultiGPULiftsKernelBottleneck(t *testing.T) {
	// With the naive kernel (Streams mode) the GPU is the bottleneck —
	// at realistic buffer sizes, where per-thread substreams span many
	// DRAM rows and thrash the banks (tiny buffers stay row-local and
	// are reader-bound already). A second device should raise
	// throughput until the reader binds.
	data := testData(31, 64<<20)
	through := func(devices int) float64 {
		s := newShredder(t, func(c *Config) {
			c.BufferSize = 8 << 20
			c.Mode = Streams
			c.Devices = devices
			c.PipelineDepth = 4 * devices
			c.RingRegions = 4 * devices
		})
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Throughput
	}
	one := through(1)
	two := through(2)
	if two <= one*1.2 {
		t.Fatalf("second GPU raised naive-kernel throughput only %.2fx", two/one)
	}
	// Reader-bound ceiling: 2 GB/s SAN.
	four := through(4)
	if four > 2.3e9 {
		t.Fatalf("throughput %.2f GB/s exceeds the SAN reader", four/1e9)
	}
}

func TestMultiGPUDoesNotHelpWhenReaderBound(t *testing.T) {
	// With the coalesced kernel the pipeline is already reader-bound;
	// extra devices must not change throughput materially.
	data := testData(32, 16<<20)
	through := func(devices int) float64 {
		s := newShredder(t, func(c *Config) {
			c.Mode = StreamsCoalesced
			c.Devices = devices
			c.PipelineDepth = 4 * devices
			c.RingRegions = 4 * devices
		})
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Throughput
	}
	one := through(1)
	two := through(2)
	if two > one*1.15 {
		t.Fatalf("second GPU changed reader-bound throughput %.2fx", two/one)
	}
}

func TestGPUDirectRemovesTransfer(t *testing.T) {
	data := testData(33, 16<<20)
	run := func(direct bool) *Report {
		s := newShredder(t, func(c *Config) {
			c.Mode = StreamsCoalesced
			c.GPUDirect = direct
		})
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with := run(true)
	without := run(false)
	if with.Stage.Transfer >= without.Stage.Transfer/10 {
		t.Fatalf("GPUDirect left transfer busy %v (vs %v)", with.Stage.Transfer, without.Stage.Transfer)
	}
	if with.Throughput < without.Throughput {
		t.Fatal("GPUDirect lowered throughput")
	}
	if with.Chunks != without.Chunks {
		t.Fatal("GPUDirect changed functional results")
	}
}
