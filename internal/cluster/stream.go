package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"shredder/internal/dedup"
	"shredder/internal/ingest"
	"shredder/internal/obs"
)

// Per-node round batching on the locally chunked path, matching the
// single-node client's bounds: a round goes out once a node has this
// many fingerprints or this many held body bytes.
const (
	routeBatchChunks = 256
	routeBatchBytes  = 4 << 20
	// routeQueueDepth is the per-node backlog of dispatched rounds. Depth
	// 1 stalls the producer whenever a single node is mid-commit, which
	// forfeits the whole point of the fan-out: on durability-bound nodes
	// the WAL fsyncs only overlap if every node's queue stays stocked.
	// A few rounds of headroom (bounded by routeBatchBytes each) keep all
	// nodes busy while chunking continues.
	routeQueueDepth = 4
)

// nodeRound is one dispatched fingerprint round for a node worker.
type nodeRound struct {
	hs     []dedup.Hash
	bodies [][]byte
}

// streamNode is one node's share of an in-flight routed stream.
type streamNode struct {
	idx    int
	sess   *ingest.Session
	opened bool // BeginDedup sent

	// Locally chunked path: the pending batch and the worker feeding
	// rounds to the node concurrently with chunking (and with the
	// other nodes' rounds).
	hs     []dedup.Hash
	bodies [][]byte
	held   int64
	ch     chan nodeRound
	done   chan struct{}

	// stats is the node's commit reply.
	stats *ingest.StreamStats

	mu  sync.Mutex
	err error // first failure; the node drains afterwards
}

func (n *streamNode) fail(err error) {
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.mu.Unlock()
}

func (n *streamNode) failed() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Stream is one in-flight routed backup: chunks split by ring
// ownership into per-node v3 dedup sub-streams, all under the client's
// stream name, plus the manifest committed on the stream's home node
// at the end. Not safe for concurrent use — one goroutine drives a
// stream (the internal per-node fan-out is the concurrency).
//
// Two mutually exclusive feeding modes share the commit machinery:
//
//   - Add, for callers holding chunk bodies (RoutedSession.Backup, the
//     router's raw-protocol clients): rounds are batched per node and
//     shipped by per-node workers, so a slow node overlaps with
//     chunking and with its siblings.
//   - RoundHas/RoundBody, for the router's dedup-protocol clients,
//     where each round's bodies only arrive after the merged missing
//     set goes back to the client: fingerprints fan out to the owners
//     concurrently, the per-node answers merge into client batch
//     indices, and the client's bodies are then forwarded one by one.
type Stream struct {
	c    *Cluster
	name string
	sp   *obs.Span
	op   string // "backup" (Add) or "backup_dedup" (RoundHas)

	nodes  []*streamNode
	hashes []dedup.Hash // full stream order: the manifest

	// bodyOwners routes the bodies owed after a RoundHas answer, in
	// client batch-index order.
	bodyOwners []*streamNode

	ended bool
}

// NewStream opens a routed backup stream under name. parent, when
// valid, remote-parents the stream's span (a router passes the trace
// context from the client's BeginDedup).
func (c *Cluster) NewStream(name string, parent obs.SpanContext) (*Stream, error) {
	if reservedName(name) {
		return nil, ErrReservedName
	}
	st := &Stream{
		c:    c,
		name: name,
		sp:   c.span("route_backup", parent, obs.Str("recipe", name)),
		op:   "backup",
	}
	for i := 0; i < c.ring.Len(); i++ {
		st.nodes = append(st.nodes, &streamNode{idx: i})
	}
	return st, nil
}

// nodeErr wraps a node-level failure with its identity.
func (st *Stream) nodeErr(n *streamNode, err error) *NodeError {
	return &NodeError{Node: st.c.ring.Node(n.idx).ID, Op: st.op, Err: err}
}

// ensureOpen leases the node's session and opens the sub-stream.
func (st *Stream) ensureOpen(n *streamNode) error {
	if n.opened {
		return nil
	}
	sess, err := st.c.lease(n.idx)
	if err != nil {
		n.fail(err)
		return err
	}
	if err := sess.BeginDedup(st.name, st.sp.Context()); err != nil {
		st.c.pools[n.idx].Discard(sess)
		ne := st.nodeErr(n, err)
		n.fail(ne)
		return ne
	}
	n.sess = sess
	n.opened = true
	return nil
}

// worker ships one node's rounds. After a failure it keeps draining
// the channel (dropping rounds) so the producer never blocks.
func (st *Stream) worker(n *streamNode) {
	defer close(n.done)
	for r := range n.ch {
		if n.failed() != nil {
			continue
		}
		if st.ensureOpen(n) != nil {
			continue
		}
		t0 := time.Now()
		missing, err := n.sess.DedupRound(r.hs, r.bodies)
		st.c.met.round(n.idx, time.Since(t0))
		if err != nil {
			n.fail(st.nodeErr(n, err))
			continue
		}
		tx := int64(len(r.hs) * len(dedup.Hash{}))
		for _, i := range missing {
			tx += int64(len(r.bodies[i]))
		}
		st.c.met.nodeTraffic(n.idx, tx, 0)
	}
}

// Add routes one chunk: body must be owned by the stream (not aliased
// to a reused buffer) and hash to h. A non-nil error means some node
// already failed — the caller should stop feeding and Abort (Commit
// would surface the same error).
func (st *Stream) Add(h dedup.Hash, body []byte) error {
	st.hashes = append(st.hashes, h)
	n := st.nodes[st.c.ring.Owner(h)]
	n.hs = append(n.hs, h)
	n.bodies = append(n.bodies, body)
	n.held += int64(len(body))
	if len(n.hs) >= routeBatchChunks || n.held >= routeBatchBytes {
		return st.flushNode(n)
	}
	return nil
}

// flushNode hands the node's pending batch to its worker, starting the
// worker on first use. Returns the node's failure, if any, so the
// producer can stop early.
func (st *Stream) flushNode(n *streamNode) error {
	if len(n.hs) == 0 {
		return n.failed()
	}
	if n.ch == nil {
		n.ch = make(chan nodeRound, routeQueueDepth)
		n.done = make(chan struct{})
		go st.worker(n)
	}
	n.ch <- nodeRound{hs: n.hs, bodies: n.bodies}
	n.hs, n.bodies, n.held = nil, nil, 0
	return n.failed()
}

// RoundHas runs one client fingerprint round: the batch splits by
// ownership, the owners answer concurrently, and the merged result is
// the ascending client batch indices the cluster is missing. The
// caller owes exactly one RoundBody per returned index, in order,
// before the next RoundHas or Commit.
func (st *Stream) RoundHas(hs []dedup.Hash) ([]int, error) {
	if st.op == "backup" && len(st.hashes) > 0 {
		return nil, errors.New("cluster: RoundHas on a stream already fed with Add")
	}
	st.op = "backup_dedup"
	if len(st.bodyOwners) != 0 {
		return nil, fmt.Errorf("cluster: new round with %d bodies still owed", len(st.bodyOwners))
	}
	subIdx := make([][]int, len(st.nodes))
	subHs := make([][]dedup.Hash, len(st.nodes))
	var involved []*streamNode
	for i, h := range hs {
		o := st.c.ring.Owner(h)
		if subHs[o] == nil {
			involved = append(involved, st.nodes[o])
		}
		subHs[o] = append(subHs[o], h)
		subIdx[o] = append(subIdx[o], i)
	}
	st.hashes = append(st.hashes, hs...)
	missingByNode := make([][]int, len(st.nodes))
	var wg sync.WaitGroup
	for _, n := range involved {
		wg.Add(1)
		go func(n *streamNode) {
			defer wg.Done()
			if st.ensureOpen(n) != nil {
				return
			}
			t0 := time.Now()
			miss, err := n.sess.HasBatch(subHs[n.idx])
			st.c.met.round(n.idx, time.Since(t0))
			st.c.met.nodeTraffic(n.idx, int64(len(subHs[n.idx])*len(dedup.Hash{})), 0)
			if err != nil {
				n.fail(st.nodeErr(n, err))
				return
			}
			missingByNode[n.idx] = miss
		}(n)
	}
	wg.Wait()
	for _, n := range involved {
		if err := n.failed(); err != nil {
			return nil, err
		}
	}
	var missing []int
	for _, n := range involved {
		for _, mi := range missingByNode[n.idx] {
			missing = append(missing, subIdx[n.idx][mi])
		}
	}
	sort.Ints(missing)
	// Ascending client order filtered per node preserves each node's
	// own missing order, so forwarding bodies in this order satisfies
	// every owner.
	for _, ci := range missing {
		st.bodyOwners = append(st.bodyOwners, st.nodes[st.c.ring.Owner(hs[ci])])
	}
	return missing, nil
}

// RoundBody forwards the next owed body to its owner. The frame is
// queued unflushed — the owner's next round or commit flushes it, and
// the node does not answer bodies, so nothing stalls.
func (st *Stream) RoundBody(body []byte) error {
	if len(st.bodyOwners) == 0 {
		return errors.New("cluster: body arrived with none owed")
	}
	n := st.bodyOwners[0]
	st.bodyOwners = st.bodyOwners[1:]
	if err := n.failed(); err != nil {
		return err
	}
	if err := n.sess.WriteBody(body); err != nil {
		ne := st.nodeErr(n, err)
		n.fail(ne)
		return ne
	}
	st.c.met.nodeTraffic(n.idx, int64(len(body)), 0)
	return nil
}

// stopWorkers closes every worker channel and waits them out.
func (st *Stream) stopWorkers() {
	for _, n := range st.nodes {
		if n.ch != nil {
			close(n.ch)
			<-n.done
			n.ch = nil
		}
	}
}

// Abort abandons the stream: every leased node session is discarded,
// which the nodes observe as a dropped sub-stream and answer by
// releasing the references the stream pinned. Idempotent; safe after a
// failed Commit.
func (st *Stream) Abort() {
	st.stopWorkers()
	for _, n := range st.nodes {
		if n.sess != nil {
			st.c.pools[n.idx].Discard(n.sess)
			n.sess = nil
		}
	}
	if !st.ended {
		st.ended = true
		st.sp.Set(obs.Str("outcome", "aborted"))
		st.sp.End()
	}
}

// Commit finishes the stream: remaining rounds flush, every opened
// node commits its sub-stream (concurrently), stale sub-streams from a
// previous backup under the same name are cleared off the other nodes,
// and the manifest is committed on the home node last. The returned
// stats aggregate the nodes' — Bytes/Chunks/DupChunks are exact sums;
// Store sums the per-node store totals into a cluster-wide view.
//
// Failure semantics: any node failure before the commit point aborts
// everything (nodes release their pins). A failure *during* the commit
// fan-out best-effort deletes the sub-streams that did commit, so a
// half-committed stream does not pin chunks forever; without its
// manifest it was never restorable anyway.
func (st *Stream) Commit() (*ingest.StreamStats, error) {
	for _, n := range st.nodes {
		_ = st.flushNode(n) // node failures re-surface from the commit fan-out below
	}
	st.stopWorkers()
	if len(st.bodyOwners) != 0 {
		err := fmt.Errorf("cluster: commit with %d bodies still owed", len(st.bodyOwners))
		st.Abort()
		return nil, err
	}
	for _, n := range st.nodes {
		if err := n.failed(); err != nil {
			st.Abort()
			return nil, err
		}
	}

	// Commit every opened sub-stream concurrently: on fsync-bound
	// nodes the commit barriers overlap instead of queueing.
	var wg sync.WaitGroup
	for _, n := range st.nodes {
		if !n.opened {
			continue
		}
		wg.Add(1)
		go func(n *streamNode) {
			defer wg.Done()
			cs := st.sp.Child("node_commit", obs.Str("node", st.c.ring.Node(n.idx).ID))
			stats, err := n.sess.CommitDedup()
			cs.End()
			if err != nil {
				n.fail(st.nodeErr(n, err))
				return
			}
			n.stats = stats
		}(n)
	}
	wg.Wait()
	for _, n := range st.nodes {
		if err := n.failed(); err != nil {
			st.undoCommitted()
			st.Abort()
			return nil, err
		}
	}

	// A re-backup under an existing name may leave a node that owned
	// chunks last time with none this time: its stale sub-stream would
	// pin the old chunks until the next Delete. Clear them now. A
	// failure here is a bounded leak (Delete sweeps every node), not a
	// failed backup — the client's stream is fully committed.
	for _, n := range st.nodes {
		if n.opened {
			continue
		}
		sess, err := st.c.lease(n.idx)
		if err != nil {
			st.logStale(n, err)
			continue
		}
		if _, err := sess.Delete(st.name); err != nil && !errors.Is(err, ingest.ErrNotFound) {
			st.c.pools[n.idx].Discard(sess)
			st.logStale(n, err)
			continue
		}
		st.c.pools[n.idx].Put(sess)
	}

	// The manifest commits last: a stream exists for restore exactly
	// when its manifest does, so a crash anywhere above leaves only
	// node-local garbage (cleared by Delete), never a stream that
	// restores wrong.
	home := st.c.ring.OwnerName(st.name)
	hn := st.nodes[home]
	hsess := hn.sess
	if hsess == nil {
		var err error
		if hsess, err = st.c.lease(home); err != nil {
			st.undoCommitted()
			st.Abort()
			return nil, err
		}
		hn.sess = hsess // Abort/teardown now owns it
	}
	mdata := encodeManifest(st.hashes)
	ms := st.sp.Child("manifest", obs.Int("chunks", int64(len(st.hashes))))
	_, err := hsess.Backup(ManifestName(st.name), bytes.NewReader(mdata))
	ms.End()
	if err != nil {
		st.undoCommitted()
		st.Abort()
		return nil, &NodeError{Node: st.c.ring.Node(home).ID, Op: "manifest", Err: err}
	}
	st.c.met.nodeTraffic(home, int64(len(mdata)), 0)

	// Healthy end: every leased session is on a clean boundary.
	for _, n := range st.nodes {
		if n.sess != nil {
			st.c.pools[n.idx].Put(n.sess)
			n.sess = nil
		}
	}

	agg := &ingest.StreamStats{}
	for _, n := range st.nodes {
		if n.stats == nil {
			continue
		}
		agg.Bytes += n.stats.Bytes
		agg.Chunks += n.stats.Chunks
		agg.DupChunks += n.stats.DupChunks
		agg.UniqueBytes += n.stats.UniqueBytes
		agg.Wire.WireBytes += n.stats.Wire.WireBytes
		agg.Wire.ChunksSent += n.stats.Wire.ChunksSent
		agg.Wire.ChunksSkipped += n.stats.Wire.ChunksSkipped
		agg.Store.LogicalBytes += n.stats.Store.LogicalBytes
		agg.Store.StoredBytes += n.stats.Store.StoredBytes
		agg.Store.Chunks += n.stats.Store.Chunks
		agg.Store.UniqueChunks += n.stats.Store.UniqueChunks
		agg.Store.IndexHits += n.stats.Store.IndexHits
	}
	agg.Wire.LogicalBytes = agg.Bytes
	st.c.met.committed(agg.Bytes)
	st.c.met.stream(st.op)
	st.ended = true
	st.sp.Set(obs.Int("bytes", agg.Bytes), obs.Int("chunks", agg.Chunks),
		obs.Int("wire_bytes", agg.Wire.WireBytes))
	st.sp.End()
	return agg, nil
}

// undoCommitted best-effort deletes sub-streams whose node commit
// succeeded while a sibling's failed, so the half-stream's pins do not
// outlive the failed backup.
func (st *Stream) undoCommitted() {
	for _, n := range st.nodes {
		if n.stats == nil || n.sess == nil {
			continue
		}
		_, _ = n.sess.Delete(st.name)
	}
}

func (st *Stream) logStale(n *streamNode, err error) {
	if st.c.log != nil {
		st.c.log.Warn("stale sub-stream cleanup failed (will be swept by delete)",
			"recipe", st.name, "node", st.c.ring.Node(n.idx).ID, "err", err)
	}
}
