package chunk

import (
	"bytes"
	"testing"

	"shredder/internal/chunker"
)

// testSpecs are the configurations the differential tests sweep: both
// algorithms, with and without size limits, different targets.
func testSpecs() map[string]Spec {
	limited := DefaultSpec()
	limited.MaskBits = 12
	limited.Marker = 1<<12 - 1
	limited.MinSize = 2 << 10
	limited.MaxSize = 32 << 10
	smallCDC := FastCDCSpec(1 << 10)
	bigCDC := FastCDCSpec(64 << 10)
	bigCDC.Normalization = 1
	return map[string]Spec{
		"rabin-default":   DefaultSpec(),
		"rabin-limited":   limited,
		"fastcdc-4k":      FastCDCSpec(4 << 10),
		"fastcdc-1k":      smallCDC,
		"fastcdc-64k-nc1": bigCDC,
	}
}

// TestSplitEqualsStreaming is the core engine contract, mirroring
// core/spanning_test.go at the engine layer: Split over a whole buffer
// and an incremental Stream fed arbitrary write sizes — including
// writes far smaller and far larger than a chunk, so chunks span many
// feeds — must cut identical chunks.
func TestSplitEqualsStreaming(t *testing.T) {
	data := randomData(20, 1<<20+12345)
	feeds := []int{1, 7, 100, 4096, 64 << 10, 1 << 20, len(data) + 1}
	for name, spec := range testSpecs() {
		t.Run(name, func(t *testing.T) {
			e, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			want := e.Split(data)
			var whole []byte
			for _, c := range want {
				whole = append(whole, data[c.Offset:c.End()]...)
			}
			if !bytes.Equal(whole, data) {
				t.Fatal("Split chunks do not tile the input")
			}
			for _, feed := range feeds {
				var got []Chunk
				s := e.Stream(func(c Chunk, payload []byte) error {
					got = append(got, c)
					if !bytes.Equal(payload, data[c.Offset:c.End()]) {
						t.Fatalf("feed %d: payload mismatch at offset %d", feed, c.Offset)
					}
					return nil
				})
				for i := 0; i < len(data); i += feed {
					end := i + feed
					if end > len(data) {
						end = len(data)
					}
					if _, err := s.Write(data[i:end]); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				if s.Offset() != int64(len(data)) {
					t.Fatalf("feed %d: stream offset %d, want %d", feed, s.Offset(), len(data))
				}
				if len(got) != len(want) {
					t.Fatalf("feed %d: %d chunks, want %d", feed, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("feed %d chunk %d: %+v != %+v", feed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestRabinEngineMatchesReference: the adapter must cut exactly what
// the sequential chunker package cuts — the byte-for-byte compatibility
// the legacy ingest path depends on.
func TestRabinEngineMatchesReference(t *testing.T) {
	for _, name := range []string{"rabin-default", "rabin-limited"} {
		spec := testSpecs()[name]
		e, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := chunker.New(spec.RabinParams())
		if err != nil {
			t.Fatal(err)
		}
		data := randomData(21, 2<<20+777)
		got := e.Split(data)
		want := ref.Split(data)
		if len(got) != len(want) {
			t.Fatalf("%s: %d chunks, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length ||
				got[i].Fingerprint != uint64(want[i].Cut) || got[i].Forced != want[i].Forced {
				t.Fatalf("%s chunk %d: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestEnginesDisagree is the sanity check that the two algorithms are
// actually different: identical input, different boundaries.
func TestEnginesDisagree(t *testing.T) {
	data := randomData(22, 1<<20)
	r, _ := New(testSpecs()["rabin-limited"])
	f, _ := New(FastCDCSpec(4 << 10))
	a, b := r.Split(data), f.Split(data)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Length != b[i].Length {
				same = false
				break
			}
		}
		if same {
			t.Fatal("rabin and fastcdc cut identical boundaries; one is masquerading as the other")
		}
	}
}

// TestSplitReader drives the helper over both engines.
func TestSplitReader(t *testing.T) {
	data := randomData(23, 512<<10)
	for name, spec := range testSpecs() {
		e, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		chunks, n, err := SplitReader(e, bytes.NewReader(data), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != int64(len(data)) {
			t.Fatalf("%s: read %d bytes, want %d", name, n, len(data))
		}
		want := e.Split(data)
		if len(chunks) != len(want) {
			t.Fatalf("%s: %d chunks, want %d", name, len(chunks), len(want))
		}
	}
}
