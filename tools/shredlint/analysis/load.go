package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The loader typechecks packages from source using only `go list`
// metadata and the standard library's go/parser + go/types. This works
// in a hermetic environment (no module proxy, no export-data tooling):
// `go list -deps -json` names every file of every package in the
// dependency closure, and the closure is typechecked bottom-up with an
// importer that resolves each import to the already-checked package.

// Package is one loaded, typechecked package.
type Package struct {
	Path string
	Fset *token.FileSet
	// Syntax is the typechecked non-test syntax; TestSyntax is the
	// package's _test.go files (in-package and external), parsed only.
	Syntax     []*ast.File
	TestSyntax []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the slice of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
}

// sharedFset is the process-wide FileSet: every parsed file (analyzed
// packages, stdlib dependencies, testdata) lands in one set so cached
// *types.Package objects keep valid positions across loads.
var sharedFset = token.NewFileSet()

var (
	stdMu sync.Mutex
	// stdMeta caches `go list` metadata and stdChecked the typechecked
	// packages, so repeated testdata loads pay for the stdlib once.
	stdMeta    = map[string]*listPkg{}
	stdChecked = map[string]*types.Package{}
)

// goList runs `go list -deps -json` on the given patterns in dir.
func goList(dir string, patterns []string) (map[string]*listPkg, []string, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Name,Dir,GoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	pkgs := map[string]*listPkg{}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, nil, fmt.Errorf("go list decode: %w", err)
		}
		pkgs[p.ImportPath] = p
		order = append(order, p.ImportPath)
	}
	return pkgs, order, nil
}

func parseDirFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checker typechecks one `go list` closure bottom-up.
type checker struct {
	meta    map[string]*listPkg
	checked map[string]*types.Package
	// strict import paths fail loudly; dependency-only packages
	// tolerate typecheck noise (they are context, not the subject).
	strict map[string]bool
	// localFiles holds pre-parsed testdata helper packages (path ->
	// syntax), resolved before the go list metadata; localChecked
	// caches them per load so helper packages from different suites
	// never collide in the shared stdlib cache.
	localFiles   map[string][]*ast.File
	localChecked map[string]*types.Package
}

func (c *checker) Import(path string) (*types.Package, error) {
	return c.check(path)
}

func (c *checker) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if c.localFiles != nil {
		if tp, ok := c.localChecked[path]; ok {
			return tp, nil
		}
		if files, ok := c.localFiles[path]; ok {
			conf := types.Config{Importer: c, FakeImportC: true}
			conf.Error = func(error) {}
			tp, _ := conf.Check(path, sharedFset, files, nil)
			c.localChecked[path] = tp
			return tp, nil
		}
	}
	if tp, ok := c.checked[path]; ok {
		return tp, nil
	}
	lp := c.meta[path]
	if lp == nil {
		// GOROOT-vendored dependencies (net → golang.org/x/net/...)
		// are listed under the vendor/ prefix but imported without it.
		lp = c.meta["vendor/"+path]
	}
	if lp == nil {
		return nil, fmt.Errorf("shredlint: no metadata for import %q", path)
	}
	tp, _, _, err := c.checkFiles(path, lp, false)
	return tp, err
}

func (c *checker) checkFiles(path string, lp *listPkg, wantInfo bool) (*types.Package, *types.Info, []*ast.File, error) {
	files, err := parseDirFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, nil, nil, err
	}
	var info *types.Info
	if wantInfo {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	conf := types.Config{Importer: c, FakeImportC: true}
	var firstErr error
	if !c.strict[path] {
		conf.Error = func(error) {} // tolerate noise in dependencies
	} else {
		conf.Error = func(e error) {
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	tp, _ := conf.Check(lp.ImportPath, sharedFset, files, info)
	c.checked[path] = tp
	if firstErr != nil {
		return tp, info, files, fmt.Errorf("typecheck %s: %w", path, firstErr)
	}
	return tp, info, files, nil
}

// Load typechecks the packages matched by patterns (go list syntax,
// e.g. "./...") in the module rooted at dir, plus their dependency
// closure, and returns the matched packages ready for analysis.
func Load(dir string, patterns []string) ([]*Package, error) {
	meta, order, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	c := &checker{meta: meta, checked: map[string]*types.Package{}, strict: map[string]bool{}}
	// Seed and feed the shared stdlib cache: testdata loads reuse what
	// module loads already checked, and vice versa.
	for path, lp := range meta {
		if lp.Standard {
			if tp, ok := stdChecked[path]; ok {
				c.checked[path] = tp
			}
			if _, ok := stdMeta[path]; !ok {
				stdMeta[path] = lp
			}
		}
	}
	var out []*Package
	for _, path := range order {
		lp := meta[path]
		if lp.DepOnly || lp.Standard {
			continue
		}
		c.strict[path] = true
		tp, info, syntax, err := c.checkFiles(path, lp, true)
		if err != nil {
			return nil, err
		}
		testSyntax, err := parseDirFiles(lp.Dir, append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...))
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path:       path,
			Fset:       sharedFset,
			Syntax:     syntax,
			TestSyntax: testSyntax,
			Types:      tp,
			TypesInfo:  info,
		})
	}
	for path, tp := range c.checked {
		if lp := c.meta[path]; lp != nil && lp.Standard {
			stdChecked[path] = tp
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadTestData typechecks srcRoot/pkgpath as one package for an
// analysistest suite. Imports resolve to the standard library or to
// sibling directories under srcRoot (mirroring analysistest's GOPATH
// layout, so testdata can model cross-package conventions); _test.go
// files in the directory are parsed into TestSyntax, exactly as Load
// does for real packages.
func LoadTestData(srcRoot, pkgpath string) (*Package, error) {
	dir := filepath.Join(srcRoot, pkgpath)
	files, testFiles, err := parseTestDataDir(dir)
	if err != nil {
		return nil, err
	}
	// Resolve the import closure: directories under srcRoot are local
	// helper packages, everything else must be standard library.
	localFiles := map[string][]*ast.File{}
	var std []string
	visited := map[string]bool{pkgpath: true}
	queue := collectImports(append(append([]*ast.File{}, files...), testFiles...))
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if visited[p] {
			continue
		}
		visited[p] = true
		ldir := filepath.Join(srcRoot, p)
		if fi, statErr := os.Stat(ldir); statErr == nil && fi.IsDir() {
			lfiles, _, perr := parseTestDataDir(ldir)
			if perr != nil {
				return nil, perr
			}
			localFiles[p] = lfiles
			queue = append(queue, collectImports(lfiles)...)
		} else {
			std = append(std, p)
		}
	}
	if err := ensureStdMeta(dir, std); err != nil {
		return nil, err
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	c := &checker{
		meta: stdMeta, checked: stdChecked, strict: map[string]bool{},
		localFiles: localFiles, localChecked: map[string]*types.Package{},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: c, FakeImportC: true}
	var firstErr error
	conf.Error = func(e error) {
		if firstErr == nil {
			firstErr = e
		}
	}
	path := filepath.Base(dir)
	tp, _ := conf.Check(path, sharedFset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck testdata %s: %w", dir, firstErr)
	}
	return &Package{
		Path:       path,
		Fset:       sharedFset,
		Syntax:     files,
		TestSyntax: testFiles,
		Types:      tp,
		TypesInfo:  info,
	}, nil
}

// parseTestDataDir parses a testdata package directory, splitting
// _test.go files from the rest.
func parseTestDataDir(dir string) (files, testFiles []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var srcNames, testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
		} else {
			srcNames = append(srcNames, name)
		}
	}
	sort.Strings(srcNames)
	sort.Strings(testNames)
	if files, err = parseDirFiles(dir, srcNames); err != nil {
		return nil, nil, err
	}
	if testFiles, err = parseDirFiles(dir, testNames); err != nil {
		return nil, nil, err
	}
	return files, testFiles, nil
}

// collectImports gathers the distinct import paths of the files.
func collectImports(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ensureStdMeta fills the stdlib metadata cache for the given import
// paths (and their dependency closures) with one `go list` run.
func ensureStdMeta(dir string, paths []string) error {
	stdMu.Lock()
	var missing []string
	for _, p := range paths {
		if p == "unsafe" {
			continue
		}
		if _, ok := stdMeta[p]; !ok {
			missing = append(missing, p)
		}
	}
	stdMu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	meta, _, err := goList(dir, missing)
	if err != nil {
		return err
	}
	stdMu.Lock()
	for path, lp := range meta {
		if _, ok := stdMeta[path]; !ok {
			stdMeta[path] = lp
		}
	}
	stdMu.Unlock()
	return nil
}
