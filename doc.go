// Package shredder is a Go reproduction of "Shredder: GPU-Accelerated
// Incremental Storage and Computation" (Bhatotia, Rodrigues & Verma,
// FAST 2012): a high-throughput content-based chunking framework for
// incremental storage and computation systems.
//
// The implementation lives under internal/:
//
//   - internal/rabin, internal/chunker — Rabin fingerprinting and the
//     sequential content-defined chunking reference
//   - internal/chunk — the algorithm-agnostic chunking-engine API: a
//     serializable, wire-encodable Spec (algorithm + parameters), an
//     Engine interface with whole-buffer Split and an incremental
//     streaming feed, a Rabin adapter over internal/chunker, and a
//     FastCDC engine (gear hashing, normalized chunking); engines are
//     differentially tested for Split/stream agreement
//   - internal/gpu, internal/pcie, internal/hostmem, internal/host,
//     internal/sim — the simulated device/host substrate (this machine
//     has no GPU; see DESIGN.md for the substitution argument)
//   - internal/core — the Shredder pipeline itself; with HostWorkers
//     set it chunks on many cores via chunk.Parallel (region scans
//     with window warmup, seam fixup, byte-identical output — the
//     paper's multicore baseline, lifted onto the engine API)
//   - internal/dedup — the single-goroutine reference dedup store
//   - internal/shardstore — the sharded, lock-striped, concurrency-safe
//     chunk store (byte-identical ingest semantics to internal/dedup,
//     asserted differentially), with a pluggable backing: in-memory by
//     default, durable via internal/persist. Fully content-addressed:
//     recipes are fingerprint lists resolved through the index at
//     restore time, DeleteRecipe releases a recipe's references (and
//     drops zero-refcount chunks), and Compact rewrites mostly-dead
//     containers so reclaimed bytes actually return to the OS
//   - internal/persist — the durable backing: per-shard append-only
//     container files plus a length+CRC-framed write-ahead log
//     (inserts, refcount deltas, compaction relocations), a recipe
//     journal with tombstones and self-compaction, configurable fsync
//     policy, and crash-recoverable replay that tolerates a torn
//     final record. Deletion and compaction are exactly as crash-safe
//     as ingest: tombstone before release, moved copies before the
//     WAL checkpoint, checkpoint (atomic rename) before unlink — a
//     battery of byte-granular truncation tests pins each window
//   - internal/ingest — the streaming ingest service layer: a
//     length-prefixed binary protocol over net.Conn with per-session
//     negotiation of protocol version and chunking engine
//     (Hello/Accept frames carrying a chunk.Spec; non-negotiating
//     legacy clients keep the Rabin defaults byte-for-byte), typed
//     protocol errors, a server that chunks raw client streams with
//     the core pipeline and dedups them in batches against one shared
//     shardstore, and the matching client Session. Protocol version 3
//     adds two-phase content-addressed ingest — the client chunks
//     locally, ships HasBatch fingerprint frames, and uploads only
//     the bodies the server's NeedBatch answer reports missing, the
//     server pinning every skipped chunk's refcount under the shard
//     lock inside the lookup — with per-stream WireStats measuring
//     the bytes the backup-site link was spared
//   - internal/cluster — multi-node scale-out over the unchanged wire
//     protocol: a consistent-hash ring (virtual nodes over a 64-bit
//     key space; a chunk's fingerprint prefix is its ring key, so
//     placement needs no extra hashing) assigns every chunk to an
//     owner node, and a routed stream becomes one v3 dedup sub-stream
//     per owner — fanned out concurrently — plus a fingerprint
//     manifest committed last on the stream's name-hash home node
//     (under the reserved ".cluster/" namespace). Restores
//     re-interleave per-owner streams in manifest order, verifying
//     each chunk's fingerprint; deletes fan out as node-owned
//     refcount decrements, so single-node GC is untouched. Router,
//     pooled per-node sessions with dial retry, per-node metrics and
//     remote-parented spans included
//   - internal/hdfs, internal/mapreduce, internal/backup — the two
//     case studies (Inc-HDFS + Incoop, cloud backup); backup.Service
//     runs the multi-VM experiment through the service path
//   - internal/experiments — regenerates every table and figure
//
// The cmd/shredderd binary serves the ingest protocol over TCP (with
// -data it is durable and restartable; SIGTERM drains and flushes;
// -dedup-wire=false caps sessions at protocol v2; -gc-interval/
// -gc-threshold run background container compaction for retention
// churn) and cmd/backupsim -server is its client (-data instead runs
// the restart round-trip locally; -dedup-wire switches either mode to
// client-side matching; -wire-bench emits the raw-vs-dedup transfer
// matrix as JSON; -retention runs the expire-oldest/compact scenario
// and enforces the 1.5x space-amplification bound; -cluster N boots
// an in-process routed cluster and -cluster-bench measures 1-vs-N-node
// aggregate ingest). cmd/shredrouter serves the same client protocol
// in front of a static N-node topology, routing streams by chunk
// ownership on the internal/cluster ring.
//
// The store's invariants are enforced mechanically: tools/shredlint
// (its own dependency-free module) is a custom static-analysis suite
// — durability ordering, stripe-lock discipline, nil-tolerant
// instrumentation, wire-codec symmetry, error hygiene — that CI runs
// as a hard gate alongside build and test; see tools/shredlint/README
// for the rules and the //lint:allow suppression syntax. The
// benchmarks in bench_test.go
// wrap internal/experiments so that `go test -bench=.` reproduces the
// paper's entire evaluation; the cmd/shredbench binary prints the same
// tables interactively.
package shredder
