package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// Router serves the ingest wire protocol (v1–v4, unchanged) in front
// of a Cluster: ordinary ingest.Session clients connect to it exactly
// as they would to a single shredderd, and every stream is split by
// chunk ownership and fanned out behind their back. cmd/shredrouter
// wraps it in a daemon.
type Router struct {
	c        *Cluster
	maxProto byte
	log      *slog.Logger
	seq      atomic.Int64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewRouter builds a router over the cluster. maxProto caps the
// protocol version offered to clients (0: ProtocolVersion).
func NewRouter(c *Cluster, maxProto byte) *Router {
	return &Router{
		c:        c,
		maxProto: maxProto,
		log:      c.log,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Serve accepts client sessions until the listener closes.
func (r *Router) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		r.track(conn)
		go func() {
			defer r.untrack(conn)
			_ = r.ServeConn(conn)
		}()
	}
}

func (r *Router) track(conn net.Conn) {
	r.wg.Add(1)
	r.connMu.Lock()
	r.conns[conn] = struct{}{}
	r.connMu.Unlock()
}

func (r *Router) untrack(conn net.Conn) {
	_ = conn.Close()
	r.connMu.Lock()
	delete(r.conns, conn)
	r.connMu.Unlock()
	r.wg.Done()
}

// Shutdown drains the sessions Serve spawned: it waits up to grace for
// them to finish, then severs the stragglers. Close the listener
// first so no new sessions arrive.
func (r *Router) Shutdown(grace time.Duration) {
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
	r.connMu.Lock()
	for conn := range r.conns {
		_ = conn.Close()
	}
	r.connMu.Unlock()
	<-done
}

// ServeConn runs one client session to completion.
func (r *Router) ServeConn(conn net.Conn) error {
	r.c.met.sessionStart()
	var sl *slog.Logger
	if r.log != nil {
		sl = r.log.With("session", r.seq.Add(1))
		remote := "?"
		if addr := conn.RemoteAddr(); addr != nil {
			remote = addr.String()
		}
		sl.Debug("session accepted", "remote", remote)
	}
	ver, err := r.serveSession(conn, sl)
	r.c.met.sessionEnd(ver)
	if sl != nil {
		proto := int(ver)
		if proto == 0 {
			proto = 1
		}
		if err != nil {
			sl.Warn("session failed", "protocol", proto, "err", err)
		} else {
			sl.Debug("session closed", "protocol", proto)
		}
	}
	return err
}

// serveSession is the client-facing frame loop, mirroring the
// single-node server's state machine.
func (r *Router) serveSession(conn net.Conn, sl *slog.Logger) (byte, error) {
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 256<<10)
	var buf []byte
	var ver byte // negotiated protocol version; 0 = legacy raw session
	eng := r.c.eng
	for {
		typ, payload, rerr := ingest.ReadFrame(br, buf)
		if rerr == io.EOF {
			return ver, nil
		}
		if rerr != nil {
			return ver, rerr
		}
		r.c.met.frame()
		buf = payload[:cap(payload)]
		switch typ {
		case ingest.MsgHello:
			neng, nver, ctx, nerr := r.negotiate(payload)
			if nerr != nil {
				reason := nerr.Error()
				var ne *ingest.NegotiationError
				if errors.As(nerr, &ne) {
					reason = ne.Reason
				}
				_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(reason))
				_ = bw.Flush()
				return ver, nerr
			}
			eng, ver = neng, nver
			sp := r.c.span("negotiate", ctx, obs.Int("protocol", int64(ver)))
			if sl != nil {
				spec := eng.Spec()
				sl.Debug("session negotiated", "protocol", ver,
					"algo", spec.Algo, "min", spec.MinSize, "max", spec.MaxSize)
			}
			err := ingest.WriteFrame(bw, ingest.MsgAccept, ingest.EncodeHello(ver, eng.Spec()))
			if err == nil {
				err = bw.Flush()
			}
			sp.End()
			if err != nil {
				return ver, err
			}
		case ingest.MsgBegin:
			if err := r.handleRawBackup(string(payload), ver, eng, br, bw, sl); err != nil {
				return ver, err
			}
		case ingest.MsgBeginDedup:
			if ver < 3 {
				ferr := &ingest.UnexpectedFrameError{Type: typ, Context: "session below protocol version 3"}
				_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(ferr.Error()))
				_ = bw.Flush()
				return ver, ferr
			}
			name, ctx, derr := ingest.DecodeBeginDedup(ver, payload)
			if derr != nil {
				_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(derr.Error()))
				_ = bw.Flush()
				return ver, derr
			}
			if err := r.handleDedup(name, ver, ctx, br, bw, sl); err != nil {
				return ver, err
			}
		case ingest.MsgDelete:
			if ver < 3 {
				ferr := &ingest.UnexpectedFrameError{Type: typ, Context: "session below protocol version 3"}
				_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(ferr.Error()))
				_ = bw.Flush()
				return ver, ferr
			}
			if err := r.handleDelete(string(payload), bw); err != nil {
				return ver, err
			}
		case ingest.MsgRestore:
			if err := r.handleRestore(string(payload), bw); err != nil {
				return ver, err
			}
		default:
			ferr := &ingest.UnexpectedFrameError{Type: typ, Context: "session"}
			_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(ferr.Error()))
			_ = bw.Flush()
			return ver, ferr
		}
	}
}

// negotiate validates a client Hello against the router's constraints.
// On top of the single-node rules, every accepted spec must bound
// chunks within one frame: the routed restore path re-interleaves
// node streams at frame granularity.
func (r *Router) negotiate(payload []byte) (chunk.Engine, byte, obs.SpanContext, error) {
	version, spec, ctx, err := ingest.DecodeHello(payload)
	if err != nil {
		return nil, 0, ctx, &ingest.NegotiationError{Reason: err.Error()}
	}
	max := r.maxProto
	if max == 0 {
		max = ingest.ProtocolVersion
	}
	if version < ingest.MinProtocolVersion || version > max {
		return nil, 0, ctx, &ingest.NegotiationError{
			Reason: fmt.Sprintf("unsupported protocol version %d (router speaks %d)", version, max),
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, 0, ctx, &ingest.NegotiationError{Reason: err.Error()}
	}
	if spec.MaxSize <= 0 || spec.MaxSize > ingest.DefaultFrameSize {
		return nil, 0, ctx, &ingest.NegotiationError{
			Reason: fmt.Sprintf("clustered sessions need a max chunk size in (0, %d] (the router restores across nodes at frame granularity)", ingest.DefaultFrameSize),
		}
	}
	eng, err := chunk.New(spec)
	if err != nil {
		return nil, 0, ctx, &ingest.NegotiationError{Reason: err.Error()}
	}
	return eng, version, ctx, nil
}

// handleRawBackup serves a raw (v1/v2-style) backup: the router chunks
// the stream itself and routes the chunks. Mirrors the single-node
// server: failures send an Error frame and end the session.
func (r *Router) handleRawBackup(name string, ver byte, eng chunk.Engine, br *bufio.Reader, bw *bufio.Writer, sl *slog.Logger) error {
	abort := func(err error) error {
		_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(err.Error()))
		_ = bw.Flush()
		return err
	}
	st, err := r.c.NewStream(name, obs.SpanContext{})
	if err != nil {
		return abort(err)
	}
	sink := eng.Stream(func(c chunk.Chunk, data []byte) error {
		return st.Add(dedup.Sum(data), append([]byte(nil), data...))
	})
	var buf []byte
	for {
		typ, payload, rerr := ingest.ReadFrame(br, buf)
		if rerr != nil {
			if rerr == io.EOF {
				rerr = io.ErrUnexpectedEOF
			}
			st.Abort()
			return rerr
		}
		r.c.met.frame()
		buf = payload[:cap(payload)]
		if typ == ingest.MsgEnd {
			break
		}
		if typ != ingest.MsgData {
			st.Abort()
			return abort(&ingest.UnexpectedFrameError{Type: typ, Context: "backup stream"})
		}
		if _, err := sink.Write(payload); err != nil {
			st.Abort()
			return abort(err)
		}
	}
	if err := sink.Close(); err != nil {
		st.Abort()
		return abort(err)
	}
	stats, err := st.Commit()
	if err != nil {
		return abort(err)
	}
	if sl != nil {
		sl.Info("stream committed", "recipe", name, "bytes", stats.Bytes,
			"chunks", stats.Chunks, "nodes", r.c.ring.Len())
	}
	if err := ingest.WriteFrame(bw, ingest.MsgStats, ingest.EncodeStreamStats(*stats, ver)); err != nil {
		return err
	}
	return bw.Flush()
}

// handleDedup serves a dedup-protocol client: each fingerprint round
// splits by ownership and fans out, the merged missing set goes back,
// and the client's bodies forward straight to their owners. Node
// failures put the round loop into drain mode (answer need-nothing,
// fail at Commit) exactly like the single-node server's application
// errors, so the client's protocol state machine never desyncs.
func (r *Router) handleDedup(name string, ver byte, ctx obs.SpanContext, br *bufio.Reader, bw *bufio.Writer, sl *slog.Logger) error {
	abort := func(err error) error {
		_ = ingest.WriteFrame(bw, ingest.MsgError, []byte(err.Error()))
		_ = bw.Flush()
		return err
	}
	st, err := r.c.NewStream(name, ctx)
	if err != nil {
		return abort(err)
	}
	var appErr error // first routing failure; drain afterwards
	var buf []byte
	for {
		typ, payload, rerr := ingest.ReadFrame(br, buf)
		if rerr != nil {
			if rerr == io.EOF {
				rerr = io.ErrUnexpectedEOF
			}
			st.Abort()
			return rerr
		}
		r.c.met.frame()
		buf = payload[:cap(payload)]
		switch typ {
		case ingest.MsgHasBatch:
			hs, err := ingest.DecodeHasBatchPayload(payload)
			if err != nil {
				st.Abort()
				return abort(err)
			}
			var missing []int
			if appErr == nil {
				if missing, err = st.RoundHas(hs); err != nil {
					appErr = err
				}
			}
			if err := ingest.WriteFrame(bw, ingest.MsgNeedBatch, ingest.EncodeNeedBatch(missing)); err != nil {
				st.Abort()
				return err
			}
			if err := bw.Flush(); err != nil {
				st.Abort()
				return err
			}
			for range missing {
				btyp, body, berr := ingest.ReadFrame(br, buf)
				if berr != nil {
					if berr == io.EOF {
						berr = io.ErrUnexpectedEOF
					}
					st.Abort()
					return berr
				}
				r.c.met.frame()
				buf = body[:cap(body)]
				if btyp != ingest.MsgData {
					st.Abort()
					return abort(&ingest.UnexpectedFrameError{Type: btyp, Context: "dedup body upload"})
				}
				if appErr == nil {
					if err := st.RoundBody(body); err != nil {
						appErr = err
					}
				}
			}
		case ingest.MsgCommit:
			var stats *ingest.StreamStats
			if appErr == nil {
				stats, appErr = st.Commit()
			}
			if appErr != nil {
				st.Abort()
				return abort(appErr)
			}
			if sl != nil {
				sl.Info("stream committed", "recipe", name, "bytes", stats.Bytes,
					"chunks", stats.Chunks, "wire_bytes", stats.Wire.WireBytes,
					"chunks_skipped", stats.Wire.ChunksSkipped, "nodes", r.c.ring.Len())
			}
			if err := ingest.WriteFrame(bw, ingest.MsgStats, ingest.EncodeStreamStats(*stats, ver)); err != nil {
				return err
			}
			return bw.Flush()
		default:
			st.Abort()
			return abort(&ingest.UnexpectedFrameError{Type: typ, Context: "dedup backup stream"})
		}
	}
}

// frameWriter emits each Write as one Data frame — the routed restore
// writes exactly one Write per chunk, preserving chunk-per-frame
// granularity for any router stacked on top of this one.
type frameWriter struct{ bw *bufio.Writer }

func (f frameWriter) Write(p []byte) (int, error) {
	if err := ingest.WriteFrame(f.bw, ingest.MsgData, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// handleRestore streams a routed restore back to the client. Like the
// single-node server, failures (including unknown names, reported with
// the store's canonical text so clients type them) are sent as Error
// frames and the session survives.
func (r *Router) handleRestore(name string, bw *bufio.Writer) error {
	sendErr := func(msg string) error {
		if err := ingest.WriteFrame(bw, ingest.MsgError, []byte(msg)); err != nil {
			return err
		}
		return bw.Flush()
	}
	if _, err := r.c.restore(name, frameWriter{bw}, obs.SpanContext{}); err != nil {
		if nf, ok := err.(*ingest.NotFoundError); ok {
			return sendErr(fmt.Sprintf("%v: %q", shardstore.ErrUnknownRecipe, nf.Name))
		}
		return sendErr(err.Error())
	}
	if err := ingest.WriteFrame(bw, ingest.MsgEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// handleDelete fans a delete across the cluster. Application errors
// (unknown name included) answer with an Error frame and keep the
// session, mirroring the single-node server.
func (r *Router) handleDelete(name string, bw *bufio.Writer) error {
	ds, err := r.c.delete(name, obs.SpanContext{})
	if err != nil {
		msg := err.Error()
		if nf, ok := err.(*ingest.NotFoundError); ok {
			msg = fmt.Sprintf("%v: %q", shardstore.ErrUnknownRecipe, nf.Name)
		}
		if werr := ingest.WriteFrame(bw, ingest.MsgError, []byte(msg)); werr != nil {
			return werr
		}
		return bw.Flush()
	}
	if err := ingest.WriteFrame(bw, ingest.MsgDeleteOK, ingest.EncodeDeleteStats(*ds)); err != nil {
		return err
	}
	return bw.Flush()
}
