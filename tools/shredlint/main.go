// Command shredlint is the shredder repository's static-analysis
// gate: a multichecker of custom passes that compile the store's
// behavioral invariants — durability ordering, stripe-lock discipline,
// nil-safe observability, wire-codec symmetry, error hygiene — into
// CI. It exits non-zero when any analyzer reports a finding, so a
// violation fails the build exactly like a type error.
//
// Usage:
//
//	shredlint [-dir <module root>] [-list] [packages...]
//
// Packages default to ./... relative to -dir (default "."). A finding
// can be waived at the site with
//
//	//lint:allow <rule> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"shredder/tools/shredlint/analysis"
	"shredder/tools/shredlint/analyzers"
)

func main() {
	dir := flag.String("dir", ".", "module root to analyze (where go list runs)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shredlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(analyzers.All, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shredlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "shredlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
