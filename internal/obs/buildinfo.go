package obs

import "runtime/debug"

// BuildInfo is the identity of the running binary, read once from the
// build metadata the go toolchain embeds.
type BuildInfo struct {
	Version   string // module version ("(devel)" for plain go build)
	GoVersion string // toolchain, e.g. "go1.24.0"
	Revision  string // VCS commit, "unknown" when built outside a checkout
	Modified  bool   // true when the working tree was dirty at build time
}

// ReadBuild extracts BuildInfo from runtime/debug.ReadBuildInfo.
func ReadBuild() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// RegisterBuildInfo registers the conventional build-identity series —
// a constant-1 gauge whose labels carry the interesting values:
//
//	shredder_build_info{version="(devel)",go="go1.24.0",revision="abc123"} 1
//
// and returns the info so /statusz can print it. Safe on a nil
// registry.
func RegisterBuildInfo(r *Registry) BuildInfo {
	bi := ReadBuild()
	rev := bi.Revision
	if bi.Modified {
		rev += "+dirty"
	}
	r.Gauge("shredder_build_info",
		"Build identity of the running binary (always 1; values in labels).",
		"version", bi.Version, "go", bi.GoVersion, "revision", rev).Set(1)
	return bi
}
