package persist

import (
	"sync"
	"time"
)

// groupCommitter coalesces commit-point fsyncs from concurrent sessions
// into one sync pass per commit window (group commit). With a
// CommitWindow configured, commit points stage and flush their records
// but skip the inline fsync; callers regain the durable-before-ack
// guarantee through Backing.Barrier, which blocks until a syncer round
// that started after the caller's appends has fsynced every shard and
// the recipe journal — each waiter still learns the real outcome of the
// fsync pass covering its records, but N sessions inside one window
// share a single pass instead of paying N serialized fsyncs.
type groupCommitter struct {
	b      *Backing
	window time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	started int64 // sync rounds begun
	done    int64 // sync rounds completed
	pending bool  // waiters are queued for a round not yet started
	// outcomes holds each in-flight round's result, refcounted by its
	// waiters so the map stays bounded.
	outcomes map[int64]*groupRound
	closed   bool
	closedCh chan struct{} // closed by close(); interrupts the window sleep
	loopDone chan struct{}

	lastBytes int64 // flushedBytes watermark at the previous round (run goroutine only)
}

// groupRound is one sync round's published result.
type groupRound struct {
	err     error
	waiters int
}

func newGroupCommitter(b *Backing, window time.Duration) *groupCommitter {
	g := &groupCommitter{
		b:        b,
		window:   window,
		outcomes: make(map[int64]*groupRound),
		closedCh: make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	go g.run()
	return g
}

// wait blocks until the first sync round that started after the call
// has completed and returns that round's outcome. Records the caller
// staged before calling wait are covered by that round: a round syncs
// everything flushed before its pass begins.
func (g *groupCommitter) wait() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return errClosed
	}
	// A round already in flight may have raced past this caller's
	// records; only the NEXT round to start is guaranteed to cover them.
	target := g.started + 1
	o := g.outcomes[target]
	if o == nil {
		o = &groupRound{}
		g.outcomes[target] = o
	}
	o.waiters++
	if !g.pending {
		g.pending = true
		g.cond.Broadcast()
	}
	// Once registered, the target round is guaranteed to run — the
	// syncer drains pending rounds before exiting on close — so this
	// wait always resolves to a real sync outcome.
	for g.done < target {
		g.cond.Wait()
	}
	err := o.err
	if o.waiters--; o.waiters == 0 {
		delete(g.outcomes, target)
	}
	return err
}

// run is the syncer goroutine: wake on the first waiter, sleep the
// window so concurrent commits pile onto the same round, then fsync
// everything once and publish the outcome. On close it drains queued
// waiters with one final (window-less) round per batch.
func (g *groupCommitter) run() {
	defer close(g.loopDone)
	for {
		g.mu.Lock()
		for !g.pending && !g.closed {
			g.cond.Wait()
		}
		if g.closed && !g.pending {
			g.mu.Unlock()
			return
		}
		final := g.closed
		g.mu.Unlock()

		if g.window > 0 && !final {
			// Interruptible window: a close during the sleep must not
			// stall shutdown for the full window (operators may set
			// windows far beyond the few-ms sweet spot).
			t := time.NewTimer(g.window)
			select {
			case <-t.C:
			case <-g.closedCh:
				t.Stop()
			}
		}

		g.mu.Lock()
		g.pending = false
		g.started++
		round := g.started
		covered := 0
		if o := g.outcomes[round]; o != nil {
			covered = o.waiters
		}
		g.mu.Unlock()

		err := g.b.Sync()
		g.observeRound(covered)

		g.mu.Lock()
		g.done = round
		if o := g.outcomes[round]; o != nil {
			o.err = err
			if o.waiters == 0 {
				delete(g.outcomes, round)
			}
		}
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// observeRound records one round's window occupancy and batched bytes.
func (g *groupCommitter) observeRound(waiters int) {
	g.b.met.groupRounds.Add(1)
	if h := g.b.met.groupWaiters.Load(); h != nil {
		h.Observe(float64(waiters))
	}
	flushed := g.b.met.flushedBytes.Load()
	if h := g.b.met.groupBytes.Load(); h != nil {
		h.Observe(float64(flushed - g.lastBytes))
	}
	g.lastBytes = flushed
}

// close wakes the syncer, lets it drain any queued waiters with real
// sync outcomes, and joins it. Waiters arriving after close fail with
// errClosed.
func (g *groupCommitter) close() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		close(g.closedCh)
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	<-g.loopDone
}
