// Package redelim implements protocol-independent network redundancy
// elimination — the middlebox application the paper names as future
// work (§9, citing EndRE and SIGCOMM'08 packet caches). A sender-side
// middlebox chunks the byte stream with content-defined boundaries and
// replaces chunks the receiver already holds with short references; the
// receiver-side middlebox reconstructs the original stream.
//
// Both ends maintain size-bounded caches with identical FIFO eviction;
// because the channel is reliable and ordered, the caches stay
// synchronized and a reference is only ever emitted for a chunk the
// receiver still holds.
package redelim

import (
	"errors"
	"fmt"

	"shredder/internal/chunker"
	"shredder/internal/dedup"
)

// RefWireBytes is the on-wire size of a reference message: the chunk
// hash plus framing.
const RefWireBytes = 36

// LiteralHeaderBytes is the framing overhead of a literal chunk.
const LiteralHeaderBytes = 4

// Message is one unit on the wire: either a literal chunk or a
// reference to one the receiver caches.
type Message struct {
	// Ref marks a reference message.
	Ref bool
	// Hash identifies the chunk (always set).
	Hash dedup.Hash
	// Data carries the chunk bytes for literal messages.
	Data []byte
}

// WireBytes returns the modeled on-wire size of the message.
func (m Message) WireBytes() int64 {
	if m.Ref {
		return RefWireBytes
	}
	return LiteralHeaderBytes + int64(len(m.Data))
}

// Stats tracks elimination effectiveness at the sender.
type Stats struct {
	// BytesIn is the original stream volume.
	BytesIn int64
	// BytesOnWire is what was actually sent (literals + references).
	BytesOnWire int64
	// Chunks and RefChunks count totals and eliminated chunks.
	Chunks    int64
	RefChunks int64
}

// Savings returns the fraction of bytes eliminated (0..1).
func (s Stats) Savings() float64 {
	if s.BytesIn == 0 {
		return 0
	}
	saved := s.BytesIn - s.BytesOnWire
	if saved < 0 {
		return 0
	}
	return float64(saved) / float64(s.BytesIn)
}

// cache is the FIFO chunk cache shared (by construction) between the
// two middleboxes.
type cache struct {
	capacity int
	entries  map[dedup.Hash][]byte
	order    []dedup.Hash
}

func newCache(capacity int) *cache {
	return &cache{capacity: capacity, entries: make(map[dedup.Hash][]byte)}
}

// add inserts h (idempotently); data may be nil on the sender side,
// which only needs membership.
func (c *cache) add(h dedup.Hash, data []byte) {
	if _, ok := c.entries[h]; ok {
		return
	}
	if len(c.order) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[h] = data
	c.order = append(c.order, h)
}

func (c *cache) get(h dedup.Hash) ([]byte, bool) {
	d, ok := c.entries[h]
	return d, ok
}

// Sender is the upstream middlebox.
type Sender struct {
	chk   *chunker.Chunker
	cache *cache
	stats Stats
}

// Receiver is the downstream middlebox.
type Receiver struct {
	cache *cache
}

// NewPair builds a synchronized sender/receiver pair. capacity is the
// shared cache size in chunks.
func NewPair(params chunker.Params, capacity int) (*Sender, *Receiver, error) {
	if capacity < 1 {
		return nil, nil, errors.New("redelim: cache capacity must be positive")
	}
	chk, err := chunker.New(params)
	if err != nil {
		return nil, nil, err
	}
	return &Sender{chk: chk, cache: newCache(capacity)},
		&Receiver{cache: newCache(capacity)}, nil
}

// Encode chunks payload and emits literal or reference messages,
// updating the sender cache exactly as the receiver will.
func (s *Sender) Encode(payload []byte) []Message {
	chunks := s.chk.Split(payload)
	msgs := make([]Message, 0, len(chunks))
	for _, c := range chunks {
		data := payload[c.Offset:c.End()]
		h := dedup.Sum(data)
		s.stats.Chunks++
		s.stats.BytesIn += c.Length
		if _, ok := s.cache.get(h); ok {
			m := Message{Ref: true, Hash: h}
			s.stats.RefChunks++
			s.stats.BytesOnWire += m.WireBytes()
			msgs = append(msgs, m)
			// Re-adding refreshes nothing under FIFO; membership only.
			continue
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		m := Message{Hash: h, Data: cp}
		s.stats.BytesOnWire += m.WireBytes()
		s.cache.add(h, nil)
		msgs = append(msgs, m)
	}
	return msgs
}

// Stats returns the sender's running statistics.
func (s *Sender) Stats() Stats { return s.stats }

// Decode reconstructs the original payload from messages, updating the
// receiver cache in lock-step with the sender.
func (r *Receiver) Decode(msgs []Message) ([]byte, error) {
	var out []byte
	for i, m := range msgs {
		if m.Ref {
			data, ok := r.cache.get(m.Hash)
			if !ok {
				return nil, fmt.Errorf("redelim: message %d references unknown chunk %x", i, m.Hash[:8])
			}
			out = append(out, data...)
			continue
		}
		if dedup.Sum(m.Data) != m.Hash {
			return nil, fmt.Errorf("redelim: message %d payload does not match its hash", i)
		}
		cp := make([]byte, len(m.Data))
		copy(cp, m.Data)
		r.cache.add(m.Hash, cp)
		out = append(out, m.Data...)
	}
	return out, nil
}
