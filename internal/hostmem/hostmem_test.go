package hostmem

import (
	"sync"
	"testing"
)

func TestPinnedDearerThanPageable(t *testing.T) {
	m := Default()
	for _, n := range []int64{16 << 20, 64 << 20, 256 << 20} {
		pg := m.PageableAllocTime(n)
		pn := m.PinnedAllocTime(n, 0)
		if pn <= pg {
			t.Fatalf("pinned alloc of %dMB (%v) not dearer than pageable (%v)", n>>20, pn, pg)
		}
		// Figure 6: close to an order of magnitude apart.
		ratio := float64(pn) / float64(pg)
		if ratio < 4 || ratio > 12 {
			t.Fatalf("pinned/pageable alloc ratio %.1f outside [4, 12]", ratio)
		}
	}
}

func TestPagingPressurePenalty(t *testing.T) {
	m := Default()
	n := int64(256 << 20)
	cheap := m.PinnedAllocTime(n, 0)
	dear := m.PinnedAllocTime(n, int64(float64(m.HostRAM)*m.PinnedFractionLimit))
	if dear <= cheap {
		t.Fatal("exceeding the pinned-fraction limit did not penalize allocation")
	}
}

func TestMemcpyTime(t *testing.T) {
	m := Default()
	d := m.MemcpyTime(64 << 20)
	if d <= 0 {
		t.Fatal("memcpy of 64MB costs nothing")
	}
	if m.MemcpyTime(0) != 0 {
		t.Fatal("zero memcpy should cost nothing")
	}
	// Staging copy must be much cheaper than a pageable alloc of the
	// same size, or Figure 6's comparison would be meaningless.
	if d >= m.PageableAllocTime(64<<20) {
		t.Fatal("memcpy not cheaper than pageable allocation")
	}
}

func TestRingAllocOnce(t *testing.T) {
	m := Default()
	r, err := NewRing(m, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Regions() != 4 || r.RegionSize() != 1<<20 {
		t.Fatal("ring geometry wrong")
	}
	if r.AllocTime <= 0 {
		t.Fatal("ring allocation must cost modeled time")
	}
	// Reusing all regions many times costs nothing further: AllocTime
	// is fixed at construction.
	before := r.AllocTime
	for i := 0; i < 100; i++ {
		reg := r.Acquire()
		reg.Data[0] = byte(i)
		r.Release(reg)
	}
	if r.AllocTime != before {
		t.Fatal("reuse changed the one-time allocation cost")
	}
}

func TestRingNeverHandsOutInFlightRegion(t *testing.T) {
	r, err := NewRing(Default(), 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Acquire()
	b := r.Acquire()
	if a == b {
		t.Fatal("same region handed out twice")
	}
	if c := r.TryAcquire(); c != nil {
		t.Fatal("ring handed out a region while all are in flight")
	}
	r.Release(a)
	c := r.TryAcquire()
	if c == nil {
		t.Fatal("region not reusable after release")
	}
	if c != a {
		t.Fatal("expected the released region back")
	}
	r.Release(b)
	r.Release(c)
}

func TestRingDoubleReleasePanics(t *testing.T) {
	r, _ := NewRing(Default(), 2, 64)
	a := r.Acquire()
	r.Release(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Release(a)
}

func TestRingForeignRegionPanics(t *testing.T) {
	r, _ := NewRing(Default(), 1, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign region release did not panic")
		}
	}()
	r.Release(&Region{Data: make([]byte, 64)})
}

func TestRingConcurrent(t *testing.T) {
	r, _ := NewRing(Default(), 3, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg := r.Acquire()
				reg.Data[0] = byte(g)
				r.Release(reg)
			}
		}(g)
	}
	wg.Wait()
	// All regions free afterwards.
	for i := 0; i < 3; i++ {
		if r.TryAcquire() == nil {
			t.Fatal("region leaked")
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(Default(), 0, 64); err == nil {
		t.Fatal("expected error for zero regions")
	}
	if _, err := NewRing(Default(), 2, 0); err == nil {
		t.Fatal("expected error for zero size")
	}
}
