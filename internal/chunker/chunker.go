// Package chunker implements content-defined chunking (CDC) using Rabin
// fingerprints over a sliding window, as described in LBFS and used by
// Shredder (FAST 2012). A chunk boundary is declared wherever the
// low-order MaskBits bits of the window fingerprint equal a predefined
// marker; optional minimum and maximum chunk sizes bound the result.
//
// This package is the sequential reference implementation: the parallel
// host chunker (chunk.Parallel) and the GPU chunking kernel (package
// gpu) are required to produce byte-identical boundaries, and their
// tests assert that against this package.
//
// Code above the algorithm — the core pipeline, the ingest service —
// should not use this package directly: package chunk defines the
// algorithm-agnostic engine API and wraps this implementation as its
// Rabin engine (chunk.RabinSpec lifts a Params into a chunk.Spec).
package chunker

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"shredder/internal/rabin"
)

// Defaults mirror the configuration in the paper (§3.1): a 48-byte
// window and a 13-bit marker comparison.
const (
	DefaultWindow   = 48
	DefaultMaskBits = 13
)

// Params configures a Chunker. The zero value is not valid; use
// DefaultParams or fill in every field.
type Params struct {
	// Window is the sliding-window size in bytes.
	Window int
	// Polynomial is the irreducible modulus for Rabin fingerprinting.
	Polynomial rabin.Poly
	// MaskBits selects how many low-order fingerprint bits participate
	// in the boundary test; the expected chunk size is 2^MaskBits bytes
	// (geometric, before min/max clamping).
	MaskBits int
	// Marker is the value the masked fingerprint must equal at a
	// boundary. It must fit in MaskBits bits.
	Marker uint64
	// MinSize, when > 0, is the minimum chunk length in bytes; content
	// boundaries closer than MinSize to the chunk start are ignored.
	MinSize int
	// MaxSize, when > 0, forces a boundary after MaxSize bytes.
	MaxSize int
}

// DefaultParams returns the paper's configuration: 48-byte window,
// 13-bit mask, no min/max (the paper uses min = 0, max = ∞ except in
// the backup case study).
func DefaultParams() Params {
	return Params{
		Window:     DefaultWindow,
		Polynomial: rabin.DefaultPolynomial,
		MaskBits:   DefaultMaskBits,
		Marker:     1<<DefaultMaskBits - 1,
	}
}

// Validate checks p for consistency.
func (p Params) Validate() error {
	if p.Window < 2 {
		return errors.New("chunker: window must be at least 2 bytes")
	}
	if d := p.Polynomial.Degree(); d < 9 || d > 62 {
		return fmt.Errorf("chunker: polynomial degree %d outside [9, 62]", d)
	}
	if p.MaskBits < 1 || p.MaskBits >= p.Polynomial.Degree() {
		return fmt.Errorf("chunker: mask bits %d outside [1, poly degree)", p.MaskBits)
	}
	if p.Marker >= 1<<uint(p.MaskBits) {
		return fmt.Errorf("chunker: marker %#x does not fit in %d bits", p.Marker, p.MaskBits)
	}
	if p.MinSize < 0 || p.MaxSize < 0 {
		return errors.New("chunker: negative min/max size")
	}
	if p.MaxSize > 0 && p.MinSize >= p.MaxSize {
		return fmt.Errorf("chunker: min size %d >= max size %d", p.MinSize, p.MaxSize)
	}
	if p.MaxSize > 0 && p.MaxSize < p.Window {
		return fmt.Errorf("chunker: max size %d smaller than window %d", p.MaxSize, p.Window)
	}
	return nil
}

// Chunk describes one chunk of the input stream.
type Chunk struct {
	// Offset is the chunk's starting byte offset in the stream.
	Offset int64
	// Length is the chunk length in bytes.
	Length int64
	// Cut is the window fingerprint that triggered the boundary, or 0
	// when the boundary was forced (max size or end of stream).
	Cut rabin.Poly
	// Forced reports whether the boundary was forced rather than
	// content-defined.
	Forced bool
}

// End returns the exclusive end offset of the chunk.
func (c Chunk) End() int64 { return c.Offset + c.Length }

// Sum returns the SHA-256 digest of the chunk's content, given the
// full stream the chunk was cut from.
func (c Chunk) Sum(stream []byte) [sha256.Size]byte {
	return sha256.Sum256(stream[c.Offset:c.End()])
}

// Chunker cuts byte streams into content-defined chunks. It is
// stateless between calls and safe for concurrent use.
type Chunker struct {
	params Params
	table  *rabin.Table
	mask   rabin.Poly
	marker rabin.Poly
}

// New returns a Chunker for the given parameters.
func New(p Params) (*Chunker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Chunker{
		params: p,
		table:  rabin.NewTable(p.Polynomial, p.Window),
		mask:   1<<uint(p.MaskBits) - 1,
		marker: rabin.Poly(p.Marker),
	}, nil
}

// Params returns the configuration the Chunker was built with.
func (c *Chunker) Params() Params { return c.params }

// Table exposes the fingerprint table so cooperating implementations
// (parallel and GPU chunkers) share the exact same arithmetic.
func (c *Chunker) Table() *rabin.Table { return c.table }

// IsBoundary reports whether a window fingerprint marks a chunk
// boundary.
func (c *Chunker) IsBoundary(fp rabin.Poly) bool {
	return fp&c.mask == c.marker
}

// Boundaries returns every raw content-defined boundary in data,
// ignoring min/max limits: each element is the exclusive end offset of
// a chunk, i.e. a marker match at byte i yields boundary i+1. The final
// end-of-data boundary is not included. This is the quantity the GPU
// kernel computes; limits are applied afterwards by ApplyLimits,
// exactly like the paper's Store thread (§3.1).
func (c *Chunker) Boundaries(data []byte) []int64 {
	var cuts []int64
	w := rabin.NewWindow(c.table)
	for i, b := range data {
		fp := w.Slide(b)
		if w.Full() && c.IsBoundary(fp) {
			cuts = append(cuts, int64(i)+1)
		}
	}
	return cuts
}

// ApplyLimits converts raw boundaries into final chunks over a stream
// of the given total length, enforcing MinSize/MaxSize and cutting the
// stream tail. Raw boundaries must be ascending, positive and at most
// total. fps, when non-nil, carries the fingerprint at each raw
// boundary for annotation and must be the same length as raw.
func (c *Chunker) ApplyLimits(raw []int64, fps []rabin.Poly, total int64) []Chunk {
	min := int64(c.params.MinSize)
	max := int64(c.params.MaxSize)
	if min == 0 {
		min = 1 // a boundary can never produce an empty chunk
	}
	var chunks []Chunk
	start := int64(0)
	cut := func(end int64, fp rabin.Poly, forced bool) {
		chunks = append(chunks, Chunk{Offset: start, Length: end - start, Cut: fp, Forced: forced})
		start = end
	}
	for i, b := range raw {
		if max > 0 {
			for b-start > max {
				cut(start+max, 0, true)
			}
		}
		if b-start >= min {
			var fp rabin.Poly
			if fps != nil {
				fp = fps[i]
			}
			cut(b, fp, false)
		}
	}
	if max > 0 {
		for total-start > max {
			cut(start+max, 0, true)
		}
	}
	if total > start {
		cut(total, 0, true)
	}
	return chunks
}

// Split cuts data into chunks, honoring min/max sizes. The
// concatenation of the returned chunks always reproduces data exactly.
func (c *Chunker) Split(data []byte) []Chunk {
	var chunks []Chunk
	w := rabin.NewWindow(c.table)
	min := int64(c.params.MinSize)
	if min == 0 {
		min = 1
	}
	max := int64(c.params.MaxSize)
	start := int64(0)
	for i, b := range data {
		fp := w.Slide(b)
		end := int64(i) + 1
		if w.Full() && c.IsBoundary(fp) && end-start >= min {
			chunks = append(chunks, Chunk{Offset: start, Length: end - start, Cut: fp})
			start = end
			continue
		}
		if max > 0 && end-start == max {
			chunks = append(chunks, Chunk{Offset: start, Length: max, Forced: true})
			start = end
		}
	}
	if total := int64(len(data)); total > start {
		chunks = append(chunks, Chunk{Offset: start, Length: total - start, Forced: true})
	}
	return chunks
}
