package shardstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"shredder/internal/chunker"
	"shredder/internal/dedup"
	"shredder/internal/workload"
)

// putAll stores chunks one batch, returning the refs.
func putAll(t testing.TB, s *Store, chunks [][]byte) []Ref {
	t.Helper()
	refs, _, err := s.PutBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

// corpus cuts a deterministic snapshot series into content-defined
// chunks: a realistic dedup workload with repeats across snapshots.
func corpus(t testing.TB, seed int64, size int, snapshots int) [][]byte {
	t.Helper()
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	im := workload.NewImage(seed, size, 16<<10, 0.2)
	var out [][]byte
	add := func(img []byte) {
		for _, c := range chk.Split(img) {
			out = append(out, img[c.Offset:c.End()])
		}
	}
	add(im.Master)
	for i := 0; i < snapshots; i++ {
		add(im.Snapshot(seed + int64(i)))
	}
	return out
}

// TestDifferentialAgainstDedupStore drives dedup.Store and Store with
// the same chunk sequence and asserts byte-identical semantics: same
// per-chunk duplicate classification, same aggregate Stats, and
// byte-exact reconstruction — for every shard count.
func TestDifferentialAgainstDedupStore(t *testing.T) {
	chunks := corpus(t, 42, 1<<20, 2)
	for _, shards := range []int{1, 2, 16, 128} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ref, err := dedup.NewStore(0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(shards, 0)
			if err != nil {
				t.Fatal(err)
			}
			var refRecipe dedup.Recipe
			var gotRecipe Recipe
			for i, c := range chunks {
				rr, rdup := ref.Put(c)
				_, gdup, perr := got.Put(c)
				if perr != nil {
					t.Fatal(perr)
				}
				if rdup != gdup {
					t.Fatalf("chunk %d: dup=%v, dedup.Store says %v", i, gdup, rdup)
				}
				refRecipe = append(refRecipe, rr)
				gotRecipe = append(gotRecipe, dedup.Sum(c))
			}
			if rs, gs := ref.Stats(), got.Stats(); rs != gs {
				t.Fatalf("stats diverge:\n dedup: %+v\n shard: %+v", rs, gs)
			}
			want, err := ref.Reconstruct(refRecipe)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.Reconstruct(gotRecipe)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, have) {
				t.Fatal("reconstructed streams differ")
			}
		})
	}
}

// TestSingleShardPackingIdentical pins down the strongest form of the
// differential guarantee: with one shard, every ref (container, offset,
// length) matches dedup.Store exactly.
func TestSingleShardPackingIdentical(t *testing.T) {
	chunks := corpus(t, 7, 1<<20, 1)
	ref, err := dedup.NewStore(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		rr, _ := ref.Put(c)
		gr, _, _ := got.Put(c)
		if gr.Shard != 0 || gr.Container != rr.Container || gr.Offset != rr.Offset || gr.Length != rr.Length {
			t.Fatalf("chunk %d: ref %+v, dedup.Store packs %+v", i, gr, rr)
		}
	}
	if got.Containers() != ref.Containers() {
		t.Fatalf("containers: %d vs %d", got.Containers(), ref.Containers())
	}
}

// TestBatchMatchesSequential asserts PutBatch/WriteStream classify and
// pack exactly like sequential Puts on an identically-seeded store —
// including duplicates *within* one batch.
func TestBatchMatchesSequential(t *testing.T) {
	chunks := corpus(t, 11, 1<<20, 1)
	// Force intra-batch duplicates.
	chunks = append(chunks, chunks[0], chunks[1], chunks[0])
	seq, err := New(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := New(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seqDups int
	seqRefs := make([]Ref, len(chunks))
	for i, c := range chunks {
		r, dup, _ := seq.Put(c)
		seqRefs[i] = r
		if dup {
			seqDups++
		}
	}
	batRefs, batDup, err := bat.PutBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	batDups := 0
	for _, d := range batDup {
		if d {
			batDups++
		}
	}
	if batDups != seqDups {
		t.Fatalf("batch found %d dups, sequential %d", batDups, seqDups)
	}
	if seq.Stats() != bat.Stats() {
		t.Fatalf("stats diverge:\n seq: %+v\n bat: %+v", seq.Stats(), bat.Stats())
	}
	for i := range chunks {
		if seqRefs[i] != batRefs[i] {
			t.Fatalf("chunk %d: batch ref %+v, sequential %+v", i, batRefs[i], seqRefs[i])
		}
	}
	// HasBatch agrees with Has for everything just written plus misses.
	hs := make([]Hash, 0, len(chunks)+1)
	for _, c := range chunks {
		hs = append(hs, dedup.Sum(c))
	}
	hs = append(hs, dedup.Sum([]byte("never stored")))
	present := bat.HasBatch(hs)
	for i, h := range hs {
		if _, ok := bat.Has(h); ok != present[i] {
			t.Fatalf("hash %d: Has=%v HasBatch=%v", i, ok, present[i])
		}
	}
	if present[len(present)-1] {
		t.Fatal("HasBatch reported a never-stored hash as present")
	}
}

// TestConcurrentPut hammers the store from many goroutines — each
// writing its own stream with heavy cross-stream overlap — and checks
// the aggregate totals and every stream's reconstruction. Run under
// -race this is the striped-locking correctness test.
func TestConcurrentPut(t *testing.T) {
	const writers = 8
	store, err := New(32, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	shared := corpus(t, 99, 1<<20, 0) // every writer stores these
	streams := make([][][]byte, writers)
	for w := range streams {
		own := corpus(t, 1000+int64(w), 256<<10, 0)
		streams[w] = append(append([][]byte{}, shared...), own...)
	}
	recipes := make([]Recipe, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, c := range streams[w] {
				store.Put(c)
				recipes[w] = append(recipes[w], dedup.Sum(c))
			}
		}(w)
	}
	wg.Wait()

	var wantLogical int64
	var wantChunks int64
	for _, st := range streams {
		for _, c := range st {
			wantLogical += int64(len(c))
			wantChunks++
		}
	}
	st := store.Stats()
	if st.LogicalBytes != wantLogical || st.Chunks != wantChunks {
		t.Fatalf("aggregate stats %+v, want logical=%d chunks=%d", st, wantLogical, wantChunks)
	}
	if st.Chunks != st.UniqueChunks+st.IndexHits {
		t.Fatalf("chunks %d != unique %d + hits %d", st.Chunks, st.UniqueChunks, st.IndexHits)
	}
	// The shared corpus must be stored once, not once per writer.
	if st.StoredBytes >= wantLogical/2 {
		t.Fatalf("stored %d of %d logical: cross-writer dedup failed", st.StoredBytes, wantLogical)
	}
	for w := 0; w < writers; w++ {
		var want []byte
		for _, c := range streams[w] {
			want = append(want, c...)
		}
		got, err := store.Reconstruct(recipes[w])
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("writer %d: reconstruction differs", w)
		}
	}
}

// TestConcurrentMixed interleaves readers (Has/Get/Stats) with writers
// (PutBatch) to exercise the RWMutex paths under -race.
func TestConcurrentMixed(t *testing.T) {
	store, err := New(8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	chunks := corpus(t, 5, 512<<10, 0)
	seedRefs := putAll(t, store, chunks[:len(chunks)/2])
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, c := range chunks[:len(chunks)/2] {
					h := dedup.Sum(c)
					if _, ok := store.Has(h); !ok {
						t.Error("seeded chunk missing")
						return
					}
					data, err := store.Get(seedRefs[i])
					if err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(data, c) {
						t.Error("Get returned wrong bytes during concurrent writes")
						return
					}
					_ = store.Stats()
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			own := corpus(t, 2000+int64(w), 128<<10, 0)
			for i := 0; i < len(own); i += 16 {
				end := i + 16
				if end > len(own) {
					end = len(own)
				}
				store.PutBatch(own[i:end])
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestNewValidation covers the constructor's error paths.
func TestNewValidation(t *testing.T) {
	for _, bad := range []int{-1, 3, 6, MaxShards * 2} {
		if _, err := New(bad, 0); err == nil {
			t.Errorf("New(%d, 0) accepted", bad)
		}
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative container size accepted")
	}
	s, err := New(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 16 {
		t.Fatalf("default shards = %d, want 16", s.NumShards())
	}
}

// TestGetOutOfRange covers the Get error paths.
func TestGetOutOfRange(t *testing.T) {
	s, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _ := s.Put([]byte("hello"))
	for _, bad := range []Ref{
		{Shard: -1},
		{Shard: 99},
		{Shard: ref.Shard, Container: 5},
		{Shard: ref.Shard, Container: ref.Container, Offset: 1 << 30, Length: 1},
		{Shard: ref.Shard, Container: ref.Container, Offset: 0, Length: -1},
	} {
		if _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%+v) succeeded", bad)
		}
	}
	if n := s.Refcount(dedup.Sum([]byte("hello"))); n != 1 {
		t.Fatalf("refcount = %d, want 1", n)
	}
	s.Put([]byte("hello"))
	if n := s.Refcount(dedup.Sum([]byte("hello"))); n != 2 {
		t.Fatalf("refcount = %d, want 2", n)
	}
}
