// Package obs is the testdata stand-in for the real internal/obs:
// instrumentation types whose methods are nil-tolerant so servers can
// run with observability switched off.
package obs

type Registry struct {
	Hits int
}

func (r *Registry) Add(n int) {
	if r == nil {
		return
	}
	r.Hits += n
}

type Span struct {
	Name string
}

func (s *Span) End() {
	if s == nil {
		return
	}
}
