package chunk

import (
	"errors"
	"fmt"
	"math/bits"
)

// FastCDC limits: the mask construction needs a few bits of headroom on
// both sides of the 64-bit gear hash, and chunks below ~64 bytes defeat
// the point of content-defined boundaries.
const (
	fastcdcMinAvg = 256
	fastcdcMaxAvg = 1 << 26
	fastcdcMinMin = 64
	fastcdcMaxMax = 1 << 30
	maxNormalize  = 3
)

// FastCDCSpec returns a FastCDC Spec with the conventional derived
// bounds: min = avg/4, max = avg*4, normalization level 2.
func FastCDCSpec(avgSize int) Spec {
	return Spec{
		Algo:          AlgoFastCDC,
		AvgSize:       avgSize,
		MinSize:       avgSize / 4,
		MaxSize:       avgSize * 4,
		Normalization: 2,
	}
}

func validateFastCDC(s Spec) error {
	if s.AvgSize < fastcdcMinAvg || s.AvgSize > fastcdcMaxAvg {
		return fmt.Errorf("chunk: fastcdc avg size %d outside [%d, %d]", s.AvgSize, fastcdcMinAvg, fastcdcMaxAvg)
	}
	if s.AvgSize&(s.AvgSize-1) != 0 {
		return fmt.Errorf("chunk: fastcdc avg size %d is not a power of two", s.AvgSize)
	}
	if s.MinSize < fastcdcMinMin {
		return fmt.Errorf("chunk: fastcdc min size %d below %d", s.MinSize, fastcdcMinMin)
	}
	if s.MaxSize > fastcdcMaxMax {
		return fmt.Errorf("chunk: fastcdc max size %d above %d", s.MaxSize, fastcdcMaxMax)
	}
	if s.MinSize > s.AvgSize || s.AvgSize > s.MaxSize {
		return fmt.Errorf("chunk: fastcdc sizes must satisfy min %d <= avg %d <= max %d",
			s.MinSize, s.AvgSize, s.MaxSize)
	}
	if s.MinSize == s.MaxSize {
		return errors.New("chunk: fastcdc min size equals max size")
	}
	if s.Normalization < 0 || s.Normalization > maxNormalize {
		return fmt.Errorf("chunk: fastcdc normalization %d outside [0, %d]", s.Normalization, maxNormalize)
	}
	return nil
}

// FastCDC is a gear-hash content-defined chunker with normalized
// chunking: below the target size the boundary test uses a stricter
// mask (log2(avg)+normalization bits), past it a looser one
// (log2(avg)-normalization bits), concentrating the size distribution
// around the target. Bytes before MinSize are skipped entirely — the
// sub-minimum cut-point skip that, together with the one-add rolling
// hash, makes FastCDC several times faster per byte than the Rabin
// sliding window.
type FastCDC struct {
	spec          Spec
	min, avg, max int
	maskS, maskL  uint64
	gear          [256]uint64
}

var _ Engine = (*FastCDC)(nil)

func newFastCDC(s Spec) (*FastCDC, error) {
	log2 := bits.TrailingZeros(uint(s.AvgSize))
	e := &FastCDC{
		spec:  s,
		min:   s.MinSize,
		avg:   s.AvgSize,
		max:   s.MaxSize,
		maskS: highMask(log2 + s.Normalization),
		maskL: highMask(log2 - s.Normalization),
		gear:  gearTable(s.Seed),
	}
	return e, nil
}

// highMask selects the n high-order bits of the gear hash. The gear
// update (fp = fp<<1 + gear[b]) accumulates its entropy toward the top
// of the word, so that is where the boundary test must look.
func highMask(n int) uint64 {
	return ^uint64(0) << (64 - n)
}

// gearTable derives the 256-entry gear table from seed with the
// splitmix64 generator: fully deterministic, so every party using the
// same Seed cuts identical boundaries; seed 0 is the canonical shared
// table.
func gearTable(seed uint64) [256]uint64 {
	const golden = 0x9E3779B97F4A7C15
	var t [256]uint64
	x := seed
	for i := range t {
		x += golden
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// Spec returns the configuration the engine was built from.
func (e *FastCDC) Spec() Spec { return e.spec }

// cut returns the length of the first chunk of data, assuming data
// begins at a chunk boundary, plus the gear hash at a content-defined
// boundary. It is a pure function of data[:min(len(data), MaxSize)],
// which is what makes Split and the incremental Stream agree: the
// stream only cuts once it has buffered MaxSize bytes (so the view
// cannot grow) or the stream has ended (so it cannot either).
func (e *FastCDC) cut(data []byte) (n int, fp uint64, forced bool) {
	if len(data) <= e.min {
		return len(data), 0, true
	}
	limit := len(data)
	if limit > e.max {
		limit = e.max
	}
	normal := e.avg
	if normal > limit {
		normal = limit
	}
	i := e.min
	for ; i < normal; i++ {
		fp = fp<<1 + e.gear[data[i]]
		if fp&e.maskS == 0 {
			return i + 1, fp, false
		}
	}
	for ; i < limit; i++ {
		fp = fp<<1 + e.gear[data[i]]
		if fp&e.maskL == 0 {
			return i + 1, fp, false
		}
	}
	return limit, 0, true
}

// Split cuts data into chunks. The concatenation of the returned
// chunks always reproduces data exactly.
func (e *FastCDC) Split(data []byte) []Chunk {
	var out []Chunk
	off := int64(0)
	for len(data) > 0 {
		n, fp, forced := e.cut(data)
		out = append(out, Chunk{Offset: off, Length: int64(n), Fingerprint: fp, Forced: forced})
		off += int64(n)
		data = data[n:]
	}
	return out
}

// fastcdcStream buffers at most MaxSize + one write's worth of bytes
// and cuts as soon as a full MaxSize view is available, so its chunks
// are identical to Split over the concatenated writes. Consumed chunks
// advance a head cursor; the buffer is compacted once per Write, not
// once per chunk, keeping the feed linear in stream length.
type fastcdcStream struct {
	e      *FastCDC
	emit   EmitFunc
	buf    []byte
	head   int   // index of the first unconsumed byte in buf
	start  int64 // absolute stream offset of buf[head]
	closed bool
	err    error
}

// Stream returns an incremental FastCDC feed.
func (e *FastCDC) Stream(emit EmitFunc) Stream {
	return &fastcdcStream{e: e, emit: emit}
}

func (s *fastcdcStream) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, errors.New("chunk: write after Close")
	}
	if s.head > 0 {
		s.buf = s.buf[:copy(s.buf, s.buf[s.head:])]
		s.head = 0
	}
	s.buf = append(s.buf, p...)
	for len(s.buf)-s.head >= s.e.max {
		n, fp, forced := s.e.cut(s.buf[s.head:])
		if err := s.flush(n, fp, forced); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

func (s *fastcdcStream) flush(n int, fp uint64, forced bool) error {
	c := Chunk{Offset: s.start, Length: int64(n), Fingerprint: fp, Forced: forced}
	if err := s.emit(c, s.buf[s.head:s.head+n]); err != nil {
		s.err = err
		return err
	}
	s.head += n
	s.start += int64(n)
	return nil
}

// Close cuts the buffered tail. It is idempotent.
func (s *fastcdcStream) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.closed = true
	for len(s.buf)-s.head > 0 {
		n, fp, forced := s.e.cut(s.buf[s.head:])
		if err := s.flush(n, fp, forced); err != nil {
			return err
		}
	}
	return nil
}

func (s *fastcdcStream) Offset() int64 { return s.start + int64(len(s.buf)-s.head) }
