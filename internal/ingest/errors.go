package ingest

import (
	"errors"
	"fmt"
)

// The protocol's error taxonomy. Every failure the wire can produce is
// wrapped in one of these types so callers can distinguish a hostile
// frame from a vanished peer from a rejected negotiation with
// errors.As, instead of pattern-matching message strings or getting a
// raw io.EOF.

// FrameSizeError reports a frame whose announced or attempted payload
// exceeds the protocol limit. A peer announcing such a frame is
// corrupt (or hostile) and the connection is dropped.
type FrameSizeError struct {
	// Type is the frame type byte (0 when the violation was caught
	// before a type was known).
	Type byte
	// Size is the offending payload length; Limit is the maximum.
	Size, Limit int64
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("ingest: frame type %d of %d bytes exceeds %d-byte limit", e.Type, e.Size, e.Limit)
}

// UnexpectedFrameError reports a frame type that is invalid in the
// protocol state it arrived in (e.g. Data outside a stream, or a type
// this server does not know at all).
type UnexpectedFrameError struct {
	// Type is the offending frame type byte.
	Type byte
	// Context names the protocol state, e.g. "session" or "backup stream".
	Context string
}

func (e *UnexpectedFrameError) Error() string {
	return fmt.Sprintf("ingest: unexpected frame type %d in %s", e.Type, e.Context)
}

// TruncatedError reports a connection that ended mid-frame or
// mid-stream: the peer vanished at a point where the protocol promised
// more bytes.
type TruncatedError struct {
	// Context says what was being read, including the frame type and
	// length when known.
	Context string
	// Cause is the underlying read error.
	Cause error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("ingest: connection truncated reading %s: %v", e.Context, e.Cause)
}

func (e *TruncatedError) Unwrap() error { return e.Cause }

// NegotiationError reports a rejected session negotiation: an
// unsupported protocol version, an unknown or invalid chunking spec,
// or a server-side policy refusal. The server sends the reason in a
// MsgError reply; the client surfaces it in this type.
type NegotiationError struct {
	Reason string
}

func (e *NegotiationError) Error() string {
	return "ingest: negotiation rejected: " + e.Reason
}

// ErrNotFound is the sentinel a *NotFoundError matches with errors.Is:
// the server has no recipe under the requested name. A routing layer
// uses it to tell "not on this node" (benign — try elsewhere, or the
// stream never existed) from "the node failed".
var ErrNotFound = errors.New("ingest: recipe not found")

// NotFoundError reports an operation (delete, restore) against a
// stream name the server has no recipe for. The session stays usable.
// It matches ErrNotFound under errors.Is, so callers never have to
// pattern-match the server's message text.
type NotFoundError struct {
	// Op is the client operation ("delete", "restore").
	Op string
	// Name is the stream name the server had no recipe for.
	Name string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("ingest: server has no stream named %q (%s)", e.Name, e.Op)
}

func (e *NotFoundError) Is(target error) bool { return target == ErrNotFound }

// RemoteError carries an error message the peer sent in a MsgError
// frame during an operation. The server's own text (a store failure, a
// missing recipe, a rejected body) is preserved verbatim in Msg so a
// daemon-side failure is diagnosable from client output; Op and Name
// say which operation and stream it struck.
type RemoteError struct {
	// Msg is the server's error text, verbatim.
	Msg string
	// Op is the client operation ("backup", "dedup backup", "restore";
	// empty when unknown).
	Op string
	// Name is the stream name the operation targeted.
	Name string
}

func (e *RemoteError) Error() string {
	if e.Op == "" {
		return "ingest: server: " + e.Msg
	}
	return fmt.Sprintf("ingest: server failed %s %q: %s", e.Op, e.Name, e.Msg)
}
