// Hot-path benchmarks: the group-commit WAL window (-commit-bench,
// the CI artifact BENCH_commit.json) and single-stream parallel
// chunking (-pchunk-bench, BENCH_pchunk.json).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/persist"
	"shredder/internal/shardstore"
	"shredder/internal/workload"
)

// Commit-bench workload shape: each session is a sequence of small
// backup streams driven through the store's commit path (chunk Puts
// then a recipe commit), every body distinct so no dedup hit skips a
// commit point. One WAL shard: the single journal every session's
// durability funnels through is exactly the serialization the window
// exists to break.
const (
	cbBodyBytes         = 8 << 10
	cbPutsPerStream     = 4
	cbStreamsPerSession = 4
	cbSessions          = 16 // the concurrent side; 1 is the baseline
	cbIters             = 3
	cbShards            = 1
	cbDiskLat           = 2 * time.Millisecond // simulated device commit (see benchDisk)
	cbWindow            = 2 * time.Millisecond // the -commit-window under test
)

// benchDisk models one commodity disk under both fsync disciplines,
// for the same reason runClusterBench's simDisk does: the CI host's
// virtio disk acks fsyncs from host cache in ~0.2ms, flattering the
// no-window side. Unlike simDisk it is window-aware — the latency is
// charged where the device flush actually happens. Without a commit
// window every commit point fsyncs inline, so Commit/CommitRecipe
// sleep (inside the same locks the fsync is issued under). With a
// window those calls only stage and flush; the flush-to-device runs
// once per group round, so the sleep moves to Barrier, where the
// round's waiters sit it out concurrently.
type benchDisk struct {
	shardstore.Backing
	lat      time.Duration
	windowed bool
}

func (d *benchDisk) Shard(i int) shardstore.ShardBacking {
	return &benchDiskShard{d.Backing.Shard(i), d}
}

func (d *benchDisk) CommitRecipe(name string, r shardstore.Recipe) error {
	err := d.Backing.CommitRecipe(name, r)
	if !d.windowed {
		time.Sleep(d.lat)
	}
	return err
}

func (d *benchDisk) Barrier() error {
	err := d.Backing.(shardstore.BarrierBacking).Barrier()
	if d.windowed {
		time.Sleep(d.lat)
	}
	return err
}

type benchDiskShard struct {
	shardstore.ShardBacking
	d *benchDisk
}

func (s *benchDiskShard) Commit() error {
	err := s.ShardBacking.Commit()
	if !s.d.windowed {
		time.Sleep(s.d.lat)
	}
	return err
}

// commitBenchCell is one (sessions, window) configuration's result.
type commitBenchCell struct {
	Sessions    int       `json:"sessions"`
	WindowMS    float64   `json:"window_ms"`
	Streams     int       `json:"streams"`
	IterSeconds []float64 `json:"iter_seconds"`
	Seconds     float64   `json:"seconds"` // median
	StreamsPerS float64   `json:"streams_per_s"`
}

// commitBenchResult is the BENCH_commit.json schema. Speedup16 is the
// acceptance number: sessions/sec at 16 concurrent sessions, window
// on vs off. Speedup1 documents the single-session cost of the window
// (a lone session waits out the window per commit point with nobody
// to share it).
type commitBenchResult struct {
	Fsync             string            `json:"fsync"`
	BodyKB            int               `json:"body_kb"`
	PutsPerStream     int               `json:"puts_per_stream"`
	StreamsPerSession int               `json:"streams_per_session"`
	Shards            int               `json:"shards"`
	SimDiskMs         float64           `json:"sim_disk_ms"`
	WindowMs          float64           `json:"window_ms"`
	Iterations        int               `json:"iterations"`
	Cells             []commitBenchCell `json:"cells"`
	Speedup1          float64           `json:"speedup_1"`
	Speedup16         float64           `json:"speedup_16"`
}

// commitBenchIterate runs one configuration once: a fresh durable
// store at fsync always (with the simulated device latency), sessions
// concurrent goroutines each committing its own distinct streams
// through Put + CommitRecipe — the exact commit points a backup
// session acks on — and every recipe verified to reconstruct before
// the store closes. Returns the wall seconds of the timed phase.
func commitBenchIterate(sessions int, window time.Duration, seed int64) (float64, error) {
	dir, err := os.MkdirTemp("", "commitbench-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	b, err := persist.Open(dir, persist.Options{Shards: cbShards, CommitWindow: window})
	if err != nil {
		return 0, err
	}
	store, err := shardstore.Open(&benchDisk{Backing: b, lat: cbDiskLat, windowed: window > 0})
	if err != nil {
		b.Close()
		return 0, err
	}
	defer store.Close()
	// Pre-generate outside the timed window: the bench measures commit
	// latency, not the workload generator.
	body := func(g, s, p int) []byte {
		return workload.Random(seed+int64((g*cbStreamsPerSession+s)*cbPutsPerStream+p), cbBodyBytes)
	}
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < cbStreamsPerSession; s++ {
				rec := make(shardstore.Recipe, 0, cbPutsPerStream)
				for p := 0; p < cbPutsPerStream; p++ {
					data := body(g, s, p)
					if _, _, err := store.Put(data); err != nil {
						errs[g] = err
						return
					}
					rec = append(rec, dedup.Sum(data))
				}
				if err := store.CommitRecipe(fmt.Sprintf("s-%d-%d", g, s), rec); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	for g, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("session %d: %w", g, err)
		}
	}
	for g := 0; g < sessions; g++ {
		for s := 0; s < cbStreamsPerSession; s++ {
			name := fmt.Sprintf("s-%d-%d", g, s)
			r, ok := store.Recipe(name)
			if !ok {
				return 0, fmt.Errorf("recipe %s missing after commit", name)
			}
			got, err := store.Reconstruct(r)
			if err != nil {
				return 0, fmt.Errorf("reconstruct %s: %w", name, err)
			}
			var want []byte
			for p := 0; p < cbPutsPerStream; p++ {
				want = append(want, body(g, s, p)...)
			}
			if string(got) != string(want) {
				return 0, fmt.Errorf("recipe %s restored wrong bytes", name)
			}
		}
	}
	return secs, nil
}

// runCommitBench writes BENCH_commit.json: sessions/sec through the
// store's commit path at fsync always, 1 vs 16 concurrent sessions,
// commit window off vs on. The cells alternate within each iteration
// and report the median, for the same drift reasons as the cluster
// bench.
func runCommitBench(path string, seed int64) error {
	// Same 1-CPU cgroup artifact as runClusterBench: the concurrent
	// sessions' goroutines need the P not to park behind every fsync.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	windowMS := cbWindow.Seconds() * 1000
	cells := []*commitBenchCell{
		{Sessions: 1, WindowMS: 0},
		{Sessions: 1, WindowMS: windowMS},
		{Sessions: cbSessions, WindowMS: 0},
		{Sessions: cbSessions, WindowMS: windowMS},
	}
	for it := 0; it < cbIters; it++ {
		for _, cell := range cells {
			window := time.Duration(cell.WindowMS * float64(time.Millisecond))
			secs, err := commitBenchIterate(cell.Sessions, window, seed)
			if err != nil {
				return fmt.Errorf("%d sessions, window %v: %w", cell.Sessions, window, err)
			}
			cell.IterSeconds = append(cell.IterSeconds, secs)
			fmt.Fprintf(human, "  [%2d session(s), window %4s, iter %d] %d streams in %.3fs\n",
				cell.Sessions, window, it+1, cell.Sessions*cbStreamsPerSession, secs)
		}
	}
	perS := func(c *commitBenchCell) float64 { return c.StreamsPerS }
	for _, cell := range cells {
		med := append([]float64(nil), cell.IterSeconds...)
		sort.Float64s(med)
		cell.Seconds = med[len(med)/2]
		cell.Streams = cell.Sessions * cbStreamsPerSession
		cell.StreamsPerS = float64(cell.Streams) / cell.Seconds
		fmt.Fprintf(human, "%2d session(s), window %.0fms: median %.3fs (%.1f streams/s)\n",
			cell.Sessions, cell.WindowMS, cell.Seconds, cell.StreamsPerS)
	}
	res := commitBenchResult{
		Fsync:             "always",
		BodyKB:            cbBodyBytes >> 10,
		PutsPerStream:     cbPutsPerStream,
		StreamsPerSession: cbStreamsPerSession,
		Shards:            cbShards,
		SimDiskMs:         cbDiskLat.Seconds() * 1000,
		WindowMs:          windowMS,
		Iterations:        cbIters,
		Speedup1:          perS(cells[1]) / perS(cells[0]),
		Speedup16:         perS(cells[3]) / perS(cells[2]),
	}
	for _, cell := range cells {
		res.Cells = append(res.Cells, *cell)
	}
	fmt.Fprintf(human, "group-commit speedup at %d sessions: %.2fx (single-session cost %.2fx)\n",
		cbSessions, res.Speedup16, res.Speedup1)
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(human, "wrote %s\n", path)
	return nil
}

// pchunkRow is one engine × worker-count cell of BENCH_pchunk.json.
type pchunkRow struct {
	Engine    string  `json:"engine"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"` // median per split
	MBPerS    float64 `json:"mb_per_s"`
	Speedup   float64 `json:"speedup"` // vs the sequential engine
	Identical bool    `json:"identical"`
}

// pchunkResult is the BENCH_pchunk.json schema. RabinSpeedup4 is the
// acceptance number: Rabin is chunking-bound (the regime the paper
// offloads to the GPU), so it is where region parallelism must pay;
// FastCDC at ~GB/s per core is close to memory-bound and reported for
// context. MaxProcs records the cores the run actually had — on a
// single-core host every speedup is ~1x by construction.
type pchunkResult struct {
	SizeMB        int         `json:"size_mb"`
	MaxProcs      int         `json:"maxprocs"`
	Iterations    int         `json:"iterations"`
	Rows          []pchunkRow `json:"rows"`
	RabinSpeedup4 float64     `json:"rabin_speedup_4"`
	Identical     bool        `json:"identical"`
}

// runPchunkBench writes BENCH_pchunk.json: single-stream Split
// throughput of chunk.Parallel at 1/4/8 workers against the
// sequential engine, for both engines, with every parallel run
// checked chunk-for-chunk identical to the sequential cut.
func runPchunkBench(path string, size int, seed int64) error {
	const iters = 3
	data := workload.Random(seed, size)
	engines := []struct {
		name string
		spec chunk.Spec
	}{
		{"rabin", chunk.DefaultSpec()},
		{"fastcdc", chunk.FastCDCSpec(8 << 10)},
	}
	res := pchunkResult{
		SizeMB:     size >> 20,
		MaxProcs:   runtime.GOMAXPROCS(0),
		Iterations: iters,
		Identical:  true,
	}
	timeSplit := func(split func() []chunk.Chunk) (float64, []chunk.Chunk) {
		var chunks []chunk.Chunk
		times := make([]float64, 0, iters)
		for i := 0; i < iters; i++ {
			start := time.Now()
			chunks = split()
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2], chunks
	}
	for _, e := range engines {
		inner, err := chunk.New(e.spec)
		if err != nil {
			return err
		}
		baseSecs, baseChunks := timeSplit(func() []chunk.Chunk { return inner.Split(data) })
		fmt.Fprintf(human, "%-7s sequential: %d chunks, %.3fs (%.1f MB/s)\n",
			e.name, len(baseChunks), baseSecs, float64(size)/(1<<20)/baseSecs)
		for _, workers := range []int{1, 4, 8} {
			p := chunk.NewParallel(inner, workers)
			secs, chunks := timeSplit(func() []chunk.Chunk { return p.Split(data) })
			identical := len(chunks) == len(baseChunks)
			if identical {
				for i := range chunks {
					if chunks[i] != baseChunks[i] {
						identical = false
						break
					}
				}
			}
			row := pchunkRow{
				Engine:    e.name,
				Workers:   workers,
				Seconds:   secs,
				MBPerS:    float64(size) / (1 << 20) / secs,
				Speedup:   baseSecs / secs,
				Identical: identical,
			}
			res.Rows = append(res.Rows, row)
			res.Identical = res.Identical && identical
			if e.name == "rabin" && workers == 4 {
				res.RabinSpeedup4 = row.Speedup
			}
			fmt.Fprintf(human, "%-7s %d worker(s): %.3fs (%.1f MB/s, %.2fx), identical=%v\n",
				e.name, workers, secs, row.MBPerS, row.Speedup, identical)
		}
	}
	if !res.Identical {
		return fmt.Errorf("parallel chunking diverged from the sequential cut (see %s rows)", path)
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(human, "wrote %s\n", path)
	return nil
}
