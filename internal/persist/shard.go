package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// diskShard is one stripe of the durable backing: an append-only set
// of container files plus a write-ahead log, both under
// <data>/shard-NNNN/. Chunk bytes are written to the open container
// first, then the index insert is journaled, so a WAL record never
// survives a crash that lost its bytes without recovery noticing (the
// record's range falls past the container's end and replay stops
// there). Compaction drops whole container files: the slot stays (nil
// in the slice, so later containers keep their numbers) and the WAL is
// checkpointed first, so no surviving record ever references a dropped
// file.
type diskShard struct {
	id            int
	dir           string
	containerSize int64
	always        bool // FsyncAlways: fsync at every Commit
	// grouped defers Commit's fsync to the backing's group-commit
	// syncer; the store waits on Backing.Barrier before acking instead.
	// Directory syncs (container rolls) still happen inline — the group
	// round only syncs file contents.
	grouped bool
	verify  bool // re-hash every chunk during Recover
	met     *pmetrics

	mu         sync.Mutex // guards all fields below
	span       *obs.Span  // active request span for I/O attribution
	wal        *os.File
	walSize    int64            // bytes durably framed so far
	walBuf     []byte           // records staged since the last Commit
	walDirty   bool             // WAL has writes not yet fsynced
	containers []*containerFile // indexed by container number; nil = dropped
	recovered  bool
	// failed is set when a checkpoint died between closing the old WAL
	// and installing the new one: the shard fail-stops journal writes
	// with the original fault instead of a nil-file error.
	failed error
	// present mirrors the fingerprints with a live index entry
	// (recovered at open plus appended since, minus forgotten), for
	// Backing.Missing.
	present map[shardstore.Hash]struct{}
}

// containerFile is one append-only container on disk.
type containerFile struct {
	f     *os.File
	size  int64
	dirty bool // has writes not yet fsynced
}

const (
	walName         = "wal"
	walTmpName      = walName + ".tmp"
	containerFormat = "c-%06d.dat"
)

func newDiskShard(dir string, id int, containerSize int64, always, grouped, verify bool, met *pmetrics) *diskShard {
	return &diskShard{
		id:            id,
		dir:           filepath.Join(dir, fmt.Sprintf("shard-%04d", id)),
		containerSize: containerSize,
		always:        always,
		grouped:       grouped,
		verify:        verify,
		met:           met,
	}
}

// Recover opens the shard's files and replays the WAL against them:
// inserts and relocations are validated against the container bytes
// actually on disk, a torn or inconsistent tail is cut off (WAL
// truncated to the last clean record, containers truncated to the last
// journaled byte), and fn is called once per surviving index entry.
func (s *diskShard) Recover(fn func(h shardstore.Hash, ref shardstore.Ref, refcount int64) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.met.addRecoverSince(time.Now())
	if s.recovered {
		return fmt.Errorf("persist: shard %d recovered twice", s.id)
	}
	s.recovered = true
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	// A leftover checkpoint temp file means a crash hit mid-checkpoint,
	// before the atomic rename: the old WAL is authoritative.
	if err := os.Remove(filepath.Join(s.dir, walTmpName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := s.openContainers(); err != nil {
		return err
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.wal = wal
	raw, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return err
	}

	index := make(map[shardstore.Hash]shardstore.Ref)
	refcount := make(map[shardstore.Hash]int64)
	// watermarks[i] is the highest journaled byte of container i; bytes
	// past it were written but never made it into the surviving WAL
	// prefix, so they are cut off below.
	watermarks := make([]int64, len(s.containers))
	// validate checks a journaled location against the bytes on disk.
	// A reference to a hole in the container numbering is fail-stop,
	// not a torn tail: a checkpointed WAL never references a dropped
	// slot, so a nil slot below the highest container on disk means a
	// container file was lost externally — truncating the WAL there
	// would silently discard every later record and shrink intact
	// containers to match. Refuse to open instead.
	var lostContainer error
	validate := func(h shardstore.Hash, ci int, off, length int64) bool {
		if ci >= 0 && ci < len(s.containers) && s.containers[ci] == nil {
			lostContainer = fmt.Errorf("persist: shard %d WAL references container %d, whose file is missing", s.id, ci)
			return false
		}
		if ci < 0 || ci >= len(s.containers) ||
			off < 0 || length < 0 || off+length > s.containers[ci].size {
			return false
		}
		if s.verify {
			// Re-hash the chunk: catches bytes the filesystem lost in
			// ways the size check cannot see (zero-filled pages after
			// power loss under relaxed fsync).
			buf := make([]byte, length)
			if _, rerr := s.containers[ci].f.ReadAt(buf, off); rerr != nil {
				return false
			}
			if dedup.Sum(buf) != h {
				return false
			}
		}
		return true
	}
	clean, err := scanRecords(raw, func(body []byte) error {
		if len(body) == 0 {
			return errTornRecord
		}
		switch body[0] {
		case recInsert:
			h, ci, off, length, derr := decodeInsert(body)
			if derr != nil {
				return errTornRecord
			}
			if !validate(h, ci, off, length) {
				if lostContainer != nil {
					return lostContainer
				}
				// The record refers to bytes that never reached the
				// container file: the tail of history is lost.
				return errTornRecord
			}
			if _, dup := index[h]; dup {
				return errTornRecord
			}
			index[h] = shardstore.Ref{Shard: s.id, Container: ci, Offset: off, Length: length}
			refcount[h] = 1
			if off+length > watermarks[ci] {
				watermarks[ci] = off + length
			}
		case recRefDelta:
			h, delta, derr := decodeRefDelta(body)
			if derr != nil {
				return errTornRecord
			}
			if _, ok := index[h]; !ok {
				return errTornRecord
			}
			refcount[h] += delta
			if refcount[h] < 1 {
				// A delete released the entry; the bytes stay until
				// compaction reclaims them.
				delete(index, h)
				delete(refcount, h)
			}
		case recRelocate:
			h, ci, off, length, derr := decodeRelocate(body)
			if derr != nil {
				return errTornRecord
			}
			ref, ok := index[h]
			if !ok || ref.Length != length {
				return errTornRecord
			}
			if !validate(h, ci, off, length) {
				if lostContainer != nil {
					return lostContainer
				}
				// The moved copy never reached disk: the move (and
				// everything after it) is lost; the entry keeps its old
				// location, whose container still exists — unlink only
				// happens after a checkpoint that survives replay.
				return errTornRecord
			}
			index[h] = shardstore.Ref{Shard: s.id, Container: ci, Offset: off, Length: length}
			if off+length > watermarks[ci] {
				watermarks[ci] = off + length
			}
		default:
			return errTornRecord
		}
		return nil
	})
	if err != nil {
		return err
	}
	if int64(clean) < int64(len(raw)) {
		if err := s.wal.Truncate(int64(clean)); err != nil {
			return err
		}
	}
	s.walSize = int64(clean)
	for i, cf := range s.containers {
		if cf != nil && cf.size > watermarks[i] {
			if err := cf.f.Truncate(watermarks[i]); err != nil {
				return err
			}
			cf.size = watermarks[i]
		}
	}
	s.present = make(map[shardstore.Hash]struct{}, len(index))
	for h, ref := range index {
		s.present[h] = struct{}{}
		if err := fn(h, ref, refcount[h]); err != nil {
			return err
		}
	}
	return nil
}

// SetSpan installs (or, with nil, clears) the span the shard's journal
// writes and fsyncs should attach to — shardstore's spanSink hook. The
// store calls it under the stripe lock that serializes this shard's
// mutations, bracketing exactly one request's backing calls.
func (s *diskShard) SetSpan(sp *obs.Span) {
	s.mu.Lock()
	s.span = sp
	s.mu.Unlock()
}

// has reports whether the shard holds a chunk for h.
func (s *diskShard) has(h shardstore.Hash) bool {
	s.mu.Lock()
	_, ok := s.present[h]
	s.mu.Unlock()
	return ok
}

// Forget removes a dropped entry from the presence set (the journal
// side is the refcount decrement the store already staged).
func (s *diskShard) Forget(h shardstore.Hash) {
	s.mu.Lock()
	delete(s.present, h)
	s.mu.Unlock()
}

// openContainers opens every existing container file by its number.
// The sequence may have holes where compaction dropped containers;
// dropped slots stay nil so surviving containers keep their numbers.
func (s *diskShard) openContainers() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	nums := make(map[int]string)
	max := -1
	for _, e := range entries {
		var n int
		if !e.IsDir() {
			if _, err := fmt.Sscanf(e.Name(), containerFormat, &n); err == nil {
				if want := fmt.Sprintf(containerFormat, n); e.Name() == want {
					nums[n] = e.Name()
					if n > max {
						max = n
					}
				}
			}
		}
	}
	s.containers = make([]*containerFile, max+1)
	for n, name := range nums {
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return err
		}
		s.containers[n] = &containerFile{f: f, size: st.Size()}
	}
	return nil
}

// pack writes data into the open container (rolling when full) and
// returns where it landed; the caller stages the matching WAL record.
func (s *diskShard) pack(data []byte) (int, int64, error) {
	cur := len(s.containers) - 1
	if cur < 0 || s.containers[cur].size+int64(len(data)) > s.containerSize {
		f, err := os.OpenFile(
			filepath.Join(s.dir, fmt.Sprintf(containerFormat, len(s.containers))),
			os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			return 0, 0, err
		}
		if s.always {
			if err := syncDir(s.dir); err != nil {
				_ = f.Close()
				return 0, 0, err
			}
		}
		s.containers = append(s.containers, &containerFile{f: f})
		cur = len(s.containers) - 1
	}
	cf := s.containers[cur]
	if _, err := cf.f.WriteAt(data, cf.size); err != nil {
		// cf.size is not advanced: the partial bytes sit past the
		// watermark and are invisible to reads and recovery.
		return 0, 0, err
	}
	off := cf.size
	cf.size += int64(len(data))
	cf.dirty = true
	return cur, off, nil
}

// Append packs data into the open container (rolling when full) and
// stages the insert record; both become durable at the next Commit
// under the shard's fsync policy.
func (s *diskShard) Append(h shardstore.Hash, data []byte) (int, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, off, err := s.pack(data)
	if err != nil {
		return 0, 0, err
	}
	s.walBuf = appendRecord(s.walBuf, encodeInsert(h, ci, off, int64(len(data))))
	s.met.walRecords.Add(1)
	s.present[h] = struct{}{}
	return ci, off, nil
}

// Relocate re-packs a surviving chunk's bytes during compaction and
// stages the relocation record. The entry stays present; only its
// location changes.
func (s *diskShard) Relocate(h shardstore.Hash, data []byte) (int, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, off, err := s.pack(data)
	if err != nil {
		return 0, 0, err
	}
	s.walBuf = appendRecord(s.walBuf, encodeRelocate(h, ci, off, int64(len(data))))
	s.met.walRecords.Add(1)
	return ci, off, nil
}

// LogRefDelta stages a refcount-change record.
func (s *diskShard) LogRefDelta(h shardstore.Hash, delta int64) error {
	s.mu.Lock()
	s.walBuf = appendRecord(s.walBuf, encodeRefDelta(h, delta))
	s.mu.Unlock()
	s.met.walRecords.Add(1)
	return nil
}

// Commit writes the staged WAL records through to the kernel and, under
// FsyncAlways, fsyncs the dirty container files and the WAL (data
// before journal, so a synced record always has its bytes). Under group
// commit the fsync is deferred to the backing's shared syncer round,
// which the store waits for (Backing.Barrier) before acking.
func (s *diskShard) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if s.always && !s.grouped {
		return s.fsyncLocked()
	}
	return nil
}

// flushLocked writes staged records to the WAL file.
func (s *diskShard) flushLocked() error {
	if err := s.met.syncFailed(); err != nil {
		return err
	}
	if len(s.walBuf) == 0 {
		return nil
	}
	if s.failed != nil {
		return fmt.Errorf("persist: shard %d journal unavailable after failed checkpoint: %w", s.id, s.failed)
	}
	if s.wal == nil {
		return errClosed
	}
	if s.span != nil {
		defer s.span.Child("wal_append",
			obs.Int("shard", int64(s.id)), obs.Int("bytes", int64(len(s.walBuf)))).End()
	}
	if _, err := s.wal.WriteAt(s.walBuf, s.walSize); err != nil {
		// walSize is not advanced: the next flush rewrites the region
		// and recovery ignores any torn tail it may have left.
		return err
	}
	s.walSize += int64(len(s.walBuf))
	s.met.flushedBytes.Add(int64(len(s.walBuf)))
	s.walBuf = s.walBuf[:0]
	s.walDirty = true
	return nil
}

// fsyncLocked syncs every dirty file, containers first.
func (s *diskShard) fsyncLocked() error {
	for _, cf := range s.containers {
		if cf != nil && cf.dirty {
			if err := s.met.timedSync(cf.f, s.span); err != nil {
				return err
			}
			cf.dirty = false
		}
	}
	if s.walDirty {
		if err := s.met.timedSync(s.wal, s.span); err != nil {
			return err
		}
		s.walDirty = false
	}
	return nil
}

// sync flushes and fsyncs everything (the interval ticker, Sync and
// Close path).
func (s *diskShard) sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.fsyncLocked()
}

// Checkpoint is the compaction commit point. In order: (1) every
// staged record — the relocations — and every dirty container is
// fsynced, so the moved copies are durable under the OLD journal; (2)
// a fresh journal describing exactly the live entries is written to a
// temp file, fsynced, and atomically renamed over the WAL; (3) only
// then are the victim container files unlinked. A crash before the
// rename recovers from the old WAL with every container still on disk;
// a crash after it recovers from the new WAL, which references none of
// the dropped containers. There is no reachable state in between.
func (s *diskShard) Checkpoint(live []shardstore.CheckpointEntry, drop []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.fsyncLocked(); err != nil {
		return err
	}
	var buf []byte
	for _, e := range live {
		buf = appendRecord(buf, encodeInsert(e.Hash, e.Ref.Container, e.Ref.Offset, e.Ref.Length))
		if e.Refcount > 1 {
			buf = appendRecord(buf, encodeRefDelta(e.Hash, e.Refcount-1))
		}
	}
	wal, failStop, err := swapJournal(s.dir, filepath.Join(s.dir, walName), s.wal, buf)
	if err != nil {
		if failStop {
			s.wal, s.failed = nil, err
		}
		return err
	}
	s.wal = wal
	s.walSize = int64(len(buf))
	s.walDirty = false
	s.met.checkpoints.Add(1)
	for _, ci := range drop {
		if ci < 0 || ci >= len(s.containers)-1 || s.containers[ci] == nil {
			continue
		}
		if err := s.containers[ci].f.Close(); err != nil {
			return err
		}
		if err := os.Remove(filepath.Join(s.dir, fmt.Sprintf(containerFormat, ci))); err != nil {
			return err
		}
		s.containers[ci] = nil
	}
	return syncDir(s.dir)
}

// Read returns the bytes at a stored location via positional read.
func (s *diskShard) Read(container int, offset, length int64) ([]byte, error) {
	s.mu.Lock()
	if container < 0 || container >= len(s.containers) || s.containers[container] == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("persist: shard %d container %d out of range", s.id, container)
	}
	cf := s.containers[container]
	if offset < 0 || length < 0 || offset+length > cf.size {
		s.mu.Unlock()
		return nil, fmt.Errorf("persist: shard %d range [%d, %d) outside container %d", s.id, offset, offset+length, container)
	}
	s.mu.Unlock()
	buf := make([]byte, length)
	if _, err := cf.f.ReadAt(buf, offset); err != nil {
		return nil, err
	}
	return buf, nil
}

// Containers reports how many container slots the shard has opened
// (including slots dropped by compaction, so numbers stay stable).
func (s *diskShard) Containers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.containers)
}

// ContainerLen reports container i's on-disk byte count, -1 for a slot
// compaction dropped.
func (s *diskShard) ContainerLen(i int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.containers) || s.containers[i] == nil {
		return -1
	}
	return s.containers[i].size
}

// close syncs and releases the shard's files.
func (s *diskShard) close() error {
	err := s.sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cf := range s.containers {
		if cf == nil {
			continue
		}
		if cerr := cf.f.Close(); err == nil {
			err = cerr
		}
	}
	s.containers = nil
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	return err
}

// syncDir fsyncs a directory so a just-created file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ shardstore.ShardBacking = (*diskShard)(nil)

// errClosed reports use after Close.
var errClosed = errors.New("persist: backing is closed")
