package chunker

import (
	"fmt"
	"math/rand"

	"shredder/internal/rabin"
)

// FixedSplit cuts data into fixed-size blocks — the original HDFS
// behaviour Inc-HDFS replaces (§6.2), kept as the comparison baseline.
// A single inserted byte shifts every later block, which is exactly the
// failure mode content-defined chunking avoids.
func FixedSplit(data []byte, blockSize int) []Chunk {
	if blockSize < 1 {
		panic("chunker: fixed block size must be positive")
	}
	var chunks []Chunk
	total := int64(len(data))
	for off := int64(0); off < total; off += int64(blockSize) {
		end := off + int64(blockSize)
		if end > total {
			end = total
		}
		chunks = append(chunks, Chunk{Offset: off, Length: end - off, Forced: true})
	}
	return chunks
}

// SkipSplit is Split with the standard minimum-size skip optimization:
// after each cut the scanner jumps directly to the first position where
// a boundary could legally end, refilling the window from MinSize−Window
// bytes before it. The paper notes (§2.1) that practical schemes skip
// min bytes after finding a marker; because a boundary decision depends
// only on the window contents, the result is bit-identical to Split —
// asserted by TestSkipSplitEqualsSplit — while scanning
// MinSize−Window fewer bytes per chunk.
func (c *Chunker) SkipSplit(data []byte) []Chunk {
	min := int64(c.params.MinSize)
	if min == 0 {
		min = 1
	}
	max := int64(c.params.MaxSize)
	win := int64(c.params.Window)
	if min <= win {
		// Nothing to skip; the plain scanner is already optimal.
		return c.Split(data)
	}
	var chunks []Chunk
	w := rabin.NewWindow(c.table)
	total := int64(len(data))
	start := int64(0)
	// i indexes the byte being slid in; a cut at end e means e = i+1.
	i := int64(0)
	refill := func(from int64) {
		w.Reset()
		lo := from - win
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < from; j++ {
			w.Slide(data[j])
		}
		i = from
	}
	// First legal cut ends at min (or never, for short streams).
	first := min - 1
	if first > total {
		first = total
	}
	refill(first)
	for i < total {
		fp := w.Slide(data[i])
		end := i + 1
		i++
		if w.Full() && c.IsBoundary(fp) && end-start >= min {
			chunks = append(chunks, Chunk{Offset: start, Length: end - start, Cut: fp})
			start = end
			next := start + min - 1
			if next > total {
				next = total
			}
			refill(next)
			continue
		}
		if max > 0 && end-start == max {
			chunks = append(chunks, Chunk{Offset: start, Length: max, Forced: true})
			start = end
			next := start + min - 1
			if next > total {
				next = total
			}
			refill(next)
		}
	}
	if total > start {
		chunks = append(chunks, Chunk{Offset: start, Length: total - start, Forced: true})
	}
	return chunks
}

// SampleByteParams configures the sampling-based chunker of §2.1's
// discussion (EndRE's SAMPLEBYTE): instead of fingerprinting a window
// at every offset, a single byte is inspected and a boundary declared
// when it belongs to a marker set. Far cheaper than Rabin, but suited
// only to small chunks — larger targets skip so much context that
// deduplication opportunities are missed, which is why Shredder keeps
// Rabin fingerprinting and accelerates it instead.
type SampleByteParams struct {
	// MarkedBytes is the size of the marker set; the expected chunk
	// size is 256/MarkedBytes + SkipAfterMatch.
	MarkedBytes int
	// SkipAfterMatch is the minimum chunk size; the scanner jumps this
	// far after each boundary (EndRE uses p/2 for target size p).
	SkipAfterMatch int
	// MaxSize forces a boundary (0 = none).
	MaxSize int
	// Seed selects which byte values are markers.
	Seed int64
}

// Validate checks the parameters.
func (p SampleByteParams) Validate() error {
	if p.MarkedBytes < 1 || p.MarkedBytes > 128 {
		return fmt.Errorf("chunker: marked bytes %d outside [1, 128]", p.MarkedBytes)
	}
	if p.SkipAfterMatch < 0 {
		return fmt.Errorf("chunker: negative skip")
	}
	if p.MaxSize > 0 && p.MaxSize <= p.SkipAfterMatch {
		return fmt.Errorf("chunker: max %d not above skip %d", p.MaxSize, p.SkipAfterMatch)
	}
	return nil
}

// SampleByte is the sampling chunker. It is stateless and safe for
// concurrent use.
type SampleByte struct {
	params SampleByteParams
	marked [256]bool
}

// NewSampleByte builds a sampling chunker with a deterministic marker
// set derived from Seed.
func NewSampleByte(p SampleByteParams) (*SampleByte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &SampleByte{params: p}
	rng := rand.New(rand.NewSource(p.Seed))
	for n := 0; n < p.MarkedBytes; {
		b := byte(rng.Intn(256))
		if !s.marked[b] {
			s.marked[b] = true
			n++
		}
	}
	return s, nil
}

// Params returns the configuration.
func (s *SampleByte) Params() SampleByteParams { return s.params }

// Split cuts data with single-byte sampling.
func (s *SampleByte) Split(data []byte) []Chunk {
	var chunks []Chunk
	total := int64(len(data))
	start := int64(0)
	max := int64(s.params.MaxSize)
	i := int64(s.params.SkipAfterMatch)
	if i < 1 {
		i = 1
	}
	i-- // index of the first byte inspected
	for i < total {
		end := i + 1
		switch {
		case s.marked[data[i]]:
			chunks = append(chunks, Chunk{Offset: start, Length: end - start})
			start = end
			i = start + int64(s.params.SkipAfterMatch) - 1
			if int64(s.params.SkipAfterMatch) < 1 {
				i = start
			}
			continue
		case max > 0 && end-start == max:
			chunks = append(chunks, Chunk{Offset: start, Length: max, Forced: true})
			start = end
			i = start + int64(s.params.SkipAfterMatch) - 1
			if int64(s.params.SkipAfterMatch) < 1 {
				i = start
			}
			continue
		}
		i++
	}
	if total > start {
		chunks = append(chunks, Chunk{Offset: start, Length: total - start, Forced: true})
	}
	return chunks
}
