// Package analyzers holds the shredlint passes: each Analyzer compiles
// one of the shredder store's behavioral invariants into a build-time
// check. See README.md in the parent directory for the catalogue.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"shredder/tools/shredlint/analysis"
)

// All is the multichecker suite, in the order findings are documented.
var All = []*analysis.Analyzer{
	Durability,
	StripeLock,
	ObsNil,
	WireSym,
	ErrHygiene,
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is error or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "error" {
		return true
	}
	return types.Implements(t, errIface)
}

// calleeName returns the bare name a call invokes: f(...) -> "f",
// x.m(...) -> "m". Empty for indirect calls through expressions.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// calleeObj resolves the object a call invokes, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns t's *types.Named after pointer stripping, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// withStack walks the files depth-first, passing each node along with
// its ancestor stack (stack[len-1] == n).
func withStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			fn(n, stack)
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost enclosing
// function (decl or literal) on the stack, or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// minPos records the earliest occurrence of each key.
func minPos(m map[string]token.Pos, key string, pos token.Pos) {
	if old, ok := m[key]; !ok || pos < old {
		m[key] = pos
	}
}
