// Package gpu models the GPU device Shredder offloads chunking to.
//
// Because Go has no native GPU support (and this reproduction must be
// hardware-independent), the package substitutes the paper's NVidia
// Tesla C2050 with a deterministic performance model: streaming
// multiprocessors executing warps in SIMT fashion, a GDDR5-style global
// memory organized into banks and rows with sense amplifiers (so ACT /
// PRE row activations and bank conflicts are first-class, as in §2.3 of
// the paper), and per-SM shared memory. The chunking kernel computes
// real Rabin-fingerprint boundaries over real bytes (bit-identical to
// the sequential chunker); only *time* is simulated, by charging every
// modeled memory access and instruction with cycles.
package gpu

// Spec describes the simulated device. The defaults reproduce Table 1
// of the paper (NVidia Tesla C2050, Fermi).
type Spec struct {
	// Name identifies the modeled device.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// SPsPerSM is the number of scalar processor cores per SM.
	SPsPerSM int
	// WarpSize is the SIMT scheduling width in threads.
	WarpSize int
	// ClockHz is the SP clock rate.
	ClockHz float64
	// GlobalMemBytes is the size of the off-chip device memory.
	GlobalMemBytes int64
	// MemBandwidth is the peak global memory bandwidth in bytes/second.
	MemBandwidth float64
	// MemLatencyMinCycles and MemLatencyMaxCycles bound the global
	// memory access latency (Table 1: 400–600 cycles).
	MemLatencyMinCycles int
	MemLatencyMaxCycles int
	// SharedMemPerSM is the low-latency on-chip shared memory per SM.
	SharedMemPerSM int
	// RegistersPerSM is the register file size per SM.
	RegistersPerSM int
	// GFlops is the peak single-precision throughput (Table 1).
	GFlops float64
}

// C2050 returns the specification of the paper's evaluation GPU
// (Table 1 and §5.3).
func C2050() Spec {
	return Spec{
		Name:                "Simulated NVidia Tesla C2050 (Fermi)",
		SMs:                 14,
		SPsPerSM:            32,
		WarpSize:            32,
		ClockHz:             1.15e9,
		GlobalMemBytes:      2600 << 20, // 2.6 GB
		MemBandwidth:        144e9,
		MemLatencyMinCycles: 400,
		MemLatencyMaxCycles: 600,
		SharedMemPerSM:      48 << 10,
		RegistersPerSM:      32768,
		GFlops:              1030,
	}
}

// Cores returns the total number of scalar processors.
func (s Spec) Cores() int { return s.SMs * s.SPsPerSM }

// Validate checks the spec for consistency.
func (s Spec) Validate() error {
	switch {
	case s.SMs < 1, s.SPsPerSM < 1, s.WarpSize < 1:
		return errSpec("SM/SP/warp counts must be positive")
	case s.ClockHz <= 0:
		return errSpec("clock rate must be positive")
	case s.GlobalMemBytes <= 0:
		return errSpec("global memory size must be positive")
	case s.MemBandwidth <= 0:
		return errSpec("memory bandwidth must be positive")
	case s.SharedMemPerSM <= 0:
		return errSpec("shared memory size must be positive")
	}
	return nil
}

type errSpec string

func (e errSpec) Error() string { return "gpu: invalid spec: " + string(e) }
