package mapreduce

import "time"

// ClusterModel converts work metrics into modeled job runtime on the
// paper's 20-node Hadoop cluster (§6.3). Figure 15's speedups are
// ratios of these times, so only the relative weights matter; the
// constants are calibrated to Hadoop-era task costs (multi-second task
// startup, tens of MB/s per-task scan rates).
type ClusterModel struct {
	// MapTaskOverhead is the fixed scheduling + JVM launch cost per
	// executed map task.
	MapTaskOverhead time.Duration
	// MapNsPerByte is the map function's per-byte processing cost.
	MapNsPerByte float64
	// CombineNodeCost is the cost of recomputing one contraction-tree
	// node.
	CombineNodeCost time.Duration
	// MemoLookupCost is paid per task slot in incremental runs
	// (querying the memoization server), whether it hits or misses.
	MemoLookupCost time.Duration
	// ReduceCost is the fixed final-reduce cost per run.
	ReduceCost time.Duration
	// Slots is the number of parallel task slots in the cluster.
	Slots int
}

// DefaultClusterModel returns the calibrated 20-node cluster.
func DefaultClusterModel() ClusterModel {
	return ClusterModel{
		MapTaskOverhead: 1500 * time.Millisecond,
		MapNsPerByte:    25, // ~40 MB/s per task, Hadoop-era scan rate
		CombineNodeCost: 400 * time.Millisecond,
		MemoLookupCost:  5 * time.Millisecond,
		ReduceCost:      250 * time.Millisecond,
		Slots:           40, // 20 nodes x 2 slots
	}
}

// JobTime models the wall time of a run with the given metrics,
// incremental reports whether the memoization layer was active.
func (m ClusterModel) JobTime(met Metrics, incremental bool) time.Duration {
	slots := m.Slots
	if slots < 1 {
		slots = 1
	}
	// Map phase: executed tasks spread over the slots.
	mapWork := float64(met.MapExecuted)*float64(m.MapTaskOverhead) +
		float64(met.MapBytesExecuted)*m.MapNsPerByte
	mapPhase := time.Duration(mapWork / float64(slots))
	// Combine phase: recomputed nodes, tree levels parallelize well, so
	// divide by slots too.
	combinePhase := time.Duration(float64(met.CombineExecuted) * float64(m.CombineNodeCost) / float64(slots))
	total := mapPhase + combinePhase + m.ReduceCost
	if incremental {
		total += time.Duration(float64(met.MapTasks) * float64(m.MemoLookupCost) / float64(slots))
	}
	return total
}

// Speedup returns the Figure 15 quantity: modeled vanilla-Hadoop time
// over modeled Incoop time.
func (m ClusterModel) Speedup(full, inc Metrics) float64 {
	f := m.JobTime(full, false)
	i := m.JobTime(inc, true)
	if i <= 0 {
		return 0
	}
	return f.Seconds() / i.Seconds()
}
