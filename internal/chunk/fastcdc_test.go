package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func mustFastCDC(t testing.TB, spec Spec) *FastCDC {
	t.Helper()
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return e.(*FastCDC)
}

// TestFastCDCInvariants checks the contract every engine must honor:
// chunks tile the input exactly, and sizes respect the configured
// bounds (only the final chunk may undershoot MinSize).
func TestFastCDCInvariants(t *testing.T) {
	spec := FastCDCSpec(4 << 10)
	e := mustFastCDC(t, spec)
	data := randomData(1, 1<<20+4321)
	chunks := e.Split(data)
	if len(chunks) == 0 {
		t.Fatal("no chunks")
	}
	var off int64
	for i, c := range chunks {
		if c.Offset != off {
			t.Fatalf("chunk %d: offset %d, want %d", i, c.Offset, off)
		}
		if c.Length <= 0 || c.Length > int64(spec.MaxSize) {
			t.Fatalf("chunk %d: length %d outside (0, %d]", i, c.Length, spec.MaxSize)
		}
		if i < len(chunks)-1 && !c.Forced && c.Length <= int64(spec.MinSize) {
			t.Fatalf("chunk %d: content-defined boundary below min size (%d)", i, c.Length)
		}
		if !c.Forced && c.Fingerprint == 0 {
			t.Fatalf("chunk %d: content boundary with zero fingerprint", i)
		}
		off = c.End()
	}
	if off != int64(len(data)) {
		t.Fatalf("chunks cover %d bytes, want %d", off, len(data))
	}
}

// TestFastCDCAverageSize checks normalized chunking actually lands the
// size distribution near the target.
func TestFastCDCAverageSize(t *testing.T) {
	spec := FastCDCSpec(4 << 10)
	e := mustFastCDC(t, spec)
	data := randomData(2, 8<<20)
	chunks := e.Split(data)
	avg := float64(len(data)) / float64(len(chunks))
	if avg < float64(spec.AvgSize)/2 || avg > float64(spec.AvgSize)*2 {
		t.Fatalf("mean chunk size %.0f too far from target %d", avg, spec.AvgSize)
	}
}

// TestFastCDCDeterminism: same input, same spec, same chunks — and a
// different seed cuts differently (the anti-fingerprinting knob).
func TestFastCDCDeterminism(t *testing.T) {
	data := randomData(3, 1<<20)
	a := mustFastCDC(t, FastCDCSpec(4<<10)).Split(data)
	b := mustFastCDC(t, FastCDCSpec(4<<10)).Split(data)
	if len(a) != len(b) {
		t.Fatalf("same spec cut %d vs %d chunks", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs between identical engines", i)
		}
	}
	seeded := FastCDCSpec(4 << 10)
	seeded.Seed = 12345
	c := mustFastCDC(t, seeded).Split(data)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeded gear table produced identical boundaries")
	}
}

// TestFastCDCBoundaryResync is the property dedup depends on: after an
// edit near the start of a stream, boundaries realign and the shared
// suffix chunks identically.
func TestFastCDCBoundaryResync(t *testing.T) {
	e := mustFastCDC(t, FastCDCSpec(4<<10))
	suffix := randomData(4, 1<<20)
	a := append(randomData(5, 64<<10), suffix...)
	b := append(randomData(6, 80<<10), suffix...)
	tails := func(data []byte) map[int64]bool {
		m := make(map[int64]bool)
		for _, c := range e.Split(data) {
			m[int64(len(data))-c.End()] = true // distance from stream end
		}
		return m
	}
	ta, tb := tails(a), tails(b)
	shared := 0
	for k := range ta {
		if tb[k] {
			shared++
		}
	}
	if shared < len(ta)/2 {
		t.Fatalf("only %d of %d boundaries realigned after prefix edit", shared, len(ta))
	}
}

// TestFastCDCNormalizationTightensSpread: higher normalization levels
// must reduce the size spread around the target.
func TestFastCDCNormalizationTightensSpread(t *testing.T) {
	data := randomData(7, 8<<20)
	spread := func(level int) float64 {
		spec := FastCDCSpec(4 << 10)
		spec.Normalization = level
		chunks := mustFastCDC(t, spec).Split(data)
		var sum, sumSq float64
		for _, c := range chunks {
			sum += float64(c.Length)
			sumSq += float64(c.Length) * float64(c.Length)
		}
		n := float64(len(chunks))
		mean := sum / n
		return sumSq/n - mean*mean // variance
	}
	if s0, s3 := spread(0), spread(3); s3 >= s0 {
		t.Fatalf("normalization 3 variance %.0f not below level 0's %.0f", s3, s0)
	}
}

// TestFastCDCShortStreams: inputs at and below MinSize come back as
// one forced chunk; empty input yields none.
func TestFastCDCShortStreams(t *testing.T) {
	spec := FastCDCSpec(4 << 10)
	e := mustFastCDC(t, spec)
	if got := e.Split(nil); len(got) != 0 {
		t.Fatalf("empty input cut %d chunks", len(got))
	}
	for _, n := range []int{1, spec.MinSize, spec.MinSize + 1} {
		data := randomData(8, n)
		chunks := e.Split(data)
		var total int64
		for _, c := range chunks {
			total += c.Length
		}
		if total != int64(n) {
			t.Fatalf("%d-byte input: chunks cover %d", n, total)
		}
	}
}

// TestFastCDCStreamReuseAfterClose: Close is idempotent, writes after
// Close fail.
func TestFastCDCStreamLifecycle(t *testing.T) {
	e := mustFastCDC(t, FastCDCSpec(4<<10))
	var n int
	s := e.Stream(func(Chunk, []byte) error { n++; return nil })
	if _, err := s.Write(randomData(9, 10<<10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write after Close succeeded")
	}
	if n == 0 {
		t.Fatal("no chunks emitted")
	}
}

// TestFastCDCStreamPayloads: the bytes handed to emit are exactly the
// slice of the logical stream the chunk describes.
func TestFastCDCStreamPayloads(t *testing.T) {
	e := mustFastCDC(t, FastCDCSpec(4<<10))
	data := randomData(10, 300<<10)
	s := e.Stream(func(c Chunk, payload []byte) error {
		if !bytes.Equal(payload, data[c.Offset:c.End()]) {
			t.Fatalf("payload mismatch for chunk at %d", c.Offset)
		}
		return nil
	})
	for i := 0; i < len(data); i += 7777 {
		end := i + 7777
		if end > len(data) {
			end = len(data)
		}
		if _, err := s.Write(data[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
