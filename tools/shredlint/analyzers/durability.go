package analyzers

import (
	"go/ast"
	"go/token"

	"shredder/tools/shredlint/analysis"
)

// Durability encodes the store's write-ahead ordering contract:
//
//  1. Journal before apply. Inside any one function, a refcount
//     decrement (releaseRefs / release) must not precede the journal
//     call that makes it recoverable (DeleteRecipe / CommitRecipe
//     tombstones, LogRefDelta deltas). A crash between an applied
//     decrement and a missing tombstone leaks or loses chunks.
//  2. Commit points sync. In a package that declares the fsync policy
//     (type FsyncMode), every exported Commit / CommitRecipe /
//     DeleteRecipe / Checkpoint must reach a (*os.File).Sync call
//     through the package's own call graph, so the policy can make the
//     record durable before the caller is acked.
var Durability = &analysis.Analyzer{
	Name: "durability",
	Doc:  "WAL journal entries must be written (and commit points synced) before their effects apply",
	Run:  runDurability,
}

// durabilityPairs lists (journal, apply) call names: when one function
// calls both, the journal call must come first.
var durabilityPairs = []struct{ journal, apply string }{
	{"DeleteRecipe", "releaseRefs"},
	{"CommitRecipe", "releaseRefs"},
	{"LogRefDelta", "release"},
}

// commitPoints are the exported entry points that promise durability
// to their callers.
var commitPoints = map[string]bool{
	"Commit":       true,
	"CommitRecipe": true,
	"DeleteRecipe": true,
	"Checkpoint":   true,
}

func runDurability(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkJournalOrder(pass, fd)
			}
		}
	}
	if pass.Pkg == nil || pass.Pkg.Scope().Lookup("FsyncMode") == nil {
		// Only the persistence layer (marked by declaring FsyncMode)
		// owns commit points.
		return nil
	}
	checkCommitPointsSync(pass)
	return nil
}

// checkJournalOrder flags apply-before-journal orderings within fd.
func checkJournalOrder(pass *analysis.Pass, fd *ast.FuncDecl) {
	first := map[string]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); name != "" {
				minPos(first, name, call.Pos())
			}
		}
		return true
	})
	for _, pr := range durabilityPairs {
		jp, jok := first[pr.journal]
		ap, aok := first[pr.apply]
		if jok && aok && ap < jp {
			pass.Reportf(ap, "%s applies a refcount change before %s journals it; journal the tombstone/delta first so a crash cannot lose it", pr.apply, pr.journal)
		}
	}
}

// checkCommitPointsSync verifies every exported commit point reaches a
// .Sync() call through the in-package call graph.
func checkCommitPointsSync(pass *analysis.Pass) {
	calls := map[string][]string{} // decl name -> callee names
	syncs := map[string]bool{}     // decl name -> contains a direct .Sync() call
	decls := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			decls[name] = append(decls[name], fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				cn := calleeName(call)
				if cn == "Sync" {
					syncs[name] = true
				}
				if cn != "" {
					calls[name] = append(calls[name], cn)
				}
				return true
			})
		}
	}
	reaches := func(start string) bool {
		seen := map[string]bool{}
		queue := []string{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if seen[n] {
				continue
			}
			seen[n] = true
			if syncs[n] {
				return true
			}
			queue = append(queue, calls[n]...)
		}
		return false
	}
	for name, fds := range decls {
		if !commitPoints[name] || !ast.IsExported(name) {
			continue
		}
		for _, fd := range fds {
			if !reaches(name) {
				pass.Reportf(fd.Pos(), "commit point %s never reaches a file Sync; apply the fsync policy before returning success", name)
			}
		}
	}
}
