package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"shredder/tools/shredlint/analysis"
)

// ErrHygiene applies to the packages where a swallowed error is a
// durability or correctness bug (persist, ingest, cluster):
//
//  1. No silently discarded error results. A call whose result set
//     includes an error may not stand alone as a statement; either
//     handle it or discard it loudly with `_ =` (which survives review
//     and grep). Deferred cleanup, go statements, and writes to
//     never-failing sinks (strings.Builder, bytes.Buffer, fmt printing
//     to stdout/stderr) are exempt.
//  2. fmt.Errorf must wrap error arguments with %w, not %v/%s, so
//     typed errors like persist.NotFoundError and cluster.NodeError
//     survive errors.As/Is across layers.
var ErrHygiene = &analysis.Analyzer{
	Name: "errhygiene",
	Doc:  "no silently discarded errors in persist/ingest/cluster; fmt.Errorf wraps errors with %w",
	Run:  runErrHygiene,
}

// errHygienePackages are the package names in scope.
var errHygienePackages = map[string]bool{
	"persist": true,
	"ingest":  true,
	"cluster": true,
}

func runErrHygiene(pass *analysis.Pass) error {
	if pass.Pkg == nil || !errHygienePackages[pass.Pkg.Name()] {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		switch v := n.(type) {
		case *ast.ExprStmt:
			call, ok := v.X.(*ast.CallExpr)
			if !ok {
				return
			}
			checkDiscardedError(pass, call)
		case *ast.CallExpr:
			checkErrorfWrap(pass, v)
		}
	})
	return nil
}

// checkDiscardedError flags an expression-statement call that drops an
// error result.
func checkDiscardedError(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	returnsError := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				returnsError = true
			}
		}
	default:
		returnsError = isErrorType(tv.Type)
	}
	if !returnsError || isExemptSink(pass, call) || isDeferredOrGo(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or discard it explicitly with _ =", types.ExprString(call.Fun))
}

// isDeferredOrGo reports whether call is the direct call of a defer or
// go statement anywhere in the package.
func isDeferredOrGo(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	pass.Preorder(func(n ast.Node) {
		switch v := n.(type) {
		case *ast.DeferStmt:
			if v.Call == call {
				found = true
			}
		case *ast.GoStmt:
			if v.Call == call {
				found = true
			}
		}
	})
	return found
}

// isExemptSink allows error-returning writes that cannot fail in
// practice: fmt printing to stdout/stderr or in-memory builders, and
// methods on strings.Builder / bytes.Buffer.
func isExemptSink(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		name := obj.Name()
		if strings.HasPrefix(name, "Print") {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return isInMemoryOrStdSink(pass, call.Args[0])
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isBuilderType(tv.Type) {
			return true
		}
	}
	return false
}

func isInMemoryOrStdSink(pass *analysis.Pass, arg ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && isBuilderType(tv.Type) {
		return true
	}
	text := types.ExprString(arg)
	return text == "os.Stdout" || text == "os.Stderr"
}

// isBuilderType matches strings.Builder and bytes.Buffer (pointers
// included) — their Write methods are documented never to fail.
func isBuilderType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf formatting an error argument with a
// verb other than %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format := lit.Value // quoted; verb scanning is unaffected
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) || verbs[i] == 'w' || verbs[i] == '*' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "error wrapped with %%%c loses its type; use %%w so errors.As/Is still match", verbs[i])
	}
}

// formatVerbs returns one byte per consumed argument: the verb letter,
// or '*' for a width/precision argument.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				verbs = append(verbs, c)
				break
			}
			if strings.IndexByte("+-# 0.123456789[]", c) < 0 {
				break // malformed; stop scanning this verb
			}
			i++
		}
	}
	return verbs
}
