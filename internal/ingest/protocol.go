// Package ingest implements the Shredder service layer: a streaming
// chunk-and-dedup server (the shredderd daemon) and its client, talking
// a length-prefixed binary protocol over any net.Conn. The protocol is
// content-addressed: a Session that negotiates protocol version 3 runs
// the agreed chunking engine locally, ships fingerprint batches first,
// and uploads only the chunk bodies the server reports missing — the
// paper's backup-site design, where dedup happens *before* data
// crosses the constrained link. Legacy sessions stream raw bytes and
// the server chunks and dedups them server-side, exactly as earlier
// protocol revisions did. Either way every session dedups against a
// sharded shardstore.Store shared by all sessions — the consolidation
// point of the paper's §7 cloud-backup case study, made concurrent.
//
// Wire format: every frame is a 1-byte type, a 4-byte big-endian
// payload length, then the payload. A session optionally opens with a
// negotiation exchange selecting the protocol version and chunking
// engine,
//
//	C→S  Hello(version, spec)
//	S→C  Accept(version, spec) | Error
//
// after which a raw (server-chunked) backup operation is
//
//	C→S  Begin(name) Data* End
//	S→C  Stats | Error
//
// a two-phase dedup (client-chunked, version ≥ 3) backup operation is
//
//	C→S  BeginDedup(name)
//	     repeat:  C→S  HasBatch(fp...)
//	              S→C  NeedBatch(indices of missing fps)
//	              C→S  one Data frame per missing fp, in index order
//	C→S  Commit
//	S→C  Stats | Error
//
// a restore operation is
//
//	C→S  Restore(name)
//	S→C  Data* End | Error
//
// and a delete operation (version ≥ 3) — the retention path, which
// expires a stream and releases its chunk references server-side — is
//
//	C→S  Delete(name)
//	S→C  DeleteOK(stats) | Error
//
// Clients that skip the Hello get the server's default engine — the
// Rabin configuration earlier protocol revisions hardwired — so legacy
// sessions are byte-for-byte unchanged. Frames from concurrent clients
// are never interleaved: each session owns its connection.
//
// Protocol version 4 adds distributed tracing: Hello and BeginDedup
// gain an *optional* 24-byte trace-context field (16-byte trace ID +
// 8-byte span ID, see obs.SpanContext) so the server's spans parent
// onto the client's and one trace covers both sides of the wire. The
// field rides only on sessions that negotiated version 4 and only when
// the client is actually tracing — v2/v3 sessions, and untraced v4
// sessions, stay byte-identical.
//
// # Version-fallback matrix
//
//	v1 client (no Hello)      → v4 server: raw path, byte-identical
//	v2 client (Hello v2)      → v4 server: Accept v2, raw path, byte-identical
//	v3 client (Hello v3)      → v4 server: Accept v3, dedup + raw available
//	v4 client (Hello v4)      → v4 server: Accept v4, dedup + raw + tracing
//	v4 client, engine-only    → v2 server: sends Hello v2, indistinguishable
//	  (Negotiate)                           from a v2 client
//	v4 client (NegotiateDedup)→ v2/v3 server: typed NegotiationError naming
//	                            both versions; redial and fall back to
//	                            Negotiate/Backup
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// Frame types.
const (
	// MsgBegin opens a backup stream; the payload is the stream name.
	MsgBegin byte = iota + 1
	// MsgData carries raw stream bytes (either direction).
	MsgData
	// MsgEnd terminates a sequence of MsgData frames.
	MsgEnd
	// MsgStats is the server's reply to a completed backup stream; the
	// payload is an encoded StreamStats.
	MsgStats
	// MsgRestore asks the server to stream a named recipe back.
	MsgRestore
	// MsgError carries an error message and aborts the operation.
	MsgError
	// MsgHello proposes a session configuration: a 1-byte protocol
	// version followed by a wire-encoded chunk.Spec.
	MsgHello
	// MsgAccept is the server's ack of a MsgHello; the payload echoes
	// the accepted version and spec.
	MsgAccept
	// MsgBeginDedup opens a client-chunked (two-phase dedup) backup
	// stream; the payload is the stream name. Requires a version ≥ 3
	// session.
	MsgBeginDedup
	// MsgHasBatch carries a batch of chunk fingerprints (n × 32 bytes)
	// the client is about to reference, in stream order.
	MsgHasBatch
	// MsgNeedBatch is the server's reply to a MsgHasBatch: the
	// ascending indices (4 bytes each) of the fingerprints it has no
	// chunk for and whose bodies the client must upload.
	MsgNeedBatch
	// MsgCommit ends a dedup backup stream: the server durably records
	// the recipe and replies with MsgStats.
	MsgCommit
	// MsgDelete asks the server to expire a named stream: the recipe is
	// durably tombstoned and its chunk references released (chunks
	// reaching zero references become reclaimable by compaction).
	// Requires a version ≥ 3 session.
	MsgDelete
	// MsgDeleteOK is the server's ack of a MsgDelete; the payload is an
	// encoded DeleteStats.
	MsgDeleteOK
)

// ProtocolVersion is the newest protocol revision this package speaks:
// version 4, which adds optional trace-context propagation on
// Hello/BeginDedup on top of version 3's content-addressed two-phase
// dedup ingest (BeginDedup/HasBatch/NeedBatch/Commit). A Hello carries
// the version the client wants so mismatched peers fail with a typed
// error instead of a parse failure.
const ProtocolVersion byte = 4

// MinProtocolVersion is the oldest Hello the server still accepts
// (version 2, engine negotiation only). Version-1 sessions send no
// Hello at all.
const MinProtocolVersion byte = 2

// MaxFrame bounds a single frame payload; a peer announcing more is
// corrupt (or hostile) and the connection is dropped.
const MaxFrame = 16 << 20

// DefaultFrameSize is the data payload size clients cut streams into.
const DefaultFrameSize = 1 << 20

const headerSize = 5

// writeFrame emits one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return &FrameSizeError{Type: typ, Size: int64(len(payload)), Limit: MaxFrame}
	}
	var hdr [headerSize]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Skip the empty write: net.Pipe synchronizes even zero-length
		// writes with a reader, which would block a frame like End.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf for the payload when it is
// large enough. The returned slice aliases buf (or a fresh allocation)
// and is valid until the next call with the same buf. A clean
// connection close on a frame boundary returns bare io.EOF; every
// other failure comes back typed (FrameSizeError, TruncatedError).
func readFrame(r io.Reader, buf []byte) (byte, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, &TruncatedError{Context: "frame header", Cause: err}
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, &FrameSizeError{Type: hdr[0], Size: int64(n), Limit: MaxFrame}
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, &TruncatedError{
			Context: fmt.Sprintf("frame type %d payload (%d bytes)", hdr[0], n),
			Cause:   err,
		}
	}
	return hdr[0], buf, nil
}

// specWireSize is the encoded size of a chunk.Spec, computed once so
// the v4 hello decoder can split the optional trailing trace context
// off without chunk exporting its framing.
var specWireSize = len(chunk.EncodeSpec(chunk.Spec{}))

// encodeHello builds a MsgHello/MsgAccept payload with no trace
// context — the v2/v3 layout, which is also a valid v4 payload.
func encodeHello(version byte, spec chunk.Spec) []byte {
	return append([]byte{version}, chunk.EncodeSpec(spec)...)
}

// encodeHelloCtx builds a MsgHello payload carrying a trace context.
// The field only exists in version ≥ 4; an invalid context (or an
// older version) degrades to the plain layout, keeping untraced v4
// sessions byte-identical to v3 ones.
func encodeHelloCtx(version byte, spec chunk.Spec, ctx obs.SpanContext) []byte {
	p := encodeHello(version, spec)
	if version >= 4 && ctx.Valid() {
		p = append(p, ctx.Encode()...)
	}
	return p
}

// decodeHello parses a MsgHello/MsgAccept payload. The spec is
// validated, so an unknown algorithm id or inconsistent sizes surface
// here as the decode error. On a version ≥ 4 payload of exactly
// spec + 24 bytes the tail is the sender's trace context (zero when
// absent); older versions never carry one.
func decodeHello(p []byte) (byte, chunk.Spec, obs.SpanContext, error) {
	if len(p) < 1 {
		return 0, chunk.Spec{}, obs.SpanContext{}, errors.New("ingest: empty hello payload")
	}
	version, body := p[0], p[1:]
	var ctx obs.SpanContext
	if version >= 4 && len(body) == specWireSize+obs.SpanContextWireSize {
		ctx, _ = obs.DecodeSpanContext(body[specWireSize:])
		body = body[:specWireSize]
	}
	spec, err := chunk.DecodeSpec(body)
	if err != nil {
		return version, chunk.Spec{}, obs.SpanContext{}, err
	}
	return version, spec, ctx, nil
}

// encodeBeginDedup builds a MsgBeginDedup payload. Through version 3
// the payload is the bare stream name. Version 4 prefixes a flag byte
// (0: no context; 1: a 24-byte trace context follows, then the name)
// so traced and untraced streams are unambiguous.
func encodeBeginDedup(version byte, name string, ctx obs.SpanContext) []byte {
	if version < 4 {
		return []byte(name)
	}
	if !ctx.Valid() {
		return append([]byte{0}, name...)
	}
	p := make([]byte, 0, 1+obs.SpanContextWireSize+len(name))
	p = append(p, 1)
	p = append(p, ctx.Encode()...)
	return append(p, name...)
}

// decodeBeginDedup parses a MsgBeginDedup payload for the session's
// negotiated version.
func decodeBeginDedup(version byte, p []byte) (string, obs.SpanContext, error) {
	if version < 4 {
		return string(p), obs.SpanContext{}, nil
	}
	if len(p) < 1 {
		return "", obs.SpanContext{}, errors.New("ingest: empty begin-dedup payload")
	}
	switch p[0] {
	case 0:
		return string(p[1:]), obs.SpanContext{}, nil
	case 1:
		if len(p) < 1+obs.SpanContextWireSize {
			return "", obs.SpanContext{}, errors.New("ingest: begin-dedup payload truncates its trace context")
		}
		ctx, _ := obs.DecodeSpanContext(p[1 : 1+obs.SpanContextWireSize])
		return string(p[1+obs.SpanContextWireSize:]), ctx, nil
	default:
		return "", obs.SpanContext{}, fmt.Errorf("ingest: begin-dedup trace flag %d unknown", p[0])
	}
}

// hashSize is the wire size of one chunk fingerprint.
const hashSize = len(dedup.Hash{})

// MaxBatchFingerprints bounds one MsgHasBatch (it must fit a frame).
const MaxBatchFingerprints = MaxFrame / hashSize

// encodeHasBatch packs fingerprints into a MsgHasBatch payload.
func encodeHasBatch(hs []dedup.Hash) []byte {
	out := make([]byte, 0, len(hs)*hashSize)
	for i := range hs {
		out = append(out, hs[i][:]...)
	}
	return out
}

// decodeHasBatch parses a MsgHasBatch payload. The batch size is
// implied by the payload length, which must be a whole number of
// fingerprints.
func decodeHasBatch(p []byte) ([]dedup.Hash, error) {
	if len(p)%hashSize != 0 {
		return nil, fmt.Errorf("ingest: has-batch payload of %d bytes is not a whole number of %d-byte fingerprints", len(p), hashSize)
	}
	hs := make([]dedup.Hash, len(p)/hashSize)
	for i := range hs {
		copy(hs[i][:], p[i*hashSize:])
	}
	return hs, nil
}

// encodeNeedBatch packs ascending batch indices into a MsgNeedBatch
// payload.
func encodeNeedBatch(idxs []int) []byte {
	out := make([]byte, 4*len(idxs))
	for i, v := range idxs {
		binary.BigEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// decodeNeedBatch parses a MsgNeedBatch payload against the size of
// the batch it answers: indices must be in range and strictly
// ascending (so the body upload order is unambiguous and no body is
// requested twice).
func decodeNeedBatch(p []byte, batch int) ([]int, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("ingest: need-batch payload of %d bytes is not a whole number of indices", len(p))
	}
	idxs := make([]int, len(p)/4)
	prev := -1
	for i := range idxs {
		v := int(binary.BigEndian.Uint32(p[4*i:]))
		if v <= prev || v >= batch {
			return nil, fmt.Errorf("ingest: need-batch index %d invalid after %d in a batch of %d", v, prev, batch)
		}
		idxs[i] = v
		prev = v
	}
	return idxs, nil
}

// WireStats measures what one stream actually cost on the wire, the
// figure the paper's client-side matching exists to shrink. Bytes
// count frame payloads carrying stream content in the client→server
// direction: Data bodies plus fingerprint batches (frame headers and
// the tiny control frames are excluded).
type WireStats struct {
	// LogicalBytes is the stream's full size.
	LogicalBytes int64
	// WireBytes is what actually crossed: equal to LogicalBytes on the
	// raw path; fingerprints plus missing bodies on the dedup path.
	WireBytes int64
	// ChunksSent counts chunk bodies that crossed the wire;
	// ChunksSkipped counts chunks resolved by fingerprint alone.
	ChunksSent    int64
	ChunksSkipped int64
}

// Saved returns the bytes the two-phase protocol kept off the wire
// (zero on the raw path, where fingerprint overhead does not apply).
func (w WireStats) Saved() int64 {
	if w.WireBytes >= w.LogicalBytes {
		return 0
	}
	return w.LogicalBytes - w.WireBytes
}

// StreamStats summarizes one backed-up stream as seen by the server.
type StreamStats struct {
	// Bytes, Chunks, DupChunks and UniqueBytes describe this stream
	// alone: what arrived, how the pipeline cut it, and how much of it
	// was new to the store.
	Bytes       int64
	Chunks      int64
	DupChunks   int64
	UniqueBytes int64
	// Wire measures the stream's transfer cost. On version ≥ 3
	// sessions the server computes and sends it; on legacy sessions
	// the client fills it (WireBytes == Bytes) so both modes report
	// through one struct.
	Wire WireStats
	// Store is the aggregate statistics of the shared store at the
	// moment the stream completed (all sessions, all streams so far).
	Store dedup.Stats
}

// DedupRatio returns this stream's logical-over-unique factor, 0 when
// the stream stored nothing new (fully duplicate).
func (s StreamStats) DedupRatio() float64 {
	if s.UniqueBytes == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.UniqueBytes)
}

// statsWireSize is the legacy (≤ v2) MsgStats payload; v3 sessions
// append the four WireStats fields. Legacy sessions must stay
// byte-identical, so the extension rides only on sessions that
// negotiated version 3.
const (
	statsWireSize   = 9 * 8
	statsWireSizeV3 = statsWireSize + 4*8
)

// encode serializes the stats for a MsgStats payload. version selects
// the layout: ≥ 3 appends the WireStats fields, anything lower is the
// legacy 72-byte payload.
func (s StreamStats) encode(version byte) []byte {
	fields := []int64{
		s.Bytes, s.Chunks, s.DupChunks, s.UniqueBytes,
		s.Store.LogicalBytes, s.Store.StoredBytes,
		s.Store.Chunks, s.Store.UniqueChunks, s.Store.IndexHits,
	}
	if version >= 3 {
		fields = append(fields,
			s.Wire.LogicalBytes, s.Wire.WireBytes,
			s.Wire.ChunksSent, s.Wire.ChunksSkipped)
	}
	out := make([]byte, 8*len(fields))
	for i, v := range fields {
		binary.BigEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// decodeStreamStats parses a MsgStats payload of either layout.
func decodeStreamStats(p []byte) (StreamStats, error) {
	if len(p) != statsWireSize && len(p) != statsWireSizeV3 {
		return StreamStats{}, errors.New("ingest: malformed stats payload")
	}
	f := make([]int64, len(p)/8)
	for i := range f {
		f[i] = int64(binary.BigEndian.Uint64(p[i*8:]))
	}
	st := StreamStats{
		Bytes: f[0], Chunks: f[1], DupChunks: f[2], UniqueBytes: f[3],
		Store: dedup.Stats{
			LogicalBytes: f[4], StoredBytes: f[5],
			Chunks: f[6], UniqueChunks: f[7], IndexHits: f[8],
		},
	}
	if len(f) > 9 {
		st.Wire = WireStats{
			LogicalBytes: f[9], WireBytes: f[10],
			ChunksSent: f[11], ChunksSkipped: f[12],
		}
	}
	return st, nil
}

// encodeDeleteResult packs a MsgDeleteOK payload: the released,
// freed-entry and freed-byte counts as three uvarints.
func encodeDeleteResult(ds shardstore.DeleteStats) []byte {
	out := make([]byte, 0, 3*binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(ds.ChunksReleased))
	out = binary.AppendUvarint(out, uint64(ds.ChunksFreed))
	out = binary.AppendUvarint(out, uint64(ds.BytesFreed))
	return out
}

// decodeDeleteResult parses a MsgDeleteOK payload. The counts are
// non-negative by construction, and trailing bytes are rejected so the
// framing stays canonical.
func decodeDeleteResult(p []byte) (shardstore.DeleteStats, error) {
	var u [3]uint64
	for i := range u {
		v, n := binary.Uvarint(p)
		if n <= 0 || v > math.MaxInt64 {
			return shardstore.DeleteStats{}, errors.New("ingest: malformed delete-result payload")
		}
		u[i] = v
		p = p[n:]
	}
	if len(p) != 0 {
		return shardstore.DeleteStats{}, errors.New("ingest: delete-result payload trailing bytes")
	}
	return shardstore.DeleteStats{
		ChunksReleased: int64(u[0]),
		ChunksFreed:    int64(u[1]),
		BytesFreed:     int64(u[2]),
	}, nil
}
