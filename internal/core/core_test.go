package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/chunker"
)

func testData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func newShredder(t testing.TB, mutate func(*Config)) *Shredder {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BufferSize = 1 << 20 // small buffers keep tests quick
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []Mode{Basic, Streams, StreamsCoalesced} {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate mode string %q", s)
		}
		seen[s] = true
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.BufferSize = 0 },
		func(c *Config) { c.PipelineDepth = 0 },
		func(c *Config) { c.PipelineDepth = 99 },
		func(c *Config) { c.RingRegions = 2; c.PipelineDepth = 4 },
		func(c *Config) { c.Chunking.Window = 0 },
		func(c *Config) { c.PCIe.H2DBandwidth = 0 },
		func(c *Config) { c.IO.ReaderBandwidth = 0 },
		func(c *Config) { c.BufferSize = 2 << 30 }, // twin buffers exceed 2.6 GB
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestChunksMatchSequentialReference(t *testing.T) {
	// The full pipeline must produce exactly the chunks of the
	// sequential reference chunker, for every mode and across buffer
	// boundaries.
	data := testData(1, 5<<20+12345) // ~5 buffers, ragged tail
	ref, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Split(data)
	for _, mode := range []Mode{Basic, Streams, StreamsCoalesced} {
		s := newShredder(t, func(c *Config) { c.Mode = mode })
		var got []chunk.Chunk
		rep, err := s.ChunkBytes(data, func(c chunk.Chunk, payload []byte) error {
			got = append(got, c)
			if !bytes.Equal(payload, data[c.Offset:c.End()]) {
				t.Fatalf("mode %v: payload mismatch at chunk %d", mode, len(got)-1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("mode %v: %d chunks, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
				t.Fatalf("mode %v chunk %d: (%d,%d) != (%d,%d)", mode, i,
					got[i].Offset, got[i].Length, want[i].Offset, want[i].Length)
			}
		}
		if rep.Chunks != len(want) || rep.Bytes != int64(len(data)) {
			t.Fatalf("mode %v: report says %d chunks / %d bytes", mode, rep.Chunks, rep.Bytes)
		}
	}
}

func TestMinMaxAcrossBuffers(t *testing.T) {
	p := chunker.DefaultParams()
	p.MinSize = 2048
	p.MaxSize = 16384
	data := testData(2, 3<<20+777)
	ref, _ := chunker.New(p)
	want := ref.Split(data)
	s := newShredder(t, func(c *Config) { c.Chunking = chunk.RabinSpec(p) })
	var got []chunk.Chunk
	if _, err := s.ChunkBytes(data, func(c chunk.Chunk, _ []byte) error {
		got = append(got, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d chunks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
			t.Fatalf("chunk %d: (%d,%d) != (%d,%d)", i,
				got[i].Offset, got[i].Length, want[i].Offset, want[i].Length)
		}
	}
}

func TestBufferSizeInvariance(t *testing.T) {
	// Chunk results must not depend on the device buffer size.
	data := testData(3, 2<<20+99)
	collect := func(bufSize int) []chunk.Chunk {
		s := newShredder(t, func(c *Config) { c.BufferSize = bufSize })
		var got []chunk.Chunk
		if _, err := s.ChunkBytes(data, func(c chunk.Chunk, _ []byte) error {
			got = append(got, c)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := collect(256 << 10)
	b := collect(1 << 20)
	c := collect(3 << 20)
	if len(a) != len(b) || len(b) != len(c) {
		t.Fatalf("chunk counts differ across buffer sizes: %d/%d/%d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || b[i].Offset != c[i].Offset {
			t.Fatalf("chunk %d offsets differ across buffer sizes", i)
		}
	}
}

func TestEmptyAndTinyStreams(t *testing.T) {
	s := newShredder(t, nil)
	rep, err := s.ChunkBytes(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 0 || rep.Bytes != 0 || rep.SimTime != 0 {
		t.Fatalf("empty stream: %+v", rep)
	}
	var got []chunk.Chunk
	rep, err = s.ChunkBytes([]byte{42}, func(c chunk.Chunk, d []byte) error {
		got = append(got, c)
		if len(d) != 1 || d[0] != 42 {
			t.Fatal("payload wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Length != 1 || rep.Chunks != 1 {
		t.Fatalf("single byte stream: %+v", got)
	}
}

func TestOptimizationsImproveThroughput(t *testing.T) {
	// Figure 12's ordering: Basic < Streams < StreamsCoalesced.
	data := testData(4, 8<<20)
	through := func(mode Mode) float64 {
		s := newShredder(t, func(c *Config) { c.Mode = mode })
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Throughput
	}
	basic := through(Basic)
	streams := through(Streams)
	full := through(StreamsCoalesced)
	if !(basic < streams && streams < full) {
		t.Fatalf("throughput ordering violated: basic=%.0f streams=%.0f full=%.0f", basic, streams, full)
	}
}

func TestFigure12Calibration(t *testing.T) {
	// With paper-scale buffers the full pipeline must exceed 5x the
	// optimized host baseline (the headline claim), and the reader
	// (2 GB/s SAN) must be the eventual bottleneck.
	data := testData(5, 64<<20)
	s := newShredder(t, func(c *Config) {
		c.BufferSize = 32 << 20
		c.Mode = StreamsCoalesced
	})
	rep, err := s.ChunkBytes(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	gbps := rep.Throughput / 1e9
	if gbps < 1.5 || gbps > 2.2 {
		t.Fatalf("full-pipeline throughput %.2f GB/s outside [1.5, 2.2] (reader-bound ~2)", gbps)
	}
}

func TestSimTimeDominatedByBottleneck(t *testing.T) {
	data := testData(6, 8<<20)
	s := newShredder(t, func(c *Config) { c.Mode = StreamsCoalesced })
	rep, err := s.ChunkBytes(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// In the full pipeline the makespan must be close to the busiest
	// stage, not to the sum of stages.
	sum := rep.Stage.Reader + rep.Stage.Transfer + rep.Stage.Kernel + rep.Stage.Store
	max := rep.Stage.Reader
	for _, d := range []time.Duration{rep.Stage.Transfer, rep.Stage.Kernel, rep.Stage.Store} {
		if d > max {
			max = d
		}
	}
	if rep.SimTime >= sum {
		t.Fatalf("pipelined makespan %v not below stage sum %v", rep.SimTime, sum)
	}
	if float64(rep.SimTime) > 1.6*float64(max) {
		t.Fatalf("makespan %v too far above bottleneck %v", rep.SimTime, max)
	}
}

func TestBasicModeIsSerialized(t *testing.T) {
	data := testData(7, 4<<20)
	s := newShredder(t, func(c *Config) { c.Mode = Basic })
	rep, err := s.ChunkBytes(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Stage.Reader + rep.Stage.Transfer + rep.Stage.Kernel + rep.Stage.Store
	// Serialized: makespan equals the sum of all stage busy times.
	if rep.SimTime != sum {
		t.Fatalf("basic-mode makespan %v != stage sum %v", rep.SimTime, sum)
	}
}

func TestPipelineDepthSpeedsUp(t *testing.T) {
	// Figure 9: deeper pipelines are faster (up to the bottleneck).
	data := testData(8, 16<<20)
	simTime := func(depth int) float64 {
		s := newShredder(t, func(c *Config) {
			c.Mode = Streams
			c.PipelineDepth = depth
			c.RingRegions = depth
		})
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.SimTime.Seconds()
	}
	d1, d2, d4 := simTime(1), simTime(2), simTime(4)
	if !(d2 < d1 && d4 <= d2) {
		t.Fatalf("pipeline depth not monotone: d1=%.4f d2=%.4f d4=%.4f", d1, d2, d4)
	}
}

func TestCallbackErrorPropagates(t *testing.T) {
	s := newShredder(t, nil)
	sentinel := bytes.ErrTooLarge
	_, err := s.ChunkBytes(testData(9, 1<<20), func(chunk.Chunk, []byte) error {
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("error = %v, want sentinel", err)
	}
}

func TestSetupTimeReported(t *testing.T) {
	s := newShredder(t, func(c *Config) { c.Mode = Streams })
	if s.setup <= 0 {
		t.Fatal("streams mode must report pinned-ring setup cost")
	}
	b := newShredder(t, func(c *Config) { c.Mode = Basic })
	if b.setup <= 0 {
		t.Fatal("basic mode must report pageable staging alloc cost")
	}
	if b.setup >= s.setup {
		t.Fatal("pageable setup should be cheaper than pinned ring")
	}
}
