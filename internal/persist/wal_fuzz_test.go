package persist

import (
	"bytes"
	"testing"

	"shredder/internal/shardstore"
)

// walSeedCorpus is the checked-in seed corpus for the WAL codec fuzz
// targets: one representative of every record type, edge sizes, and a
// few deliberately hostile framings. CI runs these as ordinary seed
// cases via `go test`; `go test -fuzz FuzzWALRecord ./internal/persist/`
// explores beyond them.
func walSeedCorpus() [][]byte {
	h := testHash(3)
	return [][]byte{
		nil,
		{},
		{recInsert},
		{recRefDelta},
		{recRecipe},
		{recRelocate},
		{recRecipeDelete},
		{0xff, 0x00},
		encodeInsert(h, 0, 0, 0),
		encodeInsert(h, 1<<20, 1<<40, 32<<10),
		encodeRefDelta(h, 1),
		encodeRefDelta(h, -1), // the delete path's release
		encodeRefDelta(h, -(1 << 50)),
		encodeRelocate(h, 0, 0, 0),
		encodeRelocate(h, 7, 1<<30, 4096),
		encodeRecipe("vm-master", shardstore.Recipe{testHash(1), testHash(2)}),
		encodeRecipe("", nil),
		encodeRecipeDelete("vm-master"),
		encodeRecipeDelete(""),
		appendRecord(nil, encodeRefDelta(h, 1)),                          // a framed record as raw input
		appendRecord(nil, encodeRelocate(h, 1, 2, 3)),                    // framed relocate
		appendRecord(appendRecord(nil, []byte{recInsert}), []byte{0xab}), // two frames
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},                             // 4 GiB length claim
		bytes.Repeat([]byte{0x00}, recHeaderSize),                        // empty body, zero CRC
		append(bytes.Repeat([]byte{0x00}, 4), 0xde, 0xad, 0xbe, 0xef),    // empty body, wrong CRC
	}
}

// FuzzWALRecord is the encoder/decoder round-trip target. The input is
// interpreted two ways on every run:
//
//  1. As a record body: framing it with appendRecord and reading it
//     back must return the identical body and consume exactly the
//     framed bytes, and scanning a buffer of two copies must yield
//     both.
//  2. As raw WAL bytes: readRecord and the typed payload decoders must
//     never panic, and whatever readRecord accepts must re-encode to
//     the identical framed bytes (the framing is canonical).
func FuzzWALRecord(f *testing.F) {
	for _, seed := range walSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		// (1) round-trip as a body.
		if len(in) <= maxRecordSize {
			rec := appendRecord(nil, in)
			body, size, err := readRecord(rec)
			if err != nil {
				t.Fatalf("framed record did not read back: %v", err)
			}
			if size != len(rec) || !bytes.Equal(body, in) {
				t.Fatalf("round-trip mangled body: size %d/%d", size, len(rec))
			}
			double := append(append([]byte(nil), rec...), rec...)
			n := 0
			clean, serr := scanRecords(double, func(b []byte) error {
				if !bytes.Equal(b, in) {
					t.Fatal("scan yielded a different body")
				}
				n++
				return nil
			})
			if serr != nil || n != 2 || clean != len(double) {
				t.Fatalf("scan of two copies: n=%d clean=%d err=%v", n, clean, serr)
			}
		}

		// (2) decode arbitrary bytes: no panics, canonical re-encode.
		if body, size, err := readRecord(in); err == nil {
			if !bytes.Equal(appendRecord(nil, body), in[:size]) {
				t.Fatal("accepted framing is not canonical")
			}
		}
		if len(in) > 0 {
			switch in[0] {
			case recInsert:
				if h, ci, off, length, err := decodeInsert(in); err == nil {
					if !bytes.Equal(encodeInsert(h, ci, off, length), in) {
						t.Skip("non-canonical varint encoding") // decodable but not what we emit
					}
				}
			case recRefDelta:
				if h, delta, err := decodeRefDelta(in); err == nil {
					if !bytes.Equal(encodeRefDelta(h, delta), in) {
						t.Skip("non-canonical varint encoding")
					}
				}
			case recRelocate:
				if h, ci, off, length, err := decodeRelocate(in); err == nil {
					if !bytes.Equal(encodeRelocate(h, ci, off, length), in) {
						t.Skip("non-canonical varint encoding")
					}
				}
			case recRecipe:
				if name, r, err := decodeRecipe(in); err == nil {
					if !bytes.Equal(encodeRecipe(name, r), in) {
						t.Skip("non-canonical varint encoding")
					}
				}
			case recRecipeDelete:
				if name, err := decodeRecipeDelete(in); err == nil {
					if !bytes.Equal(encodeRecipeDelete(name), in) {
						t.Skip("non-canonical varint encoding")
					}
				}
			}
		}
	})
}
