// Package sim provides a small deterministic discrete-event simulation
// engine: an event queue with a virtual clock, single-server FIFO
// resources, and counting-token pools. The GPU, PCIe and host models
// are built on it; because all Shredder timing figures come from this
// engine, runs are exactly reproducible regardless of the real
// machine's speed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute simulated timestamp, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration converts a simulated time span into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
// Engine is not safe for concurrent use; a simulation runs on a single
// goroutine.
type Engine struct {
	now Time
	seq uint64
	q   eventQueue
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a modeling bug, and silently clamping would skew
// results.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.q, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+Time(d), fn)
}

// Step executes the earliest pending event, advancing the clock, and
// reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	ev := heap.Pop(&e.q).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t (if it has not advanced past it).
func (e *Engine) RunUntil(t Time) {
	for len(e.q) > 0 && e.q[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.q) }
