package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"shredder/internal/shardstore"
)

// The write-ahead log is a flat sequence of framed records:
//
//	u32 body length | u32 CRC-32C of body | body
//
// (big-endian). The body's first byte is the record type, the rest is
// the type-specific payload. Integers inside payloads are varints.
// The framing is what makes replay safe: a crash can tear the final
// record (short header, short body, or a CRC that does not match the
// bytes that made it to disk), and the scanner detects all three,
// keeps the clean prefix, and reports where it ends so the file can be
// truncated back to a record boundary.

// Record types.
const (
	// recInsert journals one index insert in a shard WAL: a chunk
	// fingerprint and the container location its bytes were packed at.
	recInsert byte = iota + 1
	// recRefDelta journals a reference-count change for an existing
	// entry (+1 per duplicate hit; GC will journal decrements).
	recRefDelta
	// recRecipe journals one named stream recipe in the store-level
	// recipe log.
	recRecipe
)

// recHeaderSize frames every record: u32 body length + u32 CRC-32C.
const recHeaderSize = 8

// maxRecordSize bounds a single record body. The largest legitimate
// record is a recipe for a huge stream; 64 MiB of refs is ~2M chunks
// per stream, far beyond anything the ingest layer produces.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTornRecord marks the clean end of a WAL: the bytes past this
// point are an incomplete or corrupt final record, not usable state.
var errTornRecord = errors.New("persist: torn WAL record")

// appendRecord frames body onto dst.
func appendRecord(dst, body []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	return append(append(dst, hdr[:]...), body...)
}

// readRecord decodes the record at the front of p, returning its body
// and total framed size. It returns errTornRecord when p holds only a
// prefix of a record or the CRC does not match.
func readRecord(p []byte) (body []byte, size int, err error) {
	if len(p) < recHeaderSize {
		return nil, 0, errTornRecord
	}
	n := binary.BigEndian.Uint32(p[0:4])
	if n > maxRecordSize {
		return nil, 0, errTornRecord
	}
	size = recHeaderSize + int(n)
	if len(p) < size {
		return nil, 0, errTornRecord
	}
	body = p[recHeaderSize:size]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(p[4:8]) {
		return nil, 0, errTornRecord
	}
	return body, size, nil
}

// scanRecords walks every intact record in p in order, calling fn with
// each body. It returns the length of the clean prefix: the offset the
// file should be truncated to if anything past it is torn. fn may
// reject a record (replay found it inconsistent with the containers on
// disk); scanning stops there and the record is excluded from the
// prefix, exactly as if it were torn.
func scanRecords(p []byte, fn func(body []byte) error) (clean int, err error) {
	off := 0
	for off < len(p) {
		body, size, rerr := readRecord(p[off:])
		if rerr != nil {
			return off, nil
		}
		if ferr := fn(body); ferr != nil {
			if errors.Is(ferr, errTornRecord) {
				return off, nil
			}
			return off, ferr
		}
		off += size
	}
	return off, nil
}

// --- typed payloads ---

// encodeInsert journals h stored at (container, offset, length). The
// shard is implied by which shard's WAL holds the record.
func encodeInsert(h shardstore.Hash, container int, offset, length int64) []byte {
	body := make([]byte, 0, 1+len(h)+3*binary.MaxVarintLen64)
	body = append(body, recInsert)
	body = append(body, h[:]...)
	body = binary.AppendUvarint(body, uint64(container))
	body = binary.AppendUvarint(body, uint64(offset))
	body = binary.AppendUvarint(body, uint64(length))
	return body
}

func decodeInsert(body []byte) (h shardstore.Hash, container int, offset, length int64, err error) {
	p := body[1:]
	if len(p) < len(h) {
		return h, 0, 0, 0, fmt.Errorf("persist: insert record body %d bytes, need %d", len(body), 1+len(h))
	}
	copy(h[:], p)
	p = p[len(h):]
	var u [3]uint64
	for i := range u {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return h, 0, 0, 0, errors.New("persist: insert record truncated varint")
		}
		u[i] = v
		p = p[n:]
	}
	if len(p) != 0 {
		return h, 0, 0, 0, errors.New("persist: insert record trailing bytes")
	}
	return h, int(u[0]), int64(u[1]), int64(u[2]), nil
}

// encodeRefDelta journals a refcount change for h.
func encodeRefDelta(h shardstore.Hash, delta int64) []byte {
	body := make([]byte, 0, 1+len(h)+binary.MaxVarintLen64)
	body = append(body, recRefDelta)
	body = append(body, h[:]...)
	body = binary.AppendVarint(body, delta)
	return body
}

func decodeRefDelta(body []byte) (h shardstore.Hash, delta int64, err error) {
	p := body[1:]
	if len(p) < len(h) {
		return h, 0, fmt.Errorf("persist: refdelta record body %d bytes, need %d", len(body), 1+len(h))
	}
	copy(h[:], p)
	p = p[len(h):]
	v, n := binary.Varint(p)
	if n <= 0 || len(p) != n {
		return h, 0, errors.New("persist: refdelta record malformed varint")
	}
	return h, v, nil
}

// encodeRecipe journals one named recipe: name, ref count, then each
// ref as four varints (shard, container, offset, length).
func encodeRecipe(name string, r shardstore.Recipe) []byte {
	body := make([]byte, 0, 1+binary.MaxVarintLen64+len(name)+len(r)*4*binary.MaxVarintLen64)
	body = append(body, recRecipe)
	body = binary.AppendUvarint(body, uint64(len(name)))
	body = append(body, name...)
	body = binary.AppendUvarint(body, uint64(len(r)))
	for _, ref := range r {
		body = binary.AppendUvarint(body, uint64(ref.Shard))
		body = binary.AppendUvarint(body, uint64(ref.Container))
		body = binary.AppendUvarint(body, uint64(ref.Offset))
		body = binary.AppendUvarint(body, uint64(ref.Length))
	}
	return body
}

func decodeRecipe(body []byte) (string, shardstore.Recipe, error) {
	p := body[1:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errors.New("persist: recipe record truncated varint")
		}
		p = p[n:]
		return v, nil
	}
	nameLen, err := uvarint()
	if err != nil {
		return "", nil, err
	}
	if nameLen > uint64(len(p)) {
		return "", nil, errors.New("persist: recipe record truncated name")
	}
	name := string(p[:nameLen])
	p = p[nameLen:]
	count, err := uvarint()
	if err != nil {
		return "", nil, err
	}
	if count > uint64(len(p)) { // each ref takes ≥ 4 bytes; cheap bound
		return "", nil, errors.New("persist: recipe record implausible ref count")
	}
	r := make(shardstore.Recipe, 0, count)
	for i := uint64(0); i < count; i++ {
		var f [4]uint64
		for j := range f {
			if f[j], err = uvarint(); err != nil {
				return "", nil, err
			}
		}
		r = append(r, shardstore.Ref{
			Shard:     int(f[0]),
			Container: int(f[1]),
			Offset:    int64(f[2]),
			Length:    int64(f[3]),
		})
	}
	if len(p) != 0 {
		return "", nil, errors.New("persist: recipe record trailing bytes")
	}
	return name, r, nil
}
