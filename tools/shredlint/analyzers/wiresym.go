package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"shredder/tools/shredlint/analysis"
)

// WireSym keeps the ingest wire protocol honest. A package that
// declares Msg* frame constants is a protocol package, and there every
// frame must stay debuggable and fuzzable:
//
//  1. Every Msg* constant is a key of the frameName map, so traces and
//     metrics can print the frame.
//  2. Every encoder has a decoder and vice versa (matched by shared
//     name prefix, so encodeHelloCtx pairs with decodeHello; a method
//     T.encode pairs with decodeT).
//  3. Every decoder is reachable from some Fuzz* target, directly or
//     through another fuzzed decoder — a decoder nobody fuzzes is
//     where the next malformed-frame crash lives.
var WireSym = &analysis.Analyzer{
	Name: "wiresym",
	Doc:  "every Msg* frame has a frameName entry; encoders/decoders come in pairs; every decoder is fuzzed",
	Run:  runWireSym,
}

func runWireSym(pass *analysis.Pass) error {
	msgConsts := collectMsgConsts(pass)
	if len(msgConsts) < 2 {
		return nil // not a protocol package
	}
	checkFrameNames(pass, msgConsts)
	checkCodecPairs(pass)
	checkFuzzCoverage(pass)
	return nil
}

// collectMsgConsts returns package-level constants named Msg<Frame>.
func collectMsgConsts(pass *analysis.Pass) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "Msg") && len(name.Name) > 3 {
						out[name.Name] = name.Pos()
					}
				}
			}
		}
	}
	return out
}

// checkFrameNames requires each Msg* constant to key the frameName map.
func checkFrameNames(pass *analysis.Pass, msgConsts map[string]token.Pos) {
	var lit *ast.CompositeLit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "frameName" || len(vs.Values) != 1 {
					continue
				}
				if cl, ok := vs.Values[0].(*ast.CompositeLit); ok {
					lit = cl
				}
			}
		}
	}
	if lit == nil {
		for name, pos := range msgConsts {
			pass.Reportf(pos, "frame constant %s declared but the package has no frameName map to label it", name)
			break // one report is enough to fail the build
		}
		return
	}
	keys := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			keys[id.Name] = true
		}
	}
	for name, pos := range msgConsts {
		if !keys[name] {
			pass.Reportf(pos, "frame constant %s is not a key of frameName; traces and metrics cannot label the frame", name)
		}
	}
}

// codec is one encoder or decoder: key is the frame spelling used for
// prefix matching, display the name used in messages.
type codec struct {
	key     string
	display string
	pos     token.Pos
}

// collectCodecs gathers encode*/decode* functions and T.encode /
// T.decode methods from the package.
func collectCodecs(pass *analysis.Pass) (enc, dec []codec) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				_, recvName := recvTypeName(fd.Recv.List[0].Type)
				if recvName == "" {
					continue
				}
				switch name {
				case "encode":
					enc = append(enc, codec{key: recvName, display: recvName + ".encode", pos: fd.Pos()})
				case "decode":
					dec = append(dec, codec{key: recvName, display: recvName + ".decode", pos: fd.Pos()})
				}
				continue
			}
			switch {
			case strings.HasPrefix(name, "encode") && len(name) > len("encode"):
				enc = append(enc, codec{key: name[len("encode"):], display: name, pos: fd.Pos()})
			case strings.HasPrefix(name, "decode") && len(name) > len("decode"):
				dec = append(dec, codec{key: name[len("decode"):], display: name, pos: fd.Pos()})
			}
		}
	}
	return enc, dec
}

// checkCodecPairs requires a decoder for every encoder and vice versa.
func checkCodecPairs(pass *analysis.Pass) {
	enc, dec := collectCodecs(pass)
	paired := func(key string, others []codec) bool {
		for _, o := range others {
			if strings.HasPrefix(key, o.key) || strings.HasPrefix(o.key, key) {
				return true
			}
		}
		return false
	}
	for _, e := range enc {
		if !paired(e.key, dec) {
			pass.Reportf(e.pos, "encoder %s has no matching decoder; wire frames must round-trip", e.display)
		}
	}
	for _, d := range dec {
		if !paired(d.key, enc) {
			pass.Reportf(d.pos, "decoder %s has no matching encoder; wire frames must round-trip", d.display)
		}
	}
}

// checkFuzzCoverage requires every decode* function to be exercised by
// a Fuzz* target, directly or via another covered decoder.
func checkFuzzCoverage(pass *analysis.Pass) {
	type decoder struct {
		fd   *ast.FuncDecl
		refs map[string]bool // decoder names referenced in the body
	}
	decoders := map[string]*decoder{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "decode") && len(fd.Name.Name) > len("decode") {
				decoders[fd.Name.Name] = &decoder{fd: fd, refs: map[string]bool{}}
			}
		}
	}
	if len(decoders) == 0 {
		return
	}
	for name, d := range decoders {
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name != name {
				if _, isDecoder := decoders[id.Name]; isDecoder {
					d.refs[id.Name] = true
				}
			}
			return true
		})
	}
	// Names mentioned inside Fuzz* functions in the package's tests.
	mentioned := map[string]bool{}
	for _, f := range pass.TestFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					mentioned[id.Name] = true
				}
				return true
			})
		}
	}
	covered := map[string]bool{}
	var mark func(string)
	mark = func(name string) {
		if covered[name] {
			return
		}
		covered[name] = true
		for ref := range decoders[name].refs {
			mark(ref)
		}
	}
	for name := range decoders {
		if mentioned[name] {
			mark(name)
		}
	}
	for name, d := range decoders {
		if !covered[name] {
			pass.Reportf(d.fd.Pos(), "decoder %s is not exercised by any Fuzz* target (directly or via a fuzzed caller); add a Fuzz*Codec", name)
		}
	}
}
