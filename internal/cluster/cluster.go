// Package cluster scales the ingest service out to a static set of
// shredderd nodes behind one consistent-hash ring.
//
// The paper's pipeline — and everything in internal/ingest — is a
// single-node design: one store owns every chunk and every recipe.
// This package partitions that ownership by content: a chunk's SHA-256
// fingerprint hashes onto a ring of virtual nodes, and the node whose
// point follows it owns the chunk — its body, its index entry, and its
// reference counts. Refcounts are strictly node-owned: no node ever
// holds a reference on another node's behalf, so retention (delete,
// GC, compaction) stays a purely local decision on every node, exactly
// as in the single-node design.
//
// A backed-up stream is stored as N+1 node-local objects:
//
//   - on every owner node, a sub-stream committed under the client's
//     stream name through the ordinary v3 dedup protocol: the node's
//     chunks, in stream order. The node pins them like any other
//     stream — it neither knows nor cares that siblings exist.
//   - on the stream's home node (the ring owner of the stream *name*),
//     a manifest under a reserved name: the full fingerprint sequence,
//     which is exactly the information needed to re-interleave the
//     per-node sub-streams back into the original byte stream.
//
// Restore fetches the manifest, opens one restore stream per owner
// node, and merges them chunk by chunk in manifest order, verifying
// every chunk's fingerprint on the way through. Delete fans out to
// every node (a node without a sub-stream answers not-found, which is
// benign) and removes the manifest last.
//
// RoutedSession exposes this as a drop-in Session-shaped API for
// in-process callers; Router serves it to ordinary network clients on
// the unchanged wire protocol (cmd/shredrouter is the daemon).
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"shredder/internal/chunk"
	"shredder/internal/ingest"
	"shredder/internal/obs"
)

// Node is one shredderd instance in the topology. The ID places the
// node on the ring: it must be stable across restarts and topology
// edits, or the node's chunks migrate out from under it.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Topology is the static node set a cluster routes across.
type Topology struct {
	Nodes []Node `json:"nodes"`
}

// Validate rejects empty topologies and duplicate IDs or addresses.
func (t Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return errors.New("cluster: topology has no nodes")
	}
	ids := make(map[string]bool, len(t.Nodes))
	addrs := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if n.ID == "" || n.Addr == "" {
			return fmt.Errorf("cluster: node %+v needs both an id and an address", n)
		}
		if ids[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		if addrs[n.Addr] {
			return fmt.Errorf("cluster: duplicate node address %q", n.Addr)
		}
		ids[n.ID] = true
		addrs[n.Addr] = true
	}
	return nil
}

// ParseNodes parses a flag-style topology: comma-separated entries,
// each "id=addr" or a bare "addr" (which uses the address as the ID —
// fine for experiments, but give nodes explicit IDs in any deployment
// where addresses might change, because the ID is what places data).
func ParseNodes(list string) (Topology, error) {
	var t Topology
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, found := strings.Cut(entry, "=")
		if !found {
			id, addr = entry, entry
		}
		t.Nodes = append(t.Nodes, Node{ID: id, Addr: addr})
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// LoadTopology reads a JSON topology file: {"nodes": [{"id": ...,
// "addr": ...}, ...]}.
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("cluster: read topology: %w", err)
	}
	var t Topology
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("cluster: parse topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// DefaultSpec is the cluster-side default chunking configuration: the
// protocol-default Rabin engine with the daemon's conventional size
// bounds, which a dedup session requires.
func DefaultSpec() chunk.Spec {
	spec := chunk.DefaultSpec()
	spec.MinSize = 2 << 10
	spec.MaxSize = 32 << 10
	return spec
}

// Config assembles a Cluster.
type Config struct {
	// Topology is the static node set (required).
	Topology Topology
	// Vnodes is the virtual-node count per node (0: DefaultVnodes).
	Vnodes int
	// Spec is the chunking configuration used where the cluster chunks
	// itself: RoutedSession.Backup and the router's raw-protocol
	// clients. Zero means DefaultSpec. MaxSize must be in
	// (0, DefaultFrameSize]: the restore path re-interleaves per-node
	// streams at frame granularity, so every chunk must fit one frame.
	Spec chunk.Spec
	// Dial bounds node connects (zero: one DefaultDialTimeout attempt).
	Dial ingest.DialOptions
	// MaxIdlePerNode bounds the warm sessions kept per node (0: 2).
	MaxIdlePerNode int
	// Obs, when set, registers the routing metrics there.
	Obs *obs.Registry
	// Tracer, when set, records router-side spans, remote-parented
	// under the client's when one arrives on the wire.
	Tracer *obs.Tracer
	// Logger, when set, receives routing-layer logs.
	Logger *slog.Logger
}

// Cluster is the shared routing state: the ring, one session pool per
// node, and the metric handles. Safe for concurrent use; every
// concurrent client stream leases its own node sessions.
type Cluster struct {
	ring   *Ring
	spec   chunk.Spec
	eng    chunk.Engine
	pools  []*ingest.SessionPool
	tracer *obs.Tracer
	log    *slog.Logger
	met    *metrics
}

// New validates cfg and builds the cluster. No connections are opened
// yet: nodes are dialed lazily, per stream, as ownership demands.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Topology, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	spec := cfg.Spec
	if spec == (chunk.Spec{}) {
		spec = DefaultSpec()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.MaxSize <= 0 || spec.MaxSize > ingest.DefaultFrameSize {
		return nil, fmt.Errorf("cluster: max chunk size %d outside (0, %d]: restore re-interleaves node streams at frame granularity, so chunks must fit one frame", spec.MaxSize, ingest.DefaultFrameSize)
	}
	eng, err := chunk.New(spec)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		ring:   ring,
		spec:   spec,
		eng:    eng,
		tracer: cfg.Tracer,
		log:    cfg.Logger,
		met:    newMetrics(cfg.Obs, cfg.Topology),
	}
	// Node sessions negotiate the most permissive bounded spec: the
	// chunks a node receives were cut by some client's engine (possibly
	// larger than ours, never larger than a frame), and negotiation is
	// about the *server-side* engine, which dedup sub-streams never use.
	nodeSpec := spec
	nodeSpec.MaxSize = ingest.DefaultFrameSize
	for i, n := range cfg.Topology.Nodes {
		node := n
		idx := i
		c.pools = append(c.pools, &ingest.SessionPool{
			Addr:    node.Addr,
			Dial:    cfg.Dial,
			MaxIdle: cfg.MaxIdlePerNode,
			Setup: func(s *ingest.Session) error {
				if _, err := s.NegotiateDedup(nodeSpec); err != nil {
					return err
				}
				c.met.setNodeUp(idx, true)
				return nil
			},
		})
	}
	return c, nil
}

// Ring exposes the cluster's hash ring (read-only).
func (c *Cluster) Ring() *Ring { return c.ring }

// Spec returns the cluster-side chunking configuration.
func (c *Cluster) Spec() chunk.Spec { return c.spec }

// Close drops every warm node session. In-flight streams are
// unaffected; the cluster stays usable (later streams redial).
func (c *Cluster) Close() {
	for _, p := range c.pools {
		p.Close()
	}
}

// lease gets a session to node i, counting dial failures and marking
// the node down when it cannot be reached.
func (c *Cluster) lease(i int) (*ingest.Session, error) {
	s, err := c.pools[i].Get()
	if err != nil {
		c.met.setNodeUp(i, false)
		c.met.dialFailure(i)
		return nil, &NodeError{Node: c.ring.Node(i).ID, Op: "dial", Err: err}
	}
	return s, nil
}

// span starts one routing-operation span, remote-parented when the
// client sent a trace context; nil (a universal no-op) untraced.
func (c *Cluster) span(name string, ctx obs.SpanContext, attrs ...obs.Attr) *obs.Span {
	if c.tracer == nil {
		return nil
	}
	return c.tracer.StartRemote(name, ctx, attrs...)
}
