package backup

import (
	"fmt"
	"testing"

	"shredder/internal/workload"
)

// TestServiceMultiVM runs the cross-VM dedup experiment through the
// shredderd service path (concurrent sessions over net.Pipe) and
// checks it against the in-process Server on the same images: same
// dedup totals, same cross-VM sharing, byte-exact restores (asserted
// inside MultiVM).
func TestServiceMultiVM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shredder.BufferSize = 2 << 20
	cfg.BufferSize = 2 << 20

	golden := workload.NewImage(100, 8<<20, 64<<10, 0.05)
	names := []string{"golden"}
	images := [][]byte{golden.Master}
	for vm := 1; vm <= 4; vm++ {
		names = append(names, fmt.Sprintf("vm-%d", vm))
		images = append(images, golden.Snapshot(int64(vm)))
	}

	svc, err := NewService(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	results, err := svc.MultiVM(names, images)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Stats.Bytes != int64(len(images[i])) {
			t.Fatalf("stream %q saw %d bytes, want %d", r.Name, r.Stats.Bytes, len(images[i]))
		}
	}

	// In-process ground truth: the original single-threaded Server.
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if _, err := srv.Backup(names[i], images[i], ShredderGPU); err != nil {
			t.Fatal(err)
		}
	}

	got, want := svc.SiteStats(), srv.SiteStats()
	// Concurrent interleaving cannot change the totals: same chunks,
	// same logical and stored bytes, same unique count.
	if got.LogicalBytes != want.LogicalBytes || got.Chunks != want.Chunks ||
		got.StoredBytes != want.StoredBytes || got.UniqueChunks != want.UniqueChunks {
		t.Fatalf("service path stats %+v, in-process path %+v", got, want)
	}
	if got.Ratio() < 3 {
		t.Fatalf("service-path dedup ratio %.2f, want > 3 for standardized images", got.Ratio())
	}
}

// TestServiceMultiVMDedup routes the multi-VM experiment over
// two-phase content-addressed sessions: every stream restores
// byte-exactly (asserted inside MultiVMDedup), the aggregate dedup
// totals match the raw service path on the same images, and the wire
// statistics show near-identical snapshots mostly skipped the wire.
func TestServiceMultiVMDedup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shredder.BufferSize = 2 << 20
	cfg.BufferSize = 2 << 20

	golden := workload.NewImage(100, 4<<20, 64<<10, 0.05)
	names := []string{"golden"}
	images := [][]byte{golden.Master}
	for vm := 1; vm <= 3; vm++ {
		names = append(names, fmt.Sprintf("vm-%d", vm))
		images = append(images, golden.Snapshot(int64(vm)))
	}

	dedupSvc, err := NewService(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	results, err := dedupSvc.MultiVMDedup(names, images)
	if err != nil {
		t.Fatal(err)
	}
	var logical, wired int64
	for i, r := range results {
		if r.Stats.Bytes != int64(len(images[i])) {
			t.Fatalf("stream %q saw %d bytes, want %d", r.Name, r.Stats.Bytes, len(images[i]))
		}
		if r.Stats.Wire.ChunksSent+r.Stats.Wire.ChunksSkipped != r.Stats.Chunks {
			t.Fatalf("stream %q wire accounting %+v vs %d chunks", r.Name, r.Stats.Wire, r.Stats.Chunks)
		}
		logical += r.Stats.Wire.LogicalBytes
		wired += r.Stats.Wire.WireBytes
	}
	// Whatever the session interleaving, one VM's worth of unique data
	// plus churn crosses; the near-identical copies must not.
	if wired >= logical/2 {
		t.Fatalf("dedup wire moved %d of %d logical bytes", wired, logical)
	}

	rawSvc, err := NewService(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rawSvc.MultiVM(names, images); err != nil {
		t.Fatal(err)
	}
	raw, dw := rawSvc.SiteStats(), dedupSvc.SiteStats()
	// Interleaving can shift which stream pays for a chunk, never the
	// totals.
	if raw.LogicalBytes != dw.LogicalBytes || raw.Chunks != dw.Chunks ||
		raw.StoredBytes != dw.StoredBytes || raw.UniqueChunks != dw.UniqueChunks {
		t.Fatalf("dedup service totals %+v diverge from raw %+v", dw, raw)
	}
}

// TestServiceExpireCompact runs retention through the service path:
// expiring one VM's snapshot releases its references, compaction
// shrinks the stored footprint, and the surviving streams restore.
func TestServiceExpireCompact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shredder.BufferSize = 2 << 20
	cfg.BufferSize = 2 << 20

	golden := workload.NewImage(100, 2<<20, 64<<10, 0.5)
	names := []string{"keep", "expire"}
	images := [][]byte{golden.Snapshot(1), golden.Snapshot(2)}
	svc, err := NewService(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.MultiVMDedup(names, images); err != nil {
		t.Fatal(err)
	}
	before := svc.SiteStats()
	ds, err := svc.Expire("expire")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ChunksFreed == 0 || ds.BytesFreed == 0 {
		t.Fatalf("expire freed nothing at 50%% churn: %+v", ds)
	}
	after := svc.SiteStats()
	if after.StoredBytes != before.StoredBytes-ds.BytesFreed {
		t.Fatalf("stored bytes %d, want %d - %d", after.StoredBytes, before.StoredBytes, ds.BytesFreed)
	}
	if _, err := svc.Compact(0.9); err != nil {
		t.Fatal(err)
	}
	c := svc.Dial()
	defer c.Close()
	if err := c.Verify("keep", images[0]); err != nil {
		t.Fatalf("retained stream after expire+compact: %v", err)
	}
	if _, err := svc.Expire("expire"); err == nil {
		t.Fatal("second expire of the same name succeeded")
	}
}
