package persist

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
)

// copyTree clones a data directory so each truncation experiment gets
// a pristine crash image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// walState is the index state implied by a WAL prefix.
type walState struct {
	index    map[shardstore.Hash]shardstore.Ref
	refcount map[shardstore.Hash]int64
}

// replayPrefix computes, independently of the recovery code, the state
// a clean prefix of parsed WAL bodies describes.
func replayPrefix(t *testing.T, bodies [][]byte) walState {
	t.Helper()
	st := walState{
		index:    make(map[shardstore.Hash]shardstore.Ref),
		refcount: make(map[shardstore.Hash]int64),
	}
	for _, body := range bodies {
		switch body[0] {
		case recInsert:
			h, ci, off, length, err := decodeInsert(body)
			if err != nil {
				t.Fatal(err)
			}
			st.index[h] = shardstore.Ref{Shard: 0, Container: ci, Offset: off, Length: length}
			st.refcount[h] = 1
		case recRefDelta:
			h, delta, err := decodeRefDelta(body)
			if err != nil {
				t.Fatal(err)
			}
			st.refcount[h] += delta
		default:
			t.Fatalf("unexpected record type %d in shard WAL", body[0])
		}
	}
	return st
}

// TestCrashTruncateFinalRecord is the crash-injection matrix the issue
// asks for: write a known history, then for EVERY byte boundary of the
// final WAL record (and, for good measure, every earlier boundary in
// the file) truncate the log there and assert recovery comes back with
// exactly the state of the longest clean record prefix — and stays
// writable.
func TestCrashTruncateFinalRecord(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 20}
	st := openStore(t, dir, opts)
	chunkA := bytes.Repeat([]byte{'a'}, 300)
	chunkB := bytes.Repeat([]byte{'b'}, 200)
	// History: insert A, insert B, refdelta A (duplicate hit). The
	// final record is the refcount delta; the test also covers final-
	// record-is-insert implicitly by cutting inside earlier records.
	for _, c := range [][]byte{chunkA, chunkB, chunkA} {
		if _, _, err := st.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "shard-0000", walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Parse the record boundaries so each cut can be mapped to its
	// expected clean prefix.
	var bodies [][]byte
	var ends []int
	for off := 0; off < len(raw); {
		body, size, err := readRecord(raw[off:])
		if err != nil {
			t.Fatalf("pristine WAL torn at %d: %v", off, err)
		}
		bodies = append(bodies, append([]byte(nil), body...))
		off += size
		ends = append(ends, off)
	}
	if len(bodies) != 3 {
		t.Fatalf("history produced %d records, want 3", len(bodies))
	}

	prefixRecords := func(cut int) int {
		n := 0
		for _, end := range ends {
			if end <= cut {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(raw); cut++ {
		crash := t.TempDir()
		copyTree(t, dir, crash)
		if err := os.Truncate(filepath.Join(crash, "shard-0000", walName), int64(cut)); err != nil {
			t.Fatal(err)
		}
		got, err := OpenStore(crash, opts)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		want := replayPrefix(t, bodies[:prefixRecords(cut)])
		stats := got.Stats()
		if stats.UniqueChunks != int64(len(want.index)) {
			t.Fatalf("cut at %d: %d unique chunks, want %d", cut, stats.UniqueChunks, len(want.index))
		}
		var wantChunks int64
		for h, rc := range want.refcount {
			if got.Refcount(h) != rc {
				t.Fatalf("cut at %d: refcount %d for %x, want %d", cut, got.Refcount(h), h[:4], rc)
			}
			wantChunks += rc
		}
		if stats.Chunks != wantChunks {
			t.Fatalf("cut at %d: stats %+v, want %d chunks", cut, stats, wantChunks)
		}
		for h, ref := range want.index {
			gref, ok := got.Has(h)
			if !ok || gref != ref {
				t.Fatalf("cut at %d: entry %x = (%+v, %v), want %+v", cut, h[:4], gref, ok, ref)
			}
			data, err := got.Get(gref)
			if err != nil {
				t.Fatalf("cut at %d: %v", cut, err)
			}
			if dedup.Sum(data) != h {
				t.Fatalf("cut at %d: content of %x corrupted", cut, h[:4])
			}
		}
		// The repaired store must keep working: a fresh put, a clean
		// close, and an intact second recovery.
		if _, _, err := got.Put(bytes.Repeat([]byte{'c'}, 100)); err != nil {
			t.Fatalf("cut at %d: put after recovery: %v", cut, err)
		}
		statsAfter := got.Stats()
		if err := got.Close(); err != nil {
			t.Fatalf("cut at %d: close after recovery: %v", cut, err)
		}
		again, err := OpenStore(crash, opts)
		if err != nil {
			t.Fatalf("cut at %d: second recovery failed: %v", cut, err)
		}
		if s := again.Stats(); s != statsAfter {
			t.Fatalf("cut at %d: second recovery drifted: %+v != %+v", cut, s, statsAfter)
		}
		again.Close()
	}
}

// TestCrashTruncateRecipeLog applies the same byte-boundary sweep to
// the store-level recipe journal.
func TestCrashTruncateRecipeLog(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1}
	st := openStore(t, dir, opts)
	if _, _, err := st.Put([]byte("chunk")); err != nil {
		t.Fatal(err)
	}
	h := dedup.Sum([]byte("chunk"))
	if err := st.CommitRecipe("first", shardstore.Recipe{h}); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe("second", shardstore.Recipe{h, h}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, recipeLogName))
	if err != nil {
		t.Fatal(err)
	}
	_, firstSize, err := readRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	for cut := firstSize; cut <= len(raw); cut++ {
		crash := t.TempDir()
		copyTree(t, dir, crash)
		if err := os.Truncate(filepath.Join(crash, recipeLogName), int64(cut)); err != nil {
			t.Fatal(err)
		}
		got, err := OpenStore(crash, opts)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantNames := 1
		if cut == len(raw) {
			wantNames = 2
		}
		if names := got.RecipeNames(); len(names) != wantNames {
			t.Fatalf("cut at %d: recovered recipes %v, want %d", cut, names, wantNames)
		}
		got.Close()
	}
}
