package core

import (
	"errors"
	"io"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/chunker"
)

// failingReader delivers n good bytes, then fails.
type failingReader struct {
	remaining int
	err       error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, f.err
	}
	n := len(p)
	if n > f.remaining {
		n = f.remaining
	}
	for i := 0; i < n; i++ {
		p[i] = byte(i)
	}
	f.remaining -= n
	return n, nil
}

func TestReaderErrorPropagates(t *testing.T) {
	s := newShredder(t, nil)
	sentinel := errors.New("SAN link dropped")
	_, err := s.ChunkReader(&failingReader{remaining: 3 << 20, err: sentinel}, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want the reader's", err)
	}
}

func TestReaderEOFMidBufferIsClean(t *testing.T) {
	// A stream ending mid-buffer (io.EOF after a short read) must
	// finish normally with a tail chunk.
	s := newShredder(t, nil)
	n := 1<<20 + 12345 // 1.01 buffers
	rep, err := s.ChunkReader(&failingReader{remaining: n, err: io.EOF}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != int64(n) {
		t.Fatalf("processed %d bytes, want %d", rep.Bytes, n)
	}
}

// trickleReader returns one byte per Read call: the pathological
// io.Reader the pipeline must still handle correctly.
type trickleReader struct {
	data []byte
	off  int
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.off]
	r.off++
	return 1, nil
}

func TestTrickleReader(t *testing.T) {
	data := testData(60, 64<<10)
	s := newShredder(t, func(c *Config) { c.BufferSize = 16 << 10 })
	var got []chunk.Chunk
	rep, err := s.ChunkReader(&trickleReader{data: data}, func(c chunk.Chunk, _ []byte) error {
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != int64(len(data)) {
		t.Fatalf("bytes %d, want %d", rep.Bytes, len(data))
	}
	ref, _ := chunker.New(s.Config().Chunking.RabinParams())
	want := ref.Split(data)
	if len(got) != len(want) {
		t.Fatalf("%d chunks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestCallbackErrorMidStreamStops(t *testing.T) {
	s := newShredder(t, nil)
	sentinel := errors.New("application back-pressure")
	emitted := 0
	_, err := s.ChunkBytes(testData(61, 4<<20), func(chunk.Chunk, []byte) error {
		emitted++
		if emitted == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v", err)
	}
	if emitted != 3 {
		t.Fatalf("emitted %d chunks after error, want exactly 3", emitted)
	}
}

func TestShredderSequentialReuse(t *testing.T) {
	// The same Shredder instance must chunk several streams correctly
	// in sequence (window/limiter state must not leak between runs).
	s := newShredder(t, nil)
	a := testData(62, 2<<20)
	b := testData(63, 2<<20)
	ref, _ := chunker.New(s.Config().Chunking.RabinParams())
	for run, data := range [][]byte{a, b, a} {
		var got []chunk.Chunk
		if _, err := s.ChunkBytes(data, func(c chunk.Chunk, _ []byte) error {
			got = append(got, c)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := ref.Split(data)
		if len(got) != len(want) {
			t.Fatalf("run %d: %d chunks, want %d", run, len(got), len(want))
		}
		for i := range want {
			if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
				t.Fatalf("run %d chunk %d mismatch", run, i)
			}
		}
	}
}
