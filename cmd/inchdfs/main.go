// Command inchdfs demonstrates the Inc-HDFS case study end to end:
// it uploads a text corpus with content-defined chunking
// (copyFromLocalGPU), mutates a controlled percentage, re-uploads, and
// runs an incremental word-count over the splits, reporting block
// reuse and modeled cluster speedup.
//
//	inchdfs [-size MiB] [-change pct] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"shredder/internal/core"
	"shredder/internal/hdfs"
	"shredder/internal/mapreduce"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	sizeMB := flag.Int("size", 8, "corpus size in MiB")
	change := flag.Float64("change", 5, "percentage of the corpus to change")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*sizeMB<<20, *change, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "inchdfs:", err)
		os.Exit(1)
	}
}

func run(size int, change float64, seed int64) error {
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.BufferSize = 8 << 20
	cfg.Chunking.MaskBits = 16 // ~64 KB splits
	cfg.Chunking.Marker = 1<<16 - 1
	shred, err := core.New(cfg)
	if err != nil {
		return err
	}
	client := hdfs.NewClient(cluster, shred)
	client.RecordDelim = '\n'

	v1 := workload.Text(seed, size)
	rep1, err := client.CopyFromLocalGPU("corpus-v1", v1)
	if err != nil {
		return err
	}
	fmt.Printf("upload v1: %d blocks, %s stored, chunking at %s (simulated GPU pipeline)\n",
		rep1.Blocks, stats.Bytes(rep1.BytesStored), stats.GBps(rep1.Shredder.Throughput))

	v2 := workload.MutateClusteredReplace(v1, seed+99, change, 4)
	rep2, err := client.CopyFromLocalGPU("corpus-v2", v2)
	if err != nil {
		return err
	}
	reuse := 1 - float64(rep2.NewBlocks)/float64(rep2.Blocks)
	fmt.Printf("upload v2 (%.0f%% changed): %d blocks, %d new, %.0f%% reused, %s shipped\n",
		change, rep2.Blocks, rep2.NewBlocks, reuse*100, stats.Bytes(rep2.BytesStored))

	// Incremental word count across the two versions.
	loadSplits := func(name string) ([][]byte, error) {
		splits, err := cluster.InputSplits(name)
		if err != nil {
			return nil, err
		}
		out := make([][]byte, len(splits))
		for i, s := range splits {
			out[i], err = cluster.ReadBlock(s.Block.ID)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	s1, err := loadSplits("corpus-v1")
	if err != nil {
		return err
	}
	s2, err := loadSplits("corpus-v2")
	if err != nil {
		return err
	}
	memo := mapreduce.NewMemo()
	eng := &mapreduce.Engine{Memo: memo}
	if _, _, err := eng.Run(mapreduce.WordCountJob(), s1); err != nil {
		return err
	}
	_, inc, err := eng.Run(mapreduce.WordCountJob(), s2)
	if err != nil {
		return err
	}
	_, full, err := (&mapreduce.Engine{}).Run(mapreduce.WordCountJob(), s2)
	if err != nil {
		return err
	}
	model := mapreduce.DefaultClusterModel()
	fmt.Printf("word-count on v2: %d/%d map tasks re-executed, modeled speedup %s over Hadoop\n",
		inc.MapExecuted, inc.MapTasks, stats.Speedup(model.Speedup(*full, *inc)))
	return nil
}
