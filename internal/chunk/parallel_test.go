package chunk

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"shredder/internal/chunker"
)

// parallelTestSpecs covers both engines in both paper-default and
// limit-heavy configurations, so the differential tests exercise the
// unbounded path, the min/max forced-cut path and mask normalization.
func parallelTestSpecs(t testing.TB) map[string]Spec {
	limited := chunker.DefaultParams()
	limited.MaskBits = 11
	limited.Marker = 1<<11 - 1
	limited.MinSize = 2048
	limited.MaxSize = 16384
	return map[string]Spec{
		"rabin-default":  DefaultSpec(),
		"rabin-limits":   RabinSpec(limited),
		"fastcdc-8k":     FastCDCSpec(8192),
		"fastcdc-1k":     FastCDCSpec(1024),
		"fastcdc-nonorm": {Algo: AlgoFastCDC, AvgSize: 8192, MinSize: 2048, MaxSize: 32768},
	}
}

func parallelTestData(t testing.TB, seed int64, n int) []byte {
	t.Helper()
	data := make([]byte, n)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	// A low-entropy stripe forces the no-boundary path (max-size cuts
	// for FastCDC, one giant tail for unbounded Rabin).
	if n > 1<<20 {
		copy(data[n/3:n/3+256<<10], make([]byte, 256<<10))
	}
	return data
}

func chunksEqual(t *testing.T, want, got []Chunk) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("chunk count mismatch: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("chunk %d mismatch:\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

// TestParallelSplitDifferential proves Parallel.Split byte-identical
// to the wrapped engine's Split for every engine, feed size and worker
// count.
func TestParallelSplitDifferential(t *testing.T) {
	sizes := []int{0, 1, 100, 4 << 10, 2*parallelMinRegion - 1, 2 * parallelMinRegion, 3<<20 + 17}
	workers := []int{1, 2, 3, 7, 16}
	for name, spec := range parallelTestSpecs(t) {
		t.Run(name, func(t *testing.T) {
			inner, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range sizes {
				data := parallelTestData(t, int64(n)+1, n)
				want := inner.Split(data)
				for _, w := range workers {
					p := NewParallel(inner, w)
					got := p.Split(data)
					if len(want) != len(got) {
						t.Fatalf("n=%d workers=%d: chunk count %d != %d", n, w, len(got), len(want))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("n=%d workers=%d chunk %d:\nwant %+v\ngot  %+v", n, w, i, want[i], got[i])
						}
					}
				}
			}
		})
	}
}

// TestParallelStreamDifferential proves the parallel stream emits
// exactly the chunks of a sequential Split over the concatenated
// writes, with the right bytes, for varied write granularities.
func TestParallelStreamDifferential(t *testing.T) {
	writeSizes := []int{1 << 20, 64 << 10, 7, 3<<20 + 11}
	for name, spec := range parallelTestSpecs(t) {
		t.Run(name, func(t *testing.T) {
			inner, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			data := parallelTestData(t, 42, 6<<20+313)
			want := inner.Split(data)
			for _, ws := range writeSizes {
				for _, workers := range []int{2, 8} {
					p := NewParallel(inner, workers)
					var got []Chunk
					s := p.Stream(func(c Chunk, b []byte) error {
						if !bytes.Equal(b, data[c.Offset:c.End()]) {
							return fmt.Errorf("chunk at %d: emitted bytes differ from stream", c.Offset)
						}
						got = append(got, c)
						return nil
					})
					for off := 0; off < len(data); off += ws {
						end := off + ws
						if end > len(data) {
							end = len(data)
						}
						if _, err := s.Write(data[off:end]); err != nil {
							t.Fatal(err)
						}
					}
					if s.Offset() != int64(len(data)) {
						t.Fatalf("Offset() = %d, want %d", s.Offset(), len(data))
					}
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					if len(want) != len(got) {
						t.Fatalf("ws=%d workers=%d: chunk count %d != %d", ws, workers, len(got), len(want))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("ws=%d workers=%d chunk %d:\nwant %+v\ngot  %+v", ws, workers, i, want[i], got[i])
						}
					}
				}
			}
		})
	}
}

// TestParallelSplitQuick drives random small inputs through the
// parallel scan machinery directly (bypassing the too-small fallback)
// so the seam logic is exercised at region sizes a test can afford.
func TestParallelSplitQuick(t *testing.T) {
	for name, spec := range parallelTestSpecs(t) {
		t.Run(name, func(t *testing.T) {
			inner, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			sc := inner.(regionScanner)
			check := func(seed int64, nRaw uint16, workers uint8) bool {
				n := int(nRaw) * 8
				w := int(workers)%7 + 2
				data := parallelTestData(t, seed, n)
				region := (n + w - 1) / w
				if region == 0 {
					region = 1
				}
				var cands []candidate
				for lo := 0; lo < n; lo += region {
					hi := lo + region
					if hi > n {
						hi = n
					}
					sc.scanRegion(data, lo, hi, func(c candidate) { cands = append(cands, c) })
				}
				want := inner.Split(data)
				got := sc.resolve(data, 0, cands)
				if len(want) != len(got) {
					return false
				}
				for i := range want {
					if want[i] != got[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelResolveMidStream checks resolve with a nonzero start and
// stale candidates, the shape the streaming path feeds it.
func TestParallelResolveMidStream(t *testing.T) {
	for name, spec := range parallelTestSpecs(t) {
		t.Run(name, func(t *testing.T) {
			inner, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			sc := inner.(regionScanner)
			data := parallelTestData(t, 7, 1<<20)
			var cands []candidate
			sc.scanRegion(data, 0, len(data), func(c candidate) { cands = append(cands, c) })
			full := sc.resolve(data, 0, cands)
			if len(full) < 2 {
				t.Skip("input produced too few chunks to split")
			}
			start := int(full[0].End())
			got := sc.resolve(data, start, cands)
			chunksEqual(t, full[1:], got)
		})
	}
}

// TestParallelFallbacks pins the degraded paths: one worker and small
// inputs must use the wrapped engine directly.
func TestParallelFallbacks(t *testing.T) {
	inner, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	data := parallelTestData(t, 3, 64<<10)
	want := inner.Split(data)
	chunksEqual(t, want, NewParallel(inner, 1).Split(data))
	chunksEqual(t, want, NewParallel(inner, 8).Split(data)) // below 2*parallelMinRegion
	if w := NewParallel(inner, 0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d after GOMAXPROCS default", w)
	}
}

func BenchmarkParallelSplit(b *testing.B) {
	data := parallelTestData(b, 1, 64<<20)
	for name, spec := range map[string]Spec{"rabin": DefaultSpec(), "fastcdc": FastCDCSpec(8192)} {
		inner, err := New(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				p := NewParallel(inner, workers)
				b.SetBytes(int64(len(data)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Split(data)
				}
			})
		}
	}
}
