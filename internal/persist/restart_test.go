package persist

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/ingest"
	"shredder/internal/shardstore"
	"shredder/internal/workload"
)

// serveConn wires one in-memory client session to a server.
func serveConn(srv *ingest.Server) *ingest.Client {
	cend, send := net.Pipe()
	go func() {
		defer send.Close()
		_ = srv.ServeConn(send)
	}()
	return ingest.NewClient(cend)
}

// ingestConfig shrinks the service defaults so the test stays fast.
func ingestConfig() ingest.Config {
	cfg := ingest.DefaultConfig()
	cfg.Shredder.BufferSize = 1 << 20
	return cfg
}

// TestServerRestartRoundTrip is the acceptance path for the
// persistence layer: a multi-VM series ingested through ingest.Server
// backed by a durable store, the store closed (the "restart"), then
// reopened from the data directory — every recorded name must restore
// byte-exactly, the dedup statistics must be preserved, and the
// recovered index must keep deduplicating new streams.
func TestServerRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 8, Fsync: FsyncPolicy{Mode: FsyncNever}}

	// The series: two VMs, each a master plus two snapshots, ingested
	// over concurrent sessions like the §7.2 consolidation experiment.
	streams := make(map[string][]byte)
	var names []string
	for vm := 0; vm < 2; vm++ {
		seed := int64(100 * (vm + 1))
		im := workload.NewImage(seed, 1<<20, 64<<10, 0.1)
		name := fmt.Sprintf("vm%d-master", vm)
		streams[name] = im.Master
		names = append(names, name)
		for s := 1; s <= 2; s++ {
			name = fmt.Sprintf("vm%d-snapshot-%d", vm, s)
			streams[name] = im.Snapshot(seed + int64(s))
			names = append(names, name)
		}
	}

	store := openStore(t, dir, opts)
	srv, err := ingest.NewServerWithStore(ingestConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			c := serveConn(srv)
			defer c.Close()
			if _, err := c.BackupBytes(name, streams[name]); err != nil {
				errs[i] = err
			}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	before := store.Stats()
	if before.IndexHits == 0 {
		t.Fatal("series produced no duplicate hits; workload broken")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the data dir under a fresh server.
	store = openStore(t, dir, opts)
	defer store.Close()
	if after := store.Stats(); after != before {
		t.Fatalf("recovered stats %+v, want %+v", after, before)
	}
	srv, err = ingest.NewServerWithStore(ingestConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	c := serveConn(srv)
	defer c.Close()
	for _, name := range names {
		if err := c.Verify(name, streams[name]); err != nil {
			t.Fatalf("after restart, %s: %v", name, err)
		}
	}

	// A re-pushed stream must be recognized as fully duplicate by the
	// recovered index.
	st, err := c.BackupBytes("vm0-again", streams["vm0-master"])
	if err != nil {
		t.Fatal(err)
	}
	if st.DupChunks != st.Chunks {
		t.Fatalf("re-pushed stream: %d of %d chunks deduplicated", st.DupChunks, st.Chunks)
	}
}

// TestServerRestartAfterWALTruncation combines the service path with
// crash injection: tear the final record off one shard's WAL and make
// sure the server comes back and serves the streams whose chunks
// survived intact.
func TestServerRestartAfterWALTruncation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, Fsync: FsyncPolicy{Mode: FsyncNever}}
	store := openStore(t, dir, opts)
	srv, err := ingest.NewServerWithStore(ingestConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	im := workload.NewImage(7, 512<<10, 64<<10, 0.1)
	c := serveConn(srv)
	if _, err := c.BackupBytes("master", im.Master); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear half of the final WAL record off.
	truncateTail(t, dir, 3)

	store = openStore(t, dir, opts)
	defer store.Close()
	after := store.Stats()
	if after.UniqueChunks == 0 {
		t.Fatal("recovery lost everything")
	}
	// The torn tail dropped the last record. If it was the final insert,
	// one chunk of the recipe now dangles and Reconstruct must fail
	// through the normal error path rather than return corrupt bytes; if
	// it was a refcount delta, the stream is still fully intact.
	r, ok := store.Recipe("master")
	if !ok {
		t.Fatal("recipe lost")
	}
	if data, err := store.Reconstruct(r); err == nil {
		if !bytes.Equal(data, im.Master) {
			t.Fatal("reconstruction succeeded with wrong bytes")
		}
	}
}

// TestDeleteRestartReingest covers the restart path after deletions —
// the gap the Missing/PinBatch differential tests had: a stream is
// expired over the wire, the store restarts, and the recovered
// presence answers (Store.Missing, Backing.Missing, PinBatch's missing
// set) must all agree that the freed chunks are gone while the shared
// ones survive; a re-ingest then uploads exactly the freed bodies and
// restores byte-exactly.
func TestDeleteRestartReingest(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 4, Fsync: FsyncPolicy{Mode: FsyncNever}}
	spec := chunk.FastCDCSpec(4 << 10)
	im := workload.NewImage(55, 1<<20, 64<<10, 0.5)
	snap := im.Snapshot(56)

	store := openStore(t, dir, opts)
	srv, err := ingest.NewServerWithStore(ingestConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	c := serveConn(srv)
	if _, err := c.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BackupDedupBytes("master", im.Master); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BackupDedupBytes("snap", snap); err != nil {
		t.Fatal(err)
	}
	// The full fingerprint population of both streams, for presence
	// queries below.
	eng, err := chunk.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	hashesOf := func(img []byte) []shardstore.Hash {
		var hs []shardstore.Hash
		for _, ck := range eng.Split(img) {
			hs = append(hs, dedup.Sum(img[ck.Offset:ck.End()]))
		}
		return hs
	}
	all := append(hashesOf(im.Master), hashesOf(snap)...)

	ds, err := store.DeleteRecipe("master")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ChunksFreed == 0 {
		t.Fatal("delete freed nothing at 50% churn")
	}
	wantMissing := store.Missing(all)
	if len(wantMissing) == 0 {
		t.Fatal("no fingerprints missing after delete")
	}
	c.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: both presence surfaces agree with the pre-restart store.
	backing, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err = shardstore.Open(backing)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := store.Missing(all); !reflect.DeepEqual(got, wantMissing) {
		t.Fatalf("recovered store Missing = %v, want %v", got, wantMissing)
	}
	if got := backing.Missing(all); !reflect.DeepEqual(got, wantMissing) {
		t.Fatalf("recovered backing Missing = %v, want %v", got, wantMissing)
	}
	if _, ok := store.Recipe("master"); ok {
		t.Fatal("deleted recipe recovered")
	}

	// PinBatch's missing set matches Missing (and its pins are real:
	// undo them via a delete of the recipe we then commit).
	_, pinMissing, err := store.PinBatch(all)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pinMissing, wantMissing) {
		t.Fatalf("PinBatch missing = %v, want %v", pinMissing, wantMissing)
	}
	var pinned shardstore.Recipe
	mi := 0
	for i, h := range all {
		if mi < len(pinMissing) && pinMissing[mi] == i {
			mi++
			continue
		}
		pinned = append(pinned, h)
	}
	if err := store.CommitRecipe("pins", pinned); err != nil {
		t.Fatal(err)
	}
	if _, err := store.DeleteRecipe("pins"); err != nil {
		t.Fatal(err)
	}

	// Re-ingest the deleted stream: exactly the freed bodies cross the
	// wire again, and everything restores byte-exactly.
	srv, err = ingest.NewServerWithStore(ingestConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	c = serveConn(srv)
	defer c.Close()
	if _, err := c.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}
	st, err := c.BackupDedupBytes("master", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	masterMissing := 0
	for _, i := range wantMissing {
		if i < len(hashesOf(im.Master)) {
			masterMissing++
		}
	}
	if st.Wire.ChunksSent != int64(masterMissing) {
		t.Fatalf("re-ingest uploaded %d bodies, want the %d the delete freed", st.Wire.ChunksSent, masterMissing)
	}
	for name, want := range map[string][]byte{"master": im.Master, "snap": snap} {
		if err := c.Verify(name, want); err != nil {
			t.Fatalf("after delete+restart+re-ingest, %s: %v", name, err)
		}
	}
}

// truncateTail removes n bytes from the end of shard 0's WAL.
func truncateTail(t *testing.T, dir string, n int64) {
	t.Helper()
	path := filepath.Join(dir, "shard-0000", walName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}
