// Negative suite for the wiresym analyzer: every frame is named,
// every codec round-trips, every decoder is fuzzed.
package ingest

import "errors"

const (
	MsgBegin byte = 0x01
	MsgChunk byte = 0x02
)

var frameName = map[byte]string{
	MsgBegin: "begin",
	MsgChunk: "chunk",
}

var errFrame = errors.New("short frame")

type hello struct{ v byte }

// encodeHelloCtx pairs with decodeHello by shared prefix, matching the
// real protocol's context-carrying encoder.
func encodeHelloCtx(h hello, ctx byte) []byte { return []byte{h.v, ctx} }

func decodeHello(b []byte) (hello, error) {
	if len(b) == 0 {
		return hello{}, errFrame
	}
	return hello{v: b[0]}, nil
}

type Stats struct{ n byte }

func (s Stats) encode() []byte { return []byte{s.n} }

func decodeStats(b []byte) (Stats, error) {
	if len(b) == 0 {
		return Stats{}, errFrame
	}
	return Stats{n: b[0]}, nil
}
