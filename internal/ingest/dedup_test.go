package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/persist"
	"shredder/internal/shardstore"
	"shredder/internal/workload"
)

// dedupSpecs are the engine configurations the dedup-path tests run
// under: the server's stock Rabin setup and a FastCDC engine, both
// bounded (a dedup session requires MaxSize within the frame limit).
func dedupSpecs() map[string]chunk.Spec {
	return map[string]chunk.Spec{
		"rabin":   DefaultConfig().Shredder.Chunking,
		"fastcdc": chunk.FastCDCSpec(4 << 10),
	}
}

// TestDedupBackupRoundTrip is the two-phase happy path: a v3 session
// backs up a master and a similar snapshot with client-side chunking,
// restores both byte-exactly, and the wire statistics show the
// snapshot's duplicate bodies never crossed.
func TestDedupBackupRoundTrip(t *testing.T) {
	for name, spec := range dedupSpecs() {
		t.Run(name, func(t *testing.T) {
			srv, err := NewServer(testConfig(8))
			if err != nil {
				t.Fatal(err)
			}
			c := startSession(t, srv)
			accepted, err := c.NegotiateDedup(spec)
			if err != nil {
				t.Fatal(err)
			}
			if accepted != spec {
				t.Fatalf("accepted spec %+v, want %+v", accepted, spec)
			}
			if c.Version() != ProtocolVersion {
				t.Fatalf("session version %d, want %d", c.Version(), ProtocolVersion)
			}

			im := workload.NewImage(51, 4<<20, 64<<10, 0.05)
			snap := im.Snapshot(52)

			mst, err := c.BackupDedupBytes("master", im.Master)
			if err != nil {
				t.Fatal(err)
			}
			if mst.Bytes != int64(len(im.Master)) || mst.Chunks == 0 {
				t.Fatalf("master stats: %+v", mst)
			}
			// A fresh store misses everything: every body crossed, plus
			// fingerprint overhead.
			if mst.Wire.ChunksSent != mst.Chunks || mst.Wire.ChunksSkipped != 0 {
				t.Fatalf("master wire: %+v for %d chunks", mst.Wire, mst.Chunks)
			}
			if mst.Wire.WireBytes <= mst.Bytes {
				t.Fatalf("master wire bytes %d should exceed logical %d (fingerprints ride along)", mst.Wire.WireBytes, mst.Bytes)
			}

			sst, err := c.BackupDedupBytes("snap", snap)
			if err != nil {
				t.Fatal(err)
			}
			if sst.DupChunks == 0 || sst.Wire.ChunksSkipped == 0 {
				t.Fatalf("snapshot skipped nothing: %+v", sst)
			}
			if sst.Wire.WireBytes >= sst.Bytes/2 {
				t.Fatalf("95%%-similar snapshot still moved %d of %d bytes", sst.Wire.WireBytes, sst.Bytes)
			}
			if sst.Wire.ChunksSent+sst.Wire.ChunksSkipped != sst.Chunks {
				t.Fatalf("wire chunk accounting inconsistent: %+v vs %d chunks", sst.Wire, sst.Chunks)
			}
			for name, want := range map[string][]byte{"master": im.Master, "snap": snap} {
				if err := c.Verify(name, want); err != nil {
					t.Fatalf("verify %s: %v", name, err)
				}
			}
		})
	}
}

// TestDedupMatchesRawExactly is the differential guarantee the issue
// demands: a dedup-mode backup of a data series must store the same
// recipes, produce the same aggregate store statistics, and restore
// the same bytes as a raw-mode backup of the same series under the
// same negotiated engine.
func TestDedupMatchesRawExactly(t *testing.T) {
	for name, spec := range dedupSpecs() {
		t.Run(name, func(t *testing.T) {
			im := workload.NewImage(61, 3<<20, 64<<10, 0.1)
			series := map[string][]byte{"master": im.Master, "snap": im.Snapshot(62)}
			order := []string{"master", "snap"}

			run := func(dedupWire bool) (*Server, map[string]StreamStats) {
				srv, err := NewServer(testConfig(8))
				if err != nil {
					t.Fatal(err)
				}
				c := startSession(t, srv)
				if dedupWire {
					if _, err := c.NegotiateDedup(spec); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := c.Negotiate(spec); err != nil {
						t.Fatal(err)
					}
				}
				out := make(map[string]StreamStats)
				for _, n := range order {
					var st *StreamStats
					var err error
					if dedupWire {
						st, err = c.BackupDedupBytes(n, series[n])
					} else {
						st, err = c.BackupBytes(n, series[n])
					}
					if err != nil {
						t.Fatalf("%s backup %s: %v", map[bool]string{true: "dedup", false: "raw"}[dedupWire], n, err)
					}
					out[n] = *st
				}
				return srv, out
			}

			rawSrv, rawStats := run(false)
			dedupSrv, dedupStats := run(true)

			// Same aggregate store outcome.
			if rs, ds := rawSrv.Store().Stats(), dedupSrv.Store().Stats(); rs != ds {
				t.Fatalf("store stats diverge: raw %+v dedup %+v", rs, ds)
			}
			// Same per-stream dedup accounting (the wire block differs by
			// design: that is the whole point).
			for _, n := range order {
				r, d := rawStats[n], dedupStats[n]
				r.Wire, d.Wire = WireStats{}, WireStats{}
				if r != d {
					t.Fatalf("stream %s stats diverge: raw %+v dedup %+v", n, r, d)
				}
			}
			// Same recipes, ref for ref.
			for _, n := range order {
				rr, ok1 := rawSrv.Recipe(n)
				dr, ok2 := dedupSrv.Recipe(n)
				if !ok1 || !ok2 {
					t.Fatalf("recipe %s missing: raw %v dedup %v", n, ok1, ok2)
				}
				if !reflect.DeepEqual(rr, dr) {
					t.Fatalf("recipe %s diverges:\nraw   %v\ndedup %v", n, rr[:min(4, len(rr))], dr[:min(4, len(dr))])
				}
			}
			// Same restored bytes.
			c := startSession(t, dedupSrv)
			for _, n := range order {
				if err := c.Verify(n, series[n]); err != nil {
					t.Fatalf("dedup store restore %s: %v", n, err)
				}
			}
		})
	}
}

// TestDedupWireSavingsAt95 pins the acceptance criterion: on a
// 95%-redundant snapshot workload the dedup path must move fewer than
// 10% of raw mode's bytes while restoring byte-identically.
func TestDedupWireSavingsAt95(t *testing.T) {
	spec := DefaultConfig().Shredder.Chunking
	im := workload.NewImage(71, 8<<20, 64<<10, 0.05) // 95% of segments survive
	snap := im.Snapshot(72)

	run := func(dedupWire bool) WireStats {
		srv, err := NewServer(testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		c := startSession(t, srv)
		var push func(string, []byte) (*StreamStats, error)
		if dedupWire {
			if _, err := c.NegotiateDedup(spec); err != nil {
				t.Fatal(err)
			}
			push = c.BackupDedupBytes
		} else {
			if _, err := c.Negotiate(spec); err != nil {
				t.Fatal(err)
			}
			push = c.BackupBytes
		}
		if _, err := push("master", im.Master); err != nil {
			t.Fatal(err)
		}
		st, err := push("snap", snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Verify("snap", snap); err != nil {
			t.Fatal(err)
		}
		return st.Wire
	}

	raw := run(false)
	dw := run(true)
	if raw.WireBytes != int64(len(snap)) {
		t.Fatalf("raw mode moved %d bytes for a %d-byte snapshot", raw.WireBytes, len(snap))
	}
	if dw.WireBytes*10 >= raw.WireBytes {
		t.Fatalf("dedup wire %d is not <10%% of raw %d (%.1f%%)",
			dw.WireBytes, raw.WireBytes, float64(dw.WireBytes)/float64(raw.WireBytes)*100)
	}
}

// TestConcurrentDedupOverlap races two dedup sessions whose streams
// share most chunks against one server: both may be told "missing" for
// the same fingerprint and both upload it, the store must dedup the
// collision, every stream must restore byte-exactly, and the final
// refcounts must equal each chunk's total reference count across both
// recipes — the invariant the future GC will free chunks by.
func TestConcurrentDedupOverlap(t *testing.T) {
	spec := chunk.FastCDCSpec(4 << 10)
	srv, err := NewServer(testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	golden := workload.NewImage(81, 2<<20, 64<<10, 0.03)
	images := map[string][]byte{
		"vm-a": golden.Snapshot(1),
		"vm-b": golden.Snapshot(2),
	}

	var wg sync.WaitGroup
	errs := make(map[string]error)
	var mu sync.Mutex
	for name, img := range images {
		wg.Add(1)
		go func(name string, img []byte) {
			defer wg.Done()
			c := startSession(t, srv)
			run := func() error {
				if _, err := c.NegotiateDedup(spec); err != nil {
					return err
				}
				if _, err := c.BackupDedupBytes(name, img); err != nil {
					return err
				}
				return c.Verify(name, img)
			}
			mu.Lock()
			errs[name] = run()
			mu.Unlock()
		}(name, img)
	}
	wg.Wait()
	for name, err := range errs {
		if err != nil {
			t.Fatalf("session %s: %v", name, err)
		}
	}

	// Expected refcounts: one per occurrence of the chunk across both
	// streams, counted by splitting the images with the same engine.
	eng, err := chunk.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[dedup.Hash]int64)
	for _, img := range images {
		for _, c := range eng.Split(img) {
			want[dedup.Sum(img[c.Offset:c.End()])]++
		}
	}
	var totalChunks int64
	for h, n := range want {
		if got := srv.Store().Refcount(h); got != n {
			t.Fatalf("refcount %x = %d, want %d", h[:8], got, n)
		}
		totalChunks += n
	}
	if st := srv.Store().Stats(); st.Chunks != totalChunks || st.UniqueChunks != int64(len(want)) {
		t.Fatalf("store accounting %+v, want %d chunks / %d unique", st, totalChunks, len(want))
	}
}

// TestConcurrentDedupDeleteCompactRace is the retention race battery:
// several dedup sessions re-upload heavily overlapping images while
// each expires its previous generation and a GC goroutine compacts
// continuously — against a durable store. Run under -race this is the
// locking proof; the final refcounts must equal each chunk's exact
// occurrence count across the retained recipes (nothing resurrected,
// nothing lost, nothing leaked), and the store must recover to the
// same state after a restart.
func TestConcurrentDedupDeleteCompactRace(t *testing.T) {
	spec := chunk.FastCDCSpec(4 << 10)
	dir := t.TempDir()
	store, err := persist.OpenStore(dir, persist.Options{
		Shards:        8,
		ContainerSize: 64 << 10,
		Fsync:         persist.FsyncPolicy{Mode: persist.FsyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithStore(testConfig(8), store)
	if err != nil {
		t.Fatal(err)
	}
	const workers, gens = 4, 3
	golden := workload.NewImage(101, 1<<20, 64<<10, 0.03)
	images := make([][][]byte, workers)
	for w := range images {
		images[w] = make([][]byte, gens)
		for g := range images[w] {
			// Every image is a light churn of the same golden master:
			// heavy chunk overlap across workers AND generations, so
			// deletes constantly race re-uploads of the same hashes.
			images[w][g] = golden.Snapshot(int64(10*w + g))
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := startSession(t, srv)
			run := func() error {
				if _, err := c.NegotiateDedup(spec); err != nil {
					return err
				}
				for g := 0; g < gens; g++ {
					name := fmt.Sprintf("w%d-g%d", w, g)
					if _, err := c.BackupDedupBytes(name, images[w][g]); err != nil {
						return fmt.Errorf("backup %s: %w", name, err)
					}
					if err := c.Verify(name, images[w][g]); err != nil {
						return fmt.Errorf("verify %s: %w", name, err)
					}
					if g > 0 {
						old := fmt.Sprintf("w%d-g%d", w, g-1)
						if _, err := c.Delete(old); err != nil {
							return fmt.Errorf("delete %s: %w", old, err)
						}
					}
				}
				return nil
			}
			errs[w] = run()
		}(w)
	}
	gcDone := make(chan struct{})
	gcStop := make(chan struct{})
	go func() {
		defer close(gcDone)
		for {
			select {
			case <-gcStop:
				return
			default:
			}
			if _, err := store.Compact(0.8); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(gcStop)
	<-gcDone
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// One final pass now that the churn is over.
	if _, err := store.Compact(0.8); err != nil {
		t.Fatal(err)
	}

	// Exact final refcounts: each chunk's occurrence count across the
	// retained (last-generation) recipes, and not one hash more.
	eng, err := chunk.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[dedup.Hash]int64)
	var wantChunks int64
	for w := 0; w < workers; w++ {
		img := images[w][gens-1]
		for _, c := range eng.Split(img) {
			want[dedup.Sum(img[c.Offset:c.End()])]++
			wantChunks++
		}
	}
	check := func(label string) {
		t.Helper()
		for h, n := range want {
			if got := store.Refcount(h); got != n {
				t.Fatalf("%s: refcount %x = %d, want %d", label, h[:8], got, n)
			}
		}
		st := store.Stats()
		if st.UniqueChunks != int64(len(want)) || st.Chunks != wantChunks {
			t.Fatalf("%s: store accounting %+v, want %d chunks / %d unique", label, st, wantChunks, len(want))
		}
		c := startSession(t, srv)
		defer c.Close()
		for w := 0; w < workers; w++ {
			name := fmt.Sprintf("w%d-g%d", w, gens-1)
			if err := c.Verify(name, images[w][gens-1]); err != nil {
				t.Fatalf("%s: retained stream %s: %v", label, name, err)
			}
		}
	}
	check("quiescent")

	// Restart: the churned, compacted store recovers to the same state.
	statsBefore := store.Stats()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store, err = persist.OpenStore(dir, persist.Options{Fsync: persist.FsyncPolicy{Mode: persist.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := store.Stats(); got != statsBefore {
		t.Fatalf("recovered stats %+v, want %+v", got, statsBefore)
	}
	srv, err = NewServerWithStore(testConfig(8), store)
	if err != nil {
		t.Fatal(err)
	}
	check("recovered")
}

// TestDedupRequiresNegotiation: BackupDedup on a session that never
// negotiated v3 fails client-side with the typed sentinel, before
// anything crosses the wire.
func TestDedupRequiresNegotiation(t *testing.T) {
	c := NewSession(deadConn{})
	if _, err := c.BackupDedupBytes("x", []byte("data")); !errors.Is(err, ErrDedupUnsupported) {
		t.Fatalf("BackupDedup without negotiation = %v, want ErrDedupUnsupported", err)
	}
	// A v2-negotiated session is equally unsupported.
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c2 := startSession(t, srv)
	if _, err := c2.Negotiate(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.BackupDedupBytes("x", []byte("data")); !errors.Is(err, ErrDedupUnsupported) {
		t.Fatalf("BackupDedup on v2 session = %v, want ErrDedupUnsupported", err)
	}
}

// TestBeginDedupBelowV3Rejected: a BeginDedup frame on a session that
// negotiated only version 2 (or nothing) is a protocol violation the
// server answers with a typed error.
func TestBeginDedupBelowV3Rejected(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgBeginDedup, []byte("sneak")); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "below protocol version 3") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	var fe *UnexpectedFrameError
	if serr := <-errc; !errors.As(serr, &fe) {
		t.Fatalf("server error = %v, want UnexpectedFrameError", serr)
	}
}

// TestNegotiateDedupAgainstCappedServer: a server capped at protocol
// v2 (shredderd -dedup-wire=false, or a genuine v2 build) refuses a v3
// Hello with a reason naming both versions; plain Negotiate still
// works on a fresh session, so callers can fall back to the raw path.
func TestNegotiateDedupAgainstCappedServer(t *testing.T) {
	cfg := testConfig(4)
	cfg.MaxProtocol = 2
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	_, err = c.NegotiateDedup(chunk.FastCDCSpec(4 << 10))
	var ne *NegotiationError
	wantVer := fmt.Sprintf("version %d", ProtocolVersion)
	if !errors.As(err, &ne) || !strings.Contains(ne.Reason, wantVer) || !strings.Contains(ne.Reason, "speaks 2") {
		t.Fatalf("NegotiateDedup against capped server = %v", err)
	}
	// The rejected session is dead; redial and fall back to raw.
	c2 := startSession(t, srv)
	if _, err := c2.Negotiate(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatalf("raw fallback negotiation failed: %v", err)
	}
	data := workload.Random(5, 512<<10)
	st, err := c2.BackupBytes("fallback", data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wire.WireBytes != st.Bytes {
		t.Fatalf("raw fallback wire %+v, want WireBytes == %d", st.Wire, st.Bytes)
	}
	if err := c2.Verify("fallback", data); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiateDedupUnboundedSpecRejected: dedup sessions need a
// bounded max chunk size (each body is one frame); the client refuses
// locally and the server refuses a hand-rolled Hello the same way.
func TestNegotiateDedupUnboundedSpecRejected(t *testing.T) {
	c := NewSession(deadConn{})
	_, err := c.NegotiateDedup(chunk.DefaultSpec()) // MaxSize 0: unbounded
	var ne *NegotiationError
	if !errors.As(err, &ne) || !strings.Contains(ne.Reason, "bounded") {
		t.Fatalf("client-side unbounded spec = %v", err)
	}

	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, _ := rawSession(t, srv)
	if err := writeFrame(conn, MsgHello, encodeHello(ProtocolVersion, chunk.DefaultSpec())); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "bounded") {
		t.Fatalf("server reply %d %q", typ, reply)
	}
}

// TestDedupBodyHashMismatchRejected: an uploaded body that does not
// hash to its announced fingerprint must never enter the store — it
// would be addressed by a fingerprint other streams dedup against.
func TestDedupBodyHashMismatchRejected(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, errc := rawSession(t, srv)
	spec := chunk.FastCDCSpec(4 << 10)
	if err := writeFrame(conn, MsgHello, encodeHello(ProtocolVersion, spec)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(br, nil); err != nil || typ != MsgAccept {
		t.Fatalf("hello reply %d, %v", typ, err)
	}
	if err := writeFrame(conn, MsgBeginDedup, encodeBeginDedup(ProtocolVersion, "evil", obs.SpanContext{})); err != nil {
		t.Fatal(err)
	}
	honest := []byte("honest chunk body")
	if err := writeFrame(conn, MsgHasBatch, encodeHasBatch([]dedup.Hash{dedup.Sum(honest)})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(br, nil)
	if err != nil || typ != MsgNeedBatch {
		t.Fatalf("need reply %d, %v", typ, err)
	}
	if need, err := decodeNeedBatch(payload, 1); err != nil || len(need) != 1 {
		t.Fatalf("need %v, %v", need, err)
	}
	if err := writeFrame(conn, MsgData, []byte("poisoned body")); err != nil {
		t.Fatal(err)
	}
	// The server drains to the Commit turn (the client may still be
	// writing) and delivers the rejection in its reply slot: later
	// batches draw an empty NeedBatch and store nothing.
	if err := writeFrame(conn, MsgHasBatch, encodeHasBatch([]dedup.Hash{dedup.Sum([]byte("later"))})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(br, nil)
	if err != nil || typ != MsgNeedBatch || len(payload) != 0 {
		t.Fatalf("drain-mode need reply %d %q, %v", typ, payload, err)
	}
	if err := writeFrame(conn, MsgCommit, nil); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "fingerprint") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	if serr := <-errc; serr == nil {
		t.Fatal("server session survived a poisoned body")
	}
	// Neither the honest fingerprint nor the poisoned bytes made it in.
	if _, ok := srv.Store().Has(dedup.Sum(honest)); ok {
		t.Fatal("fingerprint present despite rejected body")
	}
	if st := srv.Store().Stats(); st.UniqueChunks != 0 {
		t.Fatalf("store not empty after rejection: %+v", st)
	}
}

// failingBacking injects an Append failure after a budget of
// successful appends, simulating a store whose disk fills mid-stream.
type failingBacking struct {
	shardstore.Backing
	remaining atomic.Int64
}

func (f *failingBacking) Shard(i int) shardstore.ShardBacking {
	return &failingShard{ShardBacking: f.Backing.Shard(i), b: f}
}

type failingShard struct {
	shardstore.ShardBacking
	b *failingBacking
}

func (f *failingShard) Append(h shardstore.Hash, data []byte) (int, int64, error) {
	if f.b.remaining.Add(-1) < 0 {
		return 0, 0, errors.New("injected fault: disk full")
	}
	return f.ShardBacking.Append(h, data)
}

// TestDedupStoreFailureSurfacesWithoutDeadlock: a store failure while
// the client is mid-upload must come back as the server's own text —
// over an unbuffered net.Pipe, where a naive error reply would
// deadlock against the client's remaining body writes (the reason the
// handler drains to the Commit turn). No recipe may be committed.
func TestDedupStoreFailureSurfacesWithoutDeadlock(t *testing.T) {
	mb, err := shardstore.NewMemoryBacking(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb := &failingBacking{Backing: mb}
	fb.remaining.Store(300) // dies during the second 256-chunk round
	store, err := shardstore.Open(fb)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithStore(testConfig(4), store)
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	if _, err := c.NegotiateDedup(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatal(err)
	}
	_, err = c.BackupDedupBytes("doomed", workload.Random(13, 4<<20))
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "disk full") {
		t.Fatalf("mid-stream store failure = %v, want RemoteError carrying the fault", err)
	}
	if _, ok := srv.Recipe("doomed"); ok {
		t.Fatal("recipe committed despite store failure")
	}
}

// TestDedupEmptyStream: a zero-byte dedup backup commits an empty
// recipe and restores to zero bytes.
func TestDedupEmptyStream(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	if _, err := c.NegotiateDedup(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatal(err)
	}
	st, err := c.BackupDedupBytes("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 0 || st.Chunks != 0 || st.Wire.WireBytes != 0 {
		t.Fatalf("empty dedup stream produced %+v", st)
	}
	got, err := c.RestoreBytes("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream restored %d bytes", len(got))
	}
}

// TestDedupRepeatedChunksInStream: a stream that repeats the same
// content many times must upload each distinct body once and pin the
// rest, with refcounts equal to the occurrence count.
func TestDedupRepeatedChunksInStream(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	spec := chunk.FastCDCSpec(4 << 10)
	if _, err := c.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}
	block := workload.Random(9, 64<<10)
	data := bytes.Repeat(block, 16)
	st, err := c.BackupDedupBytes("loop", data)
	if err != nil {
		t.Fatal(err)
	}
	if st.DupChunks == 0 || st.UniqueBytes >= int64(len(data))/2 {
		t.Fatalf("repeated stream deduped nothing: %+v", st)
	}
	if err := c.Verify("loop", data); err != nil {
		t.Fatal(err)
	}
}

// failAfterConn passes reads through but starts failing writes once
// limit bytes have gone out — the shape of a broken transport whose
// receive direction still holds the server's parting Error frame
// (with TCP the frame sits in the local receive buffer while sends
// fail).
type failAfterConn struct {
	net.Conn
	written, limit int
}

func (f *failAfterConn) Write(p []byte) (int, error) {
	if f.written >= f.limit {
		return 0, errors.New("simulated broken send path")
	}
	n, err := f.Conn.Write(p)
	f.written += n
	return n, err
}

// TestBackupSurfacesRemoteErrorMidStream: when the server aborts
// mid-stream after sending an Error frame and the client's next write
// fails, the client must surface the server's own text — not a bare
// transport error — so daemon-side store failures are diagnosable from
// backupsim output.
func TestBackupSurfacesRemoteErrorMidStream(t *testing.T) {
	cend, send := net.Pipe()
	// The client's sends fail once the first Data frame (Begin header +
	// name + frame header + 1 MiB payload) is fully out.
	firstFrames := headerSize + 2 + headerSize + DefaultFrameSize
	go func() {
		defer send.Close()
		br := bufio.NewReader(send)
		// Accept Begin and the first Data frame, then abort like a
		// server whose store just failed — without draining the rest.
		if typ, _, err := readFrame(br, nil); err != nil || typ != MsgBegin {
			return
		}
		if typ, _, err := readFrame(br, nil); err != nil || typ != MsgData {
			return
		}
		// Blocks until the client turns around and reads it.
		_ = writeFrame(send, MsgError, []byte("shard 3: disk full"))
	}()
	c := NewSession(&failAfterConn{Conn: cend, limit: firstFrames})
	defer c.Close()
	_, err := c.BackupBytes("vm", workload.Random(11, 8<<20))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("mid-stream abort = %v (%T), want RemoteError", err, err)
	}
	if re.Msg != "shard 3: disk full" || re.Op != "backup" || re.Name != "vm" {
		t.Fatalf("RemoteError = %+v", re)
	}
	if !strings.Contains(err.Error(), "disk full") || !strings.Contains(err.Error(), `"vm"`) {
		t.Fatalf("error text %q does not carry the server diagnosis", err)
	}
}

// TestNeedBatchCodecValidation exercises the decoder's rejection
// paths: misaligned payloads, out-of-range and non-ascending indices.
func TestNeedBatchCodecValidation(t *testing.T) {
	if _, err := decodeNeedBatch([]byte{1, 2, 3}, 4); err == nil {
		t.Fatal("misaligned payload accepted")
	}
	if _, err := decodeNeedBatch(encodeNeedBatch([]int{0, 2, 1}), 4); err == nil {
		t.Fatal("non-ascending indices accepted")
	}
	if _, err := decodeNeedBatch(encodeNeedBatch([]int{0, 4}), 4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := decodeHasBatch(make([]byte, hashSize+1)); err == nil {
		t.Fatal("misaligned has-batch accepted")
	}
	got, err := decodeNeedBatch(encodeNeedBatch([]int{0, 3, 7}), 8)
	if err != nil || fmt.Sprint(got) != fmt.Sprint([]int{0, 3, 7}) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}
