package cluster

import (
	"errors"
	"fmt"
)

// NodeError reports a failure of one specific node (or the path to
// it) during a routed operation, so callers can tell "the cluster
// rejected this" from "node X is down". It unwraps to the underlying
// cause — errors.Is(err, ingest.ErrNotFound) still works through it
// where relevant.
type NodeError struct {
	// Node is the failing node's ID.
	Node string
	// Op names the routed operation ("backup", "restore", ...).
	Op string
	// Err is the underlying failure.
	Err error
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("cluster: node %s failed during %s: %v", e.Node, e.Op, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

// ErrReservedName reports a client operation on a name under
// ReservedPrefix, which the routing layer keeps for its manifests.
var ErrReservedName = errors.New("cluster: stream name is reserved for the routing layer")

// ChunkMismatchError reports a restored chunk whose content does not
// hash to the manifest's fingerprint — node corruption, or a node
// whose restore framing no longer aligns to chunks. The restore is
// aborted rather than returning silently wrong bytes.
type ChunkMismatchError struct {
	// Name is the stream being restored; Node the node that served the
	// chunk; Index the chunk's position in the manifest.
	Name  string
	Node  string
	Index int
}

func (e *ChunkMismatchError) Error() string {
	return fmt.Sprintf("cluster: restore of %q: chunk %d from node %s does not match its manifest fingerprint", e.Name, e.Index, e.Node)
}
