package experiments

import (
	"fmt"

	"shredder/internal/backup"
	"shredder/internal/core"
	"shredder/internal/hdfs"
	"shredder/internal/mapreduce"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

// ---------------------------------------------------------------------
// Figure 15 — incremental MapReduce speedups.
// ---------------------------------------------------------------------

// Fig15Row reports the three applications' speedups at one change
// percentage.
type Fig15Row struct {
	ChangePct    float64
	WordCount    float64
	CoOccurrence float64
	KMeans       float64
}

// Fig15ChangePcts is the x-axis of Figure 15.
var Fig15ChangePcts = []float64{0, 5, 10, 15, 20, 25}

// inchdfsConfig builds the Shredder configuration used for Inc-HDFS
// uploads: larger content-defined blocks (≈64 KB mean) so the split
// count matches MapReduce task granularity while keeping enough splits
// for localized edits to leave most of them untouched.
func inchdfsConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.BufferSize = 8 << 20
	cfg.Chunking.MaskBits = 16
	cfg.Chunking.Marker = 1<<16 - 1
	return cfg
}

// fig15MutationRegions localizes each percentage of change into this
// many contiguous edit regions (see workload.MutateClusteredReplace).
const fig15MutationRegions = 4

// uploadSplits pushes data into a fresh Inc-HDFS cluster via
// copyFromLocalGPU and returns the resulting split payloads.
func uploadSplits(name string, data []byte, delim byte) ([][]byte, error) {
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		return nil, err
	}
	shred, err := core.New(inchdfsConfig())
	if err != nil {
		return nil, err
	}
	client := hdfs.NewClient(cluster, shred)
	client.RecordDelim = delim
	if _, err := client.CopyFromLocalGPU(name, data); err != nil {
		return nil, err
	}
	splits, err := cluster.InputSplits(name)
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, len(splits))
	for i, s := range splits {
		payloads[i], err = cluster.ReadBlock(s.Block.ID)
		if err != nil {
			return nil, err
		}
	}
	return payloads, nil
}

// Fig15 runs word count, co-occurrence and k-means through Inc-HDFS +
// the Incoop engine for each change percentage, reporting modeled
// cluster speedups over from-scratch Hadoop execution on the same
// (mutated) inputs.
func Fig15(opt Options) ([]Fig15Row, error) {
	// Per-application cluster cost profiles: co-occurrence's map emits a
	// pair per adjacent word (heavier per byte), k-means parses floats
	// and computes distances. Heavier map phases make reuse worth more.
	wcModel := mapreduce.DefaultClusterModel()
	coModel := wcModel
	coModel.MapNsPerByte = 60
	kmModel := wcModel
	kmModel.MapNsPerByte = 35
	text := workload.Text(opt.Seed, opt.TextBytes)
	points := workload.Points(opt.Seed+1, opt.KMeansPoints, 8)
	initialCentroids := []mapreduce.Point{
		{X: 100, Y: 100}, {X: 300, Y: 300}, {X: 500, Y: 500}, {X: 700, Y: 700},
		{X: 900, Y: 900}, {X: 200, Y: 800}, {X: 800, Y: 200}, {X: 500, Y: 100},
	}

	var rows []Fig15Row
	for _, pct := range Fig15ChangePcts {
		row := Fig15Row{ChangePct: pct}

		// --- Word count & co-occurrence over mutated text ---
		mutated := workload.MutateClusteredReplace(text, opt.Seed+int64(pct*10)+7, pct, fig15MutationRegions)
		baseSplits, err := uploadSplits("text-v1", text, '\n')
		if err != nil {
			return nil, err
		}
		newSplits, err := uploadSplits("text-v2", mutated, '\n')
		if err != nil {
			return nil, err
		}
		for app, job := range map[string]mapreduce.Job{
			"wc": mapreduce.WordCountJob(),
			"co": mapreduce.CoOccurrenceJob(),
		} {
			memo := mapreduce.NewMemo()
			warm := &mapreduce.Engine{Memo: memo}
			if _, _, err := warm.Run(job, baseSplits); err != nil {
				return nil, err
			}
			_, incMet, err := warm.Run(job, newSplits)
			if err != nil {
				return nil, err
			}
			_, fullMet, err := (&mapreduce.Engine{}).Run(job, newSplits)
			if err != nil {
				return nil, err
			}
			if app == "wc" {
				row.WordCount = wcModel.Speedup(*fullMet, *incMet)
			} else {
				row.CoOccurrence = coModel.Speedup(*fullMet, *incMet)
			}
		}

		// --- K-means over mutated points ---
		mutatedPts := workload.MutateClusteredReplace(points, opt.Seed+int64(pct*10)+13, pct, fig15MutationRegions)
		basePts, err := uploadSplits("pts-v1", points, '\n')
		if err != nil {
			return nil, err
		}
		newPts, err := uploadSplits("pts-v2", mutatedPts, '\n')
		if err != nil {
			return nil, err
		}
		memo := mapreduce.NewMemo()
		warm := &mapreduce.Engine{Memo: memo}
		if _, err := mapreduce.KMeans(warm, basePts, initialCentroids, 10); err != nil {
			return nil, err
		}
		incRes, err := mapreduce.KMeans(warm, newPts, initialCentroids, 10)
		if err != nil {
			return nil, err
		}
		fullRes, err := mapreduce.KMeans(&mapreduce.Engine{}, newPts, initialCentroids, 10)
		if err != nil {
			return nil, err
		}
		row.KMeans = kmModel.Speedup(fullRes.Metrics, incRes.Metrics)

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig15 renders the speedup table.
func RenderFig15(rows []Fig15Row) string {
	t := stats.NewTable("Figure 15: Speedup for incremental computation (w.r.t. Hadoop)",
		"Change%", "Word-Count", "Co-occurrence", "K-means")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f%%", r.ChangePct),
			stats.Speedup(r.WordCount), stats.Speedup(r.CoOccurrence), stats.Speedup(r.KMeans))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 18 — cloud backup bandwidth.
// ---------------------------------------------------------------------

// Fig18Row reports backup bandwidth at one segment-change probability.
type Fig18Row struct {
	ChangeProb        float64
	CPUBandwidth      float64 // bytes/sec
	GPUBandwidth      float64
	GPUUniqueFraction float64
	// GPUOptimizedIndex is the extension the paper predicts in §7.3's
	// closing sentence: Shredder plus ChunkStash-style index
	// maintenance, expected to hold the target bandwidth across the
	// entire similarity spectrum.
	GPUOptimizedIndex float64
}

// Fig18Probs is the x-axis of Figure 18.
var Fig18Probs = []float64{0.05, 0.10, 0.15, 0.20, 0.25}

// Fig18 backs up VM snapshots of increasing dissimilarity with both
// engines. Min/max chunk sizes are enabled, as in commercial practice.
func Fig18(opt Options) ([]Fig18Row, error) {
	var rows []Fig18Row
	for _, prob := range Fig18Probs {
		im := workload.NewImage(opt.Seed+int64(prob*1000), opt.ImageBytes, 64<<10, prob)
		row := Fig18Row{ChangeProb: prob}

		// Extension: the §7.3 prediction with an optimized index.
		{
			cfg := backup.DefaultConfig()
			cfg.OptimizedIndex = true
			srv, err := backup.NewServer(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := srv.Backup("master", im.Master, backup.ShredderGPU); err != nil {
				return nil, err
			}
			rep, err := srv.Backup("snap", im.Snapshot(opt.Seed+int64(prob*100)+3), backup.ShredderGPU)
			if err != nil {
				return nil, err
			}
			row.GPUOptimizedIndex = rep.Bandwidth
		}

		for _, engine := range []backup.Engine{backup.PthreadsCPU, backup.ShredderGPU} {
			srv, err := backup.NewServer(backup.DefaultConfig())
			if err != nil {
				return nil, err
			}
			// Full backup of the master image first (warm the index),
			// then the incremental snapshot we measure.
			if _, err := srv.Backup("master", im.Master, engine); err != nil {
				return nil, err
			}
			snap := im.Snapshot(opt.Seed + int64(prob*100) + 3)
			rep, err := srv.Backup("snap", snap, engine)
			if err != nil {
				return nil, err
			}
			if err := srv.VerifyRestore("snap", snap); err != nil {
				return nil, err
			}
			if engine == backup.PthreadsCPU {
				row.CPUBandwidth = rep.Bandwidth
			} else {
				row.GPUBandwidth = rep.Bandwidth
				row.GPUUniqueFraction = float64(rep.UniqueBytes) / float64(rep.Bytes)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig18 renders the backup-bandwidth comparison.
func RenderFig18(rows []Fig18Row) string {
	t := stats.NewTable("Figure 18: Backup bandwidth with varying image similarity",
		"SegChange", "Pthreads-CPU", "Shredder-GPU", "GPU-vs-CPU", "UniqueData", "GPU+OptIndex")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f%%", r.ChangeProb*100),
			stats.Gbps(r.CPUBandwidth), stats.Gbps(r.GPUBandwidth),
			stats.Speedup(r.GPUBandwidth/r.CPUBandwidth),
			fmt.Sprintf("%.0f%%", r.GPUUniqueFraction*100),
			stats.Gbps(r.GPUOptimizedIndex))
	}
	return t.String()
}
