package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// Session speaks the ingest protocol over one connection. It is not
// safe for concurrent use: a session runs one operation at a time
// (open several sessions for parallel streams — that is the point of
// the sharded server).
//
// A fresh Session speaks the legacy raw protocol (version 1: no
// negotiation, server-default engine). Negotiate upgrades it to
// version 2 (explicit chunking engine, still server-chunked);
// NegotiateDedup upgrades it to version 3, after which BackupDedup
// runs the negotiated engine locally and ships only fingerprints plus
// missing chunk bodies.
type Session struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	buf       []byte
	frameSize int

	// version is the negotiated protocol version (0 until a Hello is
	// accepted: the legacy raw session). spec and eng are set by a
	// successful negotiation; eng only by NegotiateDedup, which needs
	// the engine locally.
	version byte
	spec    chunk.Spec
	eng     chunk.Engine

	// tracer, when set via SetTracer, records one root span per
	// operation. On a version-4 session the span's context also rides
	// the Hello and BeginDedup frames, so a traced server parents its
	// own spans under ours.
	tracer *obs.Tracer
}

// Client is the session type's historical name.
type Client = Session

// ErrDedupUnsupported reports a BackupDedup call on a session that has
// not negotiated protocol version 3 (NegotiateDedup was never called,
// or the server talked it down).
var ErrDedupUnsupported = errors.New("ingest: dedup backup requires a version ≥ 3 session (call NegotiateDedup first)")

// ErrDeleteUnsupported reports a Delete call on a session below
// protocol version 3 (deletion shipped with the v3 retention ops).
var ErrDeleteUnsupported = errors.New("ingest: delete requires a version ≥ 3 session (call NegotiateDedup first)")

// NewSession wraps an established connection (TCP, unix socket,
// net.Pipe, ...).
func NewSession(conn net.Conn) *Session {
	return &Session{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 256<<10),
		bw:        bufio.NewWriterSize(conn, 256<<10),
		frameSize: DefaultFrameSize,
	}
}

// NewClient is NewSession under the type's historical name.
func NewClient(conn net.Conn) *Session { return NewSession(conn) }

// Dial connects to a shredderd server at addr.
func Dial(addr string) (*Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSession(conn), nil
}

// Close terminates the session.
func (s *Session) Close() error { return s.conn.Close() }

// SetTracer attaches a tracer to the session: every subsequent
// operation records a root span (nil detaches — the default).
func (s *Session) SetTracer(t *obs.Tracer) { s.tracer = t }

// root starts one client-side operation span; nil (a no-op) when the
// session has no tracer.
func (s *Session) root(name string, attrs ...obs.Attr) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.StartRoot(name, attrs...)
}

// Version returns the negotiated protocol version (0 for a legacy
// session that never sent a Hello).
func (s *Session) Version() byte { return s.version }

// Spec returns the negotiated chunking spec (zero until a Hello is
// accepted).
func (s *Session) Spec() chunk.Spec { return s.spec }

// Negotiate proposes a chunking engine for this session and returns
// the spec the server accepted. Call it before the first Backup;
// sessions that never negotiate get the server's default (Rabin)
// engine, wire-compatible with pre-negotiation servers. Negotiate
// sends a version-2 Hello — byte-identical to a legacy v2 client, so
// it works against any negotiating server — and leaves the session on
// the raw (server-chunked) path; use NegotiateDedup for client-side
// matching. A server that rejects the spec — or predates negotiation
// entirely and answers the unknown frame with an error — surfaces as
// *NegotiationError.
func (s *Session) Negotiate(spec chunk.Spec) (chunk.Spec, error) {
	return s.negotiate(MinProtocolVersion, spec)
}

// NegotiateDedup proposes a version-3 session: the client runs spec's
// engine locally and BackupDedup becomes available. The spec must
// bound chunk sizes (MaxSize in (0, MaxFrame]) so every chunk body
// fits one frame. Against a server that only speaks version 2 this
// fails with a *NegotiationError naming both versions and the session
// is dead — redial and fall back to Negotiate/Backup.
func (s *Session) NegotiateDedup(spec chunk.Spec) (chunk.Spec, error) {
	if spec.MaxSize <= 0 || spec.MaxSize > MaxFrame {
		return chunk.Spec{}, &NegotiationError{
			Reason: "dedup sessions need a bounded max chunk size within the frame limit",
		}
	}
	accepted, err := s.negotiate(ProtocolVersion, spec)
	if err != nil {
		return chunk.Spec{}, err
	}
	if s.version < 3 {
		return chunk.Spec{}, &NegotiationError{
			Reason: "server talked the session down below version 3; dedup backup unavailable",
		}
	}
	eng, err := chunk.New(accepted)
	if err != nil {
		return chunk.Spec{}, err
	}
	s.eng = eng
	return accepted, nil
}

func (s *Session) negotiate(version byte, spec chunk.Spec) (chunk.Spec, error) {
	if err := spec.Validate(); err != nil {
		return chunk.Spec{}, err
	}
	// The span's context rides the Hello on v4 proposals (older
	// versions stay byte-identical: encodeHelloCtx only appends there).
	sp := s.root("negotiate", obs.Int("protocol", int64(version)))
	defer sp.End()
	if err := writeFrame(s.bw, MsgHello, encodeHelloCtx(version, spec, sp.Context())); err != nil {
		return chunk.Spec{}, err
	}
	if err := s.bw.Flush(); err != nil {
		return chunk.Spec{}, err
	}
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return chunk.Spec{}, err
	}
	s.keep(payload)
	switch typ {
	case MsgAccept:
		ver, accepted, _, err := decodeHello(payload)
		if err != nil {
			return chunk.Spec{}, err
		}
		s.version = ver
		s.spec = accepted
		s.eng = nil
		return accepted, nil
	case MsgError:
		return chunk.Spec{}, &NegotiationError{Reason: string(payload)}
	default:
		return chunk.Spec{}, &UnexpectedFrameError{Type: typ, Context: "hello reply"}
	}
}

// Backup streams r to the server under the given name and returns the
// server's dedup statistics for the stream. The whole stream crosses
// the wire; the server chunks and dedups it (BackupDedup is the
// bandwidth-saving alternative on version ≥ 3 sessions).
func (s *Session) Backup(name string, r io.Reader) (*StreamStats, error) {
	sp := s.root("backup", obs.Str("recipe", name))
	defer sp.End()
	if err := writeFrame(s.bw, MsgBegin, []byte(name)); err != nil {
		return nil, err
	}
	if cap(s.buf) < s.frameSize {
		s.buf = make([]byte, s.frameSize)
	}
	buf := s.buf[:s.frameSize]
	var logical int64
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			logical += int64(n)
			if werr := writeFrame(s.bw, MsgData, buf[:n]); werr != nil {
				return nil, s.surfaceRemote("backup", name, werr)
			}
			// Keep the transport moving: net.Pipe and small TCP windows
			// need the server consuming while we produce.
			if ferr := s.bw.Flush(); ferr != nil {
				return nil, s.surfaceRemote("backup", name, ferr)
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := writeFrame(s.bw, MsgEnd, nil); err != nil {
		return nil, s.surfaceRemote("backup", name, err)
	}
	if err := s.bw.Flush(); err != nil {
		return nil, s.surfaceRemote("backup", name, err)
	}
	st, err := s.readStats("backup", name)
	if err != nil {
		return nil, err
	}
	sp.Set(obs.Int("bytes", logical), obs.Int("chunks", st.Chunks))
	if st.Wire == (WireStats{}) {
		// Legacy (< v3) servers don't report wire statistics: on the
		// raw path every logical byte crossed as a Data payload, so the
		// client can fill them exactly.
		st.Wire = WireStats{LogicalBytes: logical, WireBytes: logical, ChunksSent: st.Chunks}
	}
	return st, nil
}

// Dedup-path batching: one HasBatch round covers up to dedupBatchChunks
// fingerprints, and the bodies held for a round (pending the server's
// missing-set answer) are capped at dedupBatchBytes.
const (
	dedupBatchChunks = 256
	dedupBatchBytes  = 4 << 20
)

// BackupDedup backs up r under name over the two-phase content-
// addressed protocol: the session's negotiated engine chunks the
// stream locally, fingerprints go first, and only the chunk bodies the
// server reports missing are uploaded, followed by a commit the server
// durably acks. Requires NegotiateDedup. The returned stats carry the
// server-computed WireStats — the whole point of the exercise.
func (s *Session) BackupDedup(name string, r io.Reader) (*StreamStats, error) {
	if s.version < 3 || s.eng == nil {
		return nil, ErrDedupUnsupported
	}
	// On a v4 session the root span's context rides the BeginDedup
	// frame, so the server's backup_dedup span parents under this one
	// and both sides merge into a single tree.
	sp := s.root("backup_dedup", obs.Str("recipe", name))
	defer sp.End()
	if err := writeFrame(s.bw, MsgBeginDedup, encodeBeginDedup(s.version, name, sp.Context())); err != nil {
		return nil, err
	}
	var (
		hs     []dedup.Hash
		bodies [][]byte
		held   int64
	)
	flush := func() error {
		if len(hs) == 0 {
			return nil
		}
		hb := sp.Child("has_batch", obs.Int("chunks", int64(len(hs))))
		defer hb.End()
		if err := writeFrame(s.bw, MsgHasBatch, encodeHasBatch(hs)); err != nil {
			return s.surfaceRemote("dedup backup", name, err)
		}
		if err := s.bw.Flush(); err != nil {
			return s.surfaceRemote("dedup backup", name, err)
		}
		typ, payload, err := readFrame(s.br, s.buf)
		if err != nil {
			return err
		}
		s.keep(payload)
		var need []int
		switch typ {
		case MsgNeedBatch:
			if need, err = decodeNeedBatch(payload, len(hs)); err != nil {
				return err
			}
		case MsgError:
			return &RemoteError{Msg: string(payload), Op: "dedup backup", Name: name}
		default:
			return &UnexpectedFrameError{Type: typ, Context: "has-batch reply"}
		}
		hb.Set(obs.Int("missing", int64(len(need))))
		hb.End()
		up := sp.Child("upload", obs.Int("chunks", int64(len(need))))
		defer up.End()
		var upBytes int64
		for _, i := range need {
			if err := writeFrame(s.bw, MsgData, bodies[i]); err != nil {
				return s.surfaceRemote("dedup backup", name, err)
			}
			upBytes += int64(len(bodies[i]))
		}
		if err := s.bw.Flush(); err != nil {
			return s.surfaceRemote("dedup backup", name, err)
		}
		up.Set(obs.Int("bytes", upBytes))
		hs, bodies, held = hs[:0], bodies[:0], 0
		return nil
	}
	sink := s.eng.Stream(func(c chunk.Chunk, data []byte) error {
		// data is a view into the engine's buffer: copy to hold it
		// until the server's missing-set answer for this round.
		hs = append(hs, dedup.Sum(data))
		bodies = append(bodies, append([]byte(nil), data...))
		held += int64(len(data))
		if len(hs) >= dedupBatchChunks || held >= dedupBatchBytes {
			return flush()
		}
		return nil
	})
	if _, err := io.Copy(sink, r); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	c := sp.Child("commit")
	defer c.End()
	if err := writeFrame(s.bw, MsgCommit, nil); err != nil {
		return nil, s.surfaceRemote("dedup backup", name, err)
	}
	if err := s.bw.Flush(); err != nil {
		return nil, s.surfaceRemote("dedup backup", name, err)
	}
	st, err := s.readStats("dedup backup", name)
	if err != nil {
		return nil, err
	}
	c.End()
	sp.Set(obs.Int("bytes", st.Bytes), obs.Int("chunks", st.Chunks),
		obs.Int("wire_bytes", st.Wire.WireBytes),
		obs.Int("chunks_skipped", st.Wire.ChunksSkipped))
	return st, nil
}

// BackupBytes is Backup over an in-memory image.
func (s *Session) BackupBytes(name string, data []byte) (*StreamStats, error) {
	return s.Backup(name, bytes.NewReader(data))
}

// BackupDedupBytes is BackupDedup over an in-memory image.
func (s *Session) BackupDedupBytes(name string, data []byte) (*StreamStats, error) {
	return s.BackupDedup(name, bytes.NewReader(data))
}

// readStats consumes the server's end-of-stream reply.
func (s *Session) readStats(op, name string) (*StreamStats, error) {
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return nil, err
	}
	s.keep(payload)
	switch typ {
	case MsgStats:
		st, err := decodeStreamStats(payload)
		if err != nil {
			return nil, err
		}
		return &st, nil
	case MsgError:
		return nil, &RemoteError{Msg: string(payload), Op: op, Name: name}
	default:
		return nil, &UnexpectedFrameError{Type: typ, Context: op + " reply"}
	}
}

// surfaceRemote recovers the server's own diagnosis of a broken
// stream. When the server aborts mid-stream (a store failure, a
// rejected body) it sends an Error frame and closes; the client's next
// write then fails with a bare transport error ("closed pipe") and the
// actual reason would be lost sitting in the receive buffer. Given the
// write error, try briefly to read that Error frame and return it as a
// *RemoteError instead; fall back to the write error.
func (s *Session) surfaceRemote(op, name string, werr error) error {
	if err := s.conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return werr
	}
	defer s.conn.SetReadDeadline(time.Time{})
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil || typ != MsgError {
		return werr
	}
	s.keep(payload)
	return &RemoteError{Msg: string(payload), Op: op, Name: name}
}

// Delete expires a previously backed-up stream on the server: its
// recipe is durably tombstoned and every chunk reference it held is
// released, so chunks no retained stream uses become reclaimable by
// the server's compactor. Requires a version ≥ 3 session
// (NegotiateDedup). Deleting a name the server has no recipe for comes
// back as a *RemoteError and the session stays usable.
func (s *Session) Delete(name string) (*shardstore.DeleteStats, error) {
	if s.version < 3 {
		return nil, ErrDeleteUnsupported
	}
	sp := s.root("delete", obs.Str("recipe", name))
	defer sp.End()
	if err := writeFrame(s.bw, MsgDelete, []byte(name)); err != nil {
		return nil, err
	}
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return nil, err
	}
	s.keep(payload)
	switch typ {
	case MsgDeleteOK:
		ds, err := decodeDeleteResult(payload)
		if err != nil {
			return nil, err
		}
		return &ds, nil
	case MsgError:
		return nil, &RemoteError{Msg: string(payload), Op: "delete", Name: name}
	default:
		return nil, &UnexpectedFrameError{Type: typ, Context: "delete reply"}
	}
}

// Restore streams a previously backed-up name from the server into w,
// returning the byte count.
func (s *Session) Restore(name string, w io.Writer) (int64, error) {
	sp := s.root("restore", obs.Str("recipe", name))
	defer sp.End()
	if err := writeFrame(s.bw, MsgRestore, []byte(name)); err != nil {
		return 0, err
	}
	if err := s.bw.Flush(); err != nil {
		return 0, err
	}
	var total int64
	for {
		typ, payload, err := readFrame(s.br, s.buf)
		if err != nil {
			return total, err
		}
		s.keep(payload)
		switch typ {
		case MsgData:
			n, werr := w.Write(payload)
			total += int64(n)
			if werr != nil {
				return total, werr
			}
		case MsgEnd:
			sp.Set(obs.Int("bytes", total))
			return total, nil
		case MsgError:
			return total, &RemoteError{Msg: string(payload), Op: "restore", Name: name}
		default:
			return total, &UnexpectedFrameError{Type: typ, Context: "restore stream"}
		}
	}
}

// RestoreBytes is Restore into memory.
func (s *Session) RestoreBytes(name string) ([]byte, error) {
	var out bytes.Buffer
	if _, err := s.Restore(name, &out); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Verify restores name and checks it against original byte-for-byte.
func (s *Session) Verify(name string, original []byte) error {
	got, err := s.RestoreBytes(name)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, original) {
		return errors.New("ingest: restored stream differs from original")
	}
	return nil
}

// keep retains a grown frame buffer for reuse.
func (s *Session) keep(payload []byte) {
	if cap(payload) > cap(s.buf) {
		s.buf = payload[:cap(payload)]
	}
}
