// Command shredderd is the Shredder ingest daemon: a consolidated
// chunk-and-dedup service (§7's cloud-backup server, made concurrent).
// Clients stream raw data over TCP; the daemon chunks each stream with
// the Shredder pipeline, dedups it in batches against a sharded
// fingerprint index shared by every session, and reports per-stream
// dedup statistics. cmd/backupsim -server is a ready-made client.
//
// With -data the store is durable: container bytes and a per-shard
// write-ahead log live under the data directory (internal/persist),
// recipes are committed before a stream is acknowledged, and a restart
// recovers the full index, refcounts, recipes and statistics. -fsync
// picks the durability/throughput trade-off. SIGINT/SIGTERM drain
// active sessions and flush the store before exiting.
//
//	shredderd [-addr :9323] [-shards N] [-batch N] [-buffer MiB]
//	          [-data DIR] [-fsync always|never|interval[=D]]
//	          [-grace D] [-quiet]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shredder/internal/ingest"
	"shredder/internal/persist"
	"shredder/internal/shardstore"
	"shredder/internal/stats"
)

func main() {
	addr := flag.String("addr", ":9323", "TCP listen address")
	shards := flag.Int("shards", 16, "store shard count (power of two)")
	batch := flag.Int("batch", 64, "chunks per has/put batch")
	buffer := flag.Int("buffer", 4, "per-session pipeline buffer in MiB")
	data := flag.String("data", "", "data directory for durable storage (empty: in-memory only)")
	fsyncFlag := flag.String("fsync", "interval", "fsync policy with -data: always, never, interval[=D], or a duration")
	scrub := flag.Bool("scrub", false, "verify every chunk's fingerprint during recovery (reads all containers)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for active sessions")
	quiet := flag.Bool("quiet", false, "suppress per-stream logging")
	flag.Parse()

	cfg := ingest.DefaultConfig()
	cfg.Shards = *shards
	cfg.BatchSize = *batch
	cfg.Shredder.BufferSize = *buffer << 20
	if !*quiet {
		cfg.OnStream = func(name string, st ingest.StreamStats) {
			log.Printf("stream %q: %s in %d chunks, %d dup, ratio %.2fx; store ratio %.2fx",
				name, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks,
				st.DedupRatio(), st.Store.Ratio())
		}
	}

	var store *shardstore.Store
	if *data != "" {
		policy, err := persist.ParseFsyncPolicy(*fsyncFlag)
		if err != nil {
			fatal(err)
		}
		// Only pin the shard count when -shards was given explicitly:
		// an existing data dir fixed it in its manifest, and restarting
		// without the original flag must just adopt it.
		shardsOpt := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsOpt = *shards
			}
		})
		store, err = persist.OpenStore(*data, persist.Options{Shards: shardsOpt, Fsync: policy, VerifyOnRecover: *scrub})
		if err != nil {
			fatal(err)
		}
		*shards = store.NumShards()
		st := store.Stats()
		log.Printf("shredderd: recovered %s in %d chunks (%d streams) from %s [fsync %s]",
			stats.Bytes(st.StoredBytes), st.UniqueChunks, len(store.RecipeNames()), *data, policy)
	} else {
		var err error
		store, err = shardstore.New(*shards, 0)
		if err != nil {
			fatal(err)
		}
	}
	srv, err := ingest.NewServerWithStore(cfg, store)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("shredderd: caught %v, draining sessions", s)
		l.Close()
	}()

	log.Printf("shredderd: listening on %s (%d shards, batch %d, %d MiB buffers)",
		l.Addr(), *shards, *batch, *buffer)
	if err := srv.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		fatal(err)
	}
	srv.Shutdown(*grace)
	if err := store.Close(); err != nil {
		fatal(err)
	}
	st := store.Stats()
	log.Printf("shredderd: shut down cleanly; %s stored of %s logical (%.2fx)",
		stats.Bytes(st.StoredBytes), stats.Bytes(st.LogicalBytes), st.Ratio())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shredderd:", err)
	os.Exit(1)
}
