package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shredder/internal/chunker"
)

func testData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func newKernel(t testing.TB) *Kernel {
	t.Helper()
	c, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(DefaultKernelConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSpecTable1(t *testing.T) {
	s := C2050()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cores() != 448 {
		t.Fatalf("cores = %d, want 448", s.Cores())
	}
	if s.SMs != 14 || s.SPsPerSM != 32 {
		t.Fatalf("SM layout %dx%d, want 14x32", s.SMs, s.SPsPerSM)
	}
	if s.MemLatencyMinCycles != 400 || s.MemLatencyMaxCycles != 600 {
		t.Fatal("memory latency band does not match Table 1")
	}
	if s.MemBandwidth != 144e9 {
		t.Fatal("memory bandwidth does not match Table 1")
	}
	if s.SharedMemPerSM != 48<<10 {
		t.Fatal("shared memory size does not match Table 1")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.SMs = 0 },
		func(s *Spec) { s.ClockHz = 0 },
		func(s *Spec) { s.GlobalMemBytes = -1 },
		func(s *Spec) { s.MemBandwidth = 0 },
		func(s *Spec) { s.SharedMemPerSM = 0 },
	}
	for i, mutate := range bad {
		s := C2050()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDRAMRowHitsAndMisses(t *testing.T) {
	tm := DefaultDRAMTimings()
	d := NewDRAM(tm)
	// First access to any row is a miss (ACT), second to the same row a
	// hit.
	c1 := d.AccessBatch([]int64{0}, 1)
	c2 := d.AccessBatch([]int64{1}, 1)
	if c1 <= c2 {
		t.Fatalf("first access %d not dearer than row hit %d", c1, c2)
	}
	if d.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", d.Conflicts)
	}
	// A different row in the same bank forces PRE+ACT again.
	sameBankOtherRow := tm.RowBytes * int64(tm.Banks)
	c3 := d.AccessBatch([]int64{sameBankOtherRow}, 1)
	if c3 != c1 {
		t.Fatalf("row conflict cost %d, want %d", c3, c1)
	}
	if d.Conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2", d.Conflicts)
	}
}

func TestDRAMBankParallelism(t *testing.T) {
	tm := DefaultDRAMTimings()
	d := NewDRAM(tm)
	// 16 accesses to 16 different banks complete in one bank's service
	// time; 16 accesses to one bank serialize.
	spread := make([]int64, tm.Banks)
	for i := range spread {
		spread[i] = int64(i) * tm.RowBytes
	}
	parallel := d.AccessBatch(spread, 1)

	d.Reset()
	same := make([]int64, tm.Banks)
	for i := range same {
		// Same bank, all different rows: stride Banks*RowBytes.
		same[i] = int64(i) * tm.RowBytes * int64(tm.Banks)
	}
	serial := d.AccessBatch(same, 1)
	if serial < parallel*int64(tm.Banks) {
		t.Fatalf("single-bank batch %d cycles, want >= %d", serial, parallel*int64(tm.Banks))
	}
}

func TestDRAMThrashingAlternatingRows(t *testing.T) {
	// Two threads ping-ponging different rows of one bank must miss on
	// every access — the §2.3 pathology.
	tm := DefaultDRAMTimings()
	d := NewDRAM(tm)
	rowA := int64(0)
	rowB := tm.RowBytes * int64(tm.Banks) // same bank, next row
	for i := 0; i < 10; i++ {
		d.AccessBatch([]int64{rowA + int64(i), rowB + int64(i)}, 1)
	}
	if d.Conflicts != d.Accesses {
		t.Fatalf("conflicts %d != accesses %d under thrashing", d.Conflicts, d.Accesses)
	}
}

func TestDRAMSequentialMostlyHits(t *testing.T) {
	tm := DefaultDRAMTimings()
	d := NewDRAM(tm)
	for a := int64(0); a < tm.RowBytes; a += 32 {
		d.AccessBatch([]int64{a}, 32)
	}
	if d.Conflicts != 1 {
		t.Fatalf("sequential scan of one row: conflicts = %d, want 1", d.Conflicts)
	}
}

func TestKernelMatchesSequentialBoundaries(t *testing.T) {
	k := newKernel(t)
	c, _ := chunker.New(chunker.DefaultParams())
	for _, n := range []int{0, 1, 100, 1 << 12, 1 << 18, 1<<20 + 13} {
		data := testData(int64(n)+7, n)
		res, err := k.Run(data, Coalesced)
		if err != nil {
			t.Fatal(err)
		}
		want := c.Boundaries(data)
		if len(res.Boundaries) != len(want) {
			t.Fatalf("n=%d: %d boundaries, want %d", n, len(res.Boundaries), len(want))
		}
		for i := range want {
			if res.Boundaries[i] != want[i] {
				t.Fatalf("n=%d boundary %d: %d != %d", n, i, res.Boundaries[i], want[i])
			}
		}
		// Fingerprints must all satisfy the boundary predicate.
		for i, fp := range res.Fingerprints {
			if !c.IsBoundary(fp) {
				t.Fatalf("n=%d: fingerprint %d (%#x) is not a boundary value", n, i, fp)
			}
		}
	}
}

func TestKernelModesAgreeFunctionally(t *testing.T) {
	k := newKernel(t)
	data := testData(99, 1<<19)
	a, err := k.Run(data, NaiveGlobal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Run(data, Coalesced)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Boundaries) != len(b.Boundaries) {
		t.Fatal("memory mode changed functional result")
	}
	for i := range a.Boundaries {
		if a.Boundaries[i] != b.Boundaries[i] {
			t.Fatal("memory mode changed boundary positions")
		}
	}
}

func TestKernelQuickEquivalence(t *testing.T) {
	k := newKernel(t)
	c, _ := chunker.New(chunker.DefaultParams())
	f := func(data []byte) bool {
		res, err := k.Run(data, Coalesced)
		if err != nil {
			return false
		}
		want := c.Boundaries(data)
		if len(res.Boundaries) != len(want) {
			return false
		}
		for i := range want {
			if res.Boundaries[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingSpeedup(t *testing.T) {
	// Figure 11: memory coalescing improves kernel time by roughly 8x.
	k := newKernel(t)
	n := int64(64 << 20)
	naive := k.EstimateTime(n, NaiveGlobal)
	coal := k.EstimateTime(n, Coalesced)
	ratio := float64(naive) / float64(coal)
	if ratio < 5 || ratio > 11 {
		t.Fatalf("coalescing speedup %.2f, want within [5, 11] (paper: ~8)", ratio)
	}
}

func TestKernelThroughputCalibration(t *testing.T) {
	// The calibrated model should put the optimized kernel in the
	// multi-GB/s range and the naive kernel near 1 GB/s, matching the
	// magnitudes behind Figures 11 and 12.
	k := newKernel(t)
	n := int64(256 << 20)
	coal := float64(n) / k.EstimateTime(n, Coalesced).Seconds() / 1e9
	naive := float64(n) / k.EstimateTime(n, NaiveGlobal).Seconds() / 1e9
	if coal < 5 || coal > 20 {
		t.Fatalf("coalesced kernel throughput %.2f GB/s outside [5, 20]", coal)
	}
	if naive < 0.5 || naive > 2.5 {
		t.Fatalf("naive kernel throughput %.2f GB/s outside [0.5, 2.5]", naive)
	}
}

func TestKernelTimeScalesLinearly(t *testing.T) {
	k := newKernel(t)
	t1 := k.EstimateTime(32<<20, Coalesced)
	t2 := k.EstimateTime(64<<20, Coalesced)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("doubling bytes scaled time by %.3f, want ~2", ratio)
	}
}

func TestKernelRejectsOversizedBuffer(t *testing.T) {
	cfg := DefaultKernelConfig()
	cfg.Spec.GlobalMemBytes = 1 << 10
	c, _ := chunker.New(chunker.DefaultParams())
	k, err := NewKernel(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(make([]byte, 2<<10), Coalesced); err == nil {
		t.Fatal("expected device-memory overflow error")
	}
}

func TestKernelConfigValidation(t *testing.T) {
	c, _ := chunker.New(chunker.DefaultParams())
	bad := []func(*KernelConfig){
		func(k *KernelConfig) { k.ThreadsPerBlock = 1 },
		func(k *KernelConfig) { k.TransactionBytes = 2 },
		func(k *KernelConfig) { k.ComputeCyclesPerByte = 0 },
		func(k *KernelConfig) { k.SampleWarps = 0 },
		func(k *KernelConfig) { k.Spec.SMs = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultKernelConfig()
		mutate(&cfg)
		if _, err := NewKernel(cfg, c); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestUnrolledFingerprintAblation(t *testing.T) {
	// §5.2.2: without loop unrolling the in-order SPs stall on RAW
	// dependencies, so the kernel must get slower.
	c, _ := chunker.New(chunker.DefaultParams())
	cfg := DefaultKernelConfig()
	kOpt, _ := NewKernel(cfg, c)
	cfg.UnrolledFingerprint = false
	kNo, _ := NewKernel(cfg, c)
	n := int64(64 << 20)
	if kNo.EstimateTime(n, Coalesced) <= kOpt.EstimateTime(n, Coalesced) {
		t.Fatal("removing loop unrolling did not slow the kernel down")
	}
}

func TestDivergenceAblation(t *testing.T) {
	c, _ := chunker.New(chunker.DefaultParams())
	cfg := DefaultKernelConfig()
	kOpt, _ := NewKernel(cfg, c)
	cfg.DivergenceOptimized = false
	kNo, _ := NewKernel(cfg, c)
	n := int64(64 << 20)
	if kNo.EstimateTime(n, Coalesced) <= kOpt.EstimateTime(n, Coalesced) {
		t.Fatal("warp divergence ablation did not slow the kernel down")
	}
}

func TestNaiveConflictsExceedCoalesced(t *testing.T) {
	// At realistic buffer sizes every lane of a warp owns a substream
	// several rows away from its neighbors, so naive access thrashes
	// the sense amplifiers while coalesced access misses only once per
	// row. (With tiny buffers substreams fit inside one row and the
	// effect vanishes — that regime is exercised separately below.)
	k := newKernel(t)
	data := testData(5, 32<<20)
	naive, err := k.Run(data, NaiveGlobal)
	if err != nil {
		t.Fatal(err)
	}
	coal, err := k.Run(data, Coalesced)
	if err != nil {
		t.Fatal(err)
	}
	if naive.BankConflicts <= coal.BankConflicts*10 {
		t.Fatalf("naive conflicts %d not >> coalesced %d", naive.BankConflicts, coal.BankConflicts)
	}
}

func TestTinyBuffersDontThrash(t *testing.T) {
	// When the whole buffer fits in a handful of rows, neighboring
	// lanes share open rows and the naive conflict rate stays low: the
	// model must not charge thrashing where the geometry forbids it.
	k := newKernel(t)
	small := k.EstimateTime(1<<20, NaiveGlobal).Seconds() / (1 << 20)
	large := k.EstimateTime(256<<20, NaiveGlobal).Seconds() / (256 << 20)
	if small >= large {
		t.Fatalf("per-byte naive cost small=%.3g not below large=%.3g", small, large)
	}
}

func TestMemoryModeString(t *testing.T) {
	if NaiveGlobal.String() != "naive-global" || Coalesced.String() != "coalesced" {
		t.Fatal("unexpected MemoryMode strings")
	}
	if MemoryMode(42).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func BenchmarkKernelScan(b *testing.B) {
	k := newKernel(b)
	data := testData(6, 32<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Run(data, Coalesced); err != nil {
			b.Fatal(err)
		}
	}
}
