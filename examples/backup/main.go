// Backup: the §7 consolidated cloud-backup scenario — periodic VM
// snapshots deduplicated through the Shredder pipeline, with min/max
// chunk sizes enabled as in commercial backup systems.
package main

import (
	"fmt"
	"log"

	"shredder/internal/backup"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	srv, err := backup.NewServer(backup.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A 32 MB "VM image" of 64 KB segments; each nightly snapshot
	// replaces ~8% of segments.
	im := workload.NewImage(21, 32<<20, 64<<10, 0.08)

	rep, err := srv.Backup("master", im.Master, backup.ShredderGPU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full backup: %s in %v at %s\n",
		stats.Bytes(rep.Bytes), rep.SimTime.Round(1e6), stats.Gbps(rep.Bandwidth))

	for night := 1; night <= 4; night++ {
		name := fmt.Sprintf("night-%d", night)
		snap := im.Snapshot(int64(100 + night))
		rep, err := srv.Backup(name, snap, backup.ShredderGPU)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.VerifyRestore(name, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %4d of %4d chunks duplicate (%s unique) at %s — restore verified\n",
			name, rep.DupChunks, rep.Chunks, stats.Bytes(rep.UniqueBytes), stats.Gbps(rep.Bandwidth))
	}

	st := srv.SiteStats()
	fmt.Printf("backup site holds %s for %s of logical backups (dedup %.2fx)\n",
		stats.Bytes(st.StoredBytes), stats.Bytes(st.LogicalBytes), st.Ratio())
}
