package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Admin is the operator-facing HTTP surface of a daemon:
//
//	/metrics   Prometheus text exposition (?format=json for the JSON
//	           snapshot CI archives)
//	/healthz   liveness: 200 as long as the process serves HTTP
//	/readyz    readiness: 200 while accepting work, 503 once draining
//	           (the daemon flips it at SIGTERM, before closing the
//	           listener, so load balancers stop routing new sessions
//	           while in-flight ones finish)
//	/statusz   human-readable status page from the daemon's callback,
//	           plus span trees of recent traces when a tracer is set
//	/debug/traces  JSON snapshot of retained traces (recent + slow)
//	/debug/pprof/...  the standard profiling endpoints
//
// Admin is an http.Handler; mount it on a dedicated listener — it
// performs no authentication and pprof can dump heap contents.
type Admin struct {
	reg      *Registry
	statusz  func(io.Writer)
	tracer   atomic.Pointer[Tracer]
	draining atomic.Bool
	mux      *http.ServeMux
}

// NewAdmin builds the admin surface. reg may be nil (metrics render
// empty); statusz may be nil (/statusz reports only drain state).
func NewAdmin(reg *Registry, statusz func(io.Writer)) *Admin {
	a := &Admin{reg: reg, statusz: statusz, mux: http.NewServeMux()}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	a.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if a.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	a.mux.HandleFunc("/statusz", a.handleStatusz)
	a.mux.HandleFunc("/debug/traces", a.handleTraces)
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return a
}

// ServeHTTP dispatches to the admin routes.
func (a *Admin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

// SetTracer attaches a tracer: /debug/traces starts serving its
// snapshot and /statusz appends span trees. A nil tracer (or never
// calling this) leaves both rendering empty.
func (a *Admin) SetTracer(t *Tracer) { a.tracer.Store(t) }

// SetDraining flips /readyz: true returns 503 to every probe from now
// on. The daemon calls it the moment shutdown begins.
func (a *Admin) SetDraining(v bool) { a.draining.Store(v) }

// Draining reports the current /readyz state.
func (a *Admin) Draining() bool { return a.draining.Load() }

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = a.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.reg.WritePrometheus(w)
}

func (a *Admin) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = a.tracer.Load().WriteJSON(w)
}

// statuszTraceLimit bounds the span-tree section of /statusz; the full
// snapshot stays one curl away at /debug/traces.
const statuszTraceLimit = 5

func (a *Admin) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	state := "serving"
	if a.draining.Load() {
		state = "draining"
	}
	fmt.Fprintf(w, "state: %s\n", state)
	if a.statusz != nil {
		a.statusz(w)
	}
	if t := a.tracer.Load(); t != nil {
		traces := t.Snapshot()
		fmt.Fprintf(w, "\n-- traces (%d retained", len(traces))
		if st := t.SlowThreshold(); st > 0 {
			fmt.Fprintf(w, ", slow >= %v", st)
		}
		fmt.Fprint(w, ", full dump at /debug/traces) --\n")
		for i, td := range traces {
			if i == statuszTraceLimit {
				fmt.Fprintf(w, "... and %d more\n", len(traces)-statuszTraceLimit)
				break
			}
			io.WriteString(w, td.Tree())
		}
	}
}
