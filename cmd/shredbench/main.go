// Command shredbench regenerates every measured table and figure of
// the Shredder paper (FAST 2012). Run it with no arguments to produce
// the full evaluation, or name specific experiments:
//
//	shredbench [flags] [table1 fig3 fig5 fig6 table2 fig9 fig11 fig12 fig15 fig18]
//
// Flags:
//
//	-data N     stream size in MiB for the pipeline experiments (default 256)
//	-image N    VM image size in MiB for fig18 (default 64)
//	-text N     text input size in MiB for fig15 (default 12)
//	-seed N     workload seed (default 42)
//
// All timing comes from the calibrated device/host simulation, so the
// output is identical on any machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"shredder/internal/experiments"
)

func main() {
	dataMB := flag.Int64("data", 256, "stream size in MiB for pipeline experiments")
	imageMB := flag.Int("image", 64, "VM image size in MiB for fig18")
	textMB := flag.Int("text", 12, "text input size in MiB for fig15")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	opt := experiments.Default()
	opt.DataBytes = *dataMB << 20
	opt.ImageBytes = *imageMB << 20
	opt.TextBytes = *textMB << 20
	opt.Seed = *seed

	names := flag.Args()
	if len(names) == 0 {
		names = []string{"table1", "fig3", "fig5", "fig6", "table2", "fig9", "fig11", "fig12", "fig15", "fig18"}
	}
	for _, name := range names {
		if err := run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "shredbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func run(name string, opt experiments.Options) error {
	switch name {
	case "table1":
		fmt.Println(experiments.Table1())
	case "fig3":
		fmt.Println(experiments.RenderFig3(experiments.Fig3()))
	case "fig5":
		rows, err := experiments.Fig5(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig5(rows, opt))
	case "fig6":
		fmt.Println(experiments.RenderFig6(experiments.Fig6()))
	case "table2":
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
	case "fig9":
		rows, err := experiments.Fig9(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows, opt))
	case "fig11":
		rows, err := experiments.Fig11(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig11(rows, opt))
	case "fig12":
		rows, err := experiments.Fig12(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig12(rows, opt))
	case "fig15":
		rows, err := experiments.Fig15(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig15(rows))
	case "fig18":
		rows, err := experiments.Fig18(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig18(rows))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
