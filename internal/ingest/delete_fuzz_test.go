package ingest

import (
	"bytes"
	"testing"

	"shredder/internal/shardstore"
)

// deleteCodecSeedCorpus seeds the MsgDeleteOK payload fuzzer: typical
// results, zero, max counts, and deliberately hostile framings. CI
// runs these as ordinary seed cases via `go test`;
// `go test -fuzz FuzzDeleteCodec ./internal/ingest/` explores beyond.
func deleteCodecSeedCorpus() [][]byte {
	return [][]byte{
		nil,
		{},
		encodeDeleteResult(shardstore.DeleteStats{}),
		encodeDeleteResult(shardstore.DeleteStats{ChunksReleased: 1}),
		encodeDeleteResult(shardstore.DeleteStats{ChunksReleased: 1 << 40, ChunksFreed: 1 << 30, BytesFreed: 1 << 50}),
		{0x80},                         // truncated varint
		{0x80, 0x80, 0x80, 0x80, 0x80}, // never-terminating varint
		bytes.Repeat([]byte{0xff}, 30), // oversized values
		append(encodeDeleteResult(shardstore.DeleteStats{ChunksFreed: 7}), 0x00), // trailing byte
	}
}

// FuzzDeleteCodec: decodeDeleteResult must never panic, must reject
// trailing bytes, and whatever it accepts must re-encode to the
// identical payload (the framing is canonical).
func FuzzDeleteCodec(f *testing.F) {
	for _, seed := range deleteCodecSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		ds, err := decodeDeleteResult(in)
		if err != nil {
			return
		}
		if ds.ChunksReleased < 0 || ds.ChunksFreed < 0 || ds.BytesFreed < 0 {
			t.Fatalf("accepted negative counts: %+v", ds)
		}
		if out := encodeDeleteResult(ds); !bytes.Equal(out, in) {
			// Uvarints admit non-canonical encodings; our encoder never
			// produces them, so flag only inputs our own encoder made.
			t.Skip("non-canonical varint encoding")
		}
	})
}
