package shardstore

import (
	"fmt"
	"sync"
	"testing"

	"shredder/internal/dedup"
	"shredder/internal/workload"
)

// benchChunks pre-cuts a pool of 4 KB pseudo-chunks; half the pool is
// re-used across goroutines so the benchmark exercises both the insert
// and the duplicate-hit path.
func benchChunks(n int) [][]byte {
	data := workload.Random(1, n*4096)
	out := make([][]byte, n)
	for i := range out {
		out[i] = data[i*4096 : (i+1)*4096]
	}
	return out
}

// runParallelPut measures Put throughput with g goroutines sharing one
// store, each walking the chunk pool from its own phase offset.
func runParallelPut(b *testing.B, store *Store, g int) {
	chunks := benchChunks(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := w * len(chunks) / g
			for i := 0; i < per; i++ {
				store.Put(chunks[(off+i)%len(chunks)])
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkShardstorePut measures concurrent Put throughput across
// goroutine counts and shard counts — the scaling claim of this
// package. The 1-goroutine, 1-shard row is the dedup.Store-equivalent
// baseline.
func BenchmarkShardstorePut(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		for _, shards := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("goroutines=%d/shards=%d", g, shards), func(b *testing.B) {
				store, err := New(shards, 0)
				if err != nil {
					b.Fatal(err)
				}
				runParallelPut(b, store, g)
			})
		}
	}
}

// BenchmarkShardstoreHas measures concurrent index lookups against a
// populated store.
func BenchmarkShardstoreHas(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			store, err := New(64, 0)
			if err != nil {
				b.Fatal(err)
			}
			chunks := benchChunks(4096)
			hashes := make([]Hash, len(chunks))
			for i, c := range chunks {
				store.Put(c)
				hashes[i] = dedup.Sum(c)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					off := w * len(hashes) / g
					for i := 0; i < per; i++ {
						if _, ok := store.Has(hashes[(off+i)%len(hashes)]); !ok {
							b.Error("lookup missed a stored hash")
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkShardstorePutBatch measures the batched insert path the
// ingest server uses.
func BenchmarkShardstorePutBatch(b *testing.B) {
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			store, err := New(64, 0)
			if err != nil {
				b.Fatal(err)
			}
			chunks := benchChunks(4096)
			b.SetBytes(int64(batch) * 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * batch) % (len(chunks) - batch)
				store.PutBatch(chunks[off : off+batch])
			}
		})
	}
}
