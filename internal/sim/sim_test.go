package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	end := e.Run()
	if end != Time(30*time.Millisecond) {
		t.Fatalf("final time %v, want 30ms", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v", got)
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("events at equal time ran out of order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var hits int
	e.After(time.Millisecond, func() {
		e.After(time.Millisecond, func() {
			hits++
			if e.Now() != Time(2*time.Millisecond) {
				t.Errorf("nested event at %v, want 2ms", e.Now())
			}
		})
	})
	e.Run()
	if hits != 1 {
		t.Fatal("nested event did not run")
	}
}

func TestEngineMonotoneClock(t *testing.T) {
	var e Engine
	last := Time(-1)
	for i := 0; i < 100; i++ {
		d := time.Duration((i*37)%50) * time.Microsecond
		e.After(d, func() {
			if e.Now() < last {
				t.Errorf("clock went backwards: %v after %v", e.Now(), last)
			}
			last = e.Now()
		})
	}
	e.Run()
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.After(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(0, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.After(time.Millisecond, func() { ran++ })
	e.After(3*time.Millisecond, func() { ran++ })
	e.RunUntil(Time(2 * time.Millisecond))
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock %v, want 2ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

func TestResourceFIFOSerialization(t *testing.T) {
	var e Engine
	r := NewResource(&e, "gpu")
	var finishes []Time
	// Three jobs of 10ms submitted at time zero must finish at 10, 20, 30.
	for i := 0; i < 3; i++ {
		r.Submit(10*time.Millisecond, func(start, finish Time) {
			finishes = append(finishes, finish)
		})
	}
	e.Run()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if finishes[i] != want[i] {
			t.Fatalf("finish[%d] = %v, want %v", i, finishes[i], want[i])
		}
	}
	if r.BusyTotal() != 30*time.Millisecond {
		t.Fatalf("busy total %v, want 30ms", r.BusyTotal())
	}
	if r.Jobs() != 3 {
		t.Fatalf("jobs %d, want 3", r.Jobs())
	}
}

func TestResourceIdleGap(t *testing.T) {
	var e Engine
	r := NewResource(&e, "dma")
	var firstFinish, secondStart Time
	r.Submit(5*time.Millisecond, func(_, f Time) {
		firstFinish = f
		// Second job submitted after a 10ms gap: starts when submitted,
		// not immediately after job one.
		e.After(10*time.Millisecond, func() {
			r.Submit(time.Millisecond, func(s, _ Time) { secondStart = s })
		})
	})
	e.Run()
	if secondStart != firstFinish+Time(10*time.Millisecond) {
		t.Fatalf("second start %v, want %v", secondStart, firstFinish+Time(10*time.Millisecond))
	}
	if got := r.Utilization(e.Now()); got <= 0 || got > 1 {
		t.Fatalf("utilization %v out of range", got)
	}
}

func TestTwoResourcesOverlap(t *testing.T) {
	// Transfer and kernel as separate servers: with two buffers in
	// flight the makespan is transfer + N·kernel when kernel dominates —
	// the double-buffering effect from Figure 4/5.
	var e Engine
	transfer := NewResource(&e, "transfer")
	kernel := NewResource(&e, "kernel")
	const n = 4
	tT, tK := 2*time.Millisecond, 8*time.Millisecond
	for i := 0; i < n; i++ {
		transfer.Submit(tT, func(_, _ Time) {
			kernel.Submit(tK, nil)
		})
	}
	end := e.Run()
	want := Time(tT + n*tK) // first copy, then kernel back-to-back
	if end != want {
		t.Fatalf("makespan %v, want %v", end, want)
	}
}

func TestTokensBlockAndWake(t *testing.T) {
	var e Engine
	tok := NewTokens(&e, 2)
	var order []int
	acquire := func(id int) {
		tok.Acquire(func() {
			order = append(order, id)
			e.After(10*time.Millisecond, tok.Release)
		})
	}
	for i := 0; i < 5; i++ {
		acquire(i)
	}
	e.Run()
	if len(order) != 5 {
		t.Fatalf("granted %d tokens, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grants out of FIFO order: %v", order)
		}
	}
	if tok.Free() != 2 {
		t.Fatalf("free tokens %d, want 2", tok.Free())
	}
}

func TestTokensPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTokens(0) did not panic")
		}
	}()
	var e Engine
	NewTokens(&e, 0)
}

func TestNegativeServicePanics(t *testing.T) {
	var e Engine
	r := NewResource(&e, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative service time did not panic")
		}
	}()
	r.Submit(-time.Millisecond, nil)
}

func TestPipelineBoundedByTokens(t *testing.T) {
	// Classic 4-stage pipeline: with k tokens, k buffers are in flight;
	// speedup over serial grows with k up to sum/max of stage times.
	// sum = 16ms, max = 6ms: with 2 tokens the rate is sum/2 = 8ms per
	// buffer, with 3+ it reaches the 6ms bottleneck stage.
	stage := []time.Duration{5 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond, time.Millisecond}
	run := func(tokens, buffers int) Time {
		var e Engine
		rs := make([]*Resource, len(stage))
		for i := range rs {
			rs[i] = NewResource(&e, "s")
		}
		tok := NewTokens(&e, tokens)
		for b := 0; b < buffers; b++ {
			tok.Acquire(func() {
				rs[0].Submit(stage[0], func(_, _ Time) {
					rs[1].Submit(stage[1], func(_, _ Time) {
						rs[2].Submit(stage[2], func(_, _ Time) {
							rs[3].Submit(stage[3], func(_, _ Time) {
								tok.Release()
							})
						})
					})
				})
			})
		}
		return e.Run()
	}
	serial := run(1, 8)
	full := run(4, 8)
	if serial != Time(8*16*time.Millisecond) {
		t.Fatalf("serial makespan %v, want 128ms", serial)
	}
	// Fully pipelined: dominated by the 6ms stage (plus ramp-in/out).
	speedup := float64(serial) / float64(full)
	if speedup < 2.0 || speedup > 16.0/6.0 {
		t.Fatalf("4-token speedup %.2f, want in (2.0, 2.67]", speedup)
	}
	if run(2, 8) >= serial {
		t.Fatal("2 tokens not faster than serial")
	}
	if full >= run(2, 8) {
		t.Fatal("4 tokens not faster than 2")
	}
}
