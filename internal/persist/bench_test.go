package persist

import (
	"fmt"
	"testing"
)

// buildDataDir populates a data directory with a deduplicating chunk
// series plus recipes, then closes it — the fixture every recovery
// benchmark reopens.
func buildDataDir(b *testing.B, dir string, shards int, size int) {
	b.Helper()
	st, err := OpenStore(dir, Options{Shards: shards, Fsync: FsyncPolicy{Mode: FsyncNever}})
	if err != nil {
		b.Fatal(err)
	}
	chunks := corpus(b, 77, size, 2)
	recipe, _, err := st.WriteStream(chunks)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.CommitRecipe("bench-stream", recipe); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecover measures a cold Open of an existing data directory:
// WAL replay, container validation and index rebuild across shard
// counts. The metric that matters operationally is restart time per
// stored byte.
func BenchmarkRecover(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			dir := b.TempDir()
			const size = 4 << 20
			buildDataDir(b, dir, shards, size)
			b.SetBytes(size * 3) // master + two snapshots of logical data replayed
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := OpenStore(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if st.Stats().UniqueChunks == 0 {
					b.Fatal("recovered nothing")
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPutBatchDurable measures the durable ingest hot path under
// each fsync policy, next to the in-memory baseline from the
// shardstore benchmarks.
func BenchmarkPutBatchDurable(b *testing.B) {
	for _, pol := range []FsyncPolicy{{Mode: FsyncNever}, {Mode: FsyncInterval, Interval: DefaultFsyncInterval}, {Mode: FsyncAlways}} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			st, err := OpenStore(b.TempDir(), Options{Shards: 16, Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			chunks := corpus(b, 13, 1<<20, 0)
			var total int64
			for _, c := range chunks {
				total += int64(len(c))
			}
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := st.PutBatch(chunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
