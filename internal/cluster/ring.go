package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"strconv"

	"shredder/internal/dedup"
)

// DefaultVnodes is the virtual-node count per physical node. More
// points flatten the load split between nodes (the standard deviation
// of arc length shrinks roughly with 1/√vnodes) at a small cost in
// ring size and lookup depth.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over a topology: each node projects
// Vnodes points onto the 64-bit key space, and a key is owned by the
// node whose point follows it (wrapping at the top). Placement depends
// only on node IDs, so restarts and address changes keep data where it
// is, and adding a node steals only the arcs its points land on.
//
// Chunk fingerprints are already uniform 256-bit hashes, so a chunk's
// ring key is simply its first 8 bytes; names are hashed onto the ring
// with FNV-64a, as are the vnode points themselves.
type Ring struct {
	nodes  []Node
	points []ringPoint // sorted by pos, ties broken by node index
}

type ringPoint struct {
	pos  uint64
	node int32
}

// NewRing validates the topology and builds its ring. vnodes ≤ 0 means
// DefaultVnodes.
func NewRing(t Topology, vnodes int) (*Ring, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		nodes:  append([]Node(nil), t.Nodes...),
		points: make([]ringPoint, 0, len(t.Nodes)*vnodes),
	}
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			// FNV over short, similar strings ("a#0", "a#1", …) leaves
			// most of its avalanche unused, which skews arc lengths badly;
			// a splitmix64 finalizer restores uniform point placement.
			pos := mix64(hashString(n.ID + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{pos: pos, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Colliding points resolve deterministically to the lower node
		// index, independent of input order.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Node returns the i-th node of the topology.
func (r *Ring) Node(i int) Node { return r.nodes[i] }

// OwnerKey returns the index of the node owning a raw ring key.
func (r *Ring) OwnerKey(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].pos >= key
	})
	if i == len(r.points) {
		i = 0 // wrap: keys above the last point belong to the first
	}
	return int(r.points[i].node)
}

// Owner returns the index of the node owning a chunk fingerprint.
func (r *Ring) Owner(h dedup.Hash) int {
	return r.OwnerKey(binary.BigEndian.Uint64(h[:8]))
}

// OwnerName returns the index of the node owning a stream name — the
// stream's home node, where its manifest lives.
func (r *Ring) OwnerName(name string) int {
	return r.OwnerKey(hashString(name))
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv hash writes cannot fail
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
