package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// Session speaks the ingest protocol over one connection. It is not
// safe for concurrent use: a session runs one operation at a time
// (open several sessions for parallel streams — that is the point of
// the sharded server).
//
// A fresh Session speaks the legacy raw protocol (version 1: no
// negotiation, server-default engine). Negotiate upgrades it to
// version 2 (explicit chunking engine, still server-chunked);
// NegotiateDedup upgrades it to version 3, after which BackupDedup
// runs the negotiated engine locally and ships only fingerprints plus
// missing chunk bodies.
type Session struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	buf       []byte
	frameSize int

	// version is the negotiated protocol version (0 until a Hello is
	// accepted: the legacy raw session). spec and eng are set by a
	// successful negotiation; eng only by NegotiateDedup, which needs
	// the engine locally.
	version byte
	spec    chunk.Spec
	eng     chunk.Engine

	// tracer, when set via SetTracer, records one root span per
	// operation. On a version-4 session the span's context also rides
	// the Hello and BeginDedup frames, so a traced server parents its
	// own spans under ours.
	tracer *obs.Tracer

	// streamName is the name of the dedup stream opened by BeginDedup,
	// threaded into the errors of the round-level ops.
	streamName string

	// chunkWorkers, when > 1 (or < 0 for all cores), wraps the engine
	// NegotiateDedup builds in the parallel host chunker, so BackupDedup
	// cuts large streams on many cores with byte-identical output.
	chunkWorkers int
}

// Client is the session type's historical name.
type Client = Session

// ErrDedupUnsupported reports a BackupDedup call on a session that has
// not negotiated protocol version 3 (NegotiateDedup was never called,
// or the server talked it down).
var ErrDedupUnsupported = errors.New("ingest: dedup backup requires a version ≥ 3 session (call NegotiateDedup first)")

// ErrDeleteUnsupported reports a Delete call on a session below
// protocol version 3 (deletion shipped with the v3 retention ops).
var ErrDeleteUnsupported = errors.New("ingest: delete requires a version ≥ 3 session (call NegotiateDedup first)")

// NewSession wraps an established connection (TCP, unix socket,
// net.Pipe, ...).
func NewSession(conn net.Conn) *Session {
	return &Session{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 256<<10),
		bw:        bufio.NewWriterSize(conn, 256<<10),
		frameSize: DefaultFrameSize,
	}
}

// NewClient is NewSession under the type's historical name.
func NewClient(conn net.Conn) *Session { return NewSession(conn) }

// Dial timeouts and retry bounds. A raw net.Dial against a dead node
// can hang for minutes (kernel SYN retries); every connect in this
// package is bounded instead, which a routing layer dialing many nodes
// depends on.
const (
	// DefaultDialTimeout bounds one connect attempt.
	DefaultDialTimeout = 5 * time.Second
	// DefaultDialBackoff is the pause before the second attempt; it
	// doubles per retry up to DefaultDialMaxBackoff.
	DefaultDialBackoff    = 50 * time.Millisecond
	DefaultDialMaxBackoff = 2 * time.Second
)

// DialOptions bounds how a Session connects: a per-attempt timeout and
// a retry budget with exponential backoff. The zero value means one
// attempt with DefaultDialTimeout — Dial's behavior.
type DialOptions struct {
	// Timeout bounds each connect attempt (0: DefaultDialTimeout).
	Timeout time.Duration
	// Attempts is the total number of connect attempts (0 or 1: no
	// retry).
	Attempts int
	// Backoff is the pause before the second attempt, doubling each
	// retry (0: DefaultDialBackoff). MaxBackoff caps the doubling
	// (0: DefaultDialMaxBackoff).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// Dial connects to addr under the options' bounds. All attempts
// failing returns the last attempt's error, wrapped with the attempt
// count so errors.Is/As still reach the transport cause.
func (o DialOptions) Dial(addr string) (*Session, error) {
	timeout := o.Timeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	attempts := o.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = DefaultDialBackoff
	}
	maxBackoff := o.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultDialMaxBackoff
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return NewSession(conn), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("ingest: dial %s failed after %d attempt(s): %w", addr, attempts, lastErr)
}

// Dial connects to a shredderd server at addr: one attempt, bounded by
// DefaultDialTimeout (use DialOptions for retries or other bounds).
func Dial(addr string) (*Session, error) {
	return DialOptions{}.Dial(addr)
}

// Close terminates the session.
func (s *Session) Close() error { return s.conn.Close() }

// SetTracer attaches a tracer to the session: every subsequent
// operation records a root span (nil detaches — the default).
func (s *Session) SetTracer(t *obs.Tracer) { s.tracer = t }

// root starts one client-side operation span; nil (a no-op) when the
// session has no tracer.
func (s *Session) root(name string, attrs ...obs.Attr) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.StartRoot(name, attrs...)
}

// Version returns the negotiated protocol version (0 for a legacy
// session that never sent a Hello).
func (s *Session) Version() byte { return s.version }

// Spec returns the negotiated chunking spec (zero until a Hello is
// accepted).
func (s *Session) Spec() chunk.Spec { return s.spec }

// Negotiate proposes a chunking engine for this session and returns
// the spec the server accepted. Call it before the first Backup;
// sessions that never negotiate get the server's default (Rabin)
// engine, wire-compatible with pre-negotiation servers. Negotiate
// sends a version-2 Hello — byte-identical to a legacy v2 client, so
// it works against any negotiating server — and leaves the session on
// the raw (server-chunked) path; use NegotiateDedup for client-side
// matching. A server that rejects the spec — or predates negotiation
// entirely and answers the unknown frame with an error — surfaces as
// *NegotiationError.
func (s *Session) Negotiate(spec chunk.Spec) (chunk.Spec, error) {
	return s.negotiate(MinProtocolVersion, spec)
}

// NegotiateDedup proposes a version-3 session: the client runs spec's
// engine locally and BackupDedup becomes available. The spec must
// bound chunk sizes (MaxSize in (0, MaxFrame]) so every chunk body
// fits one frame. Against a server that only speaks version 2 this
// fails with a *NegotiationError naming both versions and the session
// is dead — redial and fall back to Negotiate/Backup.
func (s *Session) NegotiateDedup(spec chunk.Spec) (chunk.Spec, error) {
	if spec.MaxSize <= 0 || spec.MaxSize > MaxFrame {
		return chunk.Spec{}, &NegotiationError{
			Reason: "dedup sessions need a bounded max chunk size within the frame limit",
		}
	}
	accepted, err := s.negotiate(ProtocolVersion, spec)
	if err != nil {
		return chunk.Spec{}, err
	}
	if s.version < 3 {
		return chunk.Spec{}, &NegotiationError{
			Reason: "server talked the session down below version 3; dedup backup unavailable",
		}
	}
	eng, err := chunk.New(accepted)
	if err != nil {
		return chunk.Spec{}, err
	}
	if s.chunkWorkers > 1 || s.chunkWorkers < 0 {
		eng = chunk.NewParallel(eng, s.chunkWorkers)
	}
	s.eng = eng
	return accepted, nil
}

// SetParallelChunking makes BackupDedup chunk large streams on up to
// workers cores (negative: all cores; 0 or 1: sequential). Chunk
// boundaries are byte-identical to the sequential engine — this is
// purely a local throughput knob and never affects the wire protocol
// or the server. Call it before NegotiateDedup; it also rewraps an
// already negotiated engine.
func (s *Session) SetParallelChunking(workers int) {
	s.chunkWorkers = workers
	if s.eng == nil {
		return
	}
	if p, ok := s.eng.(*chunk.Parallel); ok {
		s.eng = p.Inner()
	}
	if workers > 1 || workers < 0 {
		s.eng = chunk.NewParallel(s.eng, workers)
	}
}

func (s *Session) negotiate(version byte, spec chunk.Spec) (chunk.Spec, error) {
	if err := spec.Validate(); err != nil {
		return chunk.Spec{}, err
	}
	// The span's context rides the Hello on v4 proposals (older
	// versions stay byte-identical: encodeHelloCtx only appends there).
	sp := s.root("negotiate", obs.Int("protocol", int64(version)))
	defer sp.End()
	if err := writeFrame(s.bw, MsgHello, encodeHelloCtx(version, spec, sp.Context())); err != nil {
		return chunk.Spec{}, err
	}
	if err := s.bw.Flush(); err != nil {
		return chunk.Spec{}, err
	}
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return chunk.Spec{}, err
	}
	s.keep(payload)
	switch typ {
	case MsgAccept:
		ver, accepted, _, err := decodeHello(payload)
		if err != nil {
			return chunk.Spec{}, err
		}
		s.version = ver
		s.spec = accepted
		s.eng = nil
		return accepted, nil
	case MsgError:
		return chunk.Spec{}, &NegotiationError{Reason: string(payload)}
	default:
		return chunk.Spec{}, &UnexpectedFrameError{Type: typ, Context: "hello reply"}
	}
}

// Backup streams r to the server under the given name and returns the
// server's dedup statistics for the stream. The whole stream crosses
// the wire; the server chunks and dedups it (BackupDedup is the
// bandwidth-saving alternative on version ≥ 3 sessions).
func (s *Session) Backup(name string, r io.Reader) (*StreamStats, error) {
	sp := s.root("backup", obs.Str("recipe", name))
	defer sp.End()
	if err := writeFrame(s.bw, MsgBegin, []byte(name)); err != nil {
		return nil, err
	}
	if cap(s.buf) < s.frameSize {
		s.buf = make([]byte, s.frameSize)
	}
	buf := s.buf[:s.frameSize]
	var logical int64
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			logical += int64(n)
			if werr := writeFrame(s.bw, MsgData, buf[:n]); werr != nil {
				return nil, s.surfaceRemote("backup", name, werr)
			}
			// Keep the transport moving: net.Pipe and small TCP windows
			// need the server consuming while we produce.
			if ferr := s.bw.Flush(); ferr != nil {
				return nil, s.surfaceRemote("backup", name, ferr)
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := writeFrame(s.bw, MsgEnd, nil); err != nil {
		return nil, s.surfaceRemote("backup", name, err)
	}
	if err := s.bw.Flush(); err != nil {
		return nil, s.surfaceRemote("backup", name, err)
	}
	st, err := s.readStats("backup", name)
	if err != nil {
		return nil, err
	}
	sp.Set(obs.Int("bytes", logical), obs.Int("chunks", st.Chunks))
	if st.Wire == (WireStats{}) {
		// Legacy (< v3) servers don't report wire statistics: on the
		// raw path every logical byte crossed as a Data payload, so the
		// client can fill them exactly.
		st.Wire = WireStats{LogicalBytes: logical, WireBytes: logical, ChunksSent: st.Chunks}
	}
	return st, nil
}

// Dedup-path batching: one HasBatch round covers up to dedupBatchChunks
// fingerprints, and the bodies held for a round (pending the server's
// missing-set answer) are capped at dedupBatchBytes.
const (
	dedupBatchChunks = 256
	dedupBatchBytes  = 4 << 20
)

// BeginDedup opens a two-phase dedup stream under name on a version
// ≥ 3 session, without chunking anything locally: the caller drives
// the rounds itself with HasBatch/SendBodies (or DedupRound) and ends
// the stream with CommitDedup. This is the routing-layer surface — a
// router that already holds chunked pieces fans them out to owner
// nodes through these calls. parent, when valid on a v4 session, rides
// the BeginDedup frame so the server's span parents under the caller's
// (BackupDedup passes its own root; a router passes the span of the
// client operation it is serving). Plain clients should keep using
// BackupDedup, which wraps the whole exchange.
func (s *Session) BeginDedup(name string, parent obs.SpanContext) error {
	if s.version < 3 {
		return ErrDedupUnsupported
	}
	s.streamName = name
	return writeFrame(s.bw, MsgBeginDedup, encodeBeginDedup(s.version, name, parent))
}

// HasBatch runs one fingerprint round on a dedup stream opened with
// BeginDedup: the batch goes out, and the server's answer — the
// ascending indices into hs it has no chunk for — comes back. Every
// index the server does NOT return is pinned server-side under the
// stream. The caller must follow with exactly one body per returned
// index, in order (SendBodies), before the next HasBatch or
// CommitDedup.
func (s *Session) HasBatch(hs []dedup.Hash) ([]int, error) {
	if err := writeFrame(s.bw, MsgHasBatch, encodeHasBatch(hs)); err != nil {
		return nil, s.surfaceRemote("dedup backup", s.streamName, err)
	}
	if err := s.bw.Flush(); err != nil {
		return nil, s.surfaceRemote("dedup backup", s.streamName, err)
	}
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return nil, err
	}
	s.keep(payload)
	switch typ {
	case MsgNeedBatch:
		return decodeNeedBatch(payload, len(hs))
	case MsgError:
		return nil, &RemoteError{Msg: string(payload), Op: "dedup backup", Name: s.streamName}
	default:
		return nil, &UnexpectedFrameError{Type: typ, Context: "has-batch reply"}
	}
}

// SendBodies uploads chunk bodies answering the last HasBatch round's
// missing set, one Data frame per body in the server's index order.
func (s *Session) SendBodies(bodies ...[]byte) error {
	for _, b := range bodies {
		if err := writeFrame(s.bw, MsgData, b); err != nil {
			return s.surfaceRemote("dedup backup", s.streamName, err)
		}
	}
	if err := s.bw.Flush(); err != nil {
		return s.surfaceRemote("dedup backup", s.streamName, err)
	}
	return nil
}

// WriteBody queues one chunk body as a Data frame without flushing; the
// session's next HasBatch or CommitDedup flushes it ahead of its own
// frame. A router forwarding a round's bodies one at a time as they
// arrive uses this to avoid a flush (typically a syscall) per chunk —
// the server does not answer bodies, so nothing is lost by batching.
func (s *Session) WriteBody(b []byte) error {
	if err := writeFrame(s.bw, MsgData, b); err != nil {
		return s.surfaceRemote("dedup backup", s.streamName, err)
	}
	return nil
}

// DedupRound is one complete round against bodies held locally:
// HasBatch(hs), then the bodies the server asked for. bodies[i] must
// be the chunk hashing to hs[i]. Returns the missing set the server
// answered (the bodies that actually crossed).
func (s *Session) DedupRound(hs []dedup.Hash, bodies [][]byte) ([]int, error) {
	missing, err := s.HasBatch(hs)
	if err != nil {
		return nil, err
	}
	if len(missing) > 0 {
		send := make([][]byte, 0, len(missing))
		for _, i := range missing {
			send = append(send, bodies[i])
		}
		if err := s.SendBodies(send...); err != nil {
			return nil, err
		}
	}
	return missing, nil
}

// CommitDedup ends a dedup stream opened with BeginDedup: the server
// durably records the recipe accumulated from the rounds and answers
// with the stream's stats.
func (s *Session) CommitDedup() (*StreamStats, error) {
	if err := writeFrame(s.bw, MsgCommit, nil); err != nil {
		return nil, s.surfaceRemote("dedup backup", s.streamName, err)
	}
	if err := s.bw.Flush(); err != nil {
		return nil, s.surfaceRemote("dedup backup", s.streamName, err)
	}
	return s.readStats("dedup backup", s.streamName)
}

// BackupDedup backs up r under name over the two-phase content-
// addressed protocol: the session's negotiated engine chunks the
// stream locally, fingerprints go first, and only the chunk bodies the
// server reports missing are uploaded, followed by a commit the server
// durably acks. Requires NegotiateDedup. The returned stats carry the
// server-computed WireStats — the whole point of the exercise.
func (s *Session) BackupDedup(name string, r io.Reader) (*StreamStats, error) {
	if s.version < 3 || s.eng == nil {
		return nil, ErrDedupUnsupported
	}
	// On a v4 session the root span's context rides the BeginDedup
	// frame, so the server's backup_dedup span parents under this one
	// and both sides merge into a single tree.
	sp := s.root("backup_dedup", obs.Str("recipe", name))
	defer sp.End()
	if err := s.BeginDedup(name, sp.Context()); err != nil {
		return nil, err
	}
	var (
		hs     []dedup.Hash
		bodies [][]byte
		held   int64
	)
	flush := func() error {
		if len(hs) == 0 {
			return nil
		}
		hb := sp.Child("has_batch", obs.Int("chunks", int64(len(hs))))
		missing, err := s.HasBatch(hs)
		if err != nil {
			hb.End()
			return err
		}
		hb.Set(obs.Int("missing", int64(len(missing))))
		hb.End()
		up := sp.Child("upload", obs.Int("chunks", int64(len(missing))))
		defer up.End()
		send := make([][]byte, 0, len(missing))
		var upBytes int64
		for _, i := range missing {
			send = append(send, bodies[i])
			upBytes += int64(len(bodies[i]))
		}
		if err := s.SendBodies(send...); err != nil {
			return err
		}
		up.Set(obs.Int("bytes", upBytes))
		hs, bodies, held = hs[:0], bodies[:0], 0
		return nil
	}
	sink := s.eng.Stream(func(c chunk.Chunk, data []byte) error {
		// data is a view into the engine's buffer: copy to hold it
		// until the server's missing-set answer for this round.
		hs = append(hs, dedup.Sum(data))
		bodies = append(bodies, append([]byte(nil), data...))
		held += int64(len(data))
		if len(hs) >= dedupBatchChunks || held >= dedupBatchBytes {
			return flush()
		}
		return nil
	})
	if _, err := io.Copy(sink, r); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	c := sp.Child("commit")
	defer c.End()
	st, err := s.CommitDedup()
	if err != nil {
		return nil, err
	}
	c.End()
	sp.Set(obs.Int("bytes", st.Bytes), obs.Int("chunks", st.Chunks),
		obs.Int("wire_bytes", st.Wire.WireBytes),
		obs.Int("chunks_skipped", st.Wire.ChunksSkipped))
	return st, nil
}

// BackupBytes is Backup over an in-memory image.
func (s *Session) BackupBytes(name string, data []byte) (*StreamStats, error) {
	return s.Backup(name, bytes.NewReader(data))
}

// BackupDedupBytes is BackupDedup over an in-memory image.
func (s *Session) BackupDedupBytes(name string, data []byte) (*StreamStats, error) {
	return s.BackupDedup(name, bytes.NewReader(data))
}

// readStats consumes the server's end-of-stream reply.
func (s *Session) readStats(op, name string) (*StreamStats, error) {
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return nil, err
	}
	s.keep(payload)
	switch typ {
	case MsgStats:
		st, err := decodeStreamStats(payload)
		if err != nil {
			return nil, err
		}
		return &st, nil
	case MsgError:
		return nil, &RemoteError{Msg: string(payload), Op: op, Name: name}
	default:
		return nil, &UnexpectedFrameError{Type: typ, Context: op + " reply"}
	}
}

// surfaceRemote recovers the server's own diagnosis of a broken
// stream. When the server aborts mid-stream (a store failure, a
// rejected body) it sends an Error frame and closes; the client's next
// write then fails with a bare transport error ("closed pipe") and the
// actual reason would be lost sitting in the receive buffer. Given the
// write error, try briefly to read that Error frame and return it as a
// *RemoteError instead; fall back to the write error.
func (s *Session) surfaceRemote(op, name string, werr error) error {
	if err := s.conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return werr
	}
	defer s.conn.SetReadDeadline(time.Time{})
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil || typ != MsgError {
		return werr
	}
	s.keep(payload)
	return &RemoteError{Msg: string(payload), Op: op, Name: name}
}

// remoteErr types a MsgError payload: the store's canonical unknown-
// recipe marker becomes a *NotFoundError (matching ErrNotFound, so a
// router can tell "not on this node" from "this node failed"); any
// other server text stays a *RemoteError verbatim.
func remoteErr(op, name string, payload []byte) error {
	if strings.Contains(string(payload), shardstore.ErrUnknownRecipe.Error()) {
		return &NotFoundError{Op: op, Name: name}
	}
	return &RemoteError{Msg: string(payload), Op: op, Name: name}
}

// Delete expires a previously backed-up stream on the server: its
// recipe is durably tombstoned and every chunk reference it held is
// released, so chunks no retained stream uses become reclaimable by
// the server's compactor. Requires a version ≥ 3 session
// (NegotiateDedup). Deleting a name the server has no recipe for comes
// back as a *NotFoundError (errors.Is(err, ErrNotFound)) and the
// session stays usable.
func (s *Session) Delete(name string) (*shardstore.DeleteStats, error) {
	if s.version < 3 {
		return nil, ErrDeleteUnsupported
	}
	sp := s.root("delete", obs.Str("recipe", name))
	defer sp.End()
	if err := writeFrame(s.bw, MsgDelete, []byte(name)); err != nil {
		return nil, err
	}
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(s.br, s.buf)
	if err != nil {
		return nil, err
	}
	s.keep(payload)
	switch typ {
	case MsgDeleteOK:
		ds, err := decodeDeleteResult(payload)
		if err != nil {
			return nil, err
		}
		return &ds, nil
	case MsgError:
		return nil, remoteErr("delete", name, payload)
	default:
		return nil, &UnexpectedFrameError{Type: typ, Context: "delete reply"}
	}
}

// RestoreStream is an in-flight restore: an io.Reader over the
// restored bytes as they arrive, frame by frame. The session can run
// no other operation until the stream is read to EOF (or Closed, which
// drains it). An unknown name surfaces on the first Read as a
// *NotFoundError.
type RestoreStream struct {
	s     *Session
	name  string
	sp    *obs.Span
	frame []byte // unconsumed tail of the current Data payload
	total int64
	done  bool
	err   error
}

// OpenRestore starts restoring a previously backed-up name and returns
// the byte stream. Restore wraps it for whole-stream copies; a routing
// layer reads several nodes' streams side by side to interleave them.
func (s *Session) OpenRestore(name string) (*RestoreStream, error) {
	sp := s.root("restore", obs.Str("recipe", name))
	if err := writeFrame(s.bw, MsgRestore, []byte(name)); err != nil {
		sp.End()
		return nil, err
	}
	if err := s.bw.Flush(); err != nil {
		sp.End()
		return nil, err
	}
	return &RestoreStream{s: s, name: name, sp: sp}, nil
}

// next loads the following Data frame into r.frame. io.EOF reports the
// clean end of the stream; every other error is terminal and sticky.
func (r *RestoreStream) next() error {
	if r.err != nil {
		return r.err
	}
	if r.done {
		return io.EOF
	}
	typ, payload, err := readFrame(r.s.br, r.s.buf)
	if err != nil {
		r.fail(err)
		return err
	}
	r.s.keep(payload)
	switch typ {
	case MsgData:
		r.frame = payload
		return nil
	case MsgEnd:
		r.done = true
		r.sp.Set(obs.Int("bytes", r.total))
		r.sp.End()
		return io.EOF
	case MsgError:
		err := remoteErr("restore", r.name, payload)
		r.fail(err)
		return err
	default:
		err := &UnexpectedFrameError{Type: typ, Context: "restore stream"}
		r.fail(err)
		return err
	}
}

func (r *RestoreStream) Read(p []byte) (int, error) {
	for len(r.frame) == 0 {
		if err := r.next(); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.frame)
	r.frame = r.frame[n:]
	r.total += int64(n)
	return n, nil
}

// NextChunk returns the next whole Data frame's payload. The server
// emits one Data frame per recipe entry whenever chunks fit a frame
// (MaxSize ≤ DefaultFrameSize), so against a bounded-chunk server this
// reads the stream chunk by chunk — how the routing layer re-interleaves
// per-node subsequences into the original stream. Do not mix with Read
// mid-frame. The slice aliases the session's buffer: it is valid only
// until the next operation on this session. io.EOF reports the clean
// end of the stream.
func (r *RestoreStream) NextChunk() ([]byte, error) {
	if len(r.frame) == 0 {
		if err := r.next(); err != nil {
			return nil, err
		}
	}
	c := r.frame
	r.frame = nil
	r.total += int64(len(c))
	return c, nil
}

// fail latches a terminal error (sticky across Reads) and ends the
// operation span.
func (r *RestoreStream) fail(err error) {
	r.err = err
	r.sp.End()
}

// Bytes returns how many restored bytes have been read so far.
func (r *RestoreStream) Bytes() int64 { return r.total }

// Close drains any unread remainder so the session is usable again. A
// stream that already hit a protocol error stays broken — the
// connection is desynchronized and the session should be discarded.
func (r *RestoreStream) Close() error {
	if r.err != nil {
		return r.err
	}
	for !r.done {
		if _, err := io.CopyN(io.Discard, r, 256<<10); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

// Restore streams a previously backed-up name from the server into w,
// returning the byte count. An unknown name comes back as a
// *NotFoundError (errors.Is(err, ErrNotFound)).
func (s *Session) Restore(name string, w io.Writer) (int64, error) {
	rs, err := s.OpenRestore(name)
	if err != nil {
		return 0, err
	}
	if _, err := io.Copy(w, rs); err != nil {
		return rs.Bytes(), err
	}
	return rs.Bytes(), nil
}

// RestoreBytes is Restore into memory.
func (s *Session) RestoreBytes(name string) ([]byte, error) {
	var out bytes.Buffer
	if _, err := s.Restore(name, &out); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Verify restores name and checks it against original byte-for-byte.
func (s *Session) Verify(name string, original []byte) error {
	got, err := s.RestoreBytes(name)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, original) {
		return errors.New("ingest: restored stream differs from original")
	}
	return nil
}

// keep retains a grown frame buffer for reuse.
func (s *Session) keep(payload []byte) {
	if cap(payload) > cap(s.buf) {
		s.buf = payload[:cap(payload)]
	}
}
