package ingest

import (
	"fmt"
	"sync"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/workload"
)

// BenchmarkIngestThroughput streams concurrent client sessions into one
// server over in-memory pipes, varying the store's shard count: the
// contention knob this subsystem exists to turn. Bytes/op is the
// aggregate client payload.
func BenchmarkIngestThroughput(b *testing.B) {
	const sessions = 4
	const imageSize = 2 << 20
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d/shards=%d", sessions, shards), func(b *testing.B) {
			srv, err := NewServer(testConfig(shards))
			if err != nil {
				b.Fatal(err)
			}
			golden := workload.NewImage(1, imageSize, 64<<10, 0.1)
			images := make([][]byte, sessions)
			clients := make([]*Client, sessions)
			for i := range images {
				images[i] = golden.Snapshot(int64(i))
				clients[i] = startSession(b, srv)
			}
			b.SetBytes(int64(sessions * imageSize))
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < sessions; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						name := fmt.Sprintf("s%d-i%d", i, n)
						if _, err := clients[i].BackupBytes(name, images[i]); err != nil {
							b.Error(err)
						}
					}(i)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkIngestSingleStream is the uncontended baseline: one session,
// one stream at a time.
func BenchmarkIngestSingleStream(b *testing.B) {
	srv, err := NewServer(testConfig(16))
	if err != nil {
		b.Fatal(err)
	}
	img := workload.Random(9, 4<<20)
	c := startSession(b, srv)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := c.BackupBytes(fmt.Sprintf("i%d", n), img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestChunkers is the Rabin-vs-FastCDC number on the
// trajectory: one session streaming 4 MB images through the full
// service path (frames, chunking pipeline, batched dedup, durable-less
// store), per negotiated engine. The chunking engine is the only
// variable.
func BenchmarkIngestChunkers(b *testing.B) {
	const imageSize = 4 << 20
	for _, tc := range []struct {
		name string
		spec chunk.Spec
	}{
		{"rabin", chunk.Spec{}}, // zero spec: skip negotiation, server default
		{"fastcdc", chunk.FastCDCSpec(4 << 10)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			srv, err := NewServer(testConfig(16))
			if err != nil {
				b.Fatal(err)
			}
			c := startSession(b, srv)
			if tc.spec.Algo != 0 {
				if _, err := c.Negotiate(tc.spec); err != nil {
					b.Fatal(err)
				}
			}
			img := workload.Random(77, imageSize)
			b.SetBytes(imageSize)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, err := c.BackupBytes(fmt.Sprintf("i%d", n), img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
