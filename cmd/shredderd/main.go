// Command shredderd is the Shredder ingest daemon: a consolidated
// chunk-and-dedup service (§7's cloud-backup server, made concurrent).
// Clients stream raw data over TCP; the daemon chunks each stream with
// the Shredder pipeline, dedups it in batches against a sharded
// fingerprint index shared by every session, and reports per-stream
// dedup statistics. cmd/backupsim -server is a ready-made client.
//
// With -data the store is durable: container bytes and a per-shard
// write-ahead log live under the data directory (internal/persist),
// recipes are committed before a stream is acknowledged, and a restart
// recovers the full index, refcounts, recipes and statistics. -fsync
// picks the durability/throughput trade-off. SIGINT/SIGTERM drain
// active sessions and flush the store before exiting.
//
// The chunking engine is negotiated per session: clients that send a
// spec get it (any engine the build knows), clients that don't get the
// server default, selectable with -chunker/-avg/-minchunk/-maxchunk.
// Protocol-v3 sessions may run two-phase dedup ingest (client-side
// chunking; only missing chunk bodies cross the wire) — per-stream
// logging then reports the wire bytes saved; -dedup-wire=false caps
// the protocol at v2 for operators who want the legacy behavior only.
//
// Retention: v3 sessions can expire streams with the delete op; the
// recipe is durably tombstoned and its chunk references released
// before the ack. Space comes back via container compaction — run it
// in the background with -gc-interval (containers whose live fraction
// drops below -gc-threshold are rewritten and unlinked, crash-safely).
//
// Operability: -admin serves /metrics (Prometheus text; ?format=json
// for a flat JSON snapshot), /healthz, /readyz (503 once a drain
// begins), /statusz, /debug/traces and net/http/pprof. Logging is
// structured (log/slog): -log-level picks the floor, -log-json
// switches to JSON lines, and every session logs under a unique
// "session" id from accept to close. Every client operation records a
// span tree (negotiate through store and WAL/fsync children); recent
// trees show on /statusz and dump as JSON at /debug/traces, and
// -trace-slow D retains any operation at or over D and logs its tree.
//
// Hot-path tuning: -parallel-chunk N cuts server-side (raw-path)
// streams on N cores with byte-identical boundaries (chunk.Parallel);
// -commit-window D batches concurrent sessions' WAL fsyncs under
// -fsync always into one group commit per window, every session still
// acked only after the fsync covering its records really returned.
//
//	shredderd [-addr :9323] [-admin :7071] [-shards N] [-batch N] [-buffer MiB]
//	          [-chunker rabin|fastcdc] [-avg KiB] [-minchunk KiB] [-maxchunk KiB]
//	          [-dedup-wire=true|false] [-parallel-chunk N]
//	          [-data DIR] [-fsync always|never|interval[=D]] [-commit-window D]
//	          [-gc-interval D] [-gc-threshold F] [-trace-slow D]
//	          [-grace D] [-log-level L] [-log-json] [-quiet]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/persist"
	"shredder/internal/shardstore"
	"shredder/internal/stats"
)

func main() {
	addr := flag.String("addr", ":9323", "TCP listen address")
	admin := flag.String("admin", ":7071", "admin HTTP address for /metrics, /healthz, /readyz, /statusz and pprof (empty: disabled)")
	shards := flag.Int("shards", 16, "store shard count (power of two)")
	batch := flag.Int("batch", 64, "chunks per has/put batch")
	buffer := flag.Int("buffer", 4, "per-session pipeline buffer in MiB")
	chunkerName := flag.String("chunker", "rabin", "default chunking engine for sessions that skip negotiation: rabin or fastcdc")
	avgKiB := flag.Int("avg", 4, "target average chunk size in KiB (power of two)")
	minKiB := flag.Int("minchunk", 0, "minimum chunk size in KiB (0: engine default)")
	maxKiB := flag.Int("maxchunk", 0, "maximum chunk size in KiB (0: engine default)")
	dedupWire := flag.Bool("dedup-wire", true, "accept protocol v3+ two-phase dedup sessions (client-side chunking, only missing bodies cross the wire); false caps the protocol at v2")
	parallelChunk := flag.Int("parallel-chunk", 0, "chunk server-side streams on this many cores (byte-identical output; -1: all cores, 0/1: sequential)")
	data := flag.String("data", "", "data directory for durable storage (empty: in-memory only)")
	fsyncFlag := flag.String("fsync", "interval", "fsync policy with -data: always, never, interval[=D], or a duration")
	commitWindow := flag.Duration("commit-window", 2*time.Millisecond, "group-commit window with -fsync always: batch concurrent sessions' WAL appends into one fsync per window (0: fsync per commit)")
	scrub := flag.Bool("scrub", false, "verify every chunk's fingerprint during recovery (reads all containers)")
	gcInterval := flag.Duration("gc-interval", 0, "background container-compaction period (0: GC disabled)")
	gcThreshold := flag.Float64("gc-threshold", 0.5, "compact containers whose live fraction is below this (0: only fully-dead containers)")
	traceSlow := flag.Duration("trace-slow", 0, "retain and log the span tree of any operation at or over this duration (0: keep recent traces only)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for active sessions")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit JSON log lines instead of text")
	quiet := flag.Bool("quiet", false, "suppress per-stream logging (same as -log-level warn)")
	flag.Parse()
	if *gcThreshold < 0 || *gcThreshold > 1 {
		fatal(fmt.Errorf("gc-threshold %v outside [0, 1]", *gcThreshold))
	}

	logger, err := buildLogger(*logLevel, *logJSON, *quiet)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	bi := obs.RegisterBuildInfo(reg)
	// Tracing is always on (two small bounded rings); -trace-slow adds
	// slow-trace retention and a logged span tree per slow operation.
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: *traceSlow,
		OnSlow: func(root *obs.Span) {
			logger.Warn("slow operation", "name", root.Name(),
				"dur", root.Duration().Round(time.Microsecond).String(),
				"trace", root.Trace().String(), "tree", "\n"+root.TraceData().Tree())
		},
	})
	cfg := ingest.DefaultConfig()
	cfg.Shards = *shards
	cfg.BatchSize = *batch
	cfg.Shredder.BufferSize = *buffer << 20
	cfg.Obs = reg
	cfg.Logger = logger
	cfg.Tracer = tracer
	// Only replace the default engine when a chunking flag was given:
	// the stock configuration must stay byte-identical for existing
	// deployments.
	chunkingSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "chunker", "avg", "minchunk", "maxchunk":
			chunkingSet = true
		}
	})
	if chunkingSet {
		spec, err := buildSpec(*chunkerName, *avgKiB<<10, *minKiB<<10, *maxKiB<<10)
		if err != nil {
			fatal(err)
		}
		cfg.Shredder.Chunking = spec
	}
	if !*dedupWire {
		cfg.MaxProtocol = 2
	}
	cfg.Shredder.HostWorkers = *parallelChunk

	var store *shardstore.Store
	if *data != "" {
		policy, err := persist.ParseFsyncPolicy(*fsyncFlag)
		if err != nil {
			fatal(err)
		}
		// Only pin the shard count when -shards was given explicitly:
		// an existing data dir fixed it in its manifest, and restarting
		// without the original flag must just adopt it.
		shardsOpt := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsOpt = *shards
			}
		})
		store, err = persist.OpenStore(*data, persist.Options{
			Shards: shardsOpt, Fsync: policy, VerifyOnRecover: *scrub, Obs: reg,
			CommitWindow: *commitWindow, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		*shards = store.NumShards()
		st := store.Stats()
		logger.Info("recovered store", "bytes", fmtBytes(st.StoredBytes),
			"chunks", st.UniqueChunks, "streams", len(store.RecipeNames()),
			"dir", *data, "fsync", policy.String())
	} else {
		var err error
		store, err = shardstore.New(*shards, 0)
		if err != nil {
			fatal(err)
		}
	}
	srv, err := ingest.NewServerWithStore(cfg, store)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	// GC metrics are daemon-level: the loop below is the only caller.
	gcRuns := reg.Counter("gc_runs_total", "Background compaction passes completed (including no-op passes).")
	gcReclaimed := reg.Counter("gc_reclaimed_bytes_total", "Container bytes returned to the filesystem by background compaction.")
	gcMoved := reg.Counter("gc_moved_bytes_total", "Live bytes relocated into fresh containers by background compaction.")
	gcSeconds := reg.Histogram("gc_seconds", "Background compaction pass duration.", obs.LatencyBuckets)
	gcDebt := func() float64 {
		_, live, total := store.ContainerUsage()
		if total == 0 {
			return 0
		}
		return float64(total-live) / float64(total)
	}
	reg.GaugeFunc("gc_debt",
		"Dead fraction of stored container bytes (0 = fully live; compaction target).",
		gcDebt)
	// lastGC is the wall time of the last completed pass (unix nanos, 0
	// before the first), rendered on /statusz alongside the counters.
	var lastGC atomic.Int64

	// Admin endpoint: metrics, health, readiness and pprof. Readiness
	// flips to 503 the moment a drain begins so a load balancer stops
	// routing new backups to a daemon that is about to go away.
	adm := obs.NewAdmin(reg, func(w io.Writer) {
		st := store.Stats()
		containers, live, total := store.ContainerUsage()
		fmt.Fprintf(w, "build %s (go %s, rev %s)\n", bi.Version, bi.GoVersion, bi.Revision)
		fmt.Fprintf(w, "listen %s\n", l.Addr())
		fmt.Fprintf(w, "stored %s of %s logical (%.2fx)\n",
			fmtBytes(st.StoredBytes), fmtBytes(st.LogicalBytes), st.Ratio())
		fmt.Fprintf(w, "chunks %d unique of %d seen (%d dup hits)\n",
			st.UniqueChunks, st.Chunks, st.IndexHits)
		fmt.Fprintf(w, "streams %d\n", len(store.RecipeNames()))
		fmt.Fprintf(w, "containers %d (%s live of %s)\n",
			containers, fmtBytes(live), fmtBytes(total))
		switch t := lastGC.Load(); {
		case *gcInterval <= 0:
			fmt.Fprintf(w, "gc disabled (debt %.2f)\n", gcDebt())
		case t == 0:
			fmt.Fprintf(w, "gc pending first pass (debt %.2f)\n", gcDebt())
		default:
			fmt.Fprintf(w, "gc last %s ago, reclaimed %s total, debt %.2f\n",
				time.Since(time.Unix(0, t)).Round(time.Second),
				fmtBytes(gcReclaimed.Value()), gcDebt())
		}
	})
	adm.SetTracer(tracer)
	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal(err)
		}
		adminSrv = &http.Server{Handler: adm}
		go func() {
			if err := adminSrv.Serve(al); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin server failed", "err", err)
			}
		}()
		logger.Info("admin endpoint up", "addr", al.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("draining sessions", "signal", s.String())
		adm.SetDraining(true)
		l.Close()
	}()

	// Background GC: every interval, compact containers whose live
	// fraction fell below the threshold (retention churn creates them
	// as clients expire snapshots via the delete op).
	var gcStop, gcDone chan struct{}
	if *gcInterval > 0 {
		gcStop, gcDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(gcDone)
			tick := time.NewTicker(*gcInterval)
			defer tick.Stop()
			for {
				select {
				case <-gcStop:
					return
				case <-tick.C:
					sp := tracer.StartRoot("gc", obs.Float("threshold", *gcThreshold))
					start := time.Now()
					cs, err := store.CompactTraced(*gcThreshold, sp)
					gcSeconds.ObserveSinceExemplar(start, sp.Trace())
					sp.Set(obs.Int("reclaimed_bytes", cs.ReclaimedBytes),
						obs.Int("moved_bytes", cs.MovedBytes),
						obs.Int("containers", int64(cs.Containers)))
					sp.End()
					gcRuns.Inc()
					if err != nil {
						// Transient failures (ENOSPC mid-relocate is the
						// likely one) must not disable GC for the rest of
						// the process: log and retry next tick.
						logger.Warn("gc failed", "err", err)
						continue
					}
					gcReclaimed.Add(cs.ReclaimedBytes)
					gcMoved.Add(cs.MovedBytes)
					lastGC.Store(time.Now().UnixNano())
					if cs.Containers > 0 {
						logger.Info("gc pass",
							"reclaimed", fmtBytes(cs.ReclaimedBytes),
							"containers", cs.Containers,
							"moved", fmtBytes(cs.MovedBytes),
							"elapsed", time.Since(start).Round(time.Millisecond).String())
					}
				}
			}
		}()
		logger.Info("gc enabled", "interval", gcInterval.String(), "threshold", *gcThreshold)
	}

	logger.Info("listening", "addr", l.Addr().String(), "shards", *shards,
		"batch", *batch, "buffer_mib", *buffer,
		"engine", cfg.Shredder.Chunking.Algo.String())
	if err := srv.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		fatal(err)
	}
	srv.Shutdown(*grace)
	if gcStop != nil {
		close(gcStop)
		<-gcDone
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	if err := store.Close(); err != nil {
		fatal(err)
	}
	st := store.Stats()
	logger.Info("shut down cleanly", "stored", fmtBytes(st.StoredBytes),
		"logical", fmtBytes(st.LogicalBytes), "ratio", st.Ratio())
}

// buildLogger maps the logging flags to a slog.Logger on stderr.
// -quiet raises the floor to warn (suppressing the per-stream Info
// lines) unless -log-level was given explicitly.
func buildLogger(level string, json, quiet bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	levelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "log-level" {
			levelSet = true
		}
	})
	if quiet && !levelSet {
		lv = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

// fmtBytes is the one byte-formatting helper every human-readable
// daemon line (startup, statusz, gc, shutdown) goes through.
func fmtBytes(n int64) string { return stats.Bytes(n) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shredderd:", err)
	os.Exit(1)
}

// buildSpec maps the chunking flags to a chunk.Spec. Sizes are bytes;
// 0 means the engine's derived default.
func buildSpec(algoName string, avg, min, max int) (chunk.Spec, error) {
	algo, err := chunk.ParseAlgo(algoName)
	if err != nil {
		return chunk.Spec{}, err
	}
	if avg < 2 || avg&(avg-1) != 0 {
		return chunk.Spec{}, fmt.Errorf("average chunk size %d is not a power of two", avg)
	}
	switch algo {
	case chunk.AlgoFastCDC:
		spec := chunk.FastCDCSpec(avg)
		if min != 0 {
			spec.MinSize = min
		}
		if max != 0 {
			spec.MaxSize = max
		}
		return spec, spec.Validate()
	default:
		spec := chunk.DefaultSpec()
		spec.MaskBits = bits.Len(uint(avg)) - 1 // expected chunk size 2^mask
		spec.Marker = 1<<uint(spec.MaskBits) - 1
		spec.MinSize = min
		if min == 0 {
			spec.MinSize = avg / 2
		}
		spec.MaxSize = max
		if max == 0 {
			spec.MaxSize = avg * 8
		}
		return spec, spec.Validate()
	}
}
