package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/core"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// Config parameterizes the ingest server.
type Config struct {
	// Shards and ContainerSize configure the shared shardstore
	// (0 means the shardstore defaults).
	Shards        int
	ContainerSize int64
	// Shredder configures the per-session chunking pipeline. Each
	// session owns one core.Shredder (the pipeline handles one stream
	// at a time); sessions run concurrently against the shared store.
	Shredder core.Config
	// BatchSize is how many chunks the server accumulates before one
	// batched has/put round against the store (0 means 64). Larger
	// batches amortize stripe locking; smaller ones bound latency.
	BatchSize int
	// MaxProtocol caps the protocol version the server will accept in
	// a Hello (0 means ProtocolVersion). Setting 2 turns off two-phase
	// dedup ingest and makes the server behave exactly like a
	// version-2 build — the shredderd -dedup-wire=false switch.
	MaxProtocol byte
	// OnStream, when set, is called after each completed backup stream
	// (the daemon uses it for logging). It may be called from multiple
	// session goroutines at once.
	OnStream func(name string, st StreamStats)
	// OnDelete, when set, is called after each successful MsgDelete
	// with what the deletion released. Same concurrency caveat.
	OnDelete func(name string, ds shardstore.DeleteStats)
	// Obs, when set, receives the server's metric families (and the
	// store's, via Store.Instrument). Nil means no instrumentation and
	// no overhead beyond one nil check per event.
	Obs *obs.Registry
	// Tracer, when set, records one span tree per client operation
	// (negotiate, backup, dedup backup, restore, delete) with children
	// at each lifecycle stage down through the store and its backing. A
	// version-4 client that sends a trace context gets its server spans
	// parented under its own, so both sides render as one tree. Nil
	// means no tracing and one nil check per operation.
	Tracer *obs.Tracer
	// Logger, when set, receives structured per-session events. Each
	// session logs under a unique "session" id, threaded from accept
	// through negotiate, commits and deletes to session end. Nil means
	// silent.
	Logger *slog.Logger
}

// DefaultConfig returns a service configuration: the paper's
// full-optimization pipeline with backup-study chunk limits, 4 MB
// buffers (per session), and 16 shards.
func DefaultConfig() Config {
	sc := core.DefaultConfig()
	sc.BufferSize = 4 << 20
	sc.Chunking.MaskBits = 12
	sc.Chunking.Marker = 1<<12 - 1
	sc.Chunking.MinSize = 2 << 10
	sc.Chunking.MaxSize = 32 << 10
	return Config{Shards: 16, Shredder: sc, BatchSize: 64}
}

// Server chunks and dedups client streams against one shared sharded
// store. All exported methods are safe for concurrent use; each
// connection is one session and sessions run independently. Stream
// recipes are recorded in the store itself, so a durably-backed store
// (internal/persist) carries them across a restart.
type Server struct {
	cfg   Config
	store *shardstore.Store
	met   *serverMetrics // nil when cfg.Obs is nil
	seq   atomic.Uint64  // session id source

	// Sessions spawned by Serve, tracked for Shutdown.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer builds a server around a fresh in-memory store.
func NewServer(cfg Config) (*Server, error) {
	store, err := shardstore.New(cfg.Shards, cfg.ContainerSize)
	if err != nil {
		return nil, err
	}
	return NewServerWithStore(cfg, store)
}

// NewServerWithStore builds a server on an existing store — the way to
// serve a durable store reopened from a data directory (cfg.Shards and
// cfg.ContainerSize are ignored; the store's backing fixed them). The
// caller keeps ownership of the store and closes it after Shutdown.
func NewServerWithStore(cfg Config, store *shardstore.Store) (*Server, error) {
	if cfg.BatchSize < 0 {
		return nil, errors.New("ingest: negative batch size")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	// Fail fast on a bad pipeline config rather than on first session.
	if _, err := core.New(cfg.Shredder); err != nil {
		return nil, err
	}
	// One registry serves one store: Instrument is idempotent against
	// the same registry, so two servers sharing a store may share it too.
	store.Instrument(cfg.Obs)
	return &Server{
		cfg:   cfg,
		store: store,
		met:   newServerMetrics(cfg.Obs),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Store exposes the shared chunk store (for stats and tests).
func (s *Server) Store() *shardstore.Store { return s.store }

// Config returns the server's effective configuration (defaults
// applied).
func (s *Server) Config() Config { return s.cfg }

// Recipe returns the recorded recipe for a completed stream.
func (s *Server) Recipe(name string) (shardstore.Recipe, bool) {
	return s.store.Recipe(name)
}

// Serve accepts connections until the listener closes, running each
// session on its own goroutine. It returns the accept error (which is
// net.ErrClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.track(conn)
		go func() {
			defer s.untrack(conn)
			_ = s.ServeConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) {
	s.wg.Add(1)
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	_ = conn.Close()
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.wg.Done()
}

// Shutdown drains the sessions Serve spawned: it waits up to grace for
// them to finish on their own, force-closes any stragglers, and waits
// for the rest. The caller closes the listener first (which makes
// Serve return) and the store afterwards. grace <= 0 force-closes
// immediately.
func (s *Server) Shutdown(grace time.Duration) {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	<-done
}

// ServeConn runs one client session to completion: any number of
// backup and restore operations, until the peer disconnects. Each
// session gets its own chunking pipeline — the server default until a
// Hello negotiates a different engine; the store is shared either way.
// A session that negotiates version ≥ 3 may also run two-phase dedup
// backups, which skip the server pipeline entirely (the client
// chunked).
func (s *Server) ServeConn(conn net.Conn) error {
	s.met.sessionStart()
	var sl *slog.Logger
	if s.cfg.Logger != nil {
		sl = s.cfg.Logger.With("session", s.seq.Add(1))
		remote := "?"
		if addr := conn.RemoteAddr(); addr != nil {
			remote = addr.String()
		}
		sl.Debug("session accepted", "remote", remote)
	}
	ver, err := s.serveSession(conn, sl)
	s.met.sessionEnd(ver, err)
	if sl != nil {
		proto := int(ver)
		if proto == 0 {
			proto = 1 // never sent a Hello: the legacy raw protocol
		}
		if err != nil {
			sl.Warn("session failed", "protocol", proto, "kind", errorKind(err), "err", err)
		} else {
			sl.Debug("session closed", "protocol", proto)
		}
	}
	return err
}

// serveSession is ServeConn's frame loop, returning the negotiated
// protocol version alongside the session's fate.
func (s *Server) serveSession(conn net.Conn, sl *slog.Logger) (byte, error) {
	// The session pipeline is built lazily: sessions that negotiate
	// never pay for the default engine (fingerprint table, kernel
	// model, staging memory), and restore-only or dedup-only sessions
	// never build one at all. NewServerWithStore already validated the
	// default config, so a late core.New failure is exceptional.
	var shred *core.Shredder
	var ver byte // negotiated protocol version; 0 = legacy raw session
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 256<<10)
	var buf []byte
	for {
		typ, payload, rerr := readFrame(br, buf)
		if rerr == io.EOF {
			return ver, nil
		}
		if rerr != nil {
			return ver, rerr
		}
		s.met.frame(typ)
		buf = payload[:cap(payload)]
		switch typ {
		case MsgHello:
			ns, spec, nver, ctx, nerr := s.negotiate(payload)
			if nerr != nil {
				// A rejected negotiation is fatal to the session: the
				// client's next frames would be cut with an engine it
				// did not agree to. Send the bare reason — the client
				// wraps it in its own NegotiationError.
				reason := nerr.Error()
				var ne *NegotiationError
				if errors.As(nerr, &ne) {
					reason = ne.Reason
				}
				_ = writeFrame(bw, MsgError, []byte(reason))
				_ = bw.Flush()
				return ver, nerr
			}
			shred, ver = ns, nver
			sp := s.span("negotiate", ctx, obs.Int("protocol", int64(ver)))
			if sl != nil {
				sl.Debug("session negotiated", "protocol", ver,
					"algo", spec.Algo, "min", spec.MinSize, "max", spec.MaxSize)
			}
			err := writeFrame(bw, MsgAccept, encodeHello(ver, spec))
			if err == nil {
				err = bw.Flush()
			}
			sp.End()
			if err != nil {
				return ver, err
			}
		case MsgBegin:
			if shred == nil {
				var err error
				if shred, err = core.New(s.cfg.Shredder); err != nil {
					return ver, err
				}
				s.instrumentChunking(shred)
			}
			sp := s.span("backup", obs.SpanContext{}, obs.Str("recipe", string(payload)))
			err := s.handleBackup(string(payload), ver, shred, br, bw, sl, sp)
			sp.End()
			if err != nil {
				return ver, err
			}
		case MsgBeginDedup:
			if ver < 3 {
				ferr := &UnexpectedFrameError{Type: typ, Context: "session below protocol version 3"}
				_ = writeFrame(bw, MsgError, []byte(ferr.Error()))
				_ = bw.Flush()
				return ver, ferr
			}
			name, ctx, derr := decodeBeginDedup(ver, payload)
			if derr != nil {
				_ = writeFrame(bw, MsgError, []byte(derr.Error()))
				_ = bw.Flush()
				return ver, derr
			}
			sp := s.span("backup_dedup", ctx, obs.Str("recipe", name))
			err := s.handleDedupBackup(name, ver, br, bw, sl, sp)
			sp.End()
			if err != nil {
				return ver, err
			}
		case MsgDelete:
			if ver < 3 {
				ferr := &UnexpectedFrameError{Type: typ, Context: "session below protocol version 3"}
				_ = writeFrame(bw, MsgError, []byte(ferr.Error()))
				_ = bw.Flush()
				return ver, ferr
			}
			sp := s.span("delete", obs.SpanContext{}, obs.Str("recipe", string(payload)))
			err := s.handleDelete(string(payload), bw, sl, sp)
			sp.End()
			if err != nil {
				return ver, err
			}
		case MsgRestore:
			sp := s.span("restore", obs.SpanContext{}, obs.Str("recipe", string(payload)))
			err := s.handleRestore(string(payload), bw, sl, sp)
			sp.End()
			if err != nil {
				return ver, err
			}
		default:
			ferr := &UnexpectedFrameError{Type: typ, Context: "session"}
			_ = writeFrame(bw, MsgError, []byte(ferr.Error()))
			_ = bw.Flush()
			return ver, ferr
		}
	}
}

// span starts one per-operation root span: parented under the span the
// client announced on the wire when it sent a trace context, a fresh
// local root otherwise. Returns nil (a universal no-op) when the
// server has no tracer.
func (s *Server) span(name string, ctx obs.SpanContext, attrs ...obs.Attr) *obs.Span {
	if s.cfg.Tracer == nil {
		return nil
	}
	return s.cfg.Tracer.StartRemote(name, ctx, attrs...)
}

// negotiate validates a Hello payload and builds the session pipeline
// it describes, returning the pipeline, the accepted spec, the agreed
// protocol version and the client's trace context (zero below v4).
// Failures come back as *NegotiationError with the reason the client
// will see.
func (s *Server) negotiate(payload []byte) (*core.Shredder, chunk.Spec, byte, obs.SpanContext, error) {
	version, spec, ctx, err := decodeHello(payload)
	if err != nil {
		return nil, chunk.Spec{}, 0, ctx, &NegotiationError{Reason: err.Error()}
	}
	max := s.cfg.MaxProtocol
	if max == 0 {
		max = ProtocolVersion
	}
	if version < MinProtocolVersion || version > max {
		return nil, chunk.Spec{}, 0, ctx, &NegotiationError{
			Reason: fmt.Sprintf("unsupported protocol version %d (server speaks %d)", version, max),
		}
	}
	if spec.MaxSize > MaxFrame {
		return nil, chunk.Spec{}, 0, ctx, &NegotiationError{
			Reason: fmt.Sprintf("max chunk size %d exceeds the %d-byte frame limit", spec.MaxSize, MaxFrame),
		}
	}
	if version >= 3 && spec.MaxSize <= 0 {
		// A dedup client uploads each chunk body as one frame; an
		// unbounded engine could cut a chunk no frame can carry.
		return nil, chunk.Spec{}, 0, ctx, &NegotiationError{
			Reason: "dedup sessions need a bounded max chunk size within the frame limit",
		}
	}
	cc := s.cfg.Shredder
	cc.Chunking = spec
	shred, err := core.New(cc)
	if err != nil {
		return nil, chunk.Spec{}, 0, ctx, &NegotiationError{Reason: err.Error()}
	}
	return s.instrumentChunking(shred), spec, version, ctx, nil
}

// instrumentChunking registers the parallel host chunker's metric
// families when the session pipeline cuts with one. Registration is
// idempotent per registry, so every session aggregates into the same
// counters; a nil registry is a no-op.
func (s *Server) instrumentChunking(shred *core.Shredder) *core.Shredder {
	if p, ok := shred.Engine().(*chunk.Parallel); ok {
		p.Instrument(s.cfg.Obs)
	}
	return shred
}

// streamReader adapts the session's incoming Data frames into an
// io.Reader for the chunking pipeline, stopping at the End frame.
type streamReader struct {
	r     *bufio.Reader
	met   *serverMetrics // nil ok
	buf   []byte         // frame buffer, reused across frames
	frame []byte         // unconsumed tail of the current Data payload
	done  bool
	// broken is set when the stream itself violated the protocol
	// (truncation, bad frame): the connection is desynchronized and
	// must not be drained further.
	broken bool
}

func (sr *streamReader) Read(p []byte) (int, error) {
	for len(sr.frame) == 0 {
		if sr.done {
			return 0, io.EOF
		}
		typ, payload, err := readFrame(sr.r, sr.buf)
		if err != nil {
			if err == io.EOF {
				// The peer closed on a frame boundary but never sent
				// End: the stream is truncated, not complete. A bare
				// io.EOF here would make the pipeline treat the
				// partial stream as a successful backup.
				err = &TruncatedError{Context: "backup stream before End frame", Cause: io.ErrUnexpectedEOF}
			}
			sr.broken = true
			return 0, err
		}
		sr.met.frame(typ)
		if cap(payload) > cap(sr.buf) {
			sr.buf = payload[:cap(payload)]
		}
		switch typ {
		case MsgData:
			sr.frame = payload
		case MsgEnd:
			sr.done = true
			return 0, io.EOF
		default:
			sr.broken = true
			return 0, &UnexpectedFrameError{Type: typ, Context: "backup stream"}
		}
	}
	n := copy(p, sr.frame)
	sr.frame = sr.frame[n:]
	return n, nil
}

// drain consumes the remainder of a stream after a server-side error so
// the client can finish writing and read our Error frame (required for
// unbuffered transports like net.Pipe).
func (sr *streamReader) drain() {
	for !sr.done {
		if _, err := sr.Read(make([]byte, 64<<10)); err != nil {
			return
		}
	}
}

// handleBackup runs one stream through chunking, batched dedup and
// recipe recording, then replies with the stream's stats. The recipe
// is committed (durably, when the store's backing is) before the
// MsgStats ack goes out: a stream the client saw acknowledged survives
// a server restart.
func (s *Server) handleBackup(name string, ver byte, shred *core.Shredder, br *bufio.Reader, bw *bufio.Writer, sl *slog.Logger, sp *obs.Span) error {
	sr := &streamReader{r: br, met: s.met}
	st, recipe, err := s.ingest(shred, sr, sp)
	if err == nil {
		c := sp.Child("commit", obs.Int("chunks", int64(len(recipe))))
		t0 := time.Now()
		err = s.store.CommitRecipeTraced(name, recipe, c)
		s.met.observeCommit(time.Since(t0).Seconds(), sp.Trace())
		c.End()
	}
	if err != nil {
		// The stream dies uncommitted: give back the references the
		// flushed batches took, so the aborted backup cannot pin its
		// chunks against reclamation (recipe holds exactly the applied
		// prefix — ingest returns it on error for this purpose).
		if len(recipe) > 0 {
			_, _ = s.store.Release(recipe)
		}
		// Best-effort: let the client finish writing (net.Pipe has no
		// buffer) and hand it the error before the session dies. When
		// the stream itself broke protocol the connection is
		// desynchronized — draining would block on a peer that may
		// never send another frame, so abort immediately instead.
		if !sr.broken {
			sr.drain()
		}
		if werr := writeFrame(bw, MsgError, []byte(err.Error())); werr == nil {
			_ = bw.Flush()
		}
		return err
	}
	// On the raw path every logical byte crossed the wire as a Data
	// payload. The Wire block reaches v3 clients in the stats reply;
	// older clients reconstruct the same numbers locally.
	st.Wire = WireStats{LogicalBytes: st.Bytes, WireBytes: st.Bytes, ChunksSent: st.Chunks}
	st.Store = s.store.Stats()
	sp.Set(obs.Int("bytes", st.Bytes), obs.Int("chunks", st.Chunks),
		obs.Int("dup_chunks", st.DupChunks))
	s.met.streamCommitted(st)
	if sl != nil {
		sl.Info("stream committed", "recipe", name, "bytes", st.Bytes,
			"chunks", st.Chunks, "dup_chunks", st.DupChunks,
			"wire_bytes", st.Wire.WireBytes, "ratio", st.DedupRatio())
	}
	if s.cfg.OnStream != nil {
		s.cfg.OnStream(name, st)
	}
	if err := writeFrame(bw, MsgStats, st.encode(ver)); err != nil {
		return err
	}
	return bw.Flush()
}

// handleDedupBackup runs one two-phase content-addressed backup: the
// client sends fingerprint batches, the server answers each with the
// indices it is missing and takes a reference on every chunk it
// already holds — *inside* the answer, under the shard locks, so a
// chunk the client is told to skip can never be reclaimed out from
// under the stream — then ingests the uploaded bodies (verifying each
// against its announced fingerprint before it can poison the
// content-addressed store), and finally commits the recipe durably
// before acking with stats. Store and accounting outcomes are
// identical to the raw path over the same chunk sequence.
//
// Failure delivery mirrors the raw path's drain: an application-level
// failure (store error, rejected body) cannot just fire an Error frame
// — on an unbuffered transport the client may be blocked writing
// bodies while we block writing the error. Instead the handler keeps
// serving the protocol in drain mode (remaining bodies of the broken
// round are read and discarded, later HasBatches draw an empty
// NeedBatch so the client uploads nothing more, and no store state is
// touched) until the Commit turn, whose reply slot carries the error.
// Protocol violations abort immediately: the connection is
// desynchronized and draining it could block forever.
func (s *Server) handleDedupBackup(name string, ver byte, br *bufio.Reader, bw *bufio.Writer, sl *slog.Logger, sp *obs.Span) error {
	var st StreamStats
	var recipe shardstore.Recipe
	var buf []byte
	var appErr error // first application failure; drain mode afterwards
	// applied lists every reference this stream has actually taken so
	// far (pins and stored bodies alike). A stream that dies before its
	// Commit gives them back — otherwise every aborted backup would pin
	// its chunks against reclamation forever. Only references known to
	// be applied are listed: a batch that failed partway is left
	// counted (a bounded leak, swept by a future fsck) rather than
	// risk releasing references another stream holds.
	var applied shardstore.Recipe
	committed := false
	defer func() {
		if !committed && len(applied) > 0 {
			_, _ = s.store.Release(applied)
		}
	}()
	// abort is for protocol violations: best-effort error frame, die.
	abort := func(err error) error {
		if werr := writeFrame(bw, MsgError, []byte(err.Error())); werr == nil {
			_ = bw.Flush()
		}
		return err
	}
	for {
		typ, payload, rerr := readFrame(br, buf)
		if rerr != nil {
			if rerr == io.EOF {
				rerr = &TruncatedError{Context: "dedup backup stream before Commit frame", Cause: io.ErrUnexpectedEOF}
			}
			return rerr
		}
		s.met.frame(typ)
		buf = payload[:cap(payload)]
		switch typ {
		case MsgHasBatch:
			hs, err := decodeHasBatch(payload)
			if err != nil {
				return abort(err)
			}
			var refs []shardstore.Ref
			var missing []int
			if appErr == nil {
				st.Wire.WireBytes += int64(len(payload))
				hb := sp.Child("has_batch", obs.Int("chunks", int64(len(hs))))
				if refs, missing, err = s.store.PinBatchTraced(hs, hb); err != nil {
					appErr = err
				}
				hb.Set(obs.Int("missing", int64(len(missing))))
				hb.End()
			}
			if appErr != nil {
				// Draining: tell the client we need nothing so it keeps
				// its bodies and reaches Commit, where the error waits.
				if err := writeFrame(bw, MsgNeedBatch, nil); err != nil {
					return err
				}
				if err := bw.Flush(); err != nil {
					return err
				}
				continue
			}
			// Account the pinned (duplicate) chunks now; missing ones
			// are accounted as their bodies arrive.
			st.Wire.ChunksSkipped += int64(len(hs) - len(missing))
			s.met.pinned(len(hs) - len(missing))
			mi := 0
			for i := range hs {
				if mi < len(missing) && missing[mi] == i {
					mi++
					continue
				}
				applied = append(applied, hs[i])
				st.Chunks++
				st.DupChunks++
				st.Bytes += refs[i].Length
			}
			if err := writeFrame(bw, MsgNeedBatch, encodeNeedBatch(missing)); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			// Collect the missing bodies, in index order, ingesting in
			// store-batch-sized groups so memory stays bounded no
			// matter how large a batch the client announced. After a
			// failure the round's remaining bodies are still read (the
			// client already committed to sending them) but discarded.
			group := make([][]byte, 0, s.cfg.BatchSize)
			groupHs := make([]shardstore.Hash, 0, s.cfg.BatchSize)
			flushGroup := func() error {
				if len(group) == 0 {
					return nil
				}
				put := sp.Child("put_batch", obs.Int("chunks", int64(len(group))))
				_, pdup, err := s.store.PutHashedBatchTraced(groupHs, group, put)
				put.End()
				if err != nil {
					return err
				}
				applied = append(applied, groupHs...)
				for j := range group {
					st.Chunks++
					st.Bytes += int64(len(group[j]))
					if pdup[j] {
						// Another session stored it between our answer
						// and the upload: the body crossed the wire but
						// the store deduped it.
						st.DupChunks++
					} else {
						st.UniqueBytes += int64(len(group[j]))
					}
				}
				group, groupHs = group[:0], groupHs[:0]
				return nil
			}
			var rb *obs.Span
			if len(missing) > 0 {
				rb = sp.Child("recv_bodies", obs.Int("chunks", int64(len(missing))))
			}
			var rbBytes int64
			for _, i := range missing {
				btyp, body, err := readFrame(br, buf)
				if err != nil {
					if err == io.EOF {
						err = &TruncatedError{Context: "dedup backup body upload", Cause: io.ErrUnexpectedEOF}
					}
					rb.End()
					return err
				}
				s.met.frame(btyp)
				buf = body[:cap(body)]
				if btyp != MsgData {
					rb.End()
					return abort(&UnexpectedFrameError{Type: btyp, Context: "dedup body upload"})
				}
				rbBytes += int64(len(body))
				if appErr != nil {
					continue
				}
				if dedup.Sum(body) != hs[i] {
					// A body that does not hash to its announced
					// fingerprint would be stored under the wrong
					// address and corrupt every stream referencing it.
					appErr = fmt.Errorf("ingest: uploaded body for batch index %d does not match its fingerprint", i)
					continue
				}
				st.Wire.WireBytes += int64(len(body))
				st.Wire.ChunksSent++
				group = append(group, append([]byte(nil), body...))
				groupHs = append(groupHs, hs[i])
				if len(group) >= s.cfg.BatchSize {
					if err := flushGroup(); err != nil {
						appErr = err
					}
				}
			}
			rb.Set(obs.Int("bytes", rbBytes))
			rb.End()
			if appErr == nil {
				if err := flushGroup(); err != nil {
					appErr = err
				}
			}
			if appErr == nil {
				// The recipe is content-addressed: the round's
				// fingerprints in stream order, pinned and uploaded alike.
				recipe = append(recipe, hs...)
			}
		case MsgCommit:
			if appErr == nil {
				c := sp.Child("commit", obs.Int("chunks", int64(len(recipe))))
				t0 := time.Now()
				appErr = s.store.CommitRecipeTraced(name, recipe, c)
				s.met.observeCommit(time.Since(t0).Seconds(), sp.Trace())
				c.End()
			}
			if appErr != nil {
				if err := writeFrame(bw, MsgError, []byte(appErr.Error())); err != nil {
					return err
				}
				if err := bw.Flush(); err != nil {
					return err
				}
				return appErr
			}
			committed = true
			st.Wire.LogicalBytes = st.Bytes
			st.Store = s.store.Stats()
			sp.Set(obs.Int("bytes", st.Bytes), obs.Int("chunks", st.Chunks),
				obs.Int("dup_chunks", st.DupChunks),
				obs.Int("wire_bytes", st.Wire.WireBytes),
				obs.Int("chunks_skipped", st.Wire.ChunksSkipped))
			s.met.streamCommitted(st)
			if sl != nil {
				sl.Info("stream committed", "recipe", name, "bytes", st.Bytes,
					"chunks", st.Chunks, "dup_chunks", st.DupChunks,
					"wire_bytes", st.Wire.WireBytes,
					"chunks_skipped", st.Wire.ChunksSkipped, "ratio", st.DedupRatio())
			}
			if s.cfg.OnStream != nil {
				s.cfg.OnStream(name, st)
			}
			if err := writeFrame(bw, MsgStats, st.encode(ver)); err != nil {
				return err
			}
			return bw.Flush()
		default:
			return abort(&UnexpectedFrameError{Type: typ, Context: "dedup backup stream"})
		}
	}
}

// ingest chunks one stream and dedups it against the shared store in
// BatchSize batches, returning the stream stats and its recipe.
func (s *Server) ingest(shred *core.Shredder, r io.Reader, sp *obs.Span) (StreamStats, shardstore.Recipe, error) {
	var st StreamStats
	var recipe shardstore.Recipe
	batch := make([][]byte, 0, s.cfg.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		hs := make([]shardstore.Hash, len(batch))
		for i, c := range batch {
			hs[i] = dedup.Sum(c)
		}
		put := sp.Child("put_batch", obs.Int("chunks", int64(len(batch))))
		_, dup, err := s.store.PutHashedBatchTraced(hs, batch, put)
		put.End()
		if err != nil {
			return err
		}
		recipe = append(recipe, hs...)
		for i, c := range batch {
			st.Chunks++
			st.Bytes += int64(len(c))
			if dup[i] {
				st.DupChunks++
			} else {
				st.UniqueBytes += int64(len(c))
			}
		}
		batch = batch[:0]
		return nil
	}
	_, err := shred.ChunkReader(r, func(c chunk.Chunk, data []byte) error {
		// data is a view into the pipeline's reused buffer: copy before
		// holding it across the batch boundary.
		batch = append(batch, append([]byte(nil), data...))
		if len(batch) >= s.cfg.BatchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		// The partial recipe goes back even on error: it lists exactly
		// the references the flushed batches applied, which the caller
		// releases when the stream cannot commit.
		return StreamStats{}, recipe, err
	}
	if err := flush(); err != nil {
		return StreamStats{}, recipe, err
	}
	return st, recipe, nil
}

// handleDelete expires one named stream: the recipe is tombstoned
// durably and its chunk references released before the ack goes out.
// An unknown name is an application error the session survives (like
// an unknown restore); a store failure kills the session.
func (s *Server) handleDelete(name string, bw *bufio.Writer, sl *slog.Logger, sp *obs.Span) error {
	ds, err := s.store.DeleteRecipeTraced(name, sp)
	if err != nil {
		if werr := writeFrame(bw, MsgError, []byte(err.Error())); werr != nil {
			return werr
		}
		if ferr := bw.Flush(); ferr != nil {
			return ferr
		}
		if errors.Is(err, shardstore.ErrUnknownRecipe) {
			return nil
		}
		return err
	}
	sp.Set(obs.Int("released", ds.ChunksReleased),
		obs.Int("freed_chunks", ds.ChunksFreed), obs.Int("freed_bytes", ds.BytesFreed))
	if sl != nil {
		sl.Info("recipe deleted", "recipe", name, "released", ds.ChunksReleased,
			"freed_chunks", ds.ChunksFreed, "freed_bytes", ds.BytesFreed)
	}
	if s.cfg.OnDelete != nil {
		s.cfg.OnDelete(name, ds)
	}
	if err := writeFrame(bw, MsgDeleteOK, encodeDeleteResult(ds)); err != nil {
		return err
	}
	return bw.Flush()
}

// handleRestore streams a recorded recipe back as Data frames.
func (s *Server) handleRestore(name string, bw *bufio.Writer, sl *slog.Logger, sp *obs.Span) error {
	if sl != nil {
		sl.Debug("stream restored", "recipe", name)
	}
	recipe, ok := s.Recipe(name)
	if !ok {
		// The canonical unknown-recipe text: clients type it as a
		// *NotFoundError, exactly like an unknown delete.
		if err := writeFrame(bw, MsgError, []byte(fmt.Sprintf("%v: %q", shardstore.ErrUnknownRecipe, name))); err != nil {
			return err
		}
		return bw.Flush()
	}
	var sent int64
	for i, h := range recipe {
		data, ok, err := s.store.GetByHash(h)
		if err == nil && !ok {
			err = fmt.Errorf("stream %q entry %d: no chunk for %x", name, i, h[:8])
		}
		if err != nil {
			_ = writeFrame(bw, MsgError, []byte(err.Error()))
			return bw.Flush()
		}
		// Frame boundaries need not align to chunks: split oversized
		// chunks (possible when the pipeline runs without a MaxSize)
		// so a recorded stream can always be restored.
		for len(data) > 0 {
			n := len(data)
			if n > DefaultFrameSize {
				n = DefaultFrameSize
			}
			if err := writeFrame(bw, MsgData, data[:n]); err != nil {
				return err
			}
			sent += int64(n)
			data = data[n:]
		}
	}
	sp.Set(obs.Int("chunks", int64(len(recipe))), obs.Int("bytes", sent))
	if err := writeFrame(bw, MsgEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}
