package ingest

import (
	"bytes"
	"net"
	"testing"

	"shredder/internal/obs"
	"shredder/internal/workload"
)

// testCtx is a fixed, valid trace context for wire tests.
func testCtx() obs.SpanContext {
	var ctx obs.SpanContext
	ctx.Trace[0], ctx.Trace[15] = 0xab, 0xcd
	ctx.Span[0], ctx.Span[7] = 0x12, 0x34
	return ctx
}

func TestHelloCtxRoundTrip(t *testing.T) {
	spec := DefaultConfig().Shredder.Chunking
	ctx := testCtx()

	ver, got, gotCtx, err := decodeHello(encodeHelloCtx(ProtocolVersion, spec, ctx))
	if err != nil {
		t.Fatal(err)
	}
	if ver != ProtocolVersion || got != spec || gotCtx != ctx {
		t.Fatalf("round trip = v%d %+v %+v", ver, got, gotCtx)
	}

	// Untraced v4: no trailing field, zero context out.
	ver, got, gotCtx, err = decodeHello(encodeHelloCtx(ProtocolVersion, spec, obs.SpanContext{}))
	if err != nil {
		t.Fatal(err)
	}
	if ver != ProtocolVersion || got != spec || gotCtx.Valid() {
		t.Fatalf("untraced v4 round trip = v%d %+v %+v", ver, got, gotCtx)
	}
}

// TestLegacyHelloByteIdentity: pre-v4 payloads must not change when a
// trace context is offered — old servers parse them by exact layout.
func TestLegacyHelloByteIdentity(t *testing.T) {
	spec := DefaultConfig().Shredder.Chunking
	ctx := testCtx()
	for _, ver := range []byte{2, 3} {
		plain := encodeHello(ver, spec)
		withCtx := encodeHelloCtx(ver, spec, ctx)
		if !bytes.Equal(plain, withCtx) {
			t.Errorf("v%d hello changed with a context: %x vs %x", ver, plain, withCtx)
		}
	}
	// Untraced v4 matches the v3 layout except the version byte.
	v4 := encodeHelloCtx(4, spec, obs.SpanContext{})
	v3 := encodeHello(3, spec)
	if !bytes.Equal(v4[1:], v3[1:]) {
		t.Errorf("untraced v4 hello body diverged from v3: %x vs %x", v4[1:], v3[1:])
	}
}

func TestBeginDedupCtxRoundTrip(t *testing.T) {
	ctx := testCtx()

	// v3: bare name both ways, context never rides.
	if got := encodeBeginDedup(3, "snap", ctx); string(got) != "snap" {
		t.Errorf("v3 begin-dedup payload = %x, want bare name", got)
	}
	name, gotCtx, err := decodeBeginDedup(3, []byte("snap"))
	if err != nil || name != "snap" || gotCtx.Valid() {
		t.Fatalf("v3 decode = %q %+v %v", name, gotCtx, err)
	}

	// v4 traced.
	name, gotCtx, err = decodeBeginDedup(4, encodeBeginDedup(4, "snap", ctx))
	if err != nil || name != "snap" || gotCtx != ctx {
		t.Fatalf("v4 traced decode = %q %+v %v", name, gotCtx, err)
	}
	// v4 untraced.
	name, gotCtx, err = decodeBeginDedup(4, encodeBeginDedup(4, "snap", obs.SpanContext{}))
	if err != nil || name != "snap" || gotCtx.Valid() {
		t.Fatalf("v4 untraced decode = %q %+v %v", name, gotCtx, err)
	}

	// Malformed v4 payloads fail typed, not silently.
	if _, _, err := decodeBeginDedup(4, nil); err == nil {
		t.Error("empty v4 payload decoded")
	}
	if _, _, err := decodeBeginDedup(4, []byte{1, 0xab}); err == nil {
		t.Error("truncated trace context decoded")
	}
	if _, _, err := decodeBeginDedup(4, []byte{7, 'x'}); err == nil {
		t.Error("unknown trace flag decoded")
	}
}

// TestConnectedTrace is the tentpole acceptance check: with one tracer
// shared by client and server, a dedup backup produces a single trace
// whose server spans are remote-parented under the client's root.
func TestConnectedTrace(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{})
	cfg := testConfig(4)
	cfg.Tracer = tr
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cend, send := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer send.Close()
		_ = srv.ServeConn(send)
	}()
	c := NewClient(cend)
	c.SetTracer(tr)
	if _, err := c.NegotiateDedup(cfg.Shredder.Chunking); err != nil {
		t.Fatal(err)
	}
	im := workload.NewImage(1, 1<<20, 32<<10, 0.1)
	if _, err := c.BackupDedupBytes("snap", im.Master); err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done // server spans must have ended before the snapshot

	var backup *obs.TraceData
	for _, td := range tr.Snapshot() {
		if td.Root == "backup_dedup" {
			backup = &td
			break
		}
	}
	if backup == nil {
		t.Fatal("no backup_dedup trace in snapshot")
	}
	var clientRoot, serverSpan *obs.SpanData
	names := map[string]int{}
	for i, s := range backup.Spans {
		names[s.Name]++
		if s.Name == "backup_dedup" {
			if s.Remote {
				serverSpan = &backup.Spans[i]
			} else if s.ParentID == "" {
				clientRoot = &backup.Spans[i]
			}
		}
	}
	if clientRoot == nil || serverSpan == nil {
		t.Fatalf("trace lacks client root or server span: %v", names)
	}
	if serverSpan.ParentID != clientRoot.SpanID {
		t.Errorf("server span parent %s, want client root %s", serverSpan.ParentID, clientRoot.SpanID)
	}
	// Both sides contribute their pipeline stages to the one tree.
	if names["has_batch"] < 2 {
		t.Errorf("has_batch on only one side: %v", names)
	}
	if names["commit"] < 2 {
		t.Errorf("commit on only one side: %v", names)
	}
	for _, want := range []string{"upload", "recv_bodies", "put_batch"} {
		if names[want] == 0 {
			t.Errorf("no %s span in the connected trace: %v", want, names)
		}
	}
}

// TestUntracedSessionNoSpans: a v4 session with no tracer must mint
// nothing — the nil hot path is the default deployment.
func TestUntracedSessionNoSpans(t *testing.T) {
	cfg := testConfig(2)
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	if _, err := c.NegotiateDedup(cfg.Shredder.Chunking); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BackupDedupBytes("snap", bytes.Repeat([]byte("shred"), 1<<16)); err != nil {
		t.Fatal(err)
	}
	var nilTracer *obs.Tracer
	if got := nilTracer.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}
