// Command backupsim runs the cloud-backup case study (§7): it backs up
// a master VM image and a sequence of snapshots with configurable
// segment churn, using either the Shredder GPU pipeline or the pthreads
// CPU baseline, and reports per-snapshot bandwidth and dedup.
//
//	backupsim [-image MiB] [-snapshots N] [-prob p] [-engine gpu|cpu] [-seed N]
//
// With -server it instead acts as a shredderd client: the same image
// series is streamed over TCP to the daemon, which chunks and dedups it
// server-side and reports per-stream statistics. -chunker negotiates
// the session's chunking engine (fastcdc, or the server-default rabin).
//
//	backupsim -server host:9323 [-chunker rabin|fastcdc] [-avg KiB]
//	          [-image MiB] [-snapshots N] [-prob p] [-seed N] [-name prefix]
//
// With -data it simulates a server restart: the series is ingested by
// an in-process shredderd backed by a durable data directory
// (internal/persist), the store is closed, reopened from disk, and
// every stream is verified to restore byte-exactly with the dedup
// statistics preserved.
//
//	backupsim -data DIR [-fsync policy] [-image MiB] [-snapshots N] [-prob p] [-seed N] [-name prefix]
//
// With -dedup-wire (in -server or -data mode) streams go over the
// two-phase content-addressed protocol: backupsim chunks locally,
// ships fingerprints first, uploads only the chunk bodies the daemon
// is missing, and reports the wire bytes saved per stream.
//
// With -wire-bench FILE it instead benchmarks raw vs dedup-wire
// transfer at 0%/50%/95% snapshot redundancy against an in-process
// server, verifies every stream restores byte-exactly, and writes the
// matrix as JSON (wire bytes, throughput) to FILE — the CI artifact
// BENCH_wire.json.
//
// With -retention N it runs the retention scenario against a durable
// in-process server: N generations of a churning image (-prob per
// 64 KiB segment) are ingested over the dedup wire, the oldest
// generation is expired (protocol v3 delete) once the -retain window
// is full, and the store is compacted after every round
// (-gc-threshold). Every retained generation is verified byte-exact
// each round and after a restart, per-round metrics go to -gc-json
// (the CI artifact BENCH_gc.json), and the run fails if the final
// disk footprint exceeds -amp-limit (default 1.5x) times the live
// stored bytes.
//
// With -commit-bench FILE it benchmarks the group-commit WAL: the
// same durable in-process service at fsync always (on a simulated
// commodity disk), 1 vs 16 concurrent sessions, commit window off vs
// on, reporting sessions/sec per cell and the 16-session speedup as
// JSON to FILE — the CI artifact BENCH_commit.json.
//
// With -pchunk-bench FILE it benchmarks single-stream parallel
// chunking: chunk.Parallel at 1/4/8 workers against the sequential
// engine for both rabin and fastcdc, every parallel cut checked
// chunk-for-chunk identical, written as JSON to FILE — the CI
// artifact BENCH_pchunk.json. With -parallel-chunk N a -dedup-wire
// client chunks its local streams the same way.
//
// With -json (any mode but -wire-bench) the progress lines move to
// stderr and a single end-of-run summary object — streams, logical and
// stored bytes, dedup ratio, wire savings, retention amplification —
// is printed as JSON on stdout, for scripts and CI.
//
// With -trace every operation records a span tree. In the in-process
// modes (-data, -retention, -wire-bench) client and server share one
// tracer, so each backup renders as a single connected tree — client
// root, the server's remote-parented operation span under it, and
// shardstore/persist children (shard puts, WAL appends, fsyncs) below
// that. Trees print at end of run; -json adds per-span-name rollups
// (count, total seconds) to the summary object.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"shredder/internal/backup"
	"shredder/internal/chunk"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/persist"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

// human is where the progress lines go: stdout normally, stderr with
// -json so the summary object owns stdout.
var human io.Writer = os.Stdout

// tracer is set by -trace and shared between the client sessions and
// any in-process server, so both sides of a backup land in one trace.
var tracer *obs.Tracer

// serveDone tracks in-process ServeConn goroutines: the end-of-run
// trace snapshot waits for them, so the server half of every tree has
// ended before it renders.
var serveDone sync.WaitGroup

// clientChunkWorkers is -parallel-chunk: when non-zero, dedup-wire
// sessions chunk their local streams with chunk.Parallel on this many
// workers (negative: all cores). Boundaries stay byte-identical to
// the sequential engine, so dedup accounting is unchanged.
var clientChunkWorkers int

// runSummary is the -json end-of-run object. Wire fields appear only
// for dedup-wire runs, retention fields only for -retention runs.
type runSummary struct {
	Mode          string       `json:"mode"` // sim | client | restart | retention
	Streams       int          `json:"streams"`
	LogicalBytes  int64        `json:"logical_bytes"`
	StoredBytes   int64        `json:"stored_bytes"`
	DedupRatio    float64      `json:"dedup_ratio"`
	WireBytes     int64        `json:"wire_bytes,omitempty"`
	WireSaved     int64        `json:"wire_saved_bytes,omitempty"`
	ChunksSent    int64        `json:"chunks_sent,omitempty"`
	ChunksSkipped int64        `json:"chunks_skipped,omitempty"`
	Generations   int          `json:"generations,omitempty"`
	Retained      int          `json:"retained,omitempty"`
	Amplification float64      `json:"amplification,omitempty"`
	Spans         []spanRollup `json:"spans,omitempty"`
}

// spanRollup aggregates one span name across every retained trace —
// the -trace -json view of where the run's time went.
type spanRollup struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	Seconds float64 `json:"total_seconds"`
}

// addWire folds one stream's wire stats into the summary.
func (s *runSummary) addWire(w ingest.WireStats) {
	s.WireBytes += w.WireBytes
	s.ChunksSent += w.ChunksSent
	s.ChunksSkipped += w.ChunksSkipped
	if saved := w.Saved(); saved > 0 {
		s.WireSaved += saved
	}
}

// emit writes the summary as one JSON object on stdout.
func (s *runSummary) emit() error {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = os.Stdout.Write(out)
	return err
}

func main() {
	imageMB := flag.Int("image", 64, "image size in MiB")
	snapshots := flag.Int("snapshots", 3, "number of snapshots to back up")
	prob := flag.Float64("prob", 0.1, "per-segment change probability")
	engineName := flag.String("engine", "gpu", "chunking engine: gpu or cpu")
	seed := flag.Int64("seed", 7, "workload seed")
	server := flag.String("server", "", "shredderd address; when set, stream to the service instead of simulating locally")
	data := flag.String("data", "", "data directory; when set, run the durable server-restart round-trip locally")
	fsyncFlag := flag.String("fsync", "always", "fsync policy with -data: always, never, interval[=D], or a duration")
	name := flag.String("name", "vm", "stream name prefix in service mode")
	chunkerName := flag.String("chunker", "rabin", "chunking engine to negotiate with -server/-data: rabin (no negotiation, server default) or fastcdc")
	avgKiB := flag.Int("avg", 4, "fastcdc target chunk size in KiB (power of two), with -chunker=fastcdc")
	dedupWire := flag.Bool("dedup-wire", false, "with -server/-data: chunk client-side and upload only missing chunk bodies (protocol v3)")
	wireBench := flag.String("wire-bench", "", "write the raw-vs-dedup wire benchmark (0%/50%/95% redundancy) as JSON to this file and exit")
	retention := flag.Int("retention", 0, "run the retention scenario: this many generations ingested with the oldest expired and the store compacted each round (uses -data, or a temp dir)")
	retain := flag.Int("retain", 3, "retention scenario: generations kept live")
	gcThreshold := flag.Float64("gc-threshold", 0.7, "retention scenario: compact containers whose live fraction is below this after each round")
	gcJSON := flag.String("gc-json", "", "retention scenario: write per-round GC metrics as JSON to this file (- for stdout)")
	ampLimit := flag.Float64("amp-limit", 1.5, "retention scenario: fail when final disk bytes exceed this multiple of the live stored bytes (0 disables)")
	clusterN := flag.Int("cluster", 0, "boot this many in-process shredderd nodes behind a consistent-hash router and run the client series through it")
	clusterBench := flag.String("cluster-bench", "", "write the 1-node vs N-node (-cluster, default 3) routed ingest benchmark as JSON to this file and exit — the CI artifact BENCH_cluster.json")
	commitBench := flag.String("commit-bench", "", "write the group-commit WAL benchmark (sessions/sec at fsync always, 1 vs 16 concurrent sessions, commit window off/on) as JSON to this file and exit — the CI artifact BENCH_commit.json")
	pchunkBench := flag.String("pchunk-bench", "", "write the single-stream parallel-chunking benchmark (chunk.Parallel at 1/4/8 workers vs sequential, byte-identical check) as JSON to this file and exit — the CI artifact BENCH_pchunk.json")
	parallelChunk := flag.Int("parallel-chunk", 0, "with -dedup-wire: chunk the local stream with this many workers (chunk.Parallel); 0 or 1 sequential, negative all cores")
	jsonOut := flag.Bool("json", false, "emit a single end-of-run summary object as JSON on stdout (progress lines move to stderr)")
	trace := flag.Bool("trace", false, "record a span tree per operation and print the trees at end of run (-json adds per-span rollups)")
	flag.Parse()

	if *trace {
		// One tracer for the whole run, shared with any in-process
		// server, so client and server spans merge into one tree. The
		// recent ring is sized to hold every operation of a typical run.
		tracer = obs.NewTracer(obs.TracerConfig{Recent: 256})
	}

	if *jsonOut {
		if *wireBench != "" {
			fmt.Fprintln(os.Stderr, "backupsim: -json does not apply to -wire-bench (it has its own JSON output)")
			os.Exit(2)
		}
		human = os.Stderr
	}
	finish := func(sum *runSummary, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		printTraces(sum)
		if *jsonOut {
			if err := sum.emit(); err != nil {
				fmt.Fprintln(os.Stderr, "backupsim:", err)
				os.Exit(1)
			}
		}
	}

	if *retention > 0 {
		if *server != "" || *wireBench != "" {
			fmt.Fprintln(os.Stderr, "backupsim: -retention runs in-process and excludes -server/-wire-bench")
			os.Exit(2)
		}
		sum, err := runRetention(retentionConfig{
			dir:       *data,
			fsync:     *fsyncFlag,
			gens:      *retention,
			retain:    *retain,
			size:      *imageMB << 20,
			prob:      *prob,
			threshold: *gcThreshold,
			ampLimit:  *ampLimit,
			seed:      *seed,
			jsonPath:  *gcJSON,
		})
		finish(sum, err)
		return
	}

	if *wireBench != "" {
		if *server != "" || *data != "" {
			fmt.Fprintln(os.Stderr, "backupsim: -wire-bench runs in-process and excludes -server/-data")
			os.Exit(2)
		}
		if err := runWireBench(*wireBench, *imageMB<<20, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		return
	}
	if *clusterBench != "" {
		if *server != "" || *data != "" {
			fmt.Fprintln(os.Stderr, "backupsim: -cluster-bench runs in-process and excludes -server/-data")
			os.Exit(2)
		}
		n := *clusterN
		if n == 0 {
			n = 3
		}
		if err := runClusterBench(*clusterBench, n, *imageMB<<20, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		return
	}
	if *commitBench != "" {
		if *server != "" || *data != "" {
			fmt.Fprintln(os.Stderr, "backupsim: -commit-bench runs in-process and excludes -server/-data")
			os.Exit(2)
		}
		if err := runCommitBench(*commitBench, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		return
	}
	if *pchunkBench != "" {
		if *server != "" || *data != "" {
			fmt.Fprintln(os.Stderr, "backupsim: -pchunk-bench runs in-process and excludes -server/-data")
			os.Exit(2)
		}
		if err := runPchunkBench(*pchunkBench, *imageMB<<20, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		return
	}
	if *parallelChunk != 0 && !*dedupWire {
		fmt.Fprintln(os.Stderr, "backupsim: -parallel-chunk only applies with -dedup-wire (the client chunks locally there)")
		os.Exit(2)
	}
	clientChunkWorkers = *parallelChunk
	if *server != "" || *data != "" || *clusterN > 0 {
		// Chunking happens server-side in service mode; an explicit
		// -engine would be silently meaningless, so reject it.
		engineSet := false
		flag.Visit(func(f *flag.Flag) { engineSet = engineSet || f.Name == "engine" })
		if engineSet {
			fmt.Fprintln(os.Stderr, "backupsim: -engine has no effect with -server/-data/-cluster (the daemon chunks server-side)")
			os.Exit(2)
		}
	}
	if *server != "" && *data != "" {
		fmt.Fprintln(os.Stderr, "backupsim: -server and -data are mutually exclusive")
		os.Exit(2)
	}
	if *clusterN > 0 && (*server != "" || *data != "") {
		fmt.Fprintln(os.Stderr, "backupsim: -cluster runs in-process and excludes -server/-data")
		os.Exit(2)
	}
	spec, err := sessionSpec(*chunkerName, *avgKiB<<10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "backupsim:", err)
		os.Exit(2)
	}
	if (spec != nil || *dedupWire) && *server == "" && *data == "" && *clusterN == 0 {
		fmt.Fprintln(os.Stderr, "backupsim: -chunker/-dedup-wire only apply with -server/-data/-cluster (the local simulation is the paper's GPU Rabin study)")
		os.Exit(2)
	}
	if *clusterN > 0 {
		sum, err := runCluster(*clusterN, *name, spec, *dedupWire, *imageMB<<20, *snapshots, *prob, *seed)
		finish(sum, err)
		return
	}
	if *server != "" {
		sum, err := runClient(*server, *name, spec, *dedupWire, *imageMB<<20, *snapshots, *prob, *seed)
		finish(sum, err)
		return
	}
	if *data != "" {
		sum, err := runRestart(*data, *fsyncFlag, *name, spec, *dedupWire, *imageMB<<20, *snapshots, *prob, *seed)
		finish(sum, err)
		return
	}

	engine := backup.ShredderGPU
	if *engineName == "cpu" {
		engine = backup.PthreadsCPU
	} else if *engineName != "gpu" {
		fmt.Fprintln(os.Stderr, "backupsim: engine must be gpu or cpu")
		os.Exit(2)
	}

	sum, err := run(*imageMB<<20, *snapshots, *prob, engine, *seed)
	finish(sum, err)
}

// sessionSpec maps the -chunker/-avg flags to the spec to negotiate,
// or nil for the legacy no-negotiation session.
func sessionSpec(algoName string, avg int) (*chunk.Spec, error) {
	algo, err := chunk.ParseAlgo(algoName)
	if err != nil {
		return nil, err
	}
	if algo == chunk.AlgoRabin {
		return nil, nil // server default; skip negotiation entirely
	}
	spec := chunk.FastCDCSpec(avg)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// negotiateSession proposes spec on the session when one was requested
// or the dedup-wire path (which always negotiates) is on. For dedup
// with the default -chunker=rabin it negotiates the server's stock
// Rabin configuration, so chunk boundaries match what a raw session
// would produce.
func negotiateSession(c *ingest.Session, spec *chunk.Spec, dedupWire bool) error {
	if spec == nil && !dedupWire {
		return nil
	}
	if dedupWire && clientChunkWorkers != 0 {
		c.SetParallelChunking(clientChunkWorkers)
	}
	var propose chunk.Spec
	if spec != nil {
		propose = *spec
	} else {
		propose = ingest.DefaultConfig().Shredder.Chunking
	}
	var accepted chunk.Spec
	var err error
	if dedupWire {
		accepted, err = c.NegotiateDedup(propose)
	} else {
		accepted, err = c.Negotiate(propose)
	}
	if err != nil {
		return err
	}
	mode := "server-chunked"
	if dedupWire {
		mode = fmt.Sprintf("dedup-wire (client-chunked, protocol v%d)", c.Version())
	}
	fmt.Fprintf(human, "negotiated %s engine (avg %s, min %s, max %s), %s\n",
		accepted.Algo, stats.Bytes(int64(accepted.AvgSize)),
		stats.Bytes(int64(accepted.MinSize)), stats.Bytes(int64(accepted.MaxSize)), mode)
	return nil
}

// pushStream backs one stream up (raw or dedup-wire), verifies the
// restore, and prints its line, returning the stream stats.
func pushStream(c *ingest.Session, name string, data []byte, dedupWire bool) (*ingest.StreamStats, error) {
	var st *ingest.StreamStats
	var err error
	if dedupWire {
		st, err = c.BackupDedupBytes(name, data)
	} else {
		st, err = c.BackupBytes(name, data)
	}
	if err != nil {
		return nil, err
	}
	if err := c.Verify(name, data); err != nil {
		return nil, err
	}
	wire := ""
	if st.Wire.Saved() > 0 {
		wire = fmt.Sprintf(", wire %s of %s (saved %s)",
			stats.Bytes(st.Wire.WireBytes), stats.Bytes(st.Wire.LogicalBytes), stats.Bytes(st.Wire.Saved()))
	}
	fmt.Fprintf(human, "%s: %s in %d chunks, %d dup, ratio %.2fx, restore verified%s; store %s stored of %s (%.2fx)\n",
		name, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks, st.DedupRatio(), wire,
		stats.Bytes(st.Store.StoredBytes), stats.Bytes(st.Store.LogicalBytes), st.Store.Ratio())
	return st, nil
}

// runClient streams the image series to a shredderd daemon and verifies
// every stream restores byte-exactly over the wire.
func runClient(addr, prefix string, spec *chunk.Spec, dedupWire bool, size, snapshots int, prob float64, seed int64) (*runSummary, error) {
	c, err := ingest.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// With -trace the client half of each tree prints locally; the
	// remote daemon's half lands in its own /debug/traces, joined to
	// ours by the trace ID in the v4 Hello/BeginDedup context.
	c.SetTracer(tracer)
	if err := negotiateSession(c, spec, dedupWire); err != nil {
		return nil, err
	}
	im := workload.NewImage(seed, size, 64<<10, prob)

	sum := &runSummary{Mode: "client"}
	var logical, wired int64
	push := func(name string, data []byte) error {
		st, err := pushStream(c, name, data, dedupWire)
		if err != nil {
			return err
		}
		logical += st.Wire.LogicalBytes
		wired += st.Wire.WireBytes
		sum.Streams++
		sum.LogicalBytes += st.Bytes
		if dedupWire {
			sum.addWire(st.Wire)
		}
		sum.StoredBytes = st.Store.StoredBytes
		sum.DedupRatio = st.Store.Ratio()
		return nil
	}

	if err := push(prefix+"-master", im.Master); err != nil {
		return nil, err
	}
	for i := 1; i <= snapshots; i++ {
		if err := push(fmt.Sprintf("%s-snapshot-%d", prefix, i), im.Snapshot(seed+int64(i))); err != nil {
			return nil, err
		}
	}
	if dedupWire {
		saved := logical - wired
		if saved < 0 {
			// Fingerprint overhead outweighed the dedup on this series.
			saved = 0
		}
		fmt.Fprintf(human, "series total: %s crossed the wire for %s logical (saved %s)\n",
			stats.Bytes(wired), stats.Bytes(logical), stats.Bytes(saved))
	}
	return sum, nil
}

// runRestart is the durability round-trip: ingest the series into an
// in-process persist-backed server, close the store (simulating a
// daemon restart), reopen it from the data directory, and verify every
// stream restores byte-exactly with the dedup statistics preserved.
func runRestart(dir, fsyncStr, prefix string, spec *chunk.Spec, dedupWire bool, size, snapshots int, prob float64, seed int64) (*runSummary, error) {
	policy, err := persist.ParseFsyncPolicy(fsyncStr)
	if err != nil {
		return nil, err
	}
	opts := persist.Options{Fsync: policy}
	im := workload.NewImage(seed, size, 64<<10, prob)
	streams := map[string][]byte{prefix + "-master": im.Master}
	order := []string{prefix + "-master"}
	for i := 1; i <= snapshots; i++ {
		n := fmt.Sprintf("%s-snapshot-%d", prefix, i)
		streams[n] = im.Snapshot(seed + int64(i))
		order = append(order, n)
	}

	// Phase 1: ingest everything through the service path, then close.
	store, err := persist.OpenStore(dir, opts)
	if err != nil {
		return nil, err
	}
	srv, err := ingest.NewServerWithStore(simConfig(), store)
	if err != nil {
		store.Close()
		return nil, err
	}
	c := dialInProcess(srv)
	if err := negotiateSession(c, spec, dedupWire); err != nil {
		store.Close()
		return nil, err
	}
	sum := &runSummary{Mode: "restart"}
	for _, n := range order {
		var st *ingest.StreamStats
		if dedupWire {
			st, err = c.BackupDedupBytes(n, streams[n])
		} else {
			st, err = c.BackupBytes(n, streams[n])
		}
		if err != nil {
			store.Close()
			return nil, err
		}
		sum.Streams++
		if dedupWire {
			sum.addWire(st.Wire)
		}
		wire := ""
		if st.Wire.Saved() > 0 {
			wire = fmt.Sprintf(", wire %s of %s", stats.Bytes(st.Wire.WireBytes), stats.Bytes(st.Wire.LogicalBytes))
		}
		fmt.Fprintf(human, "%s: %s in %d chunks, %d dup, ratio %.2fx%s\n",
			n, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks, st.DedupRatio(), wire)
	}
	c.Close()
	before := store.Stats()
	sum.LogicalBytes = before.LogicalBytes
	sum.StoredBytes = before.StoredBytes
	sum.DedupRatio = before.Ratio()
	if err := store.Close(); err != nil {
		return nil, err
	}
	fmt.Fprintf(human, "closed store: %s stored of %s logical (%.2fx); restarting from %s\n",
		stats.Bytes(before.StoredBytes), stats.Bytes(before.LogicalBytes), before.Ratio(), dir)

	// Phase 2: reopen from disk and verify.
	store, err = persist.OpenStore(dir, opts)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	if after := store.Stats(); after != before {
		return nil, fmt.Errorf("recovered stats %+v differ from pre-restart %+v", after, before)
	}
	srv, err = ingest.NewServerWithStore(simConfig(), store)
	if err != nil {
		return nil, err
	}
	c = dialInProcess(srv)
	defer c.Close()
	for _, n := range order {
		if err := c.Verify(n, streams[n]); err != nil {
			return nil, fmt.Errorf("after restart, %s: %w", n, err)
		}
	}
	fmt.Fprintf(human, "restart verified: %d streams restored byte-exactly, stats preserved %+v\n",
		len(order), before)
	return sum, nil
}

// dialInProcess connects a client to the server over an in-memory pipe.
func dialInProcess(srv *ingest.Server) *ingest.Session {
	cend, send := net.Pipe()
	serveDone.Add(1)
	go func() {
		defer serveDone.Done()
		defer send.Close()
		_ = srv.ServeConn(send)
	}()
	c := ingest.NewSession(cend)
	c.SetTracer(tracer)
	return c
}

// simConfig is the in-process server configuration: the stock config
// plus the shared tracer when -trace is on.
func simConfig() ingest.Config {
	cfg := ingest.DefaultConfig()
	cfg.Tracer = tracer
	return cfg
}

// printTraces waits out the in-process server goroutines (so the
// server half of every tree has ended), renders each retained trace,
// and folds per-span-name rollups into the summary for -json.
func printTraces(sum *runSummary) {
	if tracer == nil {
		return
	}
	serveDone.Wait()
	tds := tracer.Snapshot()
	agg := map[string]*spanRollup{}
	// Snapshot is most-recent-first; print in run order.
	for i := len(tds) - 1; i >= 0; i-- {
		td := tds[i]
		fmt.Fprintf(human, "\n%s", td.Tree())
		for _, s := range td.Spans {
			r := agg[s.Name]
			if r == nil {
				r = &spanRollup{Name: s.Name}
				agg[s.Name] = r
			}
			r.Count++
			r.Seconds += s.Duration
		}
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sum.Spans = append(sum.Spans, *agg[n])
	}
}

// wireBenchRow is one cell of the raw-vs-dedup transfer matrix.
type wireBenchRow struct {
	Redundancy    float64 `json:"redundancy"`
	Mode          string  `json:"mode"`
	LogicalBytes  int64   `json:"logical_bytes"`
	WireBytes     int64   `json:"wire_bytes"`
	ChunksSent    int64   `json:"chunks_sent"`
	ChunksSkipped int64   `json:"chunks_skipped"`
	Seconds       float64 `json:"seconds"`
	MBPerS        float64 `json:"mb_per_s"`
}

// runWireBench measures what the two-phase protocol keeps off the
// wire: for each snapshot redundancy level, a master image and one
// snapshot are pushed to a fresh in-process server in raw mode and in
// dedup-wire mode (same stock Rabin spec, so boundaries and dedup
// accounting match), every stream is verified to restore byte-exactly,
// and the snapshot's wire cost goes into the JSON matrix at path.
func runWireBench(path string, size int, seed int64) error {
	var rows []wireBenchRow
	for _, redundancy := range []float64{0, 0.5, 0.95} {
		im := workload.NewImage(seed, size, 64<<10, 1-redundancy)
		snap := im.Snapshot(seed + 1)
		for _, mode := range []string{"raw", "dedup"} {
			srv, err := ingest.NewServer(simConfig())
			if err != nil {
				return err
			}
			c := dialInProcess(srv)
			dedupWire := mode == "dedup"
			if dedupWire {
				if _, err := c.NegotiateDedup(ingest.DefaultConfig().Shredder.Chunking); err != nil {
					c.Close()
					return err
				}
			}
			push := func(name string, data []byte) (*ingest.StreamStats, error) {
				if dedupWire {
					return c.BackupDedupBytes(name, data)
				}
				return c.BackupBytes(name, data)
			}
			if _, err := push("master", im.Master); err != nil {
				c.Close()
				return err
			}
			start := time.Now()
			st, err := push("snapshot", snap)
			if err != nil {
				c.Close()
				return err
			}
			elapsed := time.Since(start)
			for name, want := range map[string][]byte{"master": im.Master, "snapshot": snap} {
				if err := c.Verify(name, want); err != nil {
					c.Close()
					return fmt.Errorf("%s %.0f%% redundancy: %w", mode, redundancy*100, err)
				}
			}
			c.Close()
			rows = append(rows, wireBenchRow{
				Redundancy:    redundancy,
				Mode:          mode,
				LogicalBytes:  st.Wire.LogicalBytes,
				WireBytes:     st.Wire.WireBytes,
				ChunksSent:    st.Wire.ChunksSent,
				ChunksSkipped: st.Wire.ChunksSkipped,
				Seconds:       elapsed.Seconds(),
				MBPerS:        float64(st.Wire.LogicalBytes) / (1 << 20) / elapsed.Seconds(),
			})
			fmt.Fprintf(human, "redundancy %.0f%% %-5s: snapshot wire %s of %s (%.1f%%), %d bodies sent, %d skipped\n",
				redundancy*100, mode, stats.Bytes(st.Wire.WireBytes), stats.Bytes(st.Wire.LogicalBytes),
				float64(st.Wire.WireBytes)/float64(st.Wire.LogicalBytes)*100,
				st.Wire.ChunksSent, st.Wire.ChunksSkipped)
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(human, "wrote %s\n", path)
	return nil
}

// retentionConfig parameterizes the retention scenario.
type retentionConfig struct {
	dir       string // data directory; empty means a temp dir
	fsync     string
	gens      int
	retain    int
	size      int
	prob      float64 // per-segment churn between generations
	threshold float64 // compaction live-fraction threshold
	ampLimit  float64 // max allowed disk/live amplification (0: off)
	seed      int64
	jsonPath  string
}

// gcBenchRow is one retention round's metrics — the BENCH_gc.json
// schema.
type gcBenchRow struct {
	Generation     int     `json:"generation"`
	LiveStreams    int     `json:"live_streams"`
	LogicalBytes   int64   `json:"logical_bytes"`
	StoredBytes    int64   `json:"stored_bytes"`
	DiskBytes      int64   `json:"disk_bytes"`
	Amplification  float64 `json:"amplification"`
	FreedBytes     int64   `json:"freed_bytes"`
	ReclaimedBytes int64   `json:"reclaimed_bytes"`
	MovedBytes     int64   `json:"moved_bytes"`
	CompactSecs    float64 `json:"compact_seconds"`
	CompactMBPerS  float64 `json:"compact_mb_per_s"`
}

// churn mutates the previous generation: each segment is replaced with
// fresh random bytes with probability prob — the paper's incremental
// backup workload, chained so every generation drifts further.
func churn(prev []byte, seed int64, segSize int, prob float64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), prev...)
	for off := 0; off < len(out); off += segSize {
		end := off + segSize
		if end > len(out) {
			end = len(out)
		}
		if rng.Float64() < prob {
			copy(out[off:end], workload.Random(seed+int64(off), end-off))
		}
	}
	return out
}

// diskUsage sums every file under dir.
func diskUsage(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// runRetention is the retention acceptance scenario: N generations are
// ingested over the v3 dedup wire, the oldest expired (MsgDelete) once
// the retain window is full, and the store compacted after every
// round. Every live generation is verified to restore byte-exactly
// each round and again after a restart, and the run fails if the final
// on-disk footprint exceeds ampLimit times the live stored bytes — the
// "disk can only grow" leak this subsystem exists to close.
func runRetention(cfg retentionConfig) (*runSummary, error) {
	policy, err := persist.ParseFsyncPolicy(cfg.fsync)
	if err != nil {
		return nil, err
	}
	dir := cfg.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "shredder-retention-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	// Small containers so liveness is tracked at fine grain: a 256 KiB
	// container whose snapshots expired goes fully dead quickly.
	opts := persist.Options{Fsync: policy, ContainerSize: 256 << 10}
	store, err := persist.OpenStore(dir, opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		if store != nil {
			store.Close()
		}
	}()
	srv, err := ingest.NewServerWithStore(simConfig(), store)
	if err != nil {
		return nil, err
	}
	c := dialInProcess(srv)
	defer c.Close()
	if _, err := c.NegotiateDedup(ingest.DefaultConfig().Shredder.Chunking); err != nil {
		return nil, err
	}
	sum := &runSummary{Mode: "retention"}

	const segSize = 64 << 10
	type gen struct {
		name string
		data []byte
	}
	var live []gen
	var rows []gcBenchRow
	data := workload.Random(cfg.seed, cfg.size)
	for g := 1; g <= cfg.gens; g++ {
		if g > 1 {
			data = churn(data, cfg.seed+int64(g), segSize, cfg.prob)
		}
		name := fmt.Sprintf("gen-%d", g)
		st, err := c.BackupDedupBytes(name, data)
		if err != nil {
			return nil, fmt.Errorf("backup %s: %w", name, err)
		}
		live = append(live, gen{name, data})
		sum.Streams++
		sum.addWire(st.Wire)

		var freed int64
		if len(live) > cfg.retain {
			oldest := live[0]
			live = live[1:]
			ds, err := c.Delete(oldest.name)
			if err != nil {
				return nil, fmt.Errorf("delete %s: %w", oldest.name, err)
			}
			freed = ds.BytesFreed
		}
		start := time.Now()
		cs, err := store.Compact(cfg.threshold)
		if err != nil {
			return nil, fmt.Errorf("compact after %s: %w", name, err)
		}
		compactSecs := time.Since(start).Seconds()

		for _, lg := range live {
			if err := c.Verify(lg.name, lg.data); err != nil {
				return nil, fmt.Errorf("round %d, %s: %w", g, lg.name, err)
			}
		}
		disk, err := diskUsage(dir)
		if err != nil {
			return nil, err
		}
		var logical int64
		for _, lg := range live {
			logical += int64(len(lg.data))
		}
		stored := store.Stats().StoredBytes
		row := gcBenchRow{
			Generation:     g,
			LiveStreams:    len(live),
			LogicalBytes:   logical,
			StoredBytes:    stored,
			DiskBytes:      disk,
			Amplification:  float64(disk) / float64(stored),
			FreedBytes:     freed,
			ReclaimedBytes: cs.ReclaimedBytes,
			MovedBytes:     cs.MovedBytes,
			CompactSecs:    compactSecs,
		}
		if compactSecs > 0 {
			row.CompactMBPerS = float64(cs.MovedBytes+cs.ReclaimedBytes) / (1 << 20) / compactSecs
		}
		rows = append(rows, row)
		fmt.Fprintf(human, "%s: wire %s of %s; live %d streams, %s stored, %s on disk (amp %.2fx); gc freed %s, reclaimed %s\n",
			name, stats.Bytes(st.Wire.WireBytes), stats.Bytes(st.Wire.LogicalBytes),
			len(live), stats.Bytes(stored), stats.Bytes(disk), row.Amplification,
			stats.Bytes(freed), stats.Bytes(cs.ReclaimedBytes))
	}

	// Restart: the retained generations must come back byte-exactly
	// from the compacted directory.
	c.Close()
	if err := store.Close(); err != nil {
		return nil, err
	}
	store, err = persist.OpenStore(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("reopen after retention churn: %w", err)
	}
	srv, err = ingest.NewServerWithStore(simConfig(), store)
	if err != nil {
		return nil, err
	}
	c2 := dialInProcess(srv)
	defer c2.Close()
	for _, lg := range live {
		if err := c2.Verify(lg.name, lg.data); err != nil {
			return nil, fmt.Errorf("after restart, %s: %w", lg.name, err)
		}
	}
	final := rows[len(rows)-1]
	st := store.Stats()
	sum.Generations = cfg.gens
	sum.Retained = len(live)
	sum.LogicalBytes = final.LogicalBytes
	sum.StoredBytes = final.StoredBytes
	sum.DedupRatio = st.Ratio()
	sum.Amplification = final.Amplification
	fmt.Fprintf(human, "retention done: %d generations, %d retained and restart-verified; final amp %.2fx (%s disk / %s live)\n",
		cfg.gens, len(live), final.Amplification, stats.Bytes(final.DiskBytes), stats.Bytes(final.StoredBytes))

	if cfg.jsonPath != "" {
		out, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		out = append(out, '\n')
		if cfg.jsonPath == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return nil, err
			}
		} else if err := os.WriteFile(cfg.jsonPath, out, 0o644); err != nil {
			return nil, err
		} else {
			fmt.Fprintf(human, "wrote %s\n", cfg.jsonPath)
		}
	}
	if cfg.ampLimit > 0 && final.Amplification > cfg.ampLimit {
		return nil, fmt.Errorf("space amplification %.2fx exceeds the %.2fx limit", final.Amplification, cfg.ampLimit)
	}
	return sum, nil
}

func run(size, snapshots int, prob float64, engine backup.Engine, seed int64) (*runSummary, error) {
	srv, err := backup.NewServer(backup.DefaultConfig())
	if err != nil {
		return nil, err
	}
	im := workload.NewImage(seed, size, 64<<10, prob)

	rep, err := srv.Backup("master", im.Master, engine)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(human, "master: %s at %s (all unique)\n", stats.Bytes(rep.Bytes), stats.Gbps(rep.Bandwidth))

	for i := 1; i <= snapshots; i++ {
		name := fmt.Sprintf("snapshot-%d", i)
		snap := im.Snapshot(seed + int64(i))
		rep, err := srv.Backup(name, snap, engine)
		if err != nil {
			return nil, err
		}
		if err := srv.VerifyRestore(name, snap); err != nil {
			return nil, err
		}
		fmt.Fprintf(human, "%s: %s at %s, %.0f%% duplicate chunks, dedup %.1fx, restore verified\n",
			name, stats.Bytes(rep.Bytes), stats.Gbps(rep.Bandwidth),
			float64(rep.DupChunks)/float64(rep.Chunks)*100, rep.DedupRatio())
	}
	st := srv.SiteStats()
	fmt.Fprintf(human, "backup site: %s logical, %s stored, ratio %.2fx [engine %v]\n",
		stats.Bytes(st.LogicalBytes), stats.Bytes(st.StoredBytes), st.Ratio(), engine)
	return &runSummary{
		Mode:         "sim",
		Streams:      1 + snapshots,
		LogicalBytes: st.LogicalBytes,
		StoredBytes:  st.StoredBytes,
		DedupRatio:   st.Ratio(),
	}, nil
}
