// Command shredderd is the Shredder ingest daemon: a consolidated
// chunk-and-dedup service (§7's cloud-backup server, made concurrent).
// Clients stream raw data over TCP; the daemon chunks each stream with
// the Shredder pipeline, dedups it in batches against a sharded
// fingerprint index shared by every session, and reports per-stream
// dedup statistics. cmd/backupsim -server is a ready-made client.
//
// With -data the store is durable: container bytes and a per-shard
// write-ahead log live under the data directory (internal/persist),
// recipes are committed before a stream is acknowledged, and a restart
// recovers the full index, refcounts, recipes and statistics. -fsync
// picks the durability/throughput trade-off. SIGINT/SIGTERM drain
// active sessions and flush the store before exiting.
//
// The chunking engine is negotiated per session: clients that send a
// spec get it (any engine the build knows), clients that don't get the
// server default, selectable with -chunker/-avg/-minchunk/-maxchunk.
// Protocol-v3 sessions may run two-phase dedup ingest (client-side
// chunking; only missing chunk bodies cross the wire) — per-stream
// logging then reports the wire bytes saved; -dedup-wire=false caps
// the protocol at v2 for operators who want the legacy behavior only.
//
// Retention: v3 sessions can expire streams with the delete op; the
// recipe is durably tombstoned and its chunk references released
// before the ack. Space comes back via container compaction — run it
// in the background with -gc-interval (containers whose live fraction
// drops below -gc-threshold are rewritten and unlinked, crash-safely).
//
//	shredderd [-addr :9323] [-shards N] [-batch N] [-buffer MiB]
//	          [-chunker rabin|fastcdc] [-avg KiB] [-minchunk KiB] [-maxchunk KiB]
//	          [-dedup-wire=true|false]
//	          [-data DIR] [-fsync always|never|interval[=D]]
//	          [-gc-interval D] [-gc-threshold F]
//	          [-grace D] [-quiet]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/ingest"
	"shredder/internal/persist"
	"shredder/internal/shardstore"
	"shredder/internal/stats"
)

func main() {
	addr := flag.String("addr", ":9323", "TCP listen address")
	shards := flag.Int("shards", 16, "store shard count (power of two)")
	batch := flag.Int("batch", 64, "chunks per has/put batch")
	buffer := flag.Int("buffer", 4, "per-session pipeline buffer in MiB")
	chunkerName := flag.String("chunker", "rabin", "default chunking engine for sessions that skip negotiation: rabin or fastcdc")
	avgKiB := flag.Int("avg", 4, "target average chunk size in KiB (power of two)")
	minKiB := flag.Int("minchunk", 0, "minimum chunk size in KiB (0: engine default)")
	maxKiB := flag.Int("maxchunk", 0, "maximum chunk size in KiB (0: engine default)")
	dedupWire := flag.Bool("dedup-wire", true, "accept protocol v3 two-phase dedup sessions (client-side chunking, only missing bodies cross the wire); false caps the protocol at v2")
	data := flag.String("data", "", "data directory for durable storage (empty: in-memory only)")
	fsyncFlag := flag.String("fsync", "interval", "fsync policy with -data: always, never, interval[=D], or a duration")
	scrub := flag.Bool("scrub", false, "verify every chunk's fingerprint during recovery (reads all containers)")
	gcInterval := flag.Duration("gc-interval", 0, "background container-compaction period (0: GC disabled)")
	gcThreshold := flag.Float64("gc-threshold", 0.5, "compact containers whose live fraction is below this (0: only fully-dead containers)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for active sessions")
	quiet := flag.Bool("quiet", false, "suppress per-stream logging")
	flag.Parse()
	if *gcThreshold < 0 || *gcThreshold > 1 {
		fatal(fmt.Errorf("gc-threshold %v outside [0, 1]", *gcThreshold))
	}

	cfg := ingest.DefaultConfig()
	cfg.Shards = *shards
	cfg.BatchSize = *batch
	cfg.Shredder.BufferSize = *buffer << 20
	// Only replace the default engine when a chunking flag was given:
	// the stock configuration must stay byte-identical for existing
	// deployments.
	chunkingSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "chunker", "avg", "minchunk", "maxchunk":
			chunkingSet = true
		}
	})
	if chunkingSet {
		spec, err := buildSpec(*chunkerName, *avgKiB<<10, *minKiB<<10, *maxKiB<<10)
		if err != nil {
			fatal(err)
		}
		cfg.Shredder.Chunking = spec
	}
	if !*dedupWire {
		cfg.MaxProtocol = 2
	}
	if !*quiet {
		cfg.OnDelete = func(name string, ds shardstore.DeleteStats) {
			log.Printf("deleted %q: released %d refs, freed %d chunks (%s reclaimable)",
				name, ds.ChunksReleased, ds.ChunksFreed, stats.Bytes(ds.BytesFreed))
		}
		cfg.OnStream = func(name string, st ingest.StreamStats) {
			wire := ""
			if saved := st.Wire.Saved(); saved > 0 {
				wire = fmt.Sprintf("; wire %s of %s (saved %s, %d bodies skipped)",
					stats.Bytes(st.Wire.WireBytes), stats.Bytes(st.Wire.LogicalBytes),
					stats.Bytes(saved), st.Wire.ChunksSkipped)
			}
			log.Printf("stream %q: %s in %d chunks, %d dup, ratio %.2fx; store ratio %.2fx%s",
				name, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks,
				st.DedupRatio(), st.Store.Ratio(), wire)
		}
	}

	var store *shardstore.Store
	if *data != "" {
		policy, err := persist.ParseFsyncPolicy(*fsyncFlag)
		if err != nil {
			fatal(err)
		}
		// Only pin the shard count when -shards was given explicitly:
		// an existing data dir fixed it in its manifest, and restarting
		// without the original flag must just adopt it.
		shardsOpt := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsOpt = *shards
			}
		})
		store, err = persist.OpenStore(*data, persist.Options{Shards: shardsOpt, Fsync: policy, VerifyOnRecover: *scrub})
		if err != nil {
			fatal(err)
		}
		*shards = store.NumShards()
		st := store.Stats()
		log.Printf("shredderd: recovered %s in %d chunks (%d streams) from %s [fsync %s]",
			stats.Bytes(st.StoredBytes), st.UniqueChunks, len(store.RecipeNames()), *data, policy)
	} else {
		var err error
		store, err = shardstore.New(*shards, 0)
		if err != nil {
			fatal(err)
		}
	}
	srv, err := ingest.NewServerWithStore(cfg, store)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("shredderd: caught %v, draining sessions", s)
		l.Close()
	}()

	// Background GC: every interval, compact containers whose live
	// fraction fell below the threshold (retention churn creates them
	// as clients expire snapshots via the delete op).
	var gcStop, gcDone chan struct{}
	if *gcInterval > 0 {
		gcStop, gcDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(gcDone)
			tick := time.NewTicker(*gcInterval)
			defer tick.Stop()
			for {
				select {
				case <-gcStop:
					return
				case <-tick.C:
					start := time.Now()
					cs, err := store.Compact(*gcThreshold)
					if err != nil {
						// Transient failures (ENOSPC mid-relocate is the
						// likely one) must not disable GC for the rest of
						// the process: log and retry next tick.
						log.Printf("shredderd: gc: %v", err)
						continue
					}
					if cs.Containers > 0 && !*quiet {
						log.Printf("shredderd: gc reclaimed %s in %d containers (moved %s) in %v",
							stats.Bytes(cs.ReclaimedBytes), cs.Containers,
							stats.Bytes(cs.MovedBytes), time.Since(start).Round(time.Millisecond))
					}
				}
			}
		}()
		log.Printf("shredderd: gc every %v at live-fraction threshold %.2f", *gcInterval, *gcThreshold)
	}

	log.Printf("shredderd: listening on %s (%d shards, batch %d, %d MiB buffers, default engine %s)",
		l.Addr(), *shards, *batch, *buffer, cfg.Shredder.Chunking.Algo)
	if err := srv.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		fatal(err)
	}
	srv.Shutdown(*grace)
	if gcStop != nil {
		close(gcStop)
		<-gcDone
	}
	if err := store.Close(); err != nil {
		fatal(err)
	}
	st := store.Stats()
	log.Printf("shredderd: shut down cleanly; %s stored of %s logical (%.2fx)",
		stats.Bytes(st.StoredBytes), stats.Bytes(st.LogicalBytes), st.Ratio())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shredderd:", err)
	os.Exit(1)
}

// buildSpec maps the chunking flags to a chunk.Spec. Sizes are bytes;
// 0 means the engine's derived default.
func buildSpec(algoName string, avg, min, max int) (chunk.Spec, error) {
	algo, err := chunk.ParseAlgo(algoName)
	if err != nil {
		return chunk.Spec{}, err
	}
	if avg < 2 || avg&(avg-1) != 0 {
		return chunk.Spec{}, fmt.Errorf("average chunk size %d is not a power of two", avg)
	}
	switch algo {
	case chunk.AlgoFastCDC:
		spec := chunk.FastCDCSpec(avg)
		if min != 0 {
			spec.MinSize = min
		}
		if max != 0 {
			spec.MaxSize = max
		}
		return spec, spec.Validate()
	default:
		spec := chunk.DefaultSpec()
		spec.MaskBits = bits.Len(uint(avg)) - 1 // expected chunk size 2^mask
		spec.Marker = 1<<uint(spec.MaskBits) - 1
		spec.MinSize = min
		if min == 0 {
			spec.MinSize = avg / 2
		}
		spec.MaxSize = max
		if max == 0 {
			spec.MaxSize = avg * 8
		}
		return spec, spec.Validate()
	}
}
