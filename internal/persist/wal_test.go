package persist

import (
	"bytes"
	"testing"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
)

// testHash builds a deterministic distinct fingerprint.
func testHash(seed byte) shardstore.Hash {
	return dedup.Sum([]byte{seed})
}

// TestRecordFraming round-trips bodies through the framing and walks a
// multi-record buffer.
func TestRecordFraming(t *testing.T) {
	bodies := [][]byte{
		{recInsert, 1, 2, 3},
		{},
		bytes.Repeat([]byte{0xab}, 1000),
	}
	var buf []byte
	for _, b := range bodies {
		buf = appendRecord(buf, b)
	}
	for i, want := range bodies {
		body, size, err := readRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("record %d: body %x, want %x", i, body, want)
		}
		buf = buf[size:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
}

// TestRecordTornDetection covers every way the final record can tear:
// short header, short body, flipped body bit, flipped CRC bit.
func TestRecordTornDetection(t *testing.T) {
	body := encodeInsert(testHash(1), 0, 0, 512)
	rec := appendRecord(nil, body)
	for cut := 0; cut < len(rec); cut++ {
		if _, _, err := readRecord(rec[:cut]); err != errTornRecord {
			t.Fatalf("cut at %d: err = %v, want errTornRecord", cut, err)
		}
	}
	for flip := 0; flip < len(rec); flip++ {
		bad := append([]byte(nil), rec...)
		bad[flip] ^= 0x01
		if _, _, err := readRecord(bad); err == nil {
			// Flipping a length byte can still parse if the buffer ends
			// exactly at the (smaller) length — but then the CRC fails.
			t.Fatalf("bit flip at %d went undetected", flip)
		}
	}
}

// TestScanRecordsPrefix checks the scanner hands back the clean-prefix
// boundary for a torn tail.
func TestScanRecordsPrefix(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, encodeRefDelta(testHash(1), 1))
	first := len(buf)
	buf = appendRecord(buf, encodeRefDelta(testHash(2), 1))
	whole := len(buf)
	buf = append(buf, 0xde, 0xad) // torn tail

	var n int
	clean, err := scanRecords(buf, func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || clean != whole {
		t.Fatalf("scanned %d records, clean=%d; want 2 records, clean=%d", n, clean, whole)
	}

	// A replay rejection mid-scan excludes the record from the prefix.
	n = 0
	clean, err = scanRecords(buf[:whole], func([]byte) error {
		n++
		if n == 2 {
			return errTornRecord
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean != first {
		t.Fatalf("rejected record kept: clean=%d, want %d", clean, first)
	}
}

// TestInsertRoundTrip pins the typed insert codec.
func TestInsertRoundTrip(t *testing.T) {
	h := testHash(9)
	body := encodeInsert(h, 3, 123456, 4096)
	gh, ci, off, length, err := decodeInsert(body)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h || ci != 3 || off != 123456 || length != 4096 {
		t.Fatalf("got (%x, %d, %d, %d)", gh[:4], ci, off, length)
	}
	for cut := 1; cut < len(body); cut++ {
		if _, _, _, _, err := decodeInsert(body[:cut]); err == nil {
			t.Fatalf("truncated insert body at %d decoded", cut)
		}
	}
}

// TestRefDeltaRoundTrip pins the typed refcount-delta codec, including
// negative deltas (future GC decrements).
func TestRefDeltaRoundTrip(t *testing.T) {
	for _, delta := range []int64{1, -1, 1 << 40, -(1 << 40)} {
		h := testHash(7)
		gh, gd, err := decodeRefDelta(encodeRefDelta(h, delta))
		if err != nil {
			t.Fatal(err)
		}
		if gh != h || gd != delta {
			t.Fatalf("delta %d: got (%x, %d)", delta, gh[:4], gd)
		}
	}
}

// TestRecipeRoundTrip pins the content-addressed recipe codec.
func TestRecipeRoundTrip(t *testing.T) {
	r := shardstore.Recipe{testHash(1), testHash(2), testHash(1)}
	for _, name := range []string{"", "vm-master", "名前"} {
		body := encodeRecipe(name, r)
		gn, gr, err := decodeRecipe(body)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if gn != name || len(gr) != len(r) {
			t.Fatalf("%q: got %q with %d entries", name, gn, len(gr))
		}
		for i := range r {
			if gr[i] != r[i] {
				t.Fatalf("%q entry %d: %x != %x", name, i, gr[i][:4], r[i][:4])
			}
		}
	}
	// Empty recipes survive too (a zero-byte stream has no entries).
	if _, gr, err := decodeRecipe(encodeRecipe("empty", nil)); err != nil || len(gr) != 0 {
		t.Fatalf("empty recipe: %v, %d entries", err, len(gr))
	}
	// A count that disagrees with the payload size is rejected.
	bad := encodeRecipe("x", r)
	if _, _, err := decodeRecipe(bad[:len(bad)-1]); err == nil {
		t.Fatal("short recipe body accepted")
	}
}

// TestRelocateRoundTrip pins the compaction-move codec.
func TestRelocateRoundTrip(t *testing.T) {
	h := testHash(5)
	body := encodeRelocate(h, 4, 98765, 2048)
	if body[0] != recRelocate {
		t.Fatalf("record type %d", body[0])
	}
	gh, ci, off, length, err := decodeRelocate(body)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h || ci != 4 || off != 98765 || length != 2048 {
		t.Fatalf("got (%x, %d, %d, %d)", gh[:4], ci, off, length)
	}
	for cut := 1; cut < len(body); cut++ {
		if _, _, _, _, err := decodeRelocate(body[:cut]); err == nil {
			t.Fatalf("truncated relocate body at %d decoded", cut)
		}
	}
}

// TestRecipeDeleteRoundTrip pins the tombstone codec.
func TestRecipeDeleteRoundTrip(t *testing.T) {
	for _, name := range []string{"", "vm-snapshot-3", "名前"} {
		body := encodeRecipeDelete(name)
		if body[0] != recRecipeDelete {
			t.Fatalf("record type %d", body[0])
		}
		gn, err := decodeRecipeDelete(body)
		if err != nil || gn != name {
			t.Fatalf("%q: got %q, %v", name, gn, err)
		}
	}
	body := encodeRecipeDelete("vm")
	if _, err := decodeRecipeDelete(body[:len(body)-1]); err == nil {
		t.Fatal("short tombstone accepted")
	}
	if _, err := decodeRecipeDelete(append(body, 'x')); err == nil {
		t.Fatal("oversized tombstone accepted")
	}
}
