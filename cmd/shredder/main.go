// Command shredder is a real content-defined chunking CLI built on the
// library: it cuts files (or stdin) into Rabin-fingerprint chunks and
// can estimate cross-file deduplication.
//
//	shredder chunk  [-win N] [-mask N] [-min N] [-max N] [-v] [file...]
//	shredder dedup  [-win N] [-mask N] [-min N] [-max N] file...
//
// With -v, chunk prints one line per chunk (offset, length, SHA-256
// prefix); otherwise it prints a summary per input. dedup chunks every
// input into one shared store and reports the dedup ratio.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shredder/internal/chunker"
	"shredder/internal/dedup"
	"shredder/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	win := fs.Int("win", chunker.DefaultWindow, "sliding window bytes")
	mask := fs.Int("mask", chunker.DefaultMaskBits, "mask bits (expected chunk size 2^mask)")
	min := fs.Int("min", 0, "minimum chunk size (0 = none)")
	max := fs.Int("max", 0, "maximum chunk size (0 = none)")
	verbose := fs.Bool("v", false, "print every chunk")
	showDist := fs.Bool("stats", false, "print the chunk-size distribution")
	fs.Parse(os.Args[2:])

	p := chunker.DefaultParams()
	p.Window = *win
	p.MaskBits = *mask
	p.Marker = 1<<uint(*mask) - 1
	p.MinSize = *min
	p.MaxSize = *max
	c, err := chunker.New(p)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "chunk":
		files := fs.Args()
		if len(files) == 0 {
			files = []string{"-"}
		}
		for _, f := range files {
			if err := chunkOne(c, f, *verbose, *showDist); err != nil {
				fatal(err)
			}
		}
	case "dedup":
		if fs.NArg() == 0 {
			fatal(fmt.Errorf("dedup needs at least one file"))
		}
		if err := dedupFiles(c, fs.Args()); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func readInput(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}

func chunkOne(c *chunker.Chunker, name string, verbose, showDist bool) error {
	data, err := readInput(name)
	if err != nil {
		return err
	}
	chunks := c.Split(data)
	if verbose {
		for _, ch := range chunks {
			sum := ch.Sum(data)
			kind := "content"
			if ch.Forced {
				kind = "forced"
			}
			fmt.Printf("%12d %10d  %x  %s\n", ch.Offset, ch.Length, sum[:8], kind)
		}
	}
	var mean int64
	if len(chunks) > 0 {
		mean = int64(len(data)) / int64(len(chunks))
	}
	fmt.Printf("%s: %s in %d chunks (mean %s)\n",
		name, stats.Bytes(int64(len(data))), len(chunks), stats.Bytes(mean))
	if showDist {
		d := chunker.Analyze(chunks)
		fmt.Printf("  size distribution: min %s  p10 %s  median %s  p90 %s  max %s  (%d forced cuts)\n",
			stats.Bytes(d.Min), stats.Bytes(d.P10), stats.Bytes(d.Median),
			stats.Bytes(d.P90), stats.Bytes(d.Max), d.Forced)
	}
	return nil
}

func dedupFiles(c *chunker.Chunker, files []string) error {
	store, err := dedup.NewStore(0)
	if err != nil {
		return err
	}
	for _, f := range files {
		data, err := readInput(f)
		if err != nil {
			return err
		}
		before := store.Stats()
		for _, ch := range c.Split(data) {
			store.Put(data[ch.Offset:ch.End()])
		}
		after := store.Stats()
		fmt.Printf("%s: %s logical, %s new\n", f,
			stats.Bytes(after.LogicalBytes-before.LogicalBytes),
			stats.Bytes(after.StoredBytes-before.StoredBytes))
	}
	st := store.Stats()
	fmt.Printf("total: %s logical, %s stored, ratio %.2fx, saved %s\n",
		stats.Bytes(st.LogicalBytes), stats.Bytes(st.StoredBytes),
		st.Ratio(), stats.Bytes(st.Saved()))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: shredder {chunk|dedup} [flags] [file...]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shredder:", err)
	os.Exit(1)
}
