package chunker

import (
	"errors"
	"io"
	"testing"
)

// shortReader returns data in 3-byte dribbles, then a custom error.
type shortReader struct {
	data []byte
	off  int
	err  error
}

func (r *shortReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := 3
	if n > len(p) {
		n = len(p)
	}
	if r.off+n > len(r.data) {
		n = len(r.data) - r.off
	}
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return n, nil
}

func TestSplitReaderPropagatesIOError(t *testing.T) {
	c := mustNew(t, DefaultParams())
	sentinel := errors.New("disk on fire")
	chunks, n, err := SplitReader(c, &shortReader{data: testData(80, 1000), err: sentinel}, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if n != 1000 {
		t.Fatalf("consumed %d bytes before error, want 1000", n)
	}
	_ = chunks // chunks seen so far are still valid
}

func TestSplitReaderDribble(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(81, 1<<16)
	chunks, n, err := SplitReader(c, &shortReader{data: data, err: io.EOF}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("read %d, want %d", n, len(data))
	}
	want := c.Split(data)
	if len(chunks) != len(want) {
		t.Fatalf("%d chunks, want %d", len(chunks), len(want))
	}
}

func TestStreamOffset(t *testing.T) {
	c := mustNew(t, DefaultParams())
	s := NewStream(c, func(Chunk, []byte) error { return nil })
	if s.Offset() != 0 {
		t.Fatal("fresh stream offset not 0")
	}
	payload := testData(82, 10000)
	if _, err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	if s.Offset() != 10000 {
		t.Fatalf("offset %d, want 10000", s.Offset())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDataStreams(t *testing.T) {
	c := mustNew(t, DefaultParams())
	emitted := 0
	s := NewStream(c, func(Chunk, []byte) error { emitted++; return nil })
	if _, err := s.Write(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Fatal("empty stream emitted chunks")
	}
}
