package hdfs

import (
	"bytes"
	"testing"

	"shredder/internal/chunker"
	"shredder/internal/core"
	"shredder/internal/workload"
)

func newTestShredder(t testing.TB) *core.Shredder {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.BufferSize = 1 << 20
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFixedSizeUploadRoundTrip(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(c, nil)
	data := workload.Random(1, 1<<20+333)
	rep, err := client.CopyFromLocal("f", data, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 17 { // ceil((1MiB+333)/64KiB)
		t.Fatalf("blocks = %d, want 17", rep.Blocks)
	}
	got, err := c.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back differs")
	}
}

func TestContentUploadRoundTrip(t *testing.T) {
	c, _ := NewCluster(4)
	client := NewClient(c, newTestShredder(t))
	data := workload.Random(2, 3<<20+17)
	rep, err := client.CopyFromLocalGPU("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shredder == nil || rep.Shredder.Throughput <= 0 {
		t.Fatal("missing shredder report")
	}
	got, err := c.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back differs")
	}
	// Blocks distributed across datanodes.
	placed := 0
	for _, dn := range c.DataNodes() {
		if dn.Blocks() > 0 {
			placed++
		}
	}
	if placed < 2 {
		t.Fatalf("blocks on %d datanodes, want spread", placed)
	}
}

func TestContentChunkingDedupsAcrossVersions(t *testing.T) {
	// The §6.2 motivation: re-uploading a slightly edited file must
	// reuse most blocks under content chunking, but almost none under
	// fixed-size chunking when bytes are inserted.
	base := workload.Text(3, 2<<20)
	edited := workload.MutateInsert(base, 7, 2) // 2% inserted

	// Fixed-size path.
	cf, _ := NewCluster(2)
	fixed := NewClient(cf, nil)
	if _, err := fixed.CopyFromLocal("v1", base, 64<<10); err != nil {
		t.Fatal(err)
	}
	repFixed, err := fixed.CopyFromLocal("v2", edited, 64<<10)
	if err != nil {
		t.Fatal(err)
	}

	// Content-defined path.
	cc, _ := NewCluster(2)
	content := NewClient(cc, newTestShredder(t))
	if _, err := content.CopyFromLocalGPU("v1", base); err != nil {
		t.Fatal(err)
	}
	repContent, err := content.CopyFromLocalGPU("v2", edited)
	if err != nil {
		t.Fatal(err)
	}

	fixedReuse := 1 - float64(repFixed.NewBlocks)/float64(repFixed.Blocks)
	contentReuse := 1 - float64(repContent.NewBlocks)/float64(repContent.Blocks)
	if contentReuse < 0.6 {
		t.Fatalf("content chunking reused only %.0f%% of blocks", contentReuse*100)
	}
	if contentReuse <= fixedReuse {
		t.Fatalf("content reuse %.2f not above fixed-size reuse %.2f", contentReuse, fixedReuse)
	}
	// Both versions still read back intact.
	for _, name := range []string{"v1", "v2"} {
		want := base
		if name == "v2" {
			want = edited
		}
		got, err := cc.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s read-back differs", name)
		}
	}
}

func TestInputSplits(t *testing.T) {
	c, _ := NewCluster(2)
	client := NewClient(c, newTestShredder(t))
	data := workload.Text(4, 1<<20)
	if _, err := client.CopyFromLocalGPU("f", data); err != nil {
		t.Fatal(err)
	}
	splits, err := c.InputSplits("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("only %d splits", len(splits))
	}
	var total int64
	for i, s := range splits {
		if s.Index != i || s.File != "f" {
			t.Fatalf("split %d mislabeled: %+v", i, s)
		}
		total += s.Block.Length
	}
	if total != int64(len(data)) {
		t.Fatalf("splits cover %d bytes, want %d", total, len(data))
	}
	if _, err := c.InputSplits("nope"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSemanticChunkingRespectsRecords(t *testing.T) {
	c, _ := NewCluster(2)
	client := NewClient(c, newTestShredder(t))
	client.RecordDelim = '\n'
	data := workload.Text(5, 2<<20)
	if _, err := client.CopyFromLocalGPU("f", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Stat("f")
	var off int64
	for i, b := range meta.Blocks {
		off += b.Length
		if off == int64(len(data)) {
			break // final block may end without a delimiter
		}
		if data[off-1] != '\n' {
			t.Fatalf("block %d ends mid-record at offset %d", i, off)
		}
	}
	got, err := c.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("semantic chunking corrupted the file")
	}
}

func TestAlignToRecordsEdgeCases(t *testing.T) {
	data := []byte("aa\nbb\ncc")
	chunks := []chunker.Chunk{
		{Offset: 0, Length: 1}, // cut inside "aa"
		{Offset: 1, Length: 3}, // cut at 4, inside "bb"
		{Offset: 4, Length: 4},
	}
	out := AlignToRecords(data, chunks, '\n')
	var off int64
	for _, c := range out {
		if c.Offset != off {
			t.Fatalf("gap at %d", off)
		}
		off = c.End()
	}
	if off != int64(len(data)) {
		t.Fatalf("coverage ends at %d", off)
	}
	for i, c := range out[:len(out)-1] {
		if data[c.End()-1] != '\n' {
			t.Fatalf("aligned chunk %d ends mid-record", i)
		}
	}
	if AlignToRecords(data, nil, '\n') != nil {
		t.Fatal("empty chunk list should align to nil")
	}
}

func TestSemanticStabilityUnderEdits(t *testing.T) {
	// Record alignment must not destroy dedup: editing a few records
	// still leaves most blocks shared.
	base := workload.Text(6, 2<<20)
	edited := workload.MutateReplace(base, 8, 1)
	c, _ := NewCluster(2)
	client := NewClient(c, newTestShredder(t))
	client.RecordDelim = '\n'
	if _, err := client.CopyFromLocalGPU("v1", base); err != nil {
		t.Fatal(err)
	}
	rep, err := client.CopyFromLocalGPU("v2", edited)
	if err != nil {
		t.Fatal(err)
	}
	reuse := 1 - float64(rep.NewBlocks)/float64(rep.Blocks)
	if reuse < 0.5 {
		t.Fatalf("record-aligned reuse only %.0f%%", reuse*100)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("expected error for zero datanodes")
	}
	c, _ := NewCluster(1)
	client := NewClient(c, nil)
	if _, err := client.CopyFromLocal("f", []byte("x"), 0); err == nil {
		t.Fatal("expected error for zero block size")
	}
	if _, err := client.CopyFromLocalGPU("f", []byte("x")); err == nil {
		t.Fatal("expected error without shredder")
	}
	if _, err := c.Stat("missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := c.ReadFile("missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := c.ReadBlock(BlockID{}); err == nil {
		t.Fatal("expected error for missing block")
	}
}
