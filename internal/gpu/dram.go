package gpu

// DRAMTimings parameterizes the SDRAM access model from §2.3 of the
// paper: memory is arranged into banks; each bank has one sense
// amplifier holding an open row. Accessing an open row is cheap;
// touching a different row in the same bank requires a PRE (write back)
// and an ACT (activate) — a bank conflict. Concurrent accesses to
// different banks proceed in parallel; accesses to the same bank
// serialize.
//
// The cycle constants are calibrated so that the modeled chunking
// kernel lands at the throughput ratios the paper reports (Figure 11:
// coalesced ≈ 8× naive), while the latency band respects Table 1
// (400–600 cycles per global access).
type DRAMTimings struct {
	// Banks is the number of independent banks.
	Banks int
	// RowBytes is the size of one row (the sense-amplifier granule).
	RowBytes int64
	// HitCycles is the service time of an access to the open row.
	HitCycles int64
	// MissCycles is the service time when the bank must PRE the old row
	// and ACT the new one before transferring.
	MissCycles int64
	// BurstBytesPerCycle is the data rate once a transaction streams
	// from the sense amplifier.
	BurstBytesPerCycle int64
}

// DefaultDRAMTimings returns the calibrated GDDR5 model constants.
func DefaultDRAMTimings() DRAMTimings {
	return DRAMTimings{
		Banks:              16,
		RowBytes:           2048,
		HitCycles:          16,
		MissCycles:         80, // PRE + ACT + CAS
		BurstBytesPerCycle: 32,
	}
}

// DRAM tracks per-bank open rows and accounts cycles and conflicts for
// batches of concurrent accesses. It is the timing heart of the naive
// vs. coalesced comparison; the data itself lives in ordinary Go slices.
type DRAM struct {
	t       DRAMTimings
	openRow []int64
	scratch []int64 // per-bank accumulated cycles for the current batch

	// Accesses counts individual memory transactions; Conflicts counts
	// those that required a row activation (ACT after PRE).
	Accesses  uint64
	Conflicts uint64
	// Cycles is the total modeled memory time across all batches.
	Cycles uint64
}

// NewDRAM returns a DRAM model with all banks closed.
func NewDRAM(t DRAMTimings) *DRAM {
	if t.Banks < 1 || t.RowBytes < 1 {
		panic("gpu: invalid DRAM geometry")
	}
	d := &DRAM{
		t:       t,
		openRow: make([]int64, t.Banks),
		scratch: make([]int64, t.Banks),
	}
	d.Reset()
	return d
}

// Timings returns the model constants.
func (d *DRAM) Timings() DRAMTimings { return d.t }

// Reset closes all rows and clears counters.
func (d *DRAM) Reset() {
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	d.Accesses, d.Conflicts, d.Cycles = 0, 0, 0
}

// bankRow decomposes a byte address: rows are striped across banks in
// RowBytes units, so consecutive rows land in consecutive banks.
func (d *DRAM) bankRow(addr int64) (bank int, row int64) {
	unit := addr / d.t.RowBytes
	return int(unit % int64(d.t.Banks)), unit / int64(d.t.Banks)
}

// AccessBatch models one SIMT batch: every address is issued
// concurrently (one per thread of a warp, or one per coalesced
// transaction). Banks operate in parallel; accesses hitting the same
// bank serialize, paying MissCycles whenever they touch a row other
// than the bank's open row. size is the bytes moved per address
// (burst length). The returned cycle count is the batch's completion
// time: the maximum over banks of each bank's serialized service.
func (d *DRAM) AccessBatch(addrs []int64, size int64) int64 {
	if len(addrs) == 0 {
		return 0
	}
	burst := (size + d.t.BurstBytesPerCycle - 1) / d.t.BurstBytesPerCycle
	for i := range d.scratch {
		d.scratch[i] = 0
	}
	for _, a := range addrs {
		bank, row := d.bankRow(a)
		d.Accesses++
		if d.openRow[bank] == row {
			d.scratch[bank] += d.t.HitCycles + burst
		} else {
			d.Conflicts++
			d.openRow[bank] = row
			d.scratch[bank] += d.t.MissCycles + burst
		}
	}
	var max int64
	for _, c := range d.scratch {
		if c > max {
			max = c
		}
	}
	d.Cycles += uint64(max)
	return max
}
