package sim

import "time"

// Resource is a single-server FIFO queue with deterministic service
// times: a submitted job starts when the server frees up and completes
// service time later. It models one pipeline stage (the SAN reader, the
// DMA engine, the GPU, the store thread).
type Resource struct {
	e         *Engine
	name      string
	busyUntil Time
	busyTotal Time
	jobs      int
}

// NewResource returns a resource attached to e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{e: e, name: name}
}

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// Submit enqueues a job with the given service time. done, if non-nil,
// runs at the job's completion with its start and finish times.
func (r *Resource) Submit(service time.Duration, done func(start, finish Time)) {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := r.e.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	finish := start + Time(service)
	r.busyUntil = finish
	r.busyTotal += Time(service)
	r.jobs++
	r.e.Schedule(finish, func() {
		if done != nil {
			done(start, finish)
		}
	})
}

// BusyTotal returns the cumulative service time of all submitted jobs.
func (r *Resource) BusyTotal() time.Duration { return r.busyTotal.Duration() }

// Jobs returns the number of jobs submitted.
func (r *Resource) Jobs() int { return r.jobs }

// Utilization returns busy time divided by the elapsed time horizon.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busyTotal) / float64(horizon)
}

// Tokens is a counting semaphore used to bound how many buffers are
// admitted into a pipeline (the paper varies this from 2 to 4 in
// Figure 9). Waiters are granted tokens in FIFO order.
type Tokens struct {
	e       *Engine
	free    int
	waiters []func()
}

// NewTokens returns a pool holding n tokens.
func NewTokens(e *Engine, n int) *Tokens {
	if n < 1 {
		panic("sim: token pool needs at least one token")
	}
	return &Tokens{e: e, free: n}
}

// Acquire invokes fn once a token is available; immediately (but still
// via the event queue, to preserve deterministic ordering) if one is
// free now.
func (t *Tokens) Acquire(fn func()) {
	if t.free > 0 {
		t.free--
		t.e.Schedule(t.e.Now(), fn)
		return
	}
	t.waiters = append(t.waiters, fn)
}

// Release returns a token, waking the oldest waiter if any.
func (t *Tokens) Release() {
	if len(t.waiters) > 0 {
		fn := t.waiters[0]
		t.waiters = t.waiters[1:]
		t.e.Schedule(t.e.Now(), fn)
		return
	}
	t.free++
}

// Free returns the number of tokens currently available.
func (t *Tokens) Free() int { return t.free }
