package ingest

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/workload"
)

// TestNegotiateFastCDCRoundTrip is the negotiation happy path: a
// session that negotiates the FastCDC engine backs up, dedups and
// restores byte-exactly, end to end over the wire.
func TestNegotiateFastCDCRoundTrip(t *testing.T) {
	srv, err := NewServer(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	spec := chunk.FastCDCSpec(4 << 10)
	accepted, err := c.Negotiate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != spec {
		t.Fatalf("accepted spec %+v, want %+v", accepted, spec)
	}

	im := workload.NewImage(41, 4<<20, 64<<10, 0.1)
	st, err := c.BackupBytes("master", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != int64(len(im.Master)) || st.Chunks == 0 {
		t.Fatalf("master stats: %+v", st)
	}
	// The negotiated engine must actually be in force: chunk count has
	// to match the engine's own cut of the same bytes.
	eng, err := chunk.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(eng.Split(im.Master)); int(st.Chunks) != want {
		t.Fatalf("server cut %d chunks, fastcdc engine cuts %d", st.Chunks, want)
	}

	snap := im.Snapshot(42)
	st2, err := c.BackupBytes("snap", snap)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DupChunks == 0 || st2.DedupRatio() <= 1 {
		t.Fatalf("similar snapshot deduped nothing: %+v", st2)
	}
	for name, want := range map[string][]byte{"master": im.Master, "snap": snap} {
		if err := c.Verify(name, want); err != nil {
			t.Fatalf("verify %s: %v", name, err)
		}
	}
}

// TestLegacySessionMatchesNegotiatedDefault: a session that skips the
// Hello must behave identically to one that explicitly negotiates the
// server's default spec — the byte-for-byte compatibility guarantee
// for old clients.
func TestLegacySessionMatchesNegotiatedDefault(t *testing.T) {
	data := workload.Random(43, 3<<20)
	run := func(negotiate bool) StreamStats {
		srv, err := NewServer(testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		c := startSession(t, srv)
		defer c.Close()
		if negotiate {
			if _, err := c.Negotiate(srv.cfg.Shredder.Chunking); err != nil {
				t.Fatal(err)
			}
		}
		st, err := c.BackupBytes("s", data)
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	legacy, negotiated := run(false), run(true)
	if legacy != negotiated {
		t.Fatalf("legacy session stats %+v differ from negotiated-default %+v", legacy, negotiated)
	}
}

// TestRenegotiationMidSession: a second Hello switches the engine for
// subsequent streams.
func TestRenegotiationMidSession(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	data := workload.Random(44, 2<<20)

	st1, err := c.BackupBytes("rabin-stream", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Negotiate(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatal(err)
	}
	st2, err := c.BackupBytes("fastcdc-stream", data)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Chunks == st2.Chunks {
		t.Fatalf("engine switch had no effect: %d chunks both times", st1.Chunks)
	}
	for _, name := range []string{"rabin-stream", "fastcdc-stream"} {
		if err := c.Verify(name, data); err != nil {
			t.Fatalf("verify %s: %v", name, err)
		}
	}
}

// rawSession opens a session and returns the raw client end plus the
// server's ServeConn error channel, for tests that need to speak
// malformed protocol.
func rawSession(t *testing.T, srv *Server) (net.Conn, *bufio.Reader, chan error) {
	t.Helper()
	cend, send := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		defer send.Close()
		errc <- srv.ServeConn(send)
	}()
	t.Cleanup(func() { cend.Close() })
	return cend, bufio.NewReader(cend), errc
}

// TestNegotiateUnknownAlgoRejected: a Hello naming an algorithm id the
// server does not implement gets a typed rejection, and the server
// session ends with a NegotiationError rather than a parse panic.
func TestNegotiateUnknownAlgoRejected(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, errc := rawSession(t, srv)
	payload := encodeHello(ProtocolVersion, chunk.DefaultSpec())
	payload[1] = 99 // corrupt the algo id inside the spec
	if err := writeFrame(conn, MsgHello, payload); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "unknown algorithm") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	var ne *NegotiationError
	if serr := <-errc; !errors.As(serr, &ne) {
		t.Fatalf("server error = %v, want NegotiationError", serr)
	}
}

// TestNegotiateVersionMismatch: a newer protocol version is refused
// with a reason naming both versions.
func TestNegotiateVersionMismatch(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	conn, br, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgHello, encodeHello(99, chunk.DefaultSpec())); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "version 99") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	var ne *NegotiationError
	if serr := <-errc; !errors.As(serr, &ne) {
		t.Fatalf("server error = %v, want NegotiationError", serr)
	}
}

// legacyServeConn mimics a pre-negotiation server (PR 2's ServeConn):
// any frame type it does not know draws a MsgError and closes the
// session. New clients must degrade to a typed error against it.
func legacyServeConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	typ, _, err := readFrame(br, nil)
	if err != nil {
		return
	}
	if typ != MsgBegin && typ != MsgRestore {
		_ = writeFrame(conn, MsgError, []byte("unexpected frame type "+string('0'+typ)))
	}
}

// TestNegotiateAgainstLegacyServer: a new client proposing a spec to
// an old server gets *NegotiationError, not a hang or a raw EOF.
func TestNegotiateAgainstLegacyServer(t *testing.T) {
	cend, send := net.Pipe()
	go legacyServeConn(send)
	c := NewClient(cend)
	defer c.Close()
	_, err := c.Negotiate(chunk.FastCDCSpec(4 << 10))
	var ne *NegotiationError
	if !errors.As(err, &ne) {
		t.Fatalf("Negotiate against legacy server = %v, want NegotiationError", err)
	}
}

// TestNegotiateOversizedMaxChunk: a spec whose chunks could exceed the
// frame limit is refused at negotiation time, not at restore time.
func TestNegotiateOversizedMaxChunk(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	spec := chunk.FastCDCSpec(16 << 20) // max = 64 MB > MaxFrame
	_, err = c.Negotiate(spec)
	var ne *NegotiationError
	if !errors.As(err, &ne) || !strings.Contains(ne.Reason, "frame limit") {
		t.Fatalf("Negotiate = %v, want frame-limit NegotiationError", err)
	}
}

// TestClientSpecValidationLocal: an invalid spec never reaches the
// wire — Negotiate fails locally.
func TestClientSpecValidationLocal(t *testing.T) {
	// A conn that explodes on use proves nothing was written.
	c := NewClient(deadConn{})
	bad := chunk.FastCDCSpec(4 << 10)
	bad.AvgSize = 4095
	if _, err := c.Negotiate(bad); err == nil {
		t.Fatal("invalid spec accepted client-side")
	}
}

// deadConn fails every operation.
type deadConn struct{ net.Conn }

func (deadConn) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
func (deadConn) Read([]byte) (int, error)  { return 0, io.ErrClosedPipe }
func (deadConn) Close() error              { return nil }
