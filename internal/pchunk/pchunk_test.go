package pchunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shredder/internal/chunker"
)

func testData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func mustChunker(t testing.TB, p chunker.Params) *chunker.Chunker {
	t.Helper()
	c, err := chunker.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	c := mustChunker(t, chunker.DefaultParams())
	if _, err := New(nil, 4, Shared); err == nil {
		t.Fatal("expected error for nil chunker")
	}
	if _, err := New(c, -1, Shared); err == nil {
		t.Fatal("expected error for negative workers")
	}
	p, err := New(c, 0, Shared)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() < 1 {
		t.Fatal("zero workers must default to GOMAXPROCS")
	}
}

func TestMatchesSequentialBothAllocators(t *testing.T) {
	c := mustChunker(t, chunker.DefaultParams())
	data := testData(1, 1<<20+31)
	want := c.Boundaries(data)
	for _, alloc := range []Allocator{Shared, PerWorker} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			p, err := New(c, workers, alloc)
			if err != nil {
				t.Fatal(err)
			}
			got, fps := p.Boundaries(data)
			if len(got) != len(want) {
				t.Fatalf("%v/%d workers: %d boundaries, want %d", alloc, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v/%d workers: boundary %d = %d, want %d", alloc, workers, i, got[i], want[i])
				}
				if !c.IsBoundary(fps[i]) {
					t.Fatalf("%v/%d workers: fingerprint %d not a boundary value", alloc, workers, i)
				}
			}
		}
	}
}

func TestSplitMatchesSequentialWithLimits(t *testing.T) {
	params := chunker.DefaultParams()
	params.MinSize = 1024
	params.MaxSize = 16384
	c := mustChunker(t, params)
	data := testData(2, 1<<20)
	want := c.Split(data)
	p, _ := New(c, 8, PerWorker)
	got := p.Split(data)
	if len(got) != len(want) {
		t.Fatalf("%d chunks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	c := mustChunker(t, chunker.DefaultParams())
	p, _ := New(c, 8, PerWorker)
	if cuts, _ := p.Boundaries(nil); len(cuts) != 0 {
		t.Fatal("empty input produced boundaries")
	}
	// Fewer bytes than workers.
	data := testData(3, 5)
	if cuts, _ := p.Boundaries(data); len(cuts) != len(c.Boundaries(data)) {
		t.Fatal("tiny input mismatch")
	}
	ch := p.Split(data)
	if len(ch) != 1 || ch[0].Length != 5 {
		t.Fatalf("tiny split: %+v", ch)
	}
}

func TestQuickEquivalence(t *testing.T) {
	c := mustChunker(t, chunker.DefaultParams())
	p, _ := New(c, 5, Shared)
	f := func(data []byte) bool {
		got, _ := p.Boundaries(data)
		want := c.Boundaries(data)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorString(t *testing.T) {
	if Shared.String() == PerWorker.String() {
		t.Fatal("allocator strings collide")
	}
}

// The allocator ablation: the per-worker (Hoard-like) arena avoids the
// shared lock. This is a real concurrency effect, so benchmark rather
// than assert wall-clock in tests.
func BenchmarkSharedAllocator(b *testing.B)    { benchAlloc(b, Shared) }
func BenchmarkPerWorkerAllocator(b *testing.B) { benchAlloc(b, PerWorker) }

func benchAlloc(b *testing.B, alloc Allocator) {
	c := mustChunker(b, chunker.DefaultParams())
	p, _ := New(c, 0, alloc)
	data := testData(4, 8<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Boundaries(data)
	}
}
