package mapreduce

import (
	"reflect"
	"strings"
	"testing"

	"shredder/internal/workload"
)

// splitText cuts text into roughly n-byte record-aligned splits,
// standing in for Inc-HDFS blocks in unit tests.
func splitText(data []byte, n int) [][]byte {
	var out [][]byte
	start := 0
	for start < len(data) {
		end := start + n
		if end >= len(data) {
			out = append(out, data[start:])
			break
		}
		for end < len(data) && data[end-1] != '\n' {
			end++
		}
		out = append(out, data[start:end])
		start = end
	}
	return out
}

func TestWordCountCorrectness(t *testing.T) {
	text := []byte("a b a\nc a b\n")
	e := &Engine{}
	out, met, err := e.Run(WordCountJob(), [][]byte{text})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	if met.MapExecuted != 1 || met.Keys != 3 {
		t.Fatalf("metrics %+v", met)
	}
}

func TestSplitCountInvariance(t *testing.T) {
	// The output must not depend on how the input is split.
	data := workload.Text(1, 1<<18)
	e := &Engine{}
	ref, _, err := e.Run(WordCountJob(), splitText(data, 1<<14))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1 << 12, 1 << 15, 1 << 17} {
		got, _, err := e.Run(WordCountJob(), splitText(data, size))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("output differs for split size %d", size)
		}
	}
}

func TestCoOccurrenceCorrectness(t *testing.T) {
	text := []byte("x y x\ny x y\n")
	e := &Engine{}
	out, _, err := e.Run(CoOccurrenceJob(), [][]byte{text})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"x|y": "2", "y|x": "2"}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

func TestCombinerAssociativity(t *testing.T) {
	// Combine(k, [a,b,c]) == Combine(k, [Combine(k,[a,b]), c]) for the
	// shipped apps — required by the contraction tree.
	wc := WordCount{}
	all := wc.Combine("k", []string{"1", "2", "3"})
	nested := wc.Combine("k", []string{wc.Combine("k", []string{"1", "2"}), "3"})
	if all != nested {
		t.Fatalf("word-count combiner not associative: %s vs %s", all, nested)
	}
	km := KMeansCombine{}
	a := encodeSums(Point{1, 2}, 3)
	b := encodeSums(Point{4, 5}, 6)
	c := encodeSums(Point{7, 8}, 9)
	allK := km.Combine("0", []string{a, b, c})
	nestedK := km.Combine("0", []string{km.Combine("0", []string{a, b}), c})
	if allK != nestedK {
		t.Fatalf("k-means combiner not associative: %s vs %s", allK, nestedK)
	}
}

func TestIncrementalReuseUnchangedInput(t *testing.T) {
	data := workload.Text(2, 1<<18)
	splits := splitText(data, 1<<14)
	memo := NewMemo()
	e := &Engine{Memo: memo}
	out1, met1, err := e.Run(WordCountJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	if met1.MapExecuted != len(splits) {
		t.Fatalf("first run executed %d of %d", met1.MapExecuted, len(splits))
	}
	out2, met2, err := e.Run(WordCountJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	if met2.MapExecuted != 0 || met2.CombineExecuted != 0 {
		t.Fatalf("unchanged rerun executed work: %+v", met2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatal("memoized output differs")
	}
}

func TestIncrementalPartialChange(t *testing.T) {
	data := workload.Text(3, 1<<20)
	splits := splitText(data, 1<<14) // ~64 leaves, 3 tree levels
	memo := NewMemo()
	e := &Engine{Memo: memo}
	if _, _, err := e.Run(WordCountJob(), splits); err != nil {
		t.Fatal(err)
	}
	// Change exactly one split.
	changed := make([][]byte, len(splits))
	copy(changed, splits)
	changed[3] = []byte("totally new words here\n")
	out, met, err := e.Run(WordCountJob(), changed)
	if err != nil {
		t.Fatal(err)
	}
	if met.MapExecuted != 1 {
		t.Fatalf("executed %d map tasks, want 1", met.MapExecuted)
	}
	// Only the path from the changed leaf to the root recombines:
	// at most one node per tree level (log_4 of the leaf count).
	if met.CombineExecuted > 4 {
		t.Fatalf("recombined %d of %d nodes, want <= tree depth", met.CombineExecuted, met.CombineNodes)
	}
	// Correctness against a from-scratch run.
	want, _, _ := (&Engine{}).Run(WordCountJob(), changed)
	if !reflect.DeepEqual(out, want) {
		t.Fatal("incremental result differs from from-scratch")
	}
}

func TestIncrementalToleratesReordering(t *testing.T) {
	// Splits are identified by content: permuting them must not rerun
	// map tasks (combine nodes may change).
	data := workload.Text(4, 1<<17)
	splits := splitText(data, 1<<14)
	memo := NewMemo()
	e := &Engine{Memo: memo}
	if _, _, err := e.Run(WordCountJob(), splits); err != nil {
		t.Fatal(err)
	}
	perm := make([][]byte, len(splits))
	copy(perm, splits)
	perm[0], perm[1] = perm[1], perm[0]
	_, met, err := e.Run(WordCountJob(), perm)
	if err != nil {
		t.Fatal(err)
	}
	if met.MapExecuted != 0 {
		t.Fatalf("reordering reran %d map tasks", met.MapExecuted)
	}
}

func TestKMeansConverges(t *testing.T) {
	data := workload.Points(5, 3000, 3)
	splits := splitText(data, 1<<14)
	initial := []Point{{100, 100}, {500, 500}, {900, 900}}
	res, err := KMeans(&Engine{}, splits, initial, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("converged suspiciously fast: %d iterations", res.Iterations)
	}
	if res.Iterations == 20 {
		t.Log("k-means hit the iteration cap (acceptable but unusual)")
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
}

func TestKMeansIncrementalReuse(t *testing.T) {
	data := workload.Points(6, 3000, 3)
	splits := splitText(data, 1<<14)
	initial := []Point{{100, 100}, {500, 500}, {900, 900}}
	memo := NewMemo()
	e := &Engine{Memo: memo}
	r1, err := KMeans(e, splits, initial, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Identical rerun: everything reused.
	r2, err := KMeans(e, splits, initial, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Metrics.MapExecuted != 0 {
		t.Fatalf("identical k-means rerun executed %d map tasks", r2.Metrics.MapExecuted)
	}
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
}

func TestJobValidation(t *testing.T) {
	e := &Engine{}
	if _, _, err := e.Run(Job{}, nil); err == nil {
		t.Fatal("expected error for empty job")
	}
	if _, _, err := e.Run(Job{Name: "x", Mapper: WordCount{}}, nil); err == nil {
		t.Fatal("expected error for missing reducer")
	}
}

func TestEmptyInput(t *testing.T) {
	e := &Engine{}
	out, met, err := e.Run(WordCountJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || met.MapTasks != 0 {
		t.Fatalf("empty input: %v %+v", out, met)
	}
}

func TestClusterModelSpeedupShape(t *testing.T) {
	m := DefaultClusterModel()
	full := Metrics{
		MapTasks: 100, MapExecuted: 100,
		MapBytes: 100 << 20, MapBytesExecuted: 100 << 20,
		CombineNodes: 33, CombineExecuted: 33,
	}
	// 5% changed: 5 tasks re-executed, a few combine nodes.
	inc := full
	inc.MapExecuted = 5
	inc.MapBytesExecuted = 5 << 20
	inc.CombineExecuted = 4
	s5 := m.Speedup(full, inc)
	if s5 < 3 {
		t.Fatalf("5%% change speedup %.1f, want > 3", s5)
	}
	// 25% changed: lower speedup.
	inc25 := full
	inc25.MapExecuted = 25
	inc25.MapBytesExecuted = 25 << 20
	inc25.CombineExecuted = 12
	s25 := m.Speedup(full, inc25)
	if s25 >= s5 {
		t.Fatalf("speedup not decreasing: %.1f at 5%% vs %.1f at 25%%", s5, s25)
	}
	if s25 < 1.2 {
		t.Fatalf("25%% change speedup %.2f, want > 1.2", s25)
	}
}

func TestMemoEntriesGrow(t *testing.T) {
	memo := NewMemo()
	if memo.Entries() != 0 {
		t.Fatal("fresh memo not empty")
	}
	e := &Engine{Memo: memo}
	data := workload.Text(7, 1<<16)
	if _, _, err := e.Run(WordCountJob(), splitText(data, 1<<13)); err != nil {
		t.Fatal(err)
	}
	if memo.Entries() == 0 {
		t.Fatal("memo did not record results")
	}
}

func TestWordCountHandlesUnicodeAndJunk(t *testing.T) {
	e := &Engine{}
	out, _, err := e.Run(WordCountJob(), [][]byte{[]byte("héllo héllo\tworld\n\n  ")})
	if err != nil {
		t.Fatal(err)
	}
	if out["héllo"] != "2" || out["world"] != "1" {
		t.Fatalf("got %v", out)
	}
	// K-means mapper skips malformed lines rather than failing.
	km := KMeansMapper{Centroids: []Point{{0, 0}}}
	emitted := 0
	km.Map([]byte("not numbers\n1.0\n2.0 3.0\n"), func(k, v string) { emitted++ })
	if emitted != 1 {
		t.Fatalf("k-means mapper emitted %d, want 1", emitted)
	}
	if !strings.HasPrefix(KMeansJob([]Point{{1, 2}}).Name, "k-means") {
		t.Fatal("k-means job name malformed")
	}
}
