// Package pcie models the DMA data path between host memory and GPU
// device memory over PCIe, reproducing the behaviour Shredder measures
// in Figure 3: transfers from pinned (page-locked) host memory go
// straight to the DMA engine and saturate at small buffer sizes, while
// transfers from pageable memory are staged through an internal bounce
// buffer and carry a large per-transfer setup cost, saturating only in
// the tens of megabytes.
package pcie

import (
	"fmt"
	"time"
)

// Direction of a transfer.
type Direction int

const (
	// HostToDevice moves data into GPU global memory.
	HostToDevice Direction = iota
	// DeviceToHost moves results back to host memory.
	DeviceToHost
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "host-to-device"
	}
	return "device-to-host"
}

// BufferKind describes the host-side memory the DMA reads or writes.
type BufferKind int

const (
	// Pageable memory can be swapped out; the driver must stage the
	// transfer through an internal pinned bounce buffer.
	Pageable BufferKind = iota
	// Pinned (page-locked) memory is DMA-able directly and supports
	// asynchronous copies (cudaMemcpyAsync in the paper).
	Pinned
)

func (k BufferKind) String() string {
	if k == Pinned {
		return "pinned"
	}
	return "pageable"
}

// Model holds the calibrated link parameters. The bandwidth asymptotes
// are the paper's measured values (§4.1.1: 5.406 GB/s host-to-device,
// 5.129 GB/s device-to-host); the setup costs are calibrated so that
// pinned transfers saturate around 256 KB and pageable transfers around
// 32 MB, as in Figure 3.
type Model struct {
	// H2DBandwidth and D2HBandwidth are the peak link bandwidths in
	// bytes per second.
	H2DBandwidth float64
	D2HBandwidth float64
	// PinnedSetup is the fixed DMA launch cost from pinned memory.
	PinnedSetup time.Duration
	// PageableSetup is the fixed cost of a pageable transfer (driver
	// entry, bounce-buffer bookkeeping, page faults).
	PageableSetup time.Duration
	// PageableOverhead is the fractional per-byte penalty of staging
	// through the bounce buffer (the staging memcpy mostly overlaps the
	// DMA, costing only a few percent at large sizes).
	PageableOverhead float64
}

// Default returns the calibrated C2050/PCIe-gen2 model.
func Default() Model {
	return Model{
		H2DBandwidth:     5.406e9,
		D2HBandwidth:     5.129e9,
		PinnedSetup:      8 * time.Microsecond,
		PageableSetup:    200 * time.Microsecond,
		PageableOverhead: 0.05,
	}
}

// Validate checks the model for consistency.
func (m Model) Validate() error {
	if m.H2DBandwidth <= 0 || m.D2HBandwidth <= 0 {
		return fmt.Errorf("pcie: bandwidths must be positive")
	}
	if m.PinnedSetup < 0 || m.PageableSetup < 0 || m.PageableOverhead < 0 {
		return fmt.Errorf("pcie: negative overhead")
	}
	return nil
}

// TransferTime returns the modeled wall time of moving n bytes in the
// given direction from/to the given kind of host buffer.
func (m Model) TransferTime(n int64, dir Direction, kind BufferKind) time.Duration {
	if n <= 0 {
		return 0
	}
	bw := m.H2DBandwidth
	if dir == DeviceToHost {
		bw = m.D2HBandwidth
	}
	secs := float64(n) / bw
	switch kind {
	case Pinned:
		return m.PinnedSetup + time.Duration(secs*1e9)
	default:
		secs *= 1 + m.PageableOverhead
		return m.PageableSetup + time.Duration(secs*1e9)
	}
}

// Bandwidth returns the effective throughput (bytes/second) for a
// transfer of n bytes, i.e. n divided by TransferTime. This is the
// quantity plotted in Figure 3.
func (m Model) Bandwidth(n int64, dir Direction, kind BufferKind) float64 {
	t := m.TransferTime(n, dir, kind)
	if t <= 0 {
		return 0
	}
	return float64(n) / t.Seconds()
}
