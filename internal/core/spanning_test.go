package core

import (
	"bytes"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/chunker"
)

// TestChunkSpanningManyBuffers exercises the pending-payload path: with
// a large MaxSize and small device buffers, single chunks span several
// buffers and the Store side must accumulate their bytes across
// iterations.
func TestChunkSpanningManyBuffers(t *testing.T) {
	p := chunker.DefaultParams()
	p.MaskBits = 22 // ~4 MB expected chunks
	p.Marker = 1<<22 - 1
	p.MaxSize = 2 << 20
	data := testData(90, 5<<20)
	s := newShredder(t, func(c *Config) {
		c.BufferSize = 256 << 10 // chunks span up to 8 buffers
		c.Chunking = chunk.RabinSpec(p)
	})
	ref, err := chunker.New(p)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Split(data)
	var got []chunk.Chunk
	if _, err := s.ChunkBytes(data, func(c chunk.Chunk, payload []byte) error {
		got = append(got, c)
		if !bytes.Equal(payload, data[c.Offset:c.End()]) {
			t.Fatalf("payload mismatch for chunk at %d (spans buffers)", c.Offset)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d chunks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
	// Sanity: this configuration really does make chunks span buffers.
	maxLen := int64(0)
	for _, c := range got {
		if c.Length > maxLen {
			maxLen = c.Length
		}
	}
	if maxLen <= 256<<10 {
		t.Fatalf("largest chunk %d does not span buffers; test misconfigured", maxLen)
	}
}

// TestNoMaxUnboundedPending is the same without MaxSize: the open chunk
// may grow to megabytes before a content boundary appears.
func TestNoMaxUnboundedPending(t *testing.T) {
	p := chunker.DefaultParams()
	p.MaskBits = 24 // boundaries are rare; most of the stream is one chunk
	p.Marker = 1<<24 - 1
	data := testData(91, 4<<20)
	s := newShredder(t, func(c *Config) {
		c.BufferSize = 512 << 10
		c.Chunking = chunk.RabinSpec(p)
	})
	var total int64
	if _, err := s.ChunkBytes(data, func(c chunk.Chunk, payload []byte) error {
		total += int64(len(payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != int64(len(data)) {
		t.Fatalf("payload bytes %d, want %d", total, len(data))
	}
}
