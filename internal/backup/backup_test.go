package backup

import (
	"testing"

	"shredder/internal/workload"
)

func newServer(t testing.TB) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shredder.BufferSize = 4 << 20
	cfg.BufferSize = 4 << 20
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Chunking.MinSize = 0 },
		func(c *Config) { c.Chunking.MaxSize = 0 },
		func(c *Config) { c.SourceRate = 0 },
		func(c *Config) { c.MinMaxPenalty = 0.5 },
		func(c *Config) { c.BufferSize = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBackupAndRestore(t *testing.T) {
	s := newServer(t)
	im := workload.NewImage(1, 8<<20, 64<<10, 0.1)
	master := im.Master
	rep, err := s.Backup("master", master, ShredderGPU)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks == 0 || rep.UniqueBytes != rep.Bytes {
		t.Fatalf("first backup should be all-unique: %+v", rep)
	}
	if err := s.VerifyRestore("master", master); err != nil {
		t.Fatal(err)
	}
	// A snapshot with 10% segment churn dedups most of its content.
	snap := im.Snapshot(2)
	rep2, err := s.Backup("snap1", snap, ShredderGPU)
	if err != nil {
		t.Fatal(err)
	}
	uniqueFrac := float64(rep2.UniqueBytes) / float64(rep2.Bytes)
	if uniqueFrac > 0.35 {
		t.Fatalf("10%% churn produced %.0f%% unique bytes", uniqueFrac*100)
	}
	if err := s.VerifyRestore("snap1", snap); err != nil {
		t.Fatal(err)
	}
	// Restoring the master must still work after later backups.
	if err := s.VerifyRestore("master", master); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore("unknown"); err == nil {
		t.Fatal("expected error for unknown image")
	}
}

func TestGPUFasterThanCPU(t *testing.T) {
	// Figure 18: Shredder keeps backup bandwidth well above the
	// pthreads baseline (about 2.5x with min/max enabled).
	im := workload.NewImage(3, 16<<20, 64<<10, 0.1)
	gpu := newServer(t)
	if _, err := gpu.Backup("master", im.Master, ShredderGPU); err != nil {
		t.Fatal(err)
	}
	repG, err := gpu.Backup("s", im.Snapshot(4), ShredderGPU)
	if err != nil {
		t.Fatal(err)
	}
	cpu := newServer(t)
	if _, err := cpu.Backup("master", im.Master, PthreadsCPU); err != nil {
		t.Fatal(err)
	}
	repC, err := cpu.Backup("s", im.Snapshot(4), PthreadsCPU)
	if err != nil {
		t.Fatal(err)
	}
	ratio := repG.Bandwidth / repC.Bandwidth
	if ratio < 1.8 || ratio > 4 {
		t.Fatalf("GPU/CPU backup bandwidth ratio %.2f, want ~2.5 (paper §7.3)", ratio)
	}
	// The CPU engine is chunking-bound around 2.9 Gbps.
	cgbps := repC.Bandwidth * 8 / 1e9
	if cgbps < 2 || cgbps > 4 {
		t.Fatalf("CPU backup bandwidth %.2f Gbps outside [2, 4]", cgbps)
	}
}

func TestBandwidthFallsWithDissimilarity(t *testing.T) {
	// Figure 18's GPU curve: more churn, more unique data, more index
	// and network work, lower bandwidth.
	bw := func(prob float64) float64 {
		im := workload.NewImage(5, 16<<20, 64<<10, prob)
		s := newServer(t)
		if _, err := s.Backup("master", im.Master, ShredderGPU); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Backup("snap", im.Snapshot(6), ShredderGPU)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Bandwidth
	}
	low := bw(0.05)
	high := bw(0.40)
	if high >= low {
		t.Fatalf("bandwidth did not fall with churn: %.2f -> %.2f Gbps", low*8/1e9, high*8/1e9)
	}
}

func TestMinMaxRespectedInBackupChunks(t *testing.T) {
	s := newServer(t)
	im := workload.NewImage(7, 4<<20, 64<<10, 0.1)
	chunks := s.chk.Split(im.Master)
	for i, c := range chunks {
		if c.Length > int64(s.cfg.Chunking.MaxSize) {
			t.Fatalf("chunk %d exceeds max", i)
		}
		if i < len(chunks)-1 && !c.Forced && c.Length < int64(s.cfg.Chunking.MinSize) {
			t.Fatalf("chunk %d below min", i)
		}
	}
}

func TestEmptyImageRejected(t *testing.T) {
	s := newServer(t)
	if _, err := s.Backup("x", nil, ShredderGPU); err == nil {
		t.Fatal("expected error for empty image")
	}
}

func TestEngineStrings(t *testing.T) {
	if PthreadsCPU.String() == ShredderGPU.String() {
		t.Fatal("engine strings collide")
	}
}

func TestDedupRatio(t *testing.T) {
	r := &Report{Bytes: 100, UniqueBytes: 25}
	if r.DedupRatio() != 4 {
		t.Fatalf("ratio %.1f, want 4", r.DedupRatio())
	}
	empty := &Report{Bytes: 100}
	if empty.DedupRatio() != 0 {
		t.Fatal("zero unique bytes should report 0")
	}
}
