// Package chunk defines the algorithm-agnostic chunking-engine API.
//
// The paper's premise is that content-defined chunking is the hot path
// of incremental storage; which *algorithm* cuts the boundaries is an
// implementation choice, not an architectural one. This package makes
// the algorithm a value: a serializable Spec names an algorithm and its
// parameters, New turns a Spec into an Engine, and everything above the
// engine (the core pipeline, the ingest service, the daemons) is typed
// on Engine/Spec alone. Two engines are provided:
//
//   - AlgoRabin wraps the sequential Rabin-fingerprint reference in
//     package chunker (the paper's algorithm, GPU-offloadable); and
//   - AlgoFastCDC implements FastCDC-style gear hashing with
//     normalized chunking (small/large masks around the target size),
//     which trades the sliding window's per-byte table lookups for a
//     single gear addition and is the fast CPU-side choice.
//
// Spec has a fixed-size wire encoding so the ingest protocol can carry
// it in a session-negotiation frame; see EncodeSpec/DecodeSpec.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Algo identifies a chunking algorithm on the wire. The zero value is
// invalid so an uninitialized Spec cannot masquerade as a real one.
type Algo uint8

const (
	// AlgoRabin is Rabin-fingerprint CDC over a sliding window — the
	// paper's algorithm and the protocol default.
	AlgoRabin Algo = 1
	// AlgoFastCDC is gear-hash CDC with normalized chunking.
	AlgoFastCDC Algo = 2
)

func (a Algo) String() string {
	switch a {
	case AlgoRabin:
		return "rabin"
	case AlgoFastCDC:
		return "fastcdc"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// ParseAlgo maps a flag/config string to an Algo.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "rabin":
		return AlgoRabin, nil
	case "fastcdc":
		return AlgoFastCDC, nil
	default:
		return 0, fmt.Errorf("chunk: unknown algorithm %q (want rabin or fastcdc)", s)
	}
}

// UnknownAlgoError reports an algorithm id this build does not
// implement — the typed rejection a server hands a newer client.
type UnknownAlgoError struct {
	Algo Algo
}

func (e *UnknownAlgoError) Error() string {
	return fmt.Sprintf("chunk: unknown algorithm id %d", uint8(e.Algo))
}

// Spec is a complete, serializable description of a chunking
// configuration. Fields beyond Algo are interpreted per algorithm;
// unused fields must be zero so encodings are canonical.
type Spec struct {
	// Algo selects the algorithm.
	Algo Algo

	// MinSize and MaxSize bound chunk lengths in bytes and apply to
	// every algorithm. For Rabin, 0 means unbounded (the paper's
	// configuration). FastCDC requires both.
	MinSize int
	MaxSize int

	// Window, Polynomial, MaskBits and Marker configure AlgoRabin:
	// sliding-window size, the irreducible modulus (0 means the
	// package default), how many low-order fingerprint bits join the
	// boundary test, and the value they must equal.
	Window     int
	Polynomial uint64
	MaskBits   int
	Marker     uint64

	// AvgSize, Normalization and Seed configure AlgoFastCDC: the
	// power-of-two target chunk size, the normalized-chunking level
	// (0..3: ± that many mask bits around the target), and the gear
	// table seed (0 is the canonical shared table; any other value
	// derives a private table, defeating chunk-size fingerprinting).
	AvgSize       int
	Normalization int
	Seed          uint64
}

// Validate checks the Spec for consistency.
func (s Spec) Validate() error {
	switch s.Algo {
	case AlgoRabin:
		if s.AvgSize != 0 || s.Normalization != 0 || s.Seed != 0 {
			return errors.New("chunk: rabin spec sets fastcdc fields")
		}
		return s.RabinParams().Validate()
	case AlgoFastCDC:
		if s.Window != 0 || s.Polynomial != 0 || s.MaskBits != 0 || s.Marker != 0 {
			return errors.New("chunk: fastcdc spec sets rabin fields")
		}
		return validateFastCDC(s)
	default:
		return &UnknownAlgoError{Algo: s.Algo}
	}
}

// specWireSize is the fixed encoded size of a Spec.
const specWireSize = 1 + 4*6 + 8*3

// EncodeSpec serializes s into its fixed 49-byte wire form.
func EncodeSpec(s Spec) []byte {
	out := make([]byte, specWireSize)
	out[0] = byte(s.Algo)
	for i, v := range []int{s.MinSize, s.MaxSize, s.Window, s.MaskBits, s.AvgSize, s.Normalization} {
		binary.BigEndian.PutUint32(out[1+4*i:], uint32(v))
	}
	for i, v := range []uint64{s.Polynomial, s.Marker, s.Seed} {
		binary.BigEndian.PutUint64(out[25+8*i:], v)
	}
	return out
}

// DecodeSpec parses a wire-encoded Spec and validates it.
func DecodeSpec(p []byte) (Spec, error) {
	if len(p) != specWireSize {
		return Spec{}, fmt.Errorf("chunk: spec payload is %d bytes, want %d", len(p), specWireSize)
	}
	u32 := func(i int) int { return int(int32(binary.BigEndian.Uint32(p[1+4*i:]))) }
	s := Spec{
		Algo:          Algo(p[0]),
		MinSize:       u32(0),
		MaxSize:       u32(1),
		Window:        u32(2),
		MaskBits:      u32(3),
		AvgSize:       u32(4),
		Normalization: u32(5),
		Polynomial:    binary.BigEndian.Uint64(p[25:]),
		Marker:        binary.BigEndian.Uint64(p[33:]),
		Seed:          binary.BigEndian.Uint64(p[41:]),
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Chunk describes one chunk of a stream, independent of the algorithm
// that cut it.
type Chunk struct {
	// Offset is the chunk's starting byte offset in the stream.
	Offset int64
	// Length is the chunk length in bytes.
	Length int64
	// Fingerprint is the algorithm's rolling-hash value at the
	// boundary, or 0 when the boundary was forced.
	Fingerprint uint64
	// Forced reports whether the boundary came from a size limit or
	// end of stream rather than content.
	Forced bool
}

// End returns the exclusive end offset of the chunk.
func (c Chunk) End() int64 { return c.Offset + c.Length }

// EmitFunc receives each chunk as it is cut, together with its bytes.
// The data slice is only valid for the duration of the call.
type EmitFunc func(c Chunk, data []byte) error

// Stream is an engine's incremental feed: write stream bytes in any
// split, Close flushes the final partial chunk. A Stream must produce
// exactly the chunks Engine.Split produces over the concatenation of
// all writes.
type Stream interface {
	io.WriteCloser
	// Offset returns the absolute stream offset of the next byte to be
	// written.
	Offset() int64
}

// Engine cuts byte streams into content-defined chunks. Engines are
// stateless between calls and safe for concurrent use; per-stream
// state lives in the Stream.
type Engine interface {
	// Spec returns the configuration the engine was built from.
	Spec() Spec
	// Split cuts an in-memory buffer. The concatenation of the
	// returned chunks always reproduces data exactly.
	Split(data []byte) []Chunk
	// Stream returns an incremental feed delivering chunks to emit.
	Stream(emit EmitFunc) Stream
}

// New builds the Engine a Spec describes.
func New(s Spec) (Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Algo {
	case AlgoRabin:
		return newRabin(s)
	case AlgoFastCDC:
		return newFastCDC(s)
	default:
		return nil, &UnknownAlgoError{Algo: s.Algo}
	}
}

// SplitReader chunks everything from r using e, returning the chunks
// and total bytes read. Chunk bytes are delivered through emit; pass
// nil to collect boundaries only.
func SplitReader(e Engine, r io.Reader, emit EmitFunc) ([]Chunk, int64, error) {
	var chunks []Chunk
	s := e.Stream(func(c Chunk, data []byte) error {
		chunks = append(chunks, c)
		if emit != nil {
			return emit(c, data)
		}
		return nil
	})
	n, err := io.Copy(s, r)
	if err != nil {
		return chunks, n, err
	}
	if err := s.Close(); err != nil {
		return chunks, n, err
	}
	return chunks, n, nil
}
