package analyzers

import (
	"testing"

	"shredder/tools/shredlint/analysistest"
)

func TestDurability(t *testing.T) {
	analysistest.Run(t, "testdata", Durability, "durability", "durability_clean")
}

func TestStripeLock(t *testing.T) {
	analysistest.Run(t, "testdata", StripeLock, "stripelock", "stripelock_clean")
}

func TestObsNil(t *testing.T) {
	analysistest.Run(t, "testdata", ObsNil, "obsnil", "obsnil_clean")
}

func TestWireSym(t *testing.T) {
	analysistest.Run(t, "testdata", WireSym, "wiresym", "wiresym_clean")
}

func TestErrHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", ErrHygiene, "errhygiene", "errhygiene_clean", "errhygiene_oos")
}
