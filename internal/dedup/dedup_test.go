package dedup

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := NewStore(0)
	if err != nil {
		t.Fatal(err)
	}
	chunkA := testData(1, 4096)
	chunkB := testData(2, 100)
	refA, dup := s.Put(chunkA)
	if dup {
		t.Fatal("first put reported duplicate")
	}
	refB, _ := s.Put(chunkB)
	gotA, err := s.Get(refA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, chunkA) {
		t.Fatal("chunk A corrupted")
	}
	gotB, _ := s.Get(refB)
	if !bytes.Equal(gotB, chunkB) {
		t.Fatal("chunk B corrupted")
	}
}

func TestDuplicateDetection(t *testing.T) {
	s, _ := NewStore(0)
	chunk := testData(3, 2048)
	ref1, dup1 := s.Put(chunk)
	ref2, dup2 := s.Put(append([]byte(nil), chunk...)) // equal content, new slice
	if dup1 || !dup2 {
		t.Fatalf("dup flags: %v %v, want false true", dup1, dup2)
	}
	if ref1 != ref2 {
		t.Fatal("duplicate got a different ref")
	}
	st := s.Stats()
	if st.Chunks != 2 || st.UniqueChunks != 1 || st.IndexHits != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.LogicalBytes != 4096 || st.StoredBytes != 2048 {
		t.Fatalf("byte accounting wrong: %+v", st)
	}
	if st.Ratio() != 2 {
		t.Fatalf("ratio %.2f, want 2", st.Ratio())
	}
	if st.Saved() != 2048 {
		t.Fatalf("saved %d, want 2048", st.Saved())
	}
}

func TestLookup(t *testing.T) {
	s, _ := NewStore(0)
	chunk := testData(4, 512)
	if _, ok := s.Lookup(Sum(chunk)); ok {
		t.Fatal("lookup hit before put")
	}
	ref, _ := s.Put(chunk)
	got, ok := s.Lookup(Sum(chunk))
	if !ok || got != ref {
		t.Fatal("lookup after put failed")
	}
	// Lookup must not change stats.
	if s.Stats().Chunks != 1 {
		t.Fatal("lookup mutated stats")
	}
}

func TestContainerRollover(t *testing.T) {
	s, _ := NewStore(1024)
	for i := 0; i < 10; i++ {
		s.Put(testData(int64(i+10), 512))
	}
	if s.Containers() < 5 {
		t.Fatalf("containers = %d, want >= 5 with 1KB containers", s.Containers())
	}
}

func TestGetErrors(t *testing.T) {
	s, _ := NewStore(0)
	s.Put(testData(5, 100))
	if _, err := s.Get(Ref{Container: 9}); err == nil {
		t.Fatal("expected out-of-range container error")
	}
	if _, err := s.Get(Ref{Container: 0, Offset: 50, Length: 100}); err == nil {
		t.Fatal("expected out-of-bounds ref error")
	}
	if _, err := NewStore(-1); err == nil {
		t.Fatal("expected negative container size error")
	}
}

func TestWriteStreamAndReconstruct(t *testing.T) {
	s, _ := NewStore(0)
	base := testData(6, 1<<16)
	// Cut into fixed pieces and duplicate the stream: the second write
	// must dedup completely.
	var chunks [][]byte
	for off := 0; off < len(base); off += 4096 {
		end := off + 4096
		if end > len(base) {
			end = len(base)
		}
		chunks = append(chunks, base[off:end])
	}
	r1, d1 := s.WriteStream(chunks)
	r2, d2 := s.WriteStream(chunks)
	if d1 != 0 {
		t.Fatalf("first stream had %d dups", d1)
	}
	if d2 != len(chunks) {
		t.Fatalf("second stream deduped %d of %d", d2, len(chunks))
	}
	for _, r := range []Recipe{r1, r2} {
		got, err := s.Reconstruct(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("reconstruction differs from original")
		}
	}
	if s.Stats().Ratio() < 1.99 {
		t.Fatalf("dedup ratio %.2f, want ~2", s.Stats().Ratio())
	}
}

func TestStatsZero(t *testing.T) {
	var st Stats
	if st.Ratio() != 1 {
		t.Fatal("empty stats ratio should be 1")
	}
	st.LogicalBytes = 10
	if st.Ratio() != 0 {
		t.Fatal("logical without stored should report 0 ratio")
	}
}

func TestQuickReconstruction(t *testing.T) {
	// Property: for any sequence of chunks, reconstruction of the
	// recipe equals the concatenation, and stored <= logical.
	f := func(pieces [][]byte) bool {
		s, _ := NewStore(0)
		var want []byte
		var chunks [][]byte
		for _, p := range pieces {
			if len(p) == 0 {
				continue
			}
			chunks = append(chunks, p)
			want = append(want, p...)
		}
		recipe, _ := s.WriteStream(chunks)
		got, err := s.Reconstruct(recipe)
		if err != nil {
			return false
		}
		if len(want) == 0 {
			return len(got) == 0
		}
		st := s.Stats()
		return bytes.Equal(got, want) && st.StoredBytes <= st.LogicalBytes && st.Saved() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
