package ingest

import (
	"sync"
)

// SessionPool reuses Sessions against one address. A session is leased
// exclusively with Get, used for any number of sequential operations,
// and either returned with Put (healthy, on a clean operation
// boundary) or dropped with Discard (any error — a session mid-stream
// or desynchronized must never be reused). Fresh sessions are dialed
// under the pool's DialOptions and run through Setup, so every leased
// session arrives negotiated the same way.
//
// The pool exists for the routing layer: a router serves many client
// streams, each of which needs a session per owner node for the
// duration of the stream; redialing and renegotiating per stream would
// double every stream's round trips.
type SessionPool struct {
	// Addr is the node address sessions dial.
	Addr string
	// Dial bounds the connect path (timeout, retries, backoff).
	Dial DialOptions
	// Setup, when set, prepares a freshly dialed session (negotiation,
	// tracer) before it is handed out. A Setup error counts as a dial
	// failure: the session is closed and Get fails.
	Setup func(*Session) error
	// MaxIdle bounds the sessions kept warm for reuse (0 means 2).
	// Sessions returned beyond the bound are closed.
	MaxIdle int

	mu   sync.Mutex
	idle []*Session
}

// Get leases a session: an idle one when available, a freshly dialed
// and Setup-run one otherwise.
func (p *SessionPool) Get() (*Session, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		s := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	s, err := p.Dial.Dial(p.Addr)
	if err != nil {
		return nil, err
	}
	if p.Setup != nil {
		if err := p.Setup(s); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Put returns a healthy session for reuse. Only sessions on a clean
// operation boundary (no stream in flight, no protocol error seen) may
// come back; anything else goes to Discard.
func (p *SessionPool) Put(s *Session) {
	if s == nil {
		return
	}
	maxIdle := p.MaxIdle
	if maxIdle <= 0 {
		maxIdle = 2
	}
	p.mu.Lock()
	if len(p.idle) < maxIdle {
		p.idle = append(p.idle, s)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	_ = s.Close()
}

// Discard closes a leased session instead of returning it: the server
// observes the abort and releases any references the session's
// uncommitted stream applied.
func (p *SessionPool) Discard(s *Session) {
	if s != nil {
		_ = s.Close()
	}
}

// Close drops every idle session. Leased sessions are unaffected; the
// pool stays usable (a later Get dials fresh).
func (p *SessionPool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, s := range idle {
		_ = s.Close()
	}
}
