// Dedupstore: build a deduplicating chunk store over several versions
// of a document tree — the storage-savings use case that motivates
// content-based chunking (§1). Fixed-size chunking is shown alongside
// to demonstrate why content-defined boundaries matter when bytes are
// inserted.
package main

import (
	"bytes"
	"fmt"
	"log"

	"shredder/internal/chunker"
	"shredder/internal/dedup"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	p := chunker.DefaultParams()
	p.MinSize = 2 << 10
	p.MaxSize = 64 << 10
	cdc, err := chunker.New(p)
	if err != nil {
		log.Fatal(err)
	}

	// Three "nightly" versions of a corpus: each inserts ~2% new
	// content at random positions (the hard case for fixed-size).
	v1 := workload.Text(7, 8<<20)
	v2 := workload.MutateInsert(v1, 8, 2)
	v3 := workload.MutateInsert(v2, 9, 2)
	versions := [][]byte{v1, v2, v3}

	content, _ := dedup.NewStore(0)
	fixed, _ := dedup.NewStore(0)
	var recipes []dedup.Recipe

	for i, v := range versions {
		// Content-defined chunks.
		var chunks [][]byte
		for _, c := range cdc.Split(v) {
			chunks = append(chunks, v[c.Offset:c.End()])
		}
		recipe, dups := content.WriteStream(chunks)
		recipes = append(recipes, recipe)

		// Fixed-size 8 KB blocks for comparison.
		var blocks [][]byte
		for off := 0; off < len(v); off += 8 << 10 {
			end := off + 8<<10
			if end > len(v) {
				end = len(v)
			}
			blocks = append(blocks, v[off:end])
		}
		_, fdups := fixed.WriteStream(blocks)

		fmt.Printf("version %d (%s): content-defined %d/%d dup chunks; fixed-size %d/%d dup blocks\n",
			i+1, stats.Bytes(int64(len(v))), dups, len(chunks), fdups, len(blocks))
	}

	cs, fs := content.Stats(), fixed.Stats()
	fmt.Printf("\ncontent-defined: %s logical -> %s stored (ratio %.2fx)\n",
		stats.Bytes(cs.LogicalBytes), stats.Bytes(cs.StoredBytes), cs.Ratio())
	fmt.Printf("fixed-size:      %s logical -> %s stored (ratio %.2fx)\n",
		stats.Bytes(fs.LogicalBytes), stats.Bytes(fs.StoredBytes), fs.Ratio())

	// Every version reconstructs byte-exactly.
	for i, r := range recipes {
		got, err := content.Reconstruct(r)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, versions[i]) {
			log.Fatalf("version %d failed to reconstruct", i+1)
		}
	}
	fmt.Println("all versions reconstruct byte-exactly")
}
