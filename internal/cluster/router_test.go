package cluster

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/workload"
)

// startRouter boots a Router over tc on a loopback listener and
// returns its address.
func startRouter(t *testing.T, c *Cluster) string {
	t.Helper()
	r := NewRouter(c, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		r.Shutdown(2 * time.Second)
	})
	return ln.Addr().String()
}

// TestRouterDedupClientRoundTrip drives an ordinary dedup-protocol
// client against the router: the client neither knows nor negotiates
// anything cluster-specific, yet its stream lands sharded across three
// nodes and comes back byte-identical.
func TestRouterDedupClientRoundTrip(t *testing.T) {
	tc := startNodes(t, 3)
	reg := obs.NewRegistry()
	c, err := New(Config{
		Topology: tc.topo,
		Spec:     DefaultSpec(),
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	addr := startRouter(t, c)

	sess, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	spec := chunk.FastCDCSpec(8 << 10)
	if _, err := sess.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}

	im := workload.NewImage(17, 1<<20, 64<<10, 0.5)
	snap := im.Snapshot(18)
	if _, err := sess.BackupDedupBytes("master", im.Master); err != nil {
		t.Fatal(err)
	}
	st, err := sess.BackupDedupBytes("snap", snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wire.ChunksSkipped == 0 {
		t.Fatal("no chunks deduped across the router — snapshot shares nothing")
	}
	if err := sess.Verify("master", im.Master); err != nil {
		t.Fatal(err)
	}
	if err := sess.Verify("snap", snap); err != nil {
		t.Fatal(err)
	}

	// The chunks must actually be sharded: more than one node holds data.
	populated := 0
	for _, srv := range tc.srvs {
		if len(srv.Store().RecipeNames()) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d node(s) hold data — routing is not sharding", populated)
	}

	// Delete through the router; unknown names are typed on the client
	// and the session survives both.
	if _, err := sess.Delete("master"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Delete("master"); !errors.Is(err, ingest.ErrNotFound) {
		t.Fatalf("re-delete through router: %v", err)
	}
	var nf *ingest.NotFoundError
	if _, err := sess.RestoreBytes("master"); !errors.As(err, &nf) || nf.Name != "master" {
		t.Fatalf("restore of deleted name through router: %v", err)
	}
	if err := sess.Verify("snap", snap); err != nil {
		t.Fatalf("session did not survive application errors: %v", err)
	}

	// Per-node metrics exist and saw traffic.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, want := range []string{
		`cluster_node_up{node="n0"} 1`,
		"cluster_routed_frames_total",
		`cluster_node_tx_bytes_total{node="`,
		`cluster_streams_total{op="restore"}`,
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape is missing %q:\n%s", want, scrape)
		}
	}
}

// TestRouterLegacyRawClient: a v1-style client (no Hello at all) backs
// up through the router — the router chunks the stream itself with the
// cluster spec and shards it.
func TestRouterLegacyRawClient(t *testing.T) {
	tc := startNodes(t, 3)
	c := newTestCluster(t, tc, DefaultSpec())
	addr := startRouter(t, c)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := ingest.NewSession(conn)
	defer sess.Close()
	data := workload.Random(23, 768<<10)
	st, err := sess.BackupBytes("legacy", data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("stats say %d bytes, sent %d", st.Bytes, len(data))
	}
	if err := sess.Verify("legacy", data); err != nil {
		t.Fatal(err)
	}
}

// TestRouterNegotiatedRawClient: a v2-negotiated raw session picks its
// own (bounded) spec and the router honors it.
func TestRouterNegotiatedRawClient(t *testing.T) {
	tc := startNodes(t, 3)
	c := newTestCluster(t, tc, DefaultSpec())
	addr := startRouter(t, c)

	sess, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	spec := chunk.FastCDCSpec(4 << 10)
	got, err := sess.Negotiate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algo != spec.Algo || got.MaxSize != spec.MaxSize {
		t.Fatalf("negotiated %+v, asked %+v", got, spec)
	}
	data := workload.Text(29, 512<<10)
	if _, err := sess.BackupBytes("text", data); err != nil {
		t.Fatal(err)
	}
	if err := sess.Verify("text", data); err != nil {
		t.Fatal(err)
	}
}

// TestRouterRejectsUnboundedSpec: specs without a max chunk size are
// fine on a single node but break routed restores, so the router must
// refuse them at negotiation with a clear reason.
func TestRouterRejectsUnboundedSpec(t *testing.T) {
	tc := startNodes(t, 1)
	c := newTestCluster(t, tc, DefaultSpec())
	addr := startRouter(t, c)

	sess, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, err = sess.Negotiate(chunk.DefaultSpec()) // MaxSize 0: unbounded
	if err == nil {
		t.Fatal("router accepted an unbounded chunk spec")
	}
	if !strings.Contains(err.Error(), "max chunk size") {
		t.Fatalf("rejection does not explain the bound: %v", err)
	}
}

// TestRouterReservedNameRejected: the manifest namespace is fenced off
// at the router's edge too.
func TestRouterReservedNameRejected(t *testing.T) {
	tc := startNodes(t, 1)
	c := newTestCluster(t, tc, DefaultSpec())
	addr := startRouter(t, c)

	sess, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.NegotiateDedup(chunk.FastCDCSpec(8 << 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.BackupDedupBytes(ManifestName("x"), []byte("nope")); err == nil {
		t.Fatal("router accepted a backup into the reserved namespace")
	}
}
