package persist

import (
	"fmt"
	"reflect"
	"testing"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
)

// TestMissingSurvivesRestart: the backing's presence query answers
// from recovered state, agrees with the store's index, and reference
// counts taken by PinBatch (the dedup wire protocol's pin) are
// journaled like any duplicate hit and recovered exactly.
func TestMissingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	chunks := make([][]byte, 24)
	hs := make([]shardstore.Hash, len(chunks))
	for i := range chunks {
		chunks[i] = []byte(fmt.Sprintf("persisted-chunk-%04d-with-some-body", i))
		hs[i] = dedup.Sum(chunks[i])
	}

	store, err := OpenStore(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Store the first half, then pin it (refcount 2 each).
	if _, _, err := store.PutBatch(chunks[:12]); err != nil {
		t.Fatal(err)
	}
	if _, missing, err := store.PinBatch(hs[:12]); err != nil || len(missing) != 0 {
		t.Fatalf("pin: %v, missing %v", err, missing)
	}
	wantMissing := store.Missing(hs)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	backing, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err = shardstore.Open(backing)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := store.Missing(hs); !reflect.DeepEqual(got, wantMissing) {
		t.Fatalf("recovered store Missing = %v, want %v", got, wantMissing)
	}
	if got := backing.Missing(hs); !reflect.DeepEqual(got, wantMissing) {
		t.Fatalf("recovered backing Missing = %v, want %v", got, wantMissing)
	}
	for i := 0; i < 12; i++ {
		if rc := store.Refcount(hs[i]); rc != 2 {
			t.Fatalf("recovered refcount %d = %d, want 2 (put + pin)", i, rc)
		}
	}
	// Appends after recovery show up in the presence set too.
	if _, _, err := store.PutBatch(chunks[12:]); err != nil {
		t.Fatal(err)
	}
	if got := backing.Missing(hs); len(got) != 0 {
		t.Fatalf("backing still missing %v after full ingest", got)
	}
}
