package ingest

import (
	"bytes"
	"testing"

	"shredder/internal/dedup"
)

// hasBatchSeedCorpus seeds the HasBatch codec fuzzer: empty, single
// and multi-fingerprint batches plus deliberately misaligned framings.
// CI runs these as ordinary seed cases via `go test`;
// `go test -fuzz FuzzHasBatchCodec ./internal/ingest/` explores beyond
// them.
func hasBatchSeedCorpus() [][]byte {
	a, b := dedup.Sum([]byte("a")), dedup.Sum([]byte("b"))
	return [][]byte{
		nil,
		{},
		encodeHasBatch([]dedup.Hash{a}),
		encodeHasBatch([]dedup.Hash{a, b, a}),
		bytes.Repeat([]byte{0xff}, hashSize),
		bytes.Repeat([]byte{0x00}, hashSize-1),   // misaligned
		bytes.Repeat([]byte{0xab}, 3*hashSize+7), // misaligned
	}
}

// FuzzHasBatchCodec: decodeHasBatch must never panic, must reject
// exactly the misaligned payloads, and whatever it accepts must
// re-encode to the identical bytes (the framing is canonical — the
// server's wire accounting counts payload bytes, so a second encoding
// of the same batch may not differ).
func FuzzHasBatchCodec(f *testing.F) {
	for _, seed := range hasBatchSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		hs, err := decodeHasBatch(in)
		if len(in)%hashSize != 0 {
			if err == nil {
				t.Fatalf("misaligned %d-byte payload accepted", len(in))
			}
			return
		}
		if err != nil {
			t.Fatalf("aligned payload rejected: %v", err)
		}
		if len(hs) != len(in)/hashSize {
			t.Fatalf("decoded %d fingerprints from %d bytes", len(hs), len(in))
		}
		if out := encodeHasBatch(hs); !bytes.Equal(out, in) && !(len(in) == 0 && len(out) == 0) {
			t.Fatalf("re-encoding differs:\nin  %x\nout %x", in, out)
		}
	})
}

// FuzzNeedBatchCodec: decodeNeedBatch must never panic for any payload
// and batch size, must only ever return in-range strictly-ascending
// indices, and must round-trip its own encoder's output exactly.
func FuzzNeedBatchCodec(f *testing.F) {
	seeds := []struct {
		payload []byte
		batch   int
	}{
		{nil, 0},
		{encodeNeedBatch(nil), 16},
		{encodeNeedBatch([]int{0}), 1},
		{encodeNeedBatch([]int{0, 1, 2, 3}), 4},
		{encodeNeedBatch([]int{2, 5, 11}), 100},
		{[]byte{0, 0, 0, 1, 0, 0, 0, 1}, 4},       // duplicate index
		{[]byte{0, 0, 0, 9}, 4},                   // out of range
		{[]byte{0xff, 0xff, 0xff, 0xff}, 1 << 20}, // huge index
		{bytes.Repeat([]byte{0}, 7), 8},           // misaligned
	}
	for _, s := range seeds {
		f.Add(s.payload, s.batch)
	}
	f.Fuzz(func(t *testing.T, in []byte, batch int) {
		idxs, err := decodeNeedBatch(in, batch)
		if err != nil {
			return
		}
		prev := -1
		for _, v := range idxs {
			if v <= prev || v >= batch {
				t.Fatalf("accepted index %d after %d in batch of %d", v, prev, batch)
			}
			prev = v
		}
		if out := encodeNeedBatch(idxs); !bytes.Equal(out, in) && !(len(in) == 0 && len(out) == 0) {
			t.Fatalf("re-encoding differs:\nin  %x\nout %x", in, out)
		}
	})
}
