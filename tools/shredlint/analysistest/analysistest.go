// Package analysistest runs one analyzer over testdata packages and
// checks its diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A testdata package is a directory of Go files (stdlib imports only).
// Expected findings are annotated on the offending line:
//
//	badCall() // want `regexp matching the message`
//
// Multiple annotations on one line each match one diagnostic. A clean
// package simply has no annotations; any diagnostic is then a test
// failure, which is how the negative suites assert silence.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"shredder/tools/shredlint/analysis"
)

// wantRe matches one annotation: // want `re` or // want "re", with
// several patterns allowed per comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// patRe pulls the individual backquoted or quoted patterns out.
var patRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and reports any mismatch between diagnostics and // want
// annotations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		loaded, err := analysis.LoadTestData(filepath.Join(testdata, "src"), pkg)
		if err != nil {
			t.Errorf("%s: load: %v", pkg, err)
			continue
		}
		diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{loaded})
		if err != nil {
			t.Errorf("%s: run: %v", pkg, err)
			continue
		}
		wants := collectWants(t, loaded)
		for _, d := range diags {
			if !claim(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matched want %q", pkg, w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != filepath.Base(d.Pos.Filename) {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	files := append(append([]*ast.File{}, pkg.Syntax...), pkg.TestSyntax...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
					pat := pm[1]
					if pat == "" {
						pat = unescape(pm[2])
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posString(pos), pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
