package experiments

import (
	"strings"
	"testing"
)

// Small sizing keeps the experiment tests quick; shapes are
// size-invariant because all timing is simulated.
func testOptions() Options {
	opt := Default()
	// 256 MB gives every buffer size in rows[:3] at least four buffers
	// in flight, so pipeline overlap is observable.
	opt.DataBytes = 256 << 20
	opt.TextBytes = 2 << 20
	opt.KMeansPoints = 20_000
	opt.ImageBytes = 16 << 20
	return opt
}

func TestTable1ContainsPaperValues(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"1030 GFlops", "448", "2.00 GB/s", "5.41 GB/s", "5.13 GB/s",
		"400 - 600 cycles", "144.00 GB/s", "48KiB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3()
	if len(rows) < 5 {
		t.Fatal("too few sweep points")
	}
	first, last := rows[0], rows[len(rows)-1]
	// Small transfers are slow; large ones approach peak.
	if first.H2DPinned >= last.H2DPinned {
		t.Fatal("pinned bandwidth not increasing with size")
	}
	if last.H2DPinned < 5e9 || last.D2HPinned < 4.8e9 {
		t.Fatalf("peak bandwidths off: %.2f / %.2f GB/s", last.H2DPinned/1e9, last.D2HPinned/1e9)
	}
	// Pinned beats pageable everywhere.
	for _, r := range rows {
		if r.H2DPinned <= r.H2DPageable {
			t.Fatalf("pinned not above pageable at %d bytes", r.Buffer)
		}
	}
	if !strings.Contains(RenderFig3(rows), "Figure 3") {
		t.Fatal("render missing title")
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:3] { // rows with >1 buffer in flight
		if r.Concurrent >= r.Serialized {
			t.Fatalf("buffer %d: concurrent %v not below serialized %v", r.Buffer, r.Concurrent, r.Serialized)
		}
		// Double buffering hides the copy behind the (longer) kernel, so
		// the total is dictated by compute (§4.1.1).
		slack := float64(r.Concurrent-r.Kernel) / float64(r.Kernel)
		if slack > 0.15 {
			t.Fatalf("buffer %d: concurrent %v far above kernel-only %v", r.Buffer, r.Concurrent, r.Kernel)
		}
		if r.OverlapFraction <= 0 {
			t.Fatalf("buffer %d: no copy time hidden", r.Buffer)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6()
	for _, r := range rows {
		if r.PinnedAlloc <= r.PageableAlloc {
			t.Fatal("pinned allocation not dearer than pageable")
		}
		// The ring's amortized per-use cost beats re-allocating pageable
		// buffers and staging them — the §4.1.2 order-of-magnitude claim.
		perUsePageableRoute := r.PageableAlloc + r.Memcpy
		if r.RingAmortized*8 > perUsePageableRoute {
			t.Fatalf("ring per-use %v not ~an order of magnitude below pageable route %v",
				r.RingAmortized, perUsePageableRoute)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		// Launch cost is negligible next to device execution (§4.2).
		if float64(r.HostLaunch) > 0.01*float64(r.DeviceExec) {
			t.Fatalf("row %d: launch %v not negligible vs device %v", i, r.HostLaunch, r.DeviceExec)
		}
		if r.SpareTicks == 0 {
			t.Fatalf("row %d: no spare ticks", i)
		}
		// Spare ticks grow with buffer size.
		if i > 0 && r.SpareTicks <= rows[i-1].SpareTicks {
			t.Fatal("spare ticks not increasing with buffer size")
		}
	}
	// First row is in the 1e7 range like the paper's 3.0e7 at 16 MB.
	if rows[0].SpareTicks < 1e7 || rows[0].SpareTicks > 1e8 {
		t.Fatalf("16MB spare ticks %.2g outside 1e7..1e8", float64(rows[0].SpareTicks))
	}
}

func TestFig9Shape(t *testing.T) {
	opt := testOptions()
	opt.DataBytes = 512 << 20 // enough buffers at every size
	rows, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:3] {
		s2, s3, s4 := r.Speedup[2], r.Speedup[3], r.Speedup[4]
		if s2 < 1.2 {
			t.Fatalf("buffer %d: 2-stage speedup %.2f too low", r.Buffer, s2)
		}
		if s3 < s2-0.05 || s4 < s3-0.05 {
			t.Fatalf("buffer %d: speedups not (weakly) increasing: %.2f %.2f %.2f", r.Buffer, s2, s3, s4)
		}
		// Paper: full pipeline achieves ~2x, below the theoretical 4x.
		if s4 > 2.6 {
			t.Fatalf("buffer %d: 4-stage speedup %.2f implausibly high", r.Buffer, s4)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 5 || r.Speedup > 11 {
			t.Fatalf("coalescing speedup %.2f at %d outside [5, 11] (paper ~8)", r.Speedup, r.Buffer)
		}
	}
	// The benefit is consistent across buffer sizes (the coalescing
	// granularity is the 48KB shared-memory tile, §4.3).
	if rows[0].Speedup/rows[len(rows)-1].Speedup > 1.05 {
		t.Fatal("coalescing speedup varies too much with buffer size")
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Throughput
	}
	// Strict ordering of all five bars.
	order := []string{"CPU w/o Hoard", "CPU w/ Hoard", "GPU Basic", "GPU Streams", "GPU Streams + Memory"}
	for i := 1; i < len(order); i++ {
		if byName[order[i]] <= byName[order[i-1]] {
			t.Fatalf("%s (%.2f GB/s) not above %s (%.2f GB/s)",
				order[i], byName[order[i]]/1e9, order[i-1], byName[order[i-1]]/1e9)
		}
	}
	// Headline: full pipeline > 4.5x the optimized host baseline (the
	// paper claims over 5x at 1 GB; small test streams pay more ramp).
	if s := byName["GPU Streams + Memory"] / byName["CPU w/ Hoard"]; s < 4.5 {
		t.Fatalf("full-pipeline speedup %.2f below 4.5x", s)
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study experiment")
	}
	rows, err := Fig15(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig15ChangePcts) {
		t.Fatalf("%d rows", len(rows))
	}
	zero := rows[0]
	if zero.WordCount < 5 || zero.CoOccurrence < 5 || zero.KMeans < 5 {
		t.Fatalf("0%%-change speedups too low: %+v", zero)
	}
	last := rows[len(rows)-1]
	// Effectiveness degrades as the change percentage grows (§6.3).
	if last.WordCount >= zero.WordCount || last.CoOccurrence >= zero.CoOccurrence {
		t.Fatalf("speedup did not degrade with changes: %+v -> %+v", zero, last)
	}
	// Everything stays a speedup (>= ~1).
	for _, r := range rows {
		if r.WordCount < 0.95 || r.CoOccurrence < 0.95 || r.KMeans < 0.95 {
			t.Fatalf("speedup below 1 at %v%%: %+v", r.ChangePct, r)
		}
	}
}

func TestFig18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study experiment")
	}
	rows, err := Fig18(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig18Probs) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		ratio := r.GPUBandwidth / r.CPUBandwidth
		if ratio < 1.7 || ratio > 3.5 {
			t.Fatalf("GPU/CPU ratio %.2f at %.0f%% outside [1.7, 3.5] (paper ~2.5)", ratio, r.ChangeProb*100)
		}
	}
	// GPU bandwidth decreases as similarity decreases; CPU stays
	// roughly flat (chunking-bound).
	first, last := rows[0], rows[len(rows)-1]
	if last.GPUBandwidth >= first.GPUBandwidth {
		t.Fatal("GPU bandwidth did not fall with dissimilarity")
	}
	cpuSpread := first.CPUBandwidth / last.CPUBandwidth
	if cpuSpread > 1.25 {
		t.Fatalf("CPU bandwidth varies by %.2fx; expected roughly flat", cpuSpread)
	}
	// GPU stays in the multi-Gbps band near the 10 Gbps source rate.
	if g := first.GPUBandwidth * 8 / 1e9; g < 5 || g > 10 {
		t.Fatalf("GPU backup bandwidth %.1f Gbps outside [5, 10]", g)
	}
	// Extension (§7.3's prediction): the optimized index holds the
	// bandwidth flat across the spectrum, above the unoptimized curve.
	optSpread := first.GPUOptimizedIndex / last.GPUOptimizedIndex
	if optSpread > 1.08 {
		t.Fatalf("optimized-index bandwidth varies %.2fx; should be flat", optSpread)
	}
	if last.GPUOptimizedIndex <= last.GPUBandwidth {
		t.Fatal("optimized index not above unoptimized at high churn")
	}
}

func TestRenderersProduceTables(t *testing.T) {
	opt := testOptions()
	f5, _ := Fig5(opt)
	f9, _ := Fig9(opt)
	f11, _ := Fig11(opt)
	t2, _ := Table2()
	for name, out := range map[string]string{
		"fig5":   RenderFig5(f5, opt),
		"fig6":   RenderFig6(Fig6()),
		"fig9":   RenderFig9(f9, opt),
		"fig11":  RenderFig11(f11, opt),
		"table2": RenderTable2(t2),
	} {
		if !strings.Contains(out, "-----") || len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s: render looks wrong:\n%s", name, out)
		}
	}
}
