package ingest

import (
	"bytes"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/obs"
)

// fuzzCtx is a valid trace context for seeding traced layouts.
var fuzzCtx = obs.SpanContext{
	Trace: obs.TraceID{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	Span:  obs.SpanID{0xca, 0xfe, 1, 2, 3, 4, 5, 6},
}

// helloSeedCorpus seeds the hello codec fuzzer: plain v2/v3 payloads,
// v4 payloads with and without a trace context, and truncations.
func helloSeedCorpus() [][]byte {
	spec := chunk.DefaultSpec()
	return [][]byte{
		nil,
		{},
		{3},
		encodeHello(2, spec),
		encodeHello(ProtocolVersion, spec),
		encodeHelloCtx(ProtocolVersion, spec, fuzzCtx),
		encodeHello(ProtocolVersion, spec)[:10],
		append(encodeHello(ProtocolVersion, spec), 0xff),
	}
}

// FuzzHelloCodec: decodeHello must never panic, and whatever it
// accepts must survive a re-encode/re-decode round trip unchanged —
// the negotiated version, spec, and trace context are what the whole
// session keys off.
func FuzzHelloCodec(f *testing.F) {
	for _, seed := range helloSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		version, spec, ctx, err := decodeHello(in)
		if err != nil {
			return
		}
		out := encodeHelloCtx(version, spec, ctx)
		v2, spec2, ctx2, err := decodeHello(out)
		if err != nil {
			t.Fatalf("re-encoded hello rejected: %v", err)
		}
		if v2 != version || spec2 != spec || ctx2 != ctx {
			t.Fatalf("hello round trip drifted: (%d %+v %+v) -> (%d %+v %+v)",
				version, spec, ctx, v2, spec2, ctx2)
		}
	})
}

// FuzzBeginDedupCodec: decodeBeginDedup must never panic for any
// negotiated version and payload, and accepted payloads must round
// trip: the stream name and trace context survive re-encoding under
// the same version.
func FuzzBeginDedupCodec(f *testing.F) {
	f.Add(byte(2), []byte("backup-2026-08"))
	f.Add(byte(4), encodeBeginDedup(4, "snap", obs.SpanContext{}))
	f.Add(byte(4), encodeBeginDedup(4, "snap", fuzzCtx))
	f.Add(byte(4), []byte{1, 0, 0})
	f.Add(byte(4), []byte{2, 'x'})
	f.Fuzz(func(t *testing.T, version byte, in []byte) {
		name, ctx, err := decodeBeginDedup(version, in)
		if err != nil {
			return
		}
		name2, ctx2, err := decodeBeginDedup(version, encodeBeginDedup(version, name, ctx))
		if err != nil {
			t.Fatalf("re-encoded begin-dedup rejected: %v", err)
		}
		if name2 != name || ctx2 != ctx {
			t.Fatalf("begin-dedup round trip drifted: (%q %+v) -> (%q %+v)",
				name, ctx, name2, ctx2)
		}
	})
}

// FuzzStatsCodec: decodeStreamStats must reject every length other
// than the two fixed layouts and must round-trip accepted payloads
// byte-identically — the framing is canonical big-endian int64s.
func FuzzStatsCodec(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(make([]byte, statsWireSize))
	f.Add(make([]byte, statsWireSizeV3))
	f.Add(make([]byte, statsWireSize-1))
	f.Add(bytes.Repeat([]byte{0xa5}, statsWireSizeV3))
	f.Fuzz(func(t *testing.T, in []byte) {
		st, err := decodeStreamStats(in)
		if len(in) != statsWireSize && len(in) != statsWireSizeV3 {
			if err == nil {
				t.Fatalf("%d-byte stats payload accepted", len(in))
			}
			return
		}
		if err != nil {
			t.Fatalf("%d-byte stats payload rejected: %v", len(in), err)
		}
		version := byte(2)
		if len(in) == statsWireSizeV3 {
			version = 3
		}
		if out := st.encode(version); !bytes.Equal(out, in) {
			t.Fatalf("re-encoding differs:\nin  %x\nout %x", in, out)
		}
	})
}
