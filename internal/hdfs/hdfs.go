// Package hdfs implements Inc-HDFS (§6.2): a miniature HDFS-like file
// system extended with content-based chunking so that small changes to
// an uploaded file leave most block identities — and therefore most
// downstream MapReduce work — unchanged.
//
// Blocks are content-addressed: a block whose bytes were stored by an
// earlier upload is not stored (or shipped) again. The client offers
// the original fixed-size path (CopyFromLocal) and the Shredder-
// accelerated content-defined path (CopyFromLocalGPU), mirroring the
// copyFromLocal / copyFromLocalGPU shell commands of §6.3.
package hdfs

import (
	"errors"
	"fmt"

	"shredder/internal/chunk"
	"shredder/internal/chunker"
	"shredder/internal/core"
	"shredder/internal/dedup"
	"shredder/internal/rabin"
)

// BlockID identifies a block by content.
type BlockID = dedup.Hash

// BlockRef names one block of a file.
type BlockRef struct {
	ID     BlockID
	Length int64
}

// FileMeta is the NameNode's record of a file.
type FileMeta struct {
	Name   string
	Size   int64
	Blocks []BlockRef
}

// DataNode stores block contents in memory.
type DataNode struct {
	id     int
	blocks map[BlockID][]byte
	dead   bool
}

// Blocks returns the number of blocks the node holds.
func (d *DataNode) Blocks() int { return len(d.blocks) }

// Alive reports whether the node is serving.
func (d *DataNode) Alive() bool { return !d.dead }

// Cluster bundles a NameNode with its DataNodes.
type Cluster struct {
	files     map[string]*FileMeta
	locations map[BlockID][]int // block -> replica datanodes
	refcount  map[BlockID]int64
	nodes     []*DataNode
	next      int // round-robin placement cursor
	replicas  int

	// Uploaded counts bytes actually shipped to datanodes; Deduped
	// counts bytes avoided because the block already existed.
	Uploaded int64
	Deduped  int64
}

// NewCluster creates a cluster with n datanodes and replication
// factor 1; use NewReplicatedCluster for fault tolerance.
func NewCluster(n int) (*Cluster, error) {
	return NewReplicatedCluster(n, 1)
}

// NewReplicatedCluster creates a cluster with n datanodes storing r
// replicas of every block (HDFS defaults to 3).
func NewReplicatedCluster(n, r int) (*Cluster, error) {
	if n < 1 {
		return nil, errors.New("hdfs: need at least one datanode")
	}
	if r < 1 || r > n {
		return nil, fmt.Errorf("hdfs: replication factor %d outside [1, %d]", r, n)
	}
	c := &Cluster{
		files:     make(map[string]*FileMeta),
		locations: make(map[BlockID][]int),
		refcount:  make(map[BlockID]int64),
		replicas:  r,
	}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &DataNode{id: i, blocks: make(map[BlockID][]byte)})
	}
	return c, nil
}

// DataNodes returns the cluster's nodes.
func (c *Cluster) DataNodes() []*DataNode { return c.nodes }

// KillNode marks a datanode failed: it stops serving reads until
// ReviveNode. Blocks whose every replica is dead become unreadable,
// which ReadBlock reports.
func (c *Cluster) KillNode(id int) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("hdfs: no datanode %d", id)
	}
	c.nodes[id].dead = true
	return nil
}

// ReviveNode brings a failed datanode back (its blocks are intact; this
// models a restart, not disk loss).
func (c *Cluster) ReviveNode(id int) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("hdfs: no datanode %d", id)
	}
	c.nodes[id].dead = false
	return nil
}

// putBlock stores a block if new; returns whether it was new.
func (c *Cluster) putBlock(data []byte) (BlockID, bool) {
	id := dedup.Sum(data)
	if _, ok := c.locations[id]; ok {
		c.refcount[id]++
		c.Deduped += int64(len(data))
		return id, false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	var placed []int
	for r := 0; r < c.replicas; r++ {
		node := c.nodes[(c.next+r)%len(c.nodes)]
		node.blocks[id] = cp
		placed = append(placed, node.id)
	}
	c.next++
	c.locations[id] = placed
	c.refcount[id] = 1
	c.Uploaded += int64(len(cp)) * int64(c.replicas)
	return id, true
}

// commit records a file's metadata at the NameNode.
func (c *Cluster) commit(meta *FileMeta) {
	c.files[meta.Name] = meta
}

// Stat returns a file's metadata.
func (c *Cluster) Stat(name string) (*FileMeta, error) {
	m, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", name)
	}
	return m, nil
}

// ReadBlock fetches one block's bytes from any live replica.
func (c *Cluster) ReadBlock(id BlockID) ([]byte, error) {
	replicas, ok := c.locations[id]
	if !ok {
		return nil, errors.New("hdfs: block not found")
	}
	for _, n := range replicas {
		if c.nodes[n].Alive() {
			return c.nodes[n].blocks[id], nil
		}
	}
	return nil, fmt.Errorf("hdfs: all %d replicas of block %x are down", len(replicas), id[:8])
}

// ReadFile reassembles a whole file.
func (c *Cluster) ReadFile(name string) ([]byte, error) {
	m, err := c.Stat(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, m.Size)
	for _, b := range m.Blocks {
		data, err := c.ReadBlock(b.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// Split is one unit of MapReduce input: a block plus its location.
type Split struct {
	File  string
	Index int
	Block BlockRef
	Node  int
}

// InputSplits lists a file's splits in order — the InputFormat the
// Incoop engine consumes. One split per block, as in §6.2.
func (c *Cluster) InputSplits(name string) ([]Split, error) {
	m, err := c.Stat(name)
	if err != nil {
		return nil, err
	}
	splits := make([]Split, len(m.Blocks))
	for i, b := range m.Blocks {
		node := -1
		for _, n := range c.locations[b.ID] {
			if c.nodes[n].Alive() {
				node = n
				break
			}
		}
		splits[i] = Split{File: name, Index: i, Block: b, Node: node}
	}
	return splits, nil
}

// UploadReport summarizes one upload.
type UploadReport struct {
	Blocks      int
	NewBlocks   int
	BytesTotal  int64
	BytesStored int64
	// Shredder carries the chunking pipeline's timing report for the
	// GPU path (nil for fixed-size uploads).
	Shredder *core.Report
}

// Client uploads files into the cluster.
type Client struct {
	cluster *Cluster
	shred   *core.Shredder
	// RecordDelim, when nonzero, turns on semantic chunking: content
	// boundaries are advanced to the next delimiter so no record is
	// split across blocks (§6.3's InputFormat-aware chunking).
	RecordDelim byte
}

// NewClient returns a client for the cluster; shred may be nil if only
// fixed-size uploads are needed.
func NewClient(cluster *Cluster, shred *core.Shredder) *Client {
	return &Client{cluster: cluster, shred: shred}
}

// CopyFromLocal uploads with original-HDFS fixed-size blocks.
func (c *Client) CopyFromLocal(name string, data []byte, blockSize int) (*UploadReport, error) {
	if blockSize < 1 {
		return nil, errors.New("hdfs: block size must be positive")
	}
	meta := &FileMeta{Name: name, Size: int64(len(data))}
	rep := &UploadReport{BytesTotal: int64(len(data))}
	for off := 0; off < len(data); off += blockSize {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		block := data[off:end]
		id, fresh := c.cluster.putBlock(block)
		meta.Blocks = append(meta.Blocks, BlockRef{ID: id, Length: int64(len(block))})
		rep.Blocks++
		if fresh {
			rep.NewBlocks++
			rep.BytesStored += int64(len(block))
		}
	}
	c.cluster.commit(meta)
	return rep, nil
}

// CopyFromLocalGPU uploads with Shredder content-based chunking (the
// copyFromLocalGPU shell command). Boundaries are optionally aligned to
// record delimiters.
func (c *Client) CopyFromLocalGPU(name string, data []byte) (*UploadReport, error) {
	if c.shred == nil {
		return nil, errors.New("hdfs: client has no Shredder attached")
	}
	var chunks []chunker.Chunk
	srep, err := c.shred.ChunkBytes(data, func(ch chunk.Chunk, _ []byte) error {
		chunks = append(chunks, chunker.Chunk{
			Offset: ch.Offset, Length: ch.Length,
			Cut: rabin.Poly(ch.Fingerprint), Forced: ch.Forced,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if c.RecordDelim != 0 {
		chunks = AlignToRecords(data, chunks, c.RecordDelim)
	}
	meta := &FileMeta{Name: name, Size: int64(len(data))}
	rep := &UploadReport{BytesTotal: int64(len(data)), Shredder: srep}
	for _, ch := range chunks {
		block := data[ch.Offset:ch.End()]
		id, fresh := c.cluster.putBlock(block)
		meta.Blocks = append(meta.Blocks, BlockRef{ID: id, Length: ch.Length})
		rep.Blocks++
		if fresh {
			rep.NewBlocks++
			rep.BytesStored += int64(len(block))
		}
	}
	c.cluster.commit(meta)
	return rep, nil
}

// AlignToRecords moves every chunk boundary forward to just past the
// next delimiter, so records never straddle blocks. The final chunk
// always ends at the end of data. Chunks that become empty are merged
// away. Alignment is content-local: it depends only on bytes near the
// boundary, preserving chunk-identity stability.
func AlignToRecords(data []byte, chunks []chunker.Chunk, delim byte) []chunker.Chunk {
	if len(chunks) == 0 {
		return nil
	}
	out := make([]chunker.Chunk, 0, len(chunks))
	start := int64(0)
	for i := 0; i < len(chunks)-1; i++ {
		cut := chunks[i].End()
		// Advance to one past the next delimiter (or swallow the next
		// chunk if none found within it — handled by the loop).
		j := cut
		for j < int64(len(data)) && data[j-1] != delim {
			j++
		}
		if j >= chunks[len(chunks)-1].End() {
			break // rest collapses into the final chunk
		}
		if j > start {
			out = append(out, chunker.Chunk{Offset: start, Length: j - start, Cut: chunks[i].Cut, Forced: chunks[i].Forced})
			start = j
		}
	}
	if total := int64(len(data)); total > start {
		out = append(out, chunker.Chunk{Offset: start, Length: total - start, Forced: true})
	}
	return out
}
