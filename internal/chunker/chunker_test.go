package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"shredder/internal/rabin"
)

func testData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func mustNew(t testing.TB, p Params) *Chunker {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkCover verifies chunks exactly tile [0, total).
func checkCover(t *testing.T, chunks []Chunk, total int64) {
	t.Helper()
	var off int64
	for i, c := range chunks {
		if c.Offset != off {
			t.Fatalf("chunk %d offset %d, want %d", i, c.Offset, off)
		}
		if c.Length <= 0 {
			t.Fatalf("chunk %d has non-positive length %d", i, c.Length)
		}
		off = c.End()
	}
	if off != total {
		t.Fatalf("chunks cover %d bytes, want %d", off, total)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Window = 1 },
		func(p *Params) { p.Polynomial = 0xFF }, // degree 7
		func(p *Params) { p.MaskBits = 0 },
		func(p *Params) { p.MaskBits = 60 },
		func(p *Params) { p.Marker = 1 << 13 },
		func(p *Params) { p.MinSize = -1 },
		func(p *Params) { p.MinSize = 4096; p.MaxSize = 4096 },
		func(p *Params) { p.MaxSize = 10 }, // below window
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSplitCoversInput(t *testing.T) {
	c := mustNew(t, DefaultParams())
	for _, n := range []int{0, 1, 47, 48, 49, 1000, 1 << 16, 1<<20 + 17} {
		data := testData(int64(n), n)
		chunks := c.Split(data)
		if n == 0 {
			if len(chunks) != 0 {
				t.Fatalf("empty input produced %d chunks", len(chunks))
			}
			continue
		}
		checkCover(t, chunks, int64(n))
	}
}

func TestSplitReassembly(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(11, 1<<18)
	var out []byte
	for _, ch := range c.Split(data) {
		out = append(out, data[ch.Offset:ch.End()]...)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("concatenated chunks do not reproduce input")
	}
}

func TestSplitMinMaxRespected(t *testing.T) {
	p := DefaultParams()
	p.MinSize = 2048
	p.MaxSize = 16384
	c := mustNew(t, p)
	data := testData(12, 1<<20)
	chunks := c.Split(data)
	checkCover(t, chunks, int64(len(data)))
	for i, ch := range chunks {
		if ch.Length > int64(p.MaxSize) {
			t.Fatalf("chunk %d length %d exceeds max %d", i, ch.Length, p.MaxSize)
		}
		// Every chunk except the last must respect the minimum.
		if i < len(chunks)-1 && !ch.Forced && ch.Length < int64(p.MinSize) {
			t.Fatalf("chunk %d length %d below min %d", i, ch.Length, p.MinSize)
		}
	}
}

func TestSplitEqualsBoundariesPlusLimits(t *testing.T) {
	// The GPU path computes raw boundaries and applies limits in the
	// Store thread; it must equal the inline sequential semantics.
	for _, cfg := range []struct{ min, max int }{
		{0, 0},
		{2048, 0},
		{0, 8192},
		{1024, 4096},
		{4096, 65536},
	} {
		p := DefaultParams()
		p.MinSize = cfg.min
		p.MaxSize = cfg.max
		c := mustNew(t, p)
		data := testData(13, 1<<19)
		raw := c.Boundaries(data)
		got := c.ApplyLimits(raw, nil, int64(len(data)))
		want := c.Split(data)
		if len(got) != len(want) {
			t.Fatalf("min=%d max=%d: %d chunks via limits, %d via split",
				cfg.min, cfg.max, len(got), len(want))
		}
		for i := range got {
			if got[i].Offset != want[i].Offset || got[i].Length != want[i].Length {
				t.Fatalf("min=%d max=%d chunk %d: limits (%d,%d) vs split (%d,%d)",
					cfg.min, cfg.max, i,
					got[i].Offset, got[i].Length, want[i].Offset, want[i].Length)
			}
		}
	}
}

func TestApplyLimitsFingerprints(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(29, 1<<17)
	raw := c.Boundaries(data)
	fps := make([]rabin.Poly, len(raw))
	tab := c.Table()
	for i, b := range raw {
		fps[i] = tab.Fingerprint(data[b-int64(tab.Size()) : b])
	}
	chunks := c.ApplyLimits(raw, fps, int64(len(data)))
	for _, ch := range chunks {
		if ch.Forced {
			continue
		}
		if !c.IsBoundary(ch.Cut) {
			t.Fatalf("content chunk at %d carries non-boundary fingerprint %#x", ch.Offset, ch.Cut)
		}
	}
}

func TestExpectedChunkSize(t *testing.T) {
	// With a 13-bit mask the chunk size is geometric with mean 2^13.
	// On 4 MB of random data the observed mean should be within 25%.
	c := mustNew(t, DefaultParams())
	data := testData(14, 4<<20)
	chunks := c.Split(data)
	mean := float64(len(data)) / float64(len(chunks))
	if mean < 8192*0.75 || mean > 8192*1.25 {
		t.Fatalf("mean chunk size %.0f outside [6144, 10240]", mean)
	}
}

func TestBoundaryLocality(t *testing.T) {
	// Editing bytes inside one chunk must not move boundaries more than
	// one window before the edit or past the following boundary region.
	// This is the property that makes CDC useful for dedup.
	c := mustNew(t, DefaultParams())
	data := testData(15, 1<<18)
	orig := c.Boundaries(data)

	mod := make([]byte, len(data))
	copy(mod, data)
	editPos := len(data) / 2
	mod[editPos] ^= 0xA5
	edited := c.Boundaries(mod)

	// Boundaries strictly before editPos−window and strictly after
	// editPos+window must be identical sets.
	w := int64(c.Params().Window)
	filter := func(cuts []int64) []int64 {
		var out []int64
		for _, b := range cuts {
			if b < int64(editPos)-w || b > int64(editPos)+w {
				out = append(out, b)
			}
		}
		return out
	}
	a, b := filter(orig), filter(edited)
	if len(a) != len(b) {
		t.Fatalf("boundary count far from edit changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("boundary %d moved: %d -> %d", i, a[i], b[i])
		}
	}
}

func TestStreamMatchesSplit(t *testing.T) {
	p := DefaultParams()
	p.MinSize = 1024
	p.MaxSize = 32768
	c := mustNew(t, p)
	data := testData(16, 1<<18)
	want := c.Split(data)

	for _, writeSize := range []int{1, 7, 100, 4096, len(data)} {
		var got []Chunk
		var payload []byte
		s := NewStream(c, func(ch Chunk, d []byte) error {
			got = append(got, ch)
			payload = append(payload, d...)
			return nil
		})
		for off := 0; off < len(data); off += writeSize {
			end := off + writeSize
			if end > len(data) {
				end = len(data)
			}
			if _, err := s.Write(data[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("writeSize %d: %d chunks, want %d", writeSize, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("writeSize %d chunk %d: %+v != %+v", writeSize, i, got[i], want[i])
			}
		}
		if !bytes.Equal(payload, data) {
			t.Fatalf("writeSize %d: streamed payload differs from input", writeSize)
		}
	}
}

func TestStreamCallbackError(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(17, 1<<16)
	wantErr := bytes.ErrTooLarge // any sentinel
	s := NewStream(c, func(ch Chunk, d []byte) error { return wantErr })
	_, err := s.Write(data)
	if err != wantErr {
		t.Fatalf("Write error = %v, want %v", err, wantErr)
	}
	if _, err := s.Write(data); err != wantErr {
		t.Fatal("error is not sticky")
	}
	if err := s.Close(); err != wantErr {
		t.Fatal("Close did not report sticky error")
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	c := mustNew(t, DefaultParams())
	s := NewStream(c, func(Chunk, []byte) error { return nil })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("expected error writing after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
}

func TestSplitReader(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(18, 1<<17)
	chunks, n, err := SplitReader(c, bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("read %d bytes, want %d", n, len(data))
	}
	checkCover(t, chunks, int64(len(data)))
	want := c.Split(data)
	if len(chunks) != len(want) {
		t.Fatalf("%d chunks, want %d", len(chunks), len(want))
	}
}

func TestQuickSplitInvariants(t *testing.T) {
	p := DefaultParams()
	p.MinSize = 64
	p.MaxSize = 4096
	c := mustNew(t, p)
	f := func(data []byte) bool {
		chunks := c.Split(data)
		var off int64
		for _, ch := range chunks {
			if ch.Offset != off || ch.Length <= 0 || ch.Length > 4096 {
				return false
			}
			off = ch.End()
		}
		return off == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(19, 1<<16)
	a := c.Split(data)
	b := c.Split(data)
	if len(a) != len(b) {
		t.Fatal("non-deterministic chunk count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic chunking")
		}
	}
}

func TestChunkSum(t *testing.T) {
	c := mustNew(t, DefaultParams())
	data := testData(20, 1<<15)
	chunks := c.Split(data)
	seen := make(map[[32]byte]bool)
	for _, ch := range chunks {
		seen[ch.Sum(data)] = true
	}
	if len(seen) != len(chunks) {
		t.Log("duplicate chunk sums on random data (possible but astronomically unlikely)")
	}
	// A duplicated chunk must produce a duplicated sum.
	double := append(append([]byte{}, data...), data...)
	dchunks := c.Split(double)
	sums := make(map[[32]byte]int)
	for _, ch := range dchunks {
		sums[ch.Sum(double)]++
	}
	dups := 0
	for _, n := range sums {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("doubling the input produced no duplicate chunk sums")
	}
}

func BenchmarkSplit(b *testing.B) {
	c := mustNew(b, DefaultParams())
	data := testData(21, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Split(data)
	}
}
