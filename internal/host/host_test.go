package host

import (
	"testing"
	"time"
)

func TestRDTSC(t *testing.T) {
	c := X5650()
	// Table 2's first row: ~11.4ms of device time leaves ~3.0e7 spare
	// ticks per core at 2.67 GHz.
	ticks := c.RDTSCTicks(11420 * time.Microsecond)
	if ticks < 2.9e7 || ticks > 3.2e7 {
		t.Fatalf("RDTSC ticks for 11.42ms = %.2g, want ~3.0e7", float64(ticks))
	}
	if c.RDTSCTicks(0) != 0 || c.RDTSCTicks(-time.Second) != 0 {
		t.Fatal("non-positive durations must yield zero ticks")
	}
}

func TestIOModel(t *testing.T) {
	m := DefaultIO()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 GB/s reader: 1 GB takes ~0.5s.
	d := m.ReadTime(1 << 30)
	if d < 500*time.Millisecond || d > 550*time.Millisecond {
		t.Fatalf("1GB read time %v, want ~0.5s", d)
	}
	if m.ReadTime(0) != 0 || m.StoreTime(0) != 0 {
		t.Fatal("zero-byte I/O should cost nothing")
	}
	bad := DefaultIO()
	bad.ReaderBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	bad = DefaultIO()
	bad.ListioBatch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestListioBatchingAmortizesSyscalls(t *testing.T) {
	// §5.2.1: lio_listio batches multiple aio reads into one syscall,
	// so a bigger batch must never make reads slower.
	single := DefaultIO()
	single.ListioBatch = 1
	batched := DefaultIO()
	batched.ListioBatch = 8
	n := int64(64 << 10)
	if batched.ReadTime(n) >= single.ReadTime(n) {
		t.Fatal("lio_listio batching did not reduce read cost")
	}
}

func TestChunkModelCalibration(t *testing.T) {
	m := DefaultChunkModel()
	// Figure 12: the optimized pthreads implementation (with Hoard)
	// sustains ~0.4 GB/s on the 12-core host.
	hoard := m.Throughput(Hoard)
	if hoard < 0.3e9 || hoard > 0.5e9 {
		t.Fatalf("hoard throughput %.3f GB/s outside [0.3, 0.5]", hoard/1e9)
	}
	// Without Hoard the allocator serializes and throughput drops.
	malloc := m.Throughput(Malloc)
	if malloc >= hoard {
		t.Fatal("malloc contention did not reduce throughput")
	}
	if ratio := hoard / malloc; ratio < 1.1 || ratio > 1.5 {
		t.Fatalf("hoard/malloc ratio %.2f outside [1.1, 1.5]", ratio)
	}
}

func TestChunkTimeLinear(t *testing.T) {
	m := DefaultChunkModel()
	t1 := m.ChunkTime(128<<20, Hoard)
	t2 := m.ChunkTime(256<<20, Hoard)
	if r := float64(t2) / float64(t1); r < 1.99 || r > 2.01 {
		t.Fatalf("chunk time not linear: ratio %.3f", r)
	}
	if m.ChunkTime(0, Hoard) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
}

func TestAllocatorString(t *testing.T) {
	if Malloc.String() == Hoard.String() {
		t.Fatal("allocator strings collide")
	}
}
