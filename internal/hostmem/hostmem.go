// Package hostmem models host-side memory management for Shredder: the
// cost asymmetry between pageable and pinned (page-locked) allocation
// that motivates §4.1.2, and a real, reusable ring of pinned buffer
// regions (Figure 7) that amortizes the one-time pinning cost across
// the life of the pipeline.
package hostmem

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Model holds the calibrated allocation-cost constants behind Figure 6.
// All allocation times include touching every page (the paper bzero's
// the region to defeat Linux's optimistic allocation).
type Model struct {
	// PageableAllocNsPerByte is the cost of malloc + first-touch page
	// faults, in nanoseconds per byte (sub-nanosecond values are
	// meaningful, hence float64 rather than time.Duration).
	PageableAllocNsPerByte float64
	// PinnedAllocNsPerByte is the cost of cudaHostAlloc-style
	// page-locked allocation per byte (page locking, IOMMU
	// bookkeeping), in nanoseconds per byte.
	PinnedAllocNsPerByte float64
	// AllocSetup is the fixed syscall/driver entry cost per allocation.
	AllocSetup time.Duration
	// MemcpyBandwidth is the host memcpy throughput (pageable-to-pinned
	// staging in Figure 6).
	MemcpyBandwidth float64
	// HostRAM is the machine's physical memory (48 GB on the paper's
	// Xeon host).
	HostRAM int64
	// PinnedFractionLimit is the fraction of HostRAM that can be pinned
	// before paging pressure penalizes the rest of the system (§4.1.2:
	// "too many pinned memory pages ... increase paging activity").
	PinnedFractionLimit float64
	// PagingPenaltyFactor scales allocation costs once the pinned
	// fraction exceeds the limit.
	PagingPenaltyFactor float64
}

// Default returns the calibrated model: pinned allocation is roughly
// 8x dearer per byte than pageable allocation, and host memcpy runs at
// 8 GB/s.
func Default() Model {
	return Model{
		PageableAllocNsPerByte: 0.8 * 1e6 / (1 << 20), // 0.8 ms per MiB
		PinnedAllocNsPerByte:   6.4 * 1e6 / (1 << 20), // 6.4 ms per MiB
		AllocSetup:             30 * time.Microsecond,
		MemcpyBandwidth:        8e9,
		HostRAM:                48 << 30,
		PinnedFractionLimit:    0.25,
		PagingPenaltyFactor:    4,
	}
}

// PageableAllocTime models malloc + bzero of n bytes.
func (m Model) PageableAllocTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.AllocSetup + time.Duration(float64(n)*m.PageableAllocNsPerByte)
}

// PinnedAllocTime models page-locked allocation of n bytes, given the
// number of bytes already pinned on the host: past the pinned-fraction
// limit, paging pressure inflates the cost.
func (m Model) PinnedAllocTime(n, alreadyPinned int64) time.Duration {
	if n <= 0 {
		return 0
	}
	d := m.AllocSetup + time.Duration(float64(n)*m.PinnedAllocNsPerByte)
	if m.HostRAM > 0 && float64(alreadyPinned+n) > m.PinnedFractionLimit*float64(m.HostRAM) {
		d = time.Duration(float64(d) * m.PagingPenaltyFactor)
	}
	return d
}

// MemcpyTime models copying n bytes between host buffers (the
// pageable-to-pinned staging copy in Figure 6).
func (m Model) MemcpyTime(n int64) time.Duration {
	if n <= 0 || m.MemcpyBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.MemcpyBandwidth * 1e9)
}

// Region is one pinned buffer handed out by a Ring.
type Region struct {
	// Data is the real backing storage; callers fill it with stream
	// bytes before the (modeled) DMA.
	Data []byte
	idx  int
}

// Ring is the circular ring of pinned memory regions from §4.1.2
// (Figure 7): the regions are allocated (and their pinning cost paid)
// exactly once, then reused round-robin. Acquire hands out the oldest
// free region; Release returns it. The ring refuses to hand out a
// region still in flight, which the tests assert.
type Ring struct {
	model   Model
	regions []Region
	free    chan int
	mu      sync.Mutex
	held    []bool
	// AllocTime is the modeled one-time cost of building the ring.
	AllocTime time.Duration
}

// NewRing allocates count pinned regions of size bytes each.
func NewRing(model Model, count, size int) (*Ring, error) {
	if count < 1 {
		return nil, errors.New("hostmem: ring needs at least one region")
	}
	if size < 1 {
		return nil, errors.New("hostmem: region size must be positive")
	}
	r := &Ring{
		model: model,
		free:  make(chan int, count),
		held:  make([]bool, count),
	}
	var pinned int64
	for i := 0; i < count; i++ {
		r.AllocTime += model.PinnedAllocTime(int64(size), pinned)
		pinned += int64(size)
		r.regions = append(r.regions, Region{Data: make([]byte, size), idx: i})
		r.free <- i
	}
	return r, nil
}

// Regions returns the number of regions in the ring.
func (r *Ring) Regions() int { return len(r.regions) }

// RegionSize returns the size of each region in bytes.
func (r *Ring) RegionSize() int { return len(r.regions[0].Data) }

// Acquire returns a free region, blocking until one is released. It is
// safe for concurrent use.
func (r *Ring) Acquire() *Region {
	idx := <-r.free
	r.mu.Lock()
	r.held[idx] = true
	r.mu.Unlock()
	return &r.regions[idx]
}

// TryAcquire returns a free region or nil without blocking.
func (r *Ring) TryAcquire() *Region {
	select {
	case idx := <-r.free:
		r.mu.Lock()
		r.held[idx] = true
		r.mu.Unlock()
		return &r.regions[idx]
	default:
		return nil
	}
}

// Release returns a region to the ring. Releasing a region twice
// panics: it would let two pipeline stages scribble on the same pinned
// pages.
func (r *Ring) Release(reg *Region) {
	if reg == nil || reg.idx < 0 || reg.idx >= len(r.regions) || &r.regions[reg.idx] != reg {
		panic("hostmem: release of foreign region")
	}
	r.mu.Lock()
	if !r.held[reg.idx] {
		r.mu.Unlock()
		panic(fmt.Sprintf("hostmem: double release of region %d", reg.idx))
	}
	r.held[reg.idx] = false
	r.mu.Unlock()
	r.free <- reg.idx
}
