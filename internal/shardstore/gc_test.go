package shardstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shredder/internal/dedup"
)

// splitStream cuts a byte stream into fixed test chunks (content-
// defined boundaries are irrelevant to GC semantics).
func splitStream(data []byte, size int) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// ingestNamed writes chunks as a named stream and returns its recipe.
func ingestNamed(t *testing.T, s *Store, name string, chunks [][]byte) Recipe {
	t.Helper()
	r, _, err := s.WriteStream(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRecipe(name, r); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDeleteRecipeReleasesRefcounts: deleting a recipe decrements one
// reference per entry; chunks reaching zero leave the index, Missing
// and the presence set, while shared chunks survive with exact counts.
func TestDeleteRecipeReleasesRefcounts(t *testing.T) {
	s, err := New(4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	shared := []byte("shared-chunk-body-used-by-both-streams")
	onlyA := []byte("chunk-only-stream-a-references")
	onlyB := []byte("chunk-only-stream-b-references")
	ingestNamed(t, s, "a", [][]byte{shared, onlyA, shared})
	ingestNamed(t, s, "b", [][]byte{onlyB, shared})

	if rc := s.Refcount(dedup.Sum(shared)); rc != 3 {
		t.Fatalf("shared refcount %d, want 3", rc)
	}
	ds, err := s.DeleteRecipe("a")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ChunksReleased != 3 || ds.ChunksFreed != 1 || ds.BytesFreed != int64(len(onlyA)) {
		t.Fatalf("delete stats %+v", ds)
	}
	if rc := s.Refcount(dedup.Sum(shared)); rc != 1 {
		t.Fatalf("shared refcount after delete %d, want 1", rc)
	}
	if _, ok := s.Has(dedup.Sum(onlyA)); ok {
		t.Fatal("a-only chunk survived the delete")
	}
	if _, ok := s.Has(dedup.Sum(onlyB)); !ok {
		t.Fatal("b-only chunk lost")
	}
	if _, ok := s.Recipe("a"); ok {
		t.Fatal("recipe a still recorded")
	}
	// Missing reflects the drop: the freed hash is missing again.
	hs := []Hash{dedup.Sum(shared), dedup.Sum(onlyA), dedup.Sum(onlyB)}
	if got := fmt.Sprint(s.Missing(hs)); got != "[1]" {
		t.Fatalf("Missing = %v, want [1]", got)
	}
	// Stream b still reconstructs byte-exactly.
	rb, _ := s.Recipe("b")
	data, err := s.Reconstruct(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, append(append([]byte(nil), onlyB...), shared...)) {
		t.Fatal("stream b reconstruction differs after deleting a")
	}
	// Deleting b empties the store.
	if _, err := s.DeleteRecipe("b"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (dedup.Stats{}) {
		t.Fatalf("store not empty after deleting everything: %+v", st)
	}
}

// TestRecommitReleasesReplacedRecipe: re-committing a stream under a
// fixed name (the nightly-backup pattern) must release the replaced
// recipe's references — otherwise every replacement pins its chunks
// forever and the store still only grows. The resulting stats match a
// store that only ever saw the final generation.
func TestRecommitReleasesReplacedRecipe(t *testing.T) {
	gen1 := splitStream(bytes.Repeat([]byte("night-one-content!!!"), 400), 300)
	gen2 := splitStream(bytes.Repeat([]byte("night-TWO-content!!!"), 400), 300)

	s, err := New(4, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ingestNamed(t, s, "vm", gen1)
	ingestNamed(t, s, "vm", gen2) // replaces, releasing gen1's refs

	fresh, err := New(4, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ingestNamed(t, fresh, "vm", gen2)
	if got, want := s.Stats(), fresh.Stats(); got != want {
		t.Fatalf("stats after replacement %+v, fresh-store stats %+v", got, want)
	}
	if _, ok := s.Has(dedup.Sum(gen1[0])); ok {
		t.Fatal("replaced recipe's chunk still pinned")
	}
	r, _ := s.Recipe("vm")
	data, err := s.Reconstruct(r)
	if err != nil || !bytes.Equal(data, bytes.Join(gen2, nil)) {
		t.Fatalf("replacement recipe broken: %v", err)
	}
}

// TestDeleteUnknownRecipe: the error is typed and nothing changes.
func TestDeleteUnknownRecipe(t *testing.T) {
	s, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteRecipe("ghost"); !errors.Is(err, ErrUnknownRecipe) {
		t.Fatalf("DeleteRecipe(ghost) = %v, want ErrUnknownRecipe", err)
	}
}

// TestStatsAfterDeleteMatchFresh is the differential form of the
// accounting guarantee: ingesting X and Y then deleting Y must leave
// exactly the Stats of a fresh store that only ever saw X.
func TestStatsAfterDeleteMatchFresh(t *testing.T) {
	x := splitStream(bytes.Repeat([]byte("alpha-bravo-charlie-"), 500), 300)
	y := splitStream(bytes.Repeat([]byte("alpha-bravo-DELTA!!-"), 400), 300)

	both, err := New(8, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ingestNamed(t, both, "x", x)
	ingestNamed(t, both, "y", y)
	if _, err := both.DeleteRecipe("y"); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(8, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ingestNamed(t, fresh, "x", x)

	if bs, fs := both.Stats(), fresh.Stats(); bs != fs {
		t.Fatalf("stats after delete %+v, fresh-store stats %+v", bs, fs)
	}
	for i, c := range x {
		if both.Refcount(dedup.Sum(c)) != fresh.Refcount(dedup.Sum(c)) {
			t.Fatalf("chunk %d refcount diverges", i)
		}
	}
}

// chunk256 builds a distinct 256-byte test chunk.
func chunk256(tag string, i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("%s%03d-", tag, i)), 32)
}

// TestCompactMemoryReclaims: after a delete leaves containers mostly
// dead, Compact re-packs the survivors, drops the victims, and every
// retained stream still reconstructs — with Stats untouched.
func TestCompactMemoryReclaims(t *testing.T) {
	s, err := New(1, 1<<10) // 1 KiB containers: 4 chunks each
	if err != nil {
		t.Fatal(err)
	}
	// Layout (single shard, insertion order): c0 = k0..k3 (fully live
	// later), c1 = d0 k4 d1 k5 and c2 = d2 d3 k6 k7 (half dead later),
	// c3 = f0 (open).
	var keepChunks, dropChunks [][]byte
	for i := 0; i < 8; i++ {
		keepChunks = append(keepChunks, chunk256("keep", i))
	}
	for i := 0; i < 4; i++ {
		dropChunks = append(dropChunks, chunk256("drop", i))
	}
	order := [][]byte{
		keepChunks[0], keepChunks[1], keepChunks[2], keepChunks[3],
		dropChunks[0], keepChunks[4], dropChunks[1], keepChunks[5],
		dropChunks[2], dropChunks[3], keepChunks[6], keepChunks[7],
		chunk256("fill", 0),
	}
	for _, c := range order {
		if _, _, err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	var keep, drop, fill Recipe
	for _, c := range keepChunks {
		keep = append(keep, dedup.Sum(c))
	}
	for _, c := range dropChunks {
		drop = append(drop, dedup.Sum(c))
	}
	fill = Recipe{dedup.Sum(chunk256("fill", 0))}
	for name, r := range map[string]Recipe{"keep": keep, "drop": drop, "fill": fill} {
		if err := s.CommitRecipe(name, r); err != nil {
			t.Fatal(err)
		}
	}
	keepData := bytes.Join(keepChunks, nil)
	containersBefore := s.Containers()

	if _, err := s.DeleteRecipe("drop"); err != nil {
		t.Fatal(err)
	}
	statsBefore := s.Stats()
	cs, err := s.Compact(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Containers != 2 || cs.ReclaimedBytes != 1024 || cs.MovedBytes != 1024 {
		t.Fatalf("compaction stats %+v, want 2 containers / 1024 reclaimed / 1024 moved", cs)
	}
	if s.Stats() != statsBefore {
		t.Fatalf("compaction changed stats: %+v != %+v", s.Stats(), statsBefore)
	}
	// Container slots are stable (dropped ones keep their number; the
	// re-packed bytes may have rolled new slots at the end).
	if s.Containers() < containersBefore {
		t.Fatalf("container slots shrank: %d < %d", s.Containers(), containersBefore)
	}
	dropped := 0
	sh := s.shards[0]
	for ci := 0; ci < sh.back.Containers(); ci++ {
		if sh.back.ContainerLen(ci) < 0 {
			dropped++
		}
	}
	if dropped != cs.Containers {
		t.Fatalf("%d slots dropped, stats say %d", dropped, cs.Containers)
	}
	// The retained streams read back byte-exactly through the index.
	data, err := s.Reconstruct(keep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, keepData) {
		t.Fatal("retained stream corrupted by compaction")
	}
	if data, err := s.Reconstruct(fill); err != nil || !bytes.Equal(data, chunk256("fill", 0)) {
		t.Fatalf("fill stream corrupted by compaction: %v", err)
	}
	// A second pass finds nothing left to do.
	cs2, err := s.Compact(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Containers != 0 {
		t.Fatalf("second compaction still found victims: %+v", cs2)
	}
	// The store keeps working after compaction.
	if _, _, err := s.Put([]byte("post-compaction chunk")); err != nil {
		t.Fatal(err)
	}
}

// TestCompactThresholdZero only reclaims fully-dead containers.
func TestCompactThresholdZero(t *testing.T) {
	s, err := New(1, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Two streams interleaved chunk by chunk: every container holds live
	// bytes from "keep", so threshold 0 must not touch any of them...
	var mixedKeep, mixedDrop [][]byte
	for i := 0; i < 8; i++ {
		mixedKeep = append(mixedKeep, bytes.Repeat([]byte(fmt.Sprintf("keep%02d-", i)), 36))
		mixedDrop = append(mixedDrop, bytes.Repeat([]byte(fmt.Sprintf("drop%02d-", i)), 36))
	}
	var keepRecipe, dropRecipe Recipe
	for i := range mixedKeep {
		if _, _, err := s.Put(mixedKeep[i]); err != nil {
			t.Fatal(err)
		}
		keepRecipe = append(keepRecipe, dedup.Sum(mixedKeep[i]))
		if _, _, err := s.Put(mixedDrop[i]); err != nil {
			t.Fatal(err)
		}
		dropRecipe = append(dropRecipe, dedup.Sum(mixedDrop[i]))
	}
	if err := s.CommitRecipe("keep", keepRecipe); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitRecipe("drop", dropRecipe); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteRecipe("drop"); err != nil {
		t.Fatal(err)
	}
	cs, err := s.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Containers != 0 {
		t.Fatalf("threshold 0 compacted half-live containers: %+v", cs)
	}
	// ...while a high threshold rewrites them all.
	cs, err = s.Compact(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Containers == 0 {
		t.Fatal("high threshold found no victims in half-dead containers")
	}
	data, err := s.Reconstruct(keepRecipe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, bytes.Join(mixedKeep, nil)) {
		t.Fatal("keep stream corrupted")
	}
}

// TestPinBlocksDelete: a chunk pinned by PinBatch (the dedup wire
// path's reservation) survives the deletion of every recipe that
// referenced it — the resurrect-or-lose guarantee at store level.
func TestPinBlocksDelete(t *testing.T) {
	s, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("chunk a concurrent backup is about to skip")
	h := dedup.Sum(body)
	ingestNamed(t, s, "old", [][]byte{body})
	// A concurrent dedup stream pins before the delete lands.
	if _, missing, err := s.PinBatch([]Hash{h}); err != nil || len(missing) != 0 {
		t.Fatalf("pin: %v, missing %v", err, missing)
	}
	if _, err := s.DeleteRecipe("old"); err != nil {
		t.Fatal(err)
	}
	if rc := s.Refcount(h); rc != 1 {
		t.Fatalf("pinned chunk refcount %d after delete, want 1", rc)
	}
	data, ok, err := s.GetByHash(h)
	if err != nil || !ok || !bytes.Equal(data, body) {
		t.Fatalf("pinned chunk unreadable after delete: %v %v", ok, err)
	}
	// The pinned stream commits; deleting it then frees the chunk.
	if err := s.CommitRecipe("new", Recipe{h}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteRecipe("new"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Has(h); ok {
		t.Fatal("chunk survived its last release")
	}
}
