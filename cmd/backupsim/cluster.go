package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/cluster"
	"shredder/internal/ingest"
	"shredder/internal/persist"
	"shredder/internal/shardstore"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

// simDisk wraps a durable backing and adds a fixed device-commit
// latency to every durability point, modeling one commodity disk per
// node. The CI host needs this to show what the cluster actually
// buys: its lone virtio disk acknowledges fsyncs from host cache in
// ~0.2ms and funnels every node through one shared ext4 journal, so
// co-hosted "independent" disks barely overlap no matter how the
// writes are routed. A real deployment has one spindle/SSD per node
// with millisecond-class flushes that overlap fully. The latency is
// injected identically into the single-node baseline and every
// cluster node, and is reported in BENCH_cluster.json.
type simDisk struct {
	shardstore.Backing
	lat time.Duration
}

func (d *simDisk) Shard(i int) shardstore.ShardBacking {
	return &simDiskShard{d.Backing.Shard(i), d.lat}
}

func (d *simDisk) CommitRecipe(name string, r shardstore.Recipe) error {
	err := d.Backing.CommitRecipe(name, r)
	time.Sleep(d.lat)
	return err
}

func (d *simDisk) DeleteRecipe(name string) error {
	err := d.Backing.DeleteRecipe(name)
	time.Sleep(d.lat)
	return err
}

type simDiskShard struct {
	shardstore.ShardBacking
	lat time.Duration
}

func (s *simDiskShard) Commit() error {
	err := s.ShardBacking.Commit()
	time.Sleep(s.lat)
	return err
}

// clusterNode is one in-process shredderd behind the router.
type clusterNode struct {
	srv   *ingest.Server
	ln    net.Listener
	store interface{ Close() error }
	dir   string
}

func (n *clusterNode) shutdown() {
	n.ln.Close()
	n.srv.Shutdown(2 * time.Second)
	if n.store != nil {
		n.store.Close()
	}
	if n.dir != "" {
		os.RemoveAll(n.dir)
	}
}

// bootClusterNodes starts n in-process shredderd nodes on loopback
// TCP. durable nodes get a persist-backed store (fsync always, one
// shard — the worst case the bench wants) in a temp dir each, with
// diskLat of simulated device-commit latency on every durability
// point (0: the raw host disk).
func bootClusterNodes(n int, cfg ingest.Config, durable bool, diskLat time.Duration) ([]*clusterNode, cluster.Topology, error) {
	var nodes []*clusterNode
	var topo cluster.Topology
	fail := func(err error) ([]*clusterNode, cluster.Topology, error) {
		for _, nd := range nodes {
			nd.shutdown()
		}
		return nil, cluster.Topology{}, err
	}
	for i := 0; i < n; i++ {
		nd := &clusterNode{}
		var err error
		if durable {
			nd.dir, err = os.MkdirTemp("", "clusterbench-node-")
			if err != nil {
				return fail(err)
			}
			b, err := persist.Open(nd.dir, persist.Options{
				Shards: 1, Fsync: persist.FsyncPolicy{Mode: persist.FsyncAlways},
			})
			if err != nil {
				return fail(err)
			}
			var backing shardstore.Backing = b
			if diskLat > 0 {
				backing = &simDisk{Backing: b, lat: diskLat}
			}
			store, err := shardstore.Open(backing)
			if err != nil {
				b.Close()
				return fail(err)
			}
			nd.store = store
			nd.srv, err = ingest.NewServerWithStore(cfg, store)
			if err != nil {
				store.Close()
				return fail(err)
			}
		} else {
			nd.srv, err = ingest.NewServer(cfg)
			if err != nil {
				return fail(err)
			}
		}
		nd.ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		go nd.srv.Serve(nd.ln)
		nodes = append(nodes, nd)
		topo.Nodes = append(topo.Nodes, cluster.Node{
			ID:   fmt.Sprintf("n%d", i),
			Addr: nd.ln.Addr().String(),
		})
	}
	return nodes, topo, nil
}

// startClusterRouter puts a router in front of the topology and
// returns its client address plus a shutdown func. vnodes ≤ 0 keeps
// the ring default.
func startClusterRouter(topo cluster.Topology, spec chunk.Spec, vnodes int) (string, func(), error) {
	c, err := cluster.New(cluster.Config{Topology: topo, Vnodes: vnodes, Spec: spec, Tracer: tracer})
	if err != nil {
		return "", nil, err
	}
	r := cluster.NewRouter(c, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return "", nil, err
	}
	go r.Serve(ln)
	stop := func() {
		ln.Close()
		r.Shutdown(2 * time.Second)
		c.Close()
	}
	return ln.Addr().String(), stop, nil
}

// runCluster is the -cluster N mode: boot N in-process nodes and a
// router, run the ordinary client series through the router (the
// client is completely unaware it is talking to a cluster), verify
// every stream restores byte-exactly, and report how the chunks
// sharded across the nodes.
func runCluster(n int, prefix string, spec *chunk.Spec, dedupWire bool, size, snapshots int, prob float64, seed int64) (*runSummary, error) {
	cspec := cluster.DefaultSpec()
	if spec != nil {
		cspec = *spec
	}
	nodes, topo, err := bootClusterNodes(n, simConfig(), false, 0)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, nd := range nodes {
			nd.shutdown()
		}
	}()
	addr, stopRouter, err := startClusterRouter(topo, cspec, 0)
	if err != nil {
		return nil, err
	}
	defer stopRouter()
	fmt.Fprintf(human, "cluster: %d nodes behind router %s\n", n, addr)

	sum, err := runClient(addr, prefix, spec, dedupWire, size, snapshots, prob, seed)
	if err != nil {
		return nil, err
	}
	sum.Mode = "cluster"

	// Verify through the router: the re-interleaved restores must be
	// byte-identical to the originals.
	im := workload.NewImage(seed, size, 64<<10, prob)
	v, err := ingest.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	if err := v.Verify(prefix+"-master", im.Master); err != nil {
		return nil, fmt.Errorf("routed restore of master: %w", err)
	}
	for i := 1; i <= snapshots; i++ {
		name := fmt.Sprintf("%s-snapshot-%d", prefix, i)
		if err := v.Verify(name, im.Snapshot(seed+int64(i))); err != nil {
			return nil, fmt.Errorf("routed restore of %s: %w", name, err)
		}
	}

	fmt.Fprintf(human, "restores verified; distribution across %d nodes:\n", n)
	for i, nd := range nodes {
		st := nd.srv.Store().Stats()
		fmt.Fprintf(human, "  node n%d: %s stored, %d unique chunks, %d recipes\n",
			i, stats.Bytes(st.StoredBytes), st.UniqueChunks,
			len(nd.srv.Store().RecipeNames()))
	}
	return sum, nil
}

// clusterBenchSide is one half of BENCH_cluster.json.
type clusterBenchSide struct {
	Nodes           int       `json:"nodes"`
	Seconds         float64   `json:"seconds"` // median of the iterations
	IterSeconds     []float64 `json:"iter_seconds"`
	ThroughputMBps  float64   `json:"throughput_mb_s"`
	NodeStoredBytes []int64   `json:"node_stored_bytes"`
}

// clusterBenchResult is the BENCH_cluster.json artifact: the same
// durability-bound ingest series against one plain shredderd and
// against an N-node routed cluster.
type clusterBenchResult struct {
	ImageMB       int              `json:"image_mb"`
	Snapshots     int              `json:"snapshots"`
	Prob          float64          `json:"prob"`
	AvgChunkBytes int              `json:"avg_chunk_bytes"`
	Batch         int              `json:"batch"`
	Fsync         string           `json:"fsync"`
	SimDiskMs     float64          `json:"sim_disk_commit_ms"`
	ShardsPerNode int              `json:"shards_per_node"`
	Iterations    int              `json:"iterations"`
	Single        clusterBenchSide `json:"single"`
	Cluster       clusterBenchSide `json:"cluster"`
	Speedup       float64          `json:"speedup"`
}

// runClusterBench writes BENCH_cluster.json: ingest throughput of the
// same series against 1 node vs n routed nodes, all persist-backed
// with -fsync always and a single store shard per node. That setup is
// commit-latency-bound — every batch waits on a device commit (see
// simDisk for why the device is modeled) — which is exactly where a
// cluster pays off: a single node waits out its commits one after
// another in stream order, while the router's fan-out lets the N
// nodes' commits run concurrently. CPU work (chunking, hashing) does
// not scale on one core; the speedup measures overlapped durability
// alone.
//
// Each side runs benchIters times against fresh stores, the sides
// alternating within each iteration, and reports the median — fsync
// latency on a shared journal drifts between runs, and a single
// sample either way is noise.
func runClusterBench(path string, n, size int, seed int64) error {
	const (
		avgChunk   = 2 << 10 // small chunks: many batches, commit-dominated
		batchSize  = 8
		snapshots  = 2
		prob       = 0.5
		benchVn    = 256 // tighter arc balance than the default 64: the slowest node sets the wall clock
		benchIters = 3
		simDiskLat = time.Millisecond // per-node device commit (conservative even for SSD flush)
	)
	// The harness co-hosts the client, router and every node in one
	// process. Under a 1-CPU cgroup Go then defaults GOMAXPROCS to 1,
	// and the runtime's delayed syscall handoff keeps the lone P parked
	// behind every fsync — an artifact the real deployment (separate
	// processes) does not have. Give both sides the same headroom.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	spec := chunk.FastCDCSpec(avgChunk)
	cfg := simConfig()
	cfg.Shards = 1
	cfg.BatchSize = batchSize
	cfg.Shredder.Chunking = spec // single-node raw sessions chunk with the same spec

	im := workload.NewImage(seed, size, 64<<10, prob)
	series := []struct {
		name string
		data []byte
	}{{"bench-master", im.Master}}
	for i := 1; i <= snapshots; i++ {
		series = append(series, struct {
			name string
			data []byte
		}{fmt.Sprintf("bench-snapshot-%d", i), im.Snapshot(seed + int64(i))})
	}
	var logical int64
	for _, s := range series {
		logical += int64(len(s.data))
	}

	iterate := func(nodes int) (float64, []int64, error) {
		nds, topo, err := bootClusterNodes(nodes, cfg, true, simDiskLat)
		if err != nil {
			return 0, nil, err
		}
		defer func() {
			for _, nd := range nds {
				nd.shutdown()
			}
		}()
		// One node is driven directly — the baseline an operator has
		// today. More nodes sit behind the router.
		addr := topo.Nodes[0].Addr
		var stopRouter func()
		if nodes > 1 {
			addr, stopRouter, err = startClusterRouter(topo, spec, benchVn)
			if err != nil {
				return 0, nil, err
			}
			defer stopRouter()
		}
		sess, err := ingest.Dial(addr)
		if err != nil {
			return 0, nil, err
		}
		defer sess.Close()

		start := time.Now()
		for _, s := range series {
			if _, err := sess.BackupBytes(s.name, s.data); err != nil {
				return 0, nil, fmt.Errorf("%d-node ingest of %s: %w", nodes, s.name, err)
			}
		}
		secs := time.Since(start).Seconds()

		for _, s := range series {
			if err := sess.Verify(s.name, s.data); err != nil {
				return 0, nil, fmt.Errorf("%d-node verify of %s: %w", nodes, s.name, err)
			}
		}
		var stored []int64
		for _, nd := range nds {
			stored = append(stored, nd.srv.Store().Stats().StoredBytes)
		}
		return secs, stored, nil
	}

	// The two sides alternate within each iteration: fsync latency on a
	// shared journal drifts over tens of seconds, and back-to-back
	// sampling keeps both sides under the same disk conditions.
	single := clusterBenchSide{Nodes: 1}
	multi := clusterBenchSide{Nodes: n}
	for it := 0; it < benchIters; it++ {
		for _, side := range []*clusterBenchSide{&single, &multi} {
			secs, stored, err := iterate(side.Nodes)
			if err != nil {
				return err
			}
			side.IterSeconds = append(side.IterSeconds, secs)
			side.NodeStoredBytes = stored
			fmt.Fprintf(human, "  [%d node(s) iter %d] %s in %.2fs\n",
				side.Nodes, it+1, stats.Bytes(logical), secs)
		}
	}
	for _, side := range []*clusterBenchSide{&single, &multi} {
		med := append([]float64(nil), side.IterSeconds...)
		sort.Float64s(med)
		side.Seconds = med[len(med)/2]
		side.ThroughputMBps = float64(logical) / (1 << 20) / side.Seconds
		fmt.Fprintf(human, "%d node(s): median %.2fs (%.1f MB/s)\n",
			side.Nodes, side.Seconds, side.ThroughputMBps)
	}
	res := clusterBenchResult{
		ImageMB:       size >> 20,
		Snapshots:     snapshots,
		Prob:          prob,
		AvgChunkBytes: avgChunk,
		Batch:         batchSize,
		Fsync:         "always",
		SimDiskMs:     simDiskLat.Seconds() * 1000,
		ShardsPerNode: 1,
		Iterations:    benchIters,
		Single:        single,
		Cluster:       multi,
		Speedup:       multi.ThroughputMBps / single.ThroughputMBps,
	}
	fmt.Fprintf(human, "speedup %d nodes vs 1: %.2fx\n", n, res.Speedup)
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
