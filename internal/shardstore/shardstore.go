// Package shardstore implements a sharded, lock-striped, concurrency-
// safe content-addressed chunk store: the service-grade successor to
// the single-goroutine dedup.Store. The fingerprint space is split into
// N independent shards keyed by a hash prefix; each shard owns its own
// index, container set and reference counts behind its own lock, so
// concurrent sessions ingesting into disjoint regions of the hash space
// never contend. Aggregate statistics are maintained with atomics and
// are exact whenever the store is quiescent.
//
// Semantics are byte-identical to dedup.Store: the same sequence of
// Put calls classifies exactly the same chunks as duplicates, produces
// the same aggregate Stats, and reconstructs streams byte-exactly.
// With a single shard the packing (container/offset/length of every
// ref) is identical to dedup.Store as well; the differential test in
// this package asserts both properties.
package shardstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shredder/internal/dedup"
)

// Hash is a chunk fingerprint (re-exported so callers need not import
// dedup just for the type).
type Hash = dedup.Hash

// Ref locates a stored chunk: a shard, a container within the shard,
// and a byte range within the container.
type Ref struct {
	Shard     int
	Container int
	Offset    int64
	Length    int64
}

// Recipe is the ordered list of refs that reconstructs one stream.
type Recipe []Ref

// MaxShards bounds the shard count; 1024 shards of independent maps is
// far past the point of diminishing returns for in-memory indexes.
const MaxShards = 1024

// shard is one stripe of the store. All fields but the immutable idx
// are guarded by mu.
type shard struct {
	mu            sync.RWMutex
	idx           int // this shard's position in Store.shards
	containerSize int64
	containers    [][]byte
	index         map[Hash]Ref
	refcount      map[Hash]int64
}

// Store is a sharded deduplicating chunk store. All methods are safe
// for concurrent use by any number of goroutines.
type Store struct {
	shards []*shard
	mask   uint32

	// Aggregate statistics, maintained atomically.
	logical atomic.Int64
	stored  atomic.Int64
	chunks  atomic.Int64
	unique  atomic.Int64
	hits    atomic.Int64
}

// New returns an empty store with the given shard count (a power of two
// in [1, MaxShards]; 0 means 16) and container size (0 means
// dedup.DefaultContainerSize).
func New(shards int, containerSize int64) (*Store, error) {
	if shards == 0 {
		shards = 16
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shardstore: shard count %d outside [1, %d]", shards, MaxShards)
	}
	if shards&(shards-1) != 0 {
		return nil, fmt.Errorf("shardstore: shard count %d is not a power of two", shards)
	}
	if containerSize < 0 {
		return nil, errors.New("shardstore: negative container size")
	}
	if containerSize == 0 {
		containerSize = dedup.DefaultContainerSize
	}
	s := &Store{shards: make([]*shard, shards), mask: uint32(shards - 1)}
	for i := range s.shards {
		s.shards[i] = &shard{
			idx:           i,
			containerSize: containerSize,
			index:         make(map[Hash]Ref),
			refcount:      make(map[Hash]int64),
		}
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardFor maps a fingerprint to its shard by high-order prefix.
func (s *Store) shardFor(h Hash) *shard {
	return s.shards[binary.BigEndian.Uint32(h[:4])&s.mask]
}

// Put stores one chunk, returning its location and whether it was a
// duplicate of existing content.
func (s *Store) Put(data []byte) (Ref, bool) {
	return s.PutHashed(dedup.Sum(data), data)
}

// PutHashed stores one chunk whose fingerprint the caller has already
// computed — the entry point for protocols that ship hashes ahead of
// data (client-side matching), and the primitive Put builds on.
func (s *Store) PutHashed(h Hash, data []byte) (Ref, bool) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	ref, dup := sh.put(h, data)
	sh.mu.Unlock()
	s.account(int64(len(data)), dup)
	return ref, dup
}

// account updates the aggregate counters for one stored chunk.
func (s *Store) account(n int64, dup bool) {
	s.chunks.Add(1)
	s.logical.Add(n)
	if dup {
		s.hits.Add(1)
	} else {
		s.unique.Add(1)
		s.stored.Add(n)
	}
}

// put is the single-shard insert; the caller holds sh.mu.
func (sh *shard) put(h Hash, data []byte) (Ref, bool) {
	if ref, ok := sh.index[h]; ok {
		sh.refcount[h]++
		return ref, true
	}
	ref := sh.append(data)
	sh.index[h] = ref
	sh.refcount[h] = 1
	return ref, false
}

// append packs data into the shard's open container, identical to
// dedup.Store.append. Containers are append-only: bytes at an occupied
// offset are never rewritten, so refs handed out remain valid views.
func (sh *shard) append(data []byte) Ref {
	if len(sh.containers) == 0 || int64(len(sh.containers[len(sh.containers)-1]))+int64(len(data)) > sh.containerSize {
		sh.containers = append(sh.containers, make([]byte, 0, sh.containerSize))
	}
	ci := len(sh.containers) - 1
	c := sh.containers[ci]
	ref := Ref{Shard: sh.idx, Container: ci, Offset: int64(len(c)), Length: int64(len(data))}
	sh.containers[ci] = append(c, data...)
	return ref
}

// Has reports whether a chunk with fingerprint h is already stored —
// the Matching step (§2.1, step 3) — without writing anything.
func (s *Store) Has(h Hash) (Ref, bool) {
	sh := s.shardFor(h)
	sh.mu.RLock()
	ref, ok := sh.index[h]
	sh.mu.RUnlock()
	return ref, ok
}

// HasBatch answers one Matching query per fingerprint, grouping the
// queries by shard so each stripe lock is taken at most once.
func (s *Store) HasBatch(hs []Hash) []bool {
	out := make([]bool, len(hs))
	s.byShard(hs, func(sh *shard, idxs []int) {
		sh.mu.RLock()
		for _, i := range idxs {
			_, out[i] = sh.index[hs[i]]
		}
		sh.mu.RUnlock()
	})
	return out
}

// PutBatch stores a batch of chunks in order, grouping the inserts by
// shard so each stripe lock is taken at most once per batch. Refs and
// duplicate flags come back in input order. The classification is
// identical to calling Put sequentially: a chunk repeated within the
// batch maps to the same shard and is seen there in input order.
func (s *Store) PutBatch(chunks [][]byte) ([]Ref, []bool) {
	refs := make([]Ref, len(chunks))
	dup := make([]bool, len(chunks))
	hs := make([]Hash, len(chunks))
	for i, c := range chunks {
		hs[i] = dedup.Sum(c)
	}
	var logical, stored int64
	var dups, uniques int64
	s.byShard(hs, func(sh *shard, idxs []int) {
		sh.mu.Lock()
		for _, i := range idxs {
			refs[i], dup[i] = sh.put(hs[i], chunks[i])
			logical += int64(len(chunks[i]))
			if dup[i] {
				dups++
			} else {
				uniques++
				stored += int64(len(chunks[i]))
			}
		}
		sh.mu.Unlock()
	})
	s.chunks.Add(int64(len(chunks)))
	s.logical.Add(logical)
	s.hits.Add(dups)
	s.unique.Add(uniques)
	s.stored.Add(stored)
	return refs, dup
}

// byShard partitions hash indices by destination shard and invokes fn
// once per non-empty shard, preserving input order within each group.
func (s *Store) byShard(hs []Hash, fn func(sh *shard, idxs []int)) {
	if len(hs) == 0 {
		return
	}
	groups := make(map[uint32][]int, len(s.shards))
	for i, h := range hs {
		si := binary.BigEndian.Uint32(h[:4]) & s.mask
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		fn(s.shards[si], idxs)
	}
}

// Get returns the bytes of a stored chunk. The returned slice is a
// read-only view into the shard's container and stays valid because
// containers are append-only.
func (s *Store) Get(ref Ref) ([]byte, error) {
	if ref.Shard < 0 || ref.Shard >= len(s.shards) {
		return nil, fmt.Errorf("shardstore: shard %d out of range", ref.Shard)
	}
	sh := s.shards[ref.Shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if ref.Container < 0 || ref.Container >= len(sh.containers) {
		return nil, fmt.Errorf("shardstore: container %d out of range in shard %d", ref.Container, ref.Shard)
	}
	c := sh.containers[ref.Container]
	if ref.Offset < 0 || ref.Length < 0 || ref.Offset+ref.Length > int64(len(c)) {
		return nil, fmt.Errorf("shardstore: ref %+v outside container", ref)
	}
	return c[ref.Offset : ref.Offset+ref.Length : ref.Offset+ref.Length], nil
}

// Stats returns the aggregate statistics. Each field is maintained
// atomically; when the store is quiescent the snapshot is exact and
// equal to what dedup.Store would report for the same inputs.
func (s *Store) Stats() dedup.Stats {
	return dedup.Stats{
		LogicalBytes: s.logical.Load(),
		StoredBytes:  s.stored.Load(),
		Chunks:       s.chunks.Load(),
		UniqueChunks: s.unique.Load(),
		IndexHits:    s.hits.Load(),
	}
}

// Containers returns the total number of containers across all shards.
func (s *Store) Containers() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.containers)
		sh.mu.RUnlock()
	}
	return total
}

// Refcount returns the current reference count for a fingerprint.
func (s *Store) Refcount(h Hash) int64 {
	sh := s.shardFor(h)
	sh.mu.RLock()
	n := sh.refcount[h]
	sh.mu.RUnlock()
	return n
}

// WriteStream stores an already-chunked stream, returning its recipe
// and the number of duplicate chunks.
func (s *Store) WriteStream(chunks [][]byte) (Recipe, int) {
	refs, dup := s.PutBatch(chunks)
	dups := 0
	for _, d := range dup {
		if d {
			dups++
		}
	}
	return Recipe(refs), dups
}

// Reconstruct concatenates a recipe's chunks back into the original
// stream.
func (s *Store) Reconstruct(r Recipe) ([]byte, error) {
	var total int64
	for _, ref := range r {
		total += ref.Length
	}
	out := make([]byte, 0, total)
	for _, ref := range r {
		data, err := s.Get(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}
