// Package dedup implements the duplicate-identification machinery
// downstream of chunking (§2.1 steps 2 and 3): collision-resistant
// chunk hashing, an in-memory fingerprint index, a container-based
// chunk store with reference counting, and file recipes that
// reconstruct original content byte-exactly.
package dedup

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// Hash is a chunk's collision-resistant digest.
type Hash = [sha256.Size]byte

// Sum hashes chunk content.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// Ref locates a stored chunk.
type Ref struct {
	// Container indexes the container holding the chunk.
	Container int
	// Offset and Length locate the chunk within the container.
	Offset int64
	Length int64
}

// Stats summarizes deduplication effectiveness.
type Stats struct {
	// LogicalBytes is the total size of everything written.
	LogicalBytes int64
	// StoredBytes is the unique data actually kept.
	StoredBytes int64
	// Chunks and UniqueChunks count writes and distinct contents.
	Chunks       int64
	UniqueChunks int64
	// IndexHits counts writes resolved as duplicates.
	IndexHits int64
}

// Ratio returns logical/stored, the deduplication factor (>= 1).
func (s Stats) Ratio() float64 {
	if s.StoredBytes == 0 {
		if s.LogicalBytes == 0 {
			return 1
		}
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.StoredBytes)
}

// Saved returns the bytes avoided by deduplication.
func (s Stats) Saved() int64 { return s.LogicalBytes - s.StoredBytes }

// Store is a deduplicating chunk store: content-addressed chunks packed
// into append-only containers. The zero value is not usable; call
// NewStore.
type Store struct {
	containerSize int64
	containers    [][]byte
	index         map[Hash]Ref
	refcount      map[Hash]int64
	stats         Stats
}

// DefaultContainerSize packs chunks into 4 MB containers, a common
// figure in deduplicating backup systems.
const DefaultContainerSize = 4 << 20

// NewStore returns an empty store with the given container size
// (0 means DefaultContainerSize).
func NewStore(containerSize int64) (*Store, error) {
	if containerSize < 0 {
		return nil, errors.New("dedup: negative container size")
	}
	if containerSize == 0 {
		containerSize = DefaultContainerSize
	}
	return &Store{
		containerSize: containerSize,
		index:         make(map[Hash]Ref),
		refcount:      make(map[Hash]int64),
	}, nil
}

// Put stores one chunk, returning its location and whether it was a
// duplicate of existing content.
func (s *Store) Put(data []byte) (Ref, bool) {
	h := Sum(data)
	s.stats.Chunks++
	s.stats.LogicalBytes += int64(len(data))
	if ref, ok := s.index[h]; ok {
		s.stats.IndexHits++
		s.refcount[h]++
		return ref, true
	}
	ref := s.append(data)
	s.index[h] = ref
	s.refcount[h] = 1
	s.stats.UniqueChunks++
	s.stats.StoredBytes += int64(len(data))
	return ref, false
}

// Lookup reports whether a chunk with hash h is already stored,
// without writing anything. This is the Matching step (§2.1, step 3).
func (s *Store) Lookup(h Hash) (Ref, bool) {
	ref, ok := s.index[h]
	return ref, ok
}

// Get returns the bytes of a stored chunk.
func (s *Store) Get(ref Ref) ([]byte, error) {
	if ref.Container < 0 || ref.Container >= len(s.containers) {
		return nil, fmt.Errorf("dedup: container %d out of range", ref.Container)
	}
	c := s.containers[ref.Container]
	if ref.Offset < 0 || ref.Offset+ref.Length > int64(len(c)) {
		return nil, fmt.Errorf("dedup: ref %+v outside container", ref)
	}
	return c[ref.Offset : ref.Offset+ref.Length : ref.Offset+ref.Length], nil
}

// Stats returns a copy of the current statistics.
func (s *Store) Stats() Stats { return s.stats }

// Containers returns the number of containers allocated.
func (s *Store) Containers() int { return len(s.containers) }

func (s *Store) append(data []byte) Ref {
	if len(s.containers) == 0 || int64(len(s.containers[len(s.containers)-1]))+int64(len(data)) > s.containerSize {
		s.containers = append(s.containers, make([]byte, 0, s.containerSize))
	}
	ci := len(s.containers) - 1
	c := s.containers[ci]
	ref := Ref{Container: ci, Offset: int64(len(c)), Length: int64(len(data))}
	s.containers[ci] = append(c, data...)
	return ref
}

// Recipe is the ordered list of chunk references that reconstructs one
// stored stream (a file, a VM image snapshot, ...).
type Recipe []Ref

// WriteStream stores a stream that has already been cut into chunks,
// returning its recipe and the number of duplicate chunks.
func (s *Store) WriteStream(chunks [][]byte) (Recipe, int) {
	recipe := make(Recipe, 0, len(chunks))
	dups := 0
	for _, c := range chunks {
		ref, dup := s.Put(c)
		if dup {
			dups++
		}
		recipe = append(recipe, ref)
	}
	return recipe, dups
}

// Reconstruct concatenates a recipe's chunks back into the original
// stream.
func (s *Store) Reconstruct(r Recipe) ([]byte, error) {
	var total int64
	for _, ref := range r {
		total += ref.Length
	}
	out := make([]byte, 0, total)
	for _, ref := range r {
		data, err := s.Get(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}
