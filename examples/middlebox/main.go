// Middlebox: network redundancy elimination (§9 future work) — a pair
// of WAN-optimization middleboxes that chunk traffic with content-
// defined boundaries and replace chunks the far side already caches
// with 36-byte references.
package main

import (
	"bytes"
	"fmt"
	"log"

	"shredder/internal/chunker"
	"shredder/internal/redelim"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	p := chunker.DefaultParams()
	p.MaskBits = 11 // ~2 KB chunks
	p.Marker = 1<<11 - 1
	p.MinSize = 256
	p.MaxSize = 8 << 10
	sender, receiver, err := redelim.NewPair(p, 1<<16)
	if err != nil {
		log.Fatal(err)
	}

	// A software-update scenario: many clients download near-identical
	// payloads through the same WAN link.
	base := workload.Random(3, 512<<10)
	for client := 1; client <= 5; client++ {
		// Each client's payload differs by ~2% (per-client metadata).
		payload := workload.MutateClusteredReplace(base, int64(client), 2, 2)
		msgs := sender.Encode(payload)
		got, err := receiver.Decode(msgs)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("stream corrupted in flight")
		}
		var wire int64
		for _, m := range msgs {
			wire += m.WireBytes()
		}
		fmt.Printf("client %d: %s payload, %s on the wire (%d/%d chunks eliminated)\n",
			client, stats.Bytes(int64(len(payload))), stats.Bytes(wire),
			countRefs(msgs), len(msgs))
	}
	st := sender.Stats()
	fmt.Printf("link totals: %s in, %s on wire — %.0f%% bandwidth saved\n",
		stats.Bytes(st.BytesIn), stats.Bytes(st.BytesOnWire), st.Savings()*100)
}

func countRefs(msgs []redelim.Message) int {
	n := 0
	for _, m := range msgs {
		if m.Ref {
			n++
		}
	}
	return n
}
