// Package workload generates deterministic synthetic data sets for the
// experiments: random streams, text corpora for the MapReduce
// applications, mutation operators that change a controlled percentage
// of an input (Figure 15's x-axis), and segmented VM images with a
// similarity table (the paper's §7.3 backup emulation).
package workload

import (
	"encoding/binary"
	"math/rand"
)

// Random returns n pseudo-random bytes derived from seed.
func Random(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

// words is a small vocabulary for text generation; frequencies follow a
// rough Zipf shape via the skewed picker below.
var words = []string{
	"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
	"storage", "data", "chunk", "gpu", "kernel", "memory", "backup",
	"incremental", "pipeline", "buffer", "transfer", "bandwidth",
	"fingerprint", "window", "marker", "boundary", "dedup", "stream",
	"cloud", "compute", "system", "paper", "result", "thread", "warp",
}

// Text returns about n bytes of newline-delimited word records,
// suitable for word count and co-occurrence jobs. Lines have 6–12
// words. Deterministic in seed.
func Text(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n+64)
	for len(out) < n {
		lineLen := 6 + rng.Intn(7)
		for i := 0; i < lineLen; i++ {
			if i > 0 {
				out = append(out, ' ')
			}
			out = append(out, pick(rng)...)
		}
		out = append(out, '\n')
	}
	return out[:n]
}

// pick draws a word with a Zipf-ish skew: low indices are much more
// likely.
func pick(rng *rand.Rand) string {
	// P(i) ∝ 1/(i+1): invert a uniform draw over the harmonic CDF
	// approximately by squaring.
	u := rng.Float64()
	idx := int(u * u * float64(len(words)))
	if idx >= len(words) {
		idx = len(words) - 1
	}
	return words[idx]
}

// Points returns n 2-D points clustered around k centers, encoded as
// newline-delimited "x y" records for the k-means application.
func Points(seed int64, n, k int) []byte {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][2]float64, k)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	var out []byte
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		x := c[0] + rng.NormFloat64()*15
		y := c[1] + rng.NormFloat64()*15
		out = appendFixed(out, x)
		out = append(out, ' ')
		out = appendFixed(out, y)
		out = append(out, '\n')
	}
	return out
}

// appendFixed formats a float with 2 decimals without fmt (hot path).
func appendFixed(b []byte, f float64) []byte {
	if f < 0 {
		b = append(b, '-')
		f = -f
	}
	whole := int64(f)
	frac := int64((f - float64(whole)) * 100)
	b = appendInt(b, whole)
	b = append(b, '.')
	if frac < 10 {
		b = append(b, '0')
	}
	return appendInt(b, frac)
}

func appendInt(b []byte, v int64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// MutateReplace overwrites pct percent of data in scattered
// record-sized blocks, returning a new slice of the same length. This
// models in-place updates (e.g. changed rows of a crawl).
func MutateReplace(data []byte, seed int64, pct float64) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if pct <= 0 || len(data) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	const block = 512
	target := int(float64(len(data)) * pct / 100)
	for changed := 0; changed < target; {
		off := rng.Intn(len(out))
		n := block
		if off+n > len(out) {
			n = len(out) - off
		}
		rng.Read(out[off : off+n])
		changed += n
	}
	return out
}

// MutateClusteredReplace overwrites pct percent of data confined to
// `regions` contiguous runs, returning a new slice of the same length.
// This is the paper's notion of "p% incremental changes": edits are
// localized (new log records, changed rows in a few files), so most
// content-defined splits survive intact. Scattered fine-grained edits
// (MutateReplace) instead touch almost every split, which is the
// adversarial case for any incremental system.
func MutateClusteredReplace(data []byte, seed int64, pct float64, regions int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if pct <= 0 || len(data) == 0 || regions < 1 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	target := int(float64(len(data)) * pct / 100)
	per := target / regions
	if per < 1 {
		per = 1
	}
	// One run per equal zone, so runs never overlap and the requested
	// percentage is met exactly (up to rounding).
	zone := len(out) / regions
	if zone < 1 {
		zone = 1
	}
	for r := 0; r < regions; r++ {
		lo := r * zone
		hi := lo + zone
		if r == regions-1 || hi > len(out) {
			hi = len(out)
		}
		if lo >= hi {
			break
		}
		n := per
		if n >= hi-lo {
			rng.Read(out[lo:hi])
			continue
		}
		off := lo + rng.Intn(hi-lo-n)
		rng.Read(out[off : off+n])
	}
	return out
}

// MutateInsert inserts pct percent of new content at random positions,
// in record-sized pieces; the result is longer than the input. This is
// the append/insert pattern content-defined chunking exists for.
func MutateInsert(data []byte, seed int64, pct float64) []byte {
	if pct <= 0 || len(data) == 0 {
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	const block = 512
	target := int(float64(len(data)) * pct / 100)
	cuts := target/block + 1
	out := make([]byte, 0, len(data)+target+block)
	prev := 0
	for i := 0; i < cuts; i++ {
		pos := prev + rng.Intn(len(data)-prev+1)
		out = append(out, data[prev:pos]...)
		ins := make([]byte, block)
		rng.Read(ins)
		out = append(out, ins...)
		prev = pos
	}
	out = append(out, data[prev:]...)
	return out
}

// MutateDelete removes pct percent of the input in record-sized pieces.
func MutateDelete(data []byte, seed int64, pct float64) []byte {
	if pct <= 0 || len(data) == 0 {
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	const block = 512
	target := int(float64(len(data)) * pct / 100)
	out := make([]byte, 0, len(data))
	skipAt := make(map[int]bool)
	for removed := 0; removed < target; removed += block {
		skipAt[rng.Intn(len(data)/block+1)] = true
	}
	for off := 0; off < len(data); off += block {
		end := off + block
		if end > len(data) {
			end = len(data)
		}
		if !skipAt[off/block] {
			out = append(out, data[off:end]...)
		}
	}
	return out
}

// Image is the master VM image of the §7.3 emulation: segments of
// SegSize bytes, with a per-segment probability of being replaced in a
// snapshot (the image similarity table).
type Image struct {
	// SegSize is the segment granularity.
	SegSize int
	// Master is the base image content.
	Master []byte
	// Similarity holds one replacement probability per segment.
	Similarity []float64
}

// NewImage builds a master image of n bytes with uniform per-segment
// replacement probability prob.
func NewImage(seed int64, n, segSize int, prob float64) *Image {
	segs := (n + segSize - 1) / segSize
	sim := make([]float64, segs)
	for i := range sim {
		sim[i] = prob
	}
	return &Image{
		SegSize:    segSize,
		Master:     Random(seed, n),
		Similarity: sim,
	}
}

// Snapshot generates one VM snapshot: each segment is replaced by fresh
// content with its similarity-table probability. Deterministic in seed.
func (im *Image) Snapshot(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, len(im.Master))
	copy(out, im.Master)
	for s, prob := range im.Similarity {
		if rng.Float64() >= prob {
			continue
		}
		lo := s * im.SegSize
		hi := lo + im.SegSize
		if hi > len(out) {
			hi = len(out)
		}
		// Fresh deterministic content for this segment.
		var seedBytes [8]byte
		binary.LittleEndian.PutUint64(seedBytes[:], uint64(seed)^uint64(s)*0x9E3779B97F4A7C15)
		fill := rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seedBytes[:]))))
		fill.Read(out[lo:hi])
	}
	return out
}

// ChangedFraction reports the fraction of bytes that differ between two
// equal-length buffers.
func ChangedFraction(a, b []byte) float64 {
	if len(a) == 0 {
		return 0
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	diff += len(a) - n + maxInt(len(b)-n, 0)
	return float64(diff) / float64(maxInt(len(a), len(b)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
