package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
)

// groupOpts is the group-commit configuration the tests run under: a
// window short enough to keep the suite fast, long enough that
// concurrent committers actually share rounds.
func groupOpts(shards int) Options {
	return Options{Shards: shards, CommitWindow: 200 * time.Microsecond}
}

// TestGroupCommitBatchesRounds drives concurrent commits through the
// backing and checks the group machinery did its job: every barrier
// reports success, and the number of fsync rounds is strictly smaller
// than the number of commits (the whole point of the window).
func TestGroupCommitBatchesRounds(t *testing.T) {
	b, err := Open(t.TempDir(), groupOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.group == nil {
		t.Fatal("CommitWindow under FsyncAlways did not enable group commit")
	}
	if err := b.Shard(0).Recover(func(shardstore.Hash, shardstore.Ref, int64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const committers, commits = 8, 5
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := b.Shard(0)
			for i := 0; i < commits; i++ {
				body := []byte(fmt.Sprintf("chunk-%d-%d", g, i))
				h := dedup.Sum(body)
				if _, _, err := sh.Append(h, body); err != nil {
					errs[g] = err
					return
				}
				if err := sh.Commit(); err != nil {
					errs[g] = err
					return
				}
				if err := b.Barrier(); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", g, err)
		}
	}
	rounds := b.met.groupRounds.Load()
	if rounds == 0 {
		t.Fatal("no group rounds recorded")
	}
	if rounds >= committers*commits {
		t.Fatalf("%d rounds for %d commits: group commit never batched", rounds, committers*commits)
	}
	if got := b.met.syncErrors.Load(); got != 0 {
		t.Fatalf("sync errors counted on a healthy disk: %d", got)
	}
}

// TestGroupCommitStoreDurability runs concurrent sessions through the
// store-level path (Put + CommitRecipe, each ending in a Barrier) and
// proves a reopen recovers every acked recipe.
func TestGroupCommitStoreDurability(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, groupOpts(2))
	const sessions, recipes = 6, 4
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < recipes; i++ {
				body := []byte(fmt.Sprintf("session-%d-recipe-%d", g, i))
				if _, _, err := st.Put(body); err != nil {
					errs[g] = err
					return
				}
				name := fmt.Sprintf("r-%d-%d", g, i)
				if err := st.CommitRecipe(name, shardstore.Recipe{dedup.Sum(body)}); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", g, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got := openStore(t, dir, Options{})
	defer got.Close()
	names := got.RecipeNames()
	if len(names) != sessions*recipes {
		t.Fatalf("recovered %d recipes, want %d: %v", len(names), sessions*recipes, names)
	}
	for g := 0; g < sessions; g++ {
		for i := 0; i < recipes; i++ {
			want := []byte(fmt.Sprintf("session-%d-recipe-%d", g, i))
			r, ok := got.Recipe(fmt.Sprintf("r-%d-%d", g, i))
			if !ok {
				t.Fatalf("recipe r-%d-%d missing after reopen", g, i)
			}
			data, err := got.Reconstruct(r)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(want) {
				t.Fatalf("recipe r-%d-%d restored wrong bytes", g, i)
			}
		}
	}
}

// TestGroupCommitCloseDrains proves waiters registered before Close
// still get the real outcome of a final round instead of hanging or a
// spurious error.
func TestGroupCommitCloseDrains(t *testing.T) {
	b, err := Open(t.TempDir(), Options{Shards: 1, CommitWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Barrier()
		}(i)
	}
	// Give the waiters time to register on the pending round the hour
	// window would otherwise hold open until tomorrow.
	time.Sleep(20 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, errClosed) {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if err := b.Barrier(); !errors.Is(err, errClosed) {
		t.Fatalf("Barrier after Close = %v, want errClosed", err)
	}
}

// TestSyncFailureSticky pins the fail-stop contract shared by the
// interval loop and the group syncer: once any fsync fails, every
// later commit point fails loudly with the root cause, instead of
// silently pretending the data is durable.
func TestSyncFailureSticky(t *testing.T) {
	b, err := Open(t.TempDir(), Options{Shards: 1, Fsync: FsyncPolicy{Mode: FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sh := b.Shard(0)
	if err := sh.Recover(func(shardstore.Hash, shardstore.Ref, int64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	body := []byte("before the fault")
	if _, _, err := sh.Append(dedup.Sum(body), body); err != nil {
		t.Fatal(err)
	}
	if err := sh.Commit(); err != nil {
		t.Fatal(err)
	}

	root := errors.New("disk on fire")
	b.met.latchFault(root)

	body = []byte("after the fault")
	if _, _, err := sh.Append(dedup.Sum(body), body); err != nil {
		t.Fatal(err)
	}
	if err := sh.Commit(); !errors.Is(err, root) {
		t.Fatalf("Commit after latched fault = %v, want wrapped %v", err, root)
	}
	if err := b.CommitRecipe("r", shardstore.Recipe{dedup.Sum(body)}); !errors.Is(err, root) {
		t.Fatalf("CommitRecipe after latched fault = %v, want wrapped %v", err, root)
	}
}

// TestCheckedSyncCountsErrors proves a real failed fsync syscall bumps
// persist_sync_errors_total and latches the fault.
func TestCheckedSyncCountsErrors(t *testing.T) {
	b, err := Open(t.TempDir(), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	f, err := os.CreateTemp(t.TempDir(), "closed")
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // Sync on a closed file fails with os.ErrClosed
	if err := b.met.checkedSync(f); err == nil {
		t.Fatal("checkedSync on a closed file succeeded")
	}
	if got := b.met.syncErrors.Load(); got != 1 {
		t.Fatalf("syncErrors = %d, want 1", got)
	}
	if err := b.met.syncFailed(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("fault latched %v, want wrapped os.ErrClosed", err)
	}
}

// TestCrashTruncateGroupCommittedRecipes group-commits recipes from
// concurrent sessions, then truncates the recipe journal at every byte
// of the resulting window. Every recovery must yield a subset of the
// acked recipes with no holes in append order (so a batched fsync can
// never surface recipe K without the recipes journaled before it), and
// the untruncated journal must yield exactly the acked set.
func TestCrashTruncateGroupCommittedRecipes(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, groupOpts(1))
	if _, _, err := st.Put([]byte("shared chunk")); err != nil {
		t.Fatal(err)
	}
	h := dedup.Sum([]byte("shared chunk"))
	const sessions, recipes = 4, 3
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < recipes; i++ {
				if err := st.CommitRecipe(fmt.Sprintf("r-%d-%d", g, i), shardstore.Recipe{h}); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", g, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, recipeLogName))
	if err != nil {
		t.Fatal(err)
	}
	acked := sessions * recipes
	prev := 0
	for cut := 0; cut <= len(raw); cut++ {
		crash := t.TempDir()
		copyTree(t, dir, crash)
		if err := os.Truncate(filepath.Join(crash, recipeLogName), int64(cut)); err != nil {
			t.Fatal(err)
		}
		got, err := OpenStore(crash, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		names := got.RecipeNames()
		if len(names) > acked {
			t.Fatalf("cut at %d: recovered %d recipes, more than the %d acked", cut, len(names), acked)
		}
		// Truncation keeps a record prefix, so the recovered count can
		// only grow with the cut — a batched fsync must not reorder
		// records across the window.
		if len(names) < prev {
			t.Fatalf("cut at %d: recovered %d recipes after %d at the previous cut", cut, len(names), prev)
		}
		prev = len(names)
		if cut == len(raw) && len(names) != acked {
			t.Fatalf("full journal recovered %d recipes, want all %d acked", len(names), acked)
		}
		for _, n := range names {
			r, ok := got.Recipe(n)
			if !ok {
				t.Fatalf("cut at %d: recipe %s listed but not fetchable", cut, n)
			}
			if _, err := got.Reconstruct(r); err != nil {
				t.Fatalf("cut at %d: recovered recipe %s does not restore: %v", cut, n, err)
			}
		}
		got.Close()
	}
}
