package core

import (
	"bytes"
	"testing"

	"shredder/internal/chunk"
)

func fastcdcConfig(mutate func(*Config)) func(*Config) {
	return func(c *Config) {
		c.Chunking = chunk.FastCDCSpec(4 << 10)
		if mutate != nil {
			mutate(c)
		}
	}
}

// TestHostEngineMatchesEngineReference: the pipeline running a
// host-side engine must cut exactly what the engine itself cuts, with
// payloads intact, regardless of buffer size — the host-path mirror of
// TestChunksMatchSequentialReference and the spanning tests.
func TestHostEngineMatchesEngineReference(t *testing.T) {
	data := testData(70, 5<<20+12345)
	eng, err := chunk.New(chunk.FastCDCSpec(4 << 10))
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Split(data)
	for _, bufSize := range []int{256 << 10, 1 << 20, 3 << 20} {
		s := newShredder(t, fastcdcConfig(func(c *Config) { c.BufferSize = bufSize }))
		if s.Chunker() != nil || s.Kernel() != nil {
			t.Fatal("host engine must not build a GPU kernel")
		}
		var got []chunk.Chunk
		rep, err := s.ChunkBytes(data, func(c chunk.Chunk, payload []byte) error {
			got = append(got, c)
			if !bytes.Equal(payload, data[c.Offset:c.End()]) {
				t.Fatalf("payload mismatch at offset %d", c.Offset)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("buffer %d: %d chunks, want %d", bufSize, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("buffer %d chunk %d: %+v != %+v", bufSize, i, got[i], want[i])
			}
		}
		if rep.Chunks != len(want) || rep.Bytes != int64(len(data)) {
			t.Fatalf("report %d chunks / %d bytes", rep.Chunks, rep.Bytes)
		}
	}
}

// TestHostEngineReport: the simulated report stays coherent on the
// host path — positive throughput, busy kernel stage (the CPU gear
// hash), and no PCIe transfer time.
func TestHostEngineReport(t *testing.T) {
	s := newShredder(t, fastcdcConfig(nil))
	rep, err := s.ChunkBytes(testData(71, 4<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.SimTime <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Stage.Kernel <= 0 {
		t.Fatal("host chunking stage reported no busy time")
	}
	if rep.Stage.Transfer != 0 {
		t.Fatalf("host path reported PCIe transfer time %v", rep.Stage.Transfer)
	}
	if rep.BankConflicts != 0 {
		t.Fatal("host path reported GPU bank conflicts")
	}
}

// TestHostEngineSequentialReuse: stream state must not leak between
// runs on the host path either.
func TestHostEngineSequentialReuse(t *testing.T) {
	s := newShredder(t, fastcdcConfig(nil))
	eng, _ := chunk.New(chunk.FastCDCSpec(4 << 10))
	a := testData(72, 2<<20)
	b := testData(73, 1<<20+999)
	for run, data := range [][]byte{a, b, a} {
		var got []chunk.Chunk
		if _, err := s.ChunkBytes(data, func(c chunk.Chunk, _ []byte) error {
			got = append(got, c)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := eng.Split(data)
		if len(got) != len(want) {
			t.Fatalf("run %d: %d chunks, want %d", run, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d chunk %d mismatch", run, i)
			}
		}
	}
}

// TestHostEngineValidationSkipsDeviceChecks: a FastCDC config must not
// be rejected for exceeding GPU device memory it never uses.
func TestHostEngineValidationSkipsDeviceChecks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chunking = chunk.FastCDCSpec(4 << 10)
	cfg.BufferSize = 2 << 30 // would overflow the C2050's memory
	if err := cfg.Validate(); err != nil {
		t.Fatalf("host engine hit device-memory validation: %v", err)
	}
	rabin := DefaultConfig()
	rabin.BufferSize = 2 << 30
	if err := rabin.Validate(); err == nil {
		t.Fatal("rabin config escaped device-memory validation")
	}
}
