// Package core implements the Shredder framework itself — the paper's
// primary contribution: a high-throughput content-based chunking
// service that offloads Rabin-fingerprint computation to a (simulated)
// GPU. The host side runs four modules, exactly as in Figure 2:
//
//	Reader   – ingests the data stream (SAN-class AIO model)
//	Transfer – DMAs buffers from host to device memory
//	Kernel   – the parallel sliding-window chunking kernel on the GPU
//	Store    – returns chunk boundaries, applies min/max limits and
//	           upcalls the application with each chunk
//
// Three operating modes reproduce the paper's evaluation points
// (Figure 12): Basic serializes everything; Streams adds double
// buffering over a pinned ring plus the 4-stage streaming pipeline
// (§4.1, §4.2); StreamsCoalesced additionally enables the memory-
// coalescing kernel (§4.3).
//
// All chunk boundaries are computed for real and are bit-identical to
// the sequential reference in package chunker; only time is simulated.
package core

import (
	"errors"
	"fmt"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/chunker"
	"shredder/internal/gpu"
	"shredder/internal/host"
	"shredder/internal/hostmem"
	"shredder/internal/pcie"
)

// Mode selects which of the paper's configurations the pipeline runs.
type Mode int

const (
	// Basic is the unoptimized workflow of §3.1: one buffer in flight,
	// pageable host memory, naive global-memory kernel, every stage
	// serialized.
	Basic Mode = iota
	// Streams enables concurrent copy/execution via double buffering on
	// a ring of pinned regions and the multi-stage streaming pipeline
	// (§4.1–§4.2), still with the naive kernel. "GPU Streams" in
	// Figure 12.
	Streams
	// StreamsCoalesced is Streams plus the memory-coalescing kernel of
	// §4.3. "GPU Streams + Memory" in Figure 12.
	StreamsCoalesced
)

func (m Mode) String() string {
	switch m {
	case Basic:
		return "gpu-basic"
	case Streams:
		return "gpu-streams"
	case StreamsCoalesced:
		return "gpu-streams+memory"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// KernelMode returns the GPU memory mode the pipeline mode uses.
func (m Mode) KernelMode() gpu.MemoryMode {
	if m == StreamsCoalesced {
		return gpu.Coalesced
	}
	return gpu.NaiveGlobal
}

// BufferKind returns the host buffer kind the pipeline mode transfers
// from.
func (m Mode) BufferKind() pcie.BufferKind {
	if m == Basic {
		return pcie.Pageable
	}
	return pcie.Pinned
}

// Config configures a Shredder instance.
type Config struct {
	// Mode selects the optimization level.
	Mode Mode
	// BufferSize is the size of each host/device transfer buffer.
	BufferSize int
	// PipelineDepth is the number of buffers admitted to the streaming
	// pipeline at once (Figure 9 varies it from 2 to 4). Basic mode
	// always behaves as depth 1.
	PipelineDepth int
	// RingRegions is the number of pinned regions in the circular ring
	// (§4.1.2); it must be at least PipelineDepth so a region is free
	// whenever a buffer is admitted. 0 means PipelineDepth.
	RingRegions int
	// Devices is the number of GPUs used as co-processors (§5.2: "one
	// or more GPUs"). Buffers are dispatched round-robin; each device
	// sits on its own PCIe slot. 0 means 1.
	Devices int
	// GPUDirect, when true, models the §9 GPUDirect optimization: the
	// SAN adapter DMAs straight into device memory, eliminating the
	// host staging transfer. Requires a pinned-memory mode (not Basic).
	GPUDirect bool
	// Chunking selects and configures the content-defined chunking
	// engine. AlgoRabin runs on the modeled GPU kernel exactly as
	// before; any other engine runs on the host CPU, with the kernel
	// stage modeled by HostChunkBps.
	Chunking chunk.Spec
	// HostChunkBps is the modeled host-side chunking rate (bytes/sec)
	// for engines the GPU cannot offload (FastCDC). 0 means 2 GB/s,
	// roughly one core's gear-hash throughput.
	HostChunkBps float64
	// HostWorkers, when > 1, wraps the engine in the parallel host
	// chunker (chunk.Parallel): large streams are cut on up to that
	// many cores, byte-identical to the sequential engine. The
	// parallel engine always runs on the host, so for AlgoRabin it
	// replaces the modeled GPU offload (the paper's multicore CPU
	// configuration rather than the GPU pipeline). 0 or 1 means
	// sequential; negative means all cores.
	HostWorkers int
	// Kernel configures the device and its chunking kernel.
	Kernel gpu.KernelConfig
	// PCIe models the host/device link.
	PCIe pcie.Model
	// IO models the reader/store SAN path.
	IO host.IOModel
	// Mem models host memory allocation.
	Mem hostmem.Model
	// UpcallNsPerChunk is the Store-thread cost of notifying the
	// application of one chunk boundary.
	UpcallNsPerChunk float64
}

// DefaultConfig returns the paper's full-optimization configuration:
// 32 MB buffers, 4-stage pipeline, memory coalescing.
func DefaultConfig() Config {
	return Config{
		Mode:             StreamsCoalesced,
		BufferSize:       32 << 20,
		PipelineDepth:    4,
		Chunking:         chunk.DefaultSpec(),
		Kernel:           gpu.DefaultKernelConfig(),
		PCIe:             pcie.Default(),
		IO:               host.DefaultIO(),
		Mem:              hostmem.Default(),
		UpcallNsPerChunk: 250,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BufferSize < 1 {
		return errors.New("core: buffer size must be positive")
	}
	if c.PipelineDepth < 1 || c.PipelineDepth > 16 {
		return errors.New("core: pipeline depth must be in [1, 16]")
	}
	if c.RingRegions != 0 && c.RingRegions < c.PipelineDepth {
		return errors.New("core: ring must have at least PipelineDepth regions")
	}
	if c.Devices < 0 || c.Devices > 8 {
		return errors.New("core: device count must be in [0, 8]")
	}
	if c.GPUDirect && c.Mode == Basic {
		return errors.New("core: GPUDirect requires a pinned-memory mode")
	}
	if err := c.Chunking.Validate(); err != nil {
		return err
	}
	if c.HostChunkBps < 0 {
		return errors.New("core: negative host chunking rate")
	}
	if err := c.PCIe.Validate(); err != nil {
		return err
	}
	if err := c.IO.Validate(); err != nil {
		return err
	}
	// Device memory must hold the in-flight buffers (twin buffers for
	// the double-buffered modes). Host-side engines never leave host
	// memory, so the constraint does not apply to them.
	if c.Chunking.Algo == chunk.AlgoRabin {
		inFlight := int64(c.BufferSize)
		if c.Mode != Basic {
			inFlight *= 2
		}
		if inFlight > c.Kernel.Spec.GlobalMemBytes {
			return fmt.Errorf("core: %d bytes of in-flight buffers exceed device memory %d",
				inFlight, c.Kernel.Spec.GlobalMemBytes)
		}
	}
	return nil
}

// StageTimes aggregates the busy time of each pipeline stage.
type StageTimes struct {
	Reader, Transfer, Kernel, Store time.Duration
}

// Report describes one ChunkReader/ChunkBytes run.
type Report struct {
	// Mode the pipeline ran in.
	Mode Mode
	// Bytes processed and Chunks produced (real, functional results).
	Bytes  int64
	Chunks int
	// Buffers is how many device buffers the stream was cut into.
	Buffers int
	// SimTime is the simulated end-to-end makespan.
	SimTime time.Duration
	// Throughput is Bytes/SimTime in bytes per second — the quantity on
	// Figure 12's y-axis.
	Throughput float64
	// SetupTime is the one-time modeled initialization cost (pinned
	// ring allocation); it is amortized over the system's lifetime and
	// therefore not part of SimTime. Basic mode pays a single pageable
	// allocation instead.
	SetupTime time.Duration
	// Stage gives per-stage busy totals; their overlap is what the
	// optimizations buy.
	Stage StageTimes
	// BankConflicts aggregates the modeled GPU memory conflicts.
	BankConflicts uint64
}

// Shredder is the chunking service. Create one with New; it is safe
// for sequential reuse across streams (one stream at a time).
type Shredder struct {
	cfg Config
	eng chunk.Engine
	// chk and kernel are set only for the Rabin engine — the one the
	// GPU can offload. Other engines chunk on the host.
	chk     *chunker.Chunker
	kernel  *gpu.Kernel
	ring    *hostmem.Ring
	setup   time.Duration
	devices int
}

// New builds a Shredder from cfg.
func New(cfg Config) (*Shredder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.HostChunkBps == 0 {
		cfg.HostChunkBps = 2e9
	}
	eng, err := chunk.New(cfg.Chunking)
	if err != nil {
		return nil, err
	}
	if cfg.HostWorkers > 1 || cfg.HostWorkers < 0 {
		eng = chunk.NewParallel(eng, cfg.HostWorkers)
	}
	s := &Shredder{cfg: cfg, eng: eng}
	if rb, ok := eng.(*chunk.Rabin); ok {
		s.chk = rb.Chunker()
		kern, err := gpu.NewKernel(cfg.Kernel, s.chk)
		if err != nil {
			return nil, err
		}
		s.kernel = kern
	}
	s.devices = cfg.Devices
	if s.devices == 0 {
		s.devices = 1
	}
	if cfg.Mode == Basic || s.chk == nil {
		// One reusable pageable staging buffer, allocated at startup.
		// Host-side engines never DMA, so they use plain pageable
		// memory too — no pinned ring to allocate or account for.
		s.setup = cfg.Mem.PageableAllocTime(int64(cfg.BufferSize))
	} else {
		regions := cfg.RingRegions
		if regions == 0 {
			regions = cfg.PipelineDepth
		}
		// The ring regions carry Window-1 bytes of prefix so each
		// buffer can be scanned with window continuity.
		ring, err := hostmem.NewRing(cfg.Mem, regions, cfg.BufferSize+cfg.Chunking.Window-1)
		if err != nil {
			return nil, err
		}
		s.ring = ring
		s.setup = ring.AllocTime
	}
	return s, nil
}

// Config returns the configuration the Shredder was built with.
func (s *Shredder) Config() Config { return s.cfg }

// Engine exposes the chunking engine the pipeline cuts with.
func (s *Shredder) Engine() chunk.Engine { return s.eng }

// Chunker exposes the underlying sequential Rabin chunker (shared
// parameters and fingerprint tables). It is nil for engines the GPU
// cannot offload.
func (s *Shredder) Chunker() *chunker.Chunker { return s.chk }

// Kernel exposes the GPU kernel model (for experiments and ablations).
// It is nil for host-side engines.
func (s *Shredder) Kernel() *gpu.Kernel { return s.kernel }
