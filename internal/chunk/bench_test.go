package chunk

import (
	"testing"
)

// BenchmarkEngineSplit measures raw single-core chunking throughput of
// each engine over the same 8 MB buffer — the per-byte cost the
// Rabin-vs-FastCDC trade is about.
func BenchmarkEngineSplit(b *testing.B) {
	data := randomData(30, 8<<20)
	limited := DefaultSpec()
	limited.MaskBits = 12
	limited.Marker = 1<<12 - 1
	limited.MinSize = 2 << 10
	limited.MaxSize = 32 << 10
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"rabin", limited},
		{"fastcdc", FastCDCSpec(4 << 10)},
	} {
		e, err := New(tc.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if got := e.Split(data); len(got) == 0 {
					b.Fatal("no chunks")
				}
			}
		})
	}
}

// BenchmarkEngineStream measures the incremental-feed path with 1 MB
// writes (the ingest frame size).
func BenchmarkEngineStream(b *testing.B) {
	data := randomData(31, 8<<20)
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"rabin", DefaultSpec()},
		{"fastcdc", FastCDCSpec(4 << 10)},
	} {
		e, err := New(tc.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				s := e.Stream(func(Chunk, []byte) error { return nil })
				for off := 0; off < len(data); off += 1 << 20 {
					end := off + 1<<20
					if end > len(data) {
						end = len(data)
					}
					if _, err := s.Write(data[off:end]); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
