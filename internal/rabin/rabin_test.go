package rabin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegree(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{0, -1},
		{1, 0},
		{2, 1},
		{3, 1},
		{0x8, 3},
		{DefaultPolynomial, 53},
		{1 << 62, 62},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%#x) = %d, want %d", uint64(c.p), got, c.want)
		}
	}
}

func TestModBasics(t *testing.T) {
	// x^3 + x + 1 is irreducible of degree 3; x^3 mod it = x + 1.
	m := Poly(0b1011)
	if got := Poly(0b1000).Mod(m); got != 0b011 {
		t.Fatalf("x^3 mod (x^3+x+1) = %#b, want 0b011", got)
	}
	// Anything mod itself is zero.
	if got := m.Mod(m); got != 0 {
		t.Fatalf("m mod m = %#b, want 0", got)
	}
	// Degree of remainder is always below degree of modulus.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := Poly(rng.Uint64())
		r := p.Mod(DefaultPolynomial)
		if r.Degree() >= DefaultPolynomial.Degree() {
			t.Fatalf("remainder degree %d >= modulus degree", r.Degree())
		}
	}
}

func TestDivModIdentity(t *testing.T) {
	// p = q·m + r must hold, where q·m is carry-less multiplication.
	f := func(pv, mv uint64) bool {
		p := Poly(pv)
		m := Poly(mv) | (1 << 40) // ensure nonzero with bounded degree
		m &= 1<<41 - 1
		q := p.Div(m)
		r := p.Mod(m)
		// Recompute q·m by shift-and-xor (no overflow: deg q + deg m < 64
		// because deg q = deg p − deg m).
		var prod Poly
		for i := 0; i < 64; i++ {
			if q&(1<<uint(i)) != 0 {
				prod ^= m << uint(i)
			}
		}
		return prod^r == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulModProperties(t *testing.T) {
	m := DefaultPolynomial
	// Commutative, and multiplying by 1 is identity.
	f := func(av, bv uint64) bool {
		a := Poly(av).Mod(m)
		b := Poly(bv).Mod(m)
		if MulMod(a, b, m) != MulMod(b, a, m) {
			return false
		}
		return MulMod(a, 1, m) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// Distributive over addition (XOR).
	g := func(av, bv, cv uint64) bool {
		a := Poly(av).Mod(m)
		b := Poly(bv).Mod(m)
		c := Poly(cv).Mod(m)
		return MulMod(a, b^c, m) == MulMod(a, b, m)^MulMod(a, c, m)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestGCD(t *testing.T) {
	// gcd(p, 0) = p, gcd with self = self.
	if GCD(0b1011, 0) != 0b1011 {
		t.Fatal("gcd(p, 0) != p")
	}
	if GCD(0b1011, 0b1011) != 0b1011 {
		t.Fatal("gcd(p, p) != p")
	}
	// (x+1)^2 = x^2+1; gcd(x^2+1, x+1) = x+1.
	if GCD(0b101, 0b11) != 0b11 {
		t.Fatalf("gcd(x^2+1, x+1) = %#b, want x+1", GCD(0b101, 0b11))
	}
}

func TestIrreducible(t *testing.T) {
	irreducibles := []Poly{
		0b10,               // x
		0b11,               // x + 1
		0b111,              // x^2 + x + 1
		0b1011,             // x^3 + x + 1
		0b1101,             // x^3 + x^2 + 1
		0b10011,            // x^4 + x + 1
		0x11B,              // AES polynomial, degree 8
		DefaultPolynomial,  // degree 53
		0xbfe6b8a5bf378d83, // LBFS polynomial, degree 63
	}
	for _, p := range irreducibles {
		if !Irreducible(p) {
			t.Errorf("Irreducible(%#x) = false, want true", uint64(p))
		}
	}
	reducibles := []Poly{
		0,
		1,      // degree 0
		0b100,  // x^2 = x·x
		0b101,  // x^2+1 = (x+1)^2
		0b110,  // x^2+x = x(x+1)
		0b1111, // (x+1)(x^2+x+1)
		0x10000001,
	}
	for _, p := range reducibles {
		if Irreducible(p) {
			t.Errorf("Irreducible(%#x) = true, want false", uint64(p))
		}
	}
}

func TestDerivePolynomial(t *testing.T) {
	for _, deg := range []int{8, 16, 31, 53, 62} {
		p, err := DerivePolynomial(42, deg)
		if err != nil {
			t.Fatalf("DerivePolynomial(42, %d): %v", deg, err)
		}
		if p.Degree() != deg {
			t.Fatalf("derived polynomial degree = %d, want %d", p.Degree(), deg)
		}
		if !Irreducible(p) {
			t.Fatalf("derived polynomial %#x is reducible", uint64(p))
		}
	}
	// Deterministic for the same seed.
	a, _ := DerivePolynomial(7, 53)
	b, _ := DerivePolynomial(7, 53)
	if a != b {
		t.Fatal("DerivePolynomial not deterministic")
	}
	if _, err := DerivePolynomial(1, 7); err == nil {
		t.Fatal("expected error for degree < 8")
	}
	if _, err := DerivePolynomial(1, 63); err == nil {
		t.Fatal("expected error for degree > 62")
	}
}

func TestWindowMatchesDirectFingerprint(t *testing.T) {
	tab := NewTable(DefaultPolynomial, 48)
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 4096)
	rng.Read(data)

	w := NewWindow(tab)
	for i, b := range data {
		got := w.Slide(b)
		lo := i + 1 - tab.Size()
		if lo < 0 {
			lo = 0
		}
		want := tab.Fingerprint(data[lo : i+1])
		if got != want {
			t.Fatalf("at offset %d: rolling %#x != direct %#x", i, got, want)
		}
	}
}

func TestWindowPositionIndependence(t *testing.T) {
	// The fingerprint after sliding past a full window depends only on
	// the last Size bytes, not on anything before them. This is the
	// property that makes parallel chunking possible.
	tab := NewTable(DefaultPolynomial, 16)
	rng := rand.New(rand.NewSource(3))
	tail := make([]byte, 16)
	rng.Read(tail)

	digest := func(prefix []byte) Poly {
		w := NewWindow(tab)
		for _, b := range prefix {
			w.Slide(b)
		}
		var d Poly
		for _, b := range tail {
			d = w.Slide(b)
		}
		return d
	}

	base := digest(nil)
	for trial := 0; trial < 50; trial++ {
		prefix := make([]byte, rng.Intn(200))
		rng.Read(prefix)
		if got := digest(prefix); got != base {
			t.Fatalf("digest depends on prefix: %#x != %#x", got, base)
		}
	}
}

func TestWindowReset(t *testing.T) {
	tab := NewTable(DefaultPolynomial, 8)
	w := NewWindow(tab)
	data := []byte("hello, world — rabin")
	var first Poly
	for _, b := range data {
		first = w.Slide(b)
	}
	w.Reset()
	if w.Digest() != 0 || w.Full() {
		t.Fatal("Reset did not clear window state")
	}
	var second Poly
	for _, b := range data {
		second = w.Slide(b)
	}
	if first != second {
		t.Fatalf("after Reset, digests differ: %#x vs %#x", first, second)
	}
}

func TestWindowFull(t *testing.T) {
	tab := NewTable(DefaultPolynomial, 4)
	w := NewWindow(tab)
	for i := 0; i < 3; i++ {
		w.Slide(byte(i))
		if w.Full() {
			t.Fatalf("window reported full after %d bytes", i+1)
		}
	}
	w.Slide(3)
	if !w.Full() {
		t.Fatal("window not full after Size bytes")
	}
}

func TestWindowQuickAgainstDirect(t *testing.T) {
	tab := NewTable(DefaultPolynomial, 48)
	f := func(data []byte) bool {
		if len(data) < tab.Size() {
			return true
		}
		w := NewWindow(tab)
		for _, b := range data {
			w.Slide(b)
		}
		return w.Digest() == tab.Fingerprint(data[len(data)-tab.Size():])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTablePanics(t *testing.T) {
	for _, tc := range []struct {
		pol  Poly
		size int
	}{
		{0xFF, 48}, // degree 7 too small
		{DefaultPolynomial, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%#x, %d) did not panic", uint64(tc.pol), tc.size)
				}
			}()
			NewTable(tc.pol, tc.size)
		}()
	}
}

func BenchmarkWindowSlide(b *testing.B) {
	tab := NewTable(DefaultPolynomial, 48)
	w := NewWindow(tab)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(4)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range data {
			w.Slide(c)
		}
	}
}
