package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"shredder/tools/shredlint/analysis"
)

// StripeLock enforces the shardstore stripe-lock discipline: the store
// is striped into shards, each guarded by a `mu` mutex on a struct
// named `shard`, and latency of every store operation is bounded by
// how little work happens under that mutex. While a stripe lock is
// held the code must not perform blocking I/O (calls into os/net,
// time.Sleep), block on channels, or acquire a second stripe lock
// (lock-order deadlock). Backing-interface calls are allowed: the
// persist layer is the one deliberate exception and owns its own
// locking.
var StripeLock = &analysis.Analyzer{
	Name: "stripelock",
	Doc:  "no blocking I/O, channel ops, or second stripe acquisition while a shard stripe lock is held",
	Run:  runStripeLock,
}

func runStripeLock(pass *analysis.Pass) error {
	stripe := stripeType(pass)
	if stripe == nil {
		return nil
	}
	for _, body := range functionBodies(pass) {
		checkStripeBody(pass, stripe, body)
	}
	return nil
}

// stripeType finds the package's stripe struct: a type literally named
// "shard" with a mu sync.Mutex / sync.RWMutex field.
func stripeType(pass *analysis.Pass) *types.TypeName {
	if pass.Pkg == nil {
		return nil
	}
	tn, ok := pass.Pkg.Scope().Lookup("shard").(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mu" {
			continue
		}
		if n := namedOf(f.Type()); n != nil && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "sync" &&
			(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex") {
			return tn
		}
	}
	return nil
}

// functionBodies returns every FuncDecl and FuncLit body in the
// package; each is analyzed as its own lock scope (a closure created
// under a lock generally runs elsewhere).
func functionBodies(pass *analysis.Pass) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	pass.Preorder(func(n ast.Node) {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
	})
	return bodies
}

// stripeMuOp classifies call as an operation on a stripe's mu field:
// "lock", "unlock", or "".
func stripeMuOp(pass *analysis.Pass, stripe *types.TypeName, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var op string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[inner.X]
	if !ok {
		return ""
	}
	if n := namedOf(tv.Type); n == nil || n.Obj() != stripe {
		return ""
	}
	return op
}

type lockRegion struct{ start, end token.Pos }

func checkStripeBody(pass *analysis.Pass, stripe *types.TypeName, body *ast.BlockStmt) {
	// Collect lock/unlock events at this function's own nesting level
	// (nested function literals are separate scopes) and note which
	// unlocks are deferred — a deferred unlock holds the lock to the
	// end of the body.
	var locks []*ast.CallExpr
	var unlocks []token.Pos
	walkOwn(body, func(n ast.Node) {
		if def, ok := n.(*ast.DeferStmt); ok {
			// A deferred unlock does not close the region early; any
			// other deferred call runs after the final unlock anyway.
			_ = def
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch stripeMuOp(pass, stripe, call) {
			case "lock":
				locks = append(locks, call)
			case "unlock":
				if !isDeferredCall(body, call) {
					unlocks = append(unlocks, call.Pos())
				}
			}
		}
	})
	if len(locks) == 0 {
		return
	}
	var regions []lockRegion
	for _, lk := range locks {
		end := body.End()
		for _, up := range unlocks {
			if up > lk.End() && up < end {
				end = up
			}
		}
		regions = append(regions, lockRegion{start: lk.End(), end: end})
	}
	held := func(p token.Pos) bool {
		for _, r := range regions {
			if p >= r.start && p < r.end {
				return true
			}
		}
		return false
	}
	walkOwn(body, func(n ast.Node) {
		if !held(n.Pos()) {
			return
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "channel send while a shard stripe lock is held; move it outside the critical section")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "channel receive while a shard stripe lock is held; move it outside the critical section")
			}
		case *ast.SelectStmt:
			pass.Reportf(v.Pos(), "select while a shard stripe lock is held; move it outside the critical section")
		case *ast.CallExpr:
			if stripeMuOp(pass, stripe, v) == "lock" {
				pass.Reportf(v.Pos(), "second stripe lock acquired while one is held; stripe locks do not nest")
				return
			}
			obj := calleeObj(pass.TypesInfo, v)
			if obj == nil || obj.Pkg() == nil {
				return
			}
			switch obj.Pkg().Path() {
			case "os", "net":
				pass.Reportf(v.Pos(), "%s.%s called while a shard stripe lock is held; blocking I/O must happen outside the stripe", obj.Pkg().Path(), obj.Name())
			case "time":
				if obj.Name() == "Sleep" {
					pass.Reportf(v.Pos(), "time.Sleep while a shard stripe lock is held")
				}
			}
		}
	})
}

// walkOwn walks body but does not descend into nested function
// literals, which form their own lock scopes.
func walkOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isDeferredCall reports whether call is the direct call of a defer
// statement within body.
func isDeferredCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if def, ok := n.(*ast.DeferStmt); ok && def.Call == call {
			found = true
		}
		return !found
	})
	return found
}
