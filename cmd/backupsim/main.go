// Command backupsim runs the cloud-backup case study (§7): it backs up
// a master VM image and a sequence of snapshots with configurable
// segment churn, using either the Shredder GPU pipeline or the pthreads
// CPU baseline, and reports per-snapshot bandwidth and dedup.
//
//	backupsim [-image MiB] [-snapshots N] [-prob p] [-engine gpu|cpu] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"shredder/internal/backup"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	imageMB := flag.Int("image", 64, "image size in MiB")
	snapshots := flag.Int("snapshots", 3, "number of snapshots to back up")
	prob := flag.Float64("prob", 0.1, "per-segment change probability")
	engineName := flag.String("engine", "gpu", "chunking engine: gpu or cpu")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	engine := backup.ShredderGPU
	if *engineName == "cpu" {
		engine = backup.PthreadsCPU
	} else if *engineName != "gpu" {
		fmt.Fprintln(os.Stderr, "backupsim: engine must be gpu or cpu")
		os.Exit(2)
	}

	if err := run(*imageMB<<20, *snapshots, *prob, engine, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "backupsim:", err)
		os.Exit(1)
	}
}

func run(size, snapshots int, prob float64, engine backup.Engine, seed int64) error {
	srv, err := backup.NewServer(backup.DefaultConfig())
	if err != nil {
		return err
	}
	im := workload.NewImage(seed, size, 64<<10, prob)

	rep, err := srv.Backup("master", im.Master, engine)
	if err != nil {
		return err
	}
	fmt.Printf("master: %s at %s (all unique)\n", stats.Bytes(rep.Bytes), stats.Gbps(rep.Bandwidth))

	for i := 1; i <= snapshots; i++ {
		name := fmt.Sprintf("snapshot-%d", i)
		snap := im.Snapshot(seed + int64(i))
		rep, err := srv.Backup(name, snap, engine)
		if err != nil {
			return err
		}
		if err := srv.VerifyRestore(name, snap); err != nil {
			return err
		}
		fmt.Printf("%s: %s at %s, %.0f%% duplicate chunks, dedup %.1fx, restore verified\n",
			name, stats.Bytes(rep.Bytes), stats.Gbps(rep.Bandwidth),
			float64(rep.DupChunks)/float64(rep.Chunks)*100, rep.DedupRatio())
	}
	st := srv.SiteStats()
	fmt.Printf("backup site: %s logical, %s stored, ratio %.2fx [engine %v]\n",
		stats.Bytes(st.LogicalBytes), stats.Bytes(st.StoredBytes), st.Ratio(), engine)
	return nil
}
