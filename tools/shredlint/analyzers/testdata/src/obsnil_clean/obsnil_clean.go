// Negative suite for the obsnil analyzer: every instrumentation deref
// is guarded or goes through the nil-tolerant API, and every exported
// method of the nil-tolerant type keeps its guard.
package obsnil

import "obs"

type server struct {
	reg  *obs.Registry
	span *obs.Span
}

func (s *server) handle() {
	s.reg.Add(1)
	if s.reg != nil {
		s.reg.Hits++
	}
	if s.span == nil {
		return
	}
	s.span.Name = "handle"
	s.span.End()
}

type counter struct{ n int }

func (c *counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

func (c *counter) Reset() {
	if c == nil {
		return
	}
	c.n = 0
}

// Bump delegates every receiver use to the guarded Inc, so it is
// nil-tolerant without a guard of its own.
func (c *counter) Bump() {
	c.Inc()
	c.Inc()
}

// AddAll's guard is one disjunct of a compound condition.
func (c *counter) AddAll(ns []int) {
	if c == nil || len(ns) == 0 {
		return
	}
	for _, n := range ns {
		c.n += n
	}
}

// value-receiver methods cannot have a nil receiver and need no guard.
func (c counter) Load() int { return c.n }
