package chunker

import "testing"

func TestAnalyzeEmpty(t *testing.T) {
	d := Analyze(nil)
	if d.Chunks != 0 || d.TotalBytes != 0 {
		t.Fatalf("empty analysis: %+v", d)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	chunks := []Chunk{
		{Offset: 0, Length: 100},
		{Offset: 100, Length: 300},
		{Offset: 400, Length: 200, Forced: true},
		{Offset: 600, Length: 400},
	}
	d := Analyze(chunks)
	if d.Chunks != 4 || d.TotalBytes != 1000 {
		t.Fatalf("counts: %+v", d)
	}
	if d.Min != 100 || d.Max != 400 {
		t.Fatalf("min/max: %+v", d)
	}
	if d.Mean != 250 {
		t.Fatalf("mean %f", d.Mean)
	}
	if d.Median != 300 { // sorted: 100 200 300 400, index 2
		t.Fatalf("median %d", d.Median)
	}
	if d.Forced != 1 {
		t.Fatalf("forced %d", d.Forced)
	}
}

func TestAnalyzeOnRealSplit(t *testing.T) {
	p := DefaultParams()
	p.MinSize = 2048
	p.MaxSize = 32768
	c := mustNew(t, p)
	data := testData(70, 1<<20)
	d := Analyze(c.Split(data))
	if d.Min < 2048 && d.Chunks > 1 {
		// Only the final chunk may be under min; Min can reflect it.
		last := c.Split(data)[d.Chunks-1]
		if last.Length != d.Min {
			t.Fatalf("min %d below MinSize and not the tail", d.Min)
		}
	}
	if d.Max > 32768 {
		t.Fatalf("max %d above MaxSize", d.Max)
	}
	if d.P10 > d.Median || d.Median > d.P90 {
		t.Fatalf("percentiles out of order: %+v", d)
	}
	if d.TotalBytes != 1<<20 {
		t.Fatalf("total %d", d.TotalBytes)
	}
}
