// Package shredder is a Go reproduction of "Shredder: GPU-Accelerated
// Incremental Storage and Computation" (Bhatotia, Rodrigues & Verma,
// FAST 2012): a high-throughput content-based chunking framework for
// incremental storage and computation systems.
//
// The implementation lives under internal/:
//
//   - internal/rabin, internal/chunker — Rabin fingerprinting and the
//     sequential content-defined chunking reference
//   - internal/gpu, internal/pcie, internal/hostmem, internal/host,
//     internal/sim — the simulated device/host substrate (this machine
//     has no GPU; see DESIGN.md for the substitution argument)
//   - internal/core — the Shredder pipeline itself
//   - internal/pchunk, internal/dedup — the pthreads baseline and the
//     dedup store
//   - internal/hdfs, internal/mapreduce, internal/backup — the two
//     case studies (Inc-HDFS + Incoop, cloud backup)
//   - internal/experiments — regenerates every table and figure
//
// The benchmarks in bench_test.go wrap internal/experiments so that
// `go test -bench=.` reproduces the paper's entire evaluation; the
// cmd/shredbench binary prints the same tables interactively.
package shredder
