package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// RoutedSession is the cluster-wide analogue of ingest.Session: the
// same operation surface, with every operation routed across the ring.
// Like its single-node counterpart it runs one operation at a time;
// open several for parallel streams (they share the cluster's pools).
type RoutedSession struct {
	c *Cluster
}

// NewSession returns a session facade over the cluster.
func (c *Cluster) NewSession() *RoutedSession { return &RoutedSession{c: c} }

// Backup chunks r with the cluster's engine and backs it up under
// name, fanning each chunk to its ring owner. The returned stats
// aggregate the per-node sub-streams.
func (rs *RoutedSession) Backup(name string, r io.Reader) (*ingest.StreamStats, error) {
	st, err := rs.c.NewStream(name, obs.SpanContext{})
	if err != nil {
		return nil, err
	}
	if err := feedStream(st, rs.c.eng, r); err != nil {
		st.Abort()
		return nil, err
	}
	return st.Commit()
}

// BackupBytes is Backup over an in-memory image.
func (rs *RoutedSession) BackupBytes(name string, data []byte) (*ingest.StreamStats, error) {
	return rs.Backup(name, bytes.NewReader(data))
}

// Restore streams a backed-up name into w. An unknown name (no
// manifest on its home node) is a *ingest.NotFoundError.
func (rs *RoutedSession) Restore(name string, w io.Writer) (int64, error) {
	return rs.c.restore(name, w, obs.SpanContext{})
}

// RestoreBytes is Restore into memory.
func (rs *RoutedSession) RestoreBytes(name string) ([]byte, error) {
	var out bytes.Buffer
	if _, err := rs.c.restore(name, &out, obs.SpanContext{}); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Verify restores name and checks it against original byte-for-byte.
func (rs *RoutedSession) Verify(name string, original []byte) error {
	got, err := rs.RestoreBytes(name)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, original) {
		return errors.New("cluster: restored stream differs from original")
	}
	return nil
}

// Delete expires name everywhere: every node's sub-stream and the home
// node's manifest. The aggregated stats cover the client's stream
// alone (the manifest's own bookkeeping chunks are excluded), matching
// what a single node would have reported.
func (rs *RoutedSession) Delete(name string) (*shardstore.DeleteStats, error) {
	return rs.c.delete(name, obs.SpanContext{})
}

// feedStream chunks r and feeds the stream, copying each chunk out of
// the engine's reused buffer.
func feedStream(st *Stream, eng chunk.Engine, r io.Reader) error {
	sink := eng.Stream(func(c chunk.Chunk, data []byte) error {
		return st.Add(dedup.Sum(data), append([]byte(nil), data...))
	})
	if _, err := io.Copy(sink, r); err != nil {
		return err
	}
	return sink.Close()
}

// restore re-interleaves the per-node sub-streams in manifest order.
func (c *Cluster) restore(name string, w io.Writer, parent obs.SpanContext) (int64, error) {
	if reservedName(name) {
		return 0, ErrReservedName
	}
	sp := c.span("route_restore", parent, obs.Str("recipe", name))
	defer sp.End()

	home := c.ring.OwnerName(name)
	hsess, err := c.lease(home)
	if err != nil {
		return 0, err
	}
	mdata, err := hsess.RestoreBytes(ManifestName(name))
	if err != nil {
		if errors.Is(err, ingest.ErrNotFound) {
			// No manifest means no stream: the not-found restore left
			// the home session on a clean boundary.
			c.pools[home].Put(hsess)
			return 0, &ingest.NotFoundError{Op: "restore", Name: name}
		}
		c.pools[home].Discard(hsess)
		return 0, &NodeError{Node: c.ring.Node(home).ID, Op: "restore", Err: err}
	}
	c.met.nodeTraffic(home, 0, int64(len(mdata)))
	c.pools[home].Put(hsess)
	hashes, err := decodeManifest(mdata)
	if err != nil {
		return 0, err
	}
	sp.Set(obs.Int("chunks", int64(len(hashes))))

	// One restore stream per owner node, merged chunk by chunk in
	// manifest order; every chunk is verified against its fingerprint,
	// so a node serving wrong bytes (or drifting off chunk-per-frame
	// alignment) fails loudly instead of corrupting the stream.
	type nodeRestore struct {
		idx  int
		sess *ingest.Session
		rs   *ingest.RestoreStream
	}
	streams := make(map[int]*nodeRestore)
	discardAll := func() {
		for _, nr := range streams {
			c.pools[nr.idx].Discard(nr.sess)
		}
	}
	var total int64
	for i, h := range hashes {
		o := c.ring.Owner(h)
		nr := streams[o]
		if nr == nil {
			sess, err := c.lease(o)
			if err != nil {
				discardAll()
				return total, err
			}
			rstream, err := sess.OpenRestore(name)
			if err != nil {
				c.pools[o].Discard(sess)
				discardAll()
				return total, &NodeError{Node: c.ring.Node(o).ID, Op: "restore", Err: err}
			}
			nr = &nodeRestore{idx: o, sess: sess, rs: rstream}
			streams[o] = nr
		}
		data, err := nr.rs.NextChunk()
		if err != nil {
			discardAll()
			if err == io.EOF {
				err = errors.New("sub-stream ended before the manifest did")
			}
			// Deliberately flattened: a node missing its sub-stream is
			// cluster damage, not a not-found the caller should trust.
			return total, &NodeError{Node: c.ring.Node(o).ID, Op: "restore",
				Err: fmt.Errorf("chunk %d of %q: %v", i, name, err)} //lint:allow errhygiene flattening is the contract here: cluster damage must not surface as a trusted NotFoundError
		}
		if dedup.Sum(data) != h {
			discardAll()
			return total, &ChunkMismatchError{Name: name, Node: c.ring.Node(o).ID, Index: i}
		}
		c.met.nodeTraffic(o, 0, int64(len(data)))
		n, werr := w.Write(data)
		total += int64(n)
		if werr != nil {
			discardAll()
			return total, werr
		}
	}
	// Every sub-stream must end exactly where the manifest does.
	for _, nr := range streams {
		if _, err := nr.rs.NextChunk(); err != io.EOF {
			discardAll()
			if err == nil {
				err = errors.New("sub-stream has chunks beyond the manifest")
			}
			return total, &NodeError{Node: c.ring.Node(nr.idx).ID, Op: "restore", Err: err}
		}
		c.pools[nr.idx].Put(nr.sess)
	}
	c.met.stream("restore")
	sp.Set(obs.Int("bytes", total))
	return total, nil
}

// delete fans the deletion out to every node concurrently — a node
// without a sub-stream answers not-found, which is benign — and
// removes the manifest from the home node. The stream "exists" (no
// top-level not-found) if any node had a sub-stream or the manifest
// was present.
func (c *Cluster) delete(name string, parent obs.SpanContext) (*shardstore.DeleteStats, error) {
	if reservedName(name) {
		return nil, ErrReservedName
	}
	sp := c.span("route_delete", parent, obs.Str("recipe", name))
	defer sp.End()

	home := c.ring.OwnerName(name)
	var (
		mu       sync.Mutex
		agg      shardstore.DeleteStats
		found    bool
		firstErr error
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for i := range c.pools {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds := sp.Child("node_delete", obs.Str("node", c.ring.Node(i).ID))
			defer ds.End()
			sess, err := c.lease(i)
			if err != nil {
				report(err)
				return
			}
			st, err := sess.Delete(name)
			if err != nil && !errors.Is(err, ingest.ErrNotFound) {
				c.pools[i].Discard(sess)
				report(&NodeError{Node: c.ring.Node(i).ID, Op: "delete", Err: err})
				return
			}
			manifestFound := false
			if i == home {
				// The manifest goes last, so a crash mid-delete leaves
				// a stream that still fully restores. Its bookkeeping
				// chunks are real freed bytes but not part of the
				// client's stream, so they stay out of the aggregate.
				if _, merr := sess.Delete(ManifestName(name)); merr == nil {
					manifestFound = true
				} else if !errors.Is(merr, ingest.ErrNotFound) {
					c.pools[i].Discard(sess)
					report(&NodeError{Node: c.ring.Node(i).ID, Op: "delete", Err: merr})
					return
				}
			}
			c.pools[i].Put(sess)
			mu.Lock()
			if err == nil {
				found = true
				agg.ChunksReleased += st.ChunksReleased
				agg.ChunksFreed += st.ChunksFreed
				agg.BytesFreed += st.BytesFreed
			}
			if manifestFound {
				found = true
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if !found {
		return nil, &ingest.NotFoundError{Op: "delete", Name: name}
	}
	c.met.stream("delete")
	sp.Set(obs.Int("chunks_released", agg.ChunksReleased),
		obs.Int("chunks_freed", agg.ChunksFreed),
		obs.Int("bytes_freed", agg.BytesFreed))
	return &agg, nil
}
