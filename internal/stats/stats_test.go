package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "Size", "Value")
	tb.AddRow("16M", "1.5")
	tb.AddRow("256M", "24.0")
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// Columns align: "Value" starts at the same offset in header and rows.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "Value") != strings.Index(row, "1.5") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("x")           // short
	tb.AddRow("y", "z", "w") // long, extra dropped
	out := tb.String()
	if strings.Contains(out, "w") {
		t.Fatal("extra cell not dropped")
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		Bytes(512):                  "512B",
		Bytes(4 << 10):              "4KiB",
		Bytes(32 << 20):             "32MiB",
		Bytes(3 << 30):              "3.0GiB",
		GBps(5.406e9):               "5.41 GB/s",
		Gbps(1.25e9):                "10.00 Gbps",
		Ms(1500 * time.Microsecond): "1.50 ms",
		Speedup(5.21):               "5.21x",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %f", m)
	}
}
