// Package backup implements the paper's second case study (§7): a
// consolidated cloud backup server that mounts VM image snapshots,
// chunks them with Shredder (or the pthreads CPU baseline), hashes each
// chunk, looks it up in a dedup index, and ships only unique chunks to
// the backup site, where an agent reconstructs the original images.
//
// The experiment environment follows the paper's own memory-driven
// emulation (§7.3): a master image is kept in memory, snapshots are
// derived from it by replacing segments according to a similarity
// table, and the image generation rate is fixed at 10 Gbps. Minimum and
// maximum chunk sizes are enabled, which costs the GPU path part of its
// advantage (the skipped regions are still scanned and discarded by the
// Store thread) — the reason Figure 18 reports "only" ~2.5x.
package backup

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/chunker"
	"shredder/internal/core"
	"shredder/internal/dedup"
	"shredder/internal/host"
	"shredder/internal/sim"
)

// Engine selects who chunks on the backup server.
type Engine int

const (
	// PthreadsCPU is the host-only parallel chunker baseline.
	PthreadsCPU Engine = iota
	// ShredderGPU offloads chunking to the simulated GPU.
	ShredderGPU
)

func (e Engine) String() string {
	if e == ShredderGPU {
		return "shredder-gpu"
	}
	return "pthreads-cpu"
}

// Config parameterizes the backup server.
type Config struct {
	// Chunking must set MinSize/MaxSize (commercial practice, §7.3).
	Chunking chunker.Params
	// Shredder configures the GPU pipeline when Engine is ShredderGPU.
	Shredder core.Config
	// HostChunk models the pthreads baseline when Engine is PthreadsCPU.
	HostChunk host.ChunkModel
	// SourceRate is the image generation / snapshot-mount ingest rate
	// (10 Gbps in the paper).
	SourceRate float64
	// LinkRate is the network path to the backup site.
	LinkRate float64
	// HashBandwidth is the Store thread's chunk-hash throughput.
	HashBandwidth float64
	// IndexHitCost and IndexMissCost are per-chunk lookup costs; a miss
	// additionally inserts and triggers a container write. The index is
	// deliberately unoptimized, as in the paper ("not a limitation of
	// our chunking scheme but of the unoptimized index lookup").
	IndexHitCost  time.Duration
	IndexMissCost time.Duration
	// OptimizedIndex models ChunkStash-style index maintenance (§7.3's
	// closing remark, citation [18]): compact in-RAM signatures plus an
	// append-only log shrink the per-miss cost by roughly an order of
	// magnitude, which should keep backup bandwidth at the target rate
	// across the whole similarity spectrum.
	OptimizedIndex bool
	// OptimizedMissCost replaces IndexMissCost when OptimizedIndex is
	// set.
	OptimizedMissCost time.Duration
	// PointerCost is the cost of shipping a duplicate chunk's pointer.
	PointerCost time.Duration
	// MinMaxPenalty inflates the GPU chunking stage: with min/max sizes
	// the kernel still fingerprints skipped regions and the Store
	// thread discards boundaries serially (§7.3).
	MinMaxPenalty float64
	// BufferSize is the pipeline granularity.
	BufferSize int
}

// DefaultConfig returns the calibrated §7.3 setup.
func DefaultConfig() Config {
	p := chunker.DefaultParams()
	p.MaskBits = 12 // ~4 KB average before clamping
	p.Marker = 1<<12 - 1
	p.MinSize = 2 << 10
	p.MaxSize = 32 << 10
	score := core.DefaultConfig()
	score.Chunking = chunk.RabinSpec(p)
	// Smaller buffers than the pure-chunking pipeline: backup images
	// arrive snapshot by snapshot and the deeper pipeline hides the
	// index/network stages behind chunking.
	score.BufferSize = 8 << 20
	return Config{
		Chunking:          p,
		Shredder:          score,
		HostChunk:         host.DefaultChunkModel(),
		SourceRate:        10e9 / 8, // 10 Gbps in bytes/sec
		LinkRate:          10e9 / 8,
		HashBandwidth:     2.5e9,
		IndexHitCost:      2 * time.Microsecond,
		IndexMissCost:     15 * time.Microsecond,
		OptimizedMissCost: 1500 * time.Nanosecond,
		PointerCost:       200 * time.Nanosecond,
		MinMaxPenalty:     1.75,
		BufferSize:        8 << 20,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Chunking.MinSize == 0 || c.Chunking.MaxSize == 0 {
		return errors.New("backup: min and max chunk sizes must be set (§7.3)")
	}
	if err := c.Chunking.Validate(); err != nil {
		return err
	}
	if c.SourceRate <= 0 || c.LinkRate <= 0 || c.HashBandwidth <= 0 {
		return errors.New("backup: rates must be positive")
	}
	if c.MinMaxPenalty < 1 {
		return errors.New("backup: min/max penalty must be >= 1")
	}
	if c.BufferSize < 1 {
		return errors.New("backup: buffer size must be positive")
	}
	return nil
}

// Report describes one backup run.
type Report struct {
	Engine      Engine
	Bytes       int64
	Chunks      int
	DupChunks   int
	UniqueBytes int64
	// SimTime is the modeled wall time of the backup; Bandwidth is
	// Bytes/SimTime — Figure 18's y-axis.
	SimTime   time.Duration
	Bandwidth float64
	// Stage busy totals.
	Source, Chunk, Index, Network time.Duration
}

// DedupRatio returns logical over unique bytes for this run.
func (r *Report) DedupRatio() float64 {
	if r.UniqueBytes == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.UniqueBytes)
}

// Server is the backup server plus the backup-site agent's store.
type Server struct {
	cfg   Config
	chk   *chunker.Chunker
	shred *core.Shredder
	site  *dedup.Store // the backup site's content store
	// recipes lets the agent rebuild any image that was backed up.
	recipes map[string]dedup.Recipe
}

// NewServer builds a backup server.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chk, err := chunker.New(cfg.Chunking)
	if err != nil {
		return nil, err
	}
	cfg.Shredder.Chunking = chunk.RabinSpec(cfg.Chunking)
	shred, err := core.New(cfg.Shredder)
	if err != nil {
		return nil, err
	}
	site, err := dedup.NewStore(0)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		chk:     chk,
		shred:   shred,
		site:    site,
		recipes: make(map[string]dedup.Recipe),
	}, nil
}

// SiteStats exposes the backup site's dedup statistics.
func (s *Server) SiteStats() dedup.Stats { return s.site.Stats() }

// Backup processes one image snapshot under the given name and engine:
// it chunks the image (functionally real, identical for both engines),
// dedups against everything backed up so far, and returns the modeled
// timing report. The image is reconstructible afterwards via Restore.
func (s *Server) Backup(name string, image []byte, engine Engine) (*Report, error) {
	if len(image) == 0 {
		return nil, errors.New("backup: empty image")
	}
	rep := &Report{Engine: engine, Bytes: int64(len(image))}

	// ---- Functional path: chunk, hash, dedup, store. ----
	chunks := s.chk.Split(image)
	recipe := make(dedup.Recipe, 0, len(chunks))
	for _, ch := range chunks {
		ref, dup := s.site.Put(image[ch.Offset:ch.End()])
		rep.Chunks++
		if dup {
			rep.DupChunks++
		} else {
			rep.UniqueBytes += ch.Length
		}
		recipe = append(recipe, ref)
	}
	s.recipes[name] = recipe

	// ---- Timing: four-stage pipeline over BufferSize buffers. ----
	s.simulate(rep)
	return rep, nil
}

// Restore reconstructs a backed-up image at the backup site, verifying
// the recipe exists.
func (s *Server) Restore(name string) ([]byte, error) {
	recipe, ok := s.recipes[name]
	if !ok {
		return nil, fmt.Errorf("backup: no image named %q", name)
	}
	return s.site.Reconstruct(recipe)
}

// VerifyRestore checks a restored image against the original.
func (s *Server) VerifyRestore(name string, original []byte) error {
	got, err := s.Restore(name)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, original) {
		return fmt.Errorf("backup: restored image %q differs from original", name)
	}
	return nil
}

// simulate replays the backup through the pipeline model. Stages:
// source (snapshot mount at 10 Gbps) → chunking (GPU or CPU) →
// hash+index lookup → network transfer of unique bytes and pointers.
func (s *Server) simulate(rep *Report) {
	n := rep.Bytes
	buffers := int((n + int64(s.cfg.BufferSize) - 1) / int64(s.cfg.BufferSize))
	if buffers == 0 {
		buffers = 1
	}
	perBuf := n / int64(buffers)

	chunksPer := rep.Chunks / buffers
	dupsPer := rep.DupChunks / buffers
	uniqueBytesPer := rep.UniqueBytes / int64(buffers)

	// Per-buffer stage service times.
	sourceT := time.Duration(float64(perBuf) / s.cfg.SourceRate * 1e9)
	var chunkT time.Duration
	if rep.Engine == ShredderGPU {
		kern := s.shred.Kernel().EstimateTime(perBuf, s.cfg.Shredder.Mode.KernelMode())
		chunkT = time.Duration(float64(kern) * s.cfg.MinMaxPenalty)
	} else {
		chunkT = s.cfg.HostChunk.ChunkTime(perBuf, host.Hoard)
	}
	hashT := time.Duration(float64(perBuf) / s.cfg.HashBandwidth * 1e9)
	missesPer := chunksPer - dupsPer
	missCost := s.cfg.IndexMissCost
	if s.cfg.OptimizedIndex {
		missCost = s.cfg.OptimizedMissCost
	}
	indexT := hashT +
		time.Duration(dupsPer)*s.cfg.IndexHitCost +
		time.Duration(missesPer)*missCost
	netT := time.Duration(float64(uniqueBytesPer)/s.cfg.LinkRate*1e9) +
		time.Duration(dupsPer)*s.cfg.PointerCost

	var e sim.Engine
	source := sim.NewResource(&e, "source")
	chunkR := sim.NewResource(&e, "chunk")
	index := sim.NewResource(&e, "index")
	network := sim.NewResource(&e, "network")
	tokens := sim.NewTokens(&e, 4)
	for i := 0; i < buffers; i++ {
		tokens.Acquire(func() {
			source.Submit(sourceT, func(_, _ sim.Time) {
				chunkR.Submit(chunkT, func(_, _ sim.Time) {
					index.Submit(indexT, func(_, _ sim.Time) {
						network.Submit(netT, func(_, _ sim.Time) {
							tokens.Release()
						})
					})
				})
			})
		})
	}
	end := e.Run()
	rep.SimTime = end.Duration()
	if rep.SimTime > 0 {
		rep.Bandwidth = float64(n) / rep.SimTime.Seconds()
	}
	rep.Source = source.BusyTotal()
	rep.Chunk = chunkR.BusyTotal()
	rep.Index = index.BusyTotal()
	rep.Network = network.BusyTotal()
}
