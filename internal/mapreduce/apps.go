package mapreduce

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ---- Word count ----

// WordCount is the classic word-frequency job (Figure 15's first
// application).
type WordCount struct{}

// Map emits (word, "1") for every whitespace-separated token.
func (WordCount) Map(split []byte, emit func(k, v string)) {
	for _, w := range strings.Fields(string(split)) {
		emit(w, "1")
	}
}

// Combine sums integer counts.
func (WordCount) Combine(key string, values []string) string { return sumInts(values) }

// Reduce sums integer counts.
func (WordCount) Reduce(key string, values []string) string { return sumInts(values) }

// WordCountJob returns the ready-to-run job.
func WordCountJob() Job {
	return Job{Name: "word-count", Mapper: WordCount{}, Combiner: WordCount{}, Reducer: WordCount{}}
}

func sumInts(values []string) string {
	var s int64
	for _, v := range values {
		n, _ := strconv.ParseInt(v, 10, 64)
		s += n
	}
	return strconv.FormatInt(s, 10)
}

// ---- Co-occurrence matrix ----

// CoOccurrence counts adjacent word pairs within each line (a sparse
// co-occurrence matrix with window 1, Figure 15's second application).
type CoOccurrence struct{}

// Map emits ("a|b", "1") for every adjacent pair a b on a line.
func (CoOccurrence) Map(split []byte, emit func(k, v string)) {
	for _, line := range strings.Split(string(split), "\n") {
		words := strings.Fields(line)
		for i := 0; i+1 < len(words); i++ {
			emit(words[i]+"|"+words[i+1], "1")
		}
	}
}

// Combine sums pair counts.
func (CoOccurrence) Combine(key string, values []string) string { return sumInts(values) }

// Reduce sums pair counts.
func (CoOccurrence) Reduce(key string, values []string) string { return sumInts(values) }

// CoOccurrenceJob returns the ready-to-run job.
func CoOccurrenceJob() Job {
	return Job{Name: "co-occurrence", Mapper: CoOccurrence{}, Combiner: CoOccurrence{}, Reducer: CoOccurrence{}}
}

// ---- K-means ----

// Point is a 2-D point.
type Point struct{ X, Y float64 }

// KMeansMapper assigns each point of a split to its nearest centroid
// and emits partial sums; the centroids are fixed per iteration.
type KMeansMapper struct{ Centroids []Point }

// Map parses "x y" lines and emits (centroidIndex, "sumX sumY count").
func (m KMeansMapper) Map(split []byte, emit func(k, v string)) {
	sums := make([]Point, len(m.Centroids))
	counts := make([]int64, len(m.Centroids))
	for _, line := range strings.Split(string(split), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		x, err1 := strconv.ParseFloat(f[0], 64)
		y, err2 := strconv.ParseFloat(f[1], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for i, c := range m.Centroids {
			d := (x-c.X)*(x-c.X) + (y-c.Y)*(y-c.Y)
			if d < bestD {
				best, bestD = i, d
			}
		}
		sums[best].X += x
		sums[best].Y += y
		counts[best]++
	}
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		emit(strconv.Itoa(i), encodeSums(sums[i], counts[i]))
	}
}

// KMeansCombine sums partial (sumX, sumY, count) triples.
type KMeansCombine struct{}

// Combine adds the triples component-wise.
func (KMeansCombine) Combine(key string, values []string) string {
	var p Point
	var n int64
	for _, v := range values {
		q, c := decodeSums(v)
		p.X += q.X
		p.Y += q.Y
		n += c
	}
	return encodeSums(p, n)
}

// KMeansReduce turns the final sums into a centroid, quantized to the
// unit grid (0.1–1% relative precision at this workload's scale).
// Quantization is the stability/precision trade every incremental
// iterative computation makes: centroids computed from inputs that
// differ by a few percent of points snap to the same grid value, so the
// incremental run's iteration trajectory coincides with the baseline's
// and later iterations hit the memo.
type KMeansReduce struct{}

// Reduce computes the new centroid "x y".
func (KMeansReduce) Reduce(key string, values []string) string {
	p, n := decodeSums(values[0])
	if n == 0 {
		return "0 0"
	}
	return fmt.Sprintf("%.0f %.0f", p.X/float64(n), p.Y/float64(n))
}

func encodeSums(p Point, n int64) string {
	return strconv.FormatFloat(p.X, 'f', 4, 64) + " " +
		strconv.FormatFloat(p.Y, 'f', 4, 64) + " " +
		strconv.FormatInt(n, 10)
}

func decodeSums(s string) (Point, int64) {
	f := strings.Fields(s)
	if len(f) != 3 {
		return Point{}, 0
	}
	x, _ := strconv.ParseFloat(f[0], 64)
	y, _ := strconv.ParseFloat(f[1], 64)
	n, _ := strconv.ParseInt(f[2], 10, 64)
	return Point{X: x, Y: y}, n
}

// KMeansJob builds one iteration's job. The centroids are folded into
// the job name (the memoization identity) quantized to a 1.0 grid:
// centroid positions within one unit of each other produce nearly
// identical assignments on separated clusters, so iterations whose
// centroids drift less than that — the common case when only a few
// percent of the input changed — reuse each other's map tasks. This is
// the approximate-reuse trade every incremental k-means makes; the
// computed centroids themselves keep their full 0.1 precision.
func KMeansJob(centroids []Point) Job {
	var sb strings.Builder
	sb.WriteString("k-means")
	for _, c := range centroids {
		fmt.Fprintf(&sb, "|%.0f,%.0f", c.X, c.Y)
	}
	return Job{
		Name:     sb.String(),
		Mapper:   KMeansMapper{Centroids: centroids},
		Combiner: KMeansCombine{},
		Reducer:  KMeansReduce{},
	}
}

// KMeansResult is the outcome of a full k-means driver run.
type KMeansResult struct {
	Centroids  []Point
	Iterations int
	Metrics    Metrics // summed over iterations
}

// KMeans runs Lloyd's algorithm for at most maxIters iterations (or
// until centroids stop moving at 2-decimal precision), one MapReduce
// job per iteration.
func KMeans(e *Engine, splits [][]byte, initial []Point, maxIters int) (*KMeansResult, error) {
	cents := append([]Point(nil), initial...)
	res := &KMeansResult{}
	for it := 0; it < maxIters; it++ {
		job := KMeansJob(cents)
		out, met, err := e.Run(job, splits)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		res.Metrics.MapTasks += met.MapTasks
		res.Metrics.MapExecuted += met.MapExecuted
		res.Metrics.MapBytes += met.MapBytes
		res.Metrics.MapBytesExecuted += met.MapBytesExecuted
		res.Metrics.CombineNodes += met.CombineNodes
		res.Metrics.CombineExecuted += met.CombineExecuted
		res.Metrics.Keys += met.Keys
		next := append([]Point(nil), cents...)
		moved := false
		for i := range next {
			v, ok := out[strconv.Itoa(i)]
			if !ok {
				continue
			}
			f := strings.Fields(v)
			if len(f) != 2 {
				continue
			}
			x, _ := strconv.ParseFloat(f[0], 64)
			y, _ := strconv.ParseFloat(f[1], 64)
			if x != next[i].X || y != next[i].Y {
				moved = true
			}
			next[i] = Point{X: x, Y: y}
		}
		cents = next
		if !moved {
			break
		}
	}
	res.Centroids = cents
	return res, nil
}
