// Positive suite for the stripelock analyzer: blocking work, channel
// traffic, and nested stripe acquisition under a shard stripe lock.
package shardstore

import (
	"os"
	"sync"
	"time"
)

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

type store struct {
	shards []*shard
	ch     chan int
}

func (st *store) bad(sh *shard, path string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, err := os.ReadFile(path)  // want `os.ReadFile called while a shard stripe lock is held`
	st.ch <- 1                   // want `channel send while a shard stripe lock is held`
	<-st.ch                      // want `channel receive while a shard stripe lock is held`
	time.Sleep(time.Millisecond) // want `time.Sleep while a shard stripe lock is held`
	return err
}

func (st *store) deadlock(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `second stripe lock acquired while one is held`
	b.m["x"]++
	b.mu.Unlock()
	a.mu.Unlock()
}
