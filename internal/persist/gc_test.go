package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
	"shredder/internal/workload"
)

// chunk256 builds a distinct 256-byte test chunk.
func chunk256(tag string, i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("%s%03d-", tag, i)), 32)
}

// ingestStream writes chunks as a named stream.
func ingestStream(t *testing.T, st *shardstore.Store, name string, chunks [][]byte) shardstore.Recipe {
	t.Helper()
	r, _, err := st.WriteStream(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe(name, r); err != nil {
		t.Fatal(err)
	}
	return r
}

// containerBytes sums the on-disk container file sizes under dir.
func containerBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".dat" {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestDeleteCompactDiskRoundTrip is the end-to-end disk reclamation
// property: delete + compact actually shrinks the bytes on disk,
// everything retained restores byte-exactly before AND after a
// restart, and previously-freed chunks re-ingest as new.
func TestDeleteCompactDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, ContainerSize: 1 << 10, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)

	var keepChunks, dropChunks [][]byte
	for i := 0; i < 24; i++ {
		keepChunks = append(keepChunks, chunk256("keep", i))
		dropChunks = append(dropChunks, chunk256("drop", i))
	}
	shared := chunk256("shared", 0)
	keep := ingestStream(t, st, "keep", append([][]byte{shared}, keepChunks...))
	ingestStream(t, st, "drop", append([][]byte{shared}, dropChunks...))
	// Roll the open containers so the drop stream's bytes are all in
	// closed (compactable) containers.
	ingestStream(t, st, "fill", [][]byte{chunk256("fill", 0), chunk256("fill", 1)})

	before := containerBytes(t, dir)
	ds, err := st.DeleteRecipe("drop")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ChunksReleased != 25 || ds.ChunksFreed != 24 {
		t.Fatalf("delete stats %+v, want 25 released / 24 freed", ds)
	}
	statsAfterDelete := st.Stats()
	cs, err := st.Compact(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Containers == 0 {
		t.Fatalf("compaction found nothing: %+v", cs)
	}
	after := containerBytes(t, dir)
	if after >= before {
		t.Fatalf("disk usage did not shrink: %d -> %d", before, after)
	}
	if st.Stats() != statsAfterDelete {
		t.Fatalf("compaction changed stats: %+v != %+v", st.Stats(), statsAfterDelete)
	}
	wantKeep := append([]byte(nil), shared...)
	wantKeep = append(wantKeep, bytes.Join(keepChunks, nil)...)
	if data, err := st.Reconstruct(keep); err != nil || !bytes.Equal(data, wantKeep) {
		t.Fatalf("keep stream broken after compaction: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the compacted layout recovers exactly.
	st = openStore(t, dir, opts)
	defer st.Close()
	if got := st.Stats(); got != statsAfterDelete {
		t.Fatalf("recovered stats %+v, want %+v", got, statsAfterDelete)
	}
	if names := st.RecipeNames(); len(names) != 2 || names[0] != "fill" || names[1] != "keep" {
		t.Fatalf("recovered recipes %v", names)
	}
	if data, err := st.Reconstruct(keep); err != nil || !bytes.Equal(data, wantKeep) {
		t.Fatalf("keep stream broken after restart: %v", err)
	}
	// The shared chunk survived (keep still references it); the
	// drop-only chunks are really gone and re-ingest as new.
	if rc := st.Refcount(dedup.Sum(shared)); rc != 1 {
		t.Fatalf("shared chunk refcount %d, want 1", rc)
	}
	_, dup, err := st.PutBatch(dropChunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dup {
		if d {
			t.Fatalf("freed chunk %d still classified duplicate after restart", i)
		}
	}
}

// TestCompactedStoreKeepsDeduplicating: chunks moved by the compactor
// are still found by the index (same fingerprints), so a re-push of a
// retained stream is fully duplicate.
func TestCompactedStoreKeepsDeduplicating(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 10, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)
	defer st.Close()
	var keepChunks, dropChunks [][]byte
	for i := 0; i < 8; i++ {
		keepChunks = append(keepChunks, chunk256("alive", i))
		dropChunks = append(dropChunks, chunk256("doomed", i))
	}
	// Interleave so every container is half dead after the delete.
	for i := range keepChunks {
		if _, _, err := st.Put(dropChunks[i]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Put(keepChunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	var keep, drop shardstore.Recipe
	for i := range keepChunks {
		keep = append(keep, dedup.Sum(keepChunks[i]))
		drop = append(drop, dedup.Sum(dropChunks[i]))
	}
	if err := st.CommitRecipe("keep", keep); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitRecipe("drop", drop); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DeleteRecipe("drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(0.9); err != nil {
		t.Fatal(err)
	}
	_, dup, err := st.PutBatch(keepChunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dup {
		if !d {
			t.Fatalf("moved chunk %d not recognized as duplicate", i)
		}
	}
}

// TestRecipeLogCompaction: retention churn (commit + delete over and
// over) must not grow the recipe journal without bound — the journal
// is rewritten once mostly dead, and recovery still sees exactly the
// live set.
func TestRecipeLogCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)
	// A recipe big enough that a few hundred dead copies far exceed the
	// compaction slack.
	big := make(shardstore.Recipe, 64)
	for i := range big {
		big[i] = dedup.Sum([]byte{byte(i)})
	}
	for round := 0; round < 200; round++ {
		name := fmt.Sprintf("gen-%d", round)
		if err := st.CommitRecipe(name, big); err != nil {
			t.Fatal(err)
		}
		if round >= 3 {
			if _, err := st.DeleteRecipe(fmt.Sprintf("gen-%d", round-3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, recipeLogName))
	if err != nil {
		t.Fatal(err)
	}
	// 200 commits x ~2 KiB each would be ~400 KiB uncompacted; the live
	// set is 3 recipes. Anything near the slack floor proves rewriting.
	if fi.Size() > 2*recipeLogSlack {
		t.Fatalf("recipe journal grew to %d bytes despite churn", fi.Size())
	}
	st = openStore(t, dir, opts)
	defer st.Close()
	names := st.RecipeNames()
	if len(names) != 3 {
		t.Fatalf("recovered %d recipes, want the 3 live generations: %v", len(names), names)
	}
	for _, name := range names {
		r, _ := st.Recipe(name)
		if len(r) != len(big) {
			t.Fatalf("recipe %s recovered with %d entries, want %d", name, len(r), len(big))
		}
	}
}

// TestRetentionSpaceAmplification is the acceptance property in test
// form: generations of a churning image ingested with a sliding
// retention window, oldest deleted and store compacted each round —
// the on-disk footprint must end within 1.5x the live stored bytes,
// and every retained generation must restore byte-exactly.
func TestRetentionSpaceAmplification(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 4, ContainerSize: 64 << 10, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)
	defer func() { st.Close() }()

	const (
		gens    = 8
		retain  = 2
		size    = 2 << 20
		segSize = 16 << 10
	)
	chunkGen := func(data []byte) [][]byte {
		return splitChunks(data, 4<<10)
	}
	rng := workload.Random // alias for clarity
	data := rng(31, size)
	type gen struct {
		name string
		data []byte
		r    shardstore.Recipe
	}
	var live []gen
	for g := 1; g <= gens; g++ {
		if g > 1 {
			// 50% segment churn, chained.
			prev := data
			data = append([]byte(nil), prev...)
			for off := 0; off < len(data); off += 2 * segSize {
				end := off + segSize
				if end > len(data) {
					end = len(data)
				}
				copy(data[off:end], rng(31+int64(g)*1000+int64(off), end-off))
			}
		}
		name := fmt.Sprintf("gen-%d", g)
		r := ingestStream(t, st, name, chunkGen(data))
		live = append(live, gen{name, data, r})
		if len(live) > retain {
			oldest := live[0]
			live = live[1:]
			if _, err := st.DeleteRecipe(oldest.name); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Compact(0.7); err != nil {
			t.Fatal(err)
		}
	}
	for _, lg := range live {
		if data, err := st.Reconstruct(lg.r); err != nil || !bytes.Equal(data, lg.data) {
			t.Fatalf("retained %s broken: %v", lg.name, err)
		}
	}
	stored := st.Stats().StoredBytes
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var disk int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			disk += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if amp := float64(disk) / float64(stored); amp > 1.5 {
		t.Fatalf("space amplification %.2fx (%d disk / %d stored) exceeds 1.5x", amp, disk, stored)
	}
	// And it all recovers.
	st = openStore(t, dir, opts)
	for _, lg := range live {
		if data, err := st.Reconstruct(lg.r); err != nil || !bytes.Equal(data, lg.data) {
			t.Fatalf("after restart, %s broken: %v", lg.name, err)
		}
	}
}

// splitChunks cuts data into fixed-size pieces.
func splitChunks(data []byte, size int) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// TestDeleteDurability: a delete acknowledged under FsyncAlways
// survives an unclean stop (no Close): the tombstone and the released
// references are both on disk.
func TestDeleteDurability(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, Fsync: FsyncPolicy{Mode: FsyncAlways}}
	st := openStore(t, dir, opts)
	ingestStream(t, st, "a", [][]byte{chunk256("a", 0)})
	ingestStream(t, st, "b", [][]byte{chunk256("b", 0)})
	if _, err := st.DeleteRecipe("a"); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the process dying right after the delete ack
	// by recovering from a copy of the files as they are now.
	crash := t.TempDir()
	copyTree(t, dir, crash)
	st2 := openStore(t, crash, opts)
	defer st2.Close()
	if _, ok := st2.Recipe("a"); ok {
		t.Fatal("deleted recipe resurrected after crash")
	}
	if _, ok := st2.Has(dedup.Sum(chunk256("a", 0))); ok {
		t.Fatal("released chunk still indexed after crash")
	}
	if data, err := st2.Reconstruct(shardstore.Recipe{dedup.Sum(chunk256("b", 0))}); err != nil || !bytes.Equal(data, chunk256("b", 0)) {
		t.Fatalf("retained stream lost: %v", err)
	}
}
