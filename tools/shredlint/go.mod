// shredlint is its own module on purpose: the main shredder module
// stays dependency-free, and the lint suite can never leak into the
// product build graph.
module shredder/tools/shredlint

go 1.24
