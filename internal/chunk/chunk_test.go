package chunk

import (
	"errors"
	"testing"
)

func TestParseAlgo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algo
	}{{"rabin", AlgoRabin}, {"fastcdc", AlgoFastCDC}} {
		got, err := ParseAlgo(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAlgo(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseAlgo("gear2000"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if err := FastCDCSpec(8 << 10).Validate(); err != nil {
		t.Fatalf("default fastcdc spec invalid: %v", err)
	}
	bad := []Spec{
		{},                  // zero algo
		{Algo: 99},          // unknown algo
		{Algo: AlgoRabin},   // zero window/mask
		{Algo: AlgoFastCDC}, // zero sizes
		func() Spec { // rabin spec with fastcdc fields
			s := DefaultSpec()
			s.AvgSize = 4096
			return s
		}(),
		func() Spec { // fastcdc spec with rabin fields
			s := FastCDCSpec(4096)
			s.Window = 48
			return s
		}(),
		func() Spec { // avg not a power of two
			s := FastCDCSpec(4096)
			s.AvgSize = 4095
			return s
		}(),
		func() Spec { // min above avg
			s := FastCDCSpec(4096)
			s.MinSize = 8192
			return s
		}(),
		func() Spec { // normalization out of range
			s := FastCDCSpec(4096)
			s.Normalization = 4
			return s
		}(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: spec %+v validated", i, s)
		}
	}
	var uae *UnknownAlgoError
	if err := (Spec{Algo: 99}).Validate(); !errors.As(err, &uae) || uae.Algo != 99 {
		t.Fatalf("unknown algo error = %v", err)
	}
}

func TestSpecWireRoundTrip(t *testing.T) {
	specs := []Spec{
		DefaultSpec(),
		FastCDCSpec(4 << 10),
		func() Spec {
			s := FastCDCSpec(64 << 10)
			s.Normalization = 3
			s.Seed = 0xdeadbeef
			return s
		}(),
		func() Spec {
			s := DefaultSpec()
			s.MinSize = 2 << 10
			s.MaxSize = 32 << 10
			s.MaskBits = 12
			s.Marker = 1<<12 - 1
			return s
		}(),
	}
	for i, s := range specs {
		enc := EncodeSpec(s)
		if len(enc) != specWireSize {
			t.Fatalf("case %d: encoded %d bytes, want %d", i, len(enc), specWireSize)
		}
		got, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got != s {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, s)
		}
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	if _, err := DecodeSpec(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := DecodeSpec(make([]byte, specWireSize-1)); err == nil {
		t.Fatal("short payload accepted")
	}
	enc := EncodeSpec(DefaultSpec())
	enc[0] = 77 // unknown algorithm id
	var uae *UnknownAlgoError
	if _, err := DecodeSpec(enc); !errors.As(err, &uae) {
		t.Fatalf("unknown algo id error = %v", err)
	}
}

func TestFactoryBuildsBothEngines(t *testing.T) {
	r, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*Rabin); !ok {
		t.Fatalf("DefaultSpec built %T", r)
	}
	f, err := New(FastCDCSpec(4 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*FastCDC); !ok {
		t.Fatalf("FastCDCSpec built %T", f)
	}
	if _, err := New(Spec{Algo: 42}); err == nil {
		t.Fatal("factory accepted unknown algo")
	}
}
