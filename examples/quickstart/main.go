// Quickstart: chunk a byte stream with the Shredder pipeline and
// receive every chunk through the upcall, exactly the workflow of
// Figure 2 — Reader → Transfer → Chunking kernel → Store → application.
package main

import (
	"fmt"
	"log"

	"shredder/internal/chunk"
	"shredder/internal/core"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	// Configure the full-optimization pipeline (double buffering over a
	// pinned ring, 4-stage streaming pipeline, memory coalescing).
	cfg := core.DefaultConfig()
	cfg.BufferSize = 8 << 20
	shred, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 64 MB of synthetic data stands in for a SAN stream.
	data := workload.Random(1, 64<<20)

	var first []chunk.Chunk
	report, err := shred.ChunkBytes(data, func(c chunk.Chunk, payload []byte) error {
		if len(first) < 5 {
			first = append(first, c)
		}
		// payload is only valid during the call; real applications hash
		// or forward it here.
		_ = payload
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chunked %s into %d chunks in %v (simulated %s)\n",
		stats.Bytes(report.Bytes), report.Chunks, report.SimTime, report.Mode)
	fmt.Printf("throughput %s; stage busy: reader %v, transfer %v, kernel %v, store %v\n",
		stats.GBps(report.Throughput),
		report.Stage.Reader.Round(1e6), report.Stage.Transfer.Round(1e6),
		report.Stage.Kernel.Round(1e6), report.Stage.Store.Round(1e6))
	fmt.Println("first chunks:")
	for _, c := range first {
		fmt.Printf("  offset %9d length %6d cut=%#x\n", c.Offset, c.Length, c.Fingerprint)
	}
}
