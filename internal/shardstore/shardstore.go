// Package shardstore implements a sharded, lock-striped, concurrency-
// safe content-addressed chunk store: the service-grade successor to
// the single-goroutine dedup.Store. The fingerprint space is split into
// N independent shards keyed by a hash prefix; each shard owns its own
// index, container set and reference counts behind its own lock, so
// concurrent sessions ingesting into disjoint regions of the hash space
// never contend. Aggregate statistics are maintained with atomics and
// are exact whenever the store is quiescent.
//
// Chunk bytes live behind a pluggable Backing: MemoryBacking keeps
// containers in RAM (the default, via New), while internal/persist
// backs them with on-disk container files plus a per-shard write-ahead
// log, so Open rebuilds the exact index, refcounts, recipes and Stats
// after a restart.
//
// Semantics are byte-identical to dedup.Store: the same sequence of
// Put calls classifies exactly the same chunks as duplicates, produces
// the same aggregate Stats, and reconstructs streams byte-exactly.
// With a single shard the packing (container/offset/length of every
// ref) is identical to dedup.Store as well; the differential test in
// this package asserts both properties.
package shardstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"shredder/internal/dedup"
)

// Hash is a chunk fingerprint (re-exported so callers need not import
// dedup just for the type).
type Hash = dedup.Hash

// Ref locates a stored chunk: a shard, a container within the shard,
// and a byte range within the container.
type Ref struct {
	Shard     int
	Container int
	Offset    int64
	Length    int64
}

// Recipe is the ordered list of refs that reconstructs one stream.
type Recipe []Ref

// MaxShards bounds the shard count; 1024 shards of independent maps is
// far past the point of diminishing returns for in-memory indexes.
const MaxShards = 1024

// shard is one stripe of the store. All fields but the immutable idx
// and back handle are guarded by mu.
type shard struct {
	mu       sync.RWMutex
	idx      int // this shard's position in Store.shards
	back     ShardBacking
	index    map[Hash]Ref
	refcount map[Hash]int64
}

// Store is a sharded deduplicating chunk store. All methods are safe
// for concurrent use by any number of goroutines.
type Store struct {
	backing Backing
	shards  []*shard
	mask    uint32

	// Recipes recorded via CommitRecipe, keyed by stream name.
	rmu     sync.RWMutex
	recipes map[string]Recipe

	// Aggregate statistics, maintained atomically.
	logical atomic.Int64
	stored  atomic.Int64
	chunks  atomic.Int64
	unique  atomic.Int64
	hits    atomic.Int64
}

// New returns an empty in-memory store with the given shard count (a
// power of two in [1, MaxShards]; 0 means 16) and container size (0
// means dedup.DefaultContainerSize).
func New(shards int, containerSize int64) (*Store, error) {
	b, err := NewMemoryBacking(shards, containerSize)
	if err != nil {
		return nil, err
	}
	return Open(b)
}

// Open builds a store on a backing, replaying the backing's recovered
// state (index entries, refcounts, recipes) into memory and deriving
// the aggregate Stats from it. On a fresh backing this is an empty
// store; on a reopened durable backing it is exactly the store that
// was closed: same duplicate classification, same refs, same Stats.
func Open(b Backing) (*Store, error) {
	n := b.NumShards()
	if n < 1 || n > MaxShards || n&(n-1) != 0 {
		return nil, fmt.Errorf("shardstore: backing has invalid shard count %d", n)
	}
	s := &Store{backing: b, shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		sh := &shard{
			idx:      i,
			back:     b.Shard(i),
			index:    make(map[Hash]Ref),
			refcount: make(map[Hash]int64),
		}
		err := sh.back.Recover(func(h Hash, ref Ref, rc int64) error {
			if rc < 1 {
				return fmt.Errorf("shardstore: shard %d recovered refcount %d for %x", i, rc, h[:8])
			}
			ref.Shard = i
			sh.index[h] = ref
			sh.refcount[h] = rc
			// Every counter is derivable from the recovered entries: one
			// unique insert plus rc-1 duplicate hits of ref.Length bytes.
			s.unique.Add(1)
			s.stored.Add(ref.Length)
			s.chunks.Add(rc)
			s.logical.Add(rc * ref.Length)
			s.hits.Add(rc - 1)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("shardstore: recover shard %d: %w", i, err)
		}
		s.shards[i] = sh
	}
	recipes, err := b.Recipes()
	if err != nil {
		return nil, fmt.Errorf("shardstore: recover recipes: %w", err)
	}
	if recipes == nil {
		recipes = make(map[string]Recipe)
	}
	s.recipes = recipes
	return s, nil
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardFor maps a fingerprint to its shard by high-order prefix.
func (s *Store) shardFor(h Hash) *shard {
	return s.shards[binary.BigEndian.Uint32(h[:4])&s.mask]
}

// Put stores one chunk, returning its location and whether it was a
// duplicate of existing content. A non-nil error means the backing
// rejected the write (impossible for MemoryBacking).
func (s *Store) Put(data []byte) (Ref, bool, error) {
	return s.PutHashed(dedup.Sum(data), data)
}

// PutHashed stores one chunk whose fingerprint the caller has already
// computed — the entry point for protocols that ship hashes ahead of
// data (client-side matching), and the primitive Put builds on. Like
// PutBatch, a chunk that was applied stays applied (and accounted)
// even when the backing's Commit then fails — the aggregate Stats must
// keep matching the index a restart would recover.
func (s *Store) PutHashed(h Hash, data []byte) (Ref, bool, error) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	ref, dup, err := sh.put(h, data)
	var cerr error
	if err == nil {
		cerr = sh.back.Commit()
	}
	sh.mu.Unlock()
	if err != nil {
		return Ref{}, false, err
	}
	s.account(int64(len(data)), dup)
	return ref, dup, cerr
}

// account updates the aggregate counters for one stored chunk.
func (s *Store) account(n int64, dup bool) {
	s.chunks.Add(1)
	s.logical.Add(n)
	if dup {
		s.hits.Add(1)
	} else {
		s.unique.Add(1)
		s.stored.Add(n)
	}
}

// put is the single-shard insert; the caller holds sh.mu.
func (sh *shard) put(h Hash, data []byte) (Ref, bool, error) {
	if ref, ok := sh.index[h]; ok {
		if err := sh.back.LogRefDelta(h, 1); err != nil {
			return Ref{}, false, err
		}
		sh.refcount[h]++
		return ref, true, nil
	}
	ci, off, err := sh.back.Append(h, data)
	if err != nil {
		return Ref{}, false, err
	}
	ref := Ref{Shard: sh.idx, Container: ci, Offset: off, Length: int64(len(data))}
	sh.index[h] = ref
	sh.refcount[h] = 1
	return ref, false, nil
}

// Has reports whether a chunk with fingerprint h is already stored —
// the Matching step (§2.1, step 3) — without writing anything.
func (s *Store) Has(h Hash) (Ref, bool) {
	sh := s.shardFor(h)
	sh.mu.RLock()
	ref, ok := sh.index[h]
	sh.mu.RUnlock()
	return ref, ok
}

// HasBatch answers one Matching query per fingerprint, grouping the
// queries by shard so each stripe lock is taken at most once.
func (s *Store) HasBatch(hs []Hash) []bool {
	out := make([]bool, len(hs))
	_ = s.byShard(hs, func(sh *shard, idxs []int) error {
		sh.mu.RLock()
		for _, i := range idxs {
			_, out[i] = sh.index[hs[i]]
		}
		sh.mu.RUnlock()
		return nil
	})
	return out
}

// Missing is the batched negative Matching query: it returns the
// ascending indices into hs of the fingerprints the store has no chunk
// for. It is read-only and racy by nature — a fingerprint reported
// missing may be inserted by a concurrent session a microsecond later
// — so the ingest protocol's missing-set answer uses PinBatch instead.
func (s *Store) Missing(hs []Hash) []int {
	found := s.HasBatch(hs)
	missing := make([]int, 0, len(hs))
	for i, ok := range found {
		if !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// PinBatch answers a batched Matching query while taking one reference
// on every fingerprint it answers "present" for, under that shard's
// stripe lock and journaled like any duplicate hit. This is the
// primitive behind the ingest protocol's HasBatch: by the time the
// server tells a client to skip a chunk body, the stream's reference
// is already counted, so no concurrent reclaim (the future GC) can
// free the chunk between the answer and the stream's recipe commit.
// Present fingerprints get their Ref in refs and are accounted exactly
// like a duplicate Put; absent ones come back as ascending indices in
// missing with a zero Ref. On a backing error the batch stops early:
// pins already applied stay applied (and accounted).
func (s *Store) PinBatch(hs []Hash) (refs []Ref, missing []int, err error) {
	refs = make([]Ref, len(hs))
	found := make([]bool, len(hs))
	var logical, chunksN, dups int64
	err = s.byShard(hs, func(sh *shard, idxs []int) error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		pinned := false
		for _, i := range idxs {
			ref, ok := sh.index[hs[i]]
			if !ok {
				continue
			}
			if err := sh.back.LogRefDelta(hs[i], 1); err != nil {
				return err
			}
			sh.refcount[hs[i]]++
			refs[i], found[i] = ref, true
			chunksN++
			dups++
			logical += ref.Length
			pinned = true
		}
		if pinned {
			return sh.back.Commit()
		}
		return nil
	})
	s.chunks.Add(chunksN)
	s.logical.Add(logical)
	s.hits.Add(dups)
	missing = make([]int, 0, len(hs))
	for i, ok := range found {
		if !ok {
			missing = append(missing, i)
		}
	}
	return refs, missing, err
}

// PutBatch stores a batch of chunks in order, grouping the inserts by
// shard so each stripe lock is taken at most once per batch. Refs and
// duplicate flags come back in input order. The classification is
// identical to calling Put sequentially: a chunk repeated within the
// batch maps to the same shard and is seen there in input order. On a
// backing error the batch stops early: chunks already applied stay
// applied (and accounted), the rest of the refs are zero.
func (s *Store) PutBatch(chunks [][]byte) ([]Ref, []bool, error) {
	hs := make([]Hash, len(chunks))
	for i, c := range chunks {
		hs[i] = dedup.Sum(c)
	}
	return s.PutHashedBatch(hs, chunks)
}

// PutHashedBatch is PutBatch for callers that already hold the
// fingerprints — the ingest server's body-upload path, which hashed
// every uploaded chunk to verify it against the client's announcement.
// Each hs[i] MUST be dedup.Sum(chunks[i]); storing under any other
// address would corrupt every stream that later dedups against it, so
// callers ingesting untrusted bytes verify first.
func (s *Store) PutHashedBatch(hs []Hash, chunks [][]byte) ([]Ref, []bool, error) {
	if len(hs) != len(chunks) {
		return nil, nil, fmt.Errorf("shardstore: %d fingerprints for %d chunks", len(hs), len(chunks))
	}
	refs := make([]Ref, len(chunks))
	dup := make([]bool, len(chunks))
	var logical, stored int64
	var chunksN, dups, uniques int64
	err := s.byShard(hs, func(sh *shard, idxs []int) error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for _, i := range idxs {
			var perr error
			refs[i], dup[i], perr = sh.put(hs[i], chunks[i])
			if perr != nil {
				return perr
			}
			chunksN++
			logical += int64(len(chunks[i]))
			if dup[i] {
				dups++
			} else {
				uniques++
				stored += int64(len(chunks[i]))
			}
		}
		return sh.back.Commit()
	})
	s.chunks.Add(chunksN)
	s.logical.Add(logical)
	s.hits.Add(dups)
	s.unique.Add(uniques)
	s.stored.Add(stored)
	return refs, dup, err
}

// byShard partitions hash indices by destination shard and invokes fn
// once per non-empty shard, preserving input order within each group.
// It stops at the first error.
func (s *Store) byShard(hs []Hash, fn func(sh *shard, idxs []int) error) error {
	if len(hs) == 0 {
		return nil
	}
	groups := make(map[uint32][]int, len(s.shards))
	for i, h := range hs {
		si := binary.BigEndian.Uint32(h[:4]) & s.mask
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		if err := fn(s.shards[si], idxs); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the bytes of a stored chunk. The returned slice is a
// read-only view (for MemoryBacking, into the shard's container; for a
// durable backing, a fresh read) and stays valid because containers
// are append-only.
func (s *Store) Get(ref Ref) ([]byte, error) {
	if ref.Shard < 0 || ref.Shard >= len(s.shards) {
		return nil, fmt.Errorf("shardstore: shard %d out of range", ref.Shard)
	}
	sh := s.shards[ref.Shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.back.Read(ref.Container, ref.Offset, ref.Length)
}

// Stats returns the aggregate statistics. Each field is maintained
// atomically; when the store is quiescent the snapshot is exact and
// equal to what dedup.Store would report for the same inputs.
func (s *Store) Stats() dedup.Stats {
	return dedup.Stats{
		LogicalBytes: s.logical.Load(),
		StoredBytes:  s.stored.Load(),
		Chunks:       s.chunks.Load(),
		UniqueChunks: s.unique.Load(),
		IndexHits:    s.hits.Load(),
	}
}

// Containers returns the total number of containers across all shards.
func (s *Store) Containers() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += sh.back.Containers()
		sh.mu.RUnlock()
	}
	return total
}

// Refcount returns the current reference count for a fingerprint.
func (s *Store) Refcount(h Hash) int64 {
	sh := s.shardFor(h)
	sh.mu.RLock()
	n := sh.refcount[h]
	sh.mu.RUnlock()
	return n
}

// WriteStream stores an already-chunked stream, returning its recipe
// and the number of duplicate chunks.
func (s *Store) WriteStream(chunks [][]byte) (Recipe, int, error) {
	refs, dup, err := s.PutBatch(chunks)
	if err != nil {
		return nil, 0, err
	}
	dups := 0
	for _, d := range dup {
		if d {
			dups++
		}
	}
	return Recipe(refs), dups, nil
}

// CommitRecipe records a named stream recipe, durably if the backing
// is. A recommitted name replaces the previous recipe (the chunks it
// referenced stay stored; GC is a future concern).
func (s *Store) CommitRecipe(name string, r Recipe) error {
	if err := s.backing.CommitRecipe(name, r); err != nil {
		return err
	}
	s.rmu.Lock()
	s.recipes[name] = r
	s.rmu.Unlock()
	return nil
}

// Recipe returns the recorded recipe for a stream name.
func (s *Store) Recipe(name string) (Recipe, bool) {
	s.rmu.RLock()
	r, ok := s.recipes[name]
	s.rmu.RUnlock()
	return r, ok
}

// RecipeNames returns every recorded stream name, sorted.
func (s *Store) RecipeNames() []string {
	s.rmu.RLock()
	names := make([]string, 0, len(s.recipes))
	for n := range s.recipes {
		names = append(names, n)
	}
	s.rmu.RUnlock()
	sort.Strings(names)
	return names
}

// Reconstruct concatenates a recipe's chunks back into the original
// stream.
func (s *Store) Reconstruct(r Recipe) ([]byte, error) {
	var total int64
	for _, ref := range r {
		total += ref.Length
	}
	out := make([]byte, 0, total)
	for _, ref := range r {
		data, err := s.Get(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// Sync forces everything written so far onto durable media (a no-op
// for MemoryBacking).
func (s *Store) Sync() error { return s.backing.Sync() }

// Close flushes and releases the backing. The store must not be used
// afterwards.
func (s *Store) Close() error { return s.backing.Close() }
