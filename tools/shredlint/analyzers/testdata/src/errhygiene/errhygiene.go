// Positive suite for the errhygiene analyzer: silently discarded
// errors and a typed error flattened by %v.
package persist

import (
	"fmt"
	"io"
	"os"
)

type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string { return "not found: " + e.Name }

func journal(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // want `error result of f.Close is silently discarded`
	return nil
}

func report(w io.Writer, n int) {
	fmt.Fprintf(w, "refs=%d\n", n) // want `error result of fmt.Fprintf is silently discarded`
}

func wrap(name string, err error) error {
	return fmt.Errorf("persist: load %s: %v", name, err) // want `error wrapped with %v loses its type`
}

func wrapTyped(name string) error {
	return fmt.Errorf("lookup failed: %s", &NotFoundError{Name: name}) // want `error wrapped with %s loses its type`
}

// suppressed demonstrates the escape hatch: an allow with a reason.
func suppressed(f *os.File) {
	f.Close() //lint:allow errhygiene read-only fd, close cannot fail meaningfully
}
