package ingest

import "testing"

func FuzzHelloCodec(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := decodeHello(b)
		if err != nil {
			return
		}
		_ = encodeHelloCtx(h, 0)
	})
}

func FuzzStatsCodec(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := decodeStats(b)
		if err != nil {
			return
		}
		_ = s.encode()
	})
}
