// trace.go: a dependency-free Dapper-style tracer, the sibling of the
// metrics registry. A Tracer hands out Spans (8-byte span ID, 16-byte
// trace ID, parent link, wall-clock start, duration, typed attributes);
// completed root spans land in bounded lock-free rings — one for the
// most recent traces, one retaining only roots slower than a
// configurable threshold — which the admin endpoint serves at
// /debug/traces (JSON) and renders as span trees on /statusz.
//
// Trace context crosses process boundaries as a 24-byte SpanContext
// (trace ID + span ID); a server that decodes one starts its spans
// with StartRemote so they parent onto the client's span, and a
// snapshot merges every ring entry sharing a trace ID into one tree.
//
// Like the metrics side, absence is free: every method on a nil
// *Tracer or nil *Span is a no-op, so instrumented code threads spans
// unconditionally and an untraced hot path pays one nil check.
package obs

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end operation across processes.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the wire-portable identity of a span: enough for a
// remote process to continue the trace with the sender as parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// SpanContextWireSize is the encoded size of a SpanContext.
const SpanContextWireSize = 24

// Valid reports whether the context carries a usable trace identity.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// Encode renders the context as 24 bytes (trace ID then span ID).
func (c SpanContext) Encode() []byte {
	p := make([]byte, SpanContextWireSize)
	copy(p[:16], c.Trace[:])
	copy(p[16:], c.Span[:])
	return p
}

// DecodeSpanContext parses a 24-byte context. ok is false on any other
// length or an all-zero trace ID.
func DecodeSpanContext(p []byte) (c SpanContext, ok bool) {
	if len(p) != SpanContextWireSize {
		return SpanContext{}, false
	}
	copy(c.Trace[:], p[:16])
	copy(c.Span[:], p[16:])
	return c, c.Valid()
}

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key  string
	kind byte // 's', 'i', 'f'
	str  string
	num  uint64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, kind: 's', str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, kind: 'i', num: uint64(v)} }

// Float builds a float attribute.
func Float(k string, v float64) Attr {
	return Attr{Key: k, kind: 'f', num: math.Float64bits(v)}
}

// Value returns the attribute's value as a JSON-friendly any.
func (a Attr) Value() any {
	switch a.kind {
	case 'i':
		return int64(a.num)
	case 'f':
		return math.Float64frombits(a.num)
	default:
		return a.str
	}
}

// traceState is the per-trace collection point: every span this
// process starts for one trace, in start order. Guarded by its mutex;
// spans are appended at start and mutated (duration, attrs) at End.
type traceState struct {
	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// Span is one timed operation within a trace. The zero of use is the
// nil span: every method no-ops, Child returns nil, so disabled
// tracing costs one branch per call site.
type Span struct {
	tracer *Tracer
	st     *traceState
	name   string
	trace  TraceID
	id     SpanID
	parent SpanID
	remote bool // parent lives in another process (or ring entry)
	start  time.Time
	// Guarded by st.mu after creation:
	dur   time.Duration
	ended bool
	attrs []Attr
}

// Context returns the span's wire-portable identity (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// Trace returns the span's trace ID (zero on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (0 on nil or before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return s.dur
}

// Set appends attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.st.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.st.mu.Unlock()
}

// Child starts a sub-span. On a nil receiver it returns nil, so a
// whole call tree of instrumentation collapses to nil checks when
// tracing is off. If the trace is over its span budget the child is
// dropped (counted in the snapshot) and nil is returned.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		st:     s.st,
		name:   name,
		trace:  s.trace,
		id:     nextSpanID(),
		parent: s.id,
		start:  time.Now(),
		// Copy rather than retain: a non-escaping parameter lets the
		// caller stack-allocate the variadic slice, which is what keeps
		// the nil-span (tracing off) path allocation-free.
		attrs: append([]Attr(nil), attrs...),
	}
	s.st.mu.Lock()
	if len(s.st.spans) >= s.tracer.maxSpans {
		s.st.dropped++
		s.st.mu.Unlock()
		return nil
	}
	s.st.spans = append(s.st.spans, c)
	s.st.mu.Unlock()
	return c
}

// End records the span's duration. Ending a root span publishes the
// whole trace to the tracer's recent ring — and to the slow ring (plus
// the OnSlow callback) when it ran at or over the slow threshold.
// Second and later Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	if s.ended {
		s.st.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	s.st.mu.Unlock()
	if s.parent.IsZero() || s.remote {
		s.tracer.publish(s, dur)
	}
}

// TracerConfig sizes a Tracer. Zero values pick defaults.
type TracerConfig struct {
	// Recent is the ring size for the most recently completed root
	// spans (default 64).
	Recent int
	// Slow is the ring size for retained slow roots (default 32).
	Slow int
	// SlowThreshold routes any root span with duration >= threshold to
	// the slow ring and the OnSlow callback. 0 disables slow capture.
	SlowThreshold time.Duration
	// OnSlow, when set, runs synchronously as each slow root ends.
	OnSlow func(root *Span)
	// MaxSpansPerTrace bounds one trace's span count; further children
	// are dropped and counted (default 512).
	MaxSpansPerTrace int
}

// Tracer mints spans and retains completed traces in bounded rings.
// All methods are safe for concurrent use; a nil *Tracer is a no-op
// source of nil spans.
type Tracer struct {
	recent   spanRing
	slow     spanRing
	slowNs   int64
	onSlow   func(*Span)
	maxSpans int
}

// NewTracer builds a Tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = 64
	}
	if cfg.Slow <= 0 {
		cfg.Slow = 32
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = 512
	}
	return &Tracer{
		recent:   newSpanRing(cfg.Recent),
		slow:     newSpanRing(cfg.Slow),
		slowNs:   cfg.SlowThreshold.Nanoseconds(),
		onSlow:   cfg.OnSlow,
		maxSpans: cfg.MaxSpansPerTrace,
	}
}

// SlowThreshold returns the configured slow-trace threshold (0 when
// disabled or on a nil tracer).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNs)
}

// StartRoot begins a new trace and returns its root span (nil on a
// nil tracer).
func (t *Tracer) StartRoot(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, nextTraceID(), SpanID{}, false, attrs)
}

// StartRemote begins this process's portion of a trace whose context
// arrived over the wire: same trace ID, parented onto the remote span.
// An invalid context degrades to StartRoot.
func (t *Tracer) StartRemote(name string, ctx SpanContext, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if !ctx.Valid() {
		return t.StartRoot(name, attrs...)
	}
	return t.start(name, ctx.Trace, ctx.Span, true, attrs)
}

func (t *Tracer) start(name string, trace TraceID, parent SpanID, remote bool, attrs []Attr) *Span {
	s := &Span{
		tracer: t,
		st:     &traceState{},
		name:   name,
		trace:  trace,
		id:     nextSpanID(),
		parent: parent,
		remote: remote,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...), // copy: see Child
	}
	s.st.spans = append(s.st.spans, s)
	return s
}

// publish retains a completed root span.
func (t *Tracer) publish(root *Span, dur time.Duration) {
	t.recent.add(root)
	if t.slowNs > 0 && dur.Nanoseconds() >= t.slowNs {
		t.slow.add(root)
		if t.onSlow != nil {
			t.onSlow(root)
		}
	}
}

// spanRing is a bounded lock-free ring of completed root spans: an
// atomic cursor picks the slot, an atomic pointer swap fills it.
// Writers never block; a reader sees each slot's latest occupant.
type spanRing struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func newSpanRing(n int) spanRing {
	return spanRing{slots: make([]atomic.Pointer[Span], n)}
}

func (r *spanRing) add(s *Span) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

func (r *spanRing) snapshot() []*Span {
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// SpanData is the exported view of one completed (or still-open,
// duration 0) span.
type SpanData struct {
	Name     string         `json:"name"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Remote   bool           `json:"remote_parent,omitempty"`
	Start    time.Time      `json:"start"`
	Duration float64        `json:"duration_seconds"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceData is the exported view of one trace: every retained span
// sharing the trace ID, across ring entries — so a client root and the
// server spans it parented render as one connected tree.
type TraceData struct {
	TraceID string     `json:"trace_id"`
	Slow    bool       `json:"slow,omitempty"`
	Root    string     `json:"root"`
	End     time.Time  `json:"end"`
	Spans   []SpanData `json:"spans"`
	Dropped int        `json:"dropped_spans,omitempty"`
}

// Duration returns the longest root-ish span duration in the trace.
func (td TraceData) Duration() time.Duration {
	var max float64
	for _, s := range td.Spans {
		if s.Duration > max {
			max = s.Duration
		}
	}
	return time.Duration(max * float64(time.Second))
}

// Snapshot merges both rings into per-trace views, most recently
// completed first.
func (t *Tracer) Snapshot() []TraceData {
	if t == nil {
		return nil
	}
	seen := make(map[*Span]bool)
	byTrace := make(map[TraceID][]*Span)
	slow := make(map[TraceID]bool)
	collect := func(roots []*Span, markSlow bool) {
		for _, r := range roots {
			if markSlow {
				slow[r.trace] = true
			}
			if seen[r] {
				continue
			}
			seen[r] = true
			byTrace[r.trace] = append(byTrace[r.trace], r)
		}
	}
	collect(t.recent.snapshot(), false)
	collect(t.slow.snapshot(), true)

	out := make([]TraceData, 0, len(byTrace))
	for id, roots := range byTrace {
		out = append(out, buildTraceData(id, roots, slow[id]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].End.After(out[j].End) })
	return out
}

// TraceData exports the process-local view of this span's trace — the
// shape OnSlow callbacks log. Zero value on a nil span.
func (s *Span) TraceData() TraceData {
	if s == nil {
		return TraceData{}
	}
	return buildTraceData(s.trace, []*Span{s}, false)
}

func buildTraceData(id TraceID, roots []*Span, slow bool) TraceData {
	td := TraceData{TraceID: id.String(), Slow: slow}
	states := make(map[*traceState]bool)
	for _, r := range roots {
		states[r.st] = true
	}
	for st := range states {
		st.mu.Lock()
		td.Dropped += st.dropped
		for _, sp := range st.spans {
			sd := SpanData{
				Name:     sp.name,
				SpanID:   sp.id.String(),
				Remote:   sp.remote,
				Start:    sp.start,
				Duration: sp.dur.Seconds(),
			}
			if !sp.parent.IsZero() {
				sd.ParentID = sp.parent.String()
			}
			if len(sp.attrs) > 0 {
				sd.Attrs = make(map[string]any, len(sp.attrs))
				for _, a := range sp.attrs {
					sd.Attrs[a.Key] = a.Value()
				}
			}
			end := sp.start.Add(sp.dur)
			if end.After(td.End) {
				td.End = end
			}
			td.Spans = append(td.Spans, sd)
		}
		st.mu.Unlock()
	}
	sort.Slice(td.Spans, func(i, j int) bool { return td.Spans[i].Start.Before(td.Spans[j].Start) })
	for _, sd := range td.Spans {
		if sd.ParentID == "" || sd.Remote {
			td.Root = sd.Name
			break
		}
	}
	return td
}

// WriteJSON renders the current snapshot as the /debug/traces
// document. A nil tracer renders an empty document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		SlowThresholdSeconds float64     `json:"slow_threshold_seconds"`
		Traces               []TraceData `json:"traces"`
	}{
		SlowThresholdSeconds: t.SlowThreshold().Seconds(),
		Traces:               t.Snapshot(),
	}
	if doc.Traces == nil {
		doc.Traces = []TraceData{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Tree renders the trace as an indented human-readable span tree:
//
//	trace 7f3a... 12.4ms
//	  backup_dedup 12.4ms name=snap-1
//	    has_batch 1.2ms chunks=256 missing=3
//	    commit 4.0ms
func (td TraceData) Tree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s", td.TraceID, fmtDur(td.Duration()))
	if td.Slow {
		b.WriteString(" SLOW")
	}
	if td.Dropped > 0 {
		fmt.Fprintf(&b, " (%d spans dropped)", td.Dropped)
	}
	b.WriteByte('\n')
	ids := make(map[string]bool, len(td.Spans))
	kids := make(map[string][]int)
	for _, s := range td.Spans {
		ids[s.SpanID] = true
	}
	var tops []int
	for i, s := range td.Spans {
		if s.ParentID != "" && ids[s.ParentID] {
			kids[s.ParentID] = append(kids[s.ParentID], i)
		} else {
			tops = append(tops, i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := td.Spans[i]
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(s.Name)
		if s.Remote {
			b.WriteString(" [remote-parent]")
		}
		b.WriteByte(' ')
		b.WriteString(fmtDur(time.Duration(s.Duration * float64(time.Second))))
		appendAttrs(&b, s.Attrs)
		b.WriteByte('\n')
		for _, c := range kids[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, i := range tops {
		walk(i, 0)
	}
	return b.String()
}

func appendAttrs(b *strings.Builder, attrs map[string]any) {
	if len(attrs) == 0 {
		return
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%v", k, attrs[k])
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return strconv.FormatFloat(d.Seconds(), 'f', 2, 64) + "s"
	case d >= time.Millisecond:
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 2, 64) + "ms"
	default:
		return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 1, 64) + "µs"
	}
}

// ID generation: a process-seeded splitmix64 stream over an atomic
// counter — cheap, collision-resistant enough for debugging IDs, and
// free of crypto/rand syscalls on the hot path.
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextID64() uint64 {
	for {
		if v := splitmix64(idSeed + idCounter.Add(1)); v != 0 {
			return v
		}
	}
}

func nextSpanID() (id SpanID) {
	binary.BigEndian.PutUint64(id[:], nextID64())
	return id
}

func nextTraceID() (id TraceID) {
	binary.BigEndian.PutUint64(id[:8], nextID64())
	binary.BigEndian.PutUint64(id[8:], nextID64())
	return id
}
